(* dfclient: command-line face of the dfserve protocol.

   One invocation, one verb: compile, simulate, sweep, stats or
   shutdown, over the server's Unix socket or TCP listener.  simulate
   can dump output streams in the same name/time/%h-value text dfsim
   --values-out writes (so CI diffs a served run against a local one
   byte for byte), can preempt a long machine run (--preempt-after) to
   harvest a restorable checkpoint that dfsim --restore accepts, and
   with --retries rides the resilient retry/backoff path under an
   idempotency key, surviving server restarts.  sweep serves a kernel
   grid whose JSON matches sweep.exe's output byte for byte.

   With --cluster a,b,c the simulate and stats verbs address a
   federation of dfserve members: simulate routes by rendezvous hash
   on the program and fails over to the next replica when a member is
   dead; stats probes every member.  The migrate verb submits a job to
   --socket, lets it run for --after seconds, then moves it live to
   --to and prints the migrated result.

   Structured server rejections exit with a distinct nonzero code per
   error kind (see rejection_exit below; documented in
   docs/SERVICE.md), so scripts can tell a rejected request from a
   transport failure (generic cmdliner exit 123). *)

module J = Obs.Json
module P = Serve.Protocol

(* A structured server rejection: the server answered, and said no.
   Distinct from transport failure, and exit-coded so shell callers can
   branch on the taxonomy without parsing stderr. *)
exception Rejected of P.error_kind * string

let rejection_exit = function
  | P.Bad_request -> 10
  | P.Malformed -> 11
  | P.Compile_error -> 12
  | P.Unknown_verb -> 13
  | P.Overloaded -> 14
  | P.Cancelled -> 15
  | P.Run_error -> 16
  | P.Shutting_down -> 17
  | P.Deadline -> 18
  | P.Replica_error -> 19

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let program_of kernel size source input_seed =
  match (kernel, source) with
  | Some _, Some _ -> failwith "give --kernel or --source, not both"
  | Some name, None -> P.Kernel { name; size }
  | None, Some path ->
    P.Source { source = read_file path; scalars = []; input_seed }
  | None, None -> failwith "simulate/compile need --kernel or --source"

let run_of program waves machine pe stored fault fault_seed recover integrity
    watchdog max_time sanitize idem =
  let watchdog =
    match watchdog with
    | None -> P.Off
    | Some "auto" -> P.Auto
    | Some s -> (
      match int_of_string_opt s with
      | Some n -> P.At n
      | None -> failwith "--watchdog takes a count or 'auto'")
  in
  { (P.default_run program) with
    P.waves;
    engine = (if machine then `Machine else `Sim);
    n_pe = pe;
    stored;
    fault;
    fault_seed;
    recovery = recover;
    integrity;
    watchdog;
    max_time;
    sanitize;
    idem }

let require_ok resp =
  if not (P.response_ok resp) then (
    match P.response_error resp with
    | Some (Some kind, msg) -> raise (Rejected (kind, msg))
    | Some (None, msg) -> failwith ("error: " ^ msg)
    | None -> failwith ("malformed response: " ^ J.to_string resp));
  resp

let print_simulate resp =
  let geti f = Option.value ~default:0 (J.get_int (J.member f resp)) in
  let getb f = Option.value ~default:false (J.get_bool (J.member f resp)) in
  Printf.printf "finished at t=%d (quiescent=%b) digest=%d cache_hit=%b\n"
    (geti "end_time") (getb "quiescent") (geti "digest") (getb "cache_hit");
  (match J.get_string (J.member "stall" resp) with
  | Some s -> Printf.printf "stall: %s\n" s
  | None -> ());
  match J.member "violations" resp with
  | J.List (_ :: _ as vs) ->
    List.iter
      (fun v ->
        match J.get_string v with
        | Some s -> Printf.printf "violation: %s\n" s
        | None -> ())
      vs
  | _ -> ()

let write_values_out resp = function
  | None -> ()
  | Some path -> (
    match P.outputs_of_json (J.member "outputs" resp) with
    | Ok outputs ->
      Runspec.write_values ~path outputs;
      Printf.printf "wrote values %s\n" path
    | Error e -> failwith ("outputs: " ^ e))

let write_metrics_out resp = function
  | None -> ()
  | Some path ->
    J.write_file path (J.member "metrics" resp);
    Printf.printf "wrote metrics %s\n" path

(* A preempted response carries the checkpoint as JSON; reframe it as
   the dfsnap2 file format so dfsim --restore accepts it.  Decoding it
   against the locally-compiled graph also validates the document. *)
let write_checkpoint_out program waves resp = function
  | None -> ()
  | Some path -> (
    match J.member "checkpoint" resp with
    | J.Null -> failwith "response carries no checkpoint"
    | doc -> (
      match Serve.Server.subject_of_program program ~waves with
      | Error e -> failwith ("recompile for checkpoint: " ^ e)
      | Ok (graph, _, _) -> (
        match Recover.Checkpoint.of_json ~graph doc with
        | Error e -> failwith ("checkpoint: " ^ e)
        | Ok snapshot ->
          Recover.Checkpoint.save ~path ~graph snapshot;
          Printf.printf "wrote checkpoint %s (t=%d)\n" path
            snapshot.Machine.Machine_engine.sn_time)))

let finish_simulate program waves resp values_out metrics_out checkpoint_out =
  match P.response_error resp with
  | Some (Some P.Cancelled, _) when checkpoint_out <> None ->
    print_endline "preempted; checkpoint returned";
    write_checkpoint_out program waves resp checkpoint_out
  | Some (Some kind, msg) -> raise (Rejected (kind, msg))
  | Some (None, msg) -> failwith ("error: " ^ msg)
  | None ->
    print_simulate resp;
    write_values_out resp values_out;
    write_metrics_out resp metrics_out

let main verb socket tcp cluster to_addr after timeout retries idem kernel
    size source input_seed waves machine pe stored fault fault_seed recover
    integrity watchdog max_time sanitize pes sweep_waves kernels out
    values_out metrics_out checkpoint_out preempt_after =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = match tcp with Some hp -> "tcp:" ^ hp | None -> socket in
  let retry =
    if retries > 0 then { Serve.Client.default_retry with attempts = retries }
    else Serve.Client.default_retry
  in
  let cluster_of spec =
    match Serve.Cluster.members_of_spec spec with
    | Error e -> failwith ("--cluster " ^ e)
    | Ok members -> Serve.Cluster.create ?deadline:timeout ~retry members
  in
  let with_conn f =
    let conn = Serve.Client.connect ~retries:20 ?deadline:timeout addr in
    Fun.protect ~finally:(fun () -> Serve.Client.close conn) (fun () -> f conn)
  in
  match verb with
  | "stats" -> (
    match cluster with
    | Some spec ->
      let t = cluster_of spec in
      let probes = Serve.Cluster.probe ?deadline:timeout t in
      List.iter2
        (fun (maddr, outcome) (_, h) ->
          match outcome with
          | Ok resp ->
            Printf.printf "%s %s %s\n" maddr
              (Serve.Cluster.health_to_string h)
              (J.to_string resp)
          | Error e ->
            Printf.printf "%s %s (%s)\n" maddr
              (Serve.Cluster.health_to_string h)
              e)
        probes (Serve.Cluster.health t)
    | None ->
      with_conn (fun conn ->
          print_endline
            (J.to_string (require_ok (Serve.Client.rpc conn P.Stats)))))
  | "members" ->
    (* one line per member, grep-friendly: ADDR STATE [target] *)
    with_conn (fun conn ->
        let resp = require_ok (Serve.Client.rpc conn P.Members) in
        Printf.printf "self=%s replicas=%d\n"
          (Option.value ~default:"?" (J.get_string (J.member "self" resp)))
          (Option.value ~default:0 (J.get_int (J.member "replicas" resp)));
        match J.member "members" resp with
        | J.List ms ->
          List.iter
            (fun m ->
              Printf.printf "%s %s%s\n"
                (Option.value ~default:"?" (J.get_string (J.member "addr" m)))
                (Option.value ~default:"?"
                   (J.get_string (J.member "state" m)))
                (if Option.value ~default:false
                      (J.get_bool (J.member "target" m))
                 then " target"
                 else ""))
            ms
        | _ -> ())
  | "shutdown" ->
    with_conn (fun conn ->
        ignore (require_ok (Serve.Client.rpc conn P.Shutdown));
        print_endline "server shutting down")
  | "compile" ->
    with_conn (fun conn ->
        let program = program_of kernel size source input_seed in
        let resp = require_ok (Serve.Client.rpc conn (P.Compile program)) in
        Printf.printf "key=%d cache_hit=%b cells=%d\n"
          (Option.value ~default:0 (J.get_int (J.member "key" resp)))
          (Option.value ~default:false
             (J.get_bool (J.member "cache_hit" resp)))
          (Option.value ~default:0 (J.get_int (J.member "cells" resp))))
  | "sweep" ->
    with_conn (fun conn ->
        let s =
          { P.sw_kernels = kernels;
            sw_pes = pes;
            sw_waves = sweep_waves;
            sw_size = size }
        in
        let resp = require_ok (Serve.Client.rpc conn (P.Sweep s)) in
        let grid = J.member "grid" resp in
        match out with
        | Some path ->
          J.write_file path grid;
          Printf.printf "wrote %s\n" path
        | None -> print_endline (J.to_string grid))
  | "simulate" ->
    let program = program_of kernel size source input_seed in
    let run =
      run_of program waves machine pe stored fault fault_seed recover
        integrity watchdog max_time sanitize idem
    in
    if cluster <> None then begin
      if preempt_after <> None then
        failwith "--preempt-after needs a held connection; drop --cluster";
      let t = cluster_of (Option.get cluster) in
      let resp, served_by =
        Serve.Cluster.submit t
          ~key:(Serve.Cluster.routing_key program)
          (P.Simulate run)
      in
      Printf.printf "served by %s%s\n" served_by
        (if Serve.Cluster.failovers t > 0 then " (after failover)" else "");
      finish_simulate program waves resp values_out metrics_out
        checkpoint_out
    end
    else if retries > 0 then begin
      if preempt_after <> None then
        failwith "--preempt-after needs a held connection; drop --retries";
      let resp, attempts =
        Serve.Client.resilient_rpc
          ?deadline:timeout ~retry ~addr (P.Simulate run)
      in
      if attempts > 1 then
        Printf.printf "delivered after %d attempts\n" attempts;
      finish_simulate program waves resp values_out metrics_out
        checkpoint_out
    end
    else
      with_conn (fun conn ->
          let id = Serve.Client.send conn (P.Simulate run) in
          (match preempt_after with
          | None -> ()
          | Some secs ->
            Unix.sleepf secs;
            ignore (Serve.Client.send conn (P.Cancel id)));
          let resp = Serve.Client.await conn id in
          finish_simulate program waves resp values_out metrics_out
            checkpoint_out)
  | "migrate" ->
    (* submit at --socket, let it run --after seconds, move it to --to *)
    let target =
      match to_addr with
      | Some a -> a
      | None -> failwith "migrate needs --to TARGET"
    in
    if idem = None then failwith "migrate needs --idem KEY";
    let program = program_of kernel size source input_seed in
    let run =
      run_of program waves machine pe stored fault fault_seed recover
        integrity watchdog max_time sanitize idem
    in
    with_conn (fun conn ->
        ignore (Serve.Client.send conn (P.Simulate run));
        Unix.sleepf after;
        let resp, how =
          Serve.Cluster.migrate ?deadline:timeout ~retry ~source:addr ~target
            run
        in
        Printf.printf "migration: %s\n" how;
        finish_simulate program waves resp values_out metrics_out
          checkpoint_out)
  | v -> failwith (Printf.sprintf "unknown verb %S" v)

let main_safe verb socket tcp cluster to_addr after timeout retries idem
    kernel size source input_seed waves machine pe stored fault fault_seed
    recover integrity watchdog max_time sanitize pes sweep_waves kernels out
    values_out metrics_out checkpoint_out preempt_after =
  try
    main verb socket tcp cluster to_addr after timeout retries idem kernel
      size source input_seed waves machine pe stored fault fault_seed recover
      integrity watchdog max_time sanitize pes sweep_waves kernels out
      values_out metrics_out checkpoint_out preempt_after;
    `Ok ()
  with
  | Rejected (kind, msg) ->
    (* a structured rejection is not a transport failure: exit with the
       kind's documented code so scripts can branch on the taxonomy *)
    Printf.eprintf "dfclient: rejected (%s): %s\n%!"
      (P.error_kind_to_string kind) msg;
    exit (rejection_exit kind)
  | Failure msg | Invalid_argument msg -> `Error (false, msg)
  | End_of_file -> `Error (false, "server closed the connection")
  | Serve.Client.Timeout -> `Error (false, "request deadline expired")
  | Unix.Unix_error (e, fn, arg) ->
    `Error (false, Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))

open Cmdliner

let cmd =
  let verb =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"VERB"
             ~doc:"compile | simulate | migrate | sweep | stats | members \
                   | shutdown")
  in
  let socket =
    Arg.(value & opt string
           (Filename.concat (Filename.get_temp_dir_name ())
              (Printf.sprintf "dfserve-%d.sock" (Unix.getuid ())))
         & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"server socket path")
  in
  let tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT"
             ~doc:"connect over TCP instead of the Unix socket")
  in
  let cluster =
    Arg.(value & opt (some string) None
         & info [ "cluster" ] ~docv:"A,B,C|@FILE"
             ~doc:"federated member addresses (socket paths or \
                   tcp:HOST:PORT), comma-separated or \\@FILE with one \
                   per line: simulate routes by rendezvous hash on the \
                   program and fails over past dead members; stats probes \
                   every member")
  in
  let to_addr =
    Arg.(value & opt (some string) None
         & info [ "to" ] ~docv:"ADDR"
             ~doc:"migrate: target member (socket path or tcp:HOST:PORT)")
  in
  let after =
    Arg.(value & opt float 0.3
         & info [ "after" ] ~docv:"SECS"
             ~doc:"migrate: wall-clock seconds to let the job run at the \
                   source before moving it")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"fail if a response takes longer than this")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"simulate: reconnect-and-reissue up to N attempts with \
                   exponential backoff; pair with --idem so retries are \
                   answered exactly once, even across a server restart")
  in
  let idem =
    Arg.(value & opt (some string) None
         & info [ "idem" ] ~docv:"KEY"
             ~doc:"simulate: idempotency key — the server records the \
                   response under it and answers retries from the record")
  in
  let kernel =
    Arg.(value & opt (some string) None
         & info [ "kernel" ] ~docv:"NAME" ~doc:"built-in kernel subject")
  in
  let size =
    Arg.(value & opt int 12
         & info [ "size" ] ~docv:"N" ~doc:"kernel size parameter")
  in
  let source =
    Arg.(value & opt (some string) None
         & info [ "source" ] ~docv:"FILE" ~doc:"Val source file to run")
  in
  let input_seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"input-synthesis seed for --source (dfsim's convention)")
  in
  let waves =
    Arg.(value & opt int 1
         & info [ "waves" ] ~docv:"W" ~doc:"input waves to stream")
  in
  let machine =
    Arg.(value & flag
         & info [ "machine" ] ~doc:"run on the machine-level simulator")
  in
  let pe =
    Arg.(value & opt (some int) None
         & info [ "pe" ] ~docv:"N" ~doc:"machine: processing elements")
  in
  let stored =
    Arg.(value & flag
         & info [ "stored" ] ~doc:"machine: Stored array policy baseline")
  in
  let fault =
    Arg.(value & opt (some string) None
         & info [ "fault" ] ~docv:"SPEC" ~doc:"fault plan spec string")
  in
  let fault_seed =
    Arg.(value & opt (some int) None
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"override the fault spec's seed")
  in
  let recover =
    Arg.(value & opt ~vopt:(Some "") (some string) None
         & info [ "recover" ] ~docv:"SPEC"
             ~doc:"machine: recovery policy (bare flag = defaults)")
  in
  let integrity =
    Arg.(value & flag
         & info [ "integrity" ] ~doc:"machine: per-packet checksums")
  in
  let watchdog =
    Arg.(value & opt (some string) None
         & info [ "watchdog" ] ~docv:"T|auto" ~doc:"no-progress watchdog")
  in
  let max_time =
    Arg.(value & opt (some int) None
         & info [ "max-time" ] ~docv:"T" ~doc:"simulation time budget")
  in
  let sanitize =
    Arg.(value & flag
         & info [ "sanitize" ] ~doc:"fresh protocol sanitizer for the run")
  in
  let pes =
    Arg.(value & opt (list int) [ 1; 2; 4; 8; 16 ]
         & info [ "pes" ] ~docv:"N,N,..."
             ~doc:"sweep: PE counts (sweep.exe's --pes)")
  in
  let sweep_waves =
    Arg.(value & opt (list int) [ 4 ]
         & info [ "sweep-waves" ] ~docv:"W,W,..."
             ~doc:"sweep: wave counts (sweep.exe's --waves)")
  in
  let kernels =
    Arg.(value & opt (some (list string)) None
         & info [ "kernels" ] ~docv:"NAME,NAME,..."
             ~doc:"sweep: kernels to sweep (default: the whole library)")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"sweep: write the grid JSON here (byte-identical to \
                   sweep.exe --out for the same grid)")
  in
  let values_out =
    Arg.(value & opt (some string) None
         & info [ "values-out" ] ~docv:"OUT"
             ~doc:"write output streams as name/time/%h-value lines \
                   (diffable against dfsim --values-out)")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"OUT"
             ~doc:"write the response's metrics-registry snapshot as JSON")
  in
  let checkpoint_out =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-out" ] ~docv:"OUT"
             ~doc:"with --preempt-after: save the returned checkpoint in \
                   dfsim --restore format")
  in
  let preempt_after =
    Arg.(value & opt (some float) None
         & info [ "preempt-after" ] ~docv:"SECS"
             ~doc:"cancel the simulate request after this many wall-clock \
                   seconds; a machine run is preempted at its next slice \
                   boundary and returns a restorable checkpoint")
  in
  let term =
    Term.(ret (const main_safe $ verb $ socket $ tcp $ cluster $ to_addr
               $ after $ timeout $ retries $ idem $ kernel $ size $ source
               $ input_seed $ waves $ machine $ pe $ stored $ fault
               $ fault_seed $ recover $ integrity $ watchdog $ max_time
               $ sanitize $ pes $ sweep_waves $ kernels $ out $ values_out
               $ metrics_out $ checkpoint_out $ preempt_after))
  in
  Cmd.v
    (Cmd.info "dfclient" ~version:"1.0"
       ~doc:"command-line client for the dfserve compile-and-simulate \
             service")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
