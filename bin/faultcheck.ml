(* faultcheck: differential fault suite over the kernel library.

   For every kernel and every seed, run the compiled graph clean and
   under a delay-only fault plan, and require the output streams to be
   identical — the executable form of the paper's claim that the
   acknowledge discipline makes pipelines latency-insensitive.  Any
   mismatch, sanitizer violation or unexpected stall writes a dump file
   into --out and fails the run (CI uploads the dumps as artifacts).

   Examples:
     faultcheck --seeds 101,202,303 --out fault-reports
     faultcheck --machine --delay 0.5 *)

module PC = Compiler.Program_compile
module D = Compiler.Driver
module K = Kernels
module FP = Fault.Fault_plan
module FD = Fault_diff

let replicate waves xs = List.concat_map (fun _ -> xs) (List.init waves Fun.id)

(* full packet streams for the graph's Input cells (scalar inputs are
   compiled to load-time constants, so only array inputs feed packets) *)
let feeds (compiled : PC.compiled) ~waves kernel_inputs =
  List.map
    (fun (name, _shape) ->
      match List.assoc_opt name kernel_inputs with
      | Some wave -> (name, replicate waves wave)
      | None -> failwith (Printf.sprintf "kernel input %s missing" name))
    compiled.PC.cp_inputs

let dump_failure ~dir ~kernel ~seed ~engine (o : FD.outcome) =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  let path = Filename.concat dir
      (Printf.sprintf "%s-%s-seed%d.txt" kernel engine seed) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "kernel %s, engine %s, seed %d\nclean end %d, faulted end %d\n\n"
        kernel engine seed o.FD.clean_end o.FD.faulted_end;
      if o.FD.mismatches <> [] then begin
        output_string oc "output mismatches:\n";
        List.iter
          (fun m -> Printf.fprintf oc "  %s\n" (FD.mismatch_to_string m))
          o.FD.mismatches
      end;
      if o.FD.faulted_violations <> [] then begin
        output_string oc "violations:\n";
        List.iter
          (fun v ->
            Printf.fprintf oc "  %s\n" (Fault.Violation.to_string v))
          o.FD.faulted_violations
      end;
      match o.FD.faulted_stall with
      | Some sr -> output_string oc (Fault.Stall_report.to_string sr)
      | None -> ());
  path

(* a Deadlock report at quiescence is the normal end state of primed
   feedback loops; only watchdog trips and max_time exhaustion are
   unexpected under delay-only faults *)
let stall_unexpected = function
  | None -> false
  | Some sr -> sr.Fault.Stall_report.sr_reason <> Fault.Stall_report.Deadlock

let check_one ~dir ~size ~waves ~prob ~max_delay ~machine ~seed
    (k : K.kernel) =
  let st = Random.State.make [| Hashtbl.hash k.K.name |] in
  let _, compiled =
    D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source size)
  in
  let inputs = feeds compiled ~waves (k.K.inputs size st) in
  let plan = FP.make (FP.delays ~prob ~max_delay seed) in
  (* the watchdog must sit above any injected delay *)
  let watchdog = 100 + (4 * max_delay) in
  let run engine diff =
    let o = diff () in
    let ok =
      o.FD.equal && o.FD.faulted_violations = []
      && not (stall_unexpected o.FD.faulted_stall)
    in
    if ok then begin
      Printf.printf "ok   %-14s %-7s seed=%d (clean end %d, faulted end %d)\n"
        k.K.name engine seed o.FD.clean_end o.FD.faulted_end;
      true
    end
    else begin
      let path = dump_failure ~dir ~kernel:k.K.name ~seed ~engine o in
      Printf.printf
        "FAIL %-14s %-7s seed=%d (%d mismatches, %d violations) -> %s\n"
        k.K.name engine seed
        (List.length o.FD.mismatches)
        (List.length o.FD.faulted_violations)
        path;
      false
    end
  in
  let g = compiled.PC.cp_graph in
  let ok_sim =
    run "sim" (fun () -> FD.sim ~watchdog ~plan g ~inputs)
  in
  let ok_machine =
    (not machine)
    || run "machine" (fun () -> FD.machine ~watchdog ~plan g ~inputs)
  in
  ok_sim && ok_machine

let main seeds dir size waves prob max_delay machine =
  let failures = ref 0 in
  List.iter
    (fun (k : K.kernel) ->
      List.iter
        (fun seed ->
          match
            check_one ~dir ~size ~waves ~prob ~max_delay ~machine ~seed k
          with
          | true -> ()
          | false -> incr failures
          | exception e ->
            incr failures;
            Printf.printf "FAIL %-14s seed=%d raised %s\n" k.K.name seed
              (Printexc.to_string e))
        seeds)
    K.all;
  let total = List.length K.all * List.length seeds in
  if !failures = 0 then begin
    Printf.printf
      "all %d kernel/seed runs: faulted outputs identical to clean\n" total;
    `Ok ()
  end
  else
    `Error
      (false, Printf.sprintf "%d of %d kernel/seed runs failed" !failures total)

let cmd =
  let open Cmdliner in
  let seeds =
    Arg.(value & opt (list int) [ 101; 202; 303 ]
         & info [ "seeds" ] ~docv:"N,N,..."
             ~doc:"fault-plan seeds to test each kernel under")
  in
  let dir =
    Arg.(value & opt string "fault-reports"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"directory for failure dumps (created on first failure)")
  in
  let size =
    Arg.(value & opt int 32
         & info [ "size" ] ~docv:"N" ~doc:"kernel size parameter")
  in
  let waves =
    Arg.(value & opt int 4
         & info [ "waves" ] ~docv:"W" ~doc:"input waves to stream")
  in
  let prob =
    Arg.(value & opt float 0.25
         & info [ "delay" ] ~docv:"P" ~doc:"per-packet delay probability")
  in
  let max_delay =
    Arg.(value & opt int 8
         & info [ "delay-max" ] ~docv:"N" ~doc:"largest injected delay")
  in
  let machine =
    Arg.(value & flag
         & info [ "machine" ]
             ~doc:"also run the differential on the machine-level simulator")
  in
  let term =
    Term.(ret (const main $ seeds $ dir $ size $ waves $ prob $ max_delay
               $ machine))
  in
  Cmd.v
    (Cmd.info "faultcheck" ~version:"1.0"
       ~doc:"differential fault suite: delay-faulted kernel runs must \
             match clean runs value for value")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
