(* faultcheck: differential fault suite over the kernel library.

   For every kernel and every seed, run the compiled graph clean and
   under a fault plan, and require the output streams to be identical —
   the executable form of the paper's claim that the acknowledge
   discipline makes pipelines latency-insensitive, extended to lossy
   and crashing machines when a recovery policy is attached.  Any
   mismatch, sanitizer violation or unexpected stall writes a dump file
   (plus a machine-state checkpoint for post-mortems) into --out, prints
   a ready-to-paste repro command, and fails the run (CI uploads the
   dumps as artifacts).

   Examples:
     faultcheck --seeds 101,202,303 --out fault-reports
     faultcheck --machine --delay 0.5
     faultcheck --machine --recover --drop-ack 0.15
     faultcheck --machine --recover --crash-pe 2 --crash-at 120
     faultcheck --machine --recover --integrity --corrupt 0.05
     faultcheck --machine --inject 'seed=7,stall=0.1,corrupt=0.02' --integrity
     faultcheck --kernel hydro --seeds 42 *)

module PC = Compiler.Program_compile
module D = Compiler.Driver
module K = Kernels
module FP = Fault.Fault_plan
module FD = Fault_diff
module ME = Machine.Machine_engine

type config = {
  dir : string;
  size : int;
  waves : int;
  spec : FP.spec;  (* seed overwritten per run *)
  machine : bool;
  recovery : ME.recovery option;
  integrity : bool;
  kernel_filter : string option;
}

(* the exact command line that reruns one failing combination.  Stall
   and FU/AM-slowdown fields have no dedicated flags, so a spec using
   them is carried whole via --inject (the canonical Fault_plan string);
   everything else stays as readable per-field flags. *)
let repro_command cfg ~kernel ~seed =
  let b = Buffer.create 128 in
  Buffer.add_string b "faultcheck";
  Printf.bprintf b " --kernel %s --seeds %d" kernel seed;
  Printf.bprintf b " --size %d --waves %d" cfg.size cfg.waves;
  let s = cfg.spec in
  let flagless =
    s.FP.stall_prob <> 0.0
    || s.FP.stall_max <> FP.none.FP.stall_max
    || s.FP.fu_slow <> 0 || s.FP.am_slow <> 0
  in
  if flagless then
    Printf.bprintf b " --inject '%s'" (FP.to_string { s with FP.seed })
  else begin
    if s.FP.delay_prob <> 0.0 then
      Printf.bprintf b " --delay %g" s.FP.delay_prob;
    if s.FP.delay_max <> FP.none.FP.delay_max then
      Printf.bprintf b " --delay-max %d" s.FP.delay_max;
    if s.FP.dup_prob <> 0.0 then Printf.bprintf b " --dup %g" s.FP.dup_prob;
    if s.FP.drop_ack_prob <> 0.0 then
      Printf.bprintf b " --drop-ack %g" s.FP.drop_ack_prob;
    if s.FP.drop_prob <> 0.0 then Printf.bprintf b " --drop %g" s.FP.drop_prob;
    if s.FP.corrupt_prob <> 0.0 then
      Printf.bprintf b " --corrupt %g" s.FP.corrupt_prob;
    if s.FP.corrupt_ctl_prob <> 0.0 then
      Printf.bprintf b " --corrupt-ctl %g" s.FP.corrupt_ctl_prob;
    if s.FP.crash_pe >= 0 then
      Printf.bprintf b " --crash-pe %d --crash-at %d" s.FP.crash_pe
        s.FP.crash_at
  end;
  (match cfg.recovery with
  | Some p -> Printf.bprintf b " --recover %s" (Recover.to_string p)
  | None -> ());
  if cfg.integrity then Buffer.add_string b " --integrity";
  if cfg.machine then Buffer.add_string b " --machine";
  Buffer.contents b

let dump_failure cfg ~graph ~kernel ~seed ~engine (o : FD.outcome) =
  let dir = cfg.dir in
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  let path = Filename.concat dir
      (Printf.sprintf "%s-%s-seed%d.txt" kernel engine seed) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "kernel %s, engine %s, seed %d\nclean end %d, faulted end %d\n\
         recoveries %d\ndigest clean %d, faulted %d\nrepro: %s\n\n"
        kernel engine seed o.FD.clean_end o.FD.faulted_end
        o.FD.faulted_recoveries o.FD.clean_digest o.FD.faulted_digest
        (repro_command cfg ~kernel ~seed);
      (match o.FD.diagnosis with
      | Some d -> Printf.fprintf oc "diagnosis: %s\n\n" d
      | None -> ());
      if o.FD.mismatches <> [] then begin
        output_string oc "output mismatches:\n";
        List.iter
          (fun m -> Printf.fprintf oc "  %s\n" (FD.mismatch_to_string m))
          o.FD.mismatches
      end;
      if o.FD.faulted_violations <> [] then begin
        output_string oc "violations:\n";
        List.iter
          (fun v ->
            Printf.fprintf oc "  %s\n" (Fault.Violation.to_string v))
          o.FD.faulted_violations
      end;
      match o.FD.faulted_stall with
      | Some sr -> output_string oc (Fault.Stall_report.to_string sr)
      | None -> ());
  (* the final machine state, for post-mortems under dfsim --restore *)
  (match o.FD.faulted_snapshot with
  | Some sn ->
    let spath = Filename.concat dir
        (Printf.sprintf "%s-%s-seed%d-state.json" kernel engine seed) in
    Recover.Checkpoint.save ~path:spath ~graph sn
  | None -> ());
  path

let stall_unexpected = Runspec.stall_unexpected

(* one kernel/seed combination; the report goes into [buf] so the matrix
   can run across domains and still print in submission order *)
let check_one cfg ~buf ~seed (k : K.kernel) =
  let subject =
    Runspec.compile_subject k ~size:cfg.size ~waves:cfg.waves
  in
  let compiled = subject.Runspec.compiled in
  let inputs = subject.Runspec.inputs in
  let plan = FP.make { cfg.spec with FP.seed } in
  let watchdog = Runspec.watchdog_for cfg.spec cfg.recovery in
  let run engine diff =
    let o = diff () in
    let ok =
      o.FD.equal && o.FD.faulted_violations = []
      && not (stall_unexpected o.FD.faulted_stall)
      && o.FD.clean_digest = o.FD.faulted_digest
    in
    (* the per-run integrity story: bit-flips injected, caught by the
       checksum, and replaced by a clean retransmission *)
    let integrity_note =
      match o.FD.faulted_snapshot with
      | Some sn when sn.ME.sn_stats.ME.corruptions > 0 ->
        Printf.sprintf ", %d corrupt/%d detected/%d healed"
          sn.ME.sn_stats.ME.corruptions sn.ME.sn_stats.ME.corrupt_detected
          sn.ME.sn_stats.ME.corrupt_healed
      | _ -> ""
    in
    if ok then begin
      Printf.bprintf buf
        "ok   %-14s %-7s seed=%d (clean end %d, faulted end %d%s%s)\n"
        k.K.name engine seed o.FD.clean_end o.FD.faulted_end
        (if o.FD.faulted_recoveries > 0 then
           Printf.sprintf ", %d recovery" o.FD.faulted_recoveries
         else "")
        integrity_note;
      true
    end
    else begin
      let path =
        dump_failure cfg ~graph:compiled.PC.cp_graph ~kernel:k.K.name ~seed
          ~engine o
      in
      Printf.bprintf buf
        "FAIL %-14s %-7s seed=%d (%d mismatches, %d violations%s) -> %s\n\
        \     repro: %s\n"
        k.K.name engine seed
        (List.length o.FD.mismatches)
        (List.length o.FD.faulted_violations)
        integrity_note path
        (repro_command cfg ~kernel:k.K.name ~seed);
      (match o.FD.diagnosis with
      | Some d -> Printf.bprintf buf "     %s\n" d
      | None -> ());
      false
    end
  in
  let g = compiled.PC.cp_graph in
  (* the graph-level simulator honours delay faults only: running it
     under a protocol-breaking plan would vacuously pass *)
  let ok_sim =
    FP.delay_only plan
    |> not
    || run "sim" (fun () -> FD.sim ~watchdog ~plan g ~inputs)
  in
  let ok_machine =
    (not cfg.machine)
    || run "machine" (fun () ->
           FD.machine ~watchdog ?recovery:cfg.recovery
             ~integrity:cfg.integrity ~plan g ~inputs)
  in
  ok_sim && ok_machine

let main seeds dir kernel_filter size waves prob max_delay dup drop_ack drop
    corrupt corrupt_ctl crash_pe crash_at inject recover machine integrity
    jobs =
  let recovery =
    match recover with
    | None -> None
    | Some spec -> (
      match Runspec.recovery_of_string spec with
      | Ok p -> Some p
      | Error e -> failwith (Printf.sprintf "--recover %s: %s" spec e))
  in
  let spec =
    match inject with
    | Some s -> (
      (* --inject carries the whole plan (shrinker output, chaos repro);
         --seeds still picks the per-run seed, so any seed= in the spec
         only matters if the default seed list is used unchanged *)
      match Runspec.fault_spec_of_string s with
      | Ok spec -> spec
      | Error e -> failwith (Printf.sprintf "--inject %s: %s" s e))
    | None ->
      { FP.none with
        FP.delay_prob = prob;
        delay_max = max_delay;
        dup_prob = dup;
        drop_ack_prob = drop_ack;
        drop_prob = drop;
        corrupt_prob = corrupt;
        corrupt_ctl_prob = corrupt_ctl;
        crash_pe;
        crash_at;
      }
  in
  let cfg =
    { dir; size; waves; spec; machine; recovery; integrity; kernel_filter }
  in
  let kernels =
    match Runspec.kernels_matching kernel_filter with
    | Ok ks -> ks
    | Error e -> failwith (Printf.sprintf "--kernel: %s" e)
  in
  if (not (FP.delay_only (FP.make spec))) && not machine then
    print_endline
      "note: dup/drop/drop-ack/crash faults are machine-only; the sim \
       differential is skipped for them (add --machine)";
  (* the kernel x seed matrix fans out across domains; reports are
     merged in submission order, so stdout is byte-identical to a
     sequential run whatever the worker count *)
  let matrix =
    List.concat_map
      (fun (k : K.kernel) -> List.map (fun seed -> (k, seed)) seeds)
      kernels
  in
  let jobs = match jobs with Some j -> j | None -> Exec.Pool.default_jobs () in
  let results, elapsed =
    Exec.Pool.timed (fun () ->
        Exec.Pool.map_result ~jobs
          (fun ((k : K.kernel), seed) ->
            let buf = Buffer.create 256 in
            let ok = check_one cfg ~buf ~seed k in
            (Buffer.contents buf, ok))
          matrix)
  in
  let failures = ref 0 in
  let runs = List.length matrix in
  List.iter2
    (fun ((k : K.kernel), seed) r ->
      match r with
      | Ok (report, ok) ->
        print_string report;
        if not ok then incr failures
      | Error (e : Exec.Pool.error) ->
        incr failures;
        Printf.printf "FAIL %-14s seed=%d raised %s\n     repro: %s\n"
          k.K.name seed e.Exec.Pool.message
          (repro_command cfg ~kernel:k.K.name ~seed))
    matrix results;
  (* timing goes to stderr: stdout stays diffable across worker counts *)
  Printf.eprintf "faultcheck: %d runs in %.2fs (%d worker%s)\n" runs elapsed
    jobs
    (if jobs = 1 then "" else "s");
  if !failures = 0 then begin
    Printf.printf
      "all %d kernel/seed runs: faulted outputs identical to clean\n" runs;
    `Ok ()
  end
  else
    `Error
      (false, Printf.sprintf "%d of %d kernel/seed runs failed" !failures runs)

let main_safe seeds dir kernel size waves prob max_delay dup drop_ack drop
    corrupt corrupt_ctl crash_pe crash_at inject recover machine integrity
    jobs =
  try
    main seeds dir kernel size waves prob max_delay dup drop_ack drop corrupt
      corrupt_ctl crash_pe crash_at inject recover machine integrity jobs
  with Failure msg -> `Error (false, msg)

let cmd =
  let open Cmdliner in
  let seeds =
    Arg.(value & opt (list int) [ 101; 202; 303 ]
         & info [ "seeds" ] ~docv:"N,N,..."
             ~doc:"fault-plan seeds to test each kernel under")
  in
  let dir =
    Arg.(value & opt string "fault-reports"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"directory for failure dumps (created on first failure)")
  in
  let kernel =
    Arg.(value & opt (some string) None
         & info [ "kernel" ] ~docv:"NAME"
             ~doc:"check a single kernel instead of the whole library")
  in
  let size =
    Arg.(value & opt int 32
         & info [ "size" ] ~docv:"N" ~doc:"kernel size parameter")
  in
  let waves =
    Arg.(value & opt int 4
         & info [ "waves" ] ~docv:"W" ~doc:"input waves to stream")
  in
  let prob =
    Arg.(value & opt float 0.25
         & info [ "delay" ] ~docv:"P" ~doc:"per-packet delay probability")
  in
  let max_delay =
    Arg.(value & opt int 8
         & info [ "delay-max" ] ~docv:"N" ~doc:"largest injected delay")
  in
  let dup =
    Arg.(value & opt float 0.0
         & info [ "dup" ] ~docv:"P"
             ~doc:"per-packet duplication probability (machine)")
  in
  let drop_ack =
    Arg.(value & opt float 0.0
         & info [ "drop-ack" ] ~docv:"P"
             ~doc:"per-acknowledge loss probability (machine)")
  in
  let drop =
    Arg.(value & opt float 0.0
         & info [ "drop" ] ~docv:"P"
             ~doc:"per-result-packet loss probability (machine)")
  in
  let corrupt =
    Arg.(value & opt float 0.0
         & info [ "corrupt" ] ~docv:"P"
             ~doc:"per-int/real-result-packet payload bit-flip probability \
                   (machine)")
  in
  let corrupt_ctl =
    Arg.(value & opt float 0.0
         & info [ "corrupt-ctl" ] ~docv:"P"
             ~doc:"per-boolean-control-token negation probability (machine)")
  in
  let crash_pe =
    Arg.(value & opt int (-1)
         & info [ "crash-pe" ] ~docv:"N"
             ~doc:"fail-stop this processing element (machine; -1 = none)")
  in
  let crash_at =
    Arg.(value & opt int 0
         & info [ "crash-at" ] ~docv:"T"
             ~doc:"simulated time of the --crash-pe fail-stop")
  in
  let inject =
    Arg.(value & opt (some string) None
         & info [ "inject" ] ~docv:"SPEC"
             ~doc:"full fault plan as a Fault_plan string (e.g. \
                   'seed=7,stall=0.1,corrupt=0.02'); replaces the \
                   per-fault flags — this is the form chaos and the \
                   shrinker print, so minimal repros paste straight back \
                   ($(b,--seeds) still picks the per-run seed)")
  in
  let recover =
    Arg.(value & opt ~vopt:(Some "") (some string) None
         & info [ "recover" ] ~docv:"SPEC"
             ~doc:"attach a checkpoint/retransmission recovery policy to the \
                   faulted machine runs (keys every, timeout, backoff, \
                   retries; bare --recover uses the defaults) — lossy and \
                   crashing runs are then expected to match clean runs")
  in
  let machine =
    Arg.(value & flag
         & info [ "machine" ]
             ~doc:"also run the differential on the machine-level simulator")
  in
  let integrity =
    Arg.(value & flag
         & info [ "integrity" ]
             ~doc:"enable per-packet checksum verification in the faulted \
                   machine runs; with $(b,--recover), corruption faults are \
                   then detected, discarded and healed by retransmission")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"worker domains for the kernel/seed matrix (default: \
                   \\$(b,EXEC_JOBS) or the available cores); output is \
                   identical whatever the count")
  in
  let term =
    Term.(ret (const main_safe $ seeds $ dir $ kernel $ size $ waves $ prob
               $ max_delay $ dup $ drop_ack $ drop $ corrupt $ corrupt_ctl
               $ crash_pe $ crash_at $ inject $ recover $ machine $ integrity
               $ jobs))
  in
  Cmd.v
    (Cmd.info "faultcheck" ~version:"1.0"
       ~doc:"differential fault suite: faulted kernel runs must match \
             clean runs value for value")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
