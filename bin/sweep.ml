(* sweep: declarative kernel x PE-count x waves grids on the machine
   model, one JSON row per cell.

   The grid cells are independent jobs fanned over domains; rows come
   back in grid order and the JSON carries no timings, so its bytes are
   identical whatever --jobs says.  Timing goes to stderr.

   Examples:
     sweep --out sweep.json
     sweep --kernels vecadd,hydro --pes 1,2,4,8,16 --waves 4 --size 64
     sweep --pes 8 --waves 1,2,4,8 --jobs 4 *)

module K = Kernels

let kernel_names = List.map (fun (k : K.kernel) -> k.K.name) K.all

let resolve_kernels = function
  | None -> Ok K.all
  | Some names ->
    let find name =
      match List.find_opt (fun (k : K.kernel) -> k.K.name = name) K.all with
      | Some k -> Ok k
      | None ->
        Error
          (Printf.sprintf "--kernels %s: unknown kernel (have: %s)" name
             (String.concat ", " kernel_names))
    in
    List.fold_right
      (fun name acc ->
        match (find name, acc) with
        | Ok k, Ok ks -> Ok (k :: ks)
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e)
      names (Ok [])

let main kernels pes waves size out jobs =
  match resolve_kernels kernels with
  | Error msg -> `Error (false, msg)
  | Ok kernels ->
    if List.exists (fun p -> p < 1) pes then
      `Error (false, "--pes: PE counts must be positive")
    else begin
      let cells = Exec.Sweep.grid ~kernels ~pes ~waves ~size in
      let jobs =
        match jobs with Some j -> j | None -> Exec.Pool.default_jobs ()
      in
      let rows, elapsed =
        Exec.Pool.timed (fun () -> Exec.Sweep.run_grid ~jobs cells)
      in
      let json = Exec.Sweep.to_json rows in
      (match out with
      | Some path -> Obs.Json.write_file path json
      | None -> print_endline (Obs.Json.to_string json));
      let failed =
        List.length
          (List.filter
             (function Ok r -> not r.Exec.Sweep.r_ok | Error _ -> false)
             rows)
        + List.length (List.filter Result.is_error rows)
      in
      Printf.eprintf "sweep: %d cells in %.2fs (%d worker%s)%s\n"
        (List.length cells) elapsed jobs
        (if jobs = 1 then "" else "s")
        (match out with
        | Some path -> Printf.sprintf " -> %s" path
        | None -> "");
      if failed = 0 then `Ok ()
      else `Error (false, Printf.sprintf "%d of %d cells failed" failed
                     (List.length cells))
    end

let cmd =
  let open Cmdliner in
  let kernels =
    Arg.(value & opt (some (list string)) None
         & info [ "kernels" ] ~docv:"NAME,NAME,..."
             ~doc:(Printf.sprintf
                     "kernels to sweep (default: the whole library — %s)"
                     (String.concat ", " kernel_names)))
  in
  let pes =
    Arg.(value & opt (list int) [ 1; 2; 4; 8; 16 ]
         & info [ "pes" ] ~docv:"N,N,..."
             ~doc:"processing-element counts to sweep")
  in
  let waves =
    Arg.(value & opt (list int) [ 4 ]
         & info [ "waves" ] ~docv:"W,W,..."
             ~doc:"input wave counts to sweep")
  in
  let size =
    Arg.(value & opt int 32
         & info [ "size" ] ~docv:"N" ~doc:"kernel size parameter")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"write the JSON grid here instead of stdout")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"worker domains (default: \\$(b,EXEC_JOBS) or the \
                   available cores); the JSON bytes are identical \
                   whatever the count")
  in
  let term =
    Term.(ret (const main $ kernels $ pes $ waves $ size $ out $ jobs))
  in
  Cmd.v
    (Cmd.info "sweep" ~version:"1.0"
       ~doc:"kernel x PE-count x waves parameter sweeps on the machine \
             model, one JSON row per cell")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
