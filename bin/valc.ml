(* valc: compile a Val-subset source file to static dataflow machine code.

   Examples:
     valc program.val                      # compile, print a summary
     valc program.val --dot graph.dot      # export Graphviz
     valc program.val --scheme todd        # force Todd's for-iter scheme
     valc program.val --balance none       # skip balancing
     valc program.val --expand             # lower to pure machine cells
*)

module PC = Compiler.Program_compile
module FC = Compiler.Foriter_compile

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scheme_conv =
  Cmdliner.Arg.enum
    [ ("auto", FC.Auto); ("todd", FC.Todd); ("companion", FC.Companion) ]

let balance_conv =
  Cmdliner.Arg.enum
    [ ("optimal", `Optimal); ("reduced", `Reduced); ("naive", `Naive);
      ("none", `None) ]

(* Compile-time statistics of a machine program, as a metrics registry
   so they share the JSON serialization used by every other sink. *)
let compile_registry (compiled : PC.compiled) =
  let g = compiled.PC.cp_graph in
  let m = Obs.Metrics_registry.create () in
  let open Obs.Metrics_registry in
  incr m "compile.cells" ~by:(Dfg.Graph.node_count g);
  incr m "compile.arcs" ~by:(Dfg.Graph.arc_count g);
  incr m "compile.inputs" ~by:(List.length (Dfg.Graph.inputs g));
  incr m "compile.outputs" ~by:(List.length (Dfg.Graph.outputs g));
  incr m "compile.blocks" ~by:(List.length compiled.PC.cp_schemes);
  List.iter
    (fun (op, k) -> incr m (Printf.sprintf "compile.opcode.%s" op) ~by:k)
    (Dfg.Graph.opcode_census g);
  let fifo_stages =
    Dfg.Graph.fold_nodes g ~init:0 ~f:(fun acc n ->
        match n.Dfg.Graph.op with Dfg.Opcode.Fifo k -> acc + k | _ -> acc)
  in
  incr m "compile.fifo_stages" ~by:fifo_stages;
  m

let compile path scheme distance balance expand dot_out save_out verbose stats
    stats_json =
  try
    let source = read_file path in
    let options =
      { PC.default_options with
        PC.scheme;
        companion_distance = distance;
        balance;
        expand_macros = expand;
      }
    in
    let _prog, compiled = Compiler.Driver.compile_source ~options source in
    let g = compiled.PC.cp_graph in
    Printf.printf "%s: %d instruction cells, %d arcs\n" path
      (Dfg.Graph.node_count g) (Dfg.Graph.arc_count g);
    List.iter
      (fun (blk, s) -> Printf.printf "  block %-8s %s\n" blk s)
      compiled.PC.cp_schemes;
    if verbose then begin
      print_endline "opcode census:";
      List.iter
        (fun (op, k) -> Printf.printf "  %-12s %d\n" op k)
        (Dfg.Graph.opcode_census g)
    end;
    if stats || stats_json <> None then begin
      let m = compile_registry compiled in
      if stats then begin
        print_endline "compile statistics:";
        print_string (Obs.Metrics_registry.render m)
      end;
      match stats_json with
      | Some out ->
        Obs.Metrics_registry.write_file m out;
        Printf.printf "wrote %s\n" out
      | None -> ()
    end;
    (match dot_out with
    | Some out ->
      Dfg.Dot.write_file out g;
      Printf.printf "wrote %s\n" out
    | None -> ());
    (match save_out with
    | Some out ->
      Dfg.Text.write_file out g;
      Printf.printf "wrote machine program %s\n" out
    | None -> ());
    `Ok ()
  with
  | Sys_error msg -> `Error (false, msg)
  | Val_lang.Parser.Parse_error (msg, line, col) ->
    `Error (false, Printf.sprintf "%s:%d:%d: %s" path line col msg)
  | Val_lang.Typecheck.Error msg ->
    `Error (false, Printf.sprintf "%s: type error: %s" path msg)
  | Val_lang.Classify.Not_in_class msg ->
    `Error (false, Printf.sprintf "%s: outside the compilable class: %s" path msg)
  | Compiler.Expr_compile.Unsupported msg ->
    `Error (false, Printf.sprintf "%s: %s" path msg)

let cmd =
  let open Cmdliner in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Val source file")
  in
  let scheme =
    Arg.(value & opt scheme_conv FC.Auto
         & info [ "scheme" ] ~docv:"SCHEME"
             ~doc:"for-iter mapping: auto, todd or companion")
  in
  let distance =
    Arg.(value & opt int 2
         & info [ "distance" ] ~docv:"D"
             ~doc:"companion-scheme feedback distance (power of two)")
  in
  let balance =
    Arg.(value & opt balance_conv `Optimal
         & info [ "balance" ] ~docv:"STRATEGY"
             ~doc:"balancing: optimal, reduced, naive or none")
  in
  let expand =
    Arg.(value & flag
         & info [ "expand" ]
             ~doc:"macro-expand control sequences, index sources and FIFOs \
                   into pure instruction cells")
  in
  let dot_out =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"OUT" ~doc:"write a Graphviz rendering")
  in
  let save_out =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"OUT"
             ~doc:"write the loadable .dfg machine program (see dfsim --load)")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"print the opcode census")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"print compile statistics (cells, arcs, opcode counts, \
                   buffer stages) as a metrics summary")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"OUT"
             ~doc:"write the compile statistics as metrics JSON")
  in
  let term =
    Term.(ret (const compile $ path $ scheme $ distance $ balance $ expand
               $ dot_out $ save_out $ verbose $ stats $ stats_json))
  in
  Cmd.v
    (Cmd.info "valc" ~version:"1.0"
       ~doc:"compile Val array programs to pipelined static dataflow code")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
