(* dfsim: compile a Val program and simulate it on the static dataflow
   machine.  Input arrays are synthesized deterministically (--seed) or
   read from simple text files of one number per line (--input NAME=FILE).

   Examples:
     dfsim program.val --waves 8
     dfsim program.val --input C=c.txt --input B=b.txt
     dfsim program.val --machine --pe 16 --stored
     dfsim program.val --trace t.json --metrics-json m.json
*)

module PC = Compiler.Program_compile
module D = Compiler.Driver
module ME = Machine.Machine_engine
module Arch = Machine.Arch

(* ---------------- observability sinks ---------------- *)

let tracer_for = function
  | None -> Obs.Tracer.null
  | Some _ -> Obs.Tracer.create ()

(* one Perfetto track per instruction cell (graph-level simulator) *)
let graph_tracks g =
  let acc = ref [] in
  Dfg.Graph.iter_nodes g (fun n ->
      acc :=
        ( n.Dfg.Graph.id,
          Printf.sprintf "%s#%d %s" n.Dfg.Graph.label n.Dfg.Graph.id
            (Dfg.Opcode.name n.Dfg.Graph.op) )
        :: !acc);
  List.rev !acc

(* one Perfetto track per processing element (machine simulator) *)
let pe_tracks n_pe =
  List.init (max 1 n_pe) (fun i -> (i, Printf.sprintf "PE %d" i))

let write_trace ~tracks tracer = function
  | None -> ()
  | Some path ->
    Obs.Perfetto.write_file ~path ~process_name:"dfsim" ~track_names:tracks
      (Obs.Tracer.events tracer);
    Printf.printf "wrote trace %s (%d events%s)\n" path
      (Obs.Tracer.length tracer)
      (if Obs.Tracer.dropped tracer > 0 then
         Printf.sprintf ", %d dropped" (Obs.Tracer.dropped tracer)
       else "")

let write_metrics m = function
  | None -> ()
  | Some path ->
    Obs.Metrics_registry.write_file m path;
    Printf.printf "wrote metrics %s\n" path

(* the diffable output-stream dump shared with dfclient *)
let write_values outputs = function
  | None -> ()
  | Some path ->
    Runspec.write_values ~path outputs;
    Printf.printf "wrote values %s\n" path

(* run-metric registries are shared with dfclient and the service *)
let sim_registry = Runspec.sim_registry
let machine_registry = Runspec.machine_registry

(* Fault/sanitizer diagnostics shared by the three run paths.  A
   [Deadlock] report at quiescence is the normal end state of a primed
   feedback loop, so it is only printed on request. *)
let print_diagnostics ?(show_deadlock = false) ~violations ~stall () =
  List.iter
    (fun v -> Printf.printf "%s\n" (Fault.Violation.to_string v))
    violations;
  match stall with
  | Some sr
    when show_deadlock
         || sr.Fault.Stall_report.sr_reason <> Fault.Stall_report.Deadlock ->
    print_string (Fault.Stall_report.to_string sr)
  | Some _ | None -> ()

let parse_recover_opt = function
  | None -> None
  | Some spec -> (
    match Runspec.recovery_of_string spec with
    | Ok p -> Some p
    | Error msg -> failwith (Printf.sprintf "--recover %s: %s" spec msg))

let parse_fault_opts inject sanitize watchdog =
  let fault =
    match inject with
    | None -> None
    | Some spec -> (
      match Runspec.fault_plan_of_string spec with
      | Ok plan -> Some plan
      | Error msg -> failwith (Printf.sprintf "--inject %s: %s" spec msg))
  in
  let sanitizer g =
    if sanitize then Fault.Sanitizer.create g else Fault.Sanitizer.null
  in
  (fault, sanitizer, watchdog)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_floats path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> (
          let line = String.trim line in
          if line = "" then go acc
          else
            match float_of_string_opt line with
            | Some f -> go (f :: acc)
            | None -> failwith (Printf.sprintf "%s: bad number %S" path line))
        | exception End_of_file -> List.rev acc
      in
      go [])

let synth_wave = Runspec.synth_wave

(* Run a pre-compiled .dfg machine program (no oracle available). *)
let run_loaded path waves seed report trace_out metrics_out values_out ~fault
    ~sanitizer ~watchdog ~compile_rules =
  let g = Dfg.Text.read_file path in
  let sanitizer = sanitizer g in
  let inputs =
    List.map
      (fun (name, id) ->
        ignore id;
        (* wave size is not recorded in the .dfg; synthesize a generous
           stream and let the graph consume what it needs *)
        let st = Random.State.make [| seed; Hashtbl.hash name |] in
        (name,
         List.init (waves * 256) (fun _ ->
             Dfg.Value.Real (Random.State.float st 2.0 -. 1.0))))
      (Dfg.Graph.inputs g)
  in
  let tracer = tracer_for trace_out in
  let cfg =
    Run_config.(
      default |> with_record_firings report |> with_tracer tracer
      |> with_fault_opt fault |> with_sanitizer sanitizer
      |> with_watchdog_opt watchdog |> with_compiled compile_rules)
  in
  let result = Sim.Engine.run_cfg cfg g ~inputs in
  print_diagnostics ~violations:result.Sim.Engine.violations
    ~stall:result.Sim.Engine.stuck ();
  List.iter
    (fun (name, _) ->
      let values = Sim.Engine.output_values result name in
      Printf.printf "%s: %d packets, interval %.3f
" name
        (List.length values)
        (Sim.Metrics.output_interval result name))
    result.Sim.Engine.outputs;
  if report then print_string (Sim.Report.render g result);
  write_trace ~tracks:(graph_tracks g) tracer trace_out;
  write_metrics (sim_registry result) metrics_out;
  write_values result.Sim.Engine.outputs values_out;
  `Ok ()

let run path waves seed input_files machine pe stored no_check report load
    trace_out metrics_out values_out inject sanitize watchdog recover
    integrity checkpoint_out restore_from compile_rules =
  try
    let fault, sanitizer, watchdog =
      parse_fault_opts inject sanitize watchdog
    in
    let recovery = parse_recover_opt recover in
    if
      (not machine)
      && (recovery <> None || integrity || checkpoint_out <> None
          || restore_from <> None)
    then
      failwith
        "--recover/--integrity/--checkpoint/--restore apply to the machine \
         simulator (add --machine)";
    if load then
      run_loaded path waves seed report trace_out metrics_out values_out
        ~fault ~sanitizer ~watchdog ~compile_rules
    else begin
    let source = read_file path in
    let prog, compiled = D.compile_source source in
    let inputs =
      List.map
        (fun (name, shape) ->
          let size = PC.wave_size shape in
          match List.assoc_opt name input_files with
          | Some file ->
            let vals = read_floats file in
            if List.length vals <> size then
              failwith
                (Printf.sprintf "input %s: %d values, expected %d" name
                   (List.length vals) size);
            (name, List.map (fun f -> Dfg.Value.Real f) vals)
          | None ->
            (name, synth_wave ~seed ~elt:shape.Val_lang.Classify.sh_elt ~size name))
        compiled.PC.cp_inputs
    in
    if machine then begin
      let arch =
        { Arch.default with
          Arch.n_pe = pe;
          array_policy = (if stored then Arch.Stored else Arch.Streamed);
        }
      in
      let feeds =
        List.map
          (fun (n, w) ->
            (n, List.concat_map (fun _ -> w) (List.init waves Fun.id)))
          inputs
      in
      let tracer = tracer_for trace_out in
      let g = compiled.PC.cp_graph in
      let cfg =
        Run_config.(
          default |> with_max_time ME.default_max_time |> with_tracer tracer
          |> with_fault_opt fault |> with_sanitizer (sanitizer g)
          |> with_watchdog_opt watchdog |> with_recovery_opt recovery
          |> with_integrity integrity |> with_compiled compile_rules)
      in
      let m = ME.create_cfg cfg ~arch g ~inputs:feeds in
      (match restore_from with
      | None -> ()
      | Some p -> (
        match Recover.Checkpoint.load ~path:p ~graph:g with
        | Ok sn ->
          ME.restore m sn;
          Printf.printf "restored checkpoint %s (t=%d)\n" p sn.ME.sn_time
        | Error e ->
          failwith
            (Printf.sprintf "--restore %s: %s" p
               (Recover.Checkpoint.load_error_to_string e))));
      ME.advance m ~until:max_int;
      let r = ME.result m in
      (* a deadlock caused by a dead PE is never the benign end state of
         a primed loop: always show it *)
      let show_deadlock =
        match r.ME.stall with
        | Some sr -> sr.Fault.Stall_report.sr_dead_pes <> []
        | None -> false
      in
      print_diagnostics ~show_deadlock ~violations:r.ME.violations
        ~stall:r.ME.stall ();
      (* machine mode has no interpreter oracle, so a silently-corrupted
         run would otherwise look healthy — say so up front *)
      (match fault with
      | Some plan when Fault.Fault_plan.has_corruption plan && not integrity
        ->
        print_endline
          "warning: corruption faults injected with integrity checking \
           disabled — outputs may be silently wrong (add --integrity to \
           detect, plus --recover to heal)"
      | _ -> ());
      Printf.printf "machine: %s\n" (Arch.describe arch);
      (match recovery with
      | Some p -> Printf.printf "recovery: %s\n" (Recover.describe p)
      | None -> ());
      Printf.printf "finished at t=%d (quiescent=%b)\n" r.ME.end_time
        r.ME.quiescent;
      let s = r.ME.stats in
      Printf.printf
        "dispatches=%d fu=%d am=%d results=%d acks=%d am-fraction=%.3f\n"
        s.ME.dispatches s.ME.fu_ops s.ME.am_ops s.ME.result_packets
        s.ME.ack_packets (ME.am_fraction s);
      if recovery <> None then
        Printf.printf "retransmits=%d checkpoints=%d recoveries=%d\n"
          s.ME.retransmits r.ME.checkpoints r.ME.recoveries;
      if s.ME.corruptions > 0 || s.ME.corrupt_detected > 0 then
        Printf.printf "corruptions=%d detected=%d healed=%d\n" s.ME.corruptions
          s.ME.corrupt_detected s.ME.corrupt_healed;
      (match checkpoint_out with
      | None -> ()
      | Some p ->
        Recover.Checkpoint.save ~path:p ~graph:g (ME.snapshot m);
        Printf.printf "wrote checkpoint %s (t=%d)\n" p r.ME.end_time);
      write_trace ~tracks:(pe_tracks arch.Arch.n_pe) tracer trace_out;
      write_metrics (machine_registry r) metrics_out;
      write_values r.ME.outputs values_out
    end
    else begin
      let tracer = tracer_for trace_out in
      (match fault with
      | Some plan when not (Fault.Fault_plan.delay_only plan) ->
        print_endline
          "note: the graph-level simulator honours delay faults only \
           (use --machine for dup/drop-ack/stall/slowdown)"
      | _ -> ());
      let cfg =
        Run_config.(
          default |> with_tracer tracer |> with_fault_opt fault
          |> with_sanitizer (sanitizer compiled.PC.cp_graph)
          |> with_watchdog_opt watchdog |> with_compiled compile_rules)
      in
      let result = D.run_cfg ~waves cfg compiled ~inputs in
      print_diagnostics ~violations:result.Sim.Engine.violations
        ~stall:result.Sim.Engine.stuck ();
      if not no_check then begin
        D.check_against_oracle prog compiled result ~inputs;
        print_endline "outputs verified against the Val interpreter"
      end;
      List.iter
        (fun (name, _) ->
          let interval = Sim.Metrics.output_interval result name in
          let wave = D.output_wave compiled result name in
          Printf.printf "%s: %d elements/wave, interval %.3f\n" name
            (List.length wave) interval;
          let shown = List.filteri (fun i _ -> i < 8) wave in
          Printf.printf "  [%s%s]\n"
            (String.concat ", " (List.map Dfg.Value.to_string shown))
            (if List.length wave > 8 then ", ..." else ""))
        compiled.PC.cp_outputs;
      if report then begin
        let r2 =
          D.run_cfg ~waves
            Run_config.(default |> with_record_firings true)
            compiled ~inputs
        in
        print_string (Sim.Report.render compiled.PC.cp_graph r2)
      end;
      write_trace ~tracks:(graph_tracks compiled.PC.cp_graph) tracer trace_out;
      write_metrics (sim_registry result) metrics_out;
      write_values result.Sim.Engine.outputs values_out
    end;
    `Ok ()
    end
  with
  | Sys_error msg | Failure msg -> `Error (false, msg)
  | Val_lang.Parser.Parse_error (msg, line, col) ->
    `Error (false, Printf.sprintf "%s:%d:%d: %s" path line col msg)
  | Val_lang.Classify.Not_in_class msg | Compiler.Driver.Mismatch msg ->
    `Error (false, msg)
  | Compiler.Expr_compile.Unsupported msg -> `Error (false, msg)

let cmd =
  let open Cmdliner in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Val source file")
  in
  let waves =
    Arg.(value & opt int 4
         & info [ "waves" ] ~docv:"N" ~doc:"input waves to stream")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED" ~doc:"seed for synthesized inputs")
  in
  let input_files =
    Arg.(value & opt_all (pair ~sep:'=' string file) []
         & info [ "input" ] ~docv:"NAME=FILE"
             ~doc:"read an input array from a file (one number per line)")
  in
  let machine =
    Arg.(value & flag
         & info [ "machine" ]
             ~doc:"run on the machine-level simulator (PE/FU/AM/RN)")
  in
  let pe =
    Arg.(value & opt int Arch.default.Arch.n_pe
         & info [ "pe" ] ~docv:"N" ~doc:"processing elements (machine mode)")
  in
  let stored =
    Arg.(value & flag
         & info [ "stored" ]
             ~doc:"store arrays in array memory (baseline) instead of \
                   streaming them")
  in
  let no_check =
    Arg.(value & flag
         & info [ "no-check" ] ~doc:"skip the interpreter oracle comparison")
  in
  let report =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:"print per-cell firing statistics (busiest stages,                    utilization, concurrency)")
  in
  let load =
    Arg.(value & flag
         & info [ "load" ]
             ~doc:"FILE is a compiled .dfg machine program (from valc                    --save) rather than Val source")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"OUT"
             ~doc:"write a Chrome trace-event (Perfetto) JSON of the run: \
                   one track per instruction cell (or per PE with \
                   --machine), one slice per firing; open in \
                   ui.perfetto.dev or chrome://tracing")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"OUT"
             ~doc:"write run metrics (counters, gauges, histograms) as JSON")
  in
  let values_out =
    Arg.(value & opt (some string) None
         & info [ "values-out" ] ~docv:"OUT"
             ~doc:"write every output packet as one name/time/value line \
                   (reals in bit-exact hex-float form); dfclient writes the \
                   same format, so a served run diffs against a standalone \
                   one")
  in
  let inject =
    Arg.(value & opt (some string) None
         & info [ "inject" ] ~docv:"SPEC"
             ~doc:"inject deterministic faults; SPEC is comma-separated \
                   key=value with keys seed, delay, dup, drop-ack, drop, \
                   stall, corrupt, corrupt-ctl (probabilities), delay-max, \
                   stall-max, fu-slow, am-slow, crash-at (magnitudes), \
                   crash-pe (PE index), e.g. seed=7,delay=0.2,corrupt=0.05; \
                   the same SPEC always perturbs the same packets")
  in
  let sanitize =
    Arg.(value & flag
         & info [ "sanitize" ]
             ~doc:"shadow-check dataflow invariants (one token per arc, \
                   acknowledge conservation) and report violations instead \
                   of aborting")
  in
  let watchdog =
    Arg.(value & opt (some int) None
         & info [ "watchdog" ] ~docv:"N"
             ~doc:"stop and print a stall report if no cell fires for N \
                   consecutive time units while packets are in flight")
  in
  let recover =
    Arg.(value & opt ~vopt:(Some "") (some string) None
         & info [ "recover" ] ~docv:"SPEC"
             ~doc:"enable checkpoint/retransmission recovery (machine mode): \
                   lost packets and acknowledges are resent and a crash-pe \
                   fault rolls back to the last checkpoint instead of \
                   wedging.  SPEC is comma-separated key=int over every \
                   (checkpoint interval), timeout, backoff, retries; bare \
                   --recover uses the defaults")
  in
  let integrity =
    Arg.(value & flag
         & info [ "integrity" ]
             ~doc:"verify per-packet checksums at delivery (machine mode): a \
                   corrupted payload is detected and discarded instead of \
                   silently consumed; with --recover the producer's \
                   retransmission replaces it and the run heals")
  in
  let checkpoint_out =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"OUT"
             ~doc:"write the final machine state as a versioned checkpoint \
                   JSON (machine mode); a later run can --restore it")
  in
  let restore_from =
    Arg.(value & opt (some string) None
         & info [ "restore" ] ~docv:"FILE"
             ~doc:"restore machine state from a checkpoint written by \
                   --checkpoint before running (machine mode); the resumed \
                   run is bit-identical to the one that saved it")
  in
  let compile_rules =
    Arg.(value & flag
         & info [ "compiled" ]
             ~doc:"specialize the firing rules into per-cell closures at \
                   program load instead of interpreting cell records per \
                   firing; results, stats and timings are bit-identical to \
                   the interpreted dispatcher")
  in
  let term =
    Term.(ret (const run $ path $ waves $ seed $ input_files $ machine $ pe
               $ stored $ no_check $ report $ load $ trace_out $ metrics_out
               $ values_out $ inject $ sanitize $ watchdog $ recover
               $ integrity $ checkpoint_out $ restore_from $ compile_rules))
  in
  Cmd.v
    (Cmd.info "dfsim" ~version:"1.0"
       ~doc:"simulate compiled Val programs on a static dataflow machine")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
