(* servebench: seed the served-path performance trajectory.

   Three numbers, written as BENCH_SERVE.json in the Bench_json schema
   the paper-figure bench already uses:

   - served throughput: N concurrent clients each issue a stream of
     identical small simulate requests against an in-process dfserve;
     after the first compile every request is a cache hit, so this
     measures the service path (wire, queueing, dispatch, simulation),
     not the compiler;
   - compiled-program cache hit rate over that same stream, from the
     server's own counters;
   - failover latency: one timed rendezvous-routed submission against a
     two-member cluster whose first-ranked member is dead, i.e. the
     cost of discovering a dead replica and landing the request on the
     survivor.

   Absolute numbers vary with the host; the JSON exists so the
   trajectory is tracked, not to gate a threshold.  The only hard [ok]
   gates are structural: every request served, the hit rate above one
   half, the failover answered by the live member. *)

module J = Obs.Json
module P = Serve.Protocol
module B = Obs.Bench_json

let bench_program = P.Kernel { name = "hydro"; size = 8 }
let bench_run = { (P.default_run bench_program) with P.waves = 1 }

let main clients per out =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "servebench-%d.sock" (Unix.getpid ()))
  in
  let config =
    { (Serve.Server.default_config ~socket_path:socket) with
      Serve.Server.workers = 2;
      max_pending = (clients * per) + 8;
      idle_timeout = None }
  in
  let server = Serve.Server.create config in
  let sd = Domain.spawn (fun () -> Serve.Server.serve server) in
  Fun.protect
    ~finally:(fun () ->
      (try
         let conn = Serve.Client.connect socket in
         ignore (Serve.Client.rpc conn P.Shutdown);
         Serve.Client.close conn
       with _ -> ());
      Domain.join sd)
    (fun () ->
      let rpc_ok conn req =
        let resp = Serve.Client.rpc conn req in
        if not (P.response_ok resp) then
          failwith ("request failed: " ^ J.to_string resp);
        resp
      in
      (* warm the compiled-program cache so the throughput stream
         measures the service path, not one compile *)
      let conn = Serve.Client.connect socket in
      ignore (rpc_ok conn (P.Simulate bench_run));
      Serve.Client.close conn;
      let t0 = Unix.gettimeofday () in
      let ds =
        List.init clients (fun _ ->
            Domain.spawn (fun () ->
                let conn = Serve.Client.connect socket in
                Fun.protect
                  ~finally:(fun () -> Serve.Client.close conn)
                  (fun () ->
                    for _ = 1 to per do
                      ignore (rpc_ok conn (P.Simulate bench_run))
                    done)))
      in
      List.iter Domain.join ds;
      let elapsed = Unix.gettimeofday () -. t0 in
      let total = clients * per in
      let rps = float_of_int total /. elapsed in
      let conn = Serve.Client.connect socket in
      let stats = rpc_ok conn P.Stats in
      Serve.Client.close conn;
      let geti f = Option.value ~default:0 (J.get_int (J.member f stats)) in
      let hits = geti "cache_hits" and misses = geti "cache_misses" in
      let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
      (* failover: a two-member cluster whose rendezvous-first member
         for this program is dead, so the timed submission has to
         discover the corpse and move on *)
      let key = Serve.Cluster.routing_key bench_program in
      let dead =
        let rec hunt i =
          let cand = Printf.sprintf "%s.dead%d" socket i in
          match Serve.Cluster.rendezvous_order ~key [ cand; socket ] with
          | first :: _ when first = cand -> cand
          | _ -> hunt (i + 1)
        in
        hunt 0
      in
      let retry =
        { Serve.Client.attempts = 2;
          base_delay = 0.02;
          max_delay = 0.05;
          retry_seed = 1 }
      in
      let cluster = Serve.Cluster.create ~deadline:10.0 ~retry [ dead; socket ] in
      let t1 = Unix.gettimeofday () in
      let resp, served_by = Serve.Cluster.submit cluster ~key (P.Simulate bench_run) in
      let failover_ms = (Unix.gettimeofday () -. t1) *. 1000.0 in
      let failover_ok = served_by = socket && P.response_ok resp in
      Printf.printf
        "servebench: %d requests in %.2fs (%.0f req/s), cache %d/%d hits, \
         failover %.0f ms\n"
        total elapsed rps hits (hits + misses) failover_ms;
      B.write_file ~path:out
        ~meta:
          [ ("suite", J.String "dfserve-federation");
            ("generated_by", J.String "bin/servebench.exe");
            ("clients", J.Int clients);
            ("requests_per_client", J.Int per) ]
        [ B.entry ~measured:rps ~units:"requests/s"
            ~detail:
              (Printf.sprintf "%d clients x %d cached simulate requests, 2 workers"
                 clients per)
            ~ok:(rps > 0.0) "S1" "served throughput";
          B.entry ~measured:hit_rate ~units:"fraction"
            ~detail:(Printf.sprintf "%d hits, %d misses" hits misses)
            ~ok:(hit_rate > 0.5) "S2" "compiled-program cache hit rate";
          B.entry ~measured:failover_ms ~units:"ms"
            ~detail:"2-member cluster, rendezvous-first member dead"
            ~ok:failover_ok "S3" "failover latency" ];
      Printf.printf "wrote %s\n" out)

let main_safe clients per out =
  try
    main clients per out;
    `Ok ()
  with
  | Failure msg -> `Error (false, msg)
  | Unix.Unix_error (e, fn, arg) ->
    `Error (false, Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))

open Cmdliner

let cmd =
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N" ~doc:"concurrent client domains")
  in
  let per =
    Arg.(value & opt int 25
         & info [ "requests" ] ~docv:"N" ~doc:"simulate requests per client")
  in
  let out =
    Arg.(value & opt string "BENCH_SERVE.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"benchmark report path")
  in
  Cmd.v
    (Cmd.info "servebench" ~version:"1.0"
       ~doc:"served-path benchmark: throughput, cache hit rate and \
             failover latency against an in-process dfserve")
    Term.(ret (const main_safe $ clients $ per $ out))

let () = exit (Cmdliner.Cmd.eval cmd)
