(* chaos: randomized fault soak with automatic repro shrinking.

   Each scenario draws a kernel and a multi-fault plan (delays, dups,
   drops, stalls, slowdowns, corruption, a possible PE crash) as a pure
   function of (master seed, scenario index), then runs the machine
   differential fully protected — integrity checksums, a recovery
   policy, the sanitizer, a generous watchdog.  Under that armour every
   scenario must end with outputs bit-identical to the clean run, no
   violations and no unexpected stall; anything else is a real bug in
   the protection stack.

   A failing scenario is not just reported: its 12-parameter spec is
   delta-debugged down to a minimal still-failing plan (Fault.Shrink),
   the wave count and kernel size are narrowed the same way, and the
   result is printed as a one-line faultcheck command that reproduces
   the failure exactly.  Scenario generation and shrinking are
   deterministic, so the same master seed yields the same verdicts and
   the same minimal repros whatever the worker count.

   Examples:
     chaos --runs 40 --seed 1
     chaos --runs 200 --jobs 8 --out chaos-reports
     chaos --kernel tridiag --runs 20 *)

module PC = Compiler.Program_compile
module D = Compiler.Driver
module K = Kernels
module FP = Fault.Fault_plan
module FD = Fault_diff
module ME = Machine.Machine_engine
module Prng = Fault.Prng
module Shrink = Fault.Shrink

let replicate waves xs = List.concat_map (fun _ -> xs) (List.init waves Fun.id)

let feeds (compiled : PC.compiled) ~waves kernel_inputs =
  List.map
    (fun (name, _shape) ->
      match List.assoc_opt name kernel_inputs with
      | Some wave -> (name, replicate waves wave)
      | None -> failwith (Printf.sprintf "kernel input %s missing" name))
    compiled.PC.cp_inputs

(* --- scenario generation -------------------------------------------- *)

(* Every draw is a keyed hash of (master, scenario index, slot): no
   sequential PRNG state, so scenario [i] is the same plan no matter
   how many scenarios run, in what order, on how many domains. *)
let gen_spec ~master ~index ~n_pe =
  let h slot = Prng.mix master [ index; slot ] in
  let coin slot denom = Prng.int_of_hash (h slot) denom = 0 in
  (* each fault kind is armed about half the time, so scenarios range
     from single-fault to everything-at-once *)
  let prob slot cap =
    if coin slot 2 then Prng.float_of_hash (h (slot + 1)) *. cap else 0.0
  in
  let mag slot cap =
    if coin slot 2 then 1 + Prng.int_of_hash (h (slot + 1)) cap else 0
  in
  let crash = coin 40 4 in
  { FP.seed = Prng.int_of_hash (h 0) 1_000_000;
    delay_prob = prob 2 0.3;
    delay_max = 1 + Prng.int_of_hash (h 4) 8;
    dup_prob = prob 6 0.2;
    drop_ack_prob = prob 10 0.1;
    drop_prob = prob 14 0.1;
    stall_prob = prob 18 0.2;
    stall_max = 1 + Prng.int_of_hash (h 20) 16;
    fu_slow = mag 22 3;
    am_slow = mag 26 3;
    corrupt_prob = prob 30 0.05;
    corrupt_ctl_prob = prob 34 0.05;
    crash_pe = (if crash then Prng.int_of_hash (h 42) n_pe else -1);
    crash_at = (if crash then 20 + Prng.int_of_hash (h 44) 200 else 0);
  }

let pick_kernel ~master ~index kernels =
  List.nth kernels (Prng.int_of_hash (Prng.mix master [ index; 1 ]) (List.length kernels))

(* --- the oracle ------------------------------------------------------ *)

let stall_unexpected = function
  | None -> false
  | Some sr -> sr.Fault.Stall_report.sr_reason <> Fault.Stall_report.Deadlock

(* the watchdog sits above every injected latency source: routing
   delays, PE stall windows, FU/AM slowdowns, and the full
   retransmission backoff window *)
let watchdog_for (spec : FP.spec) (recovery : ME.recovery) =
  200
  + (4 * spec.FP.delay_max)
  + (4 * spec.FP.stall_max)
  + (16 * (spec.FP.fu_slow + spec.FP.am_slow))
  + (17 * recovery.ME.retransmit_after)

type subject = {
  kernel : K.kernel;
  size : int;
  waves : int;
  graph : Dfg.Graph.t;
  inputs : (string * Dfg.Value.t list) list;
}

let compile_subject (k : K.kernel) ~size ~waves =
  let st = Random.State.make [| Hashtbl.hash k.K.name |] in
  let _, compiled =
    D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source size)
  in
  let inputs = feeds compiled ~waves (k.K.inputs size st) in
  { kernel = k; size; waves; graph = compiled.PC.cp_graph; inputs }

let check ~recovery subject (spec : FP.spec) =
  let plan = FP.make spec in
  FD.machine
    ~watchdog:(watchdog_for spec recovery)
    ~recovery ~integrity:true ~plan subject.graph ~inputs:subject.inputs

let outcome_ok (o : FD.outcome) =
  o.FD.equal && o.FD.faulted_violations = []
  && not (stall_unexpected o.FD.faulted_stall)
  && o.FD.clean_digest = o.FD.faulted_digest

(* --- shrinking a failure -------------------------------------------- *)

(* the spec lattice first (Fault.Shrink), then the subject: fewer
   waves, then a smaller kernel size — each adopted only while the
   minimal spec still fails *)
let shrink_failure ~recovery subject spec =
  let still_fails subject spec =
    not (outcome_ok (check ~recovery subject spec))
  in
  let r = Shrink.minimize ~still_fails:(still_fails subject) spec in
  let subject = ref subject in
  let attempts = ref r.Shrink.attempts in
  let narrow desc candidates rebuild =
    List.iter
      (fun c ->
        let s = rebuild c in
        incr attempts;
        if still_fails s r.Shrink.minimal then subject := s)
      candidates;
    ignore desc
  in
  let s0 = !subject in
  narrow "waves"
    (List.filter (fun w -> w < s0.waves) [ 1; 2 ])
    (fun waves -> { s0 with waves; inputs = [] } |> fun s ->
       compile_subject s.kernel ~size:s.size ~waves);
  let s1 = !subject in
  narrow "size"
    (List.filter (fun n -> n < s1.size) [ 4; 8; 16 ])
    (fun size -> compile_subject s1.kernel ~size ~waves:s1.waves);
  (!subject, r, !attempts)

(* the one-line command that replays the minimal failure exactly *)
let repro_command ~recovery subject (spec : FP.spec) =
  Printf.sprintf
    "faultcheck --kernel %s --seeds %d --size %d --waves %d --inject '%s' \
     --recover %s --integrity --machine"
    subject.kernel.K.name spec.FP.seed subject.size subject.waves
    (FP.to_string spec) (Recover.to_string recovery)

(* --- reporting ------------------------------------------------------- *)

let dump_failure ~dir ~recovery ~index subject ~original
    (r : Shrink.result) ~attempts (o : FD.outcome) =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  let path =
    Filename.concat dir
      (Printf.sprintf "chaos-%03d-%s.txt" index subject.kernel.K.name)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "scenario %d, kernel %s, size %d, waves %d\n\
         original spec: %s\n\
         minimal spec:  %s\n\
         shrink: %d oracle runs, %d adopted steps\n"
        index subject.kernel.K.name subject.size subject.waves
        (FP.to_string original)
        (FP.to_string r.Shrink.minimal)
        attempts
        (List.length r.Shrink.steps);
      List.iter
        (fun (s : Shrink.step) ->
          Printf.fprintf oc "  - %s -> %s\n" s.Shrink.s_desc
            (FP.to_string s.Shrink.s_spec))
        r.Shrink.steps;
      Printf.fprintf oc "repro: %s\n\n"
        (repro_command ~recovery subject r.Shrink.minimal);
      Printf.fprintf oc "clean end %d, faulted end %d, recoveries %d\n"
        o.FD.clean_end o.FD.faulted_end o.FD.faulted_recoveries;
      Printf.fprintf oc "digest clean %d, faulted %d\n" o.FD.clean_digest
        o.FD.faulted_digest;
      (match o.FD.diagnosis with
      | Some d -> Printf.fprintf oc "diagnosis: %s\n" d
      | None -> ());
      if o.FD.mismatches <> [] then begin
        output_string oc "output mismatches:\n";
        List.iter
          (fun m -> Printf.fprintf oc "  %s\n" (FD.mismatch_to_string m))
          o.FD.mismatches
      end;
      if o.FD.faulted_violations <> [] then begin
        output_string oc "violations:\n";
        List.iter
          (fun v -> Printf.fprintf oc "  %s\n" (Fault.Violation.to_string v))
          o.FD.faulted_violations
      end;
      match o.FD.faulted_stall with
      | Some sr -> output_string oc (Fault.Stall_report.to_string sr)
      | None -> ());
  (match o.FD.faulted_snapshot with
  | Some sn ->
    let spath =
      Filename.concat dir
        (Printf.sprintf "chaos-%03d-%s-state.json" index subject.kernel.K.name)
    in
    Recover.Checkpoint.save ~path:spath ~graph:subject.graph sn
  | None -> ());
  path

(* one scenario, start to finish; the report goes into [buf] so the
   soak can fan out across domains and still print in index order *)
let run_scenario ~master ~size ~waves ~recovery ~dir ~kernels ~buf index =
  let spec = gen_spec ~master ~index ~n_pe:Machine.Arch.default.Machine.Arch.n_pe in
  let kernel = pick_kernel ~master ~index kernels in
  let subject = compile_subject kernel ~size ~waves in
  let o = check ~recovery subject spec in
  if outcome_ok o then begin
    let armed =
      List.length
        (List.filter Fun.id
           [ spec.FP.delay_prob > 0.0; spec.FP.dup_prob > 0.0;
             spec.FP.drop_ack_prob > 0.0; spec.FP.drop_prob > 0.0;
             spec.FP.stall_prob > 0.0; spec.FP.fu_slow > 0;
             spec.FP.am_slow > 0; spec.FP.corrupt_prob > 0.0;
             spec.FP.corrupt_ctl_prob > 0.0; spec.FP.crash_pe >= 0 ])
    in
    Printf.bprintf buf
      "ok   #%03d %-14s %d faults (clean end %d, faulted end %d%s%s)\n" index
      kernel.K.name armed o.FD.clean_end o.FD.faulted_end
      (if o.FD.faulted_recoveries > 0 then
         Printf.sprintf ", %d recovery" o.FD.faulted_recoveries
       else "")
      (match o.FD.faulted_snapshot with
      | Some sn when sn.ME.sn_stats.ME.corruptions > 0 ->
        Printf.sprintf ", %d corrupt/%d healed" sn.ME.sn_stats.ME.corruptions
          sn.ME.sn_stats.ME.corrupt_healed
      | _ -> "");
    true
  end
  else begin
    let min_subject, r, attempts = shrink_failure ~recovery subject spec in
    let min_outcome = check ~recovery min_subject r.Shrink.minimal in
    let path =
      dump_failure ~dir ~recovery ~index min_subject ~original:spec r ~attempts
        min_outcome
    in
    Printf.bprintf buf
      "FAIL #%03d %-14s (%d mismatches, %d violations) -> %s\n\
      \     minimal: %s\n\
      \     repro:   %s\n"
      index kernel.K.name
      (List.length min_outcome.FD.mismatches)
      (List.length min_outcome.FD.faulted_violations)
      path
      (FP.to_string r.Shrink.minimal)
      (repro_command ~recovery min_subject r.Shrink.minimal);
    false
  end

let main runs master size waves dir kernel_filter recover jobs =
  let recovery =
    match Recover.of_string (Option.value recover ~default:"") with
    | Ok p -> p
    | Error e ->
      failwith (Printf.sprintf "--recover %s: %s" (Option.get recover) e)
  in
  let kernels =
    match kernel_filter with
    | None -> K.all
    | Some name -> (
      match List.filter (fun (k : K.kernel) -> k.K.name = name) K.all with
      | [] ->
        failwith
          (Printf.sprintf "--kernel %s: unknown kernel (have: %s)" name
             (String.concat ", "
                (List.map (fun (k : K.kernel) -> k.K.name) K.all)))
      | ks -> ks)
  in
  let jobs = match jobs with Some j -> j | None -> Exec.Pool.default_jobs () in
  let indices = List.init runs Fun.id in
  let results, elapsed =
    Exec.Pool.timed (fun () ->
        Exec.Pool.map_result ~jobs
          (fun index ->
            let buf = Buffer.create 256 in
            let ok =
              run_scenario ~master ~size ~waves ~recovery ~dir ~kernels ~buf
                index
            in
            (Buffer.contents buf, ok))
          indices)
  in
  let failures = ref 0 in
  List.iter2
    (fun index r ->
      match r with
      | Ok (report, ok) ->
        print_string report;
        if not ok then incr failures
      | Error (e : Exec.Pool.error) ->
        incr failures;
        Printf.printf "FAIL #%03d raised %s\n" index e.Exec.Pool.message)
    indices results;
  Printf.eprintf "chaos: %d scenarios in %.2fs (%d worker%s)\n" runs elapsed
    jobs
    (if jobs = 1 then "" else "s");
  if !failures = 0 then begin
    Printf.printf
      "all %d chaos scenarios survived: protected runs bit-identical to \
       clean\n"
      runs;
    `Ok ()
  end
  else
    `Error
      (false, Printf.sprintf "%d of %d chaos scenarios failed" !failures runs)

let main_safe runs master size waves dir kernel recover jobs =
  try main runs master size waves dir kernel recover jobs
  with Failure msg -> `Error (false, msg)

let cmd =
  let open Cmdliner in
  let runs =
    Arg.(value & opt int 40
         & info [ "runs" ] ~docv:"N" ~doc:"number of randomized scenarios")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S"
             ~doc:"master seed; scenario $(i,i) is a pure function of \
                   (seed, i), so the same seed replays the same soak")
  in
  let size =
    Arg.(value & opt int 8
         & info [ "size" ] ~docv:"N" ~doc:"kernel size parameter")
  in
  let waves =
    Arg.(value & opt int 2
         & info [ "waves" ] ~docv:"W" ~doc:"input waves to stream")
  in
  let dir =
    Arg.(value & opt string "chaos-reports"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"directory for failure dumps (created on first failure)")
  in
  let kernel =
    Arg.(value & opt (some string) None
         & info [ "kernel" ] ~docv:"NAME"
             ~doc:"restrict scenarios to a single kernel")
  in
  let recover =
    Arg.(value & opt (some string) None
         & info [ "recover" ] ~docv:"SPEC"
             ~doc:"recovery policy for every scenario (default: the \
                   standard policy); keys every, timeout, backoff, retries")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"worker domains (default: \\$(b,EXEC_JOBS) or the \
                   available cores); verdicts and repros are identical \
                   whatever the count")
  in
  let term =
    Term.(ret (const main_safe $ runs $ seed $ size $ waves $ dir $ kernel
               $ recover $ jobs))
  in
  Cmd.v
    (Cmd.info "chaos" ~version:"1.0"
       ~doc:"randomized fault soak: every protected run must match its \
             clean run bit for bit; failures are delta-debugged to a \
             minimal one-line repro")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
