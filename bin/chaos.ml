(* chaos: randomized fault soak with automatic repro shrinking.

   Each scenario draws a kernel and a multi-fault plan (delays, dups,
   drops, stalls, slowdowns, corruption, a possible PE crash) as a pure
   function of (master seed, scenario index), then runs the machine
   differential fully protected — integrity checksums, a recovery
   policy, the sanitizer, a generous watchdog.  Under that armour every
   scenario must end with outputs bit-identical to the clean run, no
   violations and no unexpected stall; anything else is a real bug in
   the protection stack.

   A failing scenario is not just reported: its 12-parameter spec is
   delta-debugged down to a minimal still-failing plan (Fault.Shrink),
   the wave count and kernel size are narrowed the same way, and the
   result is printed as a one-line faultcheck command that reproduces
   the failure exactly.  Scenario generation and shrinking are
   deterministic, so the same master seed yields the same verdicts and
   the same minimal repros whatever the worker count.

   With --serve every scenario's protected faulted run is additionally
   replayed through a live in-process dfserve instance, and the served
   response must reproduce the standalone run byte for byte: same
   output digest, same end time, same stall report.  That closes the
   loop between the fault harness and the service path under real
   client concurrency.

   With --serve-kill the server is a real dfserve process with a
   write-ahead journal, and a killer thread SIGKILLs it at seeded
   points mid-soak and restarts it against the same journal.  Every
   scenario is submitted under an idempotency key through the
   resilient retrying client, so requests that die with the server are
   reissued and may be answered from the journal or resumed from a
   preemption checkpoint — and must still match the standalone run
   byte for byte.  That is the crash-safety proof: no kill point may
   change a single served bit.

   With --serve-cluster N the server is a federation of N real dfserve
   processes, each with its own journal, and the killer SIGKILLs and
   restarts random members mid-soak.  Scenarios route through the
   rendezvous-hashing failover client; about a third of them are
   additionally force-migrated live from their home member to the next
   replica mid-run.  Whatever members die, restart, compact their
   journals or hand jobs to each other, every answer must still match
   its standalone run byte for byte.

   Examples:
     chaos --runs 40 --seed 1
     chaos --runs 200 --jobs 8 --out chaos-reports
     chaos --kernel tridiag --runs 20
     chaos --runs 40 --serve
     chaos --runs 50 --serve-kill --kills 4
     chaos --runs 30 --serve-cluster 3 --kills 5 *)

module PC = Compiler.Program_compile
module D = Compiler.Driver
module K = Kernels
module FP = Fault.Fault_plan
module FD = Fault_diff
module ME = Machine.Machine_engine
module Prng = Fault.Prng
module Shrink = Fault.Shrink

(* --- scenario generation -------------------------------------------- *)

(* Every draw is a keyed hash of (master, scenario index, slot): no
   sequential PRNG state, so scenario [i] is the same plan no matter
   how many scenarios run, in what order, on how many domains. *)
let gen_spec ~master ~index ~n_pe =
  let h slot = Prng.mix master [ index; slot ] in
  let coin slot denom = Prng.int_of_hash (h slot) denom = 0 in
  (* each fault kind is armed about half the time, so scenarios range
     from single-fault to everything-at-once *)
  let prob slot cap =
    if coin slot 2 then Prng.float_of_hash (h (slot + 1)) *. cap else 0.0
  in
  let mag slot cap =
    if coin slot 2 then 1 + Prng.int_of_hash (h (slot + 1)) cap else 0
  in
  let crash = coin 40 4 in
  { FP.seed = Prng.int_of_hash (h 0) 1_000_000;
    delay_prob = prob 2 0.3;
    delay_max = 1 + Prng.int_of_hash (h 4) 8;
    dup_prob = prob 6 0.2;
    drop_ack_prob = prob 10 0.1;
    drop_prob = prob 14 0.1;
    stall_prob = prob 18 0.2;
    stall_max = 1 + Prng.int_of_hash (h 20) 16;
    fu_slow = mag 22 3;
    am_slow = mag 26 3;
    corrupt_prob = prob 30 0.05;
    corrupt_ctl_prob = prob 34 0.05;
    crash_pe = (if crash then Prng.int_of_hash (h 42) n_pe else -1);
    crash_at = (if crash then 20 + Prng.int_of_hash (h 44) 200 else 0);
  }

let pick_kernel ~master ~index kernels =
  List.nth kernels (Prng.int_of_hash (Prng.mix master [ index; 1 ]) (List.length kernels))

(* --- the oracle ------------------------------------------------------ *)

let stall_unexpected = Runspec.stall_unexpected

(* the chaos watchdog starts from a higher floor than faultcheck's: the
   everything-at-once scenarios stack latency sources *)
let watchdog_for (spec : FP.spec) (recovery : ME.recovery) =
  Runspec.watchdog_for ~base:200 spec (Some recovery)
  + (if spec.FP.stall_prob = 0.0 then 4 * spec.FP.stall_max else 0)

type subject = Runspec.subject = {
  kernel : K.kernel;
  size : int;
  waves : int;
  compiled : PC.compiled;
  graph : Dfg.Graph.t;
  inputs : (string * Dfg.Value.t list) list;
}

let compile_subject = Runspec.compile_subject

let check ~recovery subject (spec : FP.spec) =
  let plan = FP.make spec in
  FD.machine
    ~watchdog:(watchdog_for spec recovery)
    ~recovery ~integrity:true ~plan subject.graph ~inputs:subject.inputs

let outcome_ok (o : FD.outcome) =
  o.FD.equal && o.FD.faulted_violations = []
  && not (stall_unexpected o.FD.faulted_stall)
  && o.FD.clean_digest = o.FD.faulted_digest

(* --- replay through a live server ------------------------------------ *)

(* The same protected faulted run as a simulate request.
   Fault_plan.to_string round-trips %.17g-exactly and the server
   rebuilds the identical Run_config, so the served response must
   reproduce the standalone run byte for byte. *)
let replay_run ?idem ~recovery subject (spec : FP.spec) =
  let module SP = Serve.Protocol in
  { (SP.default_run
       (SP.Kernel { name = subject.kernel.K.name; size = subject.size }))
    with
    SP.waves = subject.waves;
    engine = `Machine;
    fault = Some (FP.to_string spec);
    recovery = Some (Recover.to_string recovery);
    integrity = true;
    watchdog = SP.At (watchdog_for spec recovery);
    sanitize = true;
    idem }

let replay_compare resp (o : FD.outcome) =
  let module SP = Serve.Protocol in
  let module J = Obs.Json in
  if not (SP.response_ok resp) then
    [ Printf.sprintf "served replay errored: %s" (J.to_string resp) ]
  else
    let differs what got want =
      if got = want then []
      else [ Printf.sprintf "served %s %s, standalone %s" what got want ]
    in
    let geti f = Option.value ~default:min_int (J.get_int (J.member f resp)) in
    differs "digest" (string_of_int (geti "digest"))
      (string_of_int o.FD.faulted_digest)
    @ differs "end time" (string_of_int (geti "end_time"))
        (string_of_int o.FD.faulted_end)
    @ differs "stall"
        (Option.value ~default:"-" (J.get_string (J.member "stall" resp)))
        (match o.FD.faulted_stall with
        | Some sr -> Fault.Stall_report.to_string sr
        | None -> "-")

let serve_replay ~socket ~recovery subject (spec : FP.spec) (o : FD.outcome) =
  let run = replay_run ~recovery subject spec in
  let conn = Serve.Client.connect socket in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close conn)
    (fun () ->
      replay_compare (Serve.Client.rpc conn (Serve.Protocol.Simulate run)) o)

(* The kill-and-restart path: the request carries an idempotency key
   and goes through the resilient client, because the server process
   may be SIGKILLed at any point — before admission, mid-run, or after
   journaling the result but before the response reaches us.  Whatever
   the kill points, the answer that finally arrives (fresh run, resume
   from a journaled checkpoint, or the recorded response) must still be
   bit-identical to the standalone run. *)
let serve_kill_replay ~socket ~master ~index ~recovery subject (spec : FP.spec)
    (o : FD.outcome) =
  let run =
    replay_run ~idem:(Printf.sprintf "ck-%d-%d" master index) ~recovery
      subject spec
  in
  let retry =
    { Serve.Client.attempts = 80;
      base_delay = 0.05;
      max_delay = 0.5;
      retry_seed = Prng.int_of_hash (Prng.mix master [ index; 77 ]) 1_000_000 }
  in
  let resp, _attempts =
    Serve.Client.resilient_rpc ~deadline:60.0 ~retry ~addr:socket
      (Serve.Protocol.Simulate run)
  in
  replay_compare resp o

(* The federated path.  Most scenarios route through the failover
   client: rendezvous order, dead members skipped, the idempotency key
   keeping the walk exactly-once.  A seeded third are force-migrated:
   submitted fire-and-forget at their home member (keyed jobs survive
   the closed connection), then moved live to the next replica — the
   migration driver converges from every state the job can be in,
   including the source being freshly SIGKILLed.  Nothing printed here
   depends on which member answered or which path delivered: stdout
   must be identical whatever the worker count. *)
let serve_cluster_replay ~sockets ~master ~index ~recovery subject
    (spec : FP.spec) (o : FD.outcome) =
  let module SP = Serve.Protocol in
  let run =
    replay_run ~idem:(Printf.sprintf "cc-%d-%d" master index) ~recovery
      subject spec
  in
  let retry =
    { Serve.Client.attempts = 40;
      base_delay = 0.05;
      max_delay = 0.5;
      retry_seed = Prng.int_of_hash (Prng.mix master [ index; 78 ]) 1_000_000 }
  in
  let members = Array.to_list sockets in
  let key =
    Serve.Cluster.routing_key
      (SP.Kernel { name = subject.kernel.K.name; size = subject.size })
  in
  let resp =
    if Prng.int_of_hash (Prng.mix master [ index; 88 ]) 3 = 0 then (
      match Serve.Cluster.rendezvous_order ~key members with
      | src :: dst :: _ ->
        (try
           let conn = Serve.Client.connect ~retries:10 src in
           ignore (Serve.Client.send conn (SP.Simulate run));
           Unix.sleepf 0.05;
           Serve.Client.close conn
         with _ -> ());
        fst
          (Serve.Cluster.migrate ~deadline:60.0 ~retry ~source:src
             ~target:dst run)
      | _ -> assert false (* --serve-cluster enforces >= 2 members *))
    else
      let t = Serve.Cluster.create ~deadline:60.0 ~retry members in
      fst (Serve.Cluster.submit t ~key (SP.Simulate run))
  in
  replay_compare resp o

(* The disk-loss path.  Every scenario routes through the failover
   client against a replicated cluster whose members keep losing whole
   journal directories; idempotency keys plus journal replication make
   the walk exactly-once even when the member that admitted a job has
   since been wiped — the record lives on in a peer's segment, and the
   restarted member rebuilds from it before serving. *)
let serve_wipe_replay ~sockets ~master ~index ~recovery subject
    (spec : FP.spec) (o : FD.outcome) =
  let module SP = Serve.Protocol in
  let run =
    replay_run ~idem:(Printf.sprintf "cw-%d-%d" master index) ~recovery
      subject spec
  in
  let retry =
    { Serve.Client.attempts = 60;
      base_delay = 0.05;
      max_delay = 0.5;
      retry_seed = Prng.int_of_hash (Prng.mix master [ index; 79 ]) 1_000_000 }
  in
  let key =
    Serve.Cluster.routing_key
      (SP.Kernel { name = subject.kernel.K.name; size = subject.size })
  in
  let t =
    Serve.Cluster.create ~deadline:90.0 ~retry (Array.to_list sockets)
  in
  let resp = fst (Serve.Cluster.submit t ~key (SP.Simulate run)) in
  replay_compare resp o

(* --- a real server process we can murder ----------------------------- *)

(* dfserve.exe lives next to chaos.exe in the dune build tree and in an
   installed prefix alike *)
let dfserve_exe () =
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name) "dfserve.exe"
  in
  if Sys.file_exists exe then exe
  else
    failwith
      (Printf.sprintf "--serve-kill: %s not found (build bin/dfserve.exe)" exe)

let spawn_server ?retain ?cluster ~exe ~socket ~journal ~max_pending ~slice
    () =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close null)
    (fun () ->
      Unix.create_process exe
        (Array.concat
           [ [| exe; "--socket"; socket; "--journal"; journal; "--workers";
                "2"; "--slice"; string_of_int slice; "--max-pending";
                string_of_int max_pending; "--idle-timeout"; "0" |];
             (match retain with
             | Some n -> [| "--journal-retain"; string_of_int n |]
             | None -> [||]);
             (* replicated member: journal records stream to peers, so
                the wipe killer can destroy this member's disk *)
             (match cluster with
             | Some file ->
               [| "--cluster"; "@" ^ file; "--self"; socket; "--replicas";
                  "2" |]
             | None -> [||]) ])
        Unix.stdin null null)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

type managed = {
  mutable pid : int;
  lock : Mutex.t;
  mutable kills_done : int;
  stop : bool Atomic.t;
}

(* seeded sleep, SIGKILL, reap, restart against the same journal — the
   kill points land wherever the soak happens to be *)
let killer ~(managed : managed) ~exe ~socket ~journal ~max_pending ~master
    ~kills () =
  let interruptible_sleep s =
    let steps = max 1 (int_of_float (s /. 0.02)) in
    let rec go i =
      if i < steps && not (Atomic.get managed.stop) then begin
        Unix.sleepf 0.02;
        go (i + 1)
      end
    in
    go 0
  in
  let rec cycle k =
    if k <= kills && not (Atomic.get managed.stop) then begin
      let pause =
        0.08 +. (Prng.float_of_hash (Prng.mix master [ 9000; k ]) *. 0.3)
      in
      interruptible_sleep pause;
      if not (Atomic.get managed.stop) then begin
        Mutex.lock managed.lock;
        (try Unix.kill managed.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] managed.pid)
         with Unix.Unix_error _ -> ());
        managed.pid <-
          spawn_server ~exe ~socket ~journal ~max_pending ~slice:500 ();
        managed.kills_done <- k;
        Mutex.unlock managed.lock;
        cycle (k + 1)
      end
    end
  in
  cycle 1

(* the federated variant: N real members, each with its own journal,
   and the killer murders a seeded-random member per cycle.  Restarted
   members compact their journal on the way up, so the soak exercises
   compaction under live traffic too. *)
let cluster_killer ~(members : managed array) ~exe ~sockets ~journals
    ~max_pending ~master ~kills () =
  let stop () = Atomic.get members.(0).stop in
  let interruptible_sleep s =
    let steps = max 1 (int_of_float (s /. 0.02)) in
    let rec go i =
      if i < steps && not (stop ()) then begin
        Unix.sleepf 0.02;
        go (i + 1)
      end
    in
    go 0
  in
  let n = Array.length members in
  let rec cycle k =
    if k <= kills && not (stop ()) then begin
      let pause =
        0.08 +. (Prng.float_of_hash (Prng.mix master [ 9100; k ]) *. 0.3)
      in
      interruptible_sleep pause;
      if not (stop ()) then begin
        let i = Prng.int_of_hash (Prng.mix master [ 9200; k ]) n in
        let m = members.(i) in
        Mutex.lock m.lock;
        (try Unix.kill m.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] m.pid) with Unix.Unix_error _ -> ());
        m.pid <-
          spawn_server ~retain:64 ~exe ~socket:sockets.(i)
            ~journal:journals.(i) ~max_pending ~slice:200 ();
        m.kills_done <- m.kills_done + 1;
        Mutex.unlock m.lock;
        cycle (k + 1)
      end
    end
  in
  cycle 1

(* the disk-loss variant: SIGKILL a seeded-random member AND delete its
   whole journal directory (WAL + the replica segments it held for
   peers) before restarting it.  The restarted member comes up with no
   disk state at all and must rebuild its dedup window and pending jobs
   from its peers' replicas — the recovery path the replication layer
   exists for. *)
let wipe_killer ~(members : managed array) ~exe ~sockets ~journals ~jdirs
    ~cluster ~max_pending ~master ~kills () =
  let stop () = Atomic.get members.(0).stop in
  let interruptible_sleep s =
    let steps = max 1 (int_of_float (s /. 0.02)) in
    let rec go i =
      if i < steps && not (stop ()) then begin
        Unix.sleepf 0.02;
        go (i + 1)
      end
    in
    go 0
  in
  let n = Array.length members in
  let rec cycle k =
    if k <= kills && not (stop ()) then begin
      let pause =
        0.15 +. (Prng.float_of_hash (Prng.mix master [ 9300; k ]) *. 0.4)
      in
      interruptible_sleep pause;
      if not (stop ()) then begin
        let i = Prng.int_of_hash (Prng.mix master [ 9400; k ]) n in
        let m = members.(i) in
        Mutex.lock m.lock;
        (try Unix.kill m.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] m.pid) with Unix.Unix_error _ -> ());
        rm_rf jdirs.(i);
        (try Unix.mkdir jdirs.(i) 0o755 with Unix.Unix_error _ -> ());
        m.pid <-
          spawn_server ~retain:64 ~cluster ~exe ~socket:sockets.(i)
            ~journal:journals.(i) ~max_pending ~slice:200 ();
        m.kills_done <- m.kills_done + 1;
        Mutex.unlock m.lock;
        cycle (k + 1)
      end
    end
  in
  cycle 1

(* --- shrinking a failure -------------------------------------------- *)

(* the spec lattice first (Fault.Shrink), then the subject: fewer
   waves, then a smaller kernel size — each adopted only while the
   minimal spec still fails *)
let shrink_failure ~recovery subject spec =
  let still_fails subject spec =
    not (outcome_ok (check ~recovery subject spec))
  in
  let r = Shrink.minimize ~still_fails:(still_fails subject) spec in
  let subject = ref subject in
  let attempts = ref r.Shrink.attempts in
  let narrow desc candidates rebuild =
    List.iter
      (fun c ->
        let s = rebuild c in
        incr attempts;
        if still_fails s r.Shrink.minimal then subject := s)
      candidates;
    ignore desc
  in
  let s0 = !subject in
  narrow "waves"
    (List.filter (fun w -> w < s0.waves) [ 1; 2 ])
    (fun waves -> { s0 with waves; inputs = [] } |> fun s ->
       compile_subject s.kernel ~size:s.size ~waves);
  let s1 = !subject in
  narrow "size"
    (List.filter (fun n -> n < s1.size) [ 4; 8; 16 ])
    (fun size -> compile_subject s1.kernel ~size ~waves:s1.waves);
  (!subject, r, !attempts)

(* the one-line command that replays the minimal failure exactly *)
let repro_command ~recovery subject (spec : FP.spec) =
  Printf.sprintf
    "faultcheck --kernel %s --seeds %d --size %d --waves %d --inject '%s' \
     --recover %s --integrity --machine"
    subject.kernel.K.name spec.FP.seed subject.size subject.waves
    (FP.to_string spec) (Recover.to_string recovery)

(* --- reporting ------------------------------------------------------- *)

let dump_failure ~dir ~recovery ~index subject ~original
    (r : Shrink.result) ~attempts (o : FD.outcome) =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  let path =
    Filename.concat dir
      (Printf.sprintf "chaos-%03d-%s.txt" index subject.kernel.K.name)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "scenario %d, kernel %s, size %d, waves %d\n\
         original spec: %s\n\
         minimal spec:  %s\n\
         shrink: %d oracle runs, %d adopted steps\n"
        index subject.kernel.K.name subject.size subject.waves
        (FP.to_string original)
        (FP.to_string r.Shrink.minimal)
        attempts
        (List.length r.Shrink.steps);
      List.iter
        (fun (s : Shrink.step) ->
          Printf.fprintf oc "  - %s -> %s\n" s.Shrink.s_desc
            (FP.to_string s.Shrink.s_spec))
        r.Shrink.steps;
      Printf.fprintf oc "repro: %s\n\n"
        (repro_command ~recovery subject r.Shrink.minimal);
      Printf.fprintf oc "clean end %d, faulted end %d, recoveries %d\n"
        o.FD.clean_end o.FD.faulted_end o.FD.faulted_recoveries;
      Printf.fprintf oc "digest clean %d, faulted %d\n" o.FD.clean_digest
        o.FD.faulted_digest;
      (match o.FD.diagnosis with
      | Some d -> Printf.fprintf oc "diagnosis: %s\n" d
      | None -> ());
      if o.FD.mismatches <> [] then begin
        output_string oc "output mismatches:\n";
        List.iter
          (fun m -> Printf.fprintf oc "  %s\n" (FD.mismatch_to_string m))
          o.FD.mismatches
      end;
      if o.FD.faulted_violations <> [] then begin
        output_string oc "violations:\n";
        List.iter
          (fun v -> Printf.fprintf oc "  %s\n" (Fault.Violation.to_string v))
          o.FD.faulted_violations
      end;
      match o.FD.faulted_stall with
      | Some sr -> output_string oc (Fault.Stall_report.to_string sr)
      | None -> ());
  (match o.FD.faulted_snapshot with
  | Some sn ->
    let spath =
      Filename.concat dir
        (Printf.sprintf "chaos-%03d-%s-state.json" index subject.kernel.K.name)
    in
    Recover.Checkpoint.save ~path:spath ~graph:subject.graph sn
  | None -> ());
  path

(* one scenario, start to finish; the report goes into [buf] so the
   soak can fan out across domains and still print in index order *)
let run_scenario ~master ~size ~waves ~recovery ~dir ~kernels ~serve ~buf
    index =
  let spec = gen_spec ~master ~index ~n_pe:Machine.Arch.default.Machine.Arch.n_pe in
  let kernel = pick_kernel ~master ~index kernels in
  let subject = compile_subject kernel ~size ~waves in
  let o = check ~recovery subject spec in
  let serve_failures =
    match serve with
    | `Off -> []
    | `Inproc socket -> (
      try serve_replay ~socket ~recovery subject spec o
      with e ->
        [ Printf.sprintf "served replay died: %s" (Printexc.to_string e) ])
    | `Kill socket -> (
      try serve_kill_replay ~socket ~master ~index ~recovery subject spec o
      with e ->
        [ Printf.sprintf "served replay died: %s" (Printexc.to_string e) ])
    | `Cluster sockets -> (
      try serve_cluster_replay ~sockets ~master ~index ~recovery subject spec o
      with e ->
        [ Printf.sprintf "served replay died: %s" (Printexc.to_string e) ])
    | `Wipe sockets -> (
      try serve_wipe_replay ~sockets ~master ~index ~recovery subject spec o
      with e ->
        [ Printf.sprintf "served replay died: %s" (Printexc.to_string e) ])
  in
  List.iter
    (fun f -> Printf.bprintf buf "FAIL #%03d %-14s %s\n" index kernel.K.name f)
    serve_failures;
  if outcome_ok o then begin
    let armed =
      List.length
        (List.filter Fun.id
           [ spec.FP.delay_prob > 0.0; spec.FP.dup_prob > 0.0;
             spec.FP.drop_ack_prob > 0.0; spec.FP.drop_prob > 0.0;
             spec.FP.stall_prob > 0.0; spec.FP.fu_slow > 0;
             spec.FP.am_slow > 0; spec.FP.corrupt_prob > 0.0;
             spec.FP.corrupt_ctl_prob > 0.0; spec.FP.crash_pe >= 0 ])
    in
    Printf.bprintf buf
      "ok   #%03d %-14s %d faults (clean end %d, faulted end %d%s%s)\n" index
      kernel.K.name armed o.FD.clean_end o.FD.faulted_end
      (if o.FD.faulted_recoveries > 0 then
         Printf.sprintf ", %d recovery" o.FD.faulted_recoveries
       else "")
      (match o.FD.faulted_snapshot with
      | Some sn when sn.ME.sn_stats.ME.corruptions > 0 ->
        Printf.sprintf ", %d corrupt/%d healed" sn.ME.sn_stats.ME.corruptions
          sn.ME.sn_stats.ME.corrupt_healed
      | _ -> "");
    serve_failures = []
  end
  else begin
    let min_subject, r, attempts = shrink_failure ~recovery subject spec in
    let min_outcome = check ~recovery min_subject r.Shrink.minimal in
    let path =
      dump_failure ~dir ~recovery ~index min_subject ~original:spec r ~attempts
        min_outcome
    in
    Printf.bprintf buf
      "FAIL #%03d %-14s (%d mismatches, %d violations) -> %s\n\
      \     minimal: %s\n\
      \     repro:   %s\n"
      index kernel.K.name
      (List.length min_outcome.FD.mismatches)
      (List.length min_outcome.FD.faulted_violations)
      path
      (FP.to_string r.Shrink.minimal)
      (repro_command ~recovery min_subject r.Shrink.minimal);
    false
  end

let main runs master size waves dir kernel_filter recover jobs serve_mode
    serve_kill serve_cluster serve_wipe kills =
  let recovery =
    match Runspec.recovery_of_string (Option.value recover ~default:"") with
    | Ok p -> p
    | Error e ->
      failwith (Printf.sprintf "--recover %s: %s" (Option.get recover) e)
  in
  let kernels =
    match Runspec.kernels_matching kernel_filter with
    | Ok ks -> ks
    | Error e -> failwith (Printf.sprintf "--kernel: %s" e)
  in
  if
    (if serve_mode then 1 else 0)
    + (if serve_kill then 1 else 0)
    + (if serve_cluster <> None then 1 else 0)
    + (if serve_wipe <> None then 1 else 0)
    > 1
  then
    failwith
      "--serve, --serve-kill, --serve-cluster and --serve-wipe are exclusive";
  (match serve_cluster with
  | Some n when n < 2 -> failwith "--serve-cluster needs at least 2 members"
  | _ -> ());
  (match serve_wipe with
  | Some n when n < 2 ->
    failwith "--serve-wipe needs at least 2 members (replicas live on peers)"
  | _ -> ());
  let jobs = match jobs with Some j -> j | None -> Exec.Pool.default_jobs () in
  (* --serve: a live dfserve instance every scenario replays through;
     scenario workers double as concurrent clients.  --serve-kill: the
     same, but the server is a real process with a journal, and a
     killer thread SIGKILLs and restarts it mid-soak. *)
  let serve, stop_server, kill_report =
    if serve_kill then begin
      let exe = dfserve_exe () in
      let tmp = Filename.get_temp_dir_name () in
      let socket =
        Filename.concat tmp
          (Printf.sprintf "chaos-kill-%d.sock" (Unix.getpid ()))
      in
      let journal =
        Filename.concat tmp
          (Printf.sprintf "chaos-kill-%d.journal" (Unix.getpid ()))
      in
      (try Sys.remove journal with Sys_error _ -> ());
      let max_pending = runs + 8 in
      let managed =
        { pid = spawn_server ~exe ~socket ~journal ~max_pending ~slice:500 ();
          lock = Mutex.create ();
          kills_done = 0;
          stop = Atomic.make false }
      in
      let kd =
        Domain.spawn
          (killer ~managed ~exe ~socket ~journal ~max_pending ~master ~kills)
      in
      ( `Kill socket,
        (fun () ->
          Atomic.set managed.stop true;
          Domain.join kd;
          (try
             let conn = Serve.Client.connect socket in
             ignore (Serve.Client.rpc conn Serve.Protocol.Shutdown);
             Serve.Client.close conn
           with _ -> ());
          (try ignore (Unix.waitpid [] managed.pid)
           with Unix.Unix_error _ ->
             (try Unix.kill managed.pid Sys.sigkill
              with Unix.Unix_error _ -> ());
             (try ignore (Unix.waitpid [] managed.pid)
              with Unix.Unix_error _ -> ()));
          try Sys.remove journal with Sys_error _ -> ()),
        fun () -> managed.kills_done )
    end
    else if serve_cluster <> None then begin
      let n = Option.get serve_cluster in
      let exe = dfserve_exe () in
      let tmp = Filename.get_temp_dir_name () in
      let name i ext =
        Filename.concat tmp
          (Printf.sprintf "chaos-cluster-%d-%d.%s" (Unix.getpid ()) i ext)
      in
      let sockets = Array.init n (fun i -> name i "sock") in
      let journals = Array.init n (fun i -> name i "journal") in
      Array.iter
        (fun j -> try Sys.remove j with Sys_error _ -> ())
        journals;
      let max_pending = runs + 8 in
      (* one shared stop flag across the member records *)
      let stop = Atomic.make false in
      let members =
        Array.init n (fun i ->
            { pid =
                spawn_server ~retain:64 ~exe ~socket:sockets.(i)
                  ~journal:journals.(i) ~max_pending ~slice:200 ();
              lock = Mutex.create ();
              kills_done = 0;
              stop })
      in
      let kd =
        Domain.spawn
          (cluster_killer ~members ~exe ~sockets ~journals ~max_pending
             ~master ~kills)
      in
      ( `Cluster sockets,
        (fun () ->
          Atomic.set stop true;
          Domain.join kd;
          Array.iteri
            (fun i m ->
              let down =
                try
                  let conn = Serve.Client.connect ~retries:10 sockets.(i) in
                  ignore (Serve.Client.rpc conn Serve.Protocol.Shutdown);
                  Serve.Client.close conn;
                  true
                with _ -> false
              in
              if not down then (
                try Unix.kill m.pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] m.pid) with Unix.Unix_error _ -> ())
            members;
          Array.iter
            (fun j -> try Sys.remove j with Sys_error _ -> ())
            journals),
        fun () -> Array.fold_left (fun a m -> a + m.kills_done) 0 members )
    end
    else if serve_wipe <> None then begin
      let n = Option.get serve_wipe in
      let exe = dfserve_exe () in
      let tmp = Filename.get_temp_dir_name () in
      let name i ext =
        Filename.concat tmp
          (Printf.sprintf "chaos-wipe-%d-%d.%s" (Unix.getpid ()) i ext)
      in
      let sockets = Array.init n (fun i -> name i "sock") in
      (* each member owns a whole journal directory — WAL plus the
         replica segments it keeps for peers — so the wipe killer can
         destroy everything the member ever persisted in one sweep *)
      let jdirs = Array.init n (fun i -> name i "jdir") in
      let journals =
        Array.map (fun d -> Filename.concat d "self.wal") jdirs
      in
      let members_file =
        Filename.concat tmp
          (Printf.sprintf "chaos-wipe-%d.members" (Unix.getpid ()))
      in
      Array.iter rm_rf jdirs;
      Array.iter (fun d -> Unix.mkdir d 0o755) jdirs;
      let oc = open_out members_file in
      Array.iter (fun s -> output_string oc (s ^ "\n")) sockets;
      close_out oc;
      let max_pending = runs + 8 in
      let stop = Atomic.make false in
      let members =
        Array.init n (fun i ->
            { pid =
                spawn_server ~retain:64 ~cluster:members_file ~exe
                  ~socket:sockets.(i) ~journal:journals.(i) ~max_pending
                  ~slice:200 ();
              lock = Mutex.create ();
              kills_done = 0;
              stop })
      in
      let kd =
        Domain.spawn
          (wipe_killer ~members ~exe ~sockets ~journals ~jdirs
             ~cluster:members_file ~max_pending ~master ~kills)
      in
      ( `Wipe sockets,
        (fun () ->
          Atomic.set stop true;
          Domain.join kd;
          Array.iteri
            (fun i m ->
              let down =
                try
                  let conn = Serve.Client.connect ~retries:10 sockets.(i) in
                  ignore (Serve.Client.rpc conn Serve.Protocol.Shutdown);
                  Serve.Client.close conn;
                  true
                with _ -> false
              in
              if not down then (
                try Unix.kill m.pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] m.pid) with Unix.Unix_error _ -> ())
            members;
          Array.iter rm_rf jdirs;
          (try Sys.remove members_file with Sys_error _ -> ())),
        fun () -> Array.fold_left (fun a m -> a + m.kills_done) 0 members )
    end
    else if serve_mode then begin
      let socket =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "chaos-serve-%d.sock" (Unix.getpid ()))
      in
      let config =
        { (Serve.Server.default_config ~socket_path:socket) with
          Serve.Server.workers = 2;
          max_pending = runs + 8 }
      in
      let server = Serve.Server.create config in
      let domain = Domain.spawn (fun () -> Serve.Server.serve server) in
      ( `Inproc socket,
        (fun () ->
          (try
             let conn = Serve.Client.connect socket in
             ignore (Serve.Client.rpc conn Serve.Protocol.Shutdown);
             Serve.Client.close conn
           with _ -> ());
          Domain.join domain),
        fun () -> 0 )
    end
    else (`Off, (fun () -> ()), fun () -> 0)
  in
  let indices = List.init runs Fun.id in
  let results, elapsed =
    Exec.Pool.timed (fun () ->
        Fun.protect ~finally:stop_server (fun () ->
            Exec.Pool.map_result ~jobs
              (fun index ->
                let buf = Buffer.create 256 in
                let ok =
                  run_scenario ~master ~size ~waves ~recovery ~dir ~kernels
                    ~serve ~buf index
                in
                (Buffer.contents buf, ok))
              indices))
  in
  let failures = ref 0 in
  List.iter2
    (fun index r ->
      match r with
      | Ok (report, ok) ->
        print_string report;
        if not ok then incr failures
      | Error (e : Exec.Pool.error) ->
        incr failures;
        Printf.printf "FAIL #%03d raised %s\n" index e.Exec.Pool.message)
    indices results;
  Printf.eprintf "chaos: %d scenarios in %.2fs (%d worker%s%s)\n" runs elapsed
    jobs
    (if jobs = 1 then "" else "s")
    (if serve_kill || serve_cluster <> None then
       Printf.sprintf ", %d server kill/restart cycles" (kill_report ())
     else if serve_wipe <> None then
       Printf.sprintf ", %d member wipe/restart cycles" (kill_report ())
     else "");
  if !failures = 0 then begin
    Printf.printf
      "all %d chaos scenarios survived: protected runs bit-identical to \
       clean%s\n"
      runs
      (if serve_wipe <> None then
         ", served replays bit-identical to standalone across member disk \
          wipes (journals rebuilt from peer replicas)"
       else if serve_cluster <> None then
         ", served replays bit-identical to standalone across member kills \
          and live migrations"
       else if serve_kill then
         ", served replays bit-identical to standalone across server kills"
       else if serve_mode then
         ", served replays bit-identical to standalone"
       else "");
    `Ok ()
  end
  else
    `Error
      (false, Printf.sprintf "%d of %d chaos scenarios failed" !failures runs)

let main_safe runs master size waves dir kernel recover jobs serve_mode
    serve_kill serve_cluster serve_wipe kills =
  try
    main runs master size waves dir kernel recover jobs serve_mode serve_kill
      serve_cluster serve_wipe kills
  with Failure msg -> `Error (false, msg)

let cmd =
  let open Cmdliner in
  let runs =
    Arg.(value & opt int 40
         & info [ "runs" ] ~docv:"N" ~doc:"number of randomized scenarios")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S"
             ~doc:"master seed; scenario $(i,i) is a pure function of \
                   (seed, i), so the same seed replays the same soak")
  in
  let size =
    Arg.(value & opt int 8
         & info [ "size" ] ~docv:"N" ~doc:"kernel size parameter")
  in
  let waves =
    Arg.(value & opt int 2
         & info [ "waves" ] ~docv:"W" ~doc:"input waves to stream")
  in
  let dir =
    Arg.(value & opt string "chaos-reports"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"directory for failure dumps (created on first failure)")
  in
  let kernel =
    Arg.(value & opt (some string) None
         & info [ "kernel" ] ~docv:"NAME"
             ~doc:"restrict scenarios to a single kernel")
  in
  let recover =
    Arg.(value & opt (some string) None
         & info [ "recover" ] ~docv:"SPEC"
             ~doc:"recovery policy for every scenario (default: the \
                   standard policy); keys every, timeout, backoff, retries")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"worker domains (default: \\$(b,EXEC_JOBS) or the \
                   available cores); verdicts and repros are identical \
                   whatever the count")
  in
  let serve =
    Arg.(value & flag
         & info [ "serve" ]
             ~doc:"additionally replay every scenario's protected faulted \
                   run through a live in-process dfserve and require the \
                   served response to reproduce the standalone run byte \
                   for byte (digest, end time, stall report)")
  in
  let serve_kill =
    Arg.(value & flag
         & info [ "serve-kill" ]
             ~doc:"like --serve, but the server is a real dfserve process \
                   with a write-ahead journal, SIGKILLed and restarted at \
                   seeded points mid-soak; every scenario goes through the \
                   retrying client under an idempotency key and must still \
                   reproduce its standalone run byte for byte")
  in
  let serve_cluster =
    Arg.(value & opt (some int) None
         & info [ "serve-cluster" ] ~docv:"N"
             ~doc:"like --serve-kill, but with a federation of N real \
                   dfserve members: scenarios route through the rendezvous-\
                   hashing failover client, a seeded third are force-\
                   migrated live between members mid-run, and the killer \
                   SIGKILLs and restarts random members (which compact \
                   their journals on the way up); every answer must still \
                   match its standalone run byte for byte")
  in
  let serve_wipe =
    Arg.(value & opt (some int) None
         & info [ "serve-wipe" ] ~docv:"N"
             ~doc:"like --serve-cluster, but the members replicate their \
                   journals to each other (--replicas 2) and the killer \
                   SIGKILLs a random member AND deletes its whole journal \
                   directory before restarting it; the restarted member \
                   must rebuild its dedup window and pending jobs from \
                   peer replicas, and every answer must still match its \
                   standalone run byte for byte")
  in
  let kills =
    Arg.(value & opt int 3
         & info [ "kills" ] ~docv:"N"
             ~doc:"kill/restart cycles the --serve-kill, --serve-cluster \
                   or --serve-wipe killer attempts (each at a seeded point \
                   while the soak is running)")
  in
  let term =
    Term.(ret (const main_safe $ runs $ seed $ size $ waves $ dir $ kernel
               $ recover $ jobs $ serve $ serve_kill $ serve_cluster
               $ serve_wipe $ kills))
  in
  Cmd.v
    (Cmd.info "chaos" ~version:"1.0"
       ~doc:"randomized fault soak: every protected run must match its \
             clean run bit for bit; failures are delta-debugged to a \
             minimal one-line repro")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
