(* dfserve: the persistent compile-and-simulate service.

   Foreground server over a Unix-domain socket and optionally TCP
   (NDJSON requests, see docs/SERVICE.md), with read/idle/write
   deadlines, a request-line cap and an optional write-ahead job
   journal that makes idempotent requests exactly-once across crashes.
   Or --selftest: a chaos-style soak that starts a private server,
   hammers it with concurrent clients replaying faulted and clean jobs
   plus a churn phase of sequential hostile-wire connections, and
   requires every served response to be bit-identical to the same job
   run standalone. *)

let default_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dfserve-%d.sock" (Unix.getuid ()))

let main socket tcp journal journal_retain cluster self replicas fsync
    diskfault max_line idle_timeout write_timeout drain_timeout workers
    max_pending cache slice log_file verbose selftest clients jobs churn seed =
  (* a peer that vanishes mid-write must be an EPIPE, not a kill *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let log =
    if selftest && not verbose && log_file = None then None
    else
      match log_file with
      | Some path -> Some (open_out path)
      | None -> if verbose || not selftest then Some stderr else None
  in
  if selftest then begin
    let r =
      Serve.Selftest.run ~clients ~jobs_per_client:jobs ?workers ~seed ~churn
        ?log ()
    in
    Printf.printf
      "selftest: %d served responses checked against standalone runs\n"
      r.Serve.Selftest.checked;
    Printf.printf "cache: %d hits, %d misses\n" r.Serve.Selftest.cache_hits
      r.Serve.Selftest.cache_misses;
    if r.Serve.Selftest.churned > 0 then
      Printf.printf
        "churn: %d short-lived clients in %.1fs (%d retries healed, %d \
         deduped, %d shed)\n"
        r.Serve.Selftest.churned r.Serve.Selftest.elapsed_s
        r.Serve.Selftest.retried r.Serve.Selftest.deduped
        r.Serve.Selftest.shed;
    match r.Serve.Selftest.failures with
    | [] ->
      print_endline "all served responses bit-identical to standalone runs";
      `Ok ()
    | fs ->
      List.iter prerr_endline fs;
      `Error (false, Printf.sprintf "%d mismatches" (List.length fs))
  end
  else begin
    let tcp_ok =
      match tcp with
      | None -> Ok None
      | Some s -> Result.map Option.some (Runspec.hostport_of_string s)
    in
    let diskfault_ok =
      match diskfault with
      | None -> Ok None
      | Some s -> Result.map Option.some (Serve.Diskfault.of_string s)
    in
    match (tcp_ok, diskfault_ok) with
    | Error e, _ -> `Error (true, "--tcp " ^ e)
    | _, Error e -> `Error (true, "--diskfault " ^ e)
    | Ok tcp, Ok diskfault ->
      let config =
        { (Serve.Server.default_config ~socket_path:socket) with
          Serve.Server.workers =
            Option.value workers ~default:(Exec.Pool.default_jobs ());
          tcp;
          max_pending;
          cache_capacity = cache;
          slice;
          max_line;
          idle_timeout =
            (if idle_timeout <= 0.0 then None else Some idle_timeout);
          write_timeout;
          drain_timeout;
          journal_path = journal;
          journal_retain;
          replicas;
          cluster;
          (* a cluster member defaults its own address to the listen
             socket — the common case when members share a host *)
          self_addr =
            (match (self, cluster) with
            | (Some _ as s), _ -> s
            | None, Some _ -> Some socket
            | None, None -> None);
          fsync;
          diskfault;
          log }
      in
      Printf.printf "dfserve: listening on %s%s\n%!" socket
        (match tcp with
        | Some (h, p) -> Printf.sprintf " and tcp %s:%d" h p
        | None -> "");
      let server = Serve.Server.create config in
      (* membership reload: SIGHUP re-reads the @FILE member list at
         the loop's next iteration *)
      Sys.set_signal Sys.sighup
        (Sys.Signal_handle (fun _ -> Serve.Server.request_reload server));
      Serve.Server.serve server;
      `Ok ()
  end

let main_safe socket tcp journal journal_retain cluster self replicas fsync
    diskfault max_line idle_timeout write_timeout drain_timeout workers
    max_pending cache slice log_file verbose selftest clients jobs churn seed =
  try
    main socket tcp journal journal_retain cluster self replicas fsync
      diskfault max_line idle_timeout write_timeout drain_timeout workers
      max_pending cache slice log_file verbose selftest clients jobs churn
      seed
  with
  | Failure msg | Invalid_argument msg -> `Error (false, msg)
  | Unix.Unix_error (e, fn, arg) ->
    `Error (false, Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))

open Cmdliner

let cmd =
  let socket =
    Arg.(value & opt string (default_socket ())
         & info [ "socket"; "s" ] ~docv:"PATH"
             ~doc:"Unix-domain socket path to listen on")
  in
  let tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT"
             ~doc:"also listen on TCP (port 0 picks an ephemeral port; \
                   an empty host means 127.0.0.1)")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"write-ahead job journal: admitted idempotent requests \
                   and their responses are recorded here, and replayed on \
                   restart so retried requests are answered exactly once \
                   even across a crash")
  in
  let journal_retain =
    Arg.(value & opt (some int) None
         & info [ "journal-retain" ] ~docv:"N"
             ~doc:"compact the journal on startup, keeping the newest N \
                   completed responses (plus every pending admission); \
                   without it the full history is kept")
  in
  let cluster =
    Arg.(value & opt (some string) None
         & info [ "cluster" ] ~docv:"A,B,C|@FILE"
             ~doc:"replicated cluster membership (addresses \
                   comma-separated or \\@FILE with one per line; must \
                   include this member's own address).  Journal records \
                   for idempotent jobs stream to the rendezvous-ranked \
                   peers so they survive this member's disk; the \\@FILE \
                   form is re-read on SIGHUP.  Requires --journal.")
  in
  let self =
    Arg.(value & opt (some string) None
         & info [ "self" ] ~docv:"ADDR"
             ~doc:"this member's address as listed in --cluster \
                   (default: the --socket path)")
  in
  let replicas =
    Arg.(value & opt int 2
         & info [ "replicas" ] ~docv:"R"
             ~doc:"total journal copies per record, counting the local \
                   append: each record streams to R-1 peers")
  in
  let fsync =
    Arg.(value
         & vflag None
             [ ( Some true,
                 info [ "fsync" ]
                   ~doc:"fsync Admit/Done journal appends so acknowledged \
                         records survive power loss (default when \
                         --cluster is given)" );
               ( Some false,
                 info [ "no-fsync" ]
                   ~doc:"never fsync journal appends (OS buffers only)" ) ])
  in
  let diskfault =
    Arg.(value & opt (some string) None
         & info [ "diskfault" ] ~docv:"SPEC"
             ~doc:"seeded disk-fault injection on journal appends, e.g. \
                   'seed=7 torn=0.03 enospc=0.03 rot=0.03 slow=0.05 \
                   slow_s=0.002' (testing only)")
  in
  let max_line =
    Arg.(value & opt int (1 lsl 20)
         & info [ "max-line" ] ~docv:"BYTES"
             ~doc:"request-line cap: longer lines draw a structured \
                   malformed error and a close")
  in
  let idle_timeout =
    Arg.(value & opt float 60.0
         & info [ "idle-timeout" ] ~docv:"SECONDS"
             ~doc:"close connections idle this long with no work in \
                   flight (0 disables)")
  in
  let write_timeout =
    Arg.(value & opt float 10.0
         & info [ "write-timeout" ] ~docv:"SECONDS"
             ~doc:"close connections whose pending responses make no \
                   progress this long")
  in
  let drain_timeout =
    Arg.(value & opt float 30.0
         & info [ "drain-timeout" ] ~docv:"SECONDS"
             ~doc:"shutdown drains admitted jobs for at most this long \
                   before dumping the queue")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers"; "j" ] ~docv:"N"
             ~doc:"simulation worker domains (default: \\$(b,EXEC_JOBS) or \
                   the available cores)")
  in
  let max_pending =
    Arg.(value & opt int 64
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"admission bound: jobs waiting to dispatch before new \
                   simulate requests are rejected as overloaded")
  in
  let cache =
    Arg.(value & opt int 32
         & info [ "cache" ] ~docv:"N"
             ~doc:"compiled-program cache capacity (LRU eviction)")
  in
  let slice =
    Arg.(value & opt int 5000
         & info [ "slice" ] ~docv:"T"
             ~doc:"machine-engine preemption slice in simulation-time \
                   units: cancel and shutdown take effect at the next \
                   slice boundary, returning a restorable checkpoint")
  in
  let log_file =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE" ~doc:"append lifecycle log lines here")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"log to stderr")
  in
  let selftest =
    Arg.(value & flag
         & info [ "selftest" ]
             ~doc:"soak a private server with concurrent faulted clients \
                   plus a churn phase of sequential hostile-wire clients, \
                   verify bit-identity against standalone runs, then \
                   exit (nonzero on any mismatch)")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N" ~doc:"selftest: concurrent clients")
  in
  let jobs =
    Arg.(value & opt int 6
         & info [ "jobs-per-client" ] ~docv:"N"
             ~doc:"selftest: simulate requests per client")
  in
  let churn =
    Arg.(value & opt int 1000
         & info [ "churn" ] ~docv:"N"
             ~doc:"selftest: sequential short-lived connections in the \
                   churn phase (0 disables)")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"selftest: scenario seed")
  in
  let term =
    Term.(ret (const main_safe $ socket $ tcp $ journal $ journal_retain
               $ cluster $ self $ replicas $ fsync $ diskfault $ max_line
               $ idle_timeout $ write_timeout $ drain_timeout $ workers
               $ max_pending $ cache $ slice $ log_file $ verbose $ selftest
               $ clients $ jobs $ churn $ seed))
  in
  Cmd.v
    (Cmd.info "dfserve" ~version:"1.0"
       ~doc:"persistent compile-and-simulate service with a \
             compiled-program cache, fair queueing, transport deadlines \
             and a crash-safe job journal")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
