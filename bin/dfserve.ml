(* dfserve: the persistent compile-and-simulate service.

   Foreground server over a Unix-domain socket (NDJSON requests, see
   docs/SERVICE.md), or --selftest: a chaos-style soak that starts a
   private server, hammers it with concurrent clients replaying faulted
   and clean jobs, and requires every served response to be
   bit-identical to the same job run standalone. *)

let default_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dfserve-%d.sock" (Unix.getuid ()))

let main socket workers max_pending cache slice log_file verbose selftest
    clients jobs seed =
  let log =
    if selftest && not verbose && log_file = None then None
    else
      match log_file with
      | Some path -> Some (open_out path)
      | None -> if verbose || not selftest then Some stderr else None
  in
  if selftest then begin
    let r = Serve.Selftest.run ~clients ~jobs_per_client:jobs ?workers ~seed ?log () in
    Printf.printf "selftest: %d served responses checked against standalone runs\n"
      r.Serve.Selftest.checked;
    Printf.printf "cache: %d hits, %d misses\n" r.Serve.Selftest.cache_hits
      r.Serve.Selftest.cache_misses;
    match r.Serve.Selftest.failures with
    | [] ->
      print_endline "all served responses bit-identical to standalone runs";
      `Ok ()
    | fs ->
      List.iter prerr_endline fs;
      `Error (false, Printf.sprintf "%d mismatches" (List.length fs))
  end
  else begin
    let config =
      { (Serve.Server.default_config ~socket_path:socket) with
        Serve.Server.workers =
          Option.value workers ~default:(Exec.Pool.default_jobs ());
        max_pending;
        cache_capacity = cache;
        slice;
        log }
    in
    Printf.printf "dfserve: listening on %s\n%!" socket;
    Serve.Server.run config;
    `Ok ()
  end

let main_safe socket workers max_pending cache slice log_file verbose selftest
    clients jobs seed =
  try
    main socket workers max_pending cache slice log_file verbose selftest
      clients jobs seed
  with
  | Failure msg -> `Error (false, msg)
  | Unix.Unix_error (e, fn, arg) ->
    `Error (false, Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))

open Cmdliner

let cmd =
  let socket =
    Arg.(value & opt string (default_socket ())
         & info [ "socket"; "s" ] ~docv:"PATH"
             ~doc:"Unix-domain socket path to listen on")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers"; "j" ] ~docv:"N"
             ~doc:"simulation worker domains (default: \\$(b,EXEC_JOBS) or \
                   the available cores)")
  in
  let max_pending =
    Arg.(value & opt int 64
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"admission bound: jobs waiting to dispatch before new \
                   simulate requests are rejected as overloaded")
  in
  let cache =
    Arg.(value & opt int 32
         & info [ "cache" ] ~docv:"N"
             ~doc:"compiled-program cache capacity (LRU eviction)")
  in
  let slice =
    Arg.(value & opt int 5000
         & info [ "slice" ] ~docv:"T"
             ~doc:"machine-engine preemption slice in simulation-time \
                   units: cancel and shutdown take effect at the next \
                   slice boundary, returning a restorable checkpoint")
  in
  let log_file =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE" ~doc:"append lifecycle log lines here")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"log to stderr")
  in
  let selftest =
    Arg.(value & flag
         & info [ "selftest" ]
             ~doc:"soak a private server with concurrent faulted clients \
                   and verify bit-identity against standalone runs, then \
                   exit (nonzero on any mismatch)")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N" ~doc:"selftest: concurrent clients")
  in
  let jobs =
    Arg.(value & opt int 6
         & info [ "jobs-per-client" ] ~docv:"N"
             ~doc:"selftest: simulate requests per client")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"selftest: scenario seed")
  in
  let term =
    Term.(ret (const main_safe $ socket $ workers $ max_pending $ cache
               $ slice $ log_file $ verbose $ selftest $ clients $ jobs
               $ seed))
  in
  Cmd.v
    (Cmd.info "dfserve" ~version:"1.0"
       ~doc:"persistent compile-and-simulate service with a \
             compiled-program cache and fair queueing")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
