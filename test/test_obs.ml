(* Observability subsystem tests: tracer on/off parity (tracing never
   changes simulation results, a disabled tracer records nothing),
   ring-buffer semantics, Perfetto export well-formedness on a compiled
   kernel, metrics-registry and bench-JSON round trips through the JSON
   parser, and the nan behavior of Metrics.initiation_interval on tiny
   samples. *)

open Dfg
module D = Compiler.Driver
module ME = Machine.Machine_engine
module Arch = Machine.Arch

let reals xs = List.map (fun f -> Value.Real f) xs

(* The paper's Figure 2: let y = a*b in (y+2)*(y-3). *)
let fig2_graph () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let b = Graph.add g (Opcode.Input "b") [||] in
  let mult1 =
    Graph.add g ~label:"cell1" (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_arc |]
  in
  let add =
    Graph.add g ~label:"cell2" (Opcode.Arith Opcode.Add)
      [| Graph.In_arc; Graph.In_const (Value.Real 2.) |]
  in
  let sub =
    Graph.add g ~label:"cell3" (Opcode.Arith Opcode.Sub)
      [| Graph.In_arc; Graph.In_const (Value.Real 3.) |]
  in
  let mult2 =
    Graph.add g ~label:"cell4" (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_arc |]
  in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:mult1 ~port:0;
  Graph.connect g ~src:b ~dst:mult1 ~port:1;
  Graph.connect g ~src:mult1 ~dst:add ~port:0;
  Graph.connect g ~src:mult1 ~dst:sub ~port:0;
  Graph.connect g ~src:add ~dst:mult2 ~port:0;
  Graph.connect g ~src:sub ~dst:mult2 ~port:1;
  Graph.connect g ~src:mult2 ~dst:out ~port:0;
  g

let fig2_inputs n =
  [ ("a", reals (List.init n (fun i -> float_of_int (i + 1))));
    ("b", reals (List.init n (fun i -> 1.0 +. (0.5 *. float_of_int i)))) ]

let fires events =
  List.length
    (List.filter (function Obs.Event.Fire _ -> true | _ -> false) events)

let kernel_source =
  {|
param n = 15;
input A : array[real] [0, n];
input B : array[real] [0, n];

R : array[real] :=
  forall i in [0, n]
    y : real := A[i] * B[i];
  construct
    (y + 2.) * (y - 3.)
  endall;
|}

(* ---------------- tracer ---------------- *)

let test_sim_parity () =
  let inputs = fig2_inputs 40 in
  let base = Sim.Engine.run_cfg Run_config.default (fig2_graph ()) ~inputs in
  let tracer = Obs.Tracer.create () in
  let traced =
    Sim.Engine.run_cfg
      Run_config.(default |> with_tracer tracer)
      (fig2_graph ()) ~inputs
  in
  Alcotest.(check int)
    "same end time" base.Sim.Engine.end_time traced.Sim.Engine.end_time;
  Alcotest.(check bool)
    "same outputs" true
    (base.Sim.Engine.outputs = traced.Sim.Engine.outputs);
  Alcotest.(check bool)
    "same fire counts" true
    (base.Sim.Engine.fire_counts = traced.Sim.Engine.fire_counts);
  let total = Array.fold_left ( + ) 0 base.Sim.Engine.fire_counts in
  Alcotest.(check int)
    "one Fire event per firing" total
    (fires (Obs.Tracer.events tracer))

let test_machine_parity () =
  let inputs = fig2_inputs 40 in
  let arch = Arch.default in
  let base = ME.run_cfg ME.default_config ~arch (fig2_graph ()) ~inputs in
  let tracer = Obs.Tracer.create () in
  let traced =
    ME.run_cfg
      Run_config.(ME.default_config |> with_tracer tracer)
      ~arch (fig2_graph ()) ~inputs
  in
  Alcotest.(check int)
    "same end time" base.ME.end_time traced.ME.end_time;
  Alcotest.(check bool)
    "same outputs" true (base.ME.outputs = traced.ME.outputs);
  Alcotest.(check bool) "same stats" true (base.ME.stats = traced.ME.stats);
  Alcotest.(check int)
    "one Fire event per dispatch" base.ME.stats.ME.dispatches
    (fires (Obs.Tracer.events tracer));
  Alcotest.(check int)
    "per-PE dispatches sum to the total" base.ME.stats.ME.dispatches
    (Array.fold_left ( + ) 0 base.ME.stats.ME.pe_dispatches)

let test_null_tracer () =
  Alcotest.(check bool) "disabled" false (Obs.Tracer.enabled Obs.Tracer.null);
  Obs.Tracer.emit Obs.Tracer.null
    (Obs.Event.Ack { time = 0; track = 0; src = 0; dst = 0 });
  Alcotest.(check int) "records nothing" 0 (Obs.Tracer.length Obs.Tracer.null);
  (* the engines default to the null tracer: a plain run traces nothing *)
  let (_ : Sim.Engine.result) =
    Sim.Engine.run_cfg Run_config.default (fig2_graph ()) ~inputs:(fig2_inputs 10)
  in
  Alcotest.(check int)
    "still nothing after a run" 0
    (Obs.Tracer.length Obs.Tracer.null)

let test_ring_buffer () =
  let t = Obs.Tracer.create ~capacity:4 () in
  for i = 0 to 9 do
    Obs.Tracer.emit t (Obs.Event.Ack { time = i; track = 0; src = 0; dst = 0 })
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Tracer.length t);
  Alcotest.(check int) "dropped counted" 6 (Obs.Tracer.dropped t);
  Alcotest.(check int) "total emitted" 10 (Obs.Tracer.total t);
  Alcotest.(check (list int))
    "newest retained, oldest first" [ 6; 7; 8; 9 ]
    (List.map Obs.Event.time (Obs.Tracer.events t));
  Obs.Tracer.clear t;
  Alcotest.(check int) "clear empties" 0 (Obs.Tracer.length t)

(* ---------------- Perfetto export ---------------- *)

let test_perfetto_wellformed () =
  let _prog, cp = D.compile_source kernel_source in
  let tracer = Obs.Tracer.create () in
  let st = Random.State.make [| 1 |] in
  let wave = List.init 16 (fun _ -> Random.State.float st 1.0) in
  let result =
    D.run_cfg ~waves:4
      Run_config.(default |> with_tracer tracer)
      cp
      ~inputs:[ ("A", D.wave_of_floats wave); ("B", D.wave_of_floats wave) ]
  in
  let doc =
    Obs.Json.of_string
      (Obs.Perfetto.to_string ~process_name:"test"
         ~track_names:[ (0, "cell 0") ]
         (Obs.Tracer.events tracer))
  in
  let total = Array.fold_left ( + ) 0 result.Sim.Engine.fire_counts in
  Alcotest.(check int)
    "slice count equals total firings" total
    (Obs.Perfetto.slice_count doc);
  let events = Obs.Json.get_list (Obs.Json.member "traceEvents" doc) in
  Alcotest.(check bool) "has events" true (events <> []);
  List.iter
    (fun ev ->
      Alcotest.(check bool)
        "every event has ph/pid/name" true
        (Obs.Json.get_string (Obs.Json.member "ph" ev) <> None
        && Obs.Json.get_int (Obs.Json.member "pid" ev) <> None
        && Obs.Json.get_string (Obs.Json.member "name" ev) <> None))
    events

(* ---------------- metrics registry ---------------- *)

let test_metrics_roundtrip () =
  let m = Obs.Metrics_registry.create () in
  Obs.Metrics_registry.incr m "runs";
  Obs.Metrics_registry.incr m "runs" ~by:7;
  Obs.Metrics_registry.set m "interval" 2.5;
  for i = 1 to 100 do
    Obs.Metrics_registry.observe m "period" (float_of_int i)
  done;
  Alcotest.(check int) "counter" 8 (Obs.Metrics_registry.counter m "runs");
  Alcotest.(check int) "absent counter" 0 (Obs.Metrics_registry.counter m "x");
  (match Obs.Metrics_registry.summary m "period" with
  | None -> Alcotest.fail "missing summary"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Obs.Metrics_registry.count;
    Alcotest.(check (float 1e-9)) "mean" 50.5 s.Obs.Metrics_registry.mean;
    Alcotest.(check (float 1e-9)) "p50" 51.0 s.Obs.Metrics_registry.p50);
  let doc =
    Obs.Json.of_string (Obs.Json.to_string (Obs.Metrics_registry.to_json m))
  in
  let open Obs.Json in
  Alcotest.(check (option int))
    "counter round-trips" (Some 8)
    (get_int (member "runs" (member "counters" doc)));
  Alcotest.(check (option (float 1e-9)))
    "gauge round-trips" (Some 2.5)
    (get_float (member "interval" (member "gauges" doc)));
  Alcotest.(check (option (float 1e-9)))
    "histogram mean round-trips" (Some 50.5)
    (get_float (member "mean" (member "period" (member "histograms" doc))))

(* ---------------- bench JSON ---------------- *)

let test_bench_schema () =
  let entries =
    [ Obs.Bench_json.entry ~predicted:2.0 ~measured:2.003 ~ok:true "E1"
        "pipeline";
      Obs.Bench_json.entry ~ok:false ~detail:"broke" "E2" "balance" ]
  in
  let path = Filename.temp_file "bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Bench_json.write_file ~path entries;
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let doc = Obs.Json.of_string text in
      let open Obs.Json in
      Alcotest.(check (option string))
        "schema" (Some "dataflow_pipelining.bench/1")
        (get_string (member "schema" doc));
      Alcotest.(check (option int)) "total" (Some 2)
        (get_int (member "total" doc));
      Alcotest.(check (option int))
        "failures" (Some 1)
        (get_int (member "failures" doc));
      match get_list (member "results" doc) with
      | [ e1; e2 ] ->
        Alcotest.(check (option string))
          "id" (Some "E1")
          (get_string (member "id" e1));
        Alcotest.(check (option string))
          "verdict" (Some "PASS")
          (get_string (member "verdict" e1));
        Alcotest.(check (option (float 1e-9)))
          "predicted" (Some 2.0)
          (get_float (member "predicted" e1));
        Alcotest.(check (option bool))
          "ok false" (Some false)
          (get_bool (member "ok" e2))
      | _ -> Alcotest.fail "expected two results")

(* ---------------- JSON wire-format round trips ---------------- *)

(* Structural equality with bit-exact floats: the printer must preserve
   every finite double, including -0.0 and subnormals, which plain (=)
   would conflate with their neighbours. *)
let rec json_equal a b =
  let open Obs.Json in
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | String x, String y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
         xs ys
  | _ -> false

let roundtrips j = json_equal j (Obs.Json.of_string (Obs.Json.to_string j))

let finite_float_gen =
  QCheck.Gen.(
    frequency
      [ (4, float);
        (2, map2 (fun m e -> ldexp m e) (float_range (-1.0) 1.0) (int_range (-1074) 1023));
        (1, oneofl
             [ 0.0; -0.0; 0.1; 1.0 /. 3.0; 1e15; 1e15 -. 1.0; 1e22;
               max_float; min_float; epsilon_float; 4.9e-324;
               9007199254740993.0; 1.2345678901234567 ]) ]
    |> map (fun f -> if Float.is_nan f || Float.abs f = infinity then 0.5 else f))

let json_gen =
  let open QCheck.Gen in
  let scalar =
    frequency
      [ (1, return Obs.Json.Null);
        (2, map (fun b -> Obs.Json.Bool b) bool);
        (4, map (fun i -> Obs.Json.Int i) int);
        (4, map (fun f -> Obs.Json.Float f) finite_float_gen);
        (4, map (fun s -> Obs.Json.String s) string) ]
  in
  sized_size (int_bound 4)
    (fix (fun self depth ->
         if depth = 0 then scalar
         else
           frequency
             [ (3, scalar);
               (1, map (fun xs -> Obs.Json.List xs)
                     (list_size (int_bound 4) (self (depth - 1))));
               (1, map (fun kvs -> Obs.Json.Obj kvs)
                     (list_size (int_bound 4)
                        (pair string (self (depth - 1))))) ]))

let prop_tests =
  let count = 500 in
  [ QCheck.Test.make ~count ~name:"string round-trip (escapes, control chars)"
      QCheck.string
      (fun s -> roundtrips (Obs.Json.String s));
    QCheck.Test.make ~count ~name:"int round-trip (full range)"
      QCheck.(frequency [ (4, int); (1, oneofl [ min_int; max_int; 0; -1 ]) ])
      (fun i -> roundtrips (Obs.Json.Int i));
    QCheck.Test.make ~count ~name:"finite float round-trip (bit-exact)"
      (QCheck.make ~print:(Printf.sprintf "%h") finite_float_gen)
      (fun f -> roundtrips (Obs.Json.Float f));
    QCheck.Test.make ~count:200 ~name:"nested document round-trip"
      (QCheck.make ~print:Obs.Json.to_string json_gen)
      roundtrips ]

let test_json_corner_cases () =
  let open Obs.Json in
  (* non-finite reals have no JSON number form; they print as null and
     travel as %h hex-float strings on wire formats that need them *)
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan));
  Alcotest.(check string)
    "inf is null" "null" (to_string (Float Float.infinity));
  List.iter
    (fun f ->
      let s = Printf.sprintf "%h" f in
      let back = float_of_string s in
      let same =
        if Float.is_nan f then Float.is_nan back
        else Int64.bits_of_float back = Int64.bits_of_float f
      in
      Alcotest.(check bool)
        (Printf.sprintf "hex-float string %s survives the wire" s)
        true
        (same && get_string (of_string (to_string (String s))) = Some s))
    [ Float.nan; Float.infinity; Float.neg_infinity; -0.0; 0.1; max_float ];
  Alcotest.(check string)
    "negative zero keeps its sign" "-0.0" (to_string (Float (-0.0)));
  Alcotest.(check string)
    "escapes nest" {|"a\"b\\n\\c"|} (to_string (String {|a"b\n\c|}));
  Alcotest.(check bool)
    "deep escape round-trip" true
    (roundtrips (String "\\\\\"\n\t\r\b\012\000\031end"))

(* ---------------- Metrics.initiation_interval on tiny samples ------- *)

let test_interval_tiny_samples () =
  let nan_for msg times =
    Alcotest.(check bool)
      msg true
      (Float.is_nan (Sim.Metrics.initiation_interval times))
  in
  nan_for "empty sample" [];
  nan_for "single arrival" [ 5 ];
  Alcotest.(check (float 1e-9))
    "two arrivals" 2.0
    (Sim.Metrics.initiation_interval [ 3; 5 ]);
  Alcotest.(check (float 1e-9))
    "negative trim clamps instead of raising" 2.0
    (Sim.Metrics.initiation_interval ~trim:(-1.0) [ 0; 2; 4 ]);
  Alcotest.(check bool)
    "over-trim yields nan" true
    (Float.is_nan (Sim.Metrics.initiation_interval ~trim:0.9 [ 0; 2; 4 ]))

let suite =
  [
    Alcotest.test_case "sim tracer on/off parity" `Quick test_sim_parity;
    Alcotest.test_case "machine tracer on/off parity" `Quick
      test_machine_parity;
    Alcotest.test_case "null tracer records nothing" `Quick test_null_tracer;
    Alcotest.test_case "ring buffer drops oldest" `Quick test_ring_buffer;
    Alcotest.test_case "perfetto export well-formed" `Quick
      test_perfetto_wellformed;
    Alcotest.test_case "metrics registry round-trip" `Quick
      test_metrics_roundtrip;
    Alcotest.test_case "bench JSON schema" `Quick test_bench_schema;
    Alcotest.test_case "initiation_interval tiny samples" `Quick
      test_interval_tiny_samples;
    Alcotest.test_case "json wire-format corner cases" `Quick
      test_json_corner_cases;
  ]
  @ List.map QCheck_alcotest.to_alcotest prop_tests
