(* The flat-arena lowering and the compiled-mode contract: arena
   numbering invariants, compiled-vs-interpreted bit-identity on every
   kernel under both engines, snapshot/restore bit-identity across
   firing-rule modes, and the shared nan/error conventions. *)

open Dfg
module ME = Machine.Machine_engine
module K = Kernels
module PC = Compiler.Program_compile

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let kernel_subject (k : K.kernel) ~size ~seed =
  let st = Random.State.make [| seed; Hashtbl.hash k.K.name |] in
  let _, compiled =
    Compiler.Driver.compile_source ~scalar_inputs:k.K.scalar_inputs
      (k.K.source size)
  in
  let inputs =
    List.map
      (fun (name, _) -> (name, List.assoc name (k.K.inputs size st)))
      compiled.PC.cp_inputs
  in
  (compiled.PC.cp_graph, inputs)

(* ---------------- arena structure ---------------- *)

let test_arena_invariants () =
  List.iter
    (fun (k : K.kernel) ->
      let g, _ = kernel_subject k ~size:8 ~seed:0 in
      let a = Arena.build g in
      let n = a.Arena.n in
      checki (k.K.name ^ ": cell count") (Graph.node_count g) n;
      checki (k.K.name ^ ": port_base closes")
        a.Arena.n_ports a.Arena.port_base.(n);
      checki (k.K.name ^ ": slot_base closes")
        a.Arena.n_slots a.Arena.slot_base.(n);
      checki (k.K.name ^ ": dest_base closes")
        (Array.length a.Arena.dest_port)
        a.Arena.dest_base.(a.Arena.n_slots);
      (* global port numbering is the inverse of (cell, local port) *)
      for p = 0 to a.Arena.n_ports - 1 do
        checki
          (Printf.sprintf "%s: port %d round-trips" k.K.name p)
          p
          (a.Arena.port_base.(a.Arena.port_cell.(p)) + a.Arena.port_sub.(p))
      done;
      for id = 0 to n - 1 do
        let node = Graph.node g id in
        checki
          (Printf.sprintf "%s: cell %d arity" k.K.name id)
          (Array.length node.Graph.inputs)
          (Arena.arity a id);
        (* port kinds mirror the graph's input connectors *)
        Array.iteri
          (fun i inp ->
            let kind = a.Arena.port_kind.(a.Arena.port_base.(id) + i) in
            let want =
              match inp with
              | Graph.In_arc -> Arena.kind_arc
              | Graph.In_arc_init _ -> Arena.kind_init
              | Graph.In_const _ -> Arena.kind_const
            in
            checki
              (Printf.sprintf "%s: cell %d port %d kind" k.K.name id i)
              want kind)
          node.Graph.inputs;
        (* destination segments preserve the graph's dests order *)
        Array.iteri
          (fun slot eps ->
            let s = a.Arena.slot_base.(id) + slot in
            let db = a.Arena.dest_base.(s) in
            checki
              (Printf.sprintf "%s: cell %d slot %d fanout" k.K.name id slot)
              (List.length eps) a.Arena.fanout.(s);
            List.iteri
              (fun i { Graph.ep_node; ep_port } ->
                checki
                  (Printf.sprintf "%s: cell %d slot %d dest %d" k.K.name id
                     slot i)
                  (a.Arena.port_base.(ep_node) + ep_port)
                  a.Arena.dest_port.(db + i))
              eps)
          node.Graph.dests
      done)
    K.all

(* ---------------- compiled == interpreted, bit for bit ------------- *)

let seeds = List.init 10 Fun.id

let run_kernel (k : K.kernel) ~engine ~compiled ~seed =
  let base =
    match engine with
    | Exec.Job.Sim -> Run_config.default
    | Exec.Job.Machine _ -> ME.default_config
  in
  Exec.Job.run
    (Exec.Job.make
       ~name:(Printf.sprintf "%s/seed%d" k.K.name seed)
       ~engine
       ~config:(Run_config.with_compiled compiled base)
       (Exec.Job.Source_program
          {
            source = k.K.source 6;
            scalar_inputs = k.K.scalar_inputs;
            options = None;
            waves = 2;
          })
       ~inputs:(k.K.inputs 6 (Random.State.make [| seed; Hashtbl.hash k.K.name |])))

let check_identical ~label (a : Exec.Outcome.t) (b : Exec.Outcome.t) =
  checkb (label ^ ": outputs bit-identical") true
    (a.Exec.Outcome.outputs = b.Exec.Outcome.outputs);
  checki (label ^ ": end_time") a.Exec.Outcome.end_time
    b.Exec.Outcome.end_time;
  checkb (label ^ ": quiescent") a.Exec.Outcome.quiescent
    b.Exec.Outcome.quiescent;
  checkb (label ^ ": counters") true
    (a.Exec.Outcome.counters = b.Exec.Outcome.counters);
  checki (label ^ ": digest") (Exec.Outcome.digest a) (Exec.Outcome.digest b)

let test_compiled_bit_identity_sim () =
  List.iter
    (fun (k : K.kernel) ->
      List.iter
        (fun seed ->
          check_identical
            ~label:(Printf.sprintf "sim %s seed %d" k.K.name seed)
            (run_kernel k ~engine:Exec.Job.Sim ~compiled:false ~seed)
            (run_kernel k ~engine:Exec.Job.Sim ~compiled:true ~seed))
        seeds)
    K.all

let test_compiled_bit_identity_machine () =
  let engine = Exec.Job.Machine Machine.Arch.default in
  List.iter
    (fun (k : K.kernel) ->
      List.iter
        (fun seed ->
          check_identical
            ~label:(Printf.sprintf "machine %s seed %d" k.K.name seed)
            (run_kernel k ~engine ~compiled:false ~seed)
            (run_kernel k ~engine ~compiled:true ~seed))
        seeds)
    K.all

(* ---------------- snapshot/restore across modes ---------------- *)

let machine_result_identical ~label (a : ME.result) (b : ME.result) =
  checkb (label ^ ": outputs") true (a.ME.outputs = b.ME.outputs);
  checki (label ^ ": end_time") a.ME.end_time b.ME.end_time;
  checkb (label ^ ": stats") true (a.ME.stats = b.ME.stats);
  checkb (label ^ ": quiescent") a.ME.quiescent b.ME.quiescent

let test_snapshot_restore_modes () =
  let k = K.find "hydro" in
  let g, inputs = kernel_subject k ~size:10 ~seed:3 in
  let arch = Machine.Arch.default in
  let cfg compiled = Run_config.with_compiled compiled ME.default_config in
  let straight = ME.run_cfg (cfg false) ~arch g ~inputs in
  (* a mid-run snapshot resumes bit-identically in EITHER mode: the
     snapshot is plain data and the compiled closures carry no state *)
  List.iter
    (fun snap_compiled ->
      let m = ME.create_cfg (cfg snap_compiled) ~arch g ~inputs in
      ME.advance m ~until:40;
      checkb "paused mid-run" false (ME.finished m);
      let sn = ME.snapshot m in
      List.iter
        (fun resume_compiled ->
          let label =
            Printf.sprintf "snap %b -> resume %b" snap_compiled
              resume_compiled
          in
          let m2 = ME.create_cfg (cfg resume_compiled) ~arch g ~inputs in
          ME.restore m2 sn;
          ME.advance m2 ~until:max_int;
          machine_result_identical ~label straight (ME.result m2))
        [ false; true ];
      (* and the paused machine itself finishes identically *)
      ME.advance m ~until:max_int;
      machine_result_identical
        ~label:(Printf.sprintf "paused machine finishes (compiled %b)"
                  snap_compiled)
        straight (ME.result m))
    [ false; true ]

(* ---------------- nan and error conventions ---------------- *)

let test_nan_conventions () =
  checkb "ratio n/0 is nan" true (Float.is_nan (Df_util.Conventions.ratio 3.0 0.0));
  checkb "interval of no packets is nan" true
    (Float.is_nan (Sim.Metrics.initiation_interval []));
  checkb "interval of one packet is nan" true
    (Float.is_nan (Sim.Metrics.initiation_interval [ 5 ]));
  Alcotest.(check (float 1e-9))
    "interval of a steady stream" 2.0
    (Sim.Metrics.initiation_interval [ 0; 2; 4; 6 ]);
  let zero =
    {
      Exec.Outcome.firings = 0; cells = 0; fu_ops = 0; am_ops = 0;
      result_packets = 0; ack_packets = 0; retransmits = 0;
      checkpoints = 0; recoveries = 0;
    }
  in
  checkb "am_fraction of an empty run is nan" true
    (Float.is_nan (Exec.Outcome.am_fraction zero));
  let k = K.find "hydro" in
  let o = run_kernel k ~engine:Exec.Job.Sim ~compiled:false ~seed:0 in
  checkb "sim am_fraction is 0 (no array memories)" true
    (Exec.Outcome.am_fraction o.Exec.Outcome.counters = 0.0)

let test_lookup_errors () =
  let k = K.find "hydro" in
  let o = run_kernel k ~engine:Exec.Job.Sim ~compiled:false ~seed:0 in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Exec.Outcome.stream o "nope" with
  | _ -> Alcotest.fail "unknown stream must raise"
  | exception Invalid_argument msg ->
    checkb "names the missing stream" true (contains msg "no output stream nope");
    checkb "lists the produced streams" true (contains msg "run produced"));
  let g, _ = kernel_subject k ~size:6 ~seed:0 in
  match Sim.Engine.run_cfg Run_config.default g ~inputs:[] with
  | _ -> Alcotest.fail "missing input feed must raise"
  | exception Invalid_argument msg ->
    checkb "names the missing input" true (contains msg "no packets for input")

let suite =
  [
    Alcotest.test_case "arena numbering invariants" `Quick
      test_arena_invariants;
    Alcotest.test_case "compiled == interpreted (sim, all kernels x seeds)"
      `Slow test_compiled_bit_identity_sim;
    Alcotest.test_case
      "compiled == interpreted (machine, all kernels x seeds)" `Slow
      test_compiled_bit_identity_machine;
    Alcotest.test_case "snapshot/restore across firing-rule modes" `Quick
      test_snapshot_restore_modes;
    Alcotest.test_case "nan conventions are shared" `Quick
      test_nan_conventions;
    Alcotest.test_case "lookup error paths name the candidates" `Quick
      test_lookup_errors;
  ]
