(* lib/recover tests: checkpoint format round-trips, save/load/resume
   bit-identity, crash tolerance with and without a recovery policy,
   retransmission under lossy faults, and the crash differential across
   every kernel — the tentpole property: a PE-crashed machine that
   recovers must match the clean run value for value. *)

open Dfg
module ME = Machine.Machine_engine
module FP = Fault.Fault_plan
module San = Fault.Sanitizer
module SR = Fault.Stall_report
module V = Fault.Violation
module FD = Fault_diff
module CP = Recover.Checkpoint

let ints xs = List.map (fun i -> Value.Int i) xs

let figure2 () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let b = Graph.add g (Opcode.Input "b") [||] in
  let add =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:a ~dst:add ~port:0;
  Graph.connect g ~src:b ~dst:add ~port:1;
  let mul =
    Graph.add g (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_const (Value.Int 3) |]
  in
  Graph.connect g ~src:add ~dst:mul ~port:0;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:mul ~dst:out ~port:0;
  g

let fig2_inputs n =
  [ ("a", ints (List.init n Fun.id)); ("b", ints (List.init n (fun i -> 10 * i))) ]

(* a real-valued pipeline exercising awkward floats in checkpoints *)
let real_pipeline () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let neg = Graph.add g Opcode.Neg [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:neg ~port:0;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:neg ~dst:out ~port:0;
  g

let awkward_reals =
  [ 0.1; 1.0 /. 3.0; 1e-300; 4.9e-324 (* denormal *); -0.0; 1.5e300 ]

(* ---------------- policy spec ---------------- *)

let test_policy_spec () =
  (match Recover.of_string "" with
  | Ok p -> Alcotest.(check bool) "empty spec is default" true (p = Recover.default)
  | Error e -> Alcotest.failf "empty spec: %s" e);
  (match Recover.of_string "every=0,timeout=10,backoff=3,retries=2" with
  | Ok p ->
    Alcotest.(check int) "every" 0 p.Recover.checkpoint_every;
    Alcotest.(check int) "timeout" 10 p.Recover.retransmit_after;
    Alcotest.(check int) "backoff" 3 p.Recover.retransmit_backoff;
    Alcotest.(check int) "retries" 2 p.Recover.max_retransmits;
    Alcotest.(check bool) "round-trip" true
      (Recover.of_string (Recover.to_string p) = Ok p)
  | Error e -> Alcotest.failf "unexpected parse error: %s" e);
  (match Recover.of_string "timeout=0" with
  | Ok _ -> Alcotest.fail "timeout=0 must be rejected"
  | Error _ -> ());
  (match Recover.of_string "bogus=1" with
  | Ok _ -> Alcotest.fail "unknown key must be rejected"
  | Error _ -> ());
  Alcotest.(check bool) "default round-trip" true
    (Recover.of_string (Recover.to_string Recover.default) = Ok Recover.default)

(* ---------------- checkpoint format ---------------- *)

let test_checkpoint_json_round_trip () =
  let g = real_pipeline () in
  let inputs = [ ("a", List.map (fun f -> Value.Real f) awkward_reals) ] in
  let plan = FP.make (FP.delays ~prob:0.4 ~max_delay:5 31) in
  let m =
    ME.create_cfg
      Run_config.(
        default |> with_max_time ME.default_max_time |> with_fault plan
        |> with_sanitizer (San.create g)
        |> with_recovery ME.default_recovery)
      ~arch:Machine.Arch.default g ~inputs
  in
  ME.advance m ~until:12;
  let sn = ME.snapshot m in
  (match CP.of_json ~graph:g (CP.to_json ~graph:g sn) with
  | Ok sn' ->
    Alcotest.(check bool) "snapshot survives JSON round-trip (bit-exact)" true
      (CP.equal sn sn')
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* a checkpoint from one program must not load against another *)
  let other = figure2 () in
  match CP.of_json ~graph:other (CP.to_json ~graph:g sn) with
  | Ok _ -> Alcotest.fail "fingerprint mismatch must be rejected"
  | Error e ->
    Alcotest.(check bool) "error names the fingerprint" true
      (let rec has i =
         i + 11 <= String.length e
         && (String.sub e i 11 = "fingerprint" || has (i + 1))
       in
       has 0)

let test_save_load_resume_bit_identical () =
  (* acceptance: pause a faulted run mid-flight, save the checkpoint to
     disk, load it into a fresh machine, run both to completion — the
     resumed run must be bit-identical in outputs, timestamps and final
     stats to the run that never stopped *)
  let g = figure2 () in
  let inputs = fig2_inputs 24 in
  let plan = FP.make (FP.delays ~prob:0.3 ~max_delay:6 77) in
  let recovery = { ME.default_recovery with checkpoint_every = 20 } in
  let arch = Machine.Arch.default in
  (* each run gets its own sanitizer: they are stateful observers *)
  let cfg () =
    Run_config.(
      default |> with_max_time ME.default_max_time |> with_fault plan
      |> with_sanitizer (San.create g) |> with_recovery recovery)
  in
  let straight = ME.run_cfg (cfg ()) ~arch g ~inputs in
  let m = ME.create_cfg (cfg ()) ~arch g ~inputs in
  ME.advance m ~until:40;
  Alcotest.(check bool) "paused, not finished" false (ME.finished m);
  let path = Filename.temp_file "dfsim-ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      CP.save ~path ~graph:g (ME.snapshot m);
      match CP.load ~path ~graph:g with
      | Error e -> Alcotest.failf "load failed: %s" (CP.load_error_to_string e)
      | Ok sn ->
        Alcotest.(check bool) "disk round-trip exact" true
          (CP.equal sn (ME.snapshot m));
        let resumed = Recover.resume (cfg ()) ~arch g ~inputs sn in
        Alcotest.(check bool) "outputs and timestamps identical" true
          (resumed.ME.outputs = straight.ME.outputs);
        Alcotest.(check int) "end_time identical" straight.ME.end_time
          resumed.ME.end_time;
        Alcotest.(check bool) "stats identical" true
          (resumed.ME.stats = straight.ME.stats);
        Alcotest.(check (list string)) "sanitizer clean" []
          (List.map V.to_string resumed.ME.violations))

(* ---------------- crash faults ---------------- *)

let crash_plan ~seed ~pe ~at extra =
  FP.make { extra with FP.seed; crash_pe = pe; crash_at = at }

let test_crash_without_recovery_wedges () =
  (* fail-stop with no recovery policy: the dead PE's cells never fire
     again, the run wedges, and the stall report names the PE *)
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let clean = ME.run_cfg ME.default_config ~arch:Machine.Arch.default g ~inputs in
  let plan = crash_plan ~seed:1 ~pe:2 ~at:30 FP.none in
  let r =
    ME.run_cfg
      Run_config.(ME.default_config |> with_fault plan)
      ~arch:Machine.Arch.default g ~inputs
  in
  Alcotest.(check int) "no recovery performed" 0 r.ME.recoveries;
  Alcotest.(check bool) "outputs incomplete" true
    (List.length (ME.output_values r "r")
    < List.length (ME.output_values clean "r"));
  match r.ME.stall with
  | None -> Alcotest.fail "crashed machine must file a stall report"
  | Some sr ->
    Alcotest.(check (list int)) "dead PE named" [ 2 ] sr.SR.sr_dead_pes;
    Alcotest.(check bool) "report mentions the dead PE" true
      (let s = SR.to_string sr in
       let rec has i =
         i + 7 <= String.length s && (String.sub s i 7 = "dead PE" || has (i + 1))
       in
       has 0)

let test_crash_with_recovery_equal () =
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let plan = crash_plan ~seed:1 ~pe:2 ~at:30 FP.none in
  let recovery = { ME.default_recovery with checkpoint_every = 25 } in
  let o = FD.machine ~recovery ~plan g ~inputs in
  if not o.FD.equal then
    Alcotest.failf "recovered run diverged: %s"
      (FD.mismatch_to_string (List.hd o.FD.mismatches));
  Alcotest.(check int) "exactly one recovery" 1 o.FD.faulted_recoveries;
  Alcotest.(check (list string)) "sanitizer clean through recovery" []
    (List.map V.to_string o.FD.faulted_violations)

let test_crash_on_input_host_recovers () =
  (* PE 0 hosts the Input cell feeding everything — the hardest loss *)
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let plan = crash_plan ~seed:2 ~pe:0 ~at:45 FP.none in
  let recovery = { ME.default_recovery with checkpoint_every = 30 } in
  let o = FD.machine ~recovery ~plan g ~inputs in
  Alcotest.(check bool) "outputs equal" true o.FD.equal;
  Alcotest.(check int) "one recovery" 1 o.FD.faulted_recoveries

(* ---------------- retransmission ---------------- *)

let lossy_outcome spec =
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let recovery = { ME.default_recovery with retransmit_after = 24 } in
  FD.machine ~recovery ~plan:(FP.make spec) g ~inputs

let test_drop_ack_recovered () =
  (* lost acknowledges starved producers fatally before; with
     retransmission the producer resends, the consumer re-acks, and the
     run completes clean *)
  let o = lossy_outcome { FP.none with FP.seed = 5; drop_ack_prob = 0.3 } in
  Alcotest.(check bool) "outputs equal under 30% ack loss" true o.FD.equal;
  Alcotest.(check (list string)) "no violations" []
    (List.map V.to_string o.FD.faulted_violations);
  match o.FD.faulted_snapshot with
  | None -> Alcotest.fail "machine differential must expose the snapshot"
  | Some sn ->
    Alcotest.(check bool) "retransmissions actually happened" true
      (sn.ME.sn_stats.ME.retransmits > 0)

let test_drop_result_recovered () =
  let o = lossy_outcome { FP.none with FP.seed = 6; drop_prob = 0.3 } in
  Alcotest.(check bool) "outputs equal under 30% packet loss" true o.FD.equal;
  Alcotest.(check (list string)) "no violations" []
    (List.map V.to_string o.FD.faulted_violations)

let test_dup_recovered () =
  (* duplicated packets were a sanitizer-fatal protocol breach; sequence
     numbers deduplicate them silently *)
  let o = lossy_outcome { FP.none with FP.seed = 7; dup_prob = 0.5 } in
  Alcotest.(check bool) "outputs equal under 50% duplication" true o.FD.equal;
  Alcotest.(check (list string)) "no violations" []
    (List.map V.to_string o.FD.faulted_violations)

let test_recovery_overhead_free_when_clean () =
  (* with no faults, a recovery-enabled run must match a plain run
     exactly — the protocol may not perturb values or timing *)
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let arch = Machine.Arch.default in
  let plain = ME.run_cfg ME.default_config ~arch g ~inputs in
  let recovered =
    ME.run_cfg
      Run_config.(ME.default_config |> with_recovery ME.default_recovery)
      ~arch g ~inputs
  in
  Alcotest.(check bool) "outputs identical" true
    (plain.ME.outputs = recovered.ME.outputs);
  Alcotest.(check int) "end_time identical" plain.ME.end_time
    recovered.ME.end_time;
  Alcotest.(check int) "no spurious retransmissions" 0
    recovered.ME.stats.ME.retransmits

(* ---------------- the tentpole property, kernel by kernel ---------------- *)

let test_kernels_crash_differential () =
  (* every kernel, 10 seeded crash+delay plans: the recovered machine
     run must equal the clean run value for value with zero sanitizer
     violations — checkpoint/rollback/re-host/replay is output-invisible *)
  let module D = Compiler.Driver in
  let module PC = Compiler.Program_compile in
  let module K = Kernels in
  let n = 8 and waves = 2 in
  let replicate xs = List.concat_map (fun _ -> xs) (List.init waves Fun.id) in
  let total_recoveries = ref 0 in
  List.iter
    (fun (k : K.kernel) ->
      let st = Random.State.make [| Hashtbl.hash k.K.name |] in
      let _, compiled =
        D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source n)
      in
      let kernel_inputs = k.K.inputs n st in
      let feeds =
        List.map
          (fun (name, _) -> (name, replicate (List.assoc name kernel_inputs)))
          compiled.PC.cp_inputs
      in
      List.iter
        (fun seed ->
          let plan =
            crash_plan ~seed
              ~pe:(seed mod 8)
              ~at:(40 + (5 * (seed mod 20)))
              (FP.delays ~prob:0.1 ~max_delay:5 seed)
          in
          let recovery = { ME.default_recovery with checkpoint_every = 40 } in
          let o =
            FD.machine ~recovery ~plan compiled.PC.cp_graph ~inputs:feeds
          in
          total_recoveries := !total_recoveries + o.FD.faulted_recoveries;
          if not o.FD.equal then
            Alcotest.failf "%s seed %d: %s" k.K.name seed
              (FD.mismatch_to_string (List.hd o.FD.mismatches));
          Alcotest.(check (list string))
            (Printf.sprintf "%s seed %d sanitizer clean" k.K.name seed)
            []
            (List.map V.to_string o.FD.faulted_violations))
        (List.init 10 (fun i -> 500 + (131 * i))))
    K.all;
  (* the property must not pass vacuously: most of the 80 plans crash a
     PE mid-run and every such run performs exactly one recovery *)
  Alcotest.(check bool)
    (Printf.sprintf "crashes actually recovered (%d)" !total_recoveries)
    true
    (!total_recoveries >= 40)

let test_generator_tail_quiesces_under_ack_loss () =
  (* hydro's windowing cells are fed by free-running CTL generators
     whose final token parks on an arc forever.  Under recovery that
     token's retransmission timer must neither keep the machine awake
     (the run must still quiesce) nor burn the retry budget while the
     token is merely resident at a slow consumer (regression: the
     consume-time acknowledge then had no retries left and a 15% ack
     loss wedged the run with an ack-conservation violation). *)
  let module D = Compiler.Driver in
  let module PC = Compiler.Program_compile in
  let module K = Kernels in
  let n = 8 and waves = 2 in
  let k = List.find (fun (k : K.kernel) -> k.K.name = "hydro") K.all in
  let st = Random.State.make [| Hashtbl.hash k.K.name |] in
  let _, compiled =
    D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source n)
  in
  let kernel_inputs = k.K.inputs n st in
  let feeds =
    List.map
      (fun (name, _) ->
        (name, List.concat (List.init waves (fun _ -> List.assoc name kernel_inputs))))
      compiled.PC.cp_inputs
  in
  List.iter
    (fun seed ->
      let plan =
        FP.make
          { FP.none with FP.seed; delay_prob = 0.25; drop_ack_prob = 0.15 }
      in
      let recovery = ME.default_recovery in
      let watchdog = 100 + (4 * FP.none.FP.delay_max) + (17 * recovery.ME.retransmit_after) in
      let o =
        FD.machine ~watchdog ~recovery ~plan compiled.PC.cp_graph ~inputs:feeds
      in
      if not o.FD.equal then
        Alcotest.failf "hydro seed %d: %s" seed
          (FD.mismatch_to_string (List.hd o.FD.mismatches));
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d sanitizer clean" seed)
        []
        (List.map V.to_string o.FD.faulted_violations);
      match o.FD.faulted_stall with
      | None -> ()
      | Some sr ->
        (* residual generator tokens surface as a quiescent deadlock
           report, never as a watchdog no-progress trip *)
        Alcotest.(check bool)
          (Printf.sprintf "seed %d quiesced (got %s)" seed (SR.to_string sr))
          true
          (sr.SR.sr_reason = SR.Deadlock))
    [ 101; 202; 303 ]

let suite =
  [
    Alcotest.test_case "recovery policy spec" `Quick test_policy_spec;
    Alcotest.test_case "checkpoint JSON round-trip" `Quick
      test_checkpoint_json_round_trip;
    Alcotest.test_case "save/load/resume bit-identical" `Quick
      test_save_load_resume_bit_identical;
    Alcotest.test_case "crash without recovery wedges" `Quick
      test_crash_without_recovery_wedges;
    Alcotest.test_case "crash with recovery equals clean" `Quick
      test_crash_with_recovery_equal;
    Alcotest.test_case "crash on input-host PE recovers" `Quick
      test_crash_on_input_host_recovers;
    Alcotest.test_case "drop-ack survived by retransmission" `Quick
      test_drop_ack_recovered;
    Alcotest.test_case "drop survived by retransmission" `Quick
      test_drop_result_recovered;
    Alcotest.test_case "dup deduplicated by sequence numbers" `Quick
      test_dup_recovered;
    Alcotest.test_case "recovery overhead-free on clean runs" `Quick
      test_recovery_overhead_free_when_clean;
    Alcotest.test_case "kernels crash differential" `Quick
      test_kernels_crash_differential;
    Alcotest.test_case "generator tail quiesces under ack loss" `Quick
      test_generator_tail_quiesces_under_ack_loss;
  ]
