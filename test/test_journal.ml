(* The write-ahead job journal: framing, torn-tail and bit-rot
   tolerance, replay folding, and the property the whole durability
   story rests on — a machine job resumed from any journaled
   checkpoint prefix finishes with the digest of the uninterrupted
   run. *)

module J = Obs.Json
module Journal = Serve.Journal
module ME = Machine.Machine_engine
module P = Serve.Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* entries compare by their frame bytes: exact and total *)
let frames es = List.map Journal.frame es

let sample_entries =
  [ Journal.Admit
      { idem = "a"; request = J.Obj [ ("verb", J.String "simulate") ] };
    Journal.Progress
      { idem = "a"; checkpoint = J.Obj [ ("time", J.Int 500) ] };
    Journal.Done
      { idem = "a";
        response = J.Obj [ ("ok", J.Bool true) ];
        digest = Some 42 };
    Journal.Admit { idem = "b"; request = J.Obj [ ("waves", J.Int 2) ] };
    Journal.Done
      { idem = "b"; response = J.Obj [ ("ok", J.Bool false) ]; digest = None }
  ]

let test_frame_roundtrip () =
  let image = String.concat "" (frames sample_entries) in
  let back = Journal.entries_of_string image in
  Alcotest.(check (list string))
    "all records recovered from an intact image" (frames sample_entries)
    (frames back)

(* --- random journals ------------------------------------------------- *)

let gen_entry =
  let open QCheck.Gen in
  let key = map (Printf.sprintf "idem-%d") (int_range 0 9) in
  let doc =
    map2
      (fun n s -> J.Obj [ ("n", J.Int n); ("s", J.String s) ])
      (int_range 0 1000)
      (string_size ~gen:(char_range 'a' 'z') (int_range 0 20))
  in
  frequency
    [ (2, map2 (fun idem request -> Journal.Admit { idem; request }) key doc);
      (1,
       map2
         (fun idem checkpoint -> Journal.Progress { idem; checkpoint })
         key doc);
      (1,
       map3
         (fun idem response digest -> Journal.Done { idem; response; digest })
         key doc
         (opt (int_range 0 1000))) ]

let gen_entries = QCheck.Gen.list_size (QCheck.Gen.int_range 1 12) gen_entry

(* a journal cut at any byte: exactly the records that fit whole *)
let torn_tail =
  QCheck.Test.make ~count:200 ~name:"replay of a torn tail = intact prefix"
    (QCheck.make
       QCheck.Gen.(pair gen_entries (float_range 0.0 1.0))
       ~print:(fun (es, f) ->
         Printf.sprintf "%d entries cut at %.3f" (List.length es) f))
    (fun (entries, frac) ->
      let image = String.concat "" (frames entries) in
      let cut = int_of_float (frac *. float_of_int (String.length image)) in
      let cut = min cut (String.length image) in
      let back = Journal.entries_of_string (String.sub image 0 cut) in
      (* expected: the longest run of whole frames within [cut] bytes *)
      let rec take acc used = function
        | e :: rest
          when used + String.length (Journal.frame e) <= cut ->
          take (e :: acc) (used + String.length (Journal.frame e)) rest
        | _ -> List.rev acc
      in
      frames back = frames (take [] 0 entries))

(* one flipped byte: every record before the damage survives, nothing
   after the damaged record is trusted *)
let bit_rot =
  QCheck.Test.make ~count:200 ~name:"replay stops at the first rotted frame"
    (QCheck.make
       QCheck.Gen.(pair gen_entries (float_range 0.0 1.0))
       ~print:(fun (es, f) ->
         Printf.sprintf "%d entries flip at %.3f" (List.length es) f))
    (fun (entries, frac) ->
      let image = String.concat "" (frames entries) in
      QCheck.assume (String.length image > 0);
      let pos =
        min
          (String.length image - 1)
          (int_of_float (frac *. float_of_int (String.length image)))
      in
      let rotted = Bytes.of_string image in
      Bytes.set rotted pos (Char.chr (Char.code (Bytes.get rotted pos) lxor 1));
      let back = Journal.entries_of_string (Bytes.to_string rotted) in
      (* which record owns the flipped byte? *)
      let rec intact acc used = function
        | e :: rest when used + String.length (Journal.frame e) <= pos ->
          intact (e :: acc) (used + String.length (Journal.frame e)) rest
        | _ -> List.rev acc
      in
      frames back = frames (intact [] 0 entries))

let test_fold () =
  let doc n = J.Obj [ ("n", J.Int n) ] in
  let r =
    Journal.fold
      [ Journal.Admit { idem = "a"; request = doc 1 };
        Journal.Admit { idem = "b"; request = doc 2 };
        (* duplicate admission: first write wins *)
        Journal.Admit { idem = "a"; request = doc 99 };
        Journal.Progress { idem = "b"; checkpoint = doc 10 };
        Journal.Progress { idem = "b"; checkpoint = doc 20 };
        Journal.Done { idem = "a"; response = doc 3; digest = Some 7 };
        (* an orphan checkpoint is useless without its request; an
           orphan response is exactly what a compacted journal stores
           for completed work, so it must seed the cache *)
        Journal.Progress { idem = "ghost"; checkpoint = doc 0 };
        Journal.Done { idem = "phantom"; response = doc 0; digest = None };
        Journal.Admit { idem = "c"; request = doc 4 } ]
  in
  (match r.Journal.completed with
  | [ ("a", ra); ("phantom", rp) ] ->
    check "a's response" true (ra = doc 3);
    check "phantom's orphan response kept" true (rp = doc 0)
  | cs ->
    Alcotest.failf "completed should hold [a; phantom], got %d entries"
      (List.length cs));
  (match r.Journal.pending with
  | [ b; c ] ->
    check "b pending first (admission order)" true (b.Journal.p_idem = "b");
    check "b resumes from its latest checkpoint" true
      (b.Journal.p_checkpoint = Some (doc 20));
    check "b's request is the first admission" true
      (b.Journal.p_request = doc 2);
    check "c pending without checkpoint" true
      (c.Journal.p_idem = "c" && c.Journal.p_checkpoint = None)
  | ps ->
    Alcotest.failf "expected pending [b; c], got %d entries" (List.length ps))

(* --- append/replay through a real file ------------------------------- *)

let test_append_replay_file () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "journal-test-%d.wal" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      check "missing file is an empty journal" true (Journal.replay path = []);
      let jr = Journal.open_append path in
      List.iter (Journal.append jr) sample_entries;
      check_int "appended counter" (List.length sample_entries)
        (Journal.appended jr);
      Journal.close jr;
      Alcotest.(check (list string))
        "file replays every record" (frames sample_entries)
        (frames (Journal.replay path));
      (* a second generation appends after the first *)
      let jr2 = Journal.open_append path in
      Journal.append jr2
        (Journal.Admit { idem = "late"; request = J.Obj [] });
      Journal.close jr2;
      check_int "history grows across generations"
        (List.length sample_entries + 1)
        (List.length (Journal.replay path));
      (* SIGKILL mid-append: tear the file at an arbitrary byte *)
      let image =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin path in
      output_string oc (String.sub image 0 (String.length image - 3));
      close_out oc;
      check_int "torn final record dropped, prefix intact"
        (List.length sample_entries)
        (List.length (Journal.replay path)))

(* --- compaction ------------------------------------------------------ *)

let fingerprint (r : Journal.recovered) =
  (r.Journal.completed,
   List.map
     (fun p -> (p.Journal.p_idem, p.Journal.p_request, p.Journal.p_checkpoint))
     r.Journal.pending)

let test_compact () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "journal-compact-%d.wal" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let doc n = J.Obj [ ("n", J.Int n) ] in
      let jr = Journal.open_append path in
      List.iter (Journal.append jr)
        [ Journal.Admit { idem = "a"; request = doc 1 };
          Journal.Done { idem = "a"; response = doc 11; digest = None };
          Journal.Admit { idem = "b"; request = doc 2 };
          Journal.Progress { idem = "b"; checkpoint = doc 20 };
          Journal.Done { idem = "b"; response = doc 12; digest = Some 5 };
          Journal.Admit { idem = "c"; request = doc 3 };
          Journal.Done { idem = "c"; response = doc 13; digest = None };
          Journal.Admit { idem = "d"; request = doc 4 };
          Journal.Progress { idem = "d"; checkpoint = doc 40 };
          Journal.Progress { idem = "d"; checkpoint = doc 41 } ];
      Journal.close jr;
      let before = (Unix.stat path).Unix.st_size in
      let r = Journal.compact ~path ~retain:2 in
      (* the oldest completed response (a) is dropped; b and c stay in
         admission order; the pending job keeps only its latest
         checkpoint *)
      (match r.Journal.completed with
      | [ ("b", rb); ("c", rc) ] ->
        check "b's response retained" true (rb = doc 12);
        check "c's response retained" true (rc = doc 13)
      | cs ->
        Alcotest.failf "retain 2 should keep [b; c], got %d" (List.length cs));
      (match r.Journal.pending with
      | [ d ] ->
        check "pending admission survives" true (d.Journal.p_idem = "d");
        check "latest checkpoint only" true
          (d.Journal.p_checkpoint = Some (doc 41))
      | ps -> Alcotest.failf "expected pending [d], got %d" (List.length ps));
      check "compaction shrank the file" true
        ((Unix.stat path).Unix.st_size < before);
      (* the invariant everything rests on: replaying the compacted
         file reproduces exactly the state compact returned, so the
         NEXT restart (with or without compaction) sees the same world *)
      check "fold (replay compacted) = retained state" true
        (fingerprint (Journal.fold (Journal.replay path)) = fingerprint r);
      (* retain 0: dedup history gone, pending admissions sacred *)
      let r0 = Journal.compact ~path ~retain:0 in
      check "retain 0 drops all completed" true (r0.Journal.completed = []);
      check "retain 0 keeps pending" true
        (List.map (fun p -> p.Journal.p_idem) r0.Journal.pending = [ "d" ]);
      (* a missing file compacts to an empty journal, no error *)
      Sys.remove path;
      let re = Journal.compact ~path ~retain:5 in
      check "missing file compacts empty" true
        (re.Journal.completed = [] && re.Journal.pending = []))

(* compaction must preserve the folded state for ANY journal, and the
   rewritten file must keep the torn-tail replay property *)
let compact_roundtrip =
  QCheck.Test.make ~count:150
    ~name:"compact: state preserved (newest-retain window), torn-tail kept"
    (QCheck.make
       QCheck.Gen.(triple gen_entries (int_range 0 4) (float_range 0.0 1.0))
       ~print:(fun (es, r, f) ->
         Printf.sprintf "%d entries retain %d cut %.3f" (List.length es) r f))
    (fun (entries, retain, frac) ->
      let path = Filename.temp_file "journal-qc-compact" ".wal" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin path in
          output_string oc (String.concat "" (frames entries));
          close_out oc;
          let full = Journal.fold (Journal.replay path) in
          let r = Journal.compact ~path ~retain in
          let want_completed =
            let n = List.length full.Journal.completed in
            List.filteri (fun i _ -> i >= n - retain) full.Journal.completed
          in
          (* returned state: the newest [retain] completed + all pending *)
          fingerprint r
          = (want_completed,
             List.map
               (fun p ->
                 (p.Journal.p_idem, p.Journal.p_request, p.Journal.p_checkpoint))
               full.Journal.pending)
          (* the file round-trips to the same state *)
          && fingerprint (Journal.fold (Journal.replay path)) = fingerprint r
          (* and a SIGKILL tearing the compacted file at any byte still
             replays to a whole-record prefix *)
          && begin
               let image =
                 let ic = open_in_bin path in
                 Fun.protect
                   ~finally:(fun () -> close_in ic)
                   (fun () -> really_input_string ic (in_channel_length ic))
               in
               let cut =
                 min (String.length image)
                   (int_of_float (frac *. float_of_int (String.length image)))
               in
               let whole = Journal.entries_of_string image in
               let torn = Journal.entries_of_string (String.sub image 0 cut) in
               let rec prefix a b =
                 match (a, b) with
                 | [], _ -> true
                 | x :: xs, y :: ys -> x = y && prefix xs ys
                 | _ -> false
               in
               prefix (frames torn) (frames whole)
             end))

(* --- a lying disk ---------------------------------------------------- *)

module DF = Serve.Diskfault

(* The readable prefix under an armed writer, predicted purely from the
   spec: every append's fate is Diskfault.action (seed, ordinal), so
   the first rot / torn / ENOSPC decides where replay must stop. *)
let predict_readable spec entries =
  let rec go op acc = function
    | [] -> List.rev acc
    | e :: rest -> (
      match DF.action spec ~op with
      | DF.Pass | DF.Slow_sync _ -> go (op + 1) (e :: acc) rest
      | DF.Rot _ | DF.Torn _ | DF.Enospc _ -> List.rev acc)
  in
  go 0 [] entries

let write_faulted spec path entries =
  (try Sys.remove path with Sys_error _ -> ());
  let jr = Journal.open_append ~diskfault:spec path in
  (try List.iter (Journal.append jr) entries with
  | Journal.Disk_fault _ -> ()
  | Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  Journal.close jr

(* torn writes, ENOSPC partial writes and bit rot on random journals:
   replay yields exactly the pre-fault prefix, and the damage verdict
   tells recovery it has something to heal — never a silent loss *)
let diskfault_replay =
  QCheck.Test.make ~count:150
    ~name:"diskfault: replay = fault-free prefix, damage never silent"
    (QCheck.make
       QCheck.Gen.(pair gen_entries (int_range 0 1_000_000))
       ~print:(fun (es, seed) ->
         Printf.sprintf "%d entries seed %d" (List.length es) seed))
    (fun (entries, seed) ->
      let spec =
        { DF.none with
          DF.df_seed = seed;
          torn_prob = 0.2;
          enospc_prob = 0.2;
          rot_prob = 0.2 }
      in
      let path = Filename.temp_file "journal-qc-df" ".wal" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          write_faulted spec path entries;
          let want = predict_readable spec entries in
          (* a fault of any kind leaves betrayed bytes after the prefix
             (torn/ENOSPC write at least one byte, rot a whole frame) *)
          let faulted = List.length want < List.length entries in
          let got, damage = Journal.replay_verified path in
          frames got = frames want
          &&
          match damage with
          | Journal.Intact -> not faulted
          | Journal.Damaged { valid; size } ->
            faulted
            && valid = String.length (String.concat "" (frames want))
            && size > valid))

(* the replication contract: the peer stream saw every record the local
   disk betrayed, so folding (local survivors @ replica copies) must
   equal folding the clean history — recovery converges, bit for bit,
   and the rewritten journal is intact *)
let diskfault_recovery_merge =
  QCheck.Test.make ~count:150
    ~name:"diskfault + replica merge: recovered state = clean fold"
    (QCheck.make
       QCheck.Gen.(pair gen_entries (int_range 0 1_000_000))
       ~print:(fun (es, seed) ->
         Printf.sprintf "%d entries seed %d" (List.length es) seed))
    (fun (entries, seed) ->
      let spec =
        { DF.none with
          DF.df_seed = seed;
          torn_prob = 0.25;
          enospc_prob = 0.25;
          rot_prob = 0.25 }
      in
      let path = Filename.temp_file "journal-qc-dfr" ".wal" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          write_faulted spec path entries;
          let local, _damage = Journal.replay_verified path in
          let merged = Journal.fold (local @ entries) in
          fingerprint merged = fingerprint (Journal.fold entries)
          && begin
               (* the disk-loss rewrite: minimal entries, atomic, intact *)
               Journal.write_atomic ~path
                 (Journal.entries_of_recovered merged);
               let back, damage = Journal.replay_verified path in
               damage = Journal.Intact
               && fingerprint (Journal.fold back) = fingerprint merged
             end))

(* fsync-armed appends go through the Unix.fsync path; behavior must be
   byte-identical to the unsynced writer *)
let test_fsync_append () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "journal-fsync-%d.wal" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let jr = Journal.open_append ~fsync:true path in
      List.iter (Journal.append jr) sample_entries;
      Journal.close jr;
      Alcotest.(check (list string))
        "synced file replays every record" (frames sample_entries)
        (frames (Journal.replay path));
      check "synced file is intact" true
        (snd (Journal.replay_verified path) = Journal.Intact))

(* --- the resume property -------------------------------------------- *)

(* What journal replay does with a Progress entry: restore the snapshot
   into a fresh machine and run to completion.  Every slice-boundary
   checkpoint of a run must finish with the uninterrupted run's digest
   and end time — otherwise a crash between two checkpoints could
   change a served answer. *)
let test_checkpoint_prefix_resume () =
  let run =
    { (P.default_run (P.Kernel { name = "hydro"; size = 8 })) with
      P.waves = 3;
      engine = `Machine }
  in
  let cfg, arch =
    match Serve.Server.config_of_run run with
    | Ok c -> c
    | Error e -> Alcotest.failf "config: %s" e
  in
  let graph, inputs, _ =
    match Serve.Server.subject_of_program run.P.program ~waves:run.P.waves with
    | Ok s -> s
    | Error e -> Alcotest.failf "subject: %s" e
  in
  let oneshot = ME.run_cfg cfg ~arch graph ~inputs in
  let slice = 50 in
  let m = ME.create_cfg cfg ~arch graph ~inputs in
  let checkpoints = ref [] in
  let rec slices until =
    ME.advance m ~until;
    if not (ME.finished m) then begin
      checkpoints := ME.snapshot m :: !checkpoints;
      slices (until + slice)
    end
  in
  slices slice;
  let checkpoints = List.rev !checkpoints in
  check "run long enough to checkpoint" true (List.length checkpoints >= 3);
  List.iteri
    (fun i sn ->
      let m2 = ME.create_cfg cfg ~arch graph ~inputs in
      ME.restore m2 sn;
      ME.advance m2 ~until:max_int;
      let r = ME.result m2 in
      check_int
        (Printf.sprintf "checkpoint %d resumes to the one-shot end time" i)
        oneshot.ME.end_time r.ME.end_time;
      check_int
        (Printf.sprintf "checkpoint %d resumes to the one-shot digest" i)
        (Integrity.digest_outputs oneshot.ME.outputs)
        (Integrity.digest_outputs r.ME.outputs))
    checkpoints

let suite =
  [ Alcotest.test_case "frame: intact image round-trips" `Quick
      test_frame_roundtrip;
    QCheck_alcotest.to_alcotest torn_tail;
    QCheck_alcotest.to_alcotest bit_rot;
    Alcotest.test_case "fold: response cache + re-run worklist" `Quick
      test_fold;
    Alcotest.test_case "file: append, replay, generations, torn tail" `Quick
      test_append_replay_file;
    Alcotest.test_case "compact: retention window, pending kept, atomic"
      `Quick test_compact;
    QCheck_alcotest.to_alcotest compact_roundtrip;
    QCheck_alcotest.to_alcotest diskfault_replay;
    QCheck_alcotest.to_alcotest diskfault_recovery_merge;
    Alcotest.test_case "fsync: synced appends replay identically" `Quick
      test_fsync_append;
    Alcotest.test_case "resume: every checkpoint prefix reaches the one-shot \
                        digest" `Quick test_checkpoint_prefix_resume ]
