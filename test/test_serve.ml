(* dfserve: protocol wire format, the LRU compiled-program cache, and a
   live server driven over its real Unix-domain socket — caching,
   fairness/admission, cancellation with checkpoint restore, bit-identity
   with standalone Exec.Job runs, and clean shutdown. *)

module J = Obs.Json
module P = Serve.Protocol
module FP = Fault.Fault_plan
module ME = Machine.Machine_engine

(* socket tests: a peer that vanishes mid-write must be an EPIPE, not a
   process kill *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- protocol ------------------------------------------------------- *)

let test_protocol_request_roundtrip () =
  let roundtrip req =
    let doc = P.request_to_json ~id:7 req in
    (* through the actual wire text, not just the tree *)
    match P.request_of_json (J.of_string (J.to_string doc)) with
    | Error e -> Alcotest.failf "undecodable request: %s" e
    | Ok (id, back) ->
      check_int "id" 7 id;
      check_string "request round-trips"
        (J.to_string (P.request_to_json ~id:7 req))
        (J.to_string (P.request_to_json ~id:7 back))
  in
  roundtrip (P.Compile (P.Kernel { name = "hydro"; size = 12 }));
  roundtrip
    (P.Compile
       (P.Source
          { source = "param n = 4;\ninput X : array[real] [0, n-1];\n";
            scalars = [ ("q", Dfg.Value.Real 0.25) ];
            input_seed = 9 }));
  roundtrip (P.Cancel 3);
  roundtrip (P.Migrate "job-9");
  roundtrip P.Stats;
  roundtrip P.Shutdown;
  roundtrip
    (P.Replicate
       { origin = "/tmp/member-a.sock";
         entry = J.Obj [ ("kind", J.String "admit"); ("idem", J.String "j1") ]
       });
  roundtrip (P.Recover { origin = "/tmp/member-a.sock" });
  roundtrip P.Members;
  let base = P.default_run (P.Kernel { name = "tridiag"; size = 8 }) in
  roundtrip (P.Simulate base);
  roundtrip
    (P.Simulate
       { base with
         P.waves = 5;
         engine = `Machine;
         n_pe = Some 3;
         stored = true;
         fault = Some "seed=4 delay=0.25";
         fault_seed = Some 11;
         recovery = Some (Recover.to_string Recover.default);
         integrity = true;
         watchdog = P.At 600;
         max_time = Some 123_456;
         sanitize = true });
  roundtrip (P.Simulate { base with P.watchdog = P.Auto });
  (* a migrated job travels as a Simulate with a checkpoint to restore *)
  roundtrip
    (P.Simulate
       { base with
         P.idem = Some "moved-1";
         restore =
           Some (J.Obj [ ("time", J.Int 777); ("cells", J.List []) ]) })

let test_protocol_values () =
  let roundtrip v =
    match P.value_of_json (P.value_to_json v) with
    | Error e -> Alcotest.failf "value failed: %s" e
    | Ok back ->
      check "value round-trips"
        true
        (match (v, back) with
        (* a nan stays a nan; its payload bits are not part of the
           contract (both sides print "nan" on the wire) *)
        | Dfg.Value.Real a, Dfg.Value.Real b when Float.is_nan a ->
          Float.is_nan b
        | Dfg.Value.Real a, Dfg.Value.Real b ->
          Int64.bits_of_float a = Int64.bits_of_float b
        | a, b -> a = b)
  in
  List.iter roundtrip
    [ Dfg.Value.Int 42; Dfg.Value.Int min_int; Dfg.Value.Bool true;
      Dfg.Value.Bool false; Dfg.Value.Real 0.1; Dfg.Value.Real (-0.0);
      Dfg.Value.Real Float.nan; Dfg.Value.Real Float.infinity;
      Dfg.Value.Real 4.9e-324 ];
  let outputs =
    [ ("X", [ (3, Dfg.Value.Real 1.5); (5, Dfg.Value.Real Float.nan) ]);
      ("flag", [ (1, Dfg.Value.Bool false) ]); ("empty", []) ]
  in
  match P.outputs_of_json (P.outputs_to_json outputs) with
  | Error e -> Alcotest.failf "outputs failed: %s" e
  | Ok back ->
    check_string "outputs round-trip (wire text)"
      (J.to_string (P.outputs_to_json outputs))
      (J.to_string (P.outputs_to_json back))

let test_protocol_errors () =
  let resp = P.error ~id:4 P.Overloaded "queue full" in
  check "not ok" false (P.response_ok resp);
  check_int "id" 4 (Option.get (P.response_id resp));
  (match P.response_error resp with
  | Some (Some P.Overloaded, msg) -> check_string "message" "queue full" msg
  | _ -> Alcotest.fail "expected structured overloaded error");
  List.iter
    (fun k ->
      check "error kind round-trips" true
        (P.error_kind_of_string (P.error_kind_to_string k) = Some k))
    [ P.Bad_request; P.Compile_error; P.Unknown_verb; P.Overloaded;
      P.Cancelled; P.Run_error; P.Shutting_down; P.Replica_error ]

(* --- LRU ------------------------------------------------------------- *)

let test_lru () =
  let c = Serve.Lru.create ~capacity:2 in
  Serve.Lru.add c "a" 1;
  Serve.Lru.add c "b" 2;
  check "a present" true (Serve.Lru.find c "a" = Some 1);
  (* b is now the least recently used; adding c must evict it *)
  Serve.Lru.add c "c" 3;
  check "b evicted" false (Serve.Lru.mem c "b");
  check "a survived (recently used)" true (Serve.Lru.mem c "a");
  check "c present" true (Serve.Lru.mem c "c");
  check_int "length" 2 (Serve.Lru.length c);
  check_int "capacity" 2 (Serve.Lru.capacity c);
  check_int "evictions" 1 (Serve.Lru.evictions c);
  check_int "hits" 1 (Serve.Lru.hits c);
  check "miss counted" true (Serve.Lru.find c "zzz" = None);
  check_int "misses" 1 (Serve.Lru.misses c);
  check "overwrite keeps length" true
    (Serve.Lru.add c "c" 30;
     Serve.Lru.length c = 2 && Serve.Lru.find c "c" = Some 30)

(* --- live server helpers --------------------------------------------- *)

(* [f] gets the socket path and the server handle (for tcp_port) *)
let with_server_t ?(workers = 2) ?(max_pending = 64) ?(slice = 5000) ?tcp
    ?max_line ?idle_timeout ?journal ?journal_retain ?cache ?name f =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (match name with
      | Some n -> Printf.sprintf "dfserve-test-%d-%s.sock" (Unix.getpid ()) n
      | None ->
        Printf.sprintf "dfserve-test-%d-%d.sock" (Unix.getpid ())
          (Hashtbl.hash f))
  in
  let base = Serve.Server.default_config ~socket_path:socket in
  let config =
    { base with
      Serve.Server.workers;
      max_pending;
      slice;
      tcp;
      max_line = Option.value max_line ~default:base.Serve.Server.max_line;
      idle_timeout =
        (match idle_timeout with
        | Some _ as i -> i
        | None -> base.Serve.Server.idle_timeout);
      cache_capacity =
        Option.value cache ~default:base.Serve.Server.cache_capacity;
      journal_path = journal;
      journal_retain }
  in
  let server = Serve.Server.create config in
  let domain = Domain.spawn (fun () -> Serve.Server.serve server) in
  let finish () =
    (try
       let conn = Serve.Client.connect socket in
       ignore (Serve.Client.rpc conn P.Shutdown);
       Serve.Client.close conn
     with _ -> ());
    Domain.join domain
  in
  Fun.protect ~finally:finish (fun () -> f socket server);
  check "socket removed after shutdown" false (Sys.file_exists socket)

let with_server ?workers ?max_pending ?slice f =
  with_server_t ?workers ?max_pending ?slice (fun socket _ -> f socket)

(* a raw connection for speaking garbage the typed client refuses to *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_send fd s =
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring fd s off (String.length s - off))
  in
  go 0

(* one response line, or fail after [timeout] seconds; pass the same
   [buf] across calls when replies may arrive batched (the overshoot
   of one read holds the next line) *)
let raw_read_line ?(timeout = 5.0) ?buf fd =
  let buf = match buf with Some b -> b | None -> Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let data = Buffer.contents buf in
    match String.index_opt data '\n' with
    | Some nl ->
      Buffer.clear buf;
      Buffer.add_substring buf data (nl + 1) (String.length data - nl - 1);
      String.sub data 0 nl
    | None ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then Alcotest.fail "no response within timeout";
      (match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> Alcotest.fail "no response within timeout"
      | _ -> ());
      let n = Unix.read fd chunk 0 1024 in
      if n = 0 then raise End_of_file;
      Buffer.add_subbytes buf chunk 0 n;
      go ()
  in
  go ()

let stat resp f = Option.value ~default:(-1) (J.get_int (J.member f resp))

(* the standalone run a served response must be bit-identical to *)
let standalone (r : P.run) =
  match
    (Serve.Server.config_of_run r,
     Serve.Server.subject_of_program r.P.program ~waves:r.P.waves)
  with
  | Error e, _ | _, Error e -> Alcotest.failf "standalone setup: %s" e
  | Ok (cfg, arch), Ok (graph, inputs, name) ->
    let engine =
      match r.P.engine with
      | `Sim -> Exec.Job.Sim
      | `Machine -> Exec.Job.Machine arch
    in
    Exec.Job.run
      (Exec.Job.make ~name ~engine ~config:cfg ~sanitize:r.P.sanitize
         (Exec.Job.Graph_program graph) ~inputs)

let check_served_identical ~label resp expected =
  check (label ^ ": ok response") true (P.response_ok resp);
  let want = J.Obj (P.outcome_fields ~cache_hit:false ~key:0 expected) in
  List.iter
    (fun f ->
      check_string
        (Printf.sprintf "%s: %s identical" label f)
        (J.to_string (J.member f want))
        (J.to_string (J.member f resp)))
    [ "outputs"; "digest"; "end_time"; "quiescent"; "stall"; "violations";
      "metrics" ]

(* --- live server tests ----------------------------------------------- *)

let test_cache_contract () =
  with_server (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let run =
            { (P.default_run (P.Kernel { name = "hydro"; size = 8 })) with
              P.waves = 2 }
          in
          let n = 5 in
          let resps =
            List.init n (fun _ -> Serve.Client.rpc conn (P.Simulate run))
          in
          let hits =
            List.length
              (List.filter
                 (fun r ->
                   J.get_bool (J.member "cache_hit" r) = Some true)
                 resps)
          in
          check_int "N requests -> N-1 cache hits" (n - 1) hits;
          let expected = standalone run in
          List.iteri
            (fun i r ->
              check_served_identical
                ~label:(Printf.sprintf "request %d" i) r expected)
            resps;
          (* a different size is a different program: a miss *)
          let other =
            { run with
              P.program = P.Kernel { name = "hydro"; size = 6 } }
          in
          let r = Serve.Client.rpc conn (P.Simulate other) in
          check "different size misses" true
            (J.get_bool (J.member "cache_hit" r) = Some false);
          let stats = Serve.Client.rpc conn P.Stats in
          check_int "stats cache hits" (n - 1) (stat stats "cache_hits");
          check_int "stats cache misses" 2 (stat stats "cache_misses")))

let test_served_faulted_machine () =
  with_server (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let spec =
            { FP.none with
              FP.seed = 42;
              delay_prob = 0.25;
              drop_prob = 0.03;
              corrupt_prob = 0.03 }
          in
          let run =
            { (P.default_run (P.Kernel { name = "tridiag"; size = 8 })) with
              P.waves = 2;
              engine = `Machine;
              fault = Some (FP.to_string spec);
              recovery = Some (Recover.to_string Recover.default);
              integrity = true;
              watchdog = P.Auto;
              sanitize = true }
          in
          let resp = Serve.Client.rpc conn (P.Simulate run) in
          check_served_identical ~label:"faulted machine" resp
            (standalone run);
          (* fault_seed overrides the spec's seed: different run *)
          let reseeded = { run with P.fault_seed = Some 4242 } in
          let resp2 = Serve.Client.rpc conn (P.Simulate reseeded) in
          check_served_identical ~label:"reseeded" resp2
            (standalone reseeded)))

let test_overload_rejection () =
  (* one worker, a queue of one: the third concurrent job must be
     rejected as overloaded, not silently queued *)
  with_server ~workers:1 ~max_pending:1 (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let big =
            { (P.default_run (P.Kernel { name = "hydro"; size = 32 })) with
              P.waves = 60;
              engine = `Machine }
          in
          let ids = List.init 3 (fun _ -> Serve.Client.send conn (P.Simulate big)) in
          let resps = List.map (Serve.Client.await conn) ids in
          let rejected =
            List.filter
              (fun r ->
                match P.response_error r with
                | Some (Some P.Overloaded, _) -> true
                | _ -> false)
              resps
          in
          check_int "one structured overloaded rejection" 1
            (List.length rejected);
          check_int "the other two complete" 2
            (List.length (List.filter P.response_ok resps));
          let stats = Serve.Client.rpc conn P.Stats in
          check_int "stats rejections" 1 (stat stats "rejections")))

let test_cancel_and_preempt () =
  with_server ~workers:1 ~slice:2000 (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let long =
            { (P.default_run (P.Kernel { name = "hydro"; size = 32 })) with
              P.waves = 2000;
              engine = `Machine;
              max_time = Some 100_000_000 }
          in
          let quick =
            { (P.default_run (P.Kernel { name = "hydro"; size = 8 })) with
              P.waves = 1 }
          in
          let running = Serve.Client.send conn (P.Simulate long) in
          let queued = Serve.Client.send conn (P.Simulate quick) in
          (* give the long job time to dispatch and start advancing *)
          Unix.sleepf 0.2;
          (* cancel the queued job: answered immediately, never runs *)
          let c1 = Serve.Client.rpc conn (P.Cancel queued) in
          check "cancel of queued acknowledged" true (P.response_ok c1);
          check_string "queued job cancelled"
            "cancelled"
            (Option.value ~default:"?"
               (J.get_string (J.member "state" c1)));
          (match P.response_error (Serve.Client.await conn queued) with
          | Some (Some P.Cancelled, _) -> ()
          | _ -> Alcotest.fail "queued job should answer cancelled");
          (* preempt the running machine job at its next slice *)
          let c2 = Serve.Client.rpc conn (P.Cancel running) in
          check_string "running machine job preempting"
            "preempting"
            (Option.value ~default:"?"
               (J.get_string (J.member "state" c2)));
          let resp = Serve.Client.await conn running in
          (match P.response_error resp with
          | Some (Some P.Cancelled, _) -> ()
          | _ -> Alcotest.fail "preempted job should answer cancelled");
          (* the checkpoint restores and resumes to the exact same
             result an uninterrupted run produces *)
          match Serve.Server.subject_of_program long.P.program
                  ~waves:long.P.waves
          with
          | Error e -> Alcotest.failf "recompile: %s" e
          | Ok (graph, inputs, _) -> (
            match
              Recover.Checkpoint.of_json ~graph (J.member "checkpoint" resp)
            with
            | Error e -> Alcotest.failf "checkpoint decode: %s" e
            | Ok snapshot ->
              check "preempted mid-run" true
                (snapshot.ME.sn_time > 0);
              let cfg, arch =
                match Serve.Server.config_of_run long with
                | Ok c -> c
                | Error e -> Alcotest.failf "config: %s" e
              in
              let m = ME.create_cfg cfg ~arch graph ~inputs in
              ME.restore m snapshot;
              ME.advance m ~until:max_int;
              let resumed = ME.result m in
              let oneshot = ME.run_cfg cfg ~arch graph ~inputs in
              check_int "resumed end time = uninterrupted"
                oneshot.ME.end_time resumed.ME.end_time;
              check_int "resumed digest = uninterrupted"
                (Integrity.digest_outputs oneshot.ME.outputs)
                (Integrity.digest_outputs resumed.ME.outputs))))

let test_compile_verb_and_errors () =
  with_server (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let prog = P.Kernel { name = "prefix_sum"; size = 8 } in
          let r1 = Serve.Client.rpc conn (P.Compile prog) in
          check "compile ok" true (P.response_ok r1);
          check "first compile misses" true
            (J.get_bool (J.member "cache_hit" r1) = Some false);
          check "reports cells" true (stat r1 "cells" > 0);
          let r2 = Serve.Client.rpc conn (P.Compile prog) in
          check "second compile hits" true
            (J.get_bool (J.member "cache_hit" r2) = Some true);
          check_int "same key" (stat r1 "key") (stat r2 "key");
          (* structured errors *)
          (match
             P.response_error
               (Serve.Client.rpc conn
                  (P.Compile (P.Kernel { name = "no-such"; size = 1 })))
           with
          | Some (Some P.Compile_error, _) -> ()
          | _ -> Alcotest.fail "unknown kernel should be compile_error");
          (match
             P.response_error
               (Serve.Client.rpc conn
                  (P.Simulate
                     { (P.default_run prog) with P.fault = Some "garbage" }))
           with
          | Some (Some P.Bad_request, _) -> ()
          | _ -> Alcotest.fail "bad fault spec should be bad_request");
          match P.response_error (Serve.Client.rpc conn (P.Cancel 999)) with
          | None ->
            check_string "cancel of unknown id"
              "not_found"
              (Option.value ~default:"?"
                 (J.get_string
                    (J.member "state" (Serve.Client.rpc conn (P.Cancel 999)))))
          | Some _ -> Alcotest.fail "cancel of unknown id is not an error"))

(* --- hostile transport ----------------------------------------------- *)

let tiny_run =
  { (P.default_run (P.Kernel { name = "hydro"; size = 8 })) with P.waves = 1 }

let test_tcp_transport () =
  with_server_t ~tcp:("127.0.0.1", 0) (fun _socket server ->
      let port =
        match Serve.Server.tcp_port server with
        | Some p -> p
        | None -> Alcotest.fail "tcp_port unset"
      in
      let addr = Printf.sprintf "tcp:127.0.0.1:%d" port in
      let conn = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let resp = Serve.Client.rpc conn (P.Simulate tiny_run) in
          check_served_identical ~label:"tcp simulate" resp
            (standalone tiny_run)))

let test_hostile_lines () =
  with_server_t ~max_line:1024 (fun socket _ ->
      (* a garbage line draws a structured malformed error and the
         connection keeps working *)
      let fd = raw_connect socket in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          raw_send fd "this is not json\n";
          let r = J.of_string (raw_read_line fd) in
          (match P.response_error r with
          | Some (Some P.Malformed, _) -> ()
          | _ -> Alcotest.failf "expected malformed, got %s" (J.to_string r));
          check_int "malformed reply addresses no request" (-1)
            (Option.value ~default:0 (P.response_id r));
          raw_send fd "{\"id\":5,\"verb\":\"stats\"}\n";
          let r2 = J.of_string (raw_read_line fd) in
          check "same connection still serves" true (P.response_ok r2);
          check_int "and addresses the request" 5
            (Option.value ~default:(-1) (P.response_id r2)));
      (* a line over the cap: structured malformed, then a close — the
         slowloris answer *)
      let fd = raw_connect socket in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          raw_send fd (String.make 2000 'x');
          let r = J.of_string (raw_read_line fd) in
          (match P.response_error r with
          | Some (Some P.Malformed, _) -> ()
          | _ ->
            Alcotest.failf "expected malformed on oversize, got %s"
              (J.to_string r));
          match raw_read_line fd with
          | exception End_of_file -> ()
          | l -> Alcotest.failf "connection should be closed, read %s" l);
      (* a mid-frame disconnect leaves the server healthy *)
      let fd = raw_connect socket in
      raw_send fd "{\"id\":9,\"verb\":\"sim";
      Unix.close fd;
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          check "server healthy after mid-frame disconnect" true
            (P.response_ok (Serve.Client.rpc conn P.Stats));
          let stats = Serve.Client.rpc conn P.Stats in
          check "malformed lines counted" true (stat stats "malformed" >= 2)))

let test_idle_deadline () =
  with_server_t ~idle_timeout:0.3 (fun socket _ ->
      let fd = raw_connect socket in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* say nothing: the server owes us a deadline error and a close *)
          let r = J.of_string (raw_read_line ~timeout:5.0 fd) in
          (match P.response_error r with
          | Some (Some P.Deadline, _) -> ()
          | _ ->
            Alcotest.failf "expected deadline close, got %s" (J.to_string r));
          match raw_read_line ~timeout:5.0 fd with
          | exception End_of_file -> ()
          | l -> Alcotest.failf "idle connection should be closed, read %s" l);
      (* other clients are untouched *)
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          check "fresh client fine after idle sweep" true
            (P.response_ok (Serve.Client.rpc conn P.Stats));
          let stats = Serve.Client.rpc conn P.Stats in
          check "deadline close counted" true
            (stat stats "deadline_closes" >= 1)))

let test_protocol_fuzz () =
  with_server (fun socket ->
      let prop lines =
        let lines =
          List.map
            (String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c))
            lines
        in
        let fd = raw_connect socket in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            List.iter (fun l -> raw_send fd (l ^ "\n")) lines;
            (* every junk line draws exactly one structured reply;
               blank lines are skipped by design *)
            let rbuf = Buffer.create 256 in
            List.for_all
              (fun _ ->
                let r = J.of_string (raw_read_line ~buf:rbuf fd) in
                not (P.response_ok r))
              (List.filter (fun l -> String.trim l <> "") lines))
        && begin
             (* and the server is still healthy for real traffic *)
             let conn = Serve.Client.connect socket in
             Fun.protect
               ~finally:(fun () -> Serve.Client.close conn)
               (fun () -> P.response_ok (Serve.Client.rpc conn P.Stats))
           end
      in
      QCheck.Test.check_exn
        (QCheck.Test.make ~count:30
           ~name:"fuzz: junk lines draw structured errors, never a crash"
           QCheck.(
             make
               Gen.(
                 list_size (int_range 1 6)
                   (string_size
                      ~gen:(char_range '\001' '~')
                      (int_range 1 120)))
               ~print:(fun ls -> String.concat "|" ls))
           prop))

let test_sweep_verb () =
  with_server (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let sw =
            { P.sw_kernels = Some [ "hydro" ];
              sw_pes = [ 1; 2 ];
              sw_waves = [ 2 ];
              sw_size = 8 }
          in
          let resp = Serve.Client.rpc conn (P.Sweep sw) in
          check "sweep ok" true (P.response_ok resp);
          (* the same grid computed directly must match byte for byte —
             the served artifact is interchangeable with sweep.exe's *)
          let cells =
            Exec.Sweep.grid
              ~kernels:[ Kernels.find "hydro" ]
              ~pes:sw.P.sw_pes ~waves:sw.P.sw_waves ~size:sw.P.sw_size
          in
          let rows =
            List.map
              (fun c ->
                (Ok (Exec.Sweep.run_cell c)
                  : (Exec.Sweep.row, Exec.Pool.error) result))
              cells
          in
          check_string "served grid byte-identical to local sweep"
            (J.to_string (Exec.Sweep.to_json rows))
            (J.to_string (J.member "grid" resp))))

(* --- durability ------------------------------------------------------- *)

let test_idempotency_dedup () =
  with_server (fun socket ->
      let run = { tiny_run with P.idem = Some "dedup-test-1" } in
      let expected = standalone run in
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let r1 = Serve.Client.rpc conn (P.Simulate run) in
          (* the at-least-once retry: answered from the record, not
             re-run *)
          let r2 = Serve.Client.rpc conn (P.Simulate run) in
          check_served_identical ~label:"first" r1 expected;
          check_served_identical ~label:"retried" r2 expected;
          List.iter
            (fun f ->
              check_string
                (Printf.sprintf "retry byte-identical on %s" f)
                (J.to_string (J.member f r1))
                (J.to_string (J.member f r2)))
            [ "outputs"; "digest"; "end_time"; "cache_hit"; "metrics" ];
          let stats = Serve.Client.rpc conn P.Stats in
          check_int "dedup counted" 1 (stat stats "deduped");
          (* a retry while the original is still in flight attaches to
             it: both answers identical *)
          let slow =
            { (P.default_run (P.Kernel { name = "hydro"; size = 8 })) with
              P.waves = 40;
              engine = `Machine;
              idem = Some "dedup-inflight-1" }
          in
          let a = Serve.Client.send conn (P.Simulate slow) in
          let b = Serve.Client.send conn (P.Simulate slow) in
          let ra = Serve.Client.await conn a in
          let rb = Serve.Client.await conn b in
          check "in-flight twin ok" true
            (P.response_ok ra && P.response_ok rb);
          check_string "in-flight twin digests identical"
            (J.to_string (J.member "digest" ra))
            (J.to_string (J.member "digest" rb))))

let test_journal_crash_replay () =
  let journal =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfserve-test-journal-%d.wal" (Unix.getpid ()))
  in
  (try Sys.remove journal with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      let run =
        { (P.default_run (P.Kernel { name = "tridiag"; size = 8 })) with
          P.waves = 2;
          engine = `Machine;
          idem = Some "jr-1" }
      in
      let expected = standalone run in
      (* generation 1 answers and journals *)
      with_server_t ~journal (fun socket _ ->
          let conn = Serve.Client.connect socket in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close conn)
            (fun () ->
              check_served_identical ~label:"generation 1"
                (Serve.Client.rpc conn (P.Simulate run))
                expected));
      (* generation 2, same journal: the retried request is answered
         from the recorded response without re-running *)
      with_server_t ~journal (fun socket _ ->
          let conn = Serve.Client.connect socket in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close conn)
            (fun () ->
              check_served_identical ~label:"post-restart retry"
                (Serve.Client.rpc conn (P.Simulate run))
                expected;
              let stats = Serve.Client.rpc conn P.Stats in
              check_int "answered from the record" 1 (stat stats "deduped")));
      (* an admission the dead server never finished: re-run on startup,
         the retry collects the result *)
      let pend = { run with P.idem = Some "jr-pending" } in
      let jr = Serve.Journal.open_append journal in
      Serve.Journal.append jr
        (Serve.Journal.Admit
           { idem = "jr-pending";
             request = P.request_to_json ~id:0 (P.Simulate pend) });
      Serve.Journal.close jr;
      with_server_t ~journal (fun socket _ ->
          let conn = Serve.Client.connect socket in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close conn)
            (fun () ->
              check_served_identical ~label:"recovered pending"
                (Serve.Client.rpc conn (P.Simulate pend))
                (standalone pend);
              let stats = Serve.Client.rpc conn P.Stats in
              check_int "pending admission replayed" 1
                (stat stats "replayed")));
      (* generation 4 compacts on startup with retention 0: the
         completed history is dropped (the journal shrinks to nothing),
         so the old retry re-RUNS — and determinism makes the re-run
         answer bit-identical anyway *)
      with_server_t ~journal ~journal_retain:0 (fun socket _ ->
          let conn = Serve.Client.connect socket in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close conn)
            (fun () ->
              check_served_identical ~label:"post-compaction re-run"
                (Serve.Client.rpc conn (P.Simulate run))
                expected;
              let stats = Serve.Client.rpc conn P.Stats in
              check_int "nothing left to answer from the record" 0
                (stat stats "deduped");
              check_int "nothing left to replay" 0 (stat stats "replayed"))))

(* --- federation ------------------------------------------------------- *)

let test_rendezvous_routing () =
  let members = [ "alpha"; "bravo"; "charlie"; "delta" ] in
  for key = 0 to 20 do
    let order = Serve.Cluster.rendezvous_order ~key members in
    check "permutation of the member list" true
      (List.sort compare order = List.sort compare members);
    check "deterministic" true
      (order = Serve.Cluster.rendezvous_order ~key members);
    check "independent of input order" true
      (order = Serve.Cluster.rendezvous_order ~key (List.rev members));
    (* the HRW property everything rests on: removing the winner
       reshuffles nothing among the survivors *)
    match order with
    | winner :: rest ->
      let without = List.filter (fun m -> m <> winner) members in
      check "survivors keep their relative order" true
        (Serve.Cluster.rendezvous_order ~key without = rest)
    | [] -> Alcotest.fail "empty order"
  done;
  let winners =
    List.init 64 (fun key ->
        List.hd (Serve.Cluster.rendezvous_order ~key members))
  in
  check "keys spread across members" true
    (List.length (List.sort_uniq compare winners) >= 2);
  (* member-list parsing: comma form, @file form, rejects *)
  (match Serve.Cluster.members_of_spec "a.sock,b.sock,c.sock" with
  | Ok m ->
    Alcotest.(check (list string)) "comma list"
      [ "a.sock"; "b.sock"; "c.sock" ] m
  | Error e -> Alcotest.failf "comma list: %s" e);
  check "empty spec rejected" true
    (Result.is_error (Serve.Cluster.members_of_spec ""));
  check "duplicate member rejected" true
    (Result.is_error (Serve.Cluster.members_of_spec "x.sock,x.sock"));
  let file = Filename.temp_file "members" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      output_string oc "# the fleet\none.sock\n\ntwo.sock\n";
      close_out oc;
      match Serve.Cluster.members_of_spec ("@" ^ file) with
      | Ok m ->
        Alcotest.(check (list string)) "@file form (comments, blanks)"
          [ "one.sock"; "two.sock" ] m
      | Error e -> Alcotest.failf "@file: %s" e)

let test_backoff_property () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200
       ~name:"backoff: pure in (seed, attempt), positive, bounded by 1.5x cap"
       QCheck.(pair int (int_range 1 12))
       (fun (seed, attempts) ->
         let retry =
           { Serve.Client.default_retry with
             Serve.Client.retry_seed = seed;
             attempts }
         in
         let schedule () =
           List.init attempts (fun a ->
               Serve.Client.backoff_delay retry ~attempt:a)
         in
         let s1 = schedule () in
         s1 = schedule ()
         && List.for_all
              (fun d ->
                d > 0.0 && d <= retry.Serve.Client.max_delay *. 1.5)
              s1))

(* a socket path that rendezvous-ranks ahead of [socket] for [key],
   with no server behind it: the corpse the router must route around *)
let dead_first ~key socket =
  let rec hunt i =
    let cand = Printf.sprintf "%s.dead%d" socket i in
    match Serve.Cluster.rendezvous_order ~key [ cand; socket ] with
    | first :: _ when first = cand -> cand
    | _ -> hunt (i + 1)
  in
  hunt 0

let test_cluster_failover () =
  with_server (fun socket ->
      let run = { tiny_run with P.idem = Some "fo-1" } in
      let key = Serve.Cluster.routing_key run.P.program in
      let dead = dead_first ~key socket in
      let retry =
        { Serve.Client.attempts = 2;
          base_delay = 0.01;
          max_delay = 0.02;
          retry_seed = 1 }
      in
      let t = Serve.Cluster.create ~deadline:10.0 ~retry [ dead; socket ] in
      (* the preferred member is dead: the submit lands on the live one
         and the answer is the standalone answer, bit for bit *)
      let resp, served_by = Serve.Cluster.submit t ~key (P.Simulate run) in
      check_string "served by the live member" socket served_by;
      check_served_identical ~label:"failover" resp (standalone run);
      check_int "one failover recorded" 1 (Serve.Cluster.failovers t);
      (* probing marks the corpse Down (second straight failure) and
         confirms the live member Up *)
      let probes = Serve.Cluster.probe ~deadline:1.0 t in
      List.iter2
        (fun (addr, r) (addr', h) ->
          check_string "probe and health agree on order" addr addr';
          if addr = socket then begin
            check "live probe answers" true (Result.is_ok r);
            check "live member Up" true (h = Serve.Cluster.Up)
          end
          else begin
            check "dead probe errors" true (Result.is_error r);
            check "dead member Down after two failures" true
              (h = Serve.Cluster.Down)
          end)
        probes (Serve.Cluster.health t);
      (* the cluster-level retry of the same keyed request: answered
         from the server's idempotency record, not re-run *)
      let resp2, served_by2 = Serve.Cluster.submit t ~key (P.Simulate run) in
      check_string "retry lands on the live member" socket served_by2;
      check "retry ok" true (P.response_ok resp2);
      check_int "a Down member is skipped, not retried" 1
        (Serve.Cluster.failovers t);
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let stats = Serve.Client.rpc conn P.Stats in
          check "retry answered from the record" true
            (stat stats "deduped" >= 1)))

let test_lru_conservation () =
  (* a capacity-2 cache thrashed by 4 concurrent clients rotating over
     3 programs: every response still bit-identical, and the cache
     counters conserve — every lookup is a hit or a miss, every miss
     becomes an entry or an eviction *)
  with_server_t ~cache:2 (fun socket _ ->
      let runs =
        Array.map
          (fun p -> { (P.default_run p) with P.waves = 1 })
          [| P.Kernel { name = "hydro"; size = 6 };
             P.Kernel { name = "hydro"; size = 8 };
             P.Kernel { name = "tridiag"; size = 8 } |]
      in
      let expected = Array.map standalone runs in
      let domains = 4 and per = 8 in
      let ds =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                let conn = Serve.Client.connect socket in
                Fun.protect
                  ~finally:(fun () -> Serve.Client.close conn)
                  (fun () ->
                    List.init per (fun i ->
                        let j = (d + i) mod Array.length runs in
                        (j, Serve.Client.rpc conn (P.Simulate runs.(j)))))))
      in
      let resps = List.concat_map Domain.join ds in
      check_int "every request answered" (domains * per) (List.length resps);
      List.iter
        (fun (j, r) ->
          check_served_identical
            ~label:(Printf.sprintf "thrashed program %d" j)
            r expected.(j))
        resps;
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let stats = Serve.Client.rpc conn P.Stats in
          let hits = stat stats "cache_hits"
          and misses = stat stats "cache_misses"
          and entries = stat stats "cache_entries"
          and evictions = stat stats "cache_evictions" in
          check_int "every lookup is a hit or a miss" (domains * per)
            (hits + misses);
          check_int "every miss became an entry or an eviction" misses
            (entries + evictions);
          check "capacity respected" true (entries <= 2);
          check "the thrash really evicted" true (evictions > 0)))

let test_migrate_states () =
  with_server_t ~workers:1 ~slice:2000 ~name:"mig-states" (fun socket _ ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let state r =
            Option.value ~default:"?" (J.get_string (J.member "state" r))
          in
          let r = Serve.Client.rpc conn (P.Migrate "no-such-job") in
          check_string "unknown key" "not_found" (state r);
          (* a completed key: the recorded response rides along, so the
             coordinator can answer without re-running anything *)
          let done_run = { tiny_run with P.idem = Some "ms-done" } in
          let orig = Serve.Client.rpc conn (P.Simulate done_run) in
          let r = Serve.Client.rpc conn (P.Migrate "ms-done") in
          check_string "completed key" "done" (state r);
          check_string "recorded response rides along"
            (J.to_string (J.member "digest" orig))
            (J.to_string (J.member "digest" (J.member "response" r)));
          (* a queued key: never ran here, so the request is handed back
             for resubmission and the original submitter is cancelled *)
          let long =
            { (P.default_run (P.Kernel { name = "hydro"; size = 32 })) with
              P.waves = 2000;
              engine = `Machine;
              max_time = Some 100_000_000 }
          in
          let running = Serve.Client.send conn (P.Simulate long) in
          let queued_run = { tiny_run with P.idem = Some "ms-queued" } in
          let queued = Serve.Client.send conn (P.Simulate queued_run) in
          Unix.sleepf 0.2;
          let r = Serve.Client.rpc conn (P.Migrate "ms-queued") in
          check_string "queued key handed back" "queued" (state r);
          (match P.request_of_json (J.member "request" r) with
          | Ok (_, P.Simulate back) ->
            check_string "request round-trips for resubmission"
              (J.to_string (P.request_to_json ~id:0 (P.Simulate queued_run)))
              (J.to_string (P.request_to_json ~id:0 (P.Simulate back)))
          | _ -> Alcotest.fail "migrate of a queued job must return the request");
          (match P.response_error (Serve.Client.await conn queued) with
          | Some (Some P.Cancelled, _) -> ()
          | _ -> Alcotest.fail "evacuated queued job answers cancelled");
          (* put the long job down so shutdown drains immediately *)
          ignore (Serve.Client.rpc conn (P.Cancel running));
          match P.response_error (Serve.Client.await conn running) with
          | Some (Some P.Cancelled, _) -> ()
          | _ -> Alcotest.fail "long job preempts on cancel"))

let test_migrate_between_servers () =
  (* the tentpole, in miniature: a machine job runs on the source,
     gets preempted at a slice boundary, its checkpoint travels the
     wire, and the target resumes it to the exact bytes an
     uninterrupted standalone run produces *)
  with_server_t ~slice:2000 ~name:"mig-src" (fun src _ ->
      with_server_t ~slice:2000 ~max_line:(8 * 1024 * 1024) ~name:"mig-dst"
        (fun dst _ ->
          let run =
            { (P.default_run (P.Kernel { name = "hydro"; size = 32 })) with
              P.waves = 2000;
              engine = `Machine;
              max_time = Some 100_000_000;
              idem = Some "mig-live-1" }
          in
          let conn = Serve.Client.connect src in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close conn)
            (fun () ->
              let id = Serve.Client.send conn (P.Simulate run) in
              (* let it dispatch and start slicing *)
              Unix.sleepf 0.3;
              let resp, how =
                Serve.Cluster.migrate ~source:src ~target:dst run
              in
              check_string "live job migrated" "migrated" how;
              check_served_identical ~label:"migrated job" resp
                (standalone run);
              (* the original submitter hears a structured cancel, not
                 silence *)
              (match P.response_error (Serve.Client.await conn id) with
              | Some (Some P.Cancelled, _) -> ()
              | _ ->
                Alcotest.fail
                  "source should answer the original submitter cancelled");
              let stats = Serve.Client.rpc conn P.Stats in
              check_int "source counted the migration" 1
                (stat stats "migrations");
              let cd = Serve.Client.connect dst in
              Fun.protect
                ~finally:(fun () -> Serve.Client.close cd)
                (fun () ->
                  let ds = Serve.Client.rpc cd P.Stats in
                  check "target compiled and ran the refugee" true
                    (stat ds "cache_misses" >= 1)))))

let test_soak () =
  let r =
    Serve.Selftest.run ~clients:2 ~jobs_per_client:3 ~workers:2 ~seed:5 ()
  in
  check_int "all responses checked" 6 r.Serve.Selftest.checked;
  (match r.Serve.Selftest.failures with
  | [] -> ()
  | fs -> Alcotest.failf "%d mismatches:\n%s" (List.length fs)
            (String.concat "\n" fs));
  check "cache saw hits" true (r.Serve.Selftest.cache_hits > 0)

let suite =
  [
    Alcotest.test_case "protocol: request wire round-trip" `Quick
      test_protocol_request_roundtrip;
    Alcotest.test_case "protocol: value/output encoding" `Quick
      test_protocol_values;
    Alcotest.test_case "protocol: structured errors" `Quick
      test_protocol_errors;
    Alcotest.test_case "lru: recency, eviction, counters" `Quick test_lru;
    Alcotest.test_case "server: N requests, 1 compile, N-1 hits" `Quick
      test_cache_contract;
    Alcotest.test_case "server: faulted machine run bit-identical" `Quick
      test_served_faulted_machine;
    Alcotest.test_case "server: bounded admission rejects overload" `Quick
      test_overload_rejection;
    Alcotest.test_case "server: cancel queued, preempt running, restore"
      `Quick test_cancel_and_preempt;
    Alcotest.test_case "server: compile verb and error taxonomy" `Quick
      test_compile_verb_and_errors;
    Alcotest.test_case "server: tcp transport bit-identical" `Quick
      test_tcp_transport;
    Alcotest.test_case "server: garbage, oversize, mid-frame disconnect"
      `Quick test_hostile_lines;
    Alcotest.test_case "server: idle deadline closes only the idler" `Quick
      test_idle_deadline;
    Alcotest.test_case "server: protocol fuzz never crashes" `Quick
      test_protocol_fuzz;
    Alcotest.test_case "server: sweep verb matches sweep.exe bytes" `Quick
      test_sweep_verb;
    Alcotest.test_case "server: idempotent retries answered once" `Quick
      test_idempotency_dedup;
    Alcotest.test_case "server: journal survives restart, exactly-once"
      `Quick test_journal_crash_replay;
    Alcotest.test_case "cluster: rendezvous routing is minimal-disruption"
      `Quick test_rendezvous_routing;
    Alcotest.test_case "cluster: backoff schedule deterministic and bounded"
      `Quick test_backoff_property;
    Alcotest.test_case "cluster: failover to the live member, bit-identical"
      `Quick test_cluster_failover;
    Alcotest.test_case "server: thrashed LRU conserves counters" `Quick
      test_lru_conservation;
    Alcotest.test_case "server: migrate verb state taxonomy" `Quick
      test_migrate_states;
    Alcotest.test_case "cluster: live migration resumes bit-identically"
      `Quick test_migrate_between_servers;
    Alcotest.test_case "server: concurrent soak bit-identical" `Quick
      test_soak;
  ]
