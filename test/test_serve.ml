(* dfserve: protocol wire format, the LRU compiled-program cache, and a
   live server driven over its real Unix-domain socket — caching,
   fairness/admission, cancellation with checkpoint restore, bit-identity
   with standalone Exec.Job runs, and clean shutdown. *)

module J = Obs.Json
module P = Serve.Protocol
module FP = Fault.Fault_plan
module ME = Machine.Machine_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- protocol ------------------------------------------------------- *)

let test_protocol_request_roundtrip () =
  let roundtrip req =
    let doc = P.request_to_json ~id:7 req in
    (* through the actual wire text, not just the tree *)
    match P.request_of_json (J.of_string (J.to_string doc)) with
    | Error e -> Alcotest.failf "undecodable request: %s" e
    | Ok (id, back) ->
      check_int "id" 7 id;
      check_string "request round-trips"
        (J.to_string (P.request_to_json ~id:7 req))
        (J.to_string (P.request_to_json ~id:7 back))
  in
  roundtrip (P.Compile (P.Kernel { name = "hydro"; size = 12 }));
  roundtrip
    (P.Compile
       (P.Source
          { source = "param n = 4;\ninput X : array[real] [0, n-1];\n";
            scalars = [ ("q", Dfg.Value.Real 0.25) ];
            input_seed = 9 }));
  roundtrip (P.Cancel 3);
  roundtrip P.Stats;
  roundtrip P.Shutdown;
  let base = P.default_run (P.Kernel { name = "tridiag"; size = 8 }) in
  roundtrip (P.Simulate base);
  roundtrip
    (P.Simulate
       { base with
         P.waves = 5;
         engine = `Machine;
         n_pe = Some 3;
         stored = true;
         fault = Some "seed=4 delay=0.25";
         fault_seed = Some 11;
         recovery = Some (Recover.to_string Recover.default);
         integrity = true;
         watchdog = P.At 600;
         max_time = Some 123_456;
         sanitize = true });
  roundtrip (P.Simulate { base with P.watchdog = P.Auto })

let test_protocol_values () =
  let roundtrip v =
    match P.value_of_json (P.value_to_json v) with
    | Error e -> Alcotest.failf "value failed: %s" e
    | Ok back ->
      check "value round-trips"
        true
        (match (v, back) with
        (* a nan stays a nan; its payload bits are not part of the
           contract (both sides print "nan" on the wire) *)
        | Dfg.Value.Real a, Dfg.Value.Real b when Float.is_nan a ->
          Float.is_nan b
        | Dfg.Value.Real a, Dfg.Value.Real b ->
          Int64.bits_of_float a = Int64.bits_of_float b
        | a, b -> a = b)
  in
  List.iter roundtrip
    [ Dfg.Value.Int 42; Dfg.Value.Int min_int; Dfg.Value.Bool true;
      Dfg.Value.Bool false; Dfg.Value.Real 0.1; Dfg.Value.Real (-0.0);
      Dfg.Value.Real Float.nan; Dfg.Value.Real Float.infinity;
      Dfg.Value.Real 4.9e-324 ];
  let outputs =
    [ ("X", [ (3, Dfg.Value.Real 1.5); (5, Dfg.Value.Real Float.nan) ]);
      ("flag", [ (1, Dfg.Value.Bool false) ]); ("empty", []) ]
  in
  match P.outputs_of_json (P.outputs_to_json outputs) with
  | Error e -> Alcotest.failf "outputs failed: %s" e
  | Ok back ->
    check_string "outputs round-trip (wire text)"
      (J.to_string (P.outputs_to_json outputs))
      (J.to_string (P.outputs_to_json back))

let test_protocol_errors () =
  let resp = P.error ~id:4 P.Overloaded "queue full" in
  check "not ok" false (P.response_ok resp);
  check_int "id" 4 (Option.get (P.response_id resp));
  (match P.response_error resp with
  | Some (Some P.Overloaded, msg) -> check_string "message" "queue full" msg
  | _ -> Alcotest.fail "expected structured overloaded error");
  List.iter
    (fun k ->
      check "error kind round-trips" true
        (P.error_kind_of_string (P.error_kind_to_string k) = Some k))
    [ P.Bad_request; P.Compile_error; P.Unknown_verb; P.Overloaded;
      P.Cancelled; P.Run_error; P.Shutting_down ]

(* --- LRU ------------------------------------------------------------- *)

let test_lru () =
  let c = Serve.Lru.create ~capacity:2 in
  Serve.Lru.add c "a" 1;
  Serve.Lru.add c "b" 2;
  check "a present" true (Serve.Lru.find c "a" = Some 1);
  (* b is now the least recently used; adding c must evict it *)
  Serve.Lru.add c "c" 3;
  check "b evicted" false (Serve.Lru.mem c "b");
  check "a survived (recently used)" true (Serve.Lru.mem c "a");
  check "c present" true (Serve.Lru.mem c "c");
  check_int "length" 2 (Serve.Lru.length c);
  check_int "capacity" 2 (Serve.Lru.capacity c);
  check_int "evictions" 1 (Serve.Lru.evictions c);
  check_int "hits" 1 (Serve.Lru.hits c);
  check "miss counted" true (Serve.Lru.find c "zzz" = None);
  check_int "misses" 1 (Serve.Lru.misses c);
  check "overwrite keeps length" true
    (Serve.Lru.add c "c" 30;
     Serve.Lru.length c = 2 && Serve.Lru.find c "c" = Some 30)

(* --- live server helpers --------------------------------------------- *)

let with_server ?(workers = 2) ?(max_pending = 64) ?(slice = 5000) f =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfserve-test-%d-%d.sock" (Unix.getpid ())
         (Hashtbl.hash f))
  in
  let config =
    { (Serve.Server.default_config ~socket_path:socket) with
      Serve.Server.workers;
      max_pending;
      slice }
  in
  let server = Serve.Server.create config in
  let domain = Domain.spawn (fun () -> Serve.Server.serve server) in
  let finish () =
    (try
       let conn = Serve.Client.connect socket in
       ignore (Serve.Client.rpc conn P.Shutdown);
       Serve.Client.close conn
     with _ -> ());
    Domain.join domain
  in
  Fun.protect ~finally:finish (fun () -> f socket);
  check "socket removed after shutdown" false (Sys.file_exists socket)

let stat resp f = Option.value ~default:(-1) (J.get_int (J.member f resp))

(* the standalone run a served response must be bit-identical to *)
let standalone (r : P.run) =
  match
    (Serve.Server.config_of_run r,
     Serve.Server.subject_of_program r.P.program ~waves:r.P.waves)
  with
  | Error e, _ | _, Error e -> Alcotest.failf "standalone setup: %s" e
  | Ok (cfg, arch), Ok (graph, inputs, name) ->
    let engine =
      match r.P.engine with
      | `Sim -> Exec.Job.Sim
      | `Machine -> Exec.Job.Machine arch
    in
    Exec.Job.run
      (Exec.Job.make ~name ~engine ~config:cfg ~sanitize:r.P.sanitize
         (Exec.Job.Graph_program graph) ~inputs)

let check_served_identical ~label resp expected =
  check (label ^ ": ok response") true (P.response_ok resp);
  let want = J.Obj (P.outcome_fields ~cache_hit:false ~key:0 expected) in
  List.iter
    (fun f ->
      check_string
        (Printf.sprintf "%s: %s identical" label f)
        (J.to_string (J.member f want))
        (J.to_string (J.member f resp)))
    [ "outputs"; "digest"; "end_time"; "quiescent"; "stall"; "violations";
      "metrics" ]

(* --- live server tests ----------------------------------------------- *)

let test_cache_contract () =
  with_server (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let run =
            { (P.default_run (P.Kernel { name = "hydro"; size = 8 })) with
              P.waves = 2 }
          in
          let n = 5 in
          let resps =
            List.init n (fun _ -> Serve.Client.rpc conn (P.Simulate run))
          in
          let hits =
            List.length
              (List.filter
                 (fun r ->
                   J.get_bool (J.member "cache_hit" r) = Some true)
                 resps)
          in
          check_int "N requests -> N-1 cache hits" (n - 1) hits;
          let expected = standalone run in
          List.iteri
            (fun i r ->
              check_served_identical
                ~label:(Printf.sprintf "request %d" i) r expected)
            resps;
          (* a different size is a different program: a miss *)
          let other =
            { run with
              P.program = P.Kernel { name = "hydro"; size = 6 } }
          in
          let r = Serve.Client.rpc conn (P.Simulate other) in
          check "different size misses" true
            (J.get_bool (J.member "cache_hit" r) = Some false);
          let stats = Serve.Client.rpc conn P.Stats in
          check_int "stats cache hits" (n - 1) (stat stats "cache_hits");
          check_int "stats cache misses" 2 (stat stats "cache_misses")))

let test_served_faulted_machine () =
  with_server (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let spec =
            { FP.none with
              FP.seed = 42;
              delay_prob = 0.25;
              drop_prob = 0.03;
              corrupt_prob = 0.03 }
          in
          let run =
            { (P.default_run (P.Kernel { name = "tridiag"; size = 8 })) with
              P.waves = 2;
              engine = `Machine;
              fault = Some (FP.to_string spec);
              recovery = Some (Recover.to_string Recover.default);
              integrity = true;
              watchdog = P.Auto;
              sanitize = true }
          in
          let resp = Serve.Client.rpc conn (P.Simulate run) in
          check_served_identical ~label:"faulted machine" resp
            (standalone run);
          (* fault_seed overrides the spec's seed: different run *)
          let reseeded = { run with P.fault_seed = Some 4242 } in
          let resp2 = Serve.Client.rpc conn (P.Simulate reseeded) in
          check_served_identical ~label:"reseeded" resp2
            (standalone reseeded)))

let test_overload_rejection () =
  (* one worker, a queue of one: the third concurrent job must be
     rejected as overloaded, not silently queued *)
  with_server ~workers:1 ~max_pending:1 (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let big =
            { (P.default_run (P.Kernel { name = "hydro"; size = 32 })) with
              P.waves = 60;
              engine = `Machine }
          in
          let ids = List.init 3 (fun _ -> Serve.Client.send conn (P.Simulate big)) in
          let resps = List.map (Serve.Client.await conn) ids in
          let rejected =
            List.filter
              (fun r ->
                match P.response_error r with
                | Some (Some P.Overloaded, _) -> true
                | _ -> false)
              resps
          in
          check_int "one structured overloaded rejection" 1
            (List.length rejected);
          check_int "the other two complete" 2
            (List.length (List.filter P.response_ok resps));
          let stats = Serve.Client.rpc conn P.Stats in
          check_int "stats rejections" 1 (stat stats "rejections")))

let test_cancel_and_preempt () =
  with_server ~workers:1 ~slice:2000 (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let long =
            { (P.default_run (P.Kernel { name = "hydro"; size = 32 })) with
              P.waves = 2000;
              engine = `Machine;
              max_time = Some 100_000_000 }
          in
          let quick =
            { (P.default_run (P.Kernel { name = "hydro"; size = 8 })) with
              P.waves = 1 }
          in
          let running = Serve.Client.send conn (P.Simulate long) in
          let queued = Serve.Client.send conn (P.Simulate quick) in
          (* give the long job time to dispatch and start advancing *)
          Unix.sleepf 0.2;
          (* cancel the queued job: answered immediately, never runs *)
          let c1 = Serve.Client.rpc conn (P.Cancel queued) in
          check "cancel of queued acknowledged" true (P.response_ok c1);
          check_string "queued job cancelled"
            "cancelled"
            (Option.value ~default:"?"
               (J.get_string (J.member "state" c1)));
          (match P.response_error (Serve.Client.await conn queued) with
          | Some (Some P.Cancelled, _) -> ()
          | _ -> Alcotest.fail "queued job should answer cancelled");
          (* preempt the running machine job at its next slice *)
          let c2 = Serve.Client.rpc conn (P.Cancel running) in
          check_string "running machine job preempting"
            "preempting"
            (Option.value ~default:"?"
               (J.get_string (J.member "state" c2)));
          let resp = Serve.Client.await conn running in
          (match P.response_error resp with
          | Some (Some P.Cancelled, _) -> ()
          | _ -> Alcotest.fail "preempted job should answer cancelled");
          (* the checkpoint restores and resumes to the exact same
             result an uninterrupted run produces *)
          match Serve.Server.subject_of_program long.P.program
                  ~waves:long.P.waves
          with
          | Error e -> Alcotest.failf "recompile: %s" e
          | Ok (graph, inputs, _) -> (
            match
              Recover.Checkpoint.of_json ~graph (J.member "checkpoint" resp)
            with
            | Error e -> Alcotest.failf "checkpoint decode: %s" e
            | Ok snapshot ->
              check "preempted mid-run" true
                (snapshot.ME.sn_time > 0);
              let cfg, arch =
                match Serve.Server.config_of_run long with
                | Ok c -> c
                | Error e -> Alcotest.failf "config: %s" e
              in
              let m = ME.create_cfg cfg ~arch graph ~inputs in
              ME.restore m snapshot;
              ME.advance m ~until:max_int;
              let resumed = ME.result m in
              let oneshot = ME.run_cfg cfg ~arch graph ~inputs in
              check_int "resumed end time = uninterrupted"
                oneshot.ME.end_time resumed.ME.end_time;
              check_int "resumed digest = uninterrupted"
                (Integrity.digest_outputs oneshot.ME.outputs)
                (Integrity.digest_outputs resumed.ME.outputs))))

let test_compile_verb_and_errors () =
  with_server (fun socket ->
      let conn = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let prog = P.Kernel { name = "prefix_sum"; size = 8 } in
          let r1 = Serve.Client.rpc conn (P.Compile prog) in
          check "compile ok" true (P.response_ok r1);
          check "first compile misses" true
            (J.get_bool (J.member "cache_hit" r1) = Some false);
          check "reports cells" true (stat r1 "cells" > 0);
          let r2 = Serve.Client.rpc conn (P.Compile prog) in
          check "second compile hits" true
            (J.get_bool (J.member "cache_hit" r2) = Some true);
          check_int "same key" (stat r1 "key") (stat r2 "key");
          (* structured errors *)
          (match
             P.response_error
               (Serve.Client.rpc conn
                  (P.Compile (P.Kernel { name = "no-such"; size = 1 })))
           with
          | Some (Some P.Compile_error, _) -> ()
          | _ -> Alcotest.fail "unknown kernel should be compile_error");
          (match
             P.response_error
               (Serve.Client.rpc conn
                  (P.Simulate
                     { (P.default_run prog) with P.fault = Some "garbage" }))
           with
          | Some (Some P.Bad_request, _) -> ()
          | _ -> Alcotest.fail "bad fault spec should be bad_request");
          match P.response_error (Serve.Client.rpc conn (P.Cancel 999)) with
          | None ->
            check_string "cancel of unknown id"
              "not_found"
              (Option.value ~default:"?"
                 (J.get_string
                    (J.member "state" (Serve.Client.rpc conn (P.Cancel 999)))))
          | Some _ -> Alcotest.fail "cancel of unknown id is not an error"))

let test_soak () =
  let r =
    Serve.Selftest.run ~clients:2 ~jobs_per_client:3 ~workers:2 ~seed:5 ()
  in
  check_int "all responses checked" 6 r.Serve.Selftest.checked;
  (match r.Serve.Selftest.failures with
  | [] -> ()
  | fs -> Alcotest.failf "%d mismatches:\n%s" (List.length fs)
            (String.concat "\n" fs));
  check "cache saw hits" true (r.Serve.Selftest.cache_hits > 0)

let suite =
  [
    Alcotest.test_case "protocol: request wire round-trip" `Quick
      test_protocol_request_roundtrip;
    Alcotest.test_case "protocol: value/output encoding" `Quick
      test_protocol_values;
    Alcotest.test_case "protocol: structured errors" `Quick
      test_protocol_errors;
    Alcotest.test_case "lru: recency, eviction, counters" `Quick test_lru;
    Alcotest.test_case "server: N requests, 1 compile, N-1 hits" `Quick
      test_cache_contract;
    Alcotest.test_case "server: faulted machine run bit-identical" `Quick
      test_served_faulted_machine;
    Alcotest.test_case "server: bounded admission rejects overload" `Quick
      test_overload_rejection;
    Alcotest.test_case "server: cancel queued, preempt running, restore"
      `Quick test_cancel_and_preempt;
    Alcotest.test_case "server: compile verb and error taxonomy" `Quick
      test_compile_verb_and_errors;
    Alcotest.test_case "server: concurrent soak bit-identical" `Quick
      test_soak;
  ]
