(* Utility-layer tests: priority queue, table rendering, and the
   simulation report. *)

open Dfg
open Sim

let test_pqueue_basics () =
  let q = Df_util.Pqueue.create () in
  Alcotest.(check bool) "empty" true (Df_util.Pqueue.is_empty q);
  Alcotest.(check (option int)) "peek empty" None
    (Df_util.Pqueue.peek_priority q);
  Alcotest.(check bool) "pop empty" true (Df_util.Pqueue.pop q = None);
  Df_util.Pqueue.push q 5 "five";
  Df_util.Pqueue.push q 1 "one";
  Df_util.Pqueue.push q 3 "three";
  Alcotest.(check int) "length" 3 (Df_util.Pqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1)
    (Df_util.Pqueue.peek_priority q);
  Alcotest.(check bool) "pop order" true
    (Df_util.Pqueue.pop q = Some (1, "one"));
  Df_util.Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Df_util.Pqueue.is_empty q)

let test_pqueue_duplicates () =
  let q = Df_util.Pqueue.create () in
  List.iter (fun x -> Df_util.Pqueue.push q 7 x) [ 1; 2; 3 ];
  Df_util.Pqueue.push q 2 0;
  Alcotest.(check bool) "lowest first" true
    (Df_util.Pqueue.pop q = Some (2, 0));
  (* the three 7s drain in some order, all with priority 7 *)
  let drained = List.init 3 (fun _ -> Df_util.Pqueue.pop q) in
  List.iter
    (fun p ->
      match p with
      | Some (7, _) -> ()
      | _ -> Alcotest.fail "expected priority 7")
    drained

let test_pqueue_growth () =
  let q = Df_util.Pqueue.create () in
  for i = 1000 downto 1 do
    Df_util.Pqueue.push q i i
  done;
  let rec drain last n =
    match Df_util.Pqueue.pop q with
    | None -> n
    | Some (p, _) ->
      Alcotest.(check bool) "nondecreasing" true (p >= last);
      drain p (n + 1)
  in
  Alcotest.(check int) "all drained" 1000 (drain min_int 0)

let test_table_render () =
  let t = Df_util.Table.create [ "name"; "value" ] in
  Df_util.Table.add_row t [ "alpha"; "1" ];
  Df_util.Table.add_row t [ "b"; "123456" ];
  let s = Df_util.Table.render t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* all lines same width (padded) *)
  (match lines with
  | header :: _ ->
    Alcotest.(check bool) "columns aligned" true
      (String.length header = String.length (List.nth lines 2))
  | [] -> Alcotest.fail "empty render");
  (* ragged rows tolerated *)
  let t2 = Df_util.Table.create [ "a" ] in
  Df_util.Table.add_row t2 [ "x"; "extra" ];
  Df_util.Table.add_row t2 [];
  Alcotest.(check bool) "ragged render does not raise" true
    (String.length (Df_util.Table.render t2) > 0)

let test_report () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let id = Graph.add g Opcode.Id [| Graph.In_arc |] in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:id ~port:0;
  Graph.connect g ~src:id ~dst:out ~port:0;
  let result =
    Engine.run_cfg Run_config.(default |> with_record_firings true) g
      ~inputs:[ ("a", List.init 50 (fun i -> Value.Int i)) ]
  in
  let rows = Report.rows g result in
  Alcotest.(check int) "one row per cell" 3 (List.length rows);
  let id_row = List.nth rows 1 in
  Alcotest.(check int) "id fired per element" 50 id_row.Report.firings;
  Alcotest.(check (float 0.1)) "period 2" 2.0 id_row.Report.period;
  let rendered = Report.render g result in
  Alcotest.(check bool) "mentions output" true
    (String.length rendered > 0);
  Alcotest.(check bool) "concurrency positive" true
    (Report.concurrency result > 0.5)

let test_value_helpers () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true));
  Alcotest.(check bool) "equal with eps" true
    (Value.equal ~eps:0.01 (Value.Real 1.0) (Value.Real 1.005));
  Alcotest.(check bool) "int/real comparable" true
    (Value.equal (Value.Int 2) (Value.Real 2.0));
  Alcotest.(check bool) "bool vs int differ" false
    (Value.equal (Value.Bool true) (Value.Int 1));
  (match Value.to_real (Value.Bool true) with
  | _ -> Alcotest.fail "expected Type_clash"
  | exception Value.Type_clash _ -> ());
  match Value.to_bool (Value.Real 1.0) with
  | _ -> Alcotest.fail "expected Type_clash"
  | exception Value.Type_clash _ -> ()

let test_timeline () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let id = Graph.add g Opcode.Id [| Graph.In_arc |] in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:id ~port:0;
  Graph.connect g ~src:id ~dst:out ~port:0;
  let result =
    Engine.run_cfg Run_config.(default |> with_record_firings true) g
      ~inputs:[ ("a", List.init 10 (fun i -> Value.Int i)) ]
  in
  let chart = Timeline.render ~width:24 g result in
  let lines = String.split_on_char '\n' chart in
  Alcotest.(check int) "header + 3 cells" 4
    (List.length (List.filter (fun l -> l <> "") lines));
  (* the Id fires every other step in steady state: stars alternate *)
  let id_line = List.nth lines 2 in
  Alcotest.(check bool) "contains firings" true
    (String.contains id_line '*')

let test_metrics_edge_cases () =
  Alcotest.(check bool) "empty times -> nan" true
    (Float.is_nan (Metrics.initiation_interval []));
  Alcotest.(check bool) "single arrival -> nan" true
    (Float.is_nan (Metrics.initiation_interval [ 5 ]));
  Alcotest.(check (float 1e-9)) "two arrivals, no trim" 3.0
    (Metrics.initiation_interval ~trim:0.0 [ 2; 5 ])

let suite =
  [
    Alcotest.test_case "pqueue basics" `Quick test_pqueue_basics;
    Alcotest.test_case "pqueue duplicates" `Quick test_pqueue_duplicates;
    Alcotest.test_case "pqueue growth and ordering" `Quick test_pqueue_growth;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "simulation report" `Quick test_report;
    Alcotest.test_case "value helpers" `Quick test_value_helpers;
    Alcotest.test_case "timeline rendering" `Quick test_timeline;
    Alcotest.test_case "metrics edge cases" `Quick test_metrics_edge_cases;
  ]
