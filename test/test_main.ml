let () =
  Alcotest.run "dataflow_pipelining"
    [
      ("util", Test_util.suite);
      ("val.parser", Test_val_parser.suite);
      ("val.eval", Test_val_eval.suite);
      ("val.classify", Test_classify.suite);
      ("dfg.graph", Test_dfg.suite);
      ("sim.engine", Test_sim.suite);
      ("balance", Test_balance.suite);
      ("compiler", Test_compiler.suite);
      ("machine", Test_machine.suite);
      ("dfg.text", Test_serialize.suite);
      ("dfg.optimize", Test_optimize.suite);
      ("val.math", Test_math_fns.suite);
      ("kernels", Test_kernels.suite);
      ("compiler.distance", Test_companion_distance.suite);
      ("compiler.driver", Test_driver.suite);
      ("properties", Test_properties.suite);
      ("obs", Test_obs.suite);
      ("fault", Test_fault.suite);
      ("recover", Test_recover.suite);
      ("integrity", Test_integrity.suite);
      ("exec", Test_exec.suite);
      ("exec.arena", Test_arena.suite);
      ("serve", Test_serve.suite);
      ("serve.journal", Test_journal.suite);
      ("serve.replica", Test_replica.suite);
    ]
