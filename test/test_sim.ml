(* Simulator tests on hand-built instruction graphs: firing rules, the
   acknowledge discipline, and the paper's timing facts (rate 1/2 for
   balanced pipes, d/c for loops). *)

open Dfg
open Sim

let reals xs = List.map (fun f -> Value.Real f) xs
let ints xs = List.map (fun i -> Value.Int i) xs

let check_reals msg expected got =
  Alcotest.(check (list (float 1e-9)))
    msg expected
    (List.map Value.to_real got)

(* The paper's Figure 2: let y = a*b in (y+2)*(y-3). *)
let figure2_graph () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let b = Graph.add g (Opcode.Input "b") [||] in
  let mult1 =
    Graph.add g ~label:"cell1" (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_arc |]
  in
  let add =
    Graph.add g ~label:"cell2" (Opcode.Arith Opcode.Add)
      [| Graph.In_arc; Graph.In_const (Value.Real 2.) |]
  in
  let sub =
    Graph.add g ~label:"cell3" (Opcode.Arith Opcode.Sub)
      [| Graph.In_arc; Graph.In_const (Value.Real 3.) |]
  in
  let mult2 =
    Graph.add g ~label:"cell4" (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_arc |]
  in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:mult1 ~port:0;
  Graph.connect g ~src:b ~dst:mult1 ~port:1;
  Graph.connect g ~src:mult1 ~dst:add ~port:0;
  Graph.connect g ~src:mult1 ~dst:sub ~port:0;
  Graph.connect g ~src:add ~dst:mult2 ~port:0;
  Graph.connect g ~src:sub ~dst:mult2 ~port:1;
  Graph.connect g ~src:mult2 ~dst:out ~port:0;
  g

let test_figure2_values () =
  let g = figure2_graph () in
  let n = 50 in
  let a = List.init n (fun i -> float_of_int (i + 1)) in
  let b = List.init n (fun i -> 1.0 +. (0.5 *. float_of_int i)) in
  let result =
    Engine.run_cfg Run_config.default g ~inputs:[ ("a", reals a); ("b", reals b) ]
  in
  Alcotest.(check bool) "quiescent" true result.Engine.quiescent;
  let expected =
    List.map2 (fun x y -> let v = x *. y in (v +. 2.) *. (v -. 3.)) a b
  in
  check_reals "fig2 values" expected (Engine.output_values result "r")

let test_figure2_rate () =
  let g = figure2_graph () in
  let n = 400 in
  let a = List.init n (fun _ -> 1.0) and b = List.init n (fun _ -> 2.0) in
  let result = Engine.run_cfg Run_config.default g ~inputs:[ ("a", reals a); ("b", reals b) ] in
  let interval = Metrics.output_interval result "r" in
  Alcotest.(check (float 0.01)) "fully pipelined interval" 2.0 interval;
  Alcotest.(check bool) "fully pipelined" true
    (Metrics.fully_pipelined result "r")

(* Rate is set by the slowest stage: an unbalanced diamond jams below the
   maximal rate (Section 3's balance requirement). *)
let diamond_graph ~skew =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let split = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:split ~port:0;
  (* short arm: 1 cell; long arm: 1 + skew cells *)
  let short = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:split ~dst:short ~port:0;
  let long0 = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:split ~dst:long0 ~port:0;
  let long_end = ref long0 in
  for _ = 1 to skew do
    let next = Graph.add g Opcode.Id [| Graph.In_arc |] in
    Graph.connect g ~src:!long_end ~dst:next ~port:0;
    long_end := next
  done;
  let join =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:short ~dst:join ~port:0;
  Graph.connect g ~src:!long_end ~dst:join ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:join ~dst:out ~port:0;
  g

let test_unbalanced_diamond_jams () =
  let g = diamond_graph ~skew:4 in
  let n = 300 in
  let result =
    Engine.run_cfg Run_config.default g ~inputs:[ ("a", reals (List.init n float_of_int)) ]
  in
  let interval = Metrics.output_interval result "r" in
  Alcotest.(check bool)
    (Printf.sprintf "interval %.2f should exceed 2.5" interval)
    true (interval > 2.5);
  (* values still correct: both arms carry a, so r = 2a *)
  let expected = List.init n (fun i -> 2.0 *. float_of_int i) in
  check_reals "values" expected (Engine.output_values result "r")

let test_balanced_diamond_with_fifo () =
  (* Adding FIFO capacity on the short arm restores the maximal rate. *)
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let split = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:split ~port:0;
  let fifo = Graph.add g (Opcode.Fifo 5) [| Graph.In_arc |] in
  Graph.connect g ~src:split ~dst:fifo ~port:0;
  let long_end = ref split in
  for _ = 1 to 5 do
    let next = Graph.add g Opcode.Id [| Graph.In_arc |] in
    Graph.connect g ~src:!long_end ~dst:next ~port:0;
    long_end := next
  done;
  let join =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:fifo ~dst:join ~port:0;
  Graph.connect g ~src:!long_end ~dst:join ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:join ~dst:out ~port:0;
  let n = 300 in
  let result =
    Engine.run_cfg Run_config.default g ~inputs:[ ("a", reals (List.init n float_of_int)) ]
  in
  Alcotest.(check (float 0.01)) "restored interval" 2.0
    (Metrics.output_interval result "r")

(* Gates: a T-gate driven by <F T^3 F>* keeps the middle three of five. *)
let test_tgate_selection () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let ctl =
    Graph.add g
      (Opcode.Bool_source
         (Ctlseq.make ~cyclic:true [ (false, 1); (true, 3); (false, 1) ]))
      [||]
  in
  let gate = Graph.add g Opcode.Tgate [| Graph.In_arc; Graph.In_arc |] in
  Graph.connect g ~src:ctl ~dst:gate ~port:0;
  Graph.connect g ~src:a ~dst:gate ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:gate ~dst:out ~port:0;
  let result =
    Engine.run_cfg Run_config.default g
      ~inputs:
        [ ("a", reals (List.init 10 float_of_int)) (* two waves of 5 *) ]
  in
  check_reals "selected window" [ 1.; 2.; 3.; 6.; 7.; 8. ]
    (Engine.output_values result "r")

let test_fgate () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let ctl =
    Graph.add g
      (Opcode.Bool_source (Ctlseq.make ~cyclic:true [ (true, 1); (false, 1) ]))
      [||]
  in
  let gate = Graph.add g Opcode.Fgate [| Graph.In_arc; Graph.In_arc |] in
  Graph.connect g ~src:ctl ~dst:gate ~port:0;
  Graph.connect g ~src:a ~dst:gate ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:gate ~dst:out ~port:0;
  let result = Engine.run_cfg Run_config.default g ~inputs:[ ("a", ints [ 0; 1; 2; 3; 4; 5 ]) ] in
  Alcotest.(check (list int)) "odd positions pass" [ 1; 3; 5 ]
    (List.map
       (function Value.Int i -> i | _ -> -1)
       (Engine.output_values result "r"))

(* Switch and merge round-trip: route by sign, then recombine. *)
let test_switch_merge () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let fan = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:fan ~port:0;
  let pos =
    Graph.add g (Opcode.Compare Opcode.Ge)
      [| Graph.In_arc; Graph.In_const (Value.Real 0.) |]
  in
  Graph.connect g ~src:fan ~dst:pos ~port:0;
  (* control fans out to the switch and (through a FIFO) to the merge *)
  let sw = Graph.add g Opcode.Switch [| Graph.In_arc; Graph.In_arc |] in
  Graph.connect g ~src:pos ~dst:sw ~port:0;
  Graph.connect g ~src:fan ~dst:sw ~port:1;
  let neg_arm = Graph.add g Opcode.Neg [| Graph.In_arc |] in
  let id_arm = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect_slot g ~src:sw ~slot:0 ~dst:id_arm ~port:0;
  Graph.connect_slot g ~src:sw ~slot:1 ~dst:neg_arm ~port:0;
  let ctl_fifo = Graph.add g (Opcode.Fifo 2) [| Graph.In_arc |] in
  Graph.connect g ~src:pos ~dst:ctl_fifo ~port:0;
  let merge =
    Graph.add g Opcode.Merge [| Graph.In_arc; Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:ctl_fifo ~dst:merge ~port:0;
  Graph.connect g ~src:id_arm ~dst:merge ~port:1;
  Graph.connect g ~src:neg_arm ~dst:merge ~port:2;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:merge ~dst:out ~port:0;
  let xs = [ 3.; -4.; 5.; -6.; 0.; -1. ] in
  let result = Engine.run_cfg Run_config.default g ~inputs:[ ("a", reals xs) ] in
  check_reals "absolute value" [ 3.; 4.; 5.; 6.; 0.; 1. ]
    (Engine.output_values result "r")

(* A 3-cell feedback loop with one token runs at 1/3 — the limit the paper
   derives for Todd's scheme (Figure 7 discussion). *)
let loop_graph ~cells ~tokens =
  (* Loop of [cells] Id cells; [tokens] of them preloaded.  An external
     input is summed in so we can also check values; here we only tap the
     loop with a Sink-free observer. *)
  let g = Graph.create () in
  assert (cells >= 2 && tokens >= 1 && tokens < cells);
  let ids =
    Array.init cells (fun i ->
        let binding =
          if i < tokens then Graph.In_arc_init (Value.Int i) else Graph.In_arc
        in
        Graph.add g ~label:(Printf.sprintf "loop%d" i) Opcode.Id [| binding |])
  in
  for i = 0 to cells - 1 do
    Graph.connect g ~src:ids.(i) ~dst:ids.((i + 1) mod cells) ~port:0
  done;
  (* observe one cell through a gate driven by a finite control so the
     simulation terminates: pass the first 200 circulations *)
  let ctl =
    Graph.add g
      (Opcode.Bool_source
         (Ctlseq.make ~cyclic:false [ (true, 200); (false, 0) ]))
      [||]
  in
  let gate = Graph.add g Opcode.Tgate [| Graph.In_arc; Graph.In_arc |] in
  Graph.connect g ~src:ctl ~dst:gate ~port:0;
  Graph.connect g ~src:ids.(0) ~dst:gate ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:gate ~dst:out ~port:0;
  g

let test_loop_rates () =
  (* (cells, tokens, expected interval = cells/tokens) *)
  List.iter
    (fun (cells, tokens, expected) ->
      let g = loop_graph ~cells ~tokens in
      let result = Engine.run_cfg Run_config.(default |> with_max_time 20000) g ~inputs:[] in
      let interval = Metrics.output_interval result "r" in
      Alcotest.(check (float 0.05))
        (Printf.sprintf "%d-cell loop with %d tokens" cells tokens)
        expected interval)
    [
      (3, 1, 3.0);  (* Todd's scheme: rate 1/3 *)
      (4, 2, 2.0);  (* companion scheme: even loop, distance 2: rate 1/2 *)
      (4, 1, 4.0);
      (5, 2, 2.5);
      (2, 1, 2.0);  (* minimal even loop runs at the maximal rate *)
      (6, 3, 2.0);
    ]

(* Jam detection: sending into an occupied port must raise. *)
let test_capacity_violation () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let b = Graph.add g (Opcode.Input "b") [||] in
  (* two producers on one port: caught by validation *)
  let id = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:id ~port:0;
  Graph.connect g ~src:b ~dst:id ~port:0;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:id ~dst:out ~port:0;
  match Engine.run_cfg Run_config.default g ~inputs:[ ("a", ints [ 1 ]); ("b", ints [ 2 ]) ] with
  | _ -> Alcotest.fail "expected validation failure"
  | exception Invalid_argument _ -> ()

let test_deadlock_diagnosis () =
  (* A merge whose control never arrives: tokens remain, sim reports. *)
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  (* the control stream supplies no packets, so merge port 0 starves *)
  let ctl = Graph.add g (Opcode.Input "c") [||] in
  let merge =
    Graph.add g Opcode.Merge [| Graph.In_arc; Graph.In_arc; Graph.In_const (Value.Int 0) |]
  in
  Graph.connect g ~src:ctl ~dst:merge ~port:0;
  Graph.connect g ~src:a ~dst:merge ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:merge ~dst:out ~port:0;
  let result = Engine.run_cfg Run_config.default g ~inputs:[ ("a", ints [ 7 ]); ("c", []) ] in
  Alcotest.(check bool) "quiescent" true result.Engine.quiescent;
  Alcotest.(check bool) "stall report present" true
    (result.Engine.stuck <> None);
  (match result.Engine.stuck with
  | None -> ()
  | Some sr ->
    Alcotest.(check bool) "reported as deadlock" true
      (sr.Fault.Stall_report.sr_reason = Fault.Stall_report.Deadlock);
    Alcotest.(check bool) "merge cell listed" true
      (List.exists
         (fun b -> b.Fault.Stall_report.b_node = merge)
         sr.Fault.Stall_report.sr_blocked));
  Alcotest.(check (list int)) "no output" []
    (List.map (fun _ -> 0) (Engine.output_values result "r"))

let test_fifo_order_and_elasticity () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let fifo = Graph.add g (Opcode.Fifo 3) [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:fifo ~port:0;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:fifo ~dst:out ~port:0;
  let xs = List.init 20 float_of_int in
  let result = Engine.run_cfg Run_config.default g ~inputs:[ ("a", reals xs) ] in
  check_reals "FIFO preserves order" xs (Engine.output_values result "r")

let test_bool_source_finite () =
  let g = Graph.create () in
  let ctl =
    Graph.add g
      (Opcode.Bool_source
         (Ctlseq.make ~cyclic:false [ (true, 2); (false, 1) ]))
      [||]
  in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:ctl ~dst:out ~port:0;
  let result = Engine.run_cfg Run_config.default g ~inputs:[] in
  Alcotest.(check (list bool)) "finite sequence" [ true; true; false ]
    (List.map Value.to_bool (Engine.output_values result "r"))

let test_fire_counts_and_utilization () =
  let g = figure2_graph () in
  let n = 100 in
  let result =
    Engine.run_cfg Run_config.(default |> with_record_firings true) g
      ~inputs:
        [ ("a", reals (List.init n float_of_int));
          ("b", reals (List.init n float_of_int)) ]
  in
  Graph.iter_nodes g (fun node ->
      match node.Graph.op with
      | Opcode.Arith _ ->
        Alcotest.(check int)
          (Printf.sprintf "%s fires once per element" node.Graph.label)
          n
          result.Engine.fire_counts.(node.Graph.id)
      | _ -> ());
  let busiest = Metrics.busiest_interval result in
  Alcotest.(check (float 0.2)) "slowest stage at period 2" 2.0 busiest

(* Merge leaves the unselected operand in place (Section 5): feed both
   data ports, select only I1 twice; the I2 token must survive and be
   consumed by a later false control. *)
let test_merge_unselected_untouched () =
  let g = Graph.create () in
  let ctl = Graph.add g (Opcode.Input "ctl") [||] in
  let t_in = Graph.add g (Opcode.Input "t") [||] in
  let f_in = Graph.add g (Opcode.Input "f") [||] in
  let merge =
    Graph.add g Opcode.Merge [| Graph.In_arc; Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:ctl ~dst:merge ~port:0;
  Graph.connect g ~src:t_in ~dst:merge ~port:1;
  Graph.connect g ~src:f_in ~dst:merge ~port:2;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:merge ~dst:out ~port:0;
  let result =
    Engine.run_cfg Run_config.default g
      ~inputs:
        [ ("ctl", List.map (fun b -> Value.Bool b) [ true; true; false ]);
          ("t", ints [ 10; 20 ]);
          ("f", ints [ 99 ]) ]
  in
  Alcotest.(check (list int)) "selection order" [ 10; 20; 99 ]
    (List.map
       (function Value.Int i -> i | _ -> -1)
       (Engine.output_values result "r"))

(* A Merge_switch fires on M + selected input + D, and its slot-1
   destinations receive the result only when D is true. *)
let test_merge_switch_semantics () =
  let g = Graph.create () in
  let m = Graph.add g (Opcode.Input "m") [||] in
  let d = Graph.add g (Opcode.Input "d") [||] in
  let data = Graph.add g (Opcode.Input "x") [||] in
  let ms =
    Graph.add g Opcode.Merge_switch
      [| Graph.In_arc; Graph.In_arc; Graph.In_const (Value.Int 0);
         Graph.In_arc |]
  in
  Graph.connect g ~src:m ~dst:ms ~port:0;
  Graph.connect g ~src:data ~dst:ms ~port:1;
  Graph.connect g ~src:d ~dst:ms ~port:3;
  let main = Graph.add g (Opcode.Output "main") [| Graph.In_arc |] in
  let side = Graph.add g (Opcode.Output "side") [| Graph.In_arc |] in
  Graph.connect g ~src:ms ~dst:main ~port:0;
  Graph.connect_slot g ~src:ms ~slot:1 ~dst:side ~port:0;
  let bools bs = List.map (fun b -> Value.Bool b) bs in
  let result =
    Engine.run_cfg Run_config.default g
      ~inputs:
        [ ("m", bools [ false; true; true; true ]);
          ("d", bools [ true; false; true; false ]);
          ("x", ints [ 7; 8; 9 ]) ]
  in
  Alcotest.(check (list int)) "main gets everything" [ 0; 7; 8; 9 ]
    (List.map
       (function Value.Int i -> i | _ -> -1)
       (Engine.output_values result "main"));
  Alcotest.(check (list int)) "side gets D=true results" [ 0; 8 ]
    (List.map
       (function Value.Int i -> i | _ -> -1)
       (Engine.output_values result "side"))

(* Iota with a repeat factor streams the outer index of a 2-D block. *)
let test_iota_rep () =
  let g = Graph.create () in
  let iota = Graph.add g (Opcode.Iota { lo = 3; hi = 5; rep = 2 }) [||] in
  let gate = Graph.add g Opcode.Tgate [| Graph.In_arc; Graph.In_arc |] in
  let ctl =
    Graph.add g
      (Opcode.Bool_source (Ctlseq.make ~cyclic:false [ (true, 8) ]))
      [||]
  in
  Graph.connect g ~src:ctl ~dst:gate ~port:0;
  Graph.connect g ~src:iota ~dst:gate ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:gate ~dst:out ~port:0;
  let result = Engine.run_cfg Run_config.default g ~inputs:[] in
  Alcotest.(check (list int)) "repeats then wraps"
    [ 3; 3; 4; 4; 5; 5; 3; 3 ]
    (List.map
       (function Value.Int i -> i | _ -> -1)
       (Engine.output_values result "r"))

(* The producer of a preloaded (In_arc_init) port starts owing an ack, so
   it must not fire before the initial token is consumed. *)
let test_init_token_discipline () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  (* a 2-ring seeded with one token; the output taps the ring together with the
     input to bound the run *)
  let add =
    Graph.add g (Opcode.Arith Opcode.Add)
      [| Graph.In_arc_init (Value.Int 100); Graph.In_arc |]
  in
  let back = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:add ~dst:back ~port:0;
  Graph.connect g ~src:back ~dst:add ~port:0;
  Graph.connect g ~src:a ~dst:add ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:add ~dst:out ~port:0;
  let result = Engine.run_cfg Run_config.default g ~inputs:[ ("a", ints [ 1; 2; 3 ]) ] in
  (* running sums: 101, 103, 106 *)
  Alcotest.(check (list int)) "accumulates" [ 101; 103; 106 ]
    (List.map
       (function Value.Int i -> i | _ -> -1)
       (Engine.output_values result "r"))

(* max_time bound: a free-running source graph hits the cap and reports
   non-quiescence *)
let test_max_time_cap () =
  let g = Graph.create () in
  let ctl =
    Graph.add g
      (Opcode.Bool_source (Ctlseq.make ~cyclic:true [ (true, 1) ]))
      [||]
  in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:ctl ~dst:out ~port:0;
  let result = Engine.run_cfg Run_config.(default |> with_max_time 100) g ~inputs:[] in
  Alcotest.(check bool) "not quiescent" false result.Engine.quiescent;
  Alcotest.(check bool) "bounded output count" true
    (List.length (Engine.output_values result "r") <= 60)

let test_output_times_monotone () =
  let g = figure2_graph () in
  let n = 30 in
  let xs = List.init n (fun i -> Value.Real (float_of_int i)) in
  let result = Engine.run_cfg Run_config.default g ~inputs:[ ("a", xs); ("b", xs) ] in
  let times = Engine.output_times result "r" in
  let rec mono = function
    | a :: (b :: _ as rest) -> a < b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing arrivals" true (mono times);
  Alcotest.(check int) "one arrival per element" n (List.length times)

let suite =
  [
    Alcotest.test_case "figure 2 values" `Quick test_figure2_values;
    Alcotest.test_case "figure 2 full pipelining" `Quick test_figure2_rate;
    Alcotest.test_case "unbalanced diamond jams" `Quick
      test_unbalanced_diamond_jams;
    Alcotest.test_case "FIFO rebalances diamond" `Quick
      test_balanced_diamond_with_fifo;
    Alcotest.test_case "T-gate window selection" `Quick test_tgate_selection;
    Alcotest.test_case "F-gate" `Quick test_fgate;
    Alcotest.test_case "switch/merge abs" `Quick test_switch_merge;
    Alcotest.test_case "loop rates d/c" `Quick test_loop_rates;
    Alcotest.test_case "capacity violation" `Quick test_capacity_violation;
    Alcotest.test_case "deadlock diagnosis" `Quick test_deadlock_diagnosis;
    Alcotest.test_case "FIFO order" `Quick test_fifo_order_and_elasticity;
    Alcotest.test_case "finite control source" `Quick test_bool_source_finite;
    Alcotest.test_case "fire counts and utilization" `Quick
      test_fire_counts_and_utilization;
    Alcotest.test_case "merge leaves unselected operand" `Quick
      test_merge_unselected_untouched;
    Alcotest.test_case "merge_switch semantics" `Quick
      test_merge_switch_semantics;
    Alcotest.test_case "iota repeat factor" `Quick test_iota_rep;
    Alcotest.test_case "init token discipline" `Quick
      test_init_token_discipline;
    Alcotest.test_case "output times monotone" `Quick
      test_output_times_monotone;
    Alcotest.test_case "max_time cap" `Quick test_max_time_cap;
  ]
