(* Machine-level simulator tests: correctness against the idealized
   engine, PE scaling, and the Section 2 array-memory traffic claim. *)

open Dfg
module D = Compiler.Driver
module PC = Compiler.Program_compile
module ME = Machine.Machine_engine
module Arch = Machine.Arch

let fig3_source m =
  Printf.sprintf
    {|
param m = %d;
input C : array[real] [0, m+1];
input B : array[real] [0, m+1];

A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0) | (i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i] * (P * P)
  endall;

X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in
      if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
    m

let compiled_fig3 m =
  let _, cp = D.compile_source (fig3_source m) in
  cp

let wave m st =
  let rnd () = Random.State.float st 1.0 in
  [
    ("C", D.wave_of_floats (List.init (m + 2) (fun _ -> rnd ())));
    ("B", D.wave_of_floats (List.init (m + 2) (fun _ -> rnd ())));
  ]

let machine_inputs cp ~waves inputs =
  List.map
    (fun (name, _) ->
      let w = List.assoc name inputs in
      (name, List.concat_map (fun _ -> w) (List.init waves Fun.id)))
    cp.PC.cp_inputs

let test_matches_ideal_engine () =
  let m = 10 in
  let cp = compiled_fig3 m in
  let st = Random.State.make [| 42 |] in
  let inputs = wave m st in
  let ideal = D.run ~waves:2 cp ~inputs in
  List.iter
    (fun policy ->
      let arch = { Arch.default with Arch.array_policy = policy } in
      let mres =
        ME.run_cfg ME.default_config ~arch cp.PC.cp_graph
          ~inputs:(machine_inputs cp ~waves:2 inputs)
      in
      Alcotest.(check bool) "quiescent" true mres.ME.quiescent;
      List.iter
        (fun (name, _) ->
          let want =
            List.map Value.to_real (Sim.Engine.output_values ideal name)
          in
          let got = List.map Value.to_real (ME.output_values mres name) in
          Alcotest.(check (list (float 1e-9)))
            (Printf.sprintf "%s values match ideal engine" name)
            want got)
        cp.PC.cp_outputs)
    [ Arch.Streamed; Arch.Stored ]

let test_am_traffic_claim () =
  (* Section 2: streamed arrays send at most ~1/8 of operation packets to
     the array memories; the stored baseline sends far more. *)
  let m = 24 in
  let cp = compiled_fig3 m in
  let st = Random.State.make [| 7 |] in
  let inputs = machine_inputs cp ~waves:4 (wave m st) in
  let run policy =
    let arch = { Arch.default with Arch.array_policy = policy } in
    ME.run_cfg ME.default_config ~arch cp.PC.cp_graph ~inputs
  in
  let streamed = run Arch.Streamed in
  let stored = run Arch.Stored in
  let f_streamed = ME.am_fraction streamed.ME.stats in
  let f_stored = ME.am_fraction stored.ME.stats in
  Alcotest.(check bool)
    (Printf.sprintf "streamed AM fraction %.3f <= 1/8" f_streamed)
    true
    (f_streamed <= 0.125);
  Alcotest.(check bool)
    (Printf.sprintf "stored %.3f > streamed %.3f" f_stored f_streamed)
    true
    (f_stored > (2.0 *. f_streamed) +. 0.01)

let test_streamed_faster_than_stored () =
  let m = 24 in
  let cp = compiled_fig3 m in
  let st = Random.State.make [| 9 |] in
  let inputs = machine_inputs cp ~waves:4 (wave m st) in
  let time policy =
    let arch = { Arch.default with Arch.array_policy = policy } in
    (ME.run_cfg ME.default_config ~arch cp.PC.cp_graph ~inputs).ME.end_time
  in
  let streamed = time Arch.Streamed and stored = time Arch.Stored in
  Alcotest.(check bool)
    (Printf.sprintf "streamed %d < stored %d" streamed stored)
    true (streamed < stored)

let test_pe_scaling () =
  (* with more PEs the completion time improves until the pipe's own
     maximal rate saturates *)
  let m = 24 in
  let cp = compiled_fig3 m in
  let st = Random.State.make [| 11 |] in
  let inputs = machine_inputs cp ~waves:4 (wave m st) in
  let time n_pe =
    let arch = { Arch.default with Arch.n_pe = n_pe } in
    (ME.run_cfg ME.default_config ~arch cp.PC.cp_graph ~inputs).ME.end_time
  in
  let t1 = time 1 and t4 = time 4 and t32 = time 32 in
  Alcotest.(check bool)
    (Printf.sprintf "1 PE (%d) slower than 4 PEs (%d)" t1 t4)
    true (t1 > t4);
  Alcotest.(check bool)
    (Printf.sprintf "4 PEs (%d) no faster than 32 (%d) by >2x" t4 t32)
    true
    (t4 >= t32);
  (* scaling must saturate: 32 PEs cannot be 8x faster than 4 *)
  Alcotest.(check bool) "saturation" true
    (float_of_int t4 /. float_of_int t32 < 8.0)

let test_packet_accounting () =
  let m = 8 in
  let cp = compiled_fig3 m in
  let st = Random.State.make [| 13 |] in
  let inputs = machine_inputs cp ~waves:1 (wave m st) in
  let res = ME.run_cfg ME.default_config ~arch:Arch.default cp.PC.cp_graph ~inputs in
  let s = res.ME.stats in
  Alcotest.(check bool) "dispatches positive" true (s.ME.dispatches > 0);
  Alcotest.(check bool) "fu ops below dispatches" true
    (s.ME.fu_ops < s.ME.dispatches);
  Alcotest.(check bool) "acks accompany results" true
    (s.ME.ack_packets > 0 && s.ME.result_packets > 0);
  Alcotest.(check int) "no AM ops when streamed" 0 s.ME.am_ops

let test_fu_latency_slows_completion () =
  let m = 16 in
  let cp = compiled_fig3 m in
  let st = Random.State.make [| 15 |] in
  let inputs = machine_inputs cp ~waves:3 (wave m st) in
  let time fu_latency =
    let arch = { Arch.default with Arch.fu_latency } in
    (ME.run_cfg ME.default_config ~arch cp.PC.cp_graph ~inputs).ME.end_time
  in
  let fast = time 1 and slow = time 16 in
  Alcotest.(check bool)
    (Printf.sprintf "fu latency 1 (%d) beats 16 (%d)" fast slow)
    true (fast < slow)

let test_am_contention () =
  (* under the stored policy, a single array memory serializes the
     traffic; more AMs relieve it *)
  let m = 24 in
  let cp = compiled_fig3 m in
  let st = Random.State.make [| 16 |] in
  let inputs = machine_inputs cp ~waves:3 (wave m st) in
  let time n_am =
    let arch =
      { Arch.default with Arch.array_policy = Arch.Stored; n_am }
    in
    (ME.run_cfg ME.default_config ~arch cp.PC.cp_graph ~inputs).ME.end_time
  in
  let one = time 1 and four = time 4 in
  Alcotest.(check bool)
    (Printf.sprintf "1 AM (%d) no faster than 4 AMs (%d)" one four)
    true (one >= four)

let test_rn_latency_affects_time () =
  let m = 16 in
  let cp = compiled_fig3 m in
  let st = Random.State.make [| 17 |] in
  let inputs = machine_inputs cp ~waves:3 (wave m st) in
  let time rn_latency =
    let arch = { Arch.default with Arch.rn_latency } in
    (ME.run_cfg ME.default_config ~arch cp.PC.cp_graph ~inputs).ME.end_time
  in
  Alcotest.(check bool) "longer network, longer run" true (time 1 < time 12)

let test_arch_describe () =
  let s = Arch.describe Arch.default in
  Alcotest.(check bool) "mentions PEs" true
    (String.length s > 0 && String.contains s 'P')

let suite =
  [
    Alcotest.test_case "matches ideal engine (both policies)" `Quick
      test_matches_ideal_engine;
    Alcotest.test_case "AM traffic claim (<= 1/8 streamed)" `Quick
      test_am_traffic_claim;
    Alcotest.test_case "streamed beats stored" `Quick
      test_streamed_faster_than_stored;
    Alcotest.test_case "PE scaling saturates" `Quick test_pe_scaling;
    Alcotest.test_case "packet accounting" `Quick test_packet_accounting;
    Alcotest.test_case "FU latency slows completion" `Quick
      test_fu_latency_slows_completion;
    Alcotest.test_case "AM contention" `Quick test_am_contention;
    Alcotest.test_case "RN latency" `Quick test_rn_latency_affects_time;
    Alcotest.test_case "arch description" `Quick test_arch_describe;
  ]
