(* Min-cost flow and balancing tests, including the paper's Section 8
   claims: naive >= reduced >= optimal = LP dual bound, and that balanced
   graphs run fully pipelined. *)

open Dfg
open Sim

(* ------------------------------------------------------------------ *)
(* Min-cost flow                                                        *)
(* ------------------------------------------------------------------ *)

let test_mcf_simple () =
  (* two parallel paths, cheap one has low capacity *)
  let net = Mcf.Mincost_flow.create 4 in
  let e_cheap = Mcf.Mincost_flow.add_arc net ~src:0 ~dst:1 ~capacity:2 ~cost:1 in
  let e_dear = Mcf.Mincost_flow.add_arc net ~src:0 ~dst:2 ~capacity:5 ~cost:3 in
  let e1 = Mcf.Mincost_flow.add_arc net ~src:1 ~dst:3 ~capacity:2 ~cost:0 in
  let e2 = Mcf.Mincost_flow.add_arc net ~src:2 ~dst:3 ~capacity:5 ~cost:0 in
  let s = Mcf.Mincost_flow.min_cost_max_flow net ~source:0 ~sink:3 in
  Alcotest.(check int) "flow" 7 s.Mcf.Mincost_flow.flow;
  Alcotest.(check int) "cost" ((2 * 1) + (5 * 3)) s.Mcf.Mincost_flow.cost;
  Alcotest.(check int) "cheap saturated" 2 (Mcf.Mincost_flow.flow_on net e_cheap);
  Alcotest.(check int) "dear used" 5 (Mcf.Mincost_flow.flow_on net e_dear);
  Alcotest.(check int) "e1" 2 (Mcf.Mincost_flow.flow_on net e1);
  Alcotest.(check int) "e2" 5 (Mcf.Mincost_flow.flow_on net e2)

let test_mcf_prefers_cheap () =
  let net = Mcf.Mincost_flow.create 2 in
  let _ = Mcf.Mincost_flow.add_arc net ~src:0 ~dst:1 ~capacity:10 ~cost:5 in
  let _ = Mcf.Mincost_flow.add_arc net ~src:0 ~dst:1 ~capacity:3 ~cost:1 in
  let s = Mcf.Mincost_flow.min_cost_max_flow net ~source:0 ~sink:1 in
  Alcotest.(check int) "flow" 13 s.Mcf.Mincost_flow.flow;
  Alcotest.(check int) "cost" ((3 * 1) + (10 * 5)) s.Mcf.Mincost_flow.cost

let test_mcf_negative_costs () =
  (* negative-cost arc in a DAG: must be exploited *)
  let net = Mcf.Mincost_flow.create 3 in
  let _ = Mcf.Mincost_flow.add_arc net ~src:0 ~dst:1 ~capacity:4 ~cost:(-2) in
  let _ = Mcf.Mincost_flow.add_arc net ~src:1 ~dst:2 ~capacity:4 ~cost:1 in
  let _ = Mcf.Mincost_flow.add_arc net ~src:0 ~dst:2 ~capacity:4 ~cost:0 in
  let s = Mcf.Mincost_flow.min_cost_max_flow net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 8 s.Mcf.Mincost_flow.flow;
  Alcotest.(check int) "cost" (-4) s.Mcf.Mincost_flow.cost

let test_mcf_residual_distances () =
  let net = Mcf.Mincost_flow.create 3 in
  let _ = Mcf.Mincost_flow.add_arc net ~src:0 ~dst:1 ~capacity:2 ~cost:4 in
  let _ = Mcf.Mincost_flow.add_arc net ~src:1 ~dst:2 ~capacity:2 ~cost:1 in
  let _ = Mcf.Mincost_flow.add_arc net ~src:0 ~dst:2 ~capacity:1 ~cost:9 in
  (match Mcf.Mincost_flow.residual_shortest_distances net ~root:0 with
  | Some d ->
    Alcotest.(check int) "d(1)" 4 d.(1);
    Alcotest.(check int) "d(2)" 5 d.(2)
  | None -> Alcotest.fail "no negative cycle expected");
  let _ = Mcf.Mincost_flow.min_cost_max_flow net ~source:0 ~sink:2 in
  (* after an optimal flow the residual network still has no negative
     cycle, and potentials exist *)
  match Mcf.Mincost_flow.potentials net with
  | Some _ -> ()
  | None -> Alcotest.fail "optimal flow must admit potentials"

let test_mcf_disconnected () =
  let net = Mcf.Mincost_flow.create 3 in
  let _ = Mcf.Mincost_flow.add_arc net ~src:0 ~dst:1 ~capacity:1 ~cost:1 in
  let s = Mcf.Mincost_flow.min_cost_max_flow net ~source:0 ~sink:2 in
  Alcotest.(check int) "no flow" 0 s.Mcf.Mincost_flow.flow

(* ------------------------------------------------------------------ *)
(* Balancing                                                            *)
(* ------------------------------------------------------------------ *)

(* Random layered DAG builder: [layers] layers of [width] arithmetic cells;
   each cell reads two random cells from any earlier layer (or an input),
   all terminal cells join into a tree feeding one output.  Deterministic
   via a seed. *)
let random_dag ~seed ~layers ~width =
  let rng = Random.State.make [| seed |] in
  let g = Graph.create () in
  let input = Graph.add g (Opcode.Input "a") [||] in
  let all = ref [ input ] in
  for _ = 1 to layers do
    let layer =
      List.init width (fun _ ->
          let pool = Array.of_list !all in
          let pick () = pool.(Random.State.int rng (Array.length pool)) in
          let n =
            Graph.add g (Opcode.Arith Opcode.Add)
              [| Graph.In_arc; Graph.In_arc |]
          in
          Graph.connect g ~src:(pick ()) ~dst:n ~port:0;
          Graph.connect g ~src:(pick ()) ~dst:n ~port:1;
          n)
    in
    all := layer @ !all
  done;
  (* join all cells with no successors into one output *)
  let sinks =
    List.filter (fun id -> Analysis.successors g id = []) !all
  in
  let rec join = function
    | [] -> assert false
    | [ x ] -> x
    | x :: y :: rest ->
      let n =
        Graph.add g (Opcode.Arith Opcode.Add)
          [| Graph.In_arc; Graph.In_arc |]
      in
      Graph.connect g ~src:x ~dst:n ~port:0;
      Graph.connect g ~src:y ~dst:n ~port:1;
      join (rest @ [ n ])
  in
  let root = join sinks in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:root ~dst:out ~port:0;
  g

let test_levels_feasible () =
  List.iter
    (fun seed ->
      let g = random_dag ~seed ~layers:5 ~width:4 in
      let naive = Balance.Balancer.naive_levels g in
      Alcotest.(check bool) "naive feasible" true
        (Balance.Balancer.is_feasible g naive);
      let reduced = Balance.Balancer.reduce_levels g naive in
      Alcotest.(check bool) "reduced feasible" true
        (Balance.Balancer.is_feasible g reduced);
      let optimal = Balance.Balancer.optimal_levels g in
      Alcotest.(check bool) "optimal feasible" true
        (Balance.Balancer.is_feasible g optimal))
    [ 1; 2; 3; 4; 5 ]

let test_cost_ordering () =
  List.iter
    (fun seed ->
      let g = random_dag ~seed ~layers:6 ~width:5 in
      let cost l = Balance.Balancer.buffer_cost g l in
      let naive = cost (Balance.Balancer.naive_levels g) in
      let reduced =
        cost
          (Balance.Balancer.reduce_levels g (Balance.Balancer.naive_levels g))
      in
      let optimal = cost (Balance.Balancer.optimal_levels g) in
      let bound = Balance.Balancer.dual_lower_bound g in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: naive %d >= reduced %d" seed naive reduced)
        true (naive >= reduced);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: reduced %d >= optimal %d" seed reduced
           optimal)
        true (reduced >= optimal);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: optimal = dual bound (strong duality)" seed)
        bound optimal)
    [ 7; 11; 13; 17; 23; 42 ]

let test_optimal_exact_small () =
  (* Hand-checkable: input fans to a 1-cell arm and a 3-cell arm joining
     at an ADD; optimal balancing needs exactly 2 buffer stages. *)
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let short = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:short ~port:0;
  let l1 = Graph.add g Opcode.Id [| Graph.In_arc |] in
  let l2 = Graph.add g Opcode.Id [| Graph.In_arc |] in
  let l3 = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:l1 ~port:0;
  Graph.connect g ~src:l1 ~dst:l2 ~port:0;
  Graph.connect g ~src:l2 ~dst:l3 ~port:0;
  let join =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:short ~dst:join ~port:0;
  Graph.connect g ~src:l3 ~dst:join ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:join ~dst:out ~port:0;
  let optimal = Balance.Balancer.optimal_levels g in
  Alcotest.(check int) "2 stages" 2
    (Balance.Balancer.buffer_cost g optimal)

let test_insert_buffers_balances () =
  List.iter
    (fun seed ->
      let g = random_dag ~seed ~layers:4 ~width:3 in
      let balanced = Balance.Balancer.balance ~strategy:`Optimal g in
      (match Analysis.strict_balance_check balanced with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "seed %d: not balanced: %s" seed msg);
      (* and it runs fully pipelined *)
      let n = 200 in
      let result =
        Engine.run_cfg Run_config.default balanced
          ~inputs:[ ("a", List.init n (fun i -> Value.Int i)) ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d fully pipelined" seed)
        true
        (Metrics.fully_pipelined result "r"))
    [ 3; 9; 27 ]

let test_values_unchanged_by_balancing () =
  let g = random_dag ~seed:5 ~layers:4 ~width:3 in
  let n = 50 in
  let inputs = [ ("a", List.init n (fun i -> Value.Int (i + 1))) ] in
  let raw = Engine.run_cfg Run_config.default g ~inputs in
  List.iter
    (fun strategy ->
      let b = Balance.Balancer.balance ~strategy g in
      let res = Engine.run_cfg Run_config.default b ~inputs in
      Alcotest.(check (list int)) "same values"
        (List.map
           (function Value.Int i -> i | _ -> -1)
           (Engine.output_values raw "r"))
        (List.map
           (function Value.Int i -> i | _ -> -1)
           (Engine.output_values res "r")))
    [ `Naive; `Reduced; `Optimal ]

let test_cyclic_rejected () =
  let g = Graph.create () in
  let a = Graph.add g Opcode.Id [| Graph.In_arc_init (Value.Int 0) |] in
  let b = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:b ~port:0;
  Graph.connect g ~src:b ~dst:a ~port:0;
  (match Balance.Balancer.naive_levels g with
  | _ -> Alcotest.fail "expected Cyclic"
  | exception Balance.Balancer.Cyclic -> ());
  match Balance.Balancer.optimal_levels g with
  | _ -> Alcotest.fail "expected Cyclic"
  | exception Balance.Balancer.Cyclic -> ()

let test_fifo_weights_respected () =
  (* A pre-existing FIFO(3) counts as 3 stages of delay. *)
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let f = Graph.add g (Opcode.Fifo 3) [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:f ~port:0;
  let s = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:s ~port:0;
  let join =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:f ~dst:join ~port:0;
  Graph.connect g ~src:s ~dst:join ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:join ~dst:out ~port:0;
  let optimal = Balance.Balancer.optimal_levels g in
  (* short arm needs 2 more stages to match FIFO(3) *)
  Alcotest.(check int) "stages" 2 (Balance.Balancer.buffer_cost g optimal)

let suite =
  [
    Alcotest.test_case "mcf simple network" `Quick test_mcf_simple;
    Alcotest.test_case "mcf prefers cheap arcs" `Quick test_mcf_prefers_cheap;
    Alcotest.test_case "mcf negative costs" `Quick test_mcf_negative_costs;
    Alcotest.test_case "mcf disconnected" `Quick test_mcf_disconnected;
    Alcotest.test_case "mcf residual distances and potentials" `Quick
      test_mcf_residual_distances;
    Alcotest.test_case "levels feasible" `Quick test_levels_feasible;
    Alcotest.test_case "cost ordering naive>=reduced>=optimal=dual" `Quick
      test_cost_ordering;
    Alcotest.test_case "optimal exact on small graph" `Quick
      test_optimal_exact_small;
    Alcotest.test_case "balanced graphs run at max rate" `Quick
      test_insert_buffers_balances;
    Alcotest.test_case "balancing preserves values" `Quick
      test_values_unchanged_by_balancing;
    Alcotest.test_case "cyclic graphs rejected" `Quick test_cyclic_rejected;
    Alcotest.test_case "FIFO weights respected" `Quick
      test_fifo_weights_respected;
  ]
