(* Graph-level tests: validation, analyses, control sequences, DOT export,
   and macro expansion to pure machine code. *)

open Dfg
open Sim

let simple_chain n =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let prev = ref a in
  for _ = 1 to n do
    let id = Graph.add g Opcode.Id [| Graph.In_arc |] in
    Graph.connect g ~src:!prev ~dst:id ~port:0;
    prev := id
  done;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:!prev ~dst:out ~port:0;
  g

let test_validate_ok () =
  match Graph.validate (simple_chain 3) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected errors: %s" (String.concat "; " es)

let test_validate_dangling () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let id = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:id ~port:0;
  (* id's output goes nowhere; also no Output node *)
  match Graph.validate g with
  | Ok () -> Alcotest.fail "expected dangling-output error"
  | Error es -> Alcotest.(check bool) "mentions slot" true (es <> [])

let test_validate_unfed_port () =
  let g = Graph.create () in
  let id = Graph.add g Opcode.Id [| Graph.In_arc |] in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:id ~dst:out ~port:0;
  match Graph.validate g with
  | Ok () -> Alcotest.fail "expected unfed-port error"
  | Error _ -> ()

let test_validate_all_const () =
  let g = Graph.create () in
  let add =
    Graph.add g (Opcode.Arith Opcode.Add)
      [| Graph.In_const (Value.Int 1); Graph.In_const (Value.Int 2) |]
  in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:add ~dst:out ~port:0;
  match Graph.validate g with
  | Ok () -> Alcotest.fail "expected all-const error"
  | Error _ -> ()

let test_topological_order () =
  let g = simple_chain 4 in
  (match Analysis.topological_order g with
  | Some order ->
    Alcotest.(check int) "all nodes" (Graph.node_count g) (List.length order)
  | None -> Alcotest.fail "chain is acyclic");
  (* add a feedback arc -> cyclic *)
  let g = Graph.create () in
  let a = Graph.add g Opcode.Id [| Graph.In_arc_init (Value.Int 0) |] in
  let b = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:b ~port:0;
  Graph.connect g ~src:b ~dst:a ~port:0;
  Alcotest.(check bool) "cyclic" true (Analysis.topological_order g = None);
  Alcotest.(check int) "one cycle found" 1 (List.length (Analysis.cycles g))

let test_strict_balance () =
  (* balanced diamond *)
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let l = Graph.add g Opcode.Id [| Graph.In_arc |] in
  let r = Graph.add g Opcode.Neg [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:l ~port:0;
  Graph.connect g ~src:a ~dst:r ~port:0;
  let join =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:l ~dst:join ~port:0;
  Graph.connect g ~src:r ~dst:join ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:join ~dst:out ~port:0;
  (match Analysis.strict_balance_check g with
  | Ok depths ->
    Alcotest.(check int) "join depth" 2 depths.(join);
    Alcotest.(check int) "out depth" 3 depths.(out)
  | Error msg -> Alcotest.failf "balanced graph rejected: %s" msg);
  (* now lengthen one arm *)
  let g2 = Graph.create () in
  let a = Graph.add g2 (Opcode.Input "a") [||] in
  let l1 = Graph.add g2 Opcode.Id [| Graph.In_arc |] in
  let l2 = Graph.add g2 Opcode.Id [| Graph.In_arc |] in
  let r = Graph.add g2 Opcode.Neg [| Graph.In_arc |] in
  Graph.connect g2 ~src:a ~dst:l1 ~port:0;
  Graph.connect g2 ~src:l1 ~dst:l2 ~port:0;
  Graph.connect g2 ~src:a ~dst:r ~port:0;
  let join =
    Graph.add g2 (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g2 ~src:l2 ~dst:join ~port:0;
  Graph.connect g2 ~src:r ~dst:join ~port:1;
  let out = Graph.add g2 (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g2 ~src:join ~dst:out ~port:0;
  match Analysis.strict_balance_check g2 with
  | Ok _ -> Alcotest.fail "unbalanced graph accepted"
  | Error _ -> ()

let test_fifo_weight_in_balance () =
  (* A FIFO of capacity 2 balances against two Id cells. *)
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let f = Graph.add g (Opcode.Fifo 2) [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:f ~port:0;
  let l1 = Graph.add g Opcode.Id [| Graph.In_arc |] in
  let l2 = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:l1 ~port:0;
  Graph.connect g ~src:l1 ~dst:l2 ~port:0;
  let join =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:f ~dst:join ~port:0;
  Graph.connect g ~src:l2 ~dst:join ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:join ~dst:out ~port:0;
  match Analysis.strict_balance_check g with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "FIFO-weighted balance rejected: %s" msg

let test_ctlseq () =
  let s = Ctlseq.make ~cyclic:true [ (false, 1); (true, 3); (false, 1) ] in
  Alcotest.(check int) "period" 5 (Ctlseq.period s);
  Alcotest.(check (list bool)) "one period"
    [ false; true; true; true; false ]
    (Ctlseq.to_list s ~periods:1);
  Alcotest.(check (option bool)) "wraps" (Some false) (Ctlseq.nth s 5);
  Alcotest.(check (option bool)) "position 6" (Some true) (Ctlseq.nth s 6);
  let f = Ctlseq.make ~cyclic:false [ (true, 2) ] in
  Alcotest.(check (option bool)) "finite exhausts" None (Ctlseq.nth f 2);
  let w = Ctlseq.selection_window ~lo:0 ~hi:9 ~sel_lo:2 ~sel_hi:8 in
  Alcotest.(check (list bool)) "window"
    [ false; false; true; true; true; true; true; true; true; false ]
    (Ctlseq.to_list w ~periods:1);
  Alcotest.(check string) "describe" "<F^2 T^7 F>*" (Ctlseq.describe w);
  (* merging of adjacent equal runs *)
  let m = Ctlseq.make ~cyclic:false [ (true, 1); (true, 2); (false, 0); (false, 1) ] in
  Alcotest.(check int) "merged period" 4 (Ctlseq.period m);
  Alcotest.(check string) "merged describe" "<T^3 F>" (Ctlseq.describe m)

let test_dot_export () =
  let g = simple_chain 2 in
  let dot = Dot.to_dot g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0
    && String.sub dot 0 7 = "digraph");
  (* every node appears *)
  Graph.iter_nodes g (fun n ->
      let needle = Printf.sprintf "n%d " n.Graph.id in
      let found =
        let len = String.length needle in
        let rec scan i =
          i + len <= String.length dot
          && (String.sub dot i len = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) "node present" true found)

let test_expand_fifos () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let f = Graph.add g (Opcode.Fifo 4) [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:f ~port:0;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:f ~dst:out ~port:0;
  let expanded = Macro.expand_fifos g in
  Alcotest.(check int) "4 Ids replace the FIFO" (2 + 4)
    (Graph.node_count expanded);
  Graph.iter_nodes expanded (fun n ->
      match n.Graph.op with
      | Opcode.Fifo _ -> Alcotest.fail "FIFO survived expansion"
      | _ -> ());
  let xs = List.init 10 (fun i -> Value.Int i) in
  let r1 = Engine.run_cfg Run_config.default g ~inputs:[ ("a", xs) ] in
  let r2 = Engine.run_cfg Run_config.default expanded ~inputs:[ ("a", xs) ] in
  Alcotest.(check (list int)) "same values"
    (List.map (function Value.Int i -> i | _ -> -1)
       (Engine.output_values r1 "r"))
    (List.map (function Value.Int i -> i | _ -> -1)
       (Engine.output_values r2 "r"))

let run_ctl_through ~expand seq n =
  let g = Graph.create () in
  let src = Graph.add g (Opcode.Bool_source seq) [||] in
  let gate = Graph.add g Opcode.Tgate [| Graph.In_arc; Graph.In_arc |] in
  let a = Graph.add g (Opcode.Input "a") [||] in
  Graph.connect g ~src ~dst:gate ~port:0;
  Graph.connect g ~src:a ~dst:gate ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:gate ~dst:out ~port:0;
  let sink_gate = () in
  ignore sink_gate;
  let g = if expand then Macro.expand_bool_sources g else g in
  let result =
    Engine.run_cfg Run_config.default g ~inputs:[ ("a", List.init n (fun i -> Value.Int i)) ]
  in
  List.map
    (function Value.Int i -> i | _ -> -1)
    (Engine.output_values result "r")

let test_expand_bool_sources_values () =
  let cases =
    [
      Ctlseq.make ~cyclic:true [ (false, 1); (true, 3); (false, 1) ];
      Ctlseq.make ~cyclic:true [ (true, 4) ];
      Ctlseq.make ~cyclic:true [ (false, 2); (true, 1) ];
      Ctlseq.make ~cyclic:true
        [ (true, 1); (false, 1); (true, 2); (false, 2) ];
    ]
  in
  List.iter
    (fun seq ->
      let n = 3 * Ctlseq.period seq in
      let abstract = run_ctl_through ~expand:false seq n in
      let expanded = run_ctl_through ~expand:true seq n in
      Alcotest.(check (list int))
        (Printf.sprintf "expansion of %s" (Ctlseq.describe seq))
        abstract expanded)
    cases

let test_expanded_generator_rate () =
  (* The instruction-level generator must sustain the maximal rate. *)
  let seq = Ctlseq.make ~cyclic:true [ (false, 1); (true, 6); (false, 1) ] in
  let g = Graph.create () in
  let src = Graph.add g (Opcode.Bool_source seq) [||] in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src ~dst:out ~port:0;
  let g = Macro.expand_bool_sources g in
  (* feed nothing: the generator free-runs; bound it by time *)
  let result = Engine.run_cfg Run_config.(default |> with_max_time 2000) g ~inputs:[] in
  let times = Engine.output_times result "r" in
  Alcotest.(check bool) "produced plenty" true (List.length times > 400);
  let interval = Metrics.initiation_interval times in
  Alcotest.(check (float 0.05)) "max rate" 2.0 interval

let figure_census_graph () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let m1 =
    Graph.add g (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_const (Value.Real 2.) |]
  in
  let m2 =
    Graph.add g (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_const (Value.Real 3.) |]
  in
  let add =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:a ~dst:m1 ~port:0;
  Graph.connect g ~src:a ~dst:m2 ~port:0;
  Graph.connect g ~src:m1 ~dst:add ~port:0;
  Graph.connect g ~src:m2 ~dst:add ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:add ~dst:out ~port:0;
  g

let test_census () =
  let g = figure_census_graph () in
  let census = Graph.opcode_census g in
  Alcotest.(check (option int)) "two MULT" (Some 2)
    (List.assoc_opt "MULT" census);
  Alcotest.(check (option int)) "one ADD" (Some 1)
    (List.assoc_opt "ADD" census)

let suite =
  [
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate dangling output" `Quick
      test_validate_dangling;
    Alcotest.test_case "validate unfed port" `Quick test_validate_unfed_port;
    Alcotest.test_case "validate all-const cell" `Quick
      test_validate_all_const;
    Alcotest.test_case "topological order and cycles" `Quick
      test_topological_order;
    Alcotest.test_case "strict balance check" `Quick test_strict_balance;
    Alcotest.test_case "FIFO weight in balance" `Quick
      test_fifo_weight_in_balance;
    Alcotest.test_case "control sequences" `Quick test_ctlseq;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "expand FIFOs" `Quick test_expand_fifos;
    Alcotest.test_case "expand control sources (values)" `Quick
      test_expand_bool_sources_values;
    Alcotest.test_case "expanded generator sustains max rate" `Quick
      test_expanded_generator_rate;
    Alcotest.test_case "opcode census" `Quick test_census;
  ]
