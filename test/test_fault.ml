(* lib/fault tests: PRNG and plan determinism, sanitizer negative paths,
   watchdog stall reports, and the kernel differential property — the
   paper's acknowledge discipline makes pipelines latency-insensitive,
   so delay-faulted runs must equal clean runs value for value. *)

open Dfg
module FP = Fault.Fault_plan
module San = Fault.Sanitizer
module SR = Fault.Stall_report
module V = Fault.Violation
module FD = Fault_diff
module Engine = Sim.Engine
module ME = Machine.Machine_engine

let ints xs = List.map (fun i -> Value.Int i) xs

(* a -> id -> out: the smallest pipeline with a real arc on each side *)
let tiny_pipeline () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let id = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:id ~port:0;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:id ~dst:out ~port:0;
  (g, a, id, out)

(* the paper's Figure 2 shape: two parallel arithmetic stages joined *)
let figure2 () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let b = Graph.add g (Opcode.Input "b") [||] in
  let add =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:a ~dst:add ~port:0;
  Graph.connect g ~src:b ~dst:add ~port:1;
  let mul =
    Graph.add g (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_const (Value.Int 3) |]
  in
  Graph.connect g ~src:add ~dst:mul ~port:0;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:mul ~dst:out ~port:0;
  g

let fig2_inputs n =
  [ ("a", ints (List.init n Fun.id)); ("b", ints (List.init n (fun i -> 10 * i))) ]

(* ---------------- PRNG ---------------- *)

let test_prng_deterministic () =
  let xs seed = List.init 64 (fun _ -> Fault.Prng.int64 (Fault.Prng.create seed)) in
  let s1 = Fault.Prng.create 42 and s2 = Fault.Prng.create 42 in
  let seq g = List.init 64 (fun _ -> Fault.Prng.int64 g) in
  Alcotest.(check bool) "same seed, same stream" true (seq s1 = seq s2);
  Alcotest.(check bool) "different seed, different stream" true
    (xs 1 <> xs 2);
  (* keyed hashing is stateless: order of evaluation cannot matter *)
  let h1 = Fault.Prng.mix 7 [ 1; 2; 3 ] and h2 = Fault.Prng.mix 7 [ 1; 2; 3 ] in
  Alcotest.(check bool) "mix is pure" true (Int64.equal h1 h2);
  Alcotest.(check bool) "mix separates keys" true
    (not (Int64.equal (Fault.Prng.mix 7 [ 1; 2 ]) (Fault.Prng.mix 7 [ 2; 1 ])))

let test_plan_decisions_deterministic () =
  let plan = FP.make (FP.delays ~prob:0.5 ~max_delay:9 99) in
  let probe () =
    List.init 200 (fun i ->
        FP.result_delay plan ~time:i ~src:(i mod 7) ~dst:(i mod 5) ~port:0)
  in
  Alcotest.(check (list int)) "same plan, same decisions" (probe ()) (probe ());
  let hits = List.filter (fun d -> d > 0) (probe ()) in
  Alcotest.(check bool) "some sites selected" true (List.length hits > 20);
  Alcotest.(check bool) "magnitudes within bound" true
    (List.for_all (fun d -> d >= 1 && d <= 9) hits)

let test_plan_of_string () =
  (match FP.of_string "seed=7,delay=0.25,dup=0.5,drop-ack=0.1,stall=0.2" with
  | Ok s ->
    Alcotest.(check int) "seed" 7 s.FP.seed;
    Alcotest.(check (float 0.0)) "delay" 0.25 s.FP.delay_prob;
    Alcotest.(check (float 0.0)) "dup" 0.5 s.FP.dup_prob;
    Alcotest.(check (float 0.0)) "drop-ack" 0.1 s.FP.drop_ack_prob;
    Alcotest.(check (float 0.0)) "stall" 0.2 s.FP.stall_prob
  | Error e -> Alcotest.failf "unexpected parse error: %s" e);
  (match FP.of_string "seed=7,delay-max=3,fu-slow=2,am-slow=1" with
  | Ok s ->
    Alcotest.(check int) "delay-max" 3 s.FP.delay_max;
    Alcotest.(check int) "fu-slow" 2 s.FP.fu_slow;
    Alcotest.(check int) "am-slow" 1 s.FP.am_slow
  | Error e -> Alcotest.failf "unexpected parse error: %s" e);
  (match FP.of_string "delay=1.5" with
  | Ok _ -> Alcotest.fail "probability > 1 must be rejected"
  | Error _ -> ());
  (match FP.of_string "bogus=1" with
  | Ok _ -> Alcotest.fail "unknown key must be rejected"
  | Error _ -> ());
  Alcotest.(check bool) "delay-only plan" true
    (FP.delay_only (FP.make (FP.delays 3)));
  Alcotest.(check bool) "dup plan is not delay-only" false
    (FP.delay_only (FP.make { FP.none with FP.seed = 1; dup_prob = 0.1 }))

(* ---------------- sanitizer: clean runs ---------------- *)

let test_sanitizer_clean_run () =
  let g = figure2 () in
  let inputs = fig2_inputs 24 in
  let plain = Engine.run_cfg Run_config.default g ~inputs in
  let checked =
    Engine.run_cfg
      Run_config.(default |> with_sanitizer (San.create g))
      g ~inputs
  in
  Alcotest.(check (list string)) "no violations" []
    (List.map V.to_string checked.Engine.violations);
  Alcotest.(check int) "timing unchanged" plain.Engine.end_time
    checked.Engine.end_time;
  Alcotest.(check bool) "outputs unchanged" true
    (plain.Engine.outputs = checked.Engine.outputs);
  Alcotest.(check bool) "clean drain: no stall report" true
    (checked.Engine.stuck = None)

let test_sanitizer_clean_machine_run () =
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let arch = Machine.Arch.default in
  let plain = ME.run_cfg ME.default_config ~arch g ~inputs in
  let checked =
    ME.run_cfg
      Run_config.(ME.default_config |> with_sanitizer (San.create g))
      ~arch g ~inputs
  in
  Alcotest.(check (list string)) "no violations" []
    (List.map V.to_string checked.ME.violations);
  Alcotest.(check int) "timing unchanged" plain.ME.end_time
    checked.ME.end_time;
  Alcotest.(check bool) "outputs unchanged" true
    (plain.ME.outputs = checked.ME.outputs)

(* ---------------- sanitizer: negative paths ---------------- *)

let test_arc_capacity_violation () =
  (* deliver twice into the same port without a consume: the
     one-token-per-arc invariant is broken *)
  let g, a, id, _ = tiny_pipeline () in
  let s = San.create g in
  Alcotest.(check bool) "first delivery is fine" true
    (San.on_deliver s ~time:1 ~src:a ~dst:id ~port:0 = None);
  (match San.on_deliver s ~time:2 ~src:a ~dst:id ~port:0 with
  | Some v ->
    Alcotest.(check bool) "kind arc-capacity" true (v.V.v_kind = V.Arc_capacity);
    Alcotest.(check bool) "fatal" true (V.fatal v.V.v_kind);
    Alcotest.(check int) "at the consumer" id v.V.v_node
  | None -> Alcotest.fail "second delivery must violate arc capacity");
  Alcotest.(check bool) "sanitizer tripped" true (San.tripped s)

let test_missing_ack_violation () =
  (* an acknowledge arriving at a cell that is owed none: the ack
     discipline is broken (e.g. a duplicated or misrouted ack) *)
  let g, a, _, _ = tiny_pipeline () in
  let s = San.create g in
  (match San.on_ack s ~time:3 ~dst:a with
  | Some v ->
    Alcotest.(check bool) "kind ack-underflow" true
      (v.V.v_kind = V.Ack_underflow);
    Alcotest.(check bool) "fatal" true (V.fatal v.V.v_kind)
  | None -> Alcotest.fail "unowed ack must violate");
  Alcotest.(check bool) "sanitizer tripped" true (San.tripped s)

let test_machine_dup_fault_caught () =
  (* duplicated result packets break the protocol; the sanitizer must
     record it (and the corrupted run must not silently equal clean) *)
  let g = figure2 () in
  let inputs = fig2_inputs 12 in
  let plan = FP.make { FP.none with FP.seed = 11; dup_prob = 1.0 } in
  let o = FD.machine ~plan g ~inputs in
  Alcotest.(check bool) "corruption detected" true
    (o.FD.faulted_violations <> []);
  Alcotest.(check bool) "a fatal kind was recorded" true
    (List.exists (fun v -> V.fatal v.V.v_kind) o.FD.faulted_violations)

let test_machine_drop_ack_conservation () =
  (* every ack lost: producers starve, the run wedges, and quiescence
     conservation reports the missing acknowledges *)
  let g = figure2 () in
  let inputs = fig2_inputs 6 in
  let plan = FP.make { FP.none with FP.seed = 13; drop_ack_prob = 1.0 } in
  let r =
    ME.run_cfg
      Run_config.(
        ME.default_config |> with_fault plan
        |> with_sanitizer (San.create g))
      ~arch:Machine.Arch.default g ~inputs
  in
  Alcotest.(check bool) "ack conservation violated" true
    (List.exists
       (fun v -> v.V.v_kind = V.Ack_conservation)
       r.ME.violations);
  match r.ME.stall with
  | None -> Alcotest.fail "starved producers must yield a stall report"
  | Some sr ->
    Alcotest.(check bool) "cells blocked on acks" true
      (List.exists
         (fun b -> b.SR.b_pending_acks > 0)
         sr.SR.sr_blocked)

let test_watchdog_no_progress () =
  (* with every packet delayed far beyond the window, the watchdog must
     stop the run and explain what it was waiting for *)
  let g = figure2 () in
  let inputs = fig2_inputs 8 in
  let plan = FP.make (FP.delays ~prob:1.0 ~max_delay:500 21) in
  let r =
    Engine.run_cfg
      Run_config.(default |> with_fault plan |> with_watchdog 4)
      g ~inputs
  in
  match r.Engine.stuck with
  | Some sr when sr.SR.sr_reason = SR.No_progress ->
    Alcotest.(check bool) "blocked cells listed" true (sr.SR.sr_blocked <> [])
  | Some sr ->
    Alcotest.failf "expected no-progress, got %s" (SR.reason_name sr.SR.sr_reason)
  | None -> Alcotest.fail "watchdog must produce a stall report"

let test_stall_report_cycle () =
  (* two primed cells waiting on each other: the wait-for graph has a
     cycle and the report should surface it *)
  let blocked =
    [
      { SR.b_node = 1; b_label = "x"; b_op = "ID"; b_missing = [ 0 ];
        b_held = []; b_pending_acks = 1; b_queue_len = 0; b_pending_inputs = 0 };
      { SR.b_node = 2; b_label = "y"; b_op = "ID"; b_missing = [ 0 ];
        b_held = []; b_pending_acks = 1; b_queue_len = 0; b_pending_inputs = 0 };
    ]
  in
  let sr =
    SR.make ~time:9 ~reason:SR.Deadlock ~blocked ~edges:[ (1, 2); (2, 1) ] ()
  in
  (match sr.SR.sr_cycle with
  | Some cycle -> Alcotest.(check bool) "cycle found" true (List.length cycle >= 2)
  | None -> Alcotest.fail "expected a wait-for cycle");
  Alcotest.(check bool) "to_string mentions the cycle" true
    (let s = SR.to_string sr in
     let rec has i =
       i + 14 <= String.length s && (String.sub s i 14 = "wait-for cycle" || has (i + 1))
     in
     has 0)

let spec_gen =
  let open QCheck.Gen in
  (* probabilities on a 1/20 grid keep the generator simple; %.17g
     printing round-trips any float exactly, so the grid is not load-
     bearing for the property *)
  let prob = map (fun i -> float_of_int i /. 20.0) (int_range 0 20) in
  let* seed = int_range 0 100_000 in
  let* delay_prob = prob in
  let* delay_max = int_range 1 64 in
  let* dup_prob = prob in
  let* drop_ack_prob = prob in
  let* drop_prob = prob in
  let* stall_prob = prob in
  let* stall_max = int_range 1 64 in
  let* fu_slow = int_range 0 9 in
  let* am_slow = int_range 0 9 in
  let* crash_pe = int_range (-1) 7 in
  let* crash_at = int_range 0 1000 in
  let* corrupt_prob = prob in
  let* corrupt_ctl_prob = prob in
  return
    { FP.seed; delay_prob; delay_max; dup_prob; drop_ack_prob; drop_prob;
      stall_prob; stall_max; fu_slow; am_slow; crash_pe; crash_at;
      corrupt_prob; corrupt_ctl_prob }

let test_plan_string_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"plan to_string/of_string round-trip"
       (QCheck.make spec_gen ~print:FP.to_string)
       (fun s ->
         match FP.of_string (FP.to_string s) with
         | Ok s' -> s' = s
         | Error e -> QCheck.Test.fail_report e))

let test_engine_deadlock_cycle () =
  (* two primed ID cells feeding each other: each holds the other's
     token, so neither is ever granted its acknowledges.  The machine
     must quiesce immediately and the stall report must surface the
     wait-for cycle — this drives the cycle detector through a real
     engine run, not a hand-built blocked list. *)
  let g = Graph.create () in
  let x = Graph.add g Opcode.Id [| Graph.In_arc_init (Value.Int 1) |] in
  let y = Graph.add g Opcode.Id [| Graph.In_arc_init (Value.Int 2) |] in
  Graph.connect g ~src:x ~dst:y ~port:0;
  Graph.connect g ~src:y ~dst:x ~port:0;
  let r = ME.run_cfg ME.default_config ~arch:Machine.Arch.default g ~inputs:[] in
  Alcotest.(check bool) "quiescent with work undone" true r.ME.quiescent;
  match r.ME.stall with
  | None -> Alcotest.fail "deadlocked machine must file a stall report"
  | Some sr ->
    Alcotest.(check bool) "reason deadlock" true (sr.SR.sr_reason = SR.Deadlock);
    Alcotest.(check int) "both cells blocked" 2 (List.length sr.SR.sr_blocked);
    (match sr.SR.sr_cycle with
    | Some cycle ->
      Alcotest.(check bool) "cycle covers both cells" true
        (List.sort compare cycle = [ x; y ]
        || List.length cycle >= 2)
    | None -> Alcotest.fail "wait-for cycle must be detected")

(* ---------------- determinism ---------------- *)

let test_machine_fault_determinism () =
  let g = figure2 () in
  let inputs = fig2_inputs 20 in
  let plan =
    FP.make
      { FP.seed = 77; delay_prob = 0.3; delay_max = 6; dup_prob = 0.0;
        drop_ack_prob = 0.0; drop_prob = 0.0; stall_prob = 0.2; stall_max = 5;
        fu_slow = 2; am_slow = 3; crash_pe = -1; crash_at = 0;
        corrupt_prob = 0.0; corrupt_ctl_prob = 0.0 }
  in
  let run () =
    ME.run_cfg
      Run_config.(
        ME.default_config |> with_fault plan
        |> with_sanitizer (San.create g))
      ~arch:Machine.Arch.default g ~inputs
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "end_time identical" r1.ME.end_time r2.ME.end_time;
  Alcotest.(check bool) "stats identical" true (r1.ME.stats = r2.ME.stats);
  Alcotest.(check bool) "outputs identical" true (r1.ME.outputs = r2.ME.outputs);
  Alcotest.(check int) "violations identical"
    (List.length r1.ME.violations)
    (List.length r2.ME.violations)

let test_am_fraction_nan () =
  let empty =
    { ME.dispatches = 0; fu_ops = 0; am_ops = 0; result_packets = 0;
      ack_packets = 0; retransmits = 0; corruptions = 0; corrupt_detected = 0;
      corrupt_healed = 0; pe_dispatches = [||] }
  in
  Alcotest.(check bool) "empty run has no AM fraction" true
    (Float.is_nan (ME.am_fraction empty));
  Alcotest.(check (float 1e-9)) "normal case unchanged" 0.25
    (ME.am_fraction { empty with ME.dispatches = 3; am_ops = 1 })

(* ---------------- the paper's property, kernel by kernel ---------------- *)

let test_kernels_latency_insensitive () =
  (* every kernel, 10 seeded delay-fault runs: output streams must be
     identical to the clean run (Section 3's acknowledge discipline
     makes the pipeline a Kahn network) *)
  let module D = Compiler.Driver in
  let module PC = Compiler.Program_compile in
  let module K = Kernels in
  let n = 12 and waves = 2 in
  let replicate xs = List.concat_map (fun _ -> xs) (List.init waves Fun.id) in
  List.iter
    (fun (k : K.kernel) ->
      let st = Random.State.make [| Hashtbl.hash k.K.name |] in
      let _, compiled =
        D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source n)
      in
      let kernel_inputs = k.K.inputs n st in
      let feeds =
        List.map
          (fun (name, _) ->
            (name, replicate (List.assoc name kernel_inputs)))
          compiled.PC.cp_inputs
      in
      List.iter
        (fun seed ->
          let plan = FP.make (FP.delays ~prob:0.3 ~max_delay:7 seed) in
          let o = FD.sim ~plan compiled.PC.cp_graph ~inputs:feeds in
          if not o.FD.equal then
            Alcotest.failf "%s seed %d: %s" k.K.name seed
              (FD.mismatch_to_string (List.hd o.FD.mismatches));
          Alcotest.(check (list string))
            (Printf.sprintf "%s seed %d sanitizer clean" k.K.name seed)
            []
            (List.map V.to_string o.FD.faulted_violations))
        (List.init 10 (fun i -> 1000 + (97 * i))))
    K.all

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "plan decisions deterministic" `Quick
      test_plan_decisions_deterministic;
    Alcotest.test_case "plan of_string" `Quick test_plan_of_string;
    Alcotest.test_case "sanitizer clean sim run" `Quick
      test_sanitizer_clean_run;
    Alcotest.test_case "sanitizer clean machine run" `Quick
      test_sanitizer_clean_machine_run;
    Alcotest.test_case "arc capacity violation" `Quick
      test_arc_capacity_violation;
    Alcotest.test_case "missing ack violation" `Quick
      test_missing_ack_violation;
    Alcotest.test_case "machine dup fault caught" `Quick
      test_machine_dup_fault_caught;
    Alcotest.test_case "machine drop-ack conservation" `Quick
      test_machine_drop_ack_conservation;
    Alcotest.test_case "watchdog no-progress report" `Quick
      test_watchdog_no_progress;
    Alcotest.test_case "stall report wait-for cycle" `Quick
      test_stall_report_cycle;
    test_plan_string_round_trip;
    Alcotest.test_case "engine-driven deadlock cycle" `Quick
      test_engine_deadlock_cycle;
    Alcotest.test_case "machine fault determinism" `Quick
      test_machine_fault_determinism;
    Alcotest.test_case "am_fraction nan on empty run" `Quick
      test_am_fraction_nan;
    Alcotest.test_case "kernels latency-insensitive under delay faults"
      `Quick test_kernels_latency_insensitive;
  ]
