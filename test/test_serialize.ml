(* Textual (.dfg) serialization round trips, including through the
   compiler output for the paper's Figure 3 program. *)

open Dfg
module D = Compiler.Driver
module PC = Compiler.Program_compile

let graphs_equal g1 g2 =
  Graph.node_count g1 = Graph.node_count g2
  && begin
       let ok = ref true in
       Graph.iter_nodes g1 (fun n1 ->
           let n2 = Graph.node g2 n1.Graph.id in
           if n1.Graph.op <> n2.Graph.op then ok := false;
           if n1.Graph.label <> n2.Graph.label then ok := false;
           if n1.Graph.inputs <> n2.Graph.inputs then ok := false;
           let dests n =
             Array.map
               (fun ds ->
                 List.sort compare
                   (List.map
                      (fun { Graph.ep_node; ep_port } -> (ep_node, ep_port))
                      ds))
               n.Graph.dests
           in
           if dests n1 <> dests n2 then ok := false);
       !ok
     end

let test_roundtrip_fig3 () =
  let _, cp = D.compile_source (Test_machine.fig3_source 10) in
  let g = cp.PC.cp_graph in
  let text = Text.to_string g in
  let g' = Text.of_string text in
  Alcotest.(check bool) "round trip equal" true (graphs_equal g g')

let test_roundtrip_expanded () =
  (* macro-expanded graphs contain init tokens and counters *)
  let options = { PC.default_options with PC.expand_macros = true } in
  let _, cp = D.compile_source ~options (Test_machine.fig3_source 8) in
  let g = cp.PC.cp_graph in
  let g' = Text.of_string (Text.to_string g) in
  Alcotest.(check bool) "round trip equal" true (graphs_equal g g')

let test_reloaded_graph_runs () =
  let m = 9 in
  let prog, cp = D.compile_source (Test_machine.fig3_source m) in
  let g' = Text.of_string (Text.to_string cp.PC.cp_graph) in
  let st = Random.State.make [| 4 |] in
  let wave () =
    List.init (m + 2) (fun _ -> Value.Real (Random.State.float st 0.8))
  in
  let inputs = [ ("C", wave ()); ("B", wave ()) ] in
  let r1 = Sim.Engine.run_cfg Run_config.default cp.PC.cp_graph ~inputs in
  let r2 = Sim.Engine.run_cfg Run_config.default g' ~inputs in
  ignore prog;
  List.iter
    (fun name ->
      Alcotest.(check (list (float 1e-12)))
        (name ^ " identical after reload")
        (List.map Value.to_real (Sim.Engine.output_values r1 name))
        (List.map Value.to_real (Sim.Engine.output_values r2 name)))
    [ "A"; "X" ]

let test_exact_real_roundtrip () =
  (* hexadecimal floats survive exactly, including awkward values *)
  List.iter
    (fun f ->
      let g = Graph.create () in
      let a = Graph.add g (Opcode.Input "a") [||] in
      let add =
        Graph.add g (Opcode.Arith Opcode.Add)
          [| Graph.In_arc; Graph.In_const (Value.Real f) |]
      in
      let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
      Graph.connect g ~src:a ~dst:add ~port:0;
      Graph.connect g ~src:add ~dst:out ~port:0;
      let g' = Text.of_string (Text.to_string g) in
      match (Graph.node g' 1).Graph.inputs.(1) with
      | Graph.In_const (Value.Real f') ->
        Alcotest.(check bool)
          (Printf.sprintf "%h round trips" f)
          true
          (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | _ -> Alcotest.fail "constant lost")
    [ 0.1; -0.0; 1e-300; Float.pi; 3.0000000000000004 ]

let test_parse_errors () =
  let expect s =
    match Text.of_string s with
    | _ -> Alcotest.failf "expected parse error for %S" s
    | exception Text.Parse_error _ -> ()
  in
  expect "";
  expect "not a header";
  expect "dfg 1 cells=1\ncell 0 BOGUS \"x\" in=[] out=[]";
  expect "dfg 1 cells=1\ncell 5 ID \"x\" in=[arc] out=[]";
  expect "dfg 1 cells=1\ncell 0 FIFO(0) \"x\" in=[arc] out=[]";
  expect "dfg 1 cells=1\ncell 0 ID \"x\" in=[mystery] out=[]"

let suite =
  [
    Alcotest.test_case "round trip figure 3" `Quick test_roundtrip_fig3;
    Alcotest.test_case "round trip macro-expanded" `Quick
      test_roundtrip_expanded;
    Alcotest.test_case "reloaded graph simulates identically" `Quick
      test_reloaded_graph_runs;
    Alcotest.test_case "exact real round trip" `Quick
      test_exact_real_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
  ]
