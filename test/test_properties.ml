(* Property-based tests (qcheck): random primitive expressions compiled
   and simulated must agree with the Val interpreter; structure round
   trips; data-structure invariants. *)

open Dfg
module A = Val_lang.Ast
module D = Compiler.Driver
module R = Compiler.Recurrence

(* ------------------------------------------------------------------ *)
(* Random primitive expressions                                         *)
(* ------------------------------------------------------------------ *)

(* Real-valued primitive expressions over index variable [i], arrays
   A and B (selectable with offsets -1..1), and let-bound locals.
   Division is excluded to keep values finite and comparisons exact. *)
let gen_expr =
  let open QCheck.Gen in
  let lit = map (fun f -> A.Real_lit (Float.of_int f /. 4.0)) (int_range 0 8) in
  let select =
    map2
      (fun name off -> A.Select (name, [ A.Ix_var ("i", off) ]))
      (oneofl [ "A"; "B" ])
      (int_range (-1) 1)
  in
  let arith = oneofl [ A.Add; A.Sub; A.Mul; A.Min; A.Max ] in
  let cmp = oneofl [ A.Lt; A.Le; A.Gt; A.Ge ] in
  let rec real ~locals n =
    if n <= 0 then
      oneof
        (lit :: select
        :: (if locals = [] then []
            else [ map (fun v -> A.Var v) (oneofl locals) ]))
    else
      frequency
        [
          (2, lit);
          (4, select);
          (4, map3 (fun op a b -> A.Binop (op, a, b)) arith
                (real ~locals (n / 2))
                (real ~locals (n / 2)));
          (1, map (fun a -> A.Unop (A.Neg, a)) (real ~locals (n - 1)));
          ( 2,
            map3
              (fun c t e -> A.If (c, t, e))
              (boolean ~locals (n / 2))
              (real ~locals (n / 2))
              (real ~locals (n / 2)) );
          ( 1,
            let v = Printf.sprintf "v%d" n in
            map2
              (fun rhs body ->
                A.Let ([ { A.def_name = v; def_type = None; def_rhs = rhs } ], body))
              (real ~locals (n / 2))
              (real ~locals:(v :: locals) (n / 2)) );
          ( 1,
            (* index arithmetic promoted into the real expression *)
            map
              (fun a -> A.Binop (A.Mul, a, A.Binop (A.Add, A.Var "i", A.Int_lit 1)))
              (real ~locals (n / 2)) );
        ]
  and boolean ~locals n =
    let static_cond =
      map2
        (fun op k -> A.Binop (op, A.Var "i", A.Int_lit k))
        cmp (int_range 0 12)
    in
    if n <= 0 then static_cond
    else
      frequency
        [
          ( 4,
            map3 (fun op a b -> A.Binop (op, a, b)) cmp
              (real ~locals (n / 2))
              (real ~locals (n / 2)) );
          (2, static_cond);
          ( 1,
            map2 (fun a b -> A.Binop (A.And, a, b))
              (boolean ~locals (n / 2))
              (boolean ~locals (n / 2)) );
          ( 1,
            map2 (fun a b -> A.Binop (A.Or, a, b))
              (boolean ~locals (n / 2))
              (boolean ~locals (n / 2)) );
          (1, map (fun a -> A.Unop (A.Not, a)) (boolean ~locals (n - 1)));
        ]
  in
  QCheck.Gen.sized_size (QCheck.Gen.int_range 1 6) (fun n -> real ~locals:[] n)

let arbitrary_expr =
  QCheck.make gen_expr ~print:Val_lang.Pretty.expr_to_string

let forall_program body =
  let n = 12 in
  Printf.sprintf
    {|
param n = %d;
input A : array[real] [0, n+1];
input B : array[real] [0, n+1];
R : array[real] := forall i in [1, n] construct %s endall;
|}
    n
    (Val_lang.Pretty.expr_to_string body)

let prop_compiled_matches_interpreter =
  QCheck.Test.make ~count:40 ~name:"compiled forall = interpreter"
    arbitrary_expr (fun body ->
      let source = forall_program body in
      let st = Random.State.make [| Hashtbl.hash source |] in
      let wave () =
        D.wave_of_floats
          (List.init 14 (fun _ -> Random.State.float st 2.0 -. 1.0))
      in
      let inputs = [ ("A", wave ()); ("B", wave ()) ] in
      let prog, compiled = D.compile_source source in
      let result = D.run ~waves:2 compiled ~inputs in
      match D.check_against_oracle prog compiled result ~inputs with
      | () -> true
      | exception D.Mismatch msg -> QCheck.Test.fail_report msg)

let prop_pretty_parse_roundtrip =
  QCheck.Test.make ~count:100 ~name:"pretty/parse round trip"
    arbitrary_expr (fun e ->
      let printed = Val_lang.Pretty.expr_to_string e in
      match Val_lang.Parser.parse_expr printed with
      | e' ->
        if e = e' then true
        else
          QCheck.Test.fail_report
            (Printf.sprintf "reparse differs: %s" printed)
      | exception Val_lang.Parser.Parse_error (msg, _, _) ->
        QCheck.Test.fail_report (Printf.sprintf "%s: %s" msg printed))

(* ------------------------------------------------------------------ *)
(* Random affine recurrences: Todd = companion = interpreter            *)
(* ------------------------------------------------------------------ *)

let gen_coef =
  (* keep |P| <= ~0.9 so recurrences stay numerically tame *)
  QCheck.Gen.oneofl
    [ "0.5 * A[i]"; "A[i] - 0.1"; "0.25"; "min(A[i], 0.75)"; "-0.5 * A[i]" ]

let gen_shift =
  QCheck.Gen.oneofl
    [ "B[i]"; "B[i] + 0.5"; "2. * B[i] - A[i]"; "0.125"; "max(B[i], 0.)" ]

let arbitrary_recurrence =
  (* a recurrence with both coefficients constant has no input stream to
     pace the loop — legitimately rejected by the compiler, so the
     generator avoids the combination *)
  let gen =
    QCheck.Gen.map
      (fun (p, q) -> if p = "0.25" && q = "0.125" then (p, "B[i]") else (p, q))
      QCheck.Gen.(pair gen_coef gen_shift)
  in
  QCheck.make gen
    ~print:(fun (p, q) -> Printf.sprintf "x[i] = (%s)*x[i-1] + (%s)" p q)

let recurrence_program (p, q) =
  Printf.sprintf
    {|
param m = 17;
input A : array[real] [0, m];
input B : array[real] [0, m];
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := (%s) * T[i-1] + (%s)
    in
      if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
    p q

let prop_schemes_agree =
  QCheck.Test.make ~count:15 ~name:"todd = companion = interpreter"
    arbitrary_recurrence (fun pq ->
      let source = recurrence_program pq in
      let st = Random.State.make [| Hashtbl.hash source |] in
      let wave () =
        D.wave_of_floats
          (List.init 18 (fun _ -> Random.State.float st 2.0 -. 1.0))
      in
      let inputs = [ ("A", wave ()); ("B", wave ()) ] in
      let run scheme =
        let options =
          { Compiler.Program_compile.default_options with
            Compiler.Program_compile.scheme }
        in
        let prog, compiled = D.compile_source ~options source in
        let result = D.run ~waves:2 compiled ~inputs in
        D.check_against_oracle prog compiled result ~inputs;
        List.map Value.to_real (D.output_wave compiled result "X")
      in
      match
        (run Compiler.Foriter_compile.Todd,
         run Compiler.Foriter_compile.Companion)
      with
      | todd, companion ->
        List.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-9) todd companion
      | exception D.Mismatch msg -> QCheck.Test.fail_report msg)

(* ------------------------------------------------------------------ *)
(* Random pipe-structured programs (Theorem 4)                          *)
(* ------------------------------------------------------------------ *)

(* 2-4 chained blocks, each either a forall over the previous block (with
   shrinking range so windows stay legal) or an affine for-iter consuming
   it.  The whole program is compiled, simulated for two waves, and
   compared with the interpreter. *)
let gen_pipe_program =
  let open QCheck.Gen in
  let forall_body prev var =
    oneofl
      [
        Printf.sprintf "0.5 * (%s[%s-1] + %s[%s+1])" prev var prev var;
        Printf.sprintf "%s[%s] - 0.25 * %s[%s-1]" prev var prev var;
        Printf.sprintf
          "if %s[%s] < 0. then -(%s[%s]) else %s[%s] * 0.5 endif" prev var
          prev var prev var;
        Printf.sprintf "min(%s[%s+1], 1.) + 0.125" prev var;
      ]
  in
  let block_count = int_range 2 4 in
  map2
    (fun count choices ->
      let buf = Buffer.create 256 in
      let n0 = 20 in
      Buffer.add_string buf
        (Printf.sprintf
           "param n = %d;
input A0 : array[real] [0, n];
" n0);
      (* each block consumes the interior of its producer's range and
         records the range it actually constructs *)
      let rec build k lo hi prev =
        if k > count || hi - lo < 6 then prev
        else begin
          let name = Printf.sprintf "A%d" k in
          let choice = List.nth choices ((k - 1) mod List.length choices) in
          let produced_lo, produced_hi =
            match choice with
            | `Forall body_of ->
              Buffer.add_string buf
                (Printf.sprintf
                   "%s : array[real] := forall i in [%d, %d] construct %s endall;\n"
                   name (lo + 1) (hi - 1)
                   (body_of prev "i"));
              (lo + 1, hi - 1)
            | `Foriter ->
              (* counter lo+1 .. hi-2; the definition part also reads
                 prev[hi-1] on the terminating cycle, still in range *)
              Buffer.add_string buf
                (Printf.sprintf
                   "%s : array[real] := for i : integer := %d; T : array[real] := [%d: 0] do let p : real := 0.5 * T[i-1] + %s[i] in if i < %d then iter T := T[i: p]; i := i + 1 enditer else T endif endlet endfor;\n"
                   name (lo + 1) lo prev (hi - 1));
              (lo, hi - 2)
          in
          build (k + 1) produced_lo produced_hi name
        end
      in
      let _last = build 1 0 n0 "A0" in
      Buffer.contents buf)
    block_count
    (list_size (int_range 2 4)
       (oneofl
          [ `Forall (fun prev var -> QCheck.Gen.generate1 (forall_body prev var));
            `Foriter ]))

let arbitrary_pipe_program =
  QCheck.make gen_pipe_program ~print:(fun s -> s)

let prop_random_pipe_programs =
  QCheck.Test.make ~count:25 ~name:"random pipe programs = interpreter"
    arbitrary_pipe_program (fun source ->
      let st = Random.State.make [| Hashtbl.hash source |] in
      let inputs =
        [ ("A0",
           D.wave_of_floats
             (List.init 21 (fun _ -> Random.State.float st 1.6 -. 0.8))) ]
      in
      match
        let prog, compiled = D.compile_source source in
        let result = D.run ~waves:2 compiled ~inputs in
        D.check_against_oracle prog compiled result ~inputs
      with
      | () -> true
      | exception D.Mismatch msg -> QCheck.Test.fail_report msg)

(* ------------------------------------------------------------------ *)
(* Serialization round trip on compiled graphs                          *)
(* ------------------------------------------------------------------ *)

let prop_serialize_roundtrip =
  QCheck.Test.make ~count:25 ~name:"compiled graph .dfg round trip"
    arbitrary_expr (fun body ->
      let source = forall_program body in
      let _, compiled = D.compile_source source in
      let g = compiled.Compiler.Program_compile.cp_graph in
      let g' = Dfg.Text.of_string (Dfg.Text.to_string g) in
      if Graph.node_count g <> Graph.node_count g' then
        QCheck.Test.fail_report "node count changed"
      else begin
        (* both graphs must simulate identically *)
        let st = Random.State.make [| Hashtbl.hash source |] in
        let wave () =
          D.wave_of_floats
            (List.init 14 (fun _ -> Random.State.float st 2.0 -. 1.0))
        in
        let inputs = [ ("A", wave ()); ("B", wave ()) ] in
        let r1 = Sim.Engine.run_cfg Run_config.default g ~inputs in
        let r2 = Sim.Engine.run_cfg Run_config.default g' ~inputs in
        let vals r = List.map Value.to_real (Sim.Engine.output_values r "R") in
        if vals r1 = vals r2 then true
        else QCheck.Test.fail_report "reloaded graph computes differently"
      end)

(* ------------------------------------------------------------------ *)
(* 2-D forall properties                                                *)
(* ------------------------------------------------------------------ *)

let gen_2d_body =
  QCheck.Gen.oneofl
    [
      "0.25 * (G[i-1, j] + G[i+1, j] + G[i, j-1] + G[i, j+1])";
      "G[i, j] - 0.125 * G[i-1, j-1]";
      "max(G[i+1, j+1], G[i-1, j-1]) * 0.5";
      "if G[i, j] < 0. then -(G[i, j]) else G[i, j] + (i + j) * 0.01 endif";
      "if i < 4 then G[i, j] else G[i-1, j] * 0.5 endif";
    ]

let prop_2d_forall =
  QCheck.Test.make ~count:15 ~name:"2-D forall = interpreter"
    (QCheck.make gen_2d_body ~print:(fun s -> s))
    (fun body ->
      let n = 7 in
      let source =
        Printf.sprintf
          {|
param n = %d;
input G : array[real] [0, n] [0, n];
H : array[real] := forall i in [1, n-1], j in [1, n-1] construct %s endall;
|}
          n body
      in
      let st = Random.State.make [| Hashtbl.hash source |] in
      let inputs =
        [ ("G",
           D.wave_of_floats
             (List.init ((n + 1) * (n + 1)) (fun _ ->
                  Random.State.float st 2.0 -. 1.0))) ]
      in
      match
        let prog, compiled = D.compile_source source in
        let result = D.run ~waves:2 compiled ~inputs in
        D.check_against_oracle prog compiled result ~inputs
      with
      | () -> true
      | exception D.Mismatch msg -> QCheck.Test.fail_report msg)

(* ------------------------------------------------------------------ *)
(* Data-structure invariants                                            *)
(* ------------------------------------------------------------------ *)

let prop_dfg_parser_total =
  (* byte-level mutations of a valid .dfg either reparse (rarely) or fail
     with Parse_error — never any other exception *)
  QCheck.Test.make ~count:150 ~name:".dfg parser is total"
    QCheck.(pair small_nat (int_bound 255))
    (fun (pos, byte) ->
      let base =
        let _, cp = D.compile_source (forall_program (A.Real_lit 1.0)) in
        Dfg.Text.to_string cp.Compiler.Program_compile.cp_graph
      in
      let b = Bytes.of_string base in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr byte);
      match Dfg.Text.of_string (Bytes.to_string b) with
      | _ -> true
      | exception Dfg.Text.Parse_error _ -> true
      | exception other ->
        QCheck.Test.fail_report
          (Printf.sprintf "unexpected exception %s"
             (Printexc.to_string other)))

let prop_pqueue_sorts =
  QCheck.Test.make ~count:200 ~name:"pqueue drains in priority order"
    QCheck.(list (int_bound 1000))
    (fun xs ->
      let q = Df_util.Pqueue.create () in
      List.iter (fun x -> Df_util.Pqueue.push q x x) xs;
      let rec drain acc =
        match Df_util.Pqueue.pop q with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let prop_ctlseq_nth_vs_list =
  QCheck.Test.make ~count:200 ~name:"ctlseq nth agrees with to_list"
    QCheck.(pair (list (pair bool (int_bound 5))) bool)
    (fun (runs, cyclic) ->
      let total = List.fold_left (fun a (_, c) -> a + c) 0 runs in
      QCheck.assume (total > 0);
      let seq = Ctlseq.make ~cyclic runs in
      let listed = Ctlseq.to_list seq ~periods:2 in
      List.for_all2
        (fun k v -> Ctlseq.nth seq k = Some v)
        (List.init (List.length listed) Fun.id)
        listed)

let prop_companion_associative =
  QCheck.Test.make ~count:300 ~name:"companion function associativity"
    QCheck.(triple (pair (float_bound_exclusive 2.) (float_bound_exclusive 2.))
              (pair (float_bound_exclusive 2.) (float_bound_exclusive 2.))
              (pair (float_bound_exclusive 2.) (float_bound_exclusive 2.)))
    (fun (a, b, c) ->
      let x1, y1 = R.companion_apply (R.companion_apply a b) c in
      let x2, y2 = R.companion_apply a (R.companion_apply b c) in
      Float.abs (x1 -. x2) <= 1e-9 && Float.abs (y1 -. y2) <= 1e-9)

let prop_balancer_duality =
  QCheck.Test.make ~count:20 ~name:"optimal balancing = dual bound"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g = Test_balance.random_dag ~seed ~layers:4 ~width:4 in
      let optimal =
        Balance.Balancer.buffer_cost g (Balance.Balancer.optimal_levels g)
      in
      let naive =
        Balance.Balancer.buffer_cost g (Balance.Balancer.naive_levels g)
      in
      optimal = Balance.Balancer.dual_lower_bound g && optimal <= naive)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_compiled_matches_interpreter;
      prop_pretty_parse_roundtrip;
      prop_schemes_agree;
      prop_random_pipe_programs;
      prop_serialize_roundtrip;
      prop_2d_forall;
      prop_dfg_parser_total;
      prop_pqueue_sorts;
      prop_ctlseq_nth_vs_list;
      prop_companion_associative;
      prop_balancer_duality;
    ]
