(* lib/integrity + corruption-fault tests: checksum units, typed
   corruption decisions, the detect -> discard -> retransmit -> heal
   pipeline (the tentpole: a corrupted protected run must be
   bit-identical to the clean run), the unprotected-run diagnosis,
   checkpoint rot-detection, and the fault-plan shrinker. *)

open Dfg
module ME = Machine.Machine_engine
module FP = Fault.Fault_plan
module San = Fault.Sanitizer
module V = Fault.Violation
module FD = Fault_diff
module CP = Recover.Checkpoint
module Shrink = Fault.Shrink
module I = Integrity

let ints xs = List.map (fun i -> Value.Int i) xs

let figure2 () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let b = Graph.add g (Opcode.Input "b") [||] in
  let add =
    Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:a ~dst:add ~port:0;
  Graph.connect g ~src:b ~dst:add ~port:1;
  let mul =
    Graph.add g (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_const (Value.Int 3) |]
  in
  Graph.connect g ~src:add ~dst:mul ~port:0;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:mul ~dst:out ~port:0;
  g

let fig2_inputs n =
  [ ("a", ints (List.init n Fun.id)); ("b", ints (List.init n (fun i -> 10 * i))) ]

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------------- checksums ---------------- *)

let test_checksum_values () =
  let vals =
    [ Value.Int 0; Value.Int 1; Value.Int (-1); Value.Bool true;
      Value.Bool false; Value.Real 0.0; Value.Real (-0.0); Value.Real 1.5;
      Value.Real nan ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) "checksum is stable" true
        (I.checksum_value v = I.checksum_value v);
      Alcotest.(check bool) "checksum verifies its own value" true
        (I.verify_value v (I.checksum_value v));
      Alcotest.(check bool) "checksum is non-negative" true
        (I.checksum_value v >= 0))
    vals;
  (* type tagging: same bit pattern, different type, different sum *)
  Alcotest.(check bool) "Int 1 <> Bool true" true
    (I.checksum_value (Value.Int 1) <> I.checksum_value (Value.Bool true));
  Alcotest.(check bool) "Int 0 <> Real +0.0" true
    (I.checksum_value (Value.Int 0) <> I.checksum_value (Value.Real 0.0));
  (* -0.0 and +0.0 compare equal as values but are different bits: the
     checksum is over the wire representation, so they differ *)
  Alcotest.(check bool) "-0.0 <> +0.0 on the wire" true
    (I.checksum_value (Value.Real 0.0) <> I.checksum_value (Value.Real (-0.0)));
  Alcotest.(check bool) "a flipped bit is detected" false
    (I.verify_value (Value.Int 5) (I.checksum_value (Value.Int 4)))

let test_digest_ignores_times () =
  let early = [ ("r", [ (1, Value.Int 7); (2, Value.Int 8) ]) ] in
  let late = [ ("r", [ (90, Value.Int 7); (940, Value.Int 8) ]) ] in
  Alcotest.(check int) "same values, different times: same digest"
    (I.digest_outputs early) (I.digest_outputs late);
  let other = [ ("r", [ (1, Value.Int 7); (2, Value.Int 9) ]) ] in
  Alcotest.(check bool) "different values: different digest" true
    (I.digest_outputs early <> I.digest_outputs other);
  let renamed = [ ("s", [ (1, Value.Int 7); (2, Value.Int 8) ]) ] in
  Alcotest.(check bool) "different stream name: different digest" true
    (I.digest_outputs early <> I.digest_outputs renamed)

(* ---------------- corruption decisions ---------------- *)

let test_corrupt_result_typed () =
  let always =
    FP.make { FP.none with FP.seed = 3; corrupt_prob = 1.0; corrupt_ctl_prob = 1.0 }
  in
  let never = FP.make { FP.none with FP.seed = 3 } in
  let data_only =
    FP.make { FP.none with FP.seed = 3; corrupt_prob = 1.0 }
  in
  let site = (fun p v -> FP.corrupt_result p ~time:10 ~src:1 ~dst:2 ~port:0 v) in
  List.iter
    (fun v ->
      (match site always v with
      | None -> Alcotest.failf "prob 1.0 must corrupt %s" (Value.to_string v)
      | Some v' ->
        Alcotest.(check bool) "corrupted value is value-visible" false
          (Value.equal v v'));
      Alcotest.(check bool) "prob 0 never corrupts" true (site never v = None))
    [ Value.Int 41; Value.Real 2.5; Value.Real (-0.0); Value.Bool true ];
  (* booleans ride the control probability, not the data one *)
  Alcotest.(check bool) "data-only plan leaves booleans alone" true
    (site data_only (Value.Bool false) = None);
  Alcotest.(check bool) "data-only plan corrupts ints" true
    (site data_only (Value.Int 7) <> None);
  (* decisions are pure functions of the site key *)
  Alcotest.(check bool) "same site, same corruption" true
    (site always (Value.Int 41) = site always (Value.Int 41));
  (* the real-valued flip spares the sign bit, so it can never hide in
     the -0.0 = +0.0 equivalence and never flips the sign *)
  List.iter
    (fun t ->
      match
        FP.corrupt_result always ~time:t ~src:1 ~dst:2 ~port:0 (Value.Real 3.5)
      with
      | Some (Value.Real r) ->
        Alcotest.(check bool) "sign preserved" true (r > 0.0 || Float.is_nan r)
      | _ -> Alcotest.fail "real corruption must yield a real")
    (List.init 50 Fun.id)

(* ---------------- detect -> heal on the machine ---------------- *)

let test_detect_and_heal_bit_identical () =
  (* acceptance demo: corruption + integrity + recovery ends with
     outputs bit-identical to the clean run, and the trace shows at
     least one injected/detected/healed triple *)
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let arch = Machine.Arch.default in
  let clean = ME.run_cfg ME.default_config ~arch g ~inputs in
  let plan =
    FP.make { FP.none with FP.seed = 11; corrupt_prob = 0.15 }
  in
  let tracer = Obs.Tracer.create () in
  let m =
    ME.create_cfg
      Run_config.(
        default |> with_max_time ME.default_max_time |> with_tracer tracer
        |> with_fault plan |> with_sanitizer (San.create g)
        |> with_recovery ME.default_recovery |> with_integrity true)
      ~arch g ~inputs
  in
  ME.advance m ~until:max_int;
  let r = ME.result m in
  Alcotest.(check bool) "outputs bit-identical to clean" true
    (List.map (fun (n, vs) -> (n, List.map snd vs)) r.ME.outputs
    = List.map (fun (n, vs) -> (n, List.map snd vs)) clean.ME.outputs);
  Alcotest.(check (list string)) "sanitizer clean" []
    (List.map V.to_string r.ME.violations);
  let s = r.ME.stats in
  Alcotest.(check bool) "corruptions injected" true (s.ME.corruptions > 0);
  Alcotest.(check int) "every corruption detected" s.ME.corruptions
    s.ME.corrupt_detected;
  Alcotest.(check bool) "at least one heal" true (s.ME.corrupt_healed > 0);
  let count p = List.length (List.filter p (Obs.Tracer.events tracer)) in
  let injected =
    count (function Obs.Event.Corrupt_injected _ -> true | _ -> false)
  in
  let detected =
    count (function Obs.Event.Corrupt_detected _ -> true | _ -> false)
  in
  let healed =
    count (function Obs.Event.Corrupt_healed _ -> true | _ -> false)
  in
  Alcotest.(check int) "trace injected = stats" s.ME.corruptions injected;
  Alcotest.(check int) "trace detected = stats" s.ME.corrupt_detected detected;
  Alcotest.(check int) "trace healed = stats" s.ME.corrupt_healed healed;
  (* every heal names a channel some detection named first *)
  let detections =
    List.filter_map
      (function
        | Obs.Event.Corrupt_detected { dst; port; seq; _ } ->
          Some (dst, port, seq)
        | _ -> None)
      (Obs.Tracer.events tracer)
  in
  List.iter
    (function
      | Obs.Event.Corrupt_healed { dst; port; seq; _ } ->
        Alcotest.(check bool) "heal matches a detection" true
          (List.mem (dst, port, seq) detections)
      | _ -> ())
    (Obs.Tracer.events tracer)

let test_unprotected_corruption_diagnosed () =
  (* integrity off: the corrupted value flows to the output, the
     differential mismatches, and the outcome names corruption as the
     cause instead of presenting a bare diff *)
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let plan =
    FP.make { FP.none with FP.seed = 11; corrupt_prob = 0.15 }
  in
  let o = FD.machine ~watchdog:400 ~plan g ~inputs in
  Alcotest.(check bool) "outputs diverge" false o.FD.equal;
  Alcotest.(check bool) "digests diverge" true
    (o.FD.clean_digest <> o.FD.faulted_digest);
  Alcotest.(check (list string)) "no protocol violation to blame" []
    (List.map V.to_string o.FD.faulted_violations);
  match o.FD.diagnosis with
  | None -> Alcotest.fail "corruption mismatch must carry a diagnosis"
  | Some d ->
    Alcotest.(check bool) "names corruption" true (contains d "corruption");
    Alcotest.(check bool) "names the stream" true (contains d "r[");
    Alcotest.(check bool) "points at the fix" true (contains d "integrity")

let test_protected_has_no_diagnosis () =
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let plan =
    FP.make { FP.none with FP.seed = 11; corrupt_prob = 0.15 }
  in
  let o =
    FD.machine ~watchdog:1000 ~recovery:ME.default_recovery ~integrity:true
      ~plan g ~inputs
  in
  Alcotest.(check bool) "protected run equal" true o.FD.equal;
  Alcotest.(check int) "digests agree" o.FD.clean_digest o.FD.faulted_digest;
  Alcotest.(check bool) "no diagnosis on a healthy run" true
    (o.FD.diagnosis = None)

let test_kernels_corruption_differential () =
  (* every kernel, 10 seeded corruption+delay plans, fully protected:
     outputs must be bit-identical to clean with zero violations *)
  let module D = Compiler.Driver in
  let module PC = Compiler.Program_compile in
  let module K = Kernels in
  let n = 8 and waves = 2 in
  let recovery = ME.default_recovery in
  let watchdog =
    100 + (4 * FP.none.FP.delay_max) + (17 * recovery.ME.retransmit_after)
  in
  let total_corruptions = ref 0 and total_healed = ref 0 in
  List.iter
    (fun (k : K.kernel) ->
      let st = Random.State.make [| Hashtbl.hash k.K.name |] in
      let _, compiled =
        D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source n)
      in
      let kernel_inputs = k.K.inputs n st in
      let feeds =
        List.map
          (fun (name, _) ->
            ( name,
              List.concat
                (List.init waves (fun _ -> List.assoc name kernel_inputs)) ))
          compiled.PC.cp_inputs
      in
      List.iter
        (fun seed ->
          let plan =
            FP.make
              { FP.none with
                FP.seed;
                delay_prob = 0.1;
                corrupt_prob = 0.05;
                corrupt_ctl_prob = 0.05;
              }
          in
          let o =
            FD.machine ~watchdog ~recovery ~integrity:true ~plan
              compiled.PC.cp_graph ~inputs:feeds
          in
          if not o.FD.equal then
            Alcotest.failf "%s seed %d: %s" k.K.name seed
              (FD.mismatch_to_string (List.hd o.FD.mismatches));
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d digest" k.K.name seed)
            o.FD.clean_digest o.FD.faulted_digest;
          Alcotest.(check (list string))
            (Printf.sprintf "%s seed %d sanitizer clean" k.K.name seed)
            []
            (List.map V.to_string o.FD.faulted_violations);
          match o.FD.faulted_snapshot with
          | None -> Alcotest.fail "machine differential must expose stats"
          | Some sn ->
            total_corruptions :=
              !total_corruptions + sn.ME.sn_stats.ME.corruptions;
            total_healed := !total_healed + sn.ME.sn_stats.ME.corrupt_healed)
        (List.init 10 (fun i -> 900 + (77 * i))))
    K.all;
  (* not vacuous: the matrix must actually have injected and healed *)
  Alcotest.(check bool)
    (Printf.sprintf "corruptions injected across the matrix (%d)"
       !total_corruptions)
    true
    (!total_corruptions > 50);
  Alcotest.(check bool)
    (Printf.sprintf "corruptions healed across the matrix (%d)" !total_healed)
    true
    (!total_healed > 50)

(* ---------------- checkpoint rot-detection ---------------- *)

let snapshot_on_disk () =
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let m =
    ME.create_cfg
      Run_config.(
        default |> with_max_time ME.default_max_time
        |> with_recovery ME.default_recovery)
      ~arch:Machine.Arch.default g ~inputs
  in
  ME.advance m ~until:40;
  let path = Filename.temp_file "dfsim-rot" ".json" in
  CP.save ~path ~graph:g (ME.snapshot m);
  (g, path)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let test_checkpoint_rejects_rot () =
  let g, path = snapshot_on_disk () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match CP.load ~path ~graph:g with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "pristine file: %s" (CP.load_error_to_string e));
      let pristine = read_all path in
      (* truncation: drop the tail of the payload *)
      write_all path (String.sub pristine 0 (String.length pristine - 20));
      (match CP.load ~path ~graph:g with
      | Error (CP.Truncated { expected; actual }) ->
        Alcotest.(check bool) "truncation sizes reported" true
          (actual < expected)
      | Error e ->
        Alcotest.failf "expected Truncated, got %s" (CP.load_error_to_string e)
      | Ok _ -> Alcotest.fail "truncated checkpoint must be rejected");
      (* bit rot: flip one payload byte, length unchanged *)
      let rotted = Bytes.of_string pristine in
      let mid = String.length pristine - 40 in
      Bytes.set rotted mid
        (Char.chr (Char.code (Bytes.get rotted mid) lxor 1));
      write_all path (Bytes.to_string rotted);
      (match CP.load ~path ~graph:g with
      | Error (CP.Corrupted { expected_crc; actual_crc }) ->
        Alcotest.(check bool) "crc mismatch reported" true
          (expected_crc <> actual_crc)
      | Error e ->
        Alcotest.failf "expected Corrupted, got %s" (CP.load_error_to_string e)
      | Ok _ -> Alcotest.fail "bit-rotted checkpoint must be rejected");
      (* not a checkpoint at all *)
      write_all path "{\"just\": \"json\"}\n";
      (match CP.load ~path ~graph:g with
      | Error (CP.Not_a_checkpoint _) -> ()
      | Error e ->
        Alcotest.failf "expected Not_a_checkpoint, got %s"
          (CP.load_error_to_string e)
      | Ok _ -> Alcotest.fail "foreign file must be rejected");
      (* valid header, valid checksum, garbage document *)
      let payload = "[1, 2, 3]\n" in
      write_all path
        (Printf.sprintf "dfsnap2 %d %d\n%s" (I.checksum_string payload)
           (String.length payload) payload);
      (match CP.load ~path ~graph:g with
      | Error (CP.Malformed _) -> ()
      | Error e ->
        Alcotest.failf "expected Malformed, got %s" (CP.load_error_to_string e)
      | Ok _ -> Alcotest.fail "garbage document must be rejected"));
  match CP.load ~path:"/nonexistent/dfsim-rot.json" ~graph:g with
  | Error (CP.Io _) -> ()
  | Error e -> Alcotest.failf "expected Io, got %s" (CP.load_error_to_string e)
  | Ok _ -> Alcotest.fail "missing file must be rejected"

(* ---------------- the shrinker ---------------- *)

let test_shrink_corruption_failure () =
  (* a corruption failure buried in noise: the shrinker must strip the
     noise, keep the corruption, and do so deterministically *)
  let g = figure2 () in
  let inputs = fig2_inputs 16 in
  let original =
    { FP.none with
      FP.seed = 11;
      delay_prob = 0.2;
      stall_prob = 0.1;
      fu_slow = 2;
      am_slow = 1;
      corrupt_prob = 0.25;
    }
  in
  let still_fails spec =
    let o = FD.machine ~watchdog:600 ~plan:(FP.make spec) g ~inputs in
    not o.FD.equal
  in
  Alcotest.(check bool) "original fails" true (still_fails original);
  let r1 = Shrink.minimize ~still_fails original in
  let r2 = Shrink.minimize ~still_fails original in
  Alcotest.(check bool) "deterministic: same minimal spec" true
    (r1.Shrink.minimal = r2.Shrink.minimal);
  Alcotest.(check int) "deterministic: same attempt count"
    r1.Shrink.attempts r2.Shrink.attempts;
  Alcotest.(check bool) "steps were taken" true (r1.Shrink.steps <> []);
  Alcotest.(check bool) "minimal no larger than original" true
    (Shrink.no_larger r1.Shrink.minimal original);
  Alcotest.(check bool) "minimal still fails (oracle preserved)" true
    (still_fails r1.Shrink.minimal);
  let m = r1.Shrink.minimal in
  Alcotest.(check bool) "corruption survives shrinking" true
    (m.FP.corrupt_prob > 0.0);
  Alcotest.(check (float 0.0)) "delay noise stripped" 0.0 m.FP.delay_prob;
  Alcotest.(check (float 0.0)) "stall noise stripped" 0.0 m.FP.stall_prob;
  Alcotest.(check int) "fu noise stripped" 0 m.FP.fu_slow;
  Alcotest.(check int) "am noise stripped" 0 m.FP.am_slow;
  (* the minimal spec round-trips through the CLI string form, so the
     printed repro is faithful *)
  Alcotest.(check bool) "minimal spec round-trips" true
    (FP.of_string (FP.to_string m) = Ok m)

let suite =
  [
    Alcotest.test_case "value checksums" `Quick test_checksum_values;
    Alcotest.test_case "digest ignores arrival times" `Quick
      test_digest_ignores_times;
    Alcotest.test_case "corruption decisions are typed" `Quick
      test_corrupt_result_typed;
    Alcotest.test_case "detect and heal is bit-identical" `Quick
      test_detect_and_heal_bit_identical;
    Alcotest.test_case "unprotected corruption diagnosed" `Quick
      test_unprotected_corruption_diagnosed;
    Alcotest.test_case "protected run carries no diagnosis" `Quick
      test_protected_has_no_diagnosis;
    Alcotest.test_case "kernels corruption differential" `Quick
      test_kernels_corruption_differential;
    Alcotest.test_case "checkpoint rejects rot" `Quick
      test_checkpoint_rejects_rot;
    Alcotest.test_case "shrinker strips noise deterministically" `Quick
      test_shrink_corruption_failure;
  ]
