(* lib/exec: the determinism contract of the domain-parallel runner.

   The whole point of Pool's submission-order collection is that a
   parallel run is indistinguishable from a sequential one — same merged
   results, same JSON bytes — so these tests run the same work at
   several worker counts and require bit-identical output.  Failure
   isolation and the Run_config wrapper equivalence ride along. *)

module K = Kernels
module D = Compiler.Driver
module ME = Machine.Machine_engine

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* a comparable projection of an outcome: everything deterministic the
   runner promises, nothing engine-internal *)
let fingerprint (r : (Exec.Outcome.t, Exec.Pool.error) result) =
  match r with
  | Ok o ->
    Ok
      ( o.Exec.Outcome.name,
        o.Exec.Outcome.outputs,
        o.Exec.Outcome.end_time,
        o.Exec.Outcome.quiescent,
        List.map Fault.Violation.to_string o.Exec.Outcome.violations )
  | Error e -> Error (e.Exec.Pool.index, e.Exec.Pool.message)

let kernel_jobs engine =
  List.map
    (fun (k : K.kernel) ->
      let st = Random.State.make [| Hashtbl.hash k.K.name |] in
      Exec.Job.make ~name:k.K.name ~engine
        (Exec.Job.Source_program
           { source = k.K.source 12;
             scalar_inputs = k.K.scalar_inputs;
             options = None;
             waves = 2;
           })
        ~inputs:(k.K.inputs 12 st))
    K.all

(* 1. merged results of the full kernel suite are bit-identical at any
   worker count, on both engines *)
let test_parallel_identity () =
  List.iter
    (fun (label, engine) ->
      let jobs = kernel_jobs engine in
      let seq = List.map fingerprint (Exec.Job.run_all ~jobs:1 jobs) in
      List.iter
        (fun workers ->
          let par =
            List.map fingerprint (Exec.Job.run_all ~jobs:workers jobs)
          in
          checkb
            (Printf.sprintf "%s: %d workers == sequential" label workers)
            true (par = seq))
        [ 2; 4; 8 ];
      (* and the sequential run actually ran: every kernel quiesced *)
      List.iter
        (function
          | Ok (name, outputs, _, quiescent, violations) ->
            checkb (name ^ " quiescent") true quiescent;
            checkb (name ^ " no violations") true (violations = []);
            checkb (name ^ " produced output") true (outputs <> [])
          | Error (i, msg) ->
            Alcotest.failf "job %d failed: %s" i msg)
        seq)
    [ ("sim", Exec.Job.Sim);
      ("machine", Exec.Job.Machine Machine.Arch.default) ]

(* 2. a bench-style JSON document built under the pool has the same
   bytes whatever the worker count *)
let test_json_worker_independence () =
  let entries jobs =
    Exec.Pool.map ~jobs
      (fun (k : K.kernel) ->
        let o =
          Exec.Job.run
            (List.find
               (fun j -> j.Exec.Job.name = k.K.name)
               (kernel_jobs Exec.Job.Sim))
        in
        Obs.Bench_json.entry ~measured:(float_of_int o.Exec.Outcome.end_time)
          ~units:"instruction times" ~detail:"end time" ~ok:true k.K.name
          k.K.name)
      K.all
  in
  let bytes jobs =
    let path =
      Filename.temp_file "bench_pipeline" (Printf.sprintf "-j%d.json" jobs)
    in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Obs.Bench_json.write_file ~path
          ~meta:[ ("suite", Obs.Json.String "test") ]
          (entries jobs);
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic)))
  in
  let b1 = bytes 1 in
  check Alcotest.string "4 workers, same bytes" b1 (bytes 4);
  check Alcotest.string "8 workers, same bytes" b1 (bytes 8)

(* 3. one crashing job yields one Error at its submission index; the
   rest complete *)
let test_crash_isolation () =
  let results =
    Exec.Pool.map_result ~jobs:4
      (fun i -> if i = 2 then failwith "boom" else i * 10)
      [ 0; 1; 2; 3; 4 ]
  in
  List.iteri
    (fun i r ->
      match (i, r) with
      | 2, Error e ->
        check Alcotest.int "error index" 2 e.Exec.Pool.index;
        checkb "error message carries the exception" true
          (String.length e.Exec.Pool.message > 0
          && String.sub e.Exec.Pool.message 0 7 = "Failure")
      | 2, Ok _ -> Alcotest.fail "crashing job reported Ok"
      | i, Ok v -> check Alcotest.int "surviving job" (i * 10) v
      | i, Error e ->
        Alcotest.failf "job %d unexpectedly failed: %s" i e.Exec.Pool.message)
    results;
  (* Pool.map re-raises the first failure by submission order *)
  (match
     Exec.Pool.map ~jobs:4
       (fun i -> if i >= 3 then failwith (Printf.sprintf "f%d" i) else i)
       [ 0; 1; 2; 3; 4 ]
   with
  | _ -> Alcotest.fail "Pool.map swallowed the failure"
  | exception Exec.Pool.Job_failed e ->
    check Alcotest.int "first failure wins" 3 e.Exec.Pool.index);
  (* the same isolation through Job.run_all: a job naming a missing
     input fails alone *)
  let k = List.hd K.all in
  let st = Random.State.make [| 7 |] in
  let good =
    Exec.Job.make ~name:"good"
      (Exec.Job.Source_program
         { source = k.K.source 8;
           scalar_inputs = k.K.scalar_inputs;
           options = None;
           waves = 1;
         })
      ~inputs:(k.K.inputs 8 st)
  in
  let bad = { good with Exec.Job.name = "bad"; inputs = [] } in
  (match Exec.Job.run_all ~jobs:2 [ good; bad; good ] with
  | [ Ok _; Error _; Ok _ ] -> ()
  | rs ->
    Alcotest.failf "expected [Ok; Error; Ok], got [%s]"
      (String.concat "; "
         (List.map (function Ok _ -> "Ok" | Error _ -> "Error") rs)))

(* 4. the machine engine's default configuration is exactly the shared
   default with the machine time budget *)
let test_default_config () =
  let k = List.find (fun (k : K.kernel) -> k.K.name = "hydro") K.all in
  let st = Random.State.make [| Hashtbl.hash k.K.name |] in
  let _, compiled =
    D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source 12)
  in
  let g = compiled.Compiler.Program_compile.cp_graph in
  let inputs =
    List.map
      (fun (name, _) ->
        (name, List.assoc name (k.K.inputs 12 st)))
      compiled.Compiler.Program_compile.cp_inputs
  in
  let old_m = ME.run_cfg ME.default_config ~arch:Machine.Arch.default g ~inputs in
  let new_m =
    ME.run_cfg
      (Run_config.with_max_time ME.default_max_time Run_config.default)
      ~arch:Machine.Arch.default g ~inputs
  in
  checkb "machine outputs equal" true (old_m.ME.outputs = new_m.ME.outputs);
  check Alcotest.int "machine end time equal" old_m.ME.end_time
    new_m.ME.end_time

(* 5. sweep rows and JSON bytes are grid-ordered and worker-count
   independent *)
let test_sweep_determinism () =
  let kernels =
    List.filter
      (fun (k : K.kernel) -> List.mem k.K.name [ "hydro"; "tridiag" ])
      K.all
  in
  let cells =
    Exec.Sweep.grid ~kernels ~pes:[ 1; 4 ] ~waves:[ 2 ] ~size:8
  in
  check Alcotest.int "grid size" 4 (List.length cells);
  let doc jobs = Obs.Json.to_string (Exec.Sweep.to_json (Exec.Sweep.run_grid ~jobs cells)) in
  let d1 = doc 1 in
  check Alcotest.string "sweep bytes, 3 workers" d1 (doc 3);
  List.iter2
    (fun (c : Exec.Sweep.cell) r ->
      match r with
      | Ok (row : Exec.Sweep.row) ->
        check Alcotest.string "row kernel in grid order"
          c.Exec.Sweep.kernel.K.name row.Exec.Sweep.r_kernel;
        check Alcotest.int "row pe in grid order" c.Exec.Sweep.n_pe
          row.Exec.Sweep.r_pe;
        checkb (row.Exec.Sweep.r_kernel ^ " cell ok") true
          row.Exec.Sweep.r_ok
      | Error (e : Exec.Pool.error) ->
        Alcotest.failf "cell failed: %s" e.Exec.Pool.message)
    cells
    (Exec.Sweep.run_grid ~jobs:2 cells)

(* ---------------- persistent pool under contention ---------------- *)

(* Many more jobs than workers: every job runs exactly once, awaits
   collect in submission order regardless of completion order, and the
   pool drains completely. *)
let test_pool_contention () =
  let pool = Exec.Pool.create ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      let n = 64 in
      let ran = Atomic.make 0 in
      let tickets =
        List.init n (fun i ->
            Exec.Pool.submit pool (fun () ->
                (* stagger so completion order differs from submission *)
                if i mod 7 = 0 then Unix.sleepf 0.002;
                Atomic.incr ran;
                i * i))
      in
      let results = List.map Exec.Pool.await tickets in
      check Alcotest.int "every job ran exactly once" n (Atomic.get ran);
      List.iteri
        (fun i r ->
          match r with
          | Exec.Pool.Done v ->
            check Alcotest.int "await i returns job i's value" (i * i) v
          | Exec.Pool.Failed f -> Alcotest.failf "job %d failed: %s" i f.Exec.Pool.message
          | Exec.Pool.Cancelled -> Alcotest.failf "job %d cancelled" i)
        results;
      (* a raising thunk settles Failed without poisoning the pool *)
      let bad = Exec.Pool.submit pool (fun () -> failwith "boom") in
      (match Exec.Pool.await bad with
      | Exec.Pool.Failed f ->
        checkb "failure message preserved" true
          (String.length f.Exec.Pool.message > 0)
      | _ -> Alcotest.fail "expected Failed");
      match Exec.Pool.await (Exec.Pool.submit pool (fun () -> 41 + 1)) with
      | Exec.Pool.Done 42 -> ()
      | _ -> Alcotest.fail "pool unusable after a job failure")

(* Queued jobs can be cancelled before a worker picks them up; running
   or settled jobs cannot. *)
let test_pool_cancellation () =
  let pool = Exec.Pool.create ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      (* occupy the single worker until released *)
      let release = Atomic.make false in
      let blocker =
        Exec.Pool.submit pool (fun () ->
            while not (Atomic.get release) do
              Unix.sleepf 0.001
            done;
            "done")
      in
      let ran = Atomic.make 0 in
      let queued =
        List.init 8 (fun i ->
            Exec.Pool.submit pool (fun () ->
                Atomic.incr ran;
                i))
      in
      (* cancel half of them while the worker is still blocked *)
      let cancelled =
        List.filteri (fun i _ -> i mod 2 = 0) queued
        |> List.map Exec.Pool.cancel
      in
      checkb "queued jobs cancel" true (List.for_all Fun.id cancelled);
      Atomic.set release true;
      (match Exec.Pool.await blocker with
      | Exec.Pool.Done "done" -> ()
      | _ -> Alcotest.fail "blocker should finish");
      checkb "running job cannot be cancelled" false
        (Exec.Pool.cancel blocker);
      List.iteri
        (fun i t ->
          match (i mod 2 = 0, Exec.Pool.await t) with
          | true, Exec.Pool.Cancelled -> ()
          | true, _ -> Alcotest.failf "job %d should be Cancelled" i
          | false, Exec.Pool.Done v ->
            check Alcotest.int "survivor returns its value" i v
          | false, _ -> Alcotest.failf "job %d should be Done" i)
        queued;
      check Alcotest.int "cancelled jobs never ran" 4 (Atomic.get ran);
      checkb "settled job cannot be cancelled" false
        (Exec.Pool.cancel (List.nth queued 1)))

(* Shutdown settles still-queued work as Cancelled and rejects new
   submissions instead of hanging them. *)
let test_pool_shutdown () =
  let pool = Exec.Pool.create ~workers:1 () in
  let started = Atomic.make false in
  let blocker =
    Exec.Pool.submit pool (fun () ->
        Atomic.set started true;
        (* long enough that shutdown's queue drain below runs while the
           worker is still in here *)
        Unix.sleepf 0.2)
  in
  (* only submit the doomed job once the worker is provably busy *)
  while not (Atomic.get started) do
    Unix.sleepf 0.001
  done;
  let queued = Exec.Pool.submit pool (fun () -> "never") in
  Exec.Pool.shutdown pool;
  (match Exec.Pool.await blocker with
  | Exec.Pool.Done () -> ()
  | _ -> Alcotest.fail "running job finishes across shutdown");
  (match Exec.Pool.await queued with
  | Exec.Pool.Cancelled -> ()
  | _ -> Alcotest.fail "queued job is Cancelled by shutdown");
  match Exec.Pool.await (Exec.Pool.submit pool (fun () -> "late")) with
  | Exec.Pool.Cancelled -> ()
  | _ -> Alcotest.fail "post-shutdown submit settles Cancelled"

let suite =
  [
    Alcotest.test_case "parallel == sequential (all kernels, 2/4/8 workers)"
      `Slow test_parallel_identity;
    Alcotest.test_case "bench JSON bytes are worker-count independent" `Quick
      test_json_worker_independence;
    Alcotest.test_case "a crashing job is isolated" `Quick
      test_crash_isolation;
    Alcotest.test_case "default_config == default + machine time budget"
      `Quick test_default_config;
    Alcotest.test_case "sweep grid is deterministic" `Quick
      test_sweep_determinism;
    Alcotest.test_case "persistent pool under contention" `Quick
      test_pool_contention;
    Alcotest.test_case "queued-job cancellation" `Quick test_pool_cancellation;
    Alcotest.test_case "shutdown cancels queued work" `Quick
      test_pool_shutdown;
  ]
