(* Journal replication: rendezvous placement, the diskfault spec
   language, and the whole disk-loss story against real in-process
   servers — a member's journal directory is destroyed and its dedup
   window must come back from a peer's replicas, bit for bit. *)

module J = Obs.Json
module P = Serve.Protocol
module Replica = Serve.Replica
module DF = Serve.Diskfault
module Journal = Serve.Journal
module Server = Serve.Server
module Client = Serve.Client

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- placement -------------------------------------------------------- *)

let test_rendezvous () =
  let members = [ "alpha"; "bravo"; "charlie"; "delta" ] in
  let order = Replica.rendezvous_order ~key:"k1" members in
  check "a permutation of the members" true
    (List.sort compare order = List.sort compare members);
  check "deterministic" true
    (order = Replica.rendezvous_order ~key:"k1" members);
  (* the property replication leans on: removing one member never
     reorders the survivors, so a key's replica set changes by at most
     the departed member *)
  List.iter
    (fun gone ->
      let survivors = List.filter (fun m -> m <> gone) members in
      check
        (Printf.sprintf "removing %s leaves survivor order intact" gone)
        true
        (Replica.rendezvous_order ~key:"k1" survivors
        = List.filter (fun m -> m <> gone) order))
    members;
  (* client-side job routing hashes the same bytes: the two layers can
     never disagree about a key's home *)
  check "cluster's int-keyed order = replica's string-keyed order" true
    (Serve.Cluster.rendezvous_order ~key:42 members
    = Replica.rendezvous_order ~key:"42" members)

let test_targets_and_membership () =
  let t = Replica.create ~self:"b" ~replicas:2 [ "a"; "b"; "c" ] in
  let targets = Replica.targets t in
  check_int "R-1 targets" 1 (List.length targets);
  check "self is never a target" true (not (List.mem "b" targets));
  check "targets are members" true
    (List.for_all (fun m -> List.mem m [ "a"; "c" ]) targets);
  (* a membership reload reports exactly the delta *)
  let joined, left = Replica.set_members t [ "b"; "c"; "d" ] in
  check "joined" true (joined = [ "d" ]);
  check "left" true (left = [ "a" ]);
  check "view installed" true
    (List.sort compare (Replica.members t) = [ "b"; "c"; "d" ]);
  (* R larger than the cluster: everyone else is a target, nothing
     breaks *)
  let wide = Replica.create ~self:"a" ~replicas:5 [ "a"; "b"; "c" ] in
  check "small cluster caps targets at n-1" true
    (List.sort compare (Replica.targets wide) = [ "b"; "c" ]);
  Replica.close wide;
  Replica.close t;
  check "self must be a member" true
    (match Replica.create ~self:"x" ~replicas:2 [ "a"; "b" ] with
    | exception Invalid_argument _ -> true
    | t ->
      Replica.close t;
      false)

(* --- the diskfault spec language -------------------------------------- *)

let test_diskfault_spec () =
  let spec = DF.hostile ~seed:7 in
  (match DF.of_string (DF.to_string spec) with
  | Ok s -> check "hostile round-trips exactly" true (s = spec)
  | Error e -> Alcotest.failf "round-trip: %s" e);
  (match DF.of_string (DF.to_string DF.none) with
  | Ok s -> check "none round-trips" true (s = DF.none)
  | Error e -> Alcotest.failf "none round-trip: %s" e);
  check "probability over 1 refused" true
    (Result.is_error (DF.of_string "torn=1.5"));
  check "unknown key refused" true
    (Result.is_error (DF.of_string "gremlins=0.5"));
  (* purity: the same (seed, ordinal) always draws the same fate *)
  let same =
    List.for_all
      (fun op -> DF.action spec ~op = DF.action spec ~op)
      (List.init 200 Fun.id)
  in
  check "action is a pure function of (seed, op)" true same;
  (* an armed hostile spec actually fires *)
  check "hostile draws non-Pass actions" true
    (List.exists
       (fun op -> DF.action spec ~op <> DF.Pass)
       (List.init 500 Fun.id))

(* --- disk loss, end to end -------------------------------------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let rpc_to addr req =
  let c = Client.connect ~retries:10 addr in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> Client.rpc c req)

let shutdown_server socket domain =
  (try ignore (rpc_to socket P.Shutdown) with _ -> ());
  Domain.join domain

(* Two real members replicating to each other.  A keyed job served by
   member 0 must leave a replica at member 1; destroying member 0's
   whole journal directory and restarting it must bring the recorded
   answer back from that replica — the retried request is answered
   bit-identically without re-running. *)
let test_disk_loss_recovery () =
  let tmp = Filename.get_temp_dir_name () in
  let name i ext =
    Filename.concat tmp
      (Printf.sprintf "replica-test-%d-%d.%s" (Unix.getpid ()) i ext)
  in
  let sockets = Array.init 2 (fun i -> name i "sock") in
  let jdirs = Array.init 2 (fun i -> name i "jdir") in
  let journals = Array.map (fun d -> Filename.concat d "self.wal") jdirs in
  Array.iter rm_rf jdirs;
  Array.iter (fun d -> Unix.mkdir d 0o755) jdirs;
  let members = String.concat "," (Array.to_list sockets) in
  let config i =
    { (Server.default_config ~socket_path:sockets.(i)) with
      Server.workers = 1;
      max_pending = 8;
      journal_path = Some journals.(i);
      cluster = Some members;
      self_addr = Some sockets.(i);
      replicas = 2 }
  in
  let start i =
    let server = Server.create (config i) in
    Domain.spawn (fun () -> Server.serve server)
  in
  let d0 = ref (start 0) in
  let d1 = start 1 in
  Fun.protect
    ~finally:(fun () ->
      shutdown_server sockets.(0) !d0;
      shutdown_server sockets.(1) d1;
      Array.iter rm_rf jdirs)
    (fun () ->
      let run =
        { (P.default_run (P.Kernel { name = "hydro"; size = 4 })) with
          P.waves = 1;
          idem = Some "replica-test-job" }
      in
      let r1 = rpc_to sockets.(0) (P.Simulate run) in
      check "first run served ok" true (P.response_ok r1);
      (* the record must already live at the peer: ask it to serve the
         recover verb for member 0's origin *)
      let held = rpc_to sockets.(1) (P.Recover { origin = sockets.(0) }) in
      check "peer answers recover" true (P.response_ok held);
      let held_entries =
        match J.member "entries" held with J.List l -> l | _ -> []
      in
      check "peer holds replicas for the origin" true (held_entries <> []);
      (* members verb: both members visible, self marked *)
      let mv = rpc_to sockets.(1) P.Members in
      check "members verb ok" true (P.response_ok mv);
      check "members lists the full view" true
        (match J.member "members" mv with
        | J.List l -> List.length l = 2
        | _ -> false);
      (* kill member 0 and destroy everything it ever persisted *)
      shutdown_server sockets.(0) !d0;
      rm_rf jdirs.(0);
      Unix.mkdir jdirs.(0) 0o755;
      (* the restarted member rebuilds from the peer before serving *)
      d0 := start 0;
      let r2 = rpc_to sockets.(0) (P.Simulate run) in
      check "retry after disk loss served ok" true (P.response_ok r2);
      List.iter
        (fun f ->
          Alcotest.(check string)
            (Printf.sprintf "%s identical across the disk loss" f)
            (J.to_string (J.member f r1))
            (J.to_string (J.member f r2)))
        [ "outputs"; "digest"; "end_time"; "quiescent" ];
      (* recovered-from-record, not recomputed: the journal seeded the
         idempotency cache, so the retry counts as a dedup *)
      let stats = rpc_to sockets.(0) P.Stats in
      let stat f = Option.value ~default:0 (J.get_int (J.member f stats)) in
      check "retry answered from the recovered record" true
        (stat "deduped" >= 1);
      check "recovery pulled entries from the peer" true
        (stat "recovered_entries" >= 1))

let suite =
  [ Alcotest.test_case "rendezvous: stable, minimally disruptive, shared \
                        with routing" `Quick test_rendezvous;
    Alcotest.test_case "targets and membership deltas" `Quick
      test_targets_and_membership;
    Alcotest.test_case "diskfault spec: round-trip, validation, purity"
      `Quick test_diskfault_spec;
    Alcotest.test_case "disk loss: dedup window rebuilt from peer replicas"
      `Quick test_disk_loss_recovery ]
