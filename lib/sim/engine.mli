(** Cycle-accurate simulator of the static dataflow machine.

    Timing model (Section 3 of the paper): integer time; a cell that fires
    at [t] delivers its result packets {e and} its acknowledge packets at
    [t+1].  A cell is enabled when every operand is present and the
    acknowledges from all destinations of its previous firing have
    arrived.  A balanced pipeline therefore sustains one firing per cell
    every 2 time units — the paper's "about two instruction times" — and a
    feedback loop of [c] cells carrying [d] tokens sustains rate [d/c].

    Arcs have capacity 1: delivering a packet to an occupied operand port
    is a protocol violation and raises {!Protocol_error} (it means the
    acknowledge discipline was broken, e.g. by a mis-built graph).  With a
    sanitizer the same breach is recorded as a structured
    {!Fault.Violation.t} instead and the run halts.

    Ports declared [In_arc_init] start loaded with a token, and their
    producers start owing one acknowledge — operand values written at
    program-load time, which is how feedback loops are primed.

    The engine runs on a flat arena (see {!Arena}): the graph is lowered
    once per run into int-indexed arrays, events are bare ints in
    preallocated buffers, and steady state allocates nothing.  With
    [Run_config.compiled] the firing rules are additionally specialized
    into per-cell closures at load time; results are bit-identical to the
    interpreted dispatcher.  [docs/ENGINE.md] describes the layout. *)

open Dfg

exception Protocol_error of string

type result = {
  outputs : (string * (int * Value.t) list) list;
  (** For each output stream, arrival [(time, value)] pairs in order. *)
  fire_counts : int array;      (** firings per node id *)
  fire_times : int list array;  (** firing timestamps (newest first) per node,
                                    recorded when [record_firings] is set *)
  end_time : int;               (** time of the last event processed *)
  quiescent : bool;             (** no events left before [max_time] *)
  stuck : Fault.Stall_report.t option;
  (** A structured stall report when the run ended with work undone:
      tokens resident at quiescence (deadlock diagnostics — also the
      normal end state of primed feedback loops), the progress watchdog
      tripping, or [max_time] exhaustion.  [None] on a clean drain. *)
  violations : Fault.Violation.t list;
  (** Protocol breaches recorded by the [sanitizer]; empty without one. *)
}

val run_cfg :
  Run_config.t ->
  Graph.t ->
  inputs:(string * Value.t list) list ->
  result
(** Simulate until quiescence or [Run_config.max_time] (default
    10_000_000).  [inputs] supplies the full packet sequence for every
    [Input] node (concatenate waves for steady-state measurements);
    every declared input must be present.

    [tracer] (default {!Obs.Tracer.null}, which costs one branch per
    instrumentation point and records nothing) receives a typed event
    for every firing, packet delivery and acknowledge, plus stall
    diagnostics at quiescence — export with {!Obs.Perfetto}.  Tracing
    never changes simulation results or timing.

    [fault] perturbs the run deterministically (same seed, same run).
    This engine honours only the plan's {e delay} faults — extra latency
    on result and acknowledge packets — which never break the
    acknowledge discipline, so output streams must be unchanged
    ({!Fault_diff} asserts exactly that).

    [sanitizer] (default {!Fault.Sanitizer.null}) shadow-checks the
    one-token-per-arc and acknowledge-conservation invariants at every
    event; breaches become {!result.violations} instead of raised
    strings, and a fatal breach halts the run.

    [watchdog] stops the run and files a [No_progress] stall report if
    no cell fires for that many consecutive time units while packets are
    still in flight (set it above any injected delay).

    [compiled] specializes the firing rules into per-cell closures once
    at program load; results are bit-identical to the interpreted
    dispatcher (both drive the same consume/send helpers).

    [recovery] and [integrity] are machine-engine-only and ignored here.
    @raise Protocol_error on arc-capacity violations (without sanitizer)
    @raise Invalid_argument on missing/unknown input streams *)

val output_values : result -> string -> Value.t list
(** Values of an output stream in arrival order.
    @raise Invalid_argument naming the unknown stream and the streams
    the run actually produced. *)

val output_times : result -> string -> int list
(** Arrival times of an output stream; errors as {!output_values}. *)

val engine : (module Engine_intf.ENGINE with type result = result)
(** This simulator as an {!Engine_intf.ENGINE}. *)
