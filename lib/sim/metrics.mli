(** Throughput and pipelining metrics over simulation results.

    The paper's maximal ("fully pipelined") rate is one result every 2
    instruction times (Section 3); a feedback loop of [c] cells with [d]
    circulating tokens is limited to [d/c] results per instruction time
    (Section 7: Todd's 3-cell loop gives 1/3, the companion scheme's
    4-cell loop with distance-2 dependence gives 1/2). *)

val initiation_interval : ?trim:float -> int list -> float
(** Mean spacing of arrival times after dropping a [trim] fraction
    (default 0.25) at each end — the steady-state initiation interval,
    insensitive to pipe fill and drain.  Requires at least two remaining
    arrivals; returns [nan] otherwise (never raises, even for empty or
    single-arrival samples or a pathological [trim]). *)

val output_interval : ?trim:float -> Engine.result -> string -> float
(** {!initiation_interval} of a named output stream. *)

val throughput : ?trim:float -> Engine.result -> string -> float
(** Results per instruction time: [1 / output_interval]. *)

val fully_pipelined : ?trim:float -> ?tol:float -> Engine.result -> string -> bool
(** Whether the measured steady-state interval is within [tol] (default
    0.05) of the maximal interval 2. *)

val node_period : Engine.result -> int -> float
(** Mean firing period of one cell (requires [record_firings:true]);
    [nan] with fewer than two firings. *)

val busiest_interval : Engine.result -> float
(** Max over per-element cells of {!node_period} — the slowest stage,
    which bounds the pipeline rate (Section 3).  Cells that fire rarely
    (fewer than half as often as the busiest cell, e.g. a boundary arm)
    are not stages in the paper's sense and are ignored.
    Requires [record_firings:true]. *)

val utilization : Engine.result -> int -> float
(** Fraction of the maximal firing rate achieved by a cell:
    [firings / (end_time / 2)]. *)
