open Dfg
module FP = Fault.Fault_plan
module San = Fault.Sanitizer
module SR = Fault.Stall_report

exception Protocol_error of string

type result = {
  outputs : (string * (int * Value.t) list) list;
  fire_counts : int array;
  fire_times : int list array;
  end_time : int;
  quiescent : bool;
  stuck : SR.t option;
  violations : Fault.Violation.t list;
}


let protocol fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

type event =
  | Deliver of { src : int; dst : int; port : int; value : Value.t }
  | Ack of { dst : int }

(* Per-node runtime state. *)
type cell = {
  node : Graph.node;
  operands : Value.t option array;     (* arc ports only; const ports None *)
  mutable pending_acks : int;
  mutable queue : Value.t list;        (* FIFO contents, oldest first *)
  mutable queue_len : int;
  mutable cursor : int;                (* Input / Bool_source position *)
  mutable stream : Value.t array;      (* Input stream *)
  mutable collected : (int * Value.t) list; (* Output stream, newest first *)
  producer : int array;                (* producing node per arc port, -1 *)
}

let operand_ready cell port =
  match cell.node.Graph.inputs.(port) with
  | Graph.In_const v -> Some v
  | Graph.In_arc | Graph.In_arc_init _ -> cell.operands.(port)

let run_cfg (cfg : Run_config.t) g ~inputs =
  let max_time = cfg.Run_config.max_time in
  let record_firings = cfg.Run_config.record_firings in
  let trace_window = cfg.Run_config.trace_window in
  let tracer = cfg.Run_config.tracer in
  let fault = cfg.Run_config.fault in
  let sanitizer = cfg.Run_config.sanitizer in
  let watchdog = cfg.Run_config.watchdog in
  (match Graph.validate g with
  | Ok () -> ()
  | Error es ->
    invalid_arg ("Engine.run: invalid graph:\n" ^ String.concat "\n" es));
  (match watchdog with
  | Some k when k <= 0 -> invalid_arg "Engine.run: watchdog window <= 0"
  | _ -> ());
  let n = Graph.node_count g in
  let producers = Graph.producers g in
  let cells =
    Array.init n (fun id ->
        let node = Graph.node g id in
        let arity = Array.length node.Graph.inputs in
        let operands = Array.make arity None in
        let producer = Array.make arity (-1) in
        Array.iteri
          (fun port binding ->
            (match producers.(id).(port) with
            | [| (src, _) |] -> producer.(port) <- src
            | _ -> ());
            match binding with
            | Graph.In_arc_init v -> operands.(port) <- Some v
            | Graph.In_arc | Graph.In_const _ -> ())
          node.Graph.inputs;
        let stream =
          match node.Graph.op with
          | Opcode.Input name -> (
            match List.assoc_opt name inputs with
            | Some vs -> Array.of_list vs
            | None ->
              invalid_arg
                (Printf.sprintf "Engine.run: no packets supplied for input %s"
                   name))
          | _ -> [||]
        in
        {
          node;
          operands;
          pending_acks = 0;
          queue = [];
          queue_len = 0;
          cursor = 0;
          stream;
          collected = [];
          producer;
        })
  in
  List.iter
    (fun (name, _) ->
      match Graph.find_input g name with
      | (_ : int) -> ()
      | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Engine.run: unknown input stream %s" name))
    inputs;
  (* Producers of preloaded ports start owing an acknowledge. *)
  Array.iter
    (fun cell ->
      Array.iteri
        (fun port binding ->
          match binding with
          | Graph.In_arc_init _ ->
            let src = cell.producer.(port) in
            if src >= 0 then cells.(src).pending_acks <- cells.(src).pending_acks + 1
          | Graph.In_arc | Graph.In_const _ -> ())
        cell.node.Graph.inputs)
    cells;
  let events : event Df_util.Pqueue.t = Df_util.Pqueue.create () in
  let fire_counts = Array.make n 0 in
  let fire_times = Array.make n [] in
  let now = ref 0 in
  let schedule t ev = Df_util.Pqueue.push events t ev in
  let emit_fault kind ~src ~dst ~extra =
    if Obs.Tracer.enabled tracer then
      Obs.Tracer.emit tracer
        (Obs.Event.Fault_injected
           { time = !now; track = dst; kind; src; dst; extra })
  in
  let emit_violation (v : Fault.Violation.t) =
    if Obs.Tracer.enabled tracer then
      Obs.Tracer.emit tracer
        (Obs.Event.Violation
           { time = v.Fault.Violation.v_time; track = v.Fault.Violation.v_node;
             node = v.Fault.Violation.v_node;
             label = v.Fault.Violation.v_label;
             kind = Fault.Violation.kind_name v.Fault.Violation.v_kind;
             detail = v.Fault.Violation.v_detail })
  in
  let send_result cell slot value =
    let src = cell.node.Graph.id in
    let dests = cell.node.Graph.dests.(slot) in
    List.iter
      (fun { Graph.ep_node; ep_port } ->
        (* The graph-level simulator honours only delay faults: they
           respect the one-packet-per-arc discipline, so a correct graph
           must be insensitive to them. *)
        let extra =
          match fault with
          | None -> 0
          | Some f ->
            FP.result_delay f ~time:!now ~src ~dst:ep_node ~port:ep_port
        in
        if extra > 0 then emit_fault "delay" ~src ~dst:ep_node ~extra;
        schedule (!now + 1 + extra)
          (Deliver { src; dst = ep_node; port = ep_port; value });
        if Obs.Tracer.enabled tracer then
          Obs.Tracer.emit tracer
            (Obs.Event.Deliver
               { time = !now + 1 + extra; track = ep_node;
                 src; dst = ep_node; port = ep_port;
                 value = Value.to_string value }))
      dests;
    San.on_send sanitizer ~time:!now ~node:src ~count:(List.length dests);
    cell.pending_acks <- cell.pending_acks + List.length dests
  in
  let consume cell port =
    (match cell.node.Graph.inputs.(port) with
    | Graph.In_const _ -> ()
    | Graph.In_arc | Graph.In_arc_init _ ->
      (match
         San.on_consume sanitizer ~time:!now ~node:cell.node.Graph.id ~port
       with
      | Some v -> emit_violation v
      | None -> ());
      (match cell.operands.(port) with
      | None ->
        if not (San.enabled sanitizer) then
          protocol "%s#%d consumed an empty port" cell.node.Graph.label
            cell.node.Graph.id
      | Some _ -> ());
      cell.operands.(port) <- None;
      let src = cell.producer.(port) in
      if src >= 0 then begin
        let extra =
          match fault with
          | None -> 0
          | Some f -> FP.ack_delay f ~time:!now ~src:cell.node.Graph.id ~dst:src
        in
        if extra > 0 then
          emit_fault "ack-delay" ~src:cell.node.Graph.id ~dst:src ~extra;
        schedule (!now + 1 + extra) (Ack { dst = src });
        if Obs.Tracer.enabled tracer then
          Obs.Tracer.emit tracer
            (Obs.Event.Ack
               { time = !now + 1 + extra; track = src;
                 src = cell.node.Graph.id; dst = src })
      end);
    ()
  in
  let traced t =
    match trace_window with
    | Some (t0, t1) -> t >= t0 && t <= t1
    | None -> false
  in
  let record_fire cell =
    if traced !now then
      Printf.eprintf "[t=%d] FIRE %s#%d\n" !now cell.node.Graph.label
        cell.node.Graph.id;
    if Obs.Tracer.enabled tracer then
      Obs.Tracer.emit tracer
        (Obs.Event.Fire
           { time = !now; dur = 1; track = cell.node.Graph.id;
             node = cell.node.Graph.id; label = cell.node.Graph.label;
             op = Opcode.name cell.node.Graph.op });
    fire_counts.(cell.node.Graph.id) <- fire_counts.(cell.node.Graph.id) + 1;
    if record_firings then
      fire_times.(cell.node.Graph.id) <- !now :: fire_times.(cell.node.Graph.id)
  in
  (* Attempt to fire a cell at the current time; returns true if fired (a
     FIFO may make progress without a full "firing"). *)
  let try_fire cell =
    let open Opcode in
    let node = cell.node in
    let ready port = operand_ready cell port in
    let all_ready () =
      let arity = Array.length node.Graph.inputs in
      let rec go p = p >= arity || (ready p <> None && go (p + 1)) in
      go 0
    in
    match node.Graph.op with
    | Id | Arith _ | Compare _ | Logic _ | Neg | Not | Math _ ->
      if cell.pending_acks = 0 && all_ready () then begin
        let v port =
          match ready port with Some v -> v | None -> assert false
        in
        let result =
          match node.Graph.op with
          | Id -> v 0
          | Arith op -> Opcode.apply_arith op (v 0) (v 1)
          | Compare op -> Opcode.apply_cmp op (v 0) (v 1)
          | Logic op -> Opcode.apply_logic op (v 0) (v 1)
          | Math m -> Opcode.apply_math m (v 0)
          | Neg -> (
            match v 0 with
            | Value.Int i -> Value.Int (-i)
            | Value.Real f -> Value.Real (-.f)
            | Value.Bool _ -> protocol "NEG of a boolean at %s" node.Graph.label)
          | Not -> Value.Bool (not (Value.to_bool (v 0)))
          | _ -> assert false
        in
        record_fire cell;
        Array.iteri (fun port _ -> consume cell port) node.Graph.inputs;
        send_result cell 0 result;
        true
      end
      else false
    | Tgate | Fgate ->
      if cell.pending_acks = 0 && all_ready () then begin
        let ctl = Value.to_bool (Option.get (ready 0)) in
        let data = Option.get (ready 1) in
        let pass = if node.Graph.op = Tgate then ctl else not ctl in
        record_fire cell;
        consume cell 0;
        consume cell 1;
        if pass then send_result cell 0 data;
        true
      end
      else false
    | Switch ->
      if cell.pending_acks = 0 && all_ready () then begin
        let ctl = Value.to_bool (Option.get (ready 0)) in
        let data = Option.get (ready 1) in
        record_fire cell;
        consume cell 0;
        consume cell 1;
        send_result cell (if ctl then 0 else 1) data;
        true
      end
      else false
    | Merge ->
      if cell.pending_acks = 0 then begin
        match ready 0 with
        | None -> false
        | Some ctl ->
          let sel = if Value.to_bool ctl then 1 else 2 in
          (match ready sel with
          | None -> false
          | Some data ->
            record_fire cell;
            consume cell 0;
            consume cell sel;
            send_result cell 0 data;
            true)
      end
      else false
    | Merge_switch ->
      (* Fires on merge control M (port 0), the selected data input, and
         the destination control D (port 3).  The result goes to slot 0
         unconditionally and to slot 1 only when D is true. *)
      if cell.pending_acks = 0 then begin
        match (ready 0, ready 3) with
        | Some ctl, Some d ->
          let sel = if Value.to_bool ctl then 1 else 2 in
          (match ready sel with
          | None -> false
          | Some data ->
            record_fire cell;
            consume cell 0;
            consume cell sel;
            consume cell 3;
            send_result cell 0 data;
            if Value.to_bool d then send_result cell 1 data;
            true)
        | _ -> false
      end
      else false
    | Fifo k ->
      let progressed = ref false in
      (* emit side *)
      if cell.pending_acks = 0 && cell.queue_len > 0 then begin
        match cell.queue with
        | v :: rest ->
          cell.queue <- rest;
          cell.queue_len <- cell.queue_len - 1;
          record_fire cell;
          send_result cell 0 v;
          progressed := true
        | [] -> assert false
      end;
      (* accept side *)
      (match cell.operands.(0) with
      | Some v when cell.queue_len < k ->
        cell.queue <- cell.queue @ [ v ];
        cell.queue_len <- cell.queue_len + 1;
        consume cell 0;
        progressed := true
      | _ -> ());
      !progressed
    | Iota { lo; hi; rep } ->
      if cell.pending_acks = 0 then begin
        let span = hi - lo + 1 in
        let v = lo + (cell.cursor / rep mod span) in
        cell.cursor <- cell.cursor + 1;
        record_fire cell;
        send_result cell 0 (Value.Int v);
        true
      end
      else false
    | Bool_source seq ->
      if cell.pending_acks = 0 then begin
        match Ctlseq.nth seq cell.cursor with
        | None -> false
        | Some b ->
          cell.cursor <- cell.cursor + 1;
          record_fire cell;
          send_result cell 0 (Value.Bool b);
          true
      end
      else false
    | Input _ ->
      if cell.pending_acks = 0 && cell.cursor < Array.length cell.stream
      then begin
        let v = cell.stream.(cell.cursor) in
        cell.cursor <- cell.cursor + 1;
        record_fire cell;
        send_result cell 0 v;
        true
      end
      else false
    | Output _ -> (
      match cell.operands.(0) with
      | Some v ->
        cell.collected <- (!now, v) :: cell.collected;
        (match
           San.on_output sanitizer ~time:!now ~node:cell.node.Graph.id
         with
        | Some viol -> emit_violation viol
        | None -> ());
        record_fire cell;
        consume cell 0;
        true
      | None -> false)
    | Sink -> (
      match cell.operands.(0) with
      | Some _ ->
        record_fire cell;
        consume cell 0;
        true
      | None -> false)
  in
  (* Main loop: advance to the next event time, apply all events at that
     time, then fire every enabled cell (their effects land at t+1).  The
     dirty set contains cells whose state changed. *)
  let dirty = Queue.create () in
  let in_dirty = Array.make n false in
  let mark id =
    if not in_dirty.(id) then begin
      in_dirty.(id) <- true;
      Queue.add id dirty
    end
  in
  for id = 0 to n - 1 do
    mark id
  done;
  let apply_event = function
    | Deliver { src; dst; port; value } ->
      if traced !now then
        Printf.eprintf "[t=%d] DELIVER %s#%d.%d <- %s\n" !now
          (Graph.node g dst).Graph.label dst port (Value.to_string value);
      let cell = cells.(dst) in
      (match San.on_deliver sanitizer ~time:!now ~src ~dst ~port with
      | Some v -> emit_violation v (* drop: engine state is untrustworthy *)
      | None -> (
        match cell.operands.(port) with
        | Some _ ->
          if not (San.enabled sanitizer) then
            protocol
              "arc capacity violated: %s#%d port %d received while full"
              cell.node.Graph.label dst port
        | None -> cell.operands.(port) <- Some value));
      mark dst
    | Ack { dst } ->
      if traced !now then
        Printf.eprintf "[t=%d] ACK -> %s#%d\n" !now
          (Graph.node g dst).Graph.label dst;
      let cell = cells.(dst) in
      (match San.on_ack sanitizer ~time:!now ~dst with
      | Some v -> emit_violation v
      | None ->
        if cell.pending_acks <= 0 then begin
          if not (San.enabled sanitizer) then
            protocol "%s#%d received an unexpected acknowledge"
              cell.node.Graph.label dst
        end
        else cell.pending_acks <- cell.pending_acks - 1);
      mark dst
  in
  let quiescent = ref false in
  let watchdog_tripped = ref false in
  let last_progress = ref 0 in
  let continue = ref true in
  while !continue do
    (* fire everything enabled at the current time *)
    let fired_any = ref false in
    let rec drain_dirty () =
      match Queue.take_opt dirty with
      | None -> ()
      | Some id ->
        in_dirty.(id) <- false;
        if try_fire cells.(id) then begin
          fired_any := true;
          (* A FIFO can both emit and accept in sequence; re-check. *)
          mark id
        end;
        drain_dirty ()
    in
    drain_dirty ();
    if !fired_any then last_progress := !now;
    (* advance time *)
    if San.tripped sanitizer then continue := false
    else
      match Df_util.Pqueue.peek_priority events with
      | None ->
        quiescent := true;
        continue := false
      | Some t when t > max_time -> continue := false
      | Some t
        when (match watchdog with
             | Some k -> t - !last_progress > k
             | None -> false) ->
        (* tokens are in flight but no cell has fired for a full
           watchdog window: stop and report instead of spinning on *)
        watchdog_tripped := true;
        continue := false
      | Some t ->
        now := t;
        let rec apply_all () =
          match Df_util.Pqueue.peek_priority events with
          | Some t' when t' = t -> (
            match Df_util.Pqueue.pop events with
            | Some (_, ev) ->
              apply_event ev;
              apply_all ()
            | None -> ())
          | _ -> ()
        in
        apply_all ()
  done;
  let outputs =
    List.map
      (fun (name, id) -> (name, List.rev cells.(id).collected))
      (Graph.outputs g)
  in
  if !quiescent && San.enabled sanitizer && not (San.tripped sanitizer) then
    List.iter emit_violation
      (San.on_quiescence sanitizer ~time:!now
         ~held:(fun node port -> cells.(node).operands.(port) <> None));
  (* Structured stall report: which cells still hold or await something,
     and the wait-for cycle when one explains the deadlock. *)
  let build_stall reason =
    let blocked = ref [] in
    let edges = ref [] in
    Array.iter
      (fun cell ->
        let id = cell.node.Graph.id in
        let held = ref [] and missing = ref [] in
        Array.iteri
          (fun port binding ->
            match binding with
            | Graph.In_const _ -> ()
            | Graph.In_arc | Graph.In_arc_init _ -> (
              match cell.operands.(port) with
              | Some v -> held := (port, Value.to_string v) :: !held
              | None ->
                missing := port :: !missing;
                let src = cell.producer.(port) in
                if src >= 0 then edges := (id, src) :: !edges))
          cell.node.Graph.inputs;
        let held = List.rev !held and missing = List.rev !missing in
        if cell.pending_acks > 0 then
          Array.iter
            (List.iter (fun { Graph.ep_node; ep_port } ->
                 if
                   cells.(ep_node).operands.(ep_port) <> None
                   && cells.(ep_node).producer.(ep_port) = id
                 then edges := (id, ep_node) :: !edges))
            cell.node.Graph.dests;
        let pending_inputs =
          match cell.node.Graph.op with
          | Opcode.Input _ -> Array.length cell.stream - cell.cursor
          | _ -> 0
        in
        if
          held <> [] || cell.queue_len > 0 || pending_inputs > 0
          || cell.pending_acks > 0
        then begin
          let b =
            {
              SR.b_node = id;
              b_label = cell.node.Graph.label;
              b_op = Opcode.name cell.node.Graph.op;
              b_missing = missing;
              b_held = held;
              b_pending_acks = cell.pending_acks;
              b_queue_len = cell.queue_len;
              b_pending_inputs = pending_inputs;
            }
          in
          if Obs.Tracer.enabled tracer then
            Obs.Tracer.emit tracer
              (Obs.Event.Stall
                 { time = !now; track = id; node = id;
                   label = cell.node.Graph.label;
                   reason = SR.blocked_line b });
          blocked := b :: !blocked
        end)
      cells;
    match List.rev !blocked with
    | [] -> None
    | blocked -> Some (SR.make ~time:!now ~reason ~blocked ~edges:!edges ())
  in
  let stuck =
    if San.tripped sanitizer then None
    else if !watchdog_tripped then build_stall SR.No_progress
    else if !quiescent then build_stall SR.Deadlock
    else build_stall SR.Max_time_exhausted
  in
  {
    outputs;
    fire_counts;
    fire_times;
    end_time = !now;
    quiescent = !quiescent;
    stuck;
    violations = San.violations sanitizer;
  }

(* Thin compatibility wrapper over {!run_cfg} — new code should build a
   [Run_config.t] instead of spreading optional arguments. *)
let run ?max_time ?record_firings ?trace_window ?tracer ?fault ?sanitizer
    ?watchdog g ~inputs =
  let cfg =
    { Run_config.default with
      Run_config.max_time =
        Option.value max_time ~default:Run_config.default.Run_config.max_time;
      record_firings = Option.value record_firings ~default:false;
      trace_window;
      tracer = Option.value tracer ~default:Obs.Tracer.null;
      fault;
      sanitizer = Option.value sanitizer ~default:San.null;
      watchdog;
    }
  in
  run_cfg cfg g ~inputs

let stream result name =
  match List.assoc_opt name result.outputs with
  | Some vs -> vs
  | None ->
    invalid_arg
      (Printf.sprintf "Engine: no output stream %s (run produced: %s)" name
         (match result.outputs with
         | [] -> "none"
         | outs -> String.concat ", " (List.map fst outs)))

let output_values result name = List.map snd (stream result name)

let output_times result name = List.map fst (stream result name)

let engine : (module Engine_intf.ENGINE with type result = result) =
  (module struct
    type nonrec result = result

    let run = run_cfg
    let output_values = output_values
    let output_times = output_times
  end)
