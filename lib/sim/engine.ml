open Dfg
module FP = Fault.Fault_plan
module San = Fault.Sanitizer
module SR = Fault.Stall_report

exception Protocol_error of string

type result = {
  outputs : (string * (int * Value.t) list) list;
  fire_counts : int array;
  fire_times : int list array;
  end_time : int;
  quiescent : bool;
  stuck : SR.t option;
  violations : Fault.Violation.t list;
}

let protocol fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

(* Bounds-unchecked indexing for the hot loop.  Every index written with
   [.!()] is an arena-internal invariant — a port / cell / slot number
   produced by [Arena.build] and never taken from user input — so the
   runtime check would only cost time (this build has no flambda to
   eliminate it). *)
external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"
external ( .!()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

(* The hot loop runs entirely on the flat arena: dynamic state is a set
   of parallel arrays indexed by the arena's global port / cell numbers,
   and events are bare ints — [port * 2] delivers the value parked in
   [inflight.(port)], [cell * 2 + 1] is an acknowledge.  The static
   dataflow discipline guarantees at most one result packet is ever in
   flight per arc (a producer cannot refire before the previous packet
   was consumed, which happens after delivery), so a one-slot [inflight]
   buffer per port carries every payload and steady state allocates
   nothing.

   Events land on one of two structures: almost every event is scheduled
   for [now + 1] and goes on the [next] stack (swapped wholesale into
   [cur] when time advances); only fault-delayed events need a real
   priority queue ([far]).  Intra-timestamp order is irrelevant — all
   arrivals at [t] are applied before any firing decision at [t]. *)

let run_cfg (cfg : Run_config.t) g ~inputs =
  let max_time = cfg.Run_config.max_time in
  let record_firings = cfg.Run_config.record_firings in
  let trace_window = cfg.Run_config.trace_window in
  let tracer = cfg.Run_config.tracer in
  let fault = cfg.Run_config.fault in
  let sanitizer = cfg.Run_config.sanitizer in
  let watchdog = cfg.Run_config.watchdog in
  (match Graph.validate g with
  | Ok () -> ()
  | Error es ->
    invalid_arg ("Engine.run: invalid graph:\n" ^ String.concat "\n" es));
  (match watchdog with
  | Some k when k <= 0 -> invalid_arg "Engine.run: watchdog window <= 0"
  | _ -> ());
  let a = Arena.build g in
  let n = a.Arena.n in
  let ops = a.Arena.ops in
  let labels = a.Arena.labels in
  let port_base = a.Arena.port_base in
  let port_cell = a.Arena.port_cell in
  let port_sub = a.Arena.port_sub in
  let port_kind = a.Arena.port_kind in
  let port_producer = a.Arena.port_producer in
  let slot_base = a.Arena.slot_base in
  let dest_base = a.Arena.dest_base in
  let dest_port = a.Arena.dest_port in
  (* ---- dynamic state ---- *)
  let present = Array.make (max a.Arena.n_ports 1) false in
  let pvalue = Array.make (max a.Arena.n_ports 1) Arena.dummy_value in
  let inflight = Array.make (max a.Arena.n_ports 1) Arena.dummy_value in
  let pending_acks = Array.make (max n 1) 0 in
  let cursor = Array.make (max n 1) 0 in
  let stream = Array.make (max n 1) [||] in
  let collected : (int * Value.t) list array = Array.make (max n 1) [] in
  let fifo_buf = Array.make (max n 1) [||] in
  let fifo_head = Array.make (max n 1) 0 in
  let fifo_len = Array.make (max n 1) 0 in
  for p = 0 to a.Arena.n_ports - 1 do
    if port_kind.(p) <> Arena.kind_arc then begin
      (* const ports stay present for the whole run; init ports start
         present and their producer starts owing an acknowledge *)
      present.(p) <- true;
      pvalue.(p) <- a.Arena.port_value.(p);
      if port_kind.(p) = Arena.kind_init && port_producer.(p) >= 0 then
        pending_acks.(port_producer.(p)) <-
          pending_acks.(port_producer.(p)) + 1
    end
  done;
  for id = 0 to n - 1 do
    match ops.(id) with
    | Opcode.Input name ->
      stream.(id) <-
        Array.of_list
          (Df_util.Conventions.lookup_feed ~who:"Engine.run" inputs name)
    | Opcode.Fifo k -> fifo_buf.(id) <- Array.make (max k 1) Arena.dummy_value
    | _ -> ()
  done;
  List.iter
    (fun (name, _) ->
      match Graph.find_input g name with
      | (_ : int) -> ()
      | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Engine.run: unknown input stream %s" name))
    inputs;
  (* ---- events ---- *)
  let cur = ref (Array.make 1024 0) in
  let cur_len = ref 0 in
  let next = ref (Array.make 1024 0) in
  let next_len = ref 0 in
  let far = Df_util.Ipq.create () in
  let now = ref 0 in
  let push_next ev =
    if !next_len = Array.length !next then begin
      let bigger = Array.make (2 * !next_len) 0 in
      Array.blit !next 0 bigger 0 !next_len;
      next := bigger
    end;
    !next.!(!next_len) <- ev;
    next_len := !next_len + 1
  in
  let fire_counts = Array.make n 0 in
  let fire_times = Array.make n [] in
  let tracer_on = Obs.Tracer.enabled tracer in
  let san_on = San.enabled sanitizer in
  let emit_fault kind ~src ~dst ~extra =
    if tracer_on then
      Obs.Tracer.emit tracer
        (Obs.Event.Fault_injected
           { time = !now; track = dst; kind; src; dst; extra })
  in
  let emit_violation (v : Fault.Violation.t) =
    if tracer_on then
      Obs.Tracer.emit tracer
        (Obs.Event.Violation
           { time = v.Fault.Violation.v_time; track = v.Fault.Violation.v_node;
             node = v.Fault.Violation.v_node;
             label = v.Fault.Violation.v_label;
             kind = Fault.Violation.kind_name v.Fault.Violation.v_kind;
             detail = v.Fault.Violation.v_detail })
  in
  let traced t =
    match trace_window with
    | Some (t0, t1) -> t >= t0 && t <= t1
    | None -> false
  in
  let send id slot value =
    let s = slot_base.!(id) + slot in
    let db = dest_base.!(s) and de = dest_base.!(s + 1) in
    for d = db to de - 1 do
      let p = dest_port.!(d) in
      (* The graph-level simulator honours only delay faults: they
         respect the one-packet-per-arc discipline, so a correct graph
         must be insensitive to them. *)
      let extra =
        match fault with
        | None -> 0
        | Some f ->
          FP.result_delay f ~time:!now ~src:id ~dst:port_cell.(p)
            ~port:port_sub.(p)
      in
      if extra > 0 then emit_fault "delay" ~src:id ~dst:port_cell.(p) ~extra;
      inflight.!(p) <- value;
      if extra = 0 then push_next (p * 2)
      else Df_util.Ipq.push far (!now + 1 + extra) (p * 2);
      if tracer_on then
        Obs.Tracer.emit tracer
          (Obs.Event.Deliver
             { time = !now + 1 + extra; track = port_cell.(p);
               src = id; dst = port_cell.(p); port = port_sub.(p);
               value = Value.to_string value })
    done;
    if san_on then San.on_send sanitizer ~time:!now ~node:id ~count:(de - db);
    pending_acks.!(id) <- pending_acks.!(id) + (de - db)
  in
  let consume_port p =
    if port_kind.!(p) <> Arena.kind_const then begin
      let id = port_cell.!(p) in
      if san_on then (
        match San.on_consume sanitizer ~time:!now ~node:id ~port:port_sub.(p)
        with
        | Some v -> emit_violation v
        | None -> ());
      if not present.!(p) && not san_on then
        protocol "%s#%d consumed an empty port" labels.(id) id;
      present.!(p) <- false;
      let src = port_producer.!(p) in
      if src >= 0 then begin
        let extra =
          match fault with
          | None -> 0
          | Some f -> FP.ack_delay f ~time:!now ~src:id ~dst:src
        in
        if extra > 0 then emit_fault "ack-delay" ~src:id ~dst:src ~extra;
        if extra = 0 then push_next ((src * 2) + 1)
        else Df_util.Ipq.push far (!now + 1 + extra) ((src * 2) + 1);
        if tracer_on then
          Obs.Tracer.emit tracer
            (Obs.Event.Ack
               { time = !now + 1 + extra; track = src; src = id; dst = src })
      end
    end
  in
  let trace_window_on = trace_window <> None in
  let record_fire id =
    if trace_window_on && traced !now then
      Printf.eprintf "[t=%d] FIRE %s#%d\n" !now labels.(id) id;
    if tracer_on then
      Obs.Tracer.emit tracer
        (Obs.Event.Fire
           { time = !now; dur = 1; track = id; node = id;
             label = labels.(id); op = Opcode.name ops.(id) });
    fire_counts.!(id) <- fire_counts.!(id) + 1;
    if record_firings then fire_times.(id) <- !now :: fire_times.(id)
  in
  (* ---- firing rules, one helper per opcode family; the interpreted
     dispatcher and the compiled closures both call these, so the two
     modes are bit-identical by construction ---- *)
  let fire_compute id b result =
    record_fire id;
    let e = port_base.!(id + 1) in
    for p = b to e - 1 do
      consume_port p
    done;
    send id 0 result;
    true
  in
  let fire_gate id tgate =
    let b = port_base.!(id) in
    if pending_acks.!(id) = 0 && present.!(b) && present.!(b + 1) then begin
      let ctl = Value.to_bool pvalue.!(b) in
      let data = pvalue.!(b + 1) in
      let pass = if tgate then ctl else not ctl in
      record_fire id;
      consume_port b;
      consume_port (b + 1);
      if pass then send id 0 data;
      true
    end
    else false
  in
  let fire_switch id =
    let b = port_base.!(id) in
    if pending_acks.!(id) = 0 && present.!(b) && present.!(b + 1) then begin
      let ctl = Value.to_bool pvalue.!(b) in
      let data = pvalue.!(b + 1) in
      record_fire id;
      consume_port b;
      consume_port (b + 1);
      send id (if ctl then 0 else 1) data;
      true
    end
    else false
  in
  let fire_merge id =
    let b = port_base.!(id) in
    if pending_acks.!(id) = 0 && present.!(b) then begin
      let sel = if Value.to_bool pvalue.!(b) then 1 else 2 in
      if present.!(b + sel) then begin
        let data = pvalue.!(b + sel) in
        record_fire id;
        consume_port b;
        consume_port (b + sel);
        send id 0 data;
        true
      end
      else false
    end
    else false
  in
  let fire_merge_switch id =
    (* Fires on merge control M (port 0), the selected data input, and
       the destination control D (port 3).  The result goes to slot 0
       unconditionally and to slot 1 only when D is true. *)
    let b = port_base.!(id) in
    if pending_acks.!(id) = 0 && present.!(b) && present.!(b + 3) then begin
      let sel = if Value.to_bool pvalue.!(b) then 1 else 2 in
      if present.!(b + sel) then begin
        let data = pvalue.!(b + sel) in
        let d = Value.to_bool pvalue.!(b + 3) in
        record_fire id;
        consume_port b;
        consume_port (b + sel);
        consume_port (b + 3);
        send id 0 data;
        if d then send id 1 data;
        true
      end
      else false
    end
    else false
  in
  let fire_fifo id k =
    let progressed = ref false in
    (* emit side *)
    if pending_acks.(id) = 0 && fifo_len.(id) > 0 then begin
      let buf = fifo_buf.(id) in
      let h = fifo_head.(id) in
      let v = buf.(h) in
      fifo_head.(id) <- (if h + 1 = Array.length buf then 0 else h + 1);
      fifo_len.(id) <- fifo_len.(id) - 1;
      record_fire id;
      send id 0 v;
      progressed := true
    end;
    (* accept side *)
    let b = port_base.!(id) in
    if present.!(b) && fifo_len.(id) < k then begin
      let buf = fifo_buf.(id) in
      let tail = fifo_head.(id) + fifo_len.(id) in
      let tail = if tail >= Array.length buf then tail - Array.length buf
                 else tail in
      buf.(tail) <- pvalue.(b);
      fifo_len.(id) <- fifo_len.(id) + 1;
      consume_port b;
      progressed := true
    end;
    !progressed
  in
  let fire_iota id lo hi rep =
    if pending_acks.(id) = 0 then begin
      let span = hi - lo + 1 in
      let v = lo + (cursor.(id) / rep mod span) in
      cursor.(id) <- cursor.(id) + 1;
      record_fire id;
      send id 0 (Value.Int v);
      true
    end
    else false
  in
  let fire_bool_source id seq =
    if pending_acks.(id) = 0 then begin
      match Ctlseq.nth seq cursor.(id) with
      | None -> false
      | Some b ->
        cursor.(id) <- cursor.(id) + 1;
        record_fire id;
        send id 0 (Value.Bool b);
        true
    end
    else false
  in
  let fire_input id =
    if pending_acks.!(id) = 0 && cursor.!(id) < Array.length stream.!(id)
    then begin
      let v = stream.!(id).!(cursor.!(id)) in
      cursor.!(id) <- cursor.!(id) + 1;
      record_fire id;
      send id 0 v;
      true
    end
    else false
  in
  let fire_output id =
    let b = port_base.!(id) in
    if present.!(b) then begin
      collected.(id) <- (!now, pvalue.(b)) :: collected.(id);
      (if san_on then
         match San.on_output sanitizer ~time:!now ~node:id with
         | Some viol -> emit_violation viol
         | None -> ());
      record_fire id;
      consume_port b;
      true
    end
    else false
  in
  let fire_sink id =
    let b = port_base.!(id) in
    if present.!(b) then begin
      record_fire id;
      consume_port b;
      true
    end
    else false
  in
  let try_fire id =
    let open Opcode in
    match ops.(id) with
    | Id ->
      let b = port_base.!(id) in
      if pending_acks.!(id) = 0 && present.!(b) then
        fire_compute id b pvalue.!(b)
      else false
    | Arith op ->
      let b = port_base.!(id) in
      if pending_acks.!(id) = 0 && present.!(b) && present.!(b + 1) then
        fire_compute id b (Opcode.apply_arith op pvalue.!(b) pvalue.!(b + 1))
      else false
    | Compare op ->
      let b = port_base.!(id) in
      if pending_acks.!(id) = 0 && present.!(b) && present.!(b + 1) then
        fire_compute id b (Opcode.apply_cmp op pvalue.!(b) pvalue.!(b + 1))
      else false
    | Logic op ->
      let b = port_base.!(id) in
      if pending_acks.!(id) = 0 && present.!(b) && present.!(b + 1) then
        fire_compute id b (Opcode.apply_logic op pvalue.!(b) pvalue.!(b + 1))
      else false
    | Math m ->
      let b = port_base.!(id) in
      if pending_acks.!(id) = 0 && present.!(b) then
        fire_compute id b (Opcode.apply_math m pvalue.!(b))
      else false
    | Neg ->
      let b = port_base.!(id) in
      if pending_acks.!(id) = 0 && present.!(b) then
        fire_compute id b
          (match pvalue.!(b) with
          | Value.Int i -> Value.Int (-i)
          | Value.Real f -> Value.Real (-.f)
          | Value.Bool _ -> protocol "NEG of a boolean at %s" labels.(id))
      else false
    | Not ->
      let b = port_base.!(id) in
      if pending_acks.!(id) = 0 && present.!(b) then
        fire_compute id b (Value.Bool (not (Value.to_bool pvalue.!(b))))
      else false
    | Tgate -> fire_gate id true
    | Fgate -> fire_gate id false
    | Switch -> fire_switch id
    | Merge -> fire_merge id
    | Merge_switch -> fire_merge_switch id
    | Fifo k -> fire_fifo id k
    | Iota { lo; hi; rep } -> fire_iota id lo hi rep
    | Bool_source seq -> fire_bool_source id seq
    | Input _ -> fire_input id
    | Output _ -> fire_output id
    | Sink -> fire_sink id
  in
  (* Compiled mode: the opcode match above runs once per cell at load
     time; each closure re-checks only its own ports and calls the same
     helpers. *)
  let compile_cell id : unit -> bool =
    let open Opcode in
    let b = port_base.!(id) in
    match ops.(id) with
    | Id ->
      fun () ->
        if pending_acks.!(id) = 0 && present.!(b) then
          fire_compute id b pvalue.!(b)
        else false
    | Arith op ->
      let f = Opcode.apply_arith op in
      fun () ->
        if pending_acks.!(id) = 0 && present.!(b) && present.!(b + 1) then
          fire_compute id b (f pvalue.!(b) pvalue.!(b + 1))
        else false
    | Compare op ->
      let f = Opcode.apply_cmp op in
      fun () ->
        if pending_acks.!(id) = 0 && present.!(b) && present.!(b + 1) then
          fire_compute id b (f pvalue.!(b) pvalue.!(b + 1))
        else false
    | Logic op ->
      let f = Opcode.apply_logic op in
      fun () ->
        if pending_acks.!(id) = 0 && present.!(b) && present.!(b + 1) then
          fire_compute id b (f pvalue.!(b) pvalue.!(b + 1))
        else false
    | Math m ->
      let f = Opcode.apply_math m in
      fun () ->
        if pending_acks.!(id) = 0 && present.!(b) then
          fire_compute id b (f pvalue.!(b))
        else false
    | Neg ->
      fun () ->
        if pending_acks.!(id) = 0 && present.!(b) then
          fire_compute id b
            (match pvalue.!(b) with
            | Value.Int i -> Value.Int (-i)
            | Value.Real f -> Value.Real (-.f)
            | Value.Bool _ -> protocol "NEG of a boolean at %s" labels.(id))
        else false
    | Not ->
      fun () ->
        if pending_acks.!(id) = 0 && present.!(b) then
          fire_compute id b (Value.Bool (not (Value.to_bool pvalue.!(b))))
        else false
    | Tgate -> fun () -> fire_gate id true
    | Fgate -> fun () -> fire_gate id false
    | Switch -> fun () -> fire_switch id
    | Merge -> fun () -> fire_merge id
    | Merge_switch -> fun () -> fire_merge_switch id
    | Fifo k -> fun () -> fire_fifo id k
    | Iota { lo; hi; rep } -> fun () -> fire_iota id lo hi rep
    | Bool_source seq -> fun () -> fire_bool_source id seq
    | Input _ -> fun () -> fire_input id
    | Output _ -> fun () -> fire_output id
    | Sink -> fun () -> fire_sink id
  in
  let step =
    if cfg.Run_config.compiled then begin
      let fire_fn = Array.init n compile_cell in
      fun id -> (fire_fn.!(id)) ()
    end
    else try_fire
  in
  (* ---- dirty set: a preallocated int ring (the in_dirty guard bounds
     occupancy at n) ---- *)
  let dirty = Array.make (max n 1) 0 in
  let dirty_head = ref 0 in
  let dirty_len = ref 0 in
  let in_dirty = Bytes.make (max n 1) '\000' in
  let mark id =
    if Bytes.unsafe_get in_dirty id = '\000' then begin
      Bytes.unsafe_set in_dirty id '\001';
      let tail = !dirty_head + !dirty_len in
      dirty.!(if tail >= n then tail - n else tail) <- id;
      incr dirty_len
    end
  in
  for id = 0 to n - 1 do
    mark id
  done;
  let apply_ev ev =
    if ev land 1 = 0 then begin
      (* deliver *)
      let p = ev lsr 1 in
      let dst = port_cell.!(p) in
      let value = inflight.!(p) in
      if trace_window_on && traced !now then
        Printf.eprintf "[t=%d] DELIVER %s#%d.%d <- %s\n" !now labels.(dst)
          dst port_sub.(p) (Value.to_string value);
      (if san_on then (
         match
           San.on_deliver sanitizer ~time:!now ~src:port_producer.(p) ~dst
             ~port:port_sub.(p)
         with
         | Some v -> emit_violation v (* drop: engine state is untrustworthy *)
         | None ->
           if not present.(p) then begin
             present.(p) <- true;
             pvalue.(p) <- value
           end)
       else if present.!(p) then
         protocol "arc capacity violated: %s#%d port %d received while full"
           labels.(dst) dst port_sub.(p)
       else begin
         present.!(p) <- true;
         pvalue.!(p) <- value
       end);
      mark dst
    end
    else begin
      (* ack *)
      let dst = ev lsr 1 in
      if trace_window_on && traced !now then
        Printf.eprintf "[t=%d] ACK -> %s#%d\n" !now labels.(dst) dst;
      (if san_on then (
         match San.on_ack sanitizer ~time:!now ~dst with
         | Some v -> emit_violation v
         | None ->
           if pending_acks.(dst) > 0 then
             pending_acks.(dst) <- pending_acks.(dst) - 1)
       else if pending_acks.!(dst) <= 0 then
         protocol "%s#%d received an unexpected acknowledge" labels.(dst) dst
       else pending_acks.!(dst) <- pending_acks.!(dst) - 1);
      mark dst
    end
  in
  let quiescent = ref false in
  let watchdog_tripped = ref false in
  let last_progress = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    (* fire everything enabled at the current time *)
    let fired_any = ref false in
    while !dirty_len > 0 do
      let id = dirty.!(!dirty_head) in
      dirty_head := (let h = !dirty_head + 1 in if h = n then 0 else h);
      decr dirty_len;
      Bytes.unsafe_set in_dirty id '\000';
      if step id then begin
        fired_any := true;
        (* a FIFO can both emit and accept in sequence; re-check *)
        mark id
      end
    done;
    if !fired_any then last_progress := !now;
    (* advance time *)
    if san_on && San.tripped sanitizer then continue_ := false
    else begin
      let t =
        if !next_len > 0 then !now + 1 else Df_util.Ipq.peek_priority far
      in
      if t < 0 then begin
        quiescent := true;
        continue_ := false
      end
      else if t > max_time then continue_ := false
      else if
        match watchdog with
        | Some k -> t - !last_progress > k
        | None -> false
      then begin
        (* tokens are in flight but no cell has fired for a full
           watchdog window: stop and report instead of spinning on *)
        watchdog_tripped := true;
        continue_ := false
      end
      else begin
        now := t;
        if !next_len > 0 then begin
          let swap = !cur in
          cur := !next;
          next := swap;
          cur_len := !next_len;
          next_len := 0;
          let evs = !cur in
          for i = 0 to !cur_len - 1 do
            apply_ev evs.!(i)
          done;
          cur_len := 0
        end;
        while Df_util.Ipq.peek_priority far = t do
          apply_ev (Df_util.Ipq.pop_payload far)
        done
      end
    end
  done;
  let outputs =
    List.map
      (fun (name, id) -> (name, List.rev collected.(id)))
      a.Arena.outputs
  in
  if !quiescent && san_on && not (San.tripped sanitizer) then
    List.iter emit_violation
      (San.on_quiescence sanitizer ~time:!now
         ~held:(fun node port ->
           let p = port_base.(node) + port in
           port_kind.(p) <> Arena.kind_const && present.(p)));
  (* Structured stall report: which cells still hold or await something,
     and the wait-for cycle when one explains the deadlock. *)
  let build_stall reason =
    let blocked = ref [] in
    let edges = ref [] in
    for id = 0 to n - 1 do
      let held = ref [] and missing = ref [] in
      for p = port_base.(id) to port_base.(id + 1) - 1 do
        if port_kind.(p) <> Arena.kind_const then
          if present.(p) then
            held := (port_sub.(p), Value.to_string pvalue.(p)) :: !held
          else begin
            missing := port_sub.(p) :: !missing;
            let src = port_producer.(p) in
            if src >= 0 then edges := (id, src) :: !edges
          end
      done;
      let held = List.rev !held and missing = List.rev !missing in
      if pending_acks.(id) > 0 then
        for d = dest_base.(slot_base.(id)) to dest_base.(slot_base.(id + 1)) - 1
        do
          let p = dest_port.(d) in
          if present.(p) && port_producer.(p) = id then
            edges := (id, port_cell.(p)) :: !edges
        done;
      let pending_inputs =
        match ops.(id) with
        | Opcode.Input _ -> Array.length stream.(id) - cursor.(id)
        | _ -> 0
      in
      if
        held <> [] || fifo_len.(id) > 0 || pending_inputs > 0
        || pending_acks.(id) > 0
      then begin
        let b =
          {
            SR.b_node = id;
            b_label = labels.(id);
            b_op = Opcode.name ops.(id);
            b_missing = missing;
            b_held = held;
            b_pending_acks = pending_acks.(id);
            b_queue_len = fifo_len.(id);
            b_pending_inputs = pending_inputs;
          }
        in
        if tracer_on then
          Obs.Tracer.emit tracer
            (Obs.Event.Stall
               { time = !now; track = id; node = id; label = labels.(id);
                 reason = SR.blocked_line b });
        blocked := b :: !blocked
      end
    done;
    match List.rev !blocked with
    | [] -> None
    | blocked -> Some (SR.make ~time:!now ~reason ~blocked ~edges:!edges ())
  in
  let stuck =
    if San.tripped sanitizer then None
    else if !watchdog_tripped then build_stall SR.No_progress
    else if !quiescent then build_stall SR.Deadlock
    else build_stall SR.Max_time_exhausted
  in
  {
    outputs;
    fire_counts;
    fire_times;
    end_time = !now;
    quiescent = !quiescent;
    stuck;
    violations = San.violations sanitizer;
  }

let stream result name =
  Df_util.Conventions.lookup_stream ~who:"Engine" result.outputs name

let output_values result name = List.map snd (stream result name)

let output_times result name = List.map fst (stream result name)

let engine : (module Engine_intf.ENGINE with type result = result) =
  (module struct
    type nonrec result = result

    let run = run_cfg
    let output_values = output_values
    let output_times = output_times
  end)
