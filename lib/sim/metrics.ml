let initiation_interval ?(trim = 0.25) times =
  let arr = Array.of_list times in
  let n = Array.length arr in
  (* clamp so a pathological [trim] (negative, or >= 0.5 on a tiny
     sample) degrades to nan as documented instead of raising *)
  let drop = max 0 (int_of_float (trim *. float_of_int n)) in
  let first = drop and last = n - 1 - drop in
  let steps = max 0 (last - first) in
  Df_util.Conventions.ratio
    (if steps = 0 then 0.0 else float_of_int (arr.(last) - arr.(first)))
    (float_of_int steps)

let output_interval ?trim result name =
  initiation_interval ?trim (Engine.output_times result name)

let throughput ?trim result name = 1.0 /. output_interval ?trim result name

let fully_pipelined ?trim ?(tol = 0.05) result name =
  let interval = output_interval ?trim result name in
  (not (Float.is_nan interval)) && interval <= 2.0 +. tol

let node_period result id =
  let times = List.rev result.Engine.fire_times.(id) in
  initiation_interval ~trim:0.25 times

let busiest_interval result =
  (* only cells on the per-element path matter: ignore cells that fire
     rarely (e.g. a boundary arm serving two elements per wave) *)
  let counts = result.Engine.fire_counts in
  let max_count = Array.fold_left max 0 counts in
  let periods = ref [] in
  Array.iteri
    (fun id c ->
      if 2 * c >= max_count then begin
        let p = node_period result id in
        if not (Float.is_nan p) then periods := p :: !periods
      end)
    counts;
  List.fold_left Float.max 0.0 !periods

let utilization result id =
  if result.Engine.end_time = 0 then 0.0
  else
    float_of_int result.Engine.fire_counts.(id)
    /. (float_of_int result.Engine.end_time /. 2.0)
