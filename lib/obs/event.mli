(** Typed trace events emitted by the simulators.

    Every event carries the simulated [time] it happened at and a [track]
    — the lane it should be drawn on in a trace viewer.  The
    graph-level simulator ({!Sim.Engine}) uses one track per instruction
    cell; the machine-level simulator ({!Machine.Machine_engine}) uses
    one track per processing element, so PE occupancy is visible
    directly.  Times are in instruction times (the paper's integer
    clock), exported 1:1 as trace microseconds by {!Perfetto}. *)

type t =
  | Fire of {
      time : int;  (** firing start *)
      dur : int;  (** occupancy: 1 for the graph simulator, PE dispatch
                      through FU completion for the machine simulator *)
      track : int;
      node : int;  (** instruction cell id *)
      label : string;
      op : string;  (** opcode name *)
    }
  | Deliver of {
      time : int;  (** arrival time at [dst] *)
      track : int;
      src : int;
      dst : int;
      port : int;
      value : string;
    }
  | Ack of {
      time : int;  (** arrival time at [dst] (the producer being freed) *)
      track : int;
      src : int;  (** the consumer that issued the acknowledge *)
      dst : int;
    }
  | Stall of {
      time : int;  (** quiescence time at which the condition was seen *)
      track : int;
      node : int;
      label : string;
      reason : string;  (** deadlock/stall diagnostic *)
    }
  | Fault_injected of {
      time : int;  (** time the perturbed packet/dispatch was issued *)
      track : int;
      kind : string;  (** "delay", "ack-delay", "dup", "drop-ack",
                          "pe-stall", … *)
      src : int;
      dst : int;
      extra : int;  (** injected extra latency (0 for drop/dup) *)
    }
  | Violation of {
      time : int;
      track : int;
      node : int;
      label : string;
      kind : string;  (** {!Fault.Violation.kind_name} of the breach *)
      detail : string;
    }
  | Checkpoint of {
      time : int;
      track : int;
      seq : int;  (** checkpoint ordinal within the run *)
      in_flight : int;  (** packets resident in the event queue *)
    }
  | Recovery of {
      time : int;  (** crash time *)
      track : int;
      pe : int;  (** the processing element that fail-stopped *)
      restored_to : int;  (** checkpoint time rolled back to *)
      remapped : int;  (** cells re-hosted onto surviving PEs *)
    }
  | Retransmit of {
      time : int;  (** resend time *)
      track : int;
      src : int;
      dst : int;
      port : int;
      attempt : int;  (** 1-based resend attempt *)
    }
  | Corrupt_injected of {
      time : int;  (** time the packet was issued into the network *)
      track : int;
      src : int;
      dst : int;
      port : int;
      was : string;  (** payload as sent *)
      became : string;  (** payload as delivered (one bit flipped) *)
    }
  | Corrupt_detected of {
      time : int;  (** arrival time; the packet is discarded *)
      track : int;
      src : int;
      dst : int;
      port : int;
      seq : int;  (** channel sequence number (0 without recovery) *)
    }
  | Corrupt_healed of {
      time : int;  (** arrival time of the clean retransmitted copy *)
      track : int;
      src : int;
      dst : int;
      port : int;
      seq : int;
    }

val time : t -> int
val track : t -> int

val describe : t -> string
(** One-line human-readable rendering (for debugging and logs). *)
