(** Low-overhead ring-buffer event sink.

    Instrumented hot loops test {!enabled} (a single field read) before
    constructing an event, so a disabled tracer — the {!null} default
    every engine uses when no [?tracer] is passed — costs one branch per
    instrumentation point and allocates nothing.

    An enabled tracer keeps the most recent [capacity] events: when the
    ring is full the oldest event is overwritten and {!dropped} counts
    it, so a bounded-memory tracer can watch an unbounded simulation. *)

type t

val null : t
(** The disabled sink: {!enabled} is [false], {!emit} is a no-op. *)

val create : ?capacity:int -> unit -> t
(** An enabled tracer retaining the last [capacity] events (default
    [2^22]).  @raise Invalid_argument if [capacity <= 0]. *)

val enabled : t -> bool

val emit : t -> Event.t -> unit
(** Record an event (no-op on {!null}); overwrites the oldest event when
    the ring is full. *)

val length : t -> int
(** Events currently retained. *)

val total : t -> int
(** Events ever emitted (retained + dropped). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val clear : t -> unit
(** Forget all events (and the drop count). *)
