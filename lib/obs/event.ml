type t =
  | Fire of {
      time : int;
      dur : int;
      track : int;
      node : int;
      label : string;
      op : string;
    }
  | Deliver of {
      time : int;
      track : int;
      src : int;
      dst : int;
      port : int;
      value : string;
    }
  | Ack of { time : int; track : int; src : int; dst : int }
  | Stall of {
      time : int;
      track : int;
      node : int;
      label : string;
      reason : string;
    }

let time = function
  | Fire { time; _ } | Deliver { time; _ } | Ack { time; _ }
  | Stall { time; _ } ->
    time

let track = function
  | Fire { track; _ } | Deliver { track; _ } | Ack { track; _ }
  | Stall { track; _ } ->
    track

let describe = function
  | Fire { time; node; label; op; dur; _ } ->
    Printf.sprintf "[t=%d] FIRE %s#%d (%s, dur %d)" time label node op dur
  | Deliver { time; src; dst; port; value; _ } ->
    Printf.sprintf "[t=%d] DELIVER #%d -> #%d.%d = %s" time src dst port value
  | Ack { time; src; dst; _ } ->
    Printf.sprintf "[t=%d] ACK #%d -> #%d" time src dst
  | Stall { time; node; label; reason; _ } ->
    Printf.sprintf "[t=%d] STALL %s#%d: %s" time label node reason
