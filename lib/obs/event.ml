type t =
  | Fire of {
      time : int;
      dur : int;
      track : int;
      node : int;
      label : string;
      op : string;
    }
  | Deliver of {
      time : int;
      track : int;
      src : int;
      dst : int;
      port : int;
      value : string;
    }
  | Ack of { time : int; track : int; src : int; dst : int }
  | Stall of {
      time : int;
      track : int;
      node : int;
      label : string;
      reason : string;
    }
  | Fault_injected of {
      time : int;
      track : int;
      kind : string;
      src : int;
      dst : int;
      extra : int;
    }
  | Violation of {
      time : int;
      track : int;
      node : int;
      label : string;
      kind : string;
      detail : string;
    }
  | Checkpoint of { time : int; track : int; seq : int; in_flight : int }
  | Recovery of {
      time : int;
      track : int;
      pe : int;
      restored_to : int;
      remapped : int;
    }
  | Retransmit of {
      time : int;
      track : int;
      src : int;
      dst : int;
      port : int;
      attempt : int;
    }
  | Corrupt_injected of {
      time : int;
      track : int;
      src : int;
      dst : int;
      port : int;
      was : string;
      became : string;
    }
  | Corrupt_detected of {
      time : int;
      track : int;
      src : int;
      dst : int;
      port : int;
      seq : int;
    }
  | Corrupt_healed of {
      time : int;
      track : int;
      src : int;
      dst : int;
      port : int;
      seq : int;
    }

let time = function
  | Fire { time; _ } | Deliver { time; _ } | Ack { time; _ }
  | Stall { time; _ } | Fault_injected { time; _ } | Violation { time; _ }
  | Checkpoint { time; _ } | Recovery { time; _ } | Retransmit { time; _ }
  | Corrupt_injected { time; _ } | Corrupt_detected { time; _ }
  | Corrupt_healed { time; _ } ->
    time

let track = function
  | Fire { track; _ } | Deliver { track; _ } | Ack { track; _ }
  | Stall { track; _ } | Fault_injected { track; _ } | Violation { track; _ }
  | Checkpoint { track; _ } | Recovery { track; _ } | Retransmit { track; _ }
  | Corrupt_injected { track; _ } | Corrupt_detected { track; _ }
  | Corrupt_healed { track; _ } ->
    track

let describe = function
  | Fire { time; node; label; op; dur; _ } ->
    Printf.sprintf "[t=%d] FIRE %s#%d (%s, dur %d)" time label node op dur
  | Deliver { time; src; dst; port; value; _ } ->
    Printf.sprintf "[t=%d] DELIVER #%d -> #%d.%d = %s" time src dst port value
  | Ack { time; src; dst; _ } ->
    Printf.sprintf "[t=%d] ACK #%d -> #%d" time src dst
  | Stall { time; node; label; reason; _ } ->
    Printf.sprintf "[t=%d] STALL %s#%d: %s" time label node reason
  | Fault_injected { time; kind; src; dst; extra; _ } ->
    Printf.sprintf "[t=%d] FAULT %s #%d -> #%d (+%d)" time kind src dst extra
  | Violation { time; node; label; kind; detail; _ } ->
    Printf.sprintf "[t=%d] VIOLATION %s at %s#%d: %s" time kind label node
      detail
  | Checkpoint { time; seq; in_flight; _ } ->
    Printf.sprintf "[t=%d] CHECKPOINT #%d (%d packets in flight)" time seq
      in_flight
  | Recovery { time; pe; restored_to; remapped; _ } ->
    Printf.sprintf "[t=%d] RECOVERY PE %d crashed; rolled back to t=%d, %d \
                    cell(s) re-hosted" time pe restored_to remapped
  | Retransmit { time; src; dst; port; attempt; _ } ->
    Printf.sprintf "[t=%d] RETRANSMIT #%d -> #%d.%d (attempt %d)" time src dst
      port attempt
  | Corrupt_injected { time; src; dst; port; was; became; _ } ->
    Printf.sprintf "[t=%d] CORRUPT #%d -> #%d.%d: %s flipped to %s" time src
      dst port was became
  | Corrupt_detected { time; src; dst; port; seq; _ } ->
    Printf.sprintf "[t=%d] CORRUPT-DETECTED #%d -> #%d.%d seq %d (discarded)"
      time src dst port seq
  | Corrupt_healed { time; src; dst; port; seq; _ } ->
    Printf.sprintf "[t=%d] CORRUPT-HEALED #%d -> #%d.%d seq %d (clean resend \
                    accepted)" time src dst port seq
