type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type hist = { mutable values : float list; mutable n : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let schema = "dataflow_pipelining.metrics/1"

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let set t name v = Hashtbl.replace t.gauges name v

let observe t name v =
  match Hashtbl.find_opt t.hists name with
  | Some h ->
    h.values <- v :: h.values;
    h.n <- h.n + 1
  | None -> Hashtbl.add t.hists name { values = [ v ]; n = 1 }

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name = Hashtbl.find_opt t.gauges name

let quantile sorted q =
  let n = Array.length sorted in
  let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) i))

let summary t name =
  match Hashtbl.find_opt t.hists name with
  | None | Some { n = 0; _ } -> None
  | Some h ->
    let sorted = Array.of_list h.values in
    Array.sort compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    Some
      {
        count = h.n;
        sum;
        min = sorted.(0);
        max = sorted.(Array.length sorted - 1);
        mean = sum /. float_of_int h.n;
        p50 = quantile sorted 0.50;
        p90 = quantile sorted 0.90;
        p99 = quantile sorted 0.99;
      }

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let summary_json s =
  Json.Obj
    [ ("count", Json.Int s.count); ("sum", Json.Float s.sum);
      ("min", Json.Float s.min); ("max", Json.Float s.max);
      ("mean", Json.Float s.mean); ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90); ("p99", Json.Float s.p99) ]

let to_json t =
  Json.Obj
    [ ("schema", Json.String schema);
      ("counters",
       Json.Obj
         (List.map
            (fun k -> (k, Json.Int (counter t k)))
            (sorted_keys t.counters)));
      ("gauges",
       Json.Obj
         (List.map
            (fun k -> (k, Json.Float (Hashtbl.find t.gauges k)))
            (sorted_keys t.gauges)));
      ("histograms",
       Json.Obj
         (List.filter_map
            (fun k -> Option.map (fun s -> (k, summary_json s)) (summary t k))
            (sorted_keys t.hists))) ]

let write_file t path = Json.write_file path (to_json t)

let render t =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter (fun k -> line "  %-40s %d" k (counter t k)) (sorted_keys t.counters);
  List.iter
    (fun k -> line "  %-40s %g" k (Hashtbl.find t.gauges k))
    (sorted_keys t.gauges);
  List.iter
    (fun k ->
      match summary t k with
      | None -> ()
      | Some s ->
        line "  %-40s n=%d mean=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
          k s.count s.mean s.min s.p50 s.p90 s.p99 s.max)
    (sorted_keys t.hists);
  Buffer.contents buf
