(** Schema'd benchmark-result writer.

    The bench harness ([bench/main.ml]) records one {!entry} per
    experiment — the paper's predicted value, the measured value and a
    PASS/FAIL verdict — and writes them as a single JSON document
    ([BENCH_PIPELINE.json]) so the performance trajectory can be tracked
    across commits by tooling rather than by reading PASS/FAIL text.

    Document shape (schema [dataflow_pipelining.bench/1]):
    {v
    { "schema": "dataflow_pipelining.bench/1",
      "total": 16, "failures": 0,
      "results": [ { "id": "E1", "title": ..., "ok": true,
                     "verdict": "PASS", "units": ...,
                     "predicted": 2.0, "measured": 2.003, ... }, ... ] }
    v} *)

type entry = {
  id : string;  (** experiment id, e.g. ["E1"] *)
  title : string;
  predicted : float option;  (** the paper's predicted value, if any *)
  measured : float option;
  units : string;  (** unit of predicted/measured *)
  ok : bool;
  detail : string;  (** one-line description of what was checked *)
  extra : (string * Json.t) list;  (** additional per-experiment fields *)
}

val entry :
  ?predicted:float ->
  ?measured:float ->
  ?units:string ->
  ?detail:string ->
  ?extra:(string * Json.t) list ->
  ok:bool ->
  string ->
  string ->
  entry
(** [entry ~ok id title]; [units] defaults to ["instruction times"]. *)

val json_of_entry : entry -> Json.t
(** One entry as its document row (the elements of ["results"]), for
    tools that splice entries into an existing document. *)

val to_json : ?meta:(string * Json.t) list -> entry list -> Json.t
(** The full document; [meta] fields are spliced in at top level. *)

val write_file : path:string -> ?meta:(string * Json.t) list -> entry list -> unit
