let pid = 1

let metadata ?process_name track_names =
  let process =
    match process_name with
    | None -> []
    | Some name ->
      [ Json.Obj
          [ ("ph", Json.String "M"); ("pid", Json.Int pid);
            ("name", Json.String "process_name");
            ("args", Json.Obj [ ("name", Json.String name) ]) ] ]
  in
  process
  @ List.map
      (fun (tid, name) ->
        Json.Obj
          [ ("ph", Json.String "M"); ("pid", Json.Int pid);
            ("tid", Json.Int tid); ("name", Json.String "thread_name");
            ("args", Json.Obj [ ("name", Json.String name) ]) ])
      track_names

let json_of_event ev =
  let common ~ph ~name ~cat ~ts ~tid args =
    Json.Obj
      ([ ("name", Json.String name); ("cat", Json.String cat);
         ("ph", Json.String ph); ("ts", Json.Int ts); ("pid", Json.Int pid);
         ("tid", Json.Int tid) ]
      @ args)
  in
  match ev with
  | Event.Fire { time; dur; track; node; label; op } ->
    common ~ph:"X"
      ~name:(Printf.sprintf "%s#%d" label node)
      ~cat:"fire" ~ts:time ~tid:track
      [ ("dur", Json.Int (max 1 dur));
        ("args",
         Json.Obj [ ("node", Json.Int node); ("op", Json.String op) ]) ]
  | Event.Deliver { time; track; src; dst; port; value } ->
    common ~ph:"i" ~name:"deliver" ~cat:"packet" ~ts:time ~tid:track
      [ ("s", Json.String "t");
        ("args",
         Json.Obj
           [ ("src", Json.Int src); ("dst", Json.Int dst);
             ("port", Json.Int port); ("value", Json.String value) ]) ]
  | Event.Ack { time; track; src; dst } ->
    common ~ph:"i" ~name:"ack" ~cat:"packet" ~ts:time ~tid:track
      [ ("s", Json.String "t");
        ("args", Json.Obj [ ("src", Json.Int src); ("dst", Json.Int dst) ]) ]
  | Event.Stall { time; track; node; label; reason } ->
    common ~ph:"i" ~name:"stall" ~cat:"diagnostic" ~ts:time ~tid:track
      [ ("s", Json.String "p");
        ("args",
         Json.Obj
           [ ("node", Json.Int node); ("label", Json.String label);
             ("reason", Json.String reason) ]) ]
  | Event.Fault_injected { time; track; kind; src; dst; extra } ->
    common ~ph:"i"
      ~name:(Printf.sprintf "fault:%s" kind)
      ~cat:"fault" ~ts:time ~tid:track
      [ ("s", Json.String "t");
        ("args",
         Json.Obj
           [ ("kind", Json.String kind); ("src", Json.Int src);
             ("dst", Json.Int dst); ("extra", Json.Int extra) ]) ]
  | Event.Violation { time; track; node; label; kind; detail } ->
    common ~ph:"i"
      ~name:(Printf.sprintf "violation:%s" kind)
      ~cat:"diagnostic" ~ts:time ~tid:track
      [ ("s", Json.String "p");
        ("args",
         Json.Obj
           [ ("node", Json.Int node); ("label", Json.String label);
             ("kind", Json.String kind); ("detail", Json.String detail) ]) ]
  | Event.Checkpoint { time; track; seq; in_flight } ->
    common ~ph:"i"
      ~name:(Printf.sprintf "checkpoint:%d" seq)
      ~cat:"recovery" ~ts:time ~tid:track
      [ ("s", Json.String "p");
        ("args",
         Json.Obj [ ("seq", Json.Int seq); ("in_flight", Json.Int in_flight) ])
      ]
  | Event.Recovery { time; track; pe; restored_to; remapped } ->
    common ~ph:"i"
      ~name:(Printf.sprintf "recovery:pe%d" pe)
      ~cat:"recovery" ~ts:time ~tid:track
      [ ("s", Json.String "p");
        ("args",
         Json.Obj
           [ ("pe", Json.Int pe); ("restored_to", Json.Int restored_to);
             ("remapped", Json.Int remapped) ]) ]
  | Event.Retransmit { time; track; src; dst; port; attempt } ->
    common ~ph:"i" ~name:"retransmit" ~cat:"recovery" ~ts:time ~tid:track
      [ ("s", Json.String "t");
        ("args",
         Json.Obj
           [ ("src", Json.Int src); ("dst", Json.Int dst);
             ("port", Json.Int port); ("attempt", Json.Int attempt) ]) ]
  | Event.Corrupt_injected { time; track; src; dst; port; was; became } ->
    common ~ph:"i" ~name:"corrupt" ~cat:"fault" ~ts:time ~tid:track
      [ ("s", Json.String "t");
        ("args",
         Json.Obj
           [ ("src", Json.Int src); ("dst", Json.Int dst);
             ("port", Json.Int port); ("was", Json.String was);
             ("became", Json.String became) ]) ]
  | Event.Corrupt_detected { time; track; src; dst; port; seq } ->
    common ~ph:"i" ~name:"corrupt-detected" ~cat:"integrity" ~ts:time
      ~tid:track
      [ ("s", Json.String "t");
        ("args",
         Json.Obj
           [ ("src", Json.Int src); ("dst", Json.Int dst);
             ("port", Json.Int port); ("seq", Json.Int seq) ]) ]
  | Event.Corrupt_healed { time; track; src; dst; port; seq } ->
    common ~ph:"i" ~name:"corrupt-healed" ~cat:"integrity" ~ts:time ~tid:track
      [ ("s", Json.String "t");
        ("args",
         Json.Obj
           [ ("src", Json.Int src); ("dst", Json.Int dst);
             ("port", Json.Int port); ("seq", Json.Int seq) ]) ]

let json_of_events ?process_name ?(track_names = []) events =
  Json.Obj
    [ ("traceEvents",
       Json.List
         (metadata ?process_name track_names @ List.map json_of_event events));
      ("displayTimeUnit", Json.String "ms");
      ("otherData",
       Json.Obj [ ("generator", Json.String "dataflow_pipelining.obs") ]) ]

let to_string ?process_name ?track_names events =
  Json.to_string (json_of_events ?process_name ?track_names events)

let write_file ~path ?process_name ?track_names events =
  Json.write_file path (json_of_events ?process_name ?track_names events)

let slice_count doc =
  Json.member "traceEvents" doc
  |> Json.get_list
  |> List.filter (fun ev -> Json.get_string (Json.member "ph" ev) = Some "X")
  |> List.length
