(** Chrome trace-event (Perfetto) export.

    Converts a list of {!Event.t} into the JSON object format understood
    by [chrome://tracing] and {{:https://ui.perfetto.dev}ui.perfetto.dev}:
    each track (instruction cell or PE) becomes a named thread, every
    {!Event.Fire} a complete duration slice ([ph = "X"]), and
    deliver/ack/stall events become instants on the receiving track.
    Simulated instruction times are exported 1:1 as trace microseconds. *)

val json_of_events :
  ?process_name:string ->
  ?track_names:(int * string) list ->
  Event.t list ->
  Json.t
(** Build the trace document.  [track_names] names the [tid] lanes
    (cell ids for the graph simulator, PE numbers for the machine
    simulator); unnamed tracks show as bare thread ids. *)

val to_string :
  ?process_name:string ->
  ?track_names:(int * string) list ->
  Event.t list ->
  string

val write_file :
  path:string ->
  ?process_name:string ->
  ?track_names:(int * string) list ->
  Event.t list ->
  unit

val slice_count : Json.t -> int
(** Number of duration slices ([ph = "X"]) in a parsed trace document —
    equals the number of firings the trace records. *)
