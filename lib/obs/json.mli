(** Minimal JSON tree, printer and parser.

    The observability sinks ({!Perfetto}, {!Metrics_registry},
    {!Bench_json}) serialize through this module so the repository needs
    no external JSON dependency.  The printer emits strictly valid JSON:
    non-finite floats become [null], control characters are escaped, and
    finite floats print with enough digits that [of_string (to_string j)]
    recovers the exact same bits.  Wire formats that must carry
    non-finite or bit-exact reals (checkpoints, the dfserve protocol)
    encode them as ["%h"] hex-float strings instead of JSON numbers.
    The parser accepts exactly the JSON this printer produces (plus
    standard whitespace) and is used by the test suite to check
    well-formedness of exported traces. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val write_file : string -> t -> unit
(** Write [to_string] plus a trailing newline to a file. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document. @raise Parse_error on malformed
    input or trailing garbage. *)

(** {2 Accessors} — total functions for digging into parsed documents. *)

val member : string -> t -> t
(** Field of an object; [Null] when absent or not an object. *)

val get_list : t -> t list
(** Elements of a [List]; [[]] otherwise. *)

val get_string : t -> string option
val get_int : t -> int option

val get_float : t -> float option
(** Accepts [Int] too. *)

val get_bool : t -> bool option
