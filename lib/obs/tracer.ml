type t = {
  enabled : bool;
  capacity : int;
  mutable buf : Event.t array;  (* allocated lazily on the first emit *)
  mutable start : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
}

let null = { enabled = false; capacity = 0; buf = [||]; start = 0; len = 0; dropped = 0 }

let create ?(capacity = 1 lsl 22) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { enabled = true; capacity; buf = [||]; start = 0; len = 0; dropped = 0 }

let enabled t = t.enabled

let emit t ev =
  if t.enabled then begin
    if Array.length t.buf = 0 then t.buf <- Array.make t.capacity ev;
    if t.len < t.capacity then begin
      t.buf.((t.start + t.len) mod t.capacity) <- ev;
      t.len <- t.len + 1
    end
    else begin
      (* full: overwrite the oldest *)
      t.buf.(t.start) <- ev;
      t.start <- (t.start + 1) mod t.capacity;
      t.dropped <- t.dropped + 1
    end
  end

let length t = t.len
let dropped t = t.dropped
let total t = t.len + t.dropped

let events t =
  List.init t.len (fun i -> t.buf.((t.start + i) mod t.capacity))

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
