type entry = {
  id : string;
  title : string;
  predicted : float option;
  measured : float option;
  units : string;
  ok : bool;
  detail : string;
  extra : (string * Json.t) list;
}

let schema = "dataflow_pipelining.bench/1"

let entry ?predicted ?measured ?(units = "instruction times") ?(detail = "")
    ?(extra = []) ~ok id title =
  { id; title; predicted; measured; units; ok; detail; extra }

let opt_float name = function
  | None -> []
  | Some f -> [ (name, Json.Float f) ]

let json_of_entry e =
  Json.Obj
    ([ ("id", Json.String e.id); ("title", Json.String e.title);
       ("ok", Json.Bool e.ok);
       ("verdict", Json.String (if e.ok then "PASS" else "FAIL"));
       ("units", Json.String e.units) ]
    @ opt_float "predicted" e.predicted
    @ opt_float "measured" e.measured
    @ (if e.detail = "" then [] else [ ("detail", Json.String e.detail) ])
    @ e.extra)

let to_json ?(meta = []) entries =
  Json.Obj
    ([ ("schema", Json.String schema) ]
    @ meta
    @ [ ("total", Json.Int (List.length entries));
        ("failures",
         Json.Int (List.length (List.filter (fun e -> not e.ok) entries)));
        ("results", Json.List (List.map json_of_entry entries)) ])

let write_file ~path ?meta entries =
  Json.write_file path (to_json ?meta entries)
