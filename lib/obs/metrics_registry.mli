(** Named counters, gauges and histograms with JSON serialization.

    A registry is a bag of metrics keyed by dotted names
    (["sim.firings"], ["machine.pe.3.dispatches"], …).  Counters are
    monotonic integers, gauges hold the last float written, histograms
    accumulate observations and serialize as summary statistics
    (count/min/max/mean and p50/p90/p99 quantiles).

    Serialization is deterministic (keys sorted) so metric files diff
    cleanly across runs. *)

type t

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a counter (created at 0 on first use); [by] defaults to 1. *)

val set : t -> string -> float -> unit
(** Write a gauge. *)

val observe : t -> string -> float -> unit
(** Add one observation to a histogram. *)

val counter : t -> string -> int
(** Current counter value; 0 when never incremented. *)

val gauge : t -> string -> float option

val summary : t -> string -> summary option
(** Summary statistics of a histogram; [None] when it has no
    observations. *)

val to_json : t -> Json.t
(** [{"schema": ..., "counters": {...}, "gauges": {...},
    "histograms": {name: {count, min, max, mean, p50, p90, p99}}}]. *)

val write_file : t -> string -> unit

val render : t -> string
(** Aligned plain-text rendering for terminal output. *)
