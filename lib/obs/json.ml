type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      (* JSON has no non-finite numbers; wire formats that need them
         exact carry reals as hex-float strings instead (see mli) *)
      Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      (* keep integral floats readable and round-trippable *)
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else
      (* shortest decimal form that parses back to the same bits: try
         12 significant digits for readability, fall back to the 17
         IEEE-754 doubles always round-trip through *)
      let s = Printf.sprintf "%.12g" f in
      let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
      (* keep a '.' or exponent so the parser reads a Float, not an Int *)
      let s =
        if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
        else s ^ ".0"
      in
      Buffer.add_string buf s
  | String s ->
    Buffer.add_char buf '"';
    add_escaped buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        add_escaped buf k;
        Buffer.add_string buf "\":";
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let n = String.length s in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail "bad literal"
  in
  let number () =
    let start = !pos in
    let part c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && part s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number")
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let finished = ref false in
    while not !finished do
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
          incr pos;
          finished := true
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
            if !pos + 4 >= n then fail "bad unicode escape";
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
            | Some _ -> Buffer.add_char buf '?'
            | None -> fail "bad unicode escape");
            pos := !pos + 5
          | _ -> fail "bad escape")
        | c ->
          Buffer.add_char buf c;
          incr pos
    done;
    Buffer.contents buf
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> String (string_lit ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "unexpected character"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      List []
    end
    else
      let rec items acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          items (v :: acc)
        | Some ']' ->
          incr pos;
          List (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      items []
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else
      let rec items acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          items ((k, v) :: acc)
        | Some '}' ->
          incr pos;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      items []
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj kvs -> ( match List.assoc_opt key kvs with Some v -> v | None -> Null)
  | _ -> Null

let get_list = function List xs -> xs | _ -> []
let get_string = function String s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
