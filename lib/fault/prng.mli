(** Deterministic splitmix64 pseudo-random numbers — no global state.

    Two interfaces:

    - a sequential stream ({!create}/{!int}/{!float}) for callers that
      draw an ordered sequence of variates;
    - a keyed, stateless hash ({!mix}) for per-decision randomness that
      must not depend on evaluation order: hashing [(seed, keys)] gives
      the same variate no matter how many other decisions were made
      first, which is what makes fault injection bit-reproducible.

    Same seed ⇒ identical variates, on every platform (pure [Int64]
    arithmetic, no [Random] and no FPU dependence). *)

type t

val create : int -> t

val int64 : t -> int64
(** Next raw 64-bit variate. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)] (53-bit resolution). *)

val mix : int -> int list -> int64
(** [mix seed keys]: stateless keyed hash of [seed] and [keys]. *)

val float_of_hash : int64 -> float
(** Map a hash to a uniform float in [\[0, 1)]. *)

val int_of_hash : int64 -> int -> int
(** [int_of_hash h bound] maps a hash to [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
