(** Structured stall / deadlock reports.

    When a run ends with work left undone — quiescent with tokens still
    resident (a deadlock), halted by the progress watchdog, or cut off
    at [max_time] — the engine builds one of these instead of a string
    list: which cells are blocked, what each one holds and waits for,
    and, when the wait-for graph contains one, the cycle that explains
    the deadlock. *)

type reason =
  | Deadlock  (** quiescent, but tokens remain resident *)
  | No_progress  (** the watchdog saw no firing for its window *)
  | Max_time_exhausted  (** the simulation clock ran out, not quiescent *)

type blocked = {
  b_node : int;
  b_label : string;
  b_op : string;  (** opcode name *)
  b_missing : int list;  (** arc ports still waiting for an operand *)
  b_held : (int * string) list;  (** occupied ports: [(port, value)] *)
  b_pending_acks : int;  (** acknowledges the cell is still owed *)
  b_queue_len : int;  (** resident FIFO items *)
  b_pending_inputs : int;  (** unsent packets of an [Input] stream *)
}

type t = {
  sr_time : int;  (** simulated time the stall was detected at *)
  sr_reason : reason;
  sr_blocked : blocked list;
  sr_cycle : int list option;
      (** a cycle in the wait-for graph reachable from a blocked cell,
          as node ids in dependency order, when one exists *)
  sr_dead_pes : int list;
      (** processing elements that fail-stopped and were never recovered
          — their cells can never fire, which explains wedges that have
          no wait-for cycle *)
}

val make :
  ?dead_pes:int list ->
  time:int -> reason:reason -> blocked:blocked list -> edges:(int * int) list
  -> unit -> t
(** [edges] are wait-for edges [(waiter, waited_on)] — a cell waiting
    for an operand points at the producer of the empty port; a cell
    waiting for acknowledges points at the consumers still holding its
    tokens.  [make] finds a cycle reachable from the blocked set.
    [dead_pes] (default none) records unrecovered PE crashes. *)

val reason_name : reason -> string

val blocked_line : blocked -> string
(** One-line rendering of a blocked cell ("label#id holds …; awaits …"). *)

val to_strings : t -> string list
(** One line per blocked cell, in the style of the old [stuck] strings
    (the CLI output path). *)

val to_string : t -> string
(** Multi-line rendering: header, blocked cells, cycle if any. *)
