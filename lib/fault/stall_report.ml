type reason = Deadlock | No_progress | Max_time_exhausted

type blocked = {
  b_node : int;
  b_label : string;
  b_op : string;
  b_missing : int list;
  b_held : (int * string) list;
  b_pending_acks : int;
  b_queue_len : int;
  b_pending_inputs : int;
}

type t = {
  sr_time : int;
  sr_reason : reason;
  sr_blocked : blocked list;
  sr_cycle : int list option;
  sr_dead_pes : int list;
}

let reason_name = function
  | Deadlock -> "deadlock"
  | No_progress -> "no-progress"
  | Max_time_exhausted -> "max-time-exhausted"

(* A cycle in [edges] reachable from [roots]: colored DFS, cycle
   recovered from the visiting stack. *)
let find_cycle ~roots ~edges =
  let adj = Hashtbl.create 64 in
  List.iter
    (fun (a, b) -> Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
    edges;
  let color = Hashtbl.create 64 in (* 1 = on stack, 2 = done *)
  let cycle = ref None in
  let rec dfs stack v =
    if !cycle = None then
      match Hashtbl.find_opt color v with
      | Some 1 ->
        (* back edge: the cycle is the stack suffix from v *)
        let rec suffix = function
          | [] -> []
          | x :: rest -> if x = v then [ x ] else x :: suffix rest
        in
        cycle := Some (List.rev (suffix stack))
      | Some _ -> ()
      | None ->
        Hashtbl.replace color v 1;
        List.iter
          (dfs (v :: stack))
          (Option.value ~default:[] (Hashtbl.find_opt adj v));
        Hashtbl.replace color v 2
  in
  List.iter (fun r -> if !cycle = None then dfs [] r) roots;
  !cycle

let make ?(dead_pes = []) ~time ~reason ~blocked ~edges () =
  let roots = List.map (fun b -> b.b_node) blocked in
  {
    sr_time = time;
    sr_reason = reason;
    sr_blocked = blocked;
    sr_cycle = find_cycle ~roots ~edges;
    sr_dead_pes = dead_pes;
  }

let blocked_line b =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  if b.b_held <> [] then
    add "holds %s"
      (String.concat ","
         (List.map
            (fun (port, v) -> Printf.sprintf "port%d=%s" port v)
            b.b_held));
  if b.b_queue_len > 0 then add "fifo(%d items)" b.b_queue_len;
  if b.b_pending_inputs > 0 then add "%d unsent inputs" b.b_pending_inputs;
  if b.b_missing <> [] then
    add "awaits port%s %s"
      (if List.length b.b_missing > 1 then "s" else "")
      (String.concat "," (List.map string_of_int b.b_missing));
  if b.b_pending_acks > 0 then add "owed %d ack(s)" b.b_pending_acks;
  Printf.sprintf "%s#%d %s" b.b_label b.b_node
    (String.concat "; " (List.rev !parts))

let to_strings t = List.map blocked_line t.sr_blocked

let to_string t =
  let header =
    Printf.sprintf "stall (%s) at t=%d: %d blocked cell(s)"
      (reason_name t.sr_reason) t.sr_time
      (List.length t.sr_blocked)
  in
  let dead =
    match t.sr_dead_pes with
    | [] -> []
    | pes ->
      [ Printf.sprintf "dead PE(s): %s (cells hosted there can never fire)"
          (String.concat "," (List.map string_of_int pes)) ]
  in
  let cycle =
    match t.sr_cycle with
    | None -> []
    | Some ids ->
      [ Printf.sprintf "wait-for cycle: %s"
          (String.concat " -> "
             (List.map (fun id -> Printf.sprintf "#%d" id) (ids @ [ List.hd ids ]))) ]
  in
  String.concat "\n"
    ((header :: List.map (fun l -> "  " ^ l) (to_strings t)) @ dead @ cycle)
  ^ "\n"
