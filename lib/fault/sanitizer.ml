open Dfg

type state = {
  graph : Graph.t;
  occupied : bool array array; (* node -> arc port -> shadow occupancy *)
  is_arc : bool array array;
  producer : int array array;
  owed : int array; (* node -> acknowledges outstanding *)
  last_out : int array; (* output node -> last arrival time *)
  limit : int;
  mutable violations_rev : Violation.t list;
  mutable count : int;
  mutable tripped : bool;
}

type t = state option

let null = None

let create ?(limit = 64) g =
  if limit <= 0 then invalid_arg "Sanitizer.create: limit <= 0";
  let n = Graph.node_count g in
  let producers = Graph.producers g in
  let occupied = Array.init n (fun _ -> [||]) in
  let is_arc = Array.init n (fun _ -> [||]) in
  let producer = Array.init n (fun _ -> [||]) in
  let owed = Array.make n 0 in
  for id = 0 to n - 1 do
    let node = Graph.node g id in
    let arity = Array.length node.Graph.inputs in
    occupied.(id) <- Array.make arity false;
    is_arc.(id) <- Array.make arity false;
    producer.(id) <- Array.make arity (-1);
    Array.iteri
      (fun port binding ->
        (match producers.(id).(port) with
        | [| (src, _) |] -> producer.(id).(port) <- src
        | _ -> ());
        match binding with
        | Graph.In_arc -> is_arc.(id).(port) <- true
        | Graph.In_arc_init _ ->
          is_arc.(id).(port) <- true;
          occupied.(id).(port) <- true;
          let src = producer.(id).(port) in
          if src >= 0 then owed.(src) <- owed.(src) + 1
        | Graph.In_const _ -> ())
      node.Graph.inputs
  done;
  Some
    {
      graph = g;
      occupied;
      is_arc;
      producer;
      owed;
      last_out = Array.make n min_int;
      limit;
      violations_rev = [];
      count = 0;
      tripped = false;
    }

let enabled = function None -> false | Some _ -> true

(* Shadow-state snapshot, for engines that roll back to a checkpoint:
   the sanitizer must travel with the machine state or every replayed
   event would double-count against the shadow accounting. *)
type snapshot = {
  sn_occupied : bool array array;
  sn_owed : int array;
  sn_last_out : int array;
  sn_violations : Violation.t list; (* oldest first *)
  sn_count : int;
  sn_tripped : bool;
}

let snapshot = function
  | None -> None
  | Some s ->
    Some
      {
        sn_occupied = Array.map Array.copy s.occupied;
        sn_owed = Array.copy s.owed;
        sn_last_out = Array.copy s.last_out;
        sn_violations = List.rev s.violations_rev;
        sn_count = s.count;
        sn_tripped = s.tripped;
      }

let restore t snap =
  match (t, snap) with
  | None, None -> ()
  | Some s, Some sn ->
    if Array.length sn.sn_owed <> Array.length s.owed then
      invalid_arg "Sanitizer.restore: snapshot is for a different graph";
    Array.iteri (fun i row -> s.occupied.(i) <- Array.copy row) sn.sn_occupied;
    Array.blit sn.sn_owed 0 s.owed 0 (Array.length s.owed);
    Array.blit sn.sn_last_out 0 s.last_out 0 (Array.length s.last_out);
    s.violations_rev <- List.rev sn.sn_violations;
    s.count <- sn.sn_count;
    s.tripped <- sn.sn_tripped
  | None, Some _ | Some _, None ->
    invalid_arg
      "Sanitizer.restore: snapshot and sanitizer presence disagree \
       (checkpointed run used a different --sanitize setting)"

let tripped = function None -> false | Some s -> s.tripped

let violations = function
  | None -> []
  | Some s -> List.rev s.violations_rev

let label s node = (Graph.node s.graph node).Graph.label

let record s kind ~node ~port ~time detail =
  let v =
    {
      Violation.v_kind = kind;
      v_node = node;
      v_label = label s node;
      v_port = port;
      v_time = time;
      v_detail = detail;
    }
  in
  if s.count < s.limit then s.violations_rev <- v :: s.violations_rev;
  s.count <- s.count + 1;
  if Violation.fatal kind then s.tripped <- true;
  Some v

let on_deliver t ~time ~src ~dst ~port =
  match t with
  | None -> None
  | Some s ->
    if s.occupied.(dst).(port) then
      record s Violation.Arc_capacity ~node:dst ~port:(Some port) ~time
        (Printf.sprintf "packet from %s#%d arrived while the port held a token"
           (label s src) src)
    else begin
      s.occupied.(dst).(port) <- true;
      None
    end

let on_consume t ~time ~node ~port =
  match t with
  | None -> None
  | Some s ->
    if not s.occupied.(node).(port) then
      record s Violation.Empty_consume ~node ~port:(Some port) ~time
        "consumed an operand the shadow state says is absent"
    else begin
      s.occupied.(node).(port) <- false;
      None
    end

let on_send t ~time ~node ~count =
  ignore time;
  match t with
  | None -> ()
  | Some s -> s.owed.(node) <- s.owed.(node) + count

let on_ack t ~time ~dst =
  match t with
  | None -> None
  | Some s ->
    if s.owed.(dst) <= 0 then
      record s Violation.Ack_underflow ~node:dst ~port:None ~time
        "acknowledge arrived with none outstanding"
    else begin
      s.owed.(dst) <- s.owed.(dst) - 1;
      None
    end

let on_output t ~time ~node =
  match t with
  | None -> None
  | Some s ->
    let prev = s.last_out.(node) in
    s.last_out.(node) <- max prev time;
    if time < prev then
      record s Violation.Nonmonotone_output ~node ~port:None ~time
        (Printf.sprintf "packet arrived at t=%d after one at t=%d" time prev)
    else None

let on_quiescence t ~time ~held =
  match t with
  | None -> []
  | Some s ->
    let n = Array.length s.occupied in
    let resident = Array.make n 0 in
    let out = ref [] in
    let push = function Some v -> out := v :: !out | None -> () in
    for node = 0 to n - 1 do
      Array.iteri
        (fun port occ ->
          if s.is_arc.(node).(port) then begin
            let src = s.producer.(node).(port) in
            if occ && src >= 0 then resident.(src) <- resident.(src) + 1;
            if occ <> held node port then
              push
                (record s Violation.Token_conservation ~node ~port:(Some port)
                   ~time
                   (Printf.sprintf
                      "engine sees the port %s, shadow accounting says %s"
                      (if held node port then "occupied" else "empty")
                      (if occ then "occupied" else "empty")))
          end)
        s.occupied.(node)
    done;
    for node = 0 to n - 1 do
      if s.owed.(node) <> resident.(node) then
        push
          (record s Violation.Ack_conservation ~node ~port:None ~time
             (Printf.sprintf
                "owed %d acknowledge(s) but %d of its token(s) are resident"
                s.owed.(node) resident.(node)))
    done;
    List.rev !out
