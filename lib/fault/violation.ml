type kind =
  | Arc_capacity
  | Empty_consume
  | Ack_underflow
  | Ack_conservation
  | Token_conservation
  | Nonmonotone_output

type t = {
  v_kind : kind;
  v_node : int;
  v_label : string;
  v_port : int option;
  v_time : int;
  v_detail : string;
}

let kind_name = function
  | Arc_capacity -> "arc-capacity"
  | Empty_consume -> "empty-consume"
  | Ack_underflow -> "ack-underflow"
  | Ack_conservation -> "ack-conservation"
  | Token_conservation -> "token-conservation"
  | Nonmonotone_output -> "nonmonotone-output"

let kind_of_name = function
  | "arc-capacity" -> Some Arc_capacity
  | "empty-consume" -> Some Empty_consume
  | "ack-underflow" -> Some Ack_underflow
  | "ack-conservation" -> Some Ack_conservation
  | "token-conservation" -> Some Token_conservation
  | "nonmonotone-output" -> Some Nonmonotone_output
  | _ -> None

let fatal = function
  | Arc_capacity | Empty_consume | Ack_underflow -> true
  | Ack_conservation | Token_conservation | Nonmonotone_output -> false

let to_string v =
  Printf.sprintf "[t=%d] %s at %s#%d%s: %s" v.v_time (kind_name v.v_kind)
    v.v_label v.v_node
    (match v.v_port with
    | Some p -> Printf.sprintf ".%d" p
    | None -> "")
    v.v_detail
