(** Seeded, deterministic fault plans for the simulators.

    A plan is a pure function of [(seed, decision key)] — each potential
    fault site (a packet leaving a cell at a time, a PE dispatching at a
    time, …) hashes its identity through {!Prng.mix}, so the same seed
    produces bit-identical perturbations on every run regardless of
    evaluation order.  No global state is touched.

    Fault kinds:

    - {b delay}: extra routing-network latency, on result packets and on
      acknowledge packets independently.  Delays never break the paper's
      acknowledge discipline (at most one packet per arc is ever in
      flight), so a correct graph must produce identical output streams —
      the property {!Fault_diff} checks.
    - {b dup}: a result packet is delivered twice (a misbehaving routing
      network).  This breaks the protocol and is what the sanitizer is
      for.  Machine simulator only.
    - {b drop-ack}: an acknowledge packet is lost, starving its producer
      — detected as an acknowledge-conservation violation and as a stall,
      or survived by retransmission when the machine runs with a
      recovery policy.  Machine simulator only.
    - {b drop}: a result packet is lost in the routing network, starving
      its consumer — watchdog-fatal without recovery, survivable with
      retransmission.  Machine simulator only.
    - {b stall}: a PE refuses to dispatch for a window of cycles.
      Machine simulator only; timing-only, outputs unchanged.
    - {b fu-slow}/{b am-slow}: extra function-unit / array-memory
      latency per operation.  Timing-only.
    - {b crash-pe}/{b crash-at}: the given processing element fail-stops
      at the given time, losing the volatile state of every cell it
      hosts.  Without recovery its cells never fire again (the watchdog
      reports the wedge); with recovery the engine rolls back to its
      last checkpoint and re-hosts the dead PE's cells on survivors.
      Machine simulator only.
    - {b corrupt}/{b corrupt-ctl}: silent data corruption — a payload
      bit flips in the routing network.  [corrupt] hits int/real result
      packets (one uniformly chosen bit; for reals the IEEE-754 sign bit
      is excluded so the flip is always value-visible), [corrupt-ctl]
      negates boolean control tokens.  Every token/ack invariant still
      holds, so the sanitizer cannot see it; detection needs the
      per-packet checksums of {!Integrity} (machine engine with
      integrity checking enabled), which discard the packet so the
      retransmission path heals it.  Machine simulator only.

    {!Sim.Engine} honours only the delay faults (its timing model has no
    PEs, FUs or AMs); {!Machine.Machine_engine} honours all of them. *)

type spec = {
  seed : int;
  delay_prob : float;    (** per packet: probability of extra delay *)
  delay_max : int;       (** extra delay is uniform in [1, delay_max] *)
  dup_prob : float;      (** per result packet: duplicated delivery *)
  drop_ack_prob : float; (** per acknowledge: packet lost *)
  drop_prob : float;     (** per result packet: packet lost *)
  stall_prob : float;    (** per PE dispatch: stall window inserted *)
  stall_max : int;       (** stall window is uniform in [1, stall_max] *)
  fu_slow : int;         (** extra FU latency per operation *)
  am_slow : int;         (** extra AM latency per operation *)
  crash_pe : int;        (** PE that fail-stops ([-1]: no crash) *)
  crash_at : int;        (** simulated time of the crash *)
  corrupt_prob : float;  (** per int/real result packet: payload bit flip *)
  corrupt_ctl_prob : float; (** per boolean control token: negated *)
}

val none : spec
(** All probabilities 0, all slowdowns 0; [delay_max = 8],
    [stall_max = 16] (the defaults used when only a probability is
    given). *)

val delays : ?prob:float -> ?max_delay:int -> int -> spec
(** [delays seed]: a delay-only plan (default [prob = 0.2],
    [max_delay = 8]) — safe for differential checks on both engines. *)

type t

val make : spec -> t
(** @raise Invalid_argument if a probability is outside [0, 1] or a
    magnitude is negative. *)

val spec : t -> spec
val seed : t -> int

val delay_only : t -> bool
(** No protocol-breaking or value-breaking faults ([dup_prob =
    drop_ack_prob = drop_prob = corrupt_prob = corrupt_ctl_prob = 0] and
    no crash): a correct graph must produce unchanged output streams
    under this plan even without recovery. *)

val has_corruption : t -> bool
(** [corrupt_prob > 0] or [corrupt_ctl_prob > 0]. *)

val crash : t -> (int * int) option
(** [(pe, time)] of the scheduled fail-stop, when the plan has one. *)

(** {2 Decisions}

    Each decision is keyed on the full identity of the fault site; the
    [time] argument is the simulated time the packet or dispatch was
    issued at. *)

val result_delay : t -> time:int -> src:int -> dst:int -> port:int -> int
(** Extra delay (0 when the site is not selected). *)

val ack_delay : t -> time:int -> src:int -> dst:int -> int

val duplicate : t -> time:int -> src:int -> dst:int -> port:int -> bool

val drop_ack : t -> time:int -> src:int -> dst:int -> bool

val drop_result : t -> time:int -> src:int -> dst:int -> port:int -> bool

val pe_stall : t -> pe:int -> time:int -> int
(** Extra cycles before the PE accepts the dispatch. *)

val fu_extra : t -> node:int -> time:int -> int
val am_extra : t -> node:int -> time:int -> int

val corrupt_result :
  t -> time:int -> src:int -> dst:int -> port:int -> Dfg.Value.t ->
  Dfg.Value.t option
(** The corrupted payload the routing network delivers instead of the
    argument, or [None] when the site is not selected.  Int/real values
    are gated by [corrupt_prob], booleans by [corrupt_ctl_prob]; the
    flipped bit is drawn from its own {!Prng.mix} stream.  The corrupted
    value always differs from the original under [Dfg.Value.equal]. *)

val of_string : string -> (spec, string) result
(** Parse a CLI spec: comma-separated [key=value] pairs.  Keys: [seed],
    [delay], [dup], [drop-ack], [drop], [stall], [corrupt],
    [corrupt-ctl] (probabilities), [delay-max], [stall-max], [fu-slow],
    [am-slow], [crash-at] (magnitudes), [crash-pe] (PE index, [-1] for
    none).  Example: ["seed=7,delay=0.2,dup=0.01,corrupt=0.05"]. *)

val to_string : spec -> string
(** Canonical CLI form: [of_string (to_string s) = Ok s] for every valid
    spec, so a plan printed into a log can be echoed straight back into
    a repro command.  Fields equal to their {!none} defaults are
    omitted. *)

val describe : t -> string
