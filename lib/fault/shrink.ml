module FP = Fault_plan

type step = { s_desc : string; s_spec : FP.spec }
type result = { minimal : FP.spec; steps : step list; attempts : int }

(* Quantize halved probabilities to a coarse grid.  Each halving of a
   probability p >= min_prob strictly shrinks ceil(p * 1000), and
   anything that would fall below min_prob is left to the zeroing
   candidates, so the candidate chain per field is finite (~8 halvings
   from 1.0) and the whole minimization terminates. *)
let min_prob = 0.005

let candidates (s : FP.spec) =
  let c = ref [] in
  let add desc spec = c := { s_desc = desc; s_spec = spec } :: !c in
  (* 1. Zero out whole fault kinds, one at a time — the biggest jumps
     down the lattice come first, classic ddmin order. *)
  if s.delay_prob > 0.0 then add "zero delay" { s with delay_prob = 0.0 };
  if s.dup_prob > 0.0 then add "zero dup" { s with dup_prob = 0.0 };
  if s.drop_ack_prob > 0.0 then add "zero drop-ack" { s with drop_ack_prob = 0.0 };
  if s.drop_prob > 0.0 then add "zero drop" { s with drop_prob = 0.0 };
  if s.stall_prob > 0.0 then add "zero stall" { s with stall_prob = 0.0 };
  if s.corrupt_prob > 0.0 then add "zero corrupt" { s with corrupt_prob = 0.0 };
  if s.corrupt_ctl_prob > 0.0 then
    add "zero corrupt-ctl" { s with corrupt_ctl_prob = 0.0 };
  if s.crash_pe >= 0 then add "remove crash" { s with crash_pe = -1; crash_at = 0 };
  if s.fu_slow > 0 then add "zero fu-slow" { s with fu_slow = 0 };
  if s.am_slow > 0 then add "zero am-slow" { s with am_slow = 0 };
  (* 2. Halve surviving probabilities. *)
  let halve desc p set =
    let q = p /. 2.0 in
    if p > 0.0 && q >= min_prob then add desc (set q)
  in
  halve "halve delay" s.delay_prob (fun q -> { s with delay_prob = q });
  halve "halve dup" s.dup_prob (fun q -> { s with dup_prob = q });
  halve "halve drop-ack" s.drop_ack_prob (fun q -> { s with drop_ack_prob = q });
  halve "halve drop" s.drop_prob (fun q -> { s with drop_prob = q });
  halve "halve stall" s.stall_prob (fun q -> { s with stall_prob = q });
  halve "halve corrupt" s.corrupt_prob (fun q -> { s with corrupt_prob = q });
  halve "halve corrupt-ctl" s.corrupt_ctl_prob (fun q ->
      { s with corrupt_ctl_prob = q });
  (* 3. Shrink magnitudes and narrow the crash window. *)
  if s.delay_prob > 0.0 && s.delay_max > 1 then
    add "halve delay-max" { s with delay_max = max 1 (s.delay_max / 2) };
  if s.stall_prob > 0.0 && s.stall_max > 1 then
    add "halve stall-max" { s with stall_max = max 1 (s.stall_max / 2) };
  if s.fu_slow > 1 then add "halve fu-slow" { s with fu_slow = s.fu_slow / 2 };
  if s.am_slow > 1 then add "halve am-slow" { s with am_slow = s.am_slow / 2 };
  if s.crash_pe >= 0 && s.crash_at > 1 then
    add "halve crash-at" { s with crash_at = s.crash_at / 2 };
  List.rev !c

(* Every candidate lowers at least one field and raises none, so this
   partial order certifies "strictly smaller" for the tests. *)
let no_larger (a : FP.spec) (b : FP.spec) =
  a.delay_prob <= b.delay_prob && a.dup_prob <= b.dup_prob
  && a.drop_ack_prob <= b.drop_ack_prob && a.drop_prob <= b.drop_prob
  && a.stall_prob <= b.stall_prob && a.corrupt_prob <= b.corrupt_prob
  && a.corrupt_ctl_prob <= b.corrupt_ctl_prob
  && a.delay_max <= b.delay_max && a.stall_max <= b.stall_max
  && a.fu_slow <= b.fu_slow && a.am_slow <= b.am_slow
  && a.crash_at <= b.crash_at
  && (a.crash_pe = b.crash_pe || a.crash_pe = -1)

let max_attempts = 10_000

let minimize ~still_fails spec =
  let attempts = ref 0 in
  let try_spec s =
    incr attempts;
    still_fails s
  in
  let rec fixpoint s steps =
    let rec scan = function
      | [] -> None
      | c :: rest ->
        if !attempts >= max_attempts then None
        else if try_spec c.s_spec then Some c
        else scan rest
    in
    match scan (candidates s) with
    | Some c -> fixpoint c.s_spec (c :: steps)
    | None -> { minimal = s; steps = List.rev steps; attempts = !attempts }
  in
  fixpoint spec []
