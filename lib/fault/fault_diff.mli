(** Differential fault harness — the executable statement of the paper's
    latency-insensitivity claim.

    Section 3's acknowledge discipline makes a correct pipelined graph a
    Kahn network: per-arc packet order cannot change under added latency,
    so a run perturbed by a {e delay-only} {!Fault.Fault_plan} must
    produce exactly the same output streams as the clean run — only the
    arrival times move.  [Fault_diff] runs faulted-vs-clean on either
    engine and reports whether the streams agree.

    For plans that break the protocol on purpose ([dup], [drop-ack]),
    equality is not expected; the harness still reports the faulted
    run's violations and stall report so tests can assert the sanitizer
    caught the corruption. *)

open Dfg

type mismatch = {
  m_stream : string;
  m_index : int;
  m_clean : Value.t option;  (** [None]: the faulted run had extra packets *)
  m_faulted : Value.t option;  (** [None]: the faulted run lost packets *)
}

type outcome = {
  equal : bool;  (** every output stream identical, value for value *)
  mismatches : mismatch list;  (** first few disagreements (capped) *)
  clean_end : int;
  faulted_end : int;
  faulted_stall : Fault.Stall_report.t option;
  faulted_violations : Fault.Violation.t list;
  faulted_recoveries : int;
  (** crash recoveries the faulted machine run performed (0 for sim) *)
  faulted_snapshot : Machine.Machine_engine.snapshot option;
  (** final state of the faulted machine run — serializable with
      [Recover.Checkpoint] when a failure needs a post-mortem dump
      ([None] for sim runs) *)
  clean_digest : int;
  (** {!Integrity.digest_outputs} of the clean run's streams *)
  faulted_digest : int;
  (** digest of the faulted run's streams.  Digests ignore arrival
      times, so [equal] implies [clean_digest = faulted_digest]; the
      digest is the cheap whole-run summary batch harnesses log and
      compare. *)
  diagnosis : string option;
  (** post-mortem for the silent-corruption failure mode: set when the
      streams mismatch, the plan injects corruption, and integrity
      checking was off — names the first diverging packet, its output
      cell and arrival time, and points at corruption as the likely
      cause.  [None] otherwise. *)
}

val mismatch_to_string : mismatch -> string

val compare_outputs :
  clean:(string * Value.t list) list ->
  faulted:(string * Value.t list) list ->
  mismatch list
(** Value-for-value comparison per stream (exact equality — injected
    latency must not change a single bit). *)

val sim :
  ?cfg:Run_config.t ->
  ?max_time:int ->
  ?watchdog:int ->
  ?sanitize:bool ->
  plan:Fault.Fault_plan.t ->
  Graph.t ->
  inputs:(string * Value.t list) list ->
  outcome
(** Run [g] clean and under [plan] on {!Sim.Engine} and compare output
    streams.  [cfg] (default {!Run_config.default}) is the base
    configuration of the {e faulted} run — the plan, a fresh sanitizer
    when [sanitize] (default true), and the [max_time]/[watchdog]
    overrides are layered on top of it; the clean run keeps only the
    time budget. *)

val machine :
  ?cfg:Run_config.t ->
  ?max_time:int ->
  ?watchdog:int ->
  ?sanitize:bool ->
  ?arch:Machine.Arch.t ->
  ?recovery:Machine.Machine_engine.recovery ->
  ?integrity:bool ->
  plan:Fault.Fault_plan.t ->
  Graph.t ->
  inputs:(string * Value.t list) list ->
  outcome
(** As {!sim} on {!Machine.Machine_engine} (default
    {!Machine.Arch.default}), which honours the full fault plan: delays,
    duplicated packets, dropped results and acknowledges, PE stalls,
    FU/AM slowdowns, payload corruption, and a fail-stop PE crash.
    [recovery] attaches a checkpoint/retransmission policy to the
    {e faulted} run only — the crash differential asserts a recovered
    machine still matches the clean one value for value.  [integrity]
    (default false) turns on per-packet checksum verification in the
    faulted run; combined with [recovery] it makes corruption plans
    survivable (detect → discard → retransmit), which the differential
    then certifies bit-identical. *)
