(** Structured dataflow-protocol violations.

    The paper's execution model is a contract: every arc carries at most
    one token, every delivery is eventually acknowledged exactly once,
    and at quiescence the acknowledges a producer is owed equal the
    tokens of its still resident in consumers.  The sanitizer reports
    breaches of that contract as values of this type rather than bare
    strings, so tests can assert on the {!kind} and tools can render
    them. *)

type kind =
  | Arc_capacity  (** a packet arrived at an occupied operand port *)
  | Empty_consume  (** a cell consumed an operand that was not there *)
  | Ack_underflow  (** an acknowledge arrived with none outstanding *)
  | Ack_conservation
      (** at quiescence, acknowledges owed to a producer do not match
          its tokens still resident in consumers (e.g. a lost ack) *)
  | Token_conservation
      (** at quiescence, the engine's operand state disagrees with the
          sanitizer's shadow accounting (engine-state corruption) *)
  | Nonmonotone_output  (** an output packet arrived out of time order *)

type t = {
  v_kind : kind;
  v_node : int;  (** the cell the violation is charged to *)
  v_label : string;
  v_port : int option;  (** operand port, when one is involved *)
  v_time : int;  (** simulated time the violation was detected at *)
  v_detail : string;
}

val kind_name : kind -> string

val kind_of_name : string -> kind option
(** Inverse of {!kind_name} (checkpoint deserialization). *)

val fatal : kind -> bool
(** Fatal violations ([Arc_capacity], [Empty_consume], [Ack_underflow])
    corrupt engine state, so the run is halted when one is recorded;
    conservation and monotonicity breaches are end-of-run diagnostics. *)

val to_string : t -> string
