(* splitmix64 (Steele, Lea & Flood 2014): a 64-bit counter advanced by
   the golden-ratio increment, finalized by an avalanche mix. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let finalize z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = finalize (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  finalize t.state

let float_of_hash h =
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let int_of_hash h bound =
  if bound <= 0 then invalid_arg "Prng.int_of_hash: bound <= 0";
  Int64.to_int
    (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int bound))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  int_of_hash (int64 t) bound

let float t = float_of_hash (int64 t)

let mix seed keys =
  List.fold_left
    (fun h k -> finalize (Int64.add (Int64.logxor h (Int64.of_int k)) golden))
    (finalize (Int64.of_int seed))
    keys
