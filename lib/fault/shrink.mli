(** Deterministic delta-debugging over the {!Fault_plan.spec} lattice.

    A randomized soak (bin/chaos.exe) that finds a failure holds a
    12-parameter fault spec; most of those parameters are noise.
    [minimize] walks the spec down a lattice of strictly-smaller
    candidates — zero out each probability, remove the crash, halve
    surviving probabilities and magnitudes, narrow the crash window —
    re-running the caller's oracle at each step and adopting the first
    candidate that still fails, until no candidate fails (ddmin with a
    fixed scan order).

    Determinism: the candidate order is fixed, and the oracle is
    expected to be a pure function of the spec (every engine run is —
    fault decisions are keyed hashes, see {!Fault_plan}).  Same failing
    spec + same oracle ⇒ same minimal spec, on every run and under any
    worker count.

    Termination: every adopted candidate strictly decreases a finite
    measure (count of nonzero fields, integer magnitudes, and
    probabilities quantized at 0.005 — halving stops below that, zeroing
    covers the rest), and a [max_attempts] backstop bounds pathological
    oracles. *)

type step = {
  s_desc : string;  (** e.g. ["zero delay"], ["halve corrupt"] *)
  s_spec : Fault_plan.spec;  (** the spec after this step *)
}

type result = {
  minimal : Fault_plan.spec;
  steps : step list;  (** adopted shrink steps, in order *)
  attempts : int;  (** oracle invocations spent *)
}

val minimize :
  still_fails:(Fault_plan.spec -> bool) -> Fault_plan.spec -> result
(** [minimize ~still_fails spec] assumes [still_fails spec] holds (the
    caller observed the failure); if it does not, the result is simply
    [spec] unchanged.  The oracle is never called on [spec] itself, only
    on candidates. *)

val no_larger : Fault_plan.spec -> Fault_plan.spec -> bool
(** [no_larger a b]: every fault field of [a] is component-wise no
    larger than [b]'s (crash either equal or removed).  Holds between
    [minimal] and the input by construction; with [steps <> []] it is
    strict. *)
