type spec = {
  seed : int;
  delay_prob : float;
  delay_max : int;
  dup_prob : float;
  drop_ack_prob : float;
  drop_prob : float;
  stall_prob : float;
  stall_max : int;
  fu_slow : int;
  am_slow : int;
  crash_pe : int;
  crash_at : int;
  corrupt_prob : float;
  corrupt_ctl_prob : float;
}

let none =
  {
    seed = 0;
    delay_prob = 0.0;
    delay_max = 8;
    dup_prob = 0.0;
    drop_ack_prob = 0.0;
    drop_prob = 0.0;
    stall_prob = 0.0;
    stall_max = 16;
    fu_slow = 0;
    am_slow = 0;
    crash_pe = -1;
    crash_at = 0;
    corrupt_prob = 0.0;
    corrupt_ctl_prob = 0.0;
  }

let delays ?(prob = 0.2) ?(max_delay = 8) seed =
  { none with seed; delay_prob = prob; delay_max = max_delay }

type t = spec

let make spec =
  let check_prob name p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Fault_plan.make: %s=%g not in [0,1]" name p)
  in
  let check_mag name v =
    if v < 0 then
      invalid_arg (Printf.sprintf "Fault_plan.make: %s=%d negative" name v)
  in
  check_prob "delay" spec.delay_prob;
  check_prob "dup" spec.dup_prob;
  check_prob "drop-ack" spec.drop_ack_prob;
  check_prob "drop" spec.drop_prob;
  check_prob "stall" spec.stall_prob;
  check_prob "corrupt" spec.corrupt_prob;
  check_prob "corrupt-ctl" spec.corrupt_ctl_prob;
  check_mag "delay-max" spec.delay_max;
  check_mag "stall-max" spec.stall_max;
  check_mag "fu-slow" spec.fu_slow;
  check_mag "am-slow" spec.am_slow;
  check_mag "crash-at" spec.crash_at;
  if spec.crash_pe < -1 then
    invalid_arg
      (Printf.sprintf "Fault_plan.make: crash-pe=%d (use -1 for none)"
         spec.crash_pe);
  spec

let spec t = t
let seed t = t.seed

let delay_only t =
  t.dup_prob = 0.0 && t.drop_ack_prob = 0.0 && t.drop_prob = 0.0
  && t.crash_pe < 0 && t.corrupt_prob = 0.0 && t.corrupt_ctl_prob = 0.0

let has_corruption t = t.corrupt_prob > 0.0 || t.corrupt_ctl_prob > 0.0

let crash t = if t.crash_pe >= 0 then Some (t.crash_pe, t.crash_at) else None

(* Distinct stream tags so the same site never shares variates across
   decision kinds. *)
let tag_result_delay = 1
let tag_result_delay_mag = 2
let tag_ack_delay = 3
let tag_ack_delay_mag = 4
let tag_dup = 5
let tag_drop_ack = 6
let tag_pe_stall = 7
let tag_pe_stall_mag = 8
let tag_fu = 9
let tag_am = 10
let tag_drop = 11
let tag_corrupt = 12
let tag_corrupt_ctl = 13
let tag_corrupt_bit = 14

let hit t ~prob tag keys =
  prob > 0.0 && Prng.float_of_hash (Prng.mix t.seed (tag :: keys)) < prob

let magnitude t ~max_mag tag keys =
  if max_mag <= 0 then 0
  else 1 + Prng.int_of_hash (Prng.mix t.seed (tag :: keys)) max_mag

let result_delay t ~time ~src ~dst ~port =
  let keys = [ time; src; dst; port ] in
  if hit t ~prob:t.delay_prob tag_result_delay keys then
    magnitude t ~max_mag:t.delay_max tag_result_delay_mag keys
  else 0

let ack_delay t ~time ~src ~dst =
  let keys = [ time; src; dst ] in
  if hit t ~prob:t.delay_prob tag_ack_delay keys then
    magnitude t ~max_mag:t.delay_max tag_ack_delay_mag keys
  else 0

let duplicate t ~time ~src ~dst ~port =
  hit t ~prob:t.dup_prob tag_dup [ time; src; dst; port ]

let drop_ack t ~time ~src ~dst =
  hit t ~prob:t.drop_ack_prob tag_drop_ack [ time; src; dst ]

let drop_result t ~time ~src ~dst ~port =
  hit t ~prob:t.drop_prob tag_drop [ time; src; dst; port ]

(* Bit-flip semantics: the flip must be *value-visible*, or injection
   would silently under-count.  Ints flip one of bits 0..61 (OCaml's 63rd
   bit is the sign; flipping it is fine too, but 62 bits keep the variate
   bound a power of two away from the payload width story told in the
   docs — any bit always changes the value).  Reals flip one of bits
   0..62 of the IEEE-754 pattern, *excluding* the sign bit 63: flipping
   the sign of 0.0 yields -0.0, which [Value.equal] treats as equal, so a
   sign flip of a zero would be corruption no oracle could see.  Bools
   negate. *)
let flip_bits v bit =
  match (v : Dfg.Value.t) with
  | Int i -> Dfg.Value.Int (i lxor (1 lsl bit))
  | Real r ->
    Dfg.Value.Real
      (Int64.float_of_bits
         (Int64.logxor (Int64.bits_of_float r) (Int64.shift_left 1L bit)))
  | Bool b -> Dfg.Value.Bool (not b)

let corrupt_result t ~time ~src ~dst ~port v =
  let keys = [ time; src; dst; port ] in
  let bit max = Prng.int_of_hash (Prng.mix t.seed (tag_corrupt_bit :: keys)) max in
  match (v : Dfg.Value.t) with
  | Bool _ ->
    if hit t ~prob:t.corrupt_ctl_prob tag_corrupt_ctl keys then
      Some (flip_bits v 0)
    else None
  | Int _ ->
    if hit t ~prob:t.corrupt_prob tag_corrupt keys then
      Some (flip_bits v (bit 62))
    else None
  | Real _ ->
    if hit t ~prob:t.corrupt_prob tag_corrupt keys then
      Some (flip_bits v (bit 63))
    else None

let pe_stall t ~pe ~time =
  let keys = [ pe; time ] in
  if hit t ~prob:t.stall_prob tag_pe_stall keys then
    magnitude t ~max_mag:t.stall_max tag_pe_stall_mag keys
  else 0

let fu_extra t ~node ~time =
  if t.fu_slow <= 0 then 0
  else Prng.int_of_hash (Prng.mix t.seed [ tag_fu; node; time ]) (t.fu_slow + 1)

let am_extra t ~node ~time =
  if t.am_slow <= 0 then 0
  else Prng.int_of_hash (Prng.mix t.seed [ tag_am; node; time ]) (t.am_slow + 1)

let of_string s =
  let parse_field spec field =
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "fault spec: %S is not key=value" field)
    | Some i -> (
      let key = String.sub field 0 i in
      let value = String.sub field (i + 1) (String.length field - i - 1) in
      let prob set =
        match float_of_string_opt value with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok (set p)
        | _ ->
          Error
            (Printf.sprintf "fault spec: %s=%s is not a probability" key value)
      in
      let mag set =
        match int_of_string_opt value with
        | Some v when v >= 0 -> Ok (set v)
        | _ ->
          Error
            (Printf.sprintf "fault spec: %s=%s is not a non-negative integer"
               key value)
      in
      let pe set =
        match int_of_string_opt value with
        | Some v when v >= -1 -> Ok (set v)
        | _ ->
          Error
            (Printf.sprintf
               "fault spec: %s=%s is not a PE index (or -1 for none)" key
               value)
      in
      match key with
      | "seed" -> mag (fun v -> { spec with seed = v })
      | "delay" -> prob (fun p -> { spec with delay_prob = p })
      | "dup" -> prob (fun p -> { spec with dup_prob = p })
      | "drop-ack" -> prob (fun p -> { spec with drop_ack_prob = p })
      | "drop" -> prob (fun p -> { spec with drop_prob = p })
      | "stall" -> prob (fun p -> { spec with stall_prob = p })
      | "delay-max" -> mag (fun v -> { spec with delay_max = v })
      | "stall-max" -> mag (fun v -> { spec with stall_max = v })
      | "fu-slow" -> mag (fun v -> { spec with fu_slow = v })
      | "am-slow" -> mag (fun v -> { spec with am_slow = v })
      | "crash-pe" -> pe (fun v -> { spec with crash_pe = v })
      | "crash-at" -> mag (fun v -> { spec with crash_at = v })
      | "corrupt" -> prob (fun p -> { spec with corrupt_prob = p })
      | "corrupt-ctl" -> prob (fun p -> { spec with corrupt_ctl_prob = p })
      | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key))
  in
  String.split_on_char ',' s
  |> List.filter (fun f -> String.trim f <> "")
  |> List.fold_left
       (fun acc field ->
         match acc with
         | Error _ as e -> e
         | Ok spec -> parse_field spec (String.trim field))
       (Ok none)

(* Canonical CLI form: [of_string (to_string s) = Ok s] for any valid
   spec, so a plan printed into a log is directly a repro command.
   %.17g round-trips every finite probability bit-exactly. *)
let to_string s =
  let fields = ref [] in
  let add fmt = Printf.ksprintf (fun f -> fields := f :: !fields) fmt in
  let addf key v = if v <> 0.0 then add "%s=%.17g" key v in
  add "seed=%d" s.seed;
  addf "delay" s.delay_prob;
  if s.delay_max <> none.delay_max then add "delay-max=%d" s.delay_max;
  addf "dup" s.dup_prob;
  addf "drop-ack" s.drop_ack_prob;
  addf "drop" s.drop_prob;
  addf "stall" s.stall_prob;
  if s.stall_max <> none.stall_max then add "stall-max=%d" s.stall_max;
  if s.fu_slow <> 0 then add "fu-slow=%d" s.fu_slow;
  if s.am_slow <> 0 then add "am-slow=%d" s.am_slow;
  if s.crash_pe >= 0 then add "crash-pe=%d" s.crash_pe;
  if s.crash_at <> 0 then add "crash-at=%d" s.crash_at;
  addf "corrupt" s.corrupt_prob;
  addf "corrupt-ctl" s.corrupt_ctl_prob;
  String.concat "," (List.rev !fields)

let describe t =
  Printf.sprintf
    "seed=%d delay=%g(max %d) dup=%g drop-ack=%g drop=%g stall=%g(max %d) \
     fu-slow=%d am-slow=%d corrupt=%g corrupt-ctl=%g%s"
    t.seed t.delay_prob t.delay_max t.dup_prob t.drop_ack_prob t.drop_prob
    t.stall_prob t.stall_max t.fu_slow t.am_slow t.corrupt_prob
    t.corrupt_ctl_prob
    (if t.crash_pe >= 0 then
       Printf.sprintf " crash(pe %d at t=%d)" t.crash_pe t.crash_at
     else "")
