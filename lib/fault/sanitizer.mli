(** Online dataflow sanitizer: shadow bookkeeping of the acknowledge
    discipline, independent of the engine's own state.

    The engines call the [on_*] hooks at every event; the sanitizer
    maintains its own occupancy bit per arc port and its own
    outstanding-acknowledge counter per producer, and records a
    {!Violation.t} whenever the protocol is breached.  Because the
    sanitizer only observes, a clean run is bit-identical with the
    sanitizer on or off.

    Each hook returns the violation it recorded (if any) so the engine
    can surface it immediately (e.g. as a trace event).  When a
    {!Violation.fatal} violation is recorded, {!tripped} becomes true
    and the engine halts the run — its state is no longer trustworthy.

    The {!null} sanitizer is disabled: every hook is a no-op costing one
    branch, mirroring {!Obs.Tracer.null}. *)

type t

val null : t
(** The disabled checker every engine uses by default. *)

val create : ?limit:int -> Dfg.Graph.t -> t
(** A checker for one run of [g].  Initial-token ports start occupied
    and their producers start owing an acknowledge, mirroring program
    load.  At most [limit] violations are retained (default 64). *)

val enabled : t -> bool

(** {2 Snapshot / restore}

    Engines that checkpoint and roll back (crash recovery) must snapshot
    the shadow state together with the machine state, or replayed events
    would double-count against the accounting. *)

type snapshot = {
  sn_occupied : bool array array;
  sn_owed : int array;
  sn_last_out : int array;
  sn_violations : Violation.t list;  (** oldest first *)
  sn_count : int;
  sn_tripped : bool;
}

val snapshot : t -> snapshot option
(** Deep copy of the shadow state; [None] for the {!null} sanitizer. *)

val restore : t -> snapshot option -> unit
(** Overwrite the shadow state with a snapshot taken from a sanitizer of
    the same graph.
    @raise Invalid_argument if presence or shape disagree. *)

val tripped : t -> bool
(** A fatal violation has been recorded; the engine must stop. *)

val violations : t -> Violation.t list
(** Violations recorded so far, oldest first. *)

(** {2 Engine hooks} *)

val on_deliver :
  t -> time:int -> src:int -> dst:int -> port:int -> Violation.t option
(** A result packet arrived at [dst.port].  Records [Arc_capacity] if
    the shadow port is already occupied; marks it occupied. *)

val on_consume : t -> time:int -> node:int -> port:int -> Violation.t option
(** [node] consumed the operand on [port] (arc ports only).  Records
    [Empty_consume] if the shadow port is empty; clears it. *)

val on_send : t -> time:int -> node:int -> count:int -> unit
(** [node] fired and sent [count] result packets: it is now owed [count]
    more acknowledges. *)

val on_ack : t -> time:int -> dst:int -> Violation.t option
(** An acknowledge arrived at producer [dst].  Records [Ack_underflow]
    if none was outstanding. *)

val on_output : t -> time:int -> node:int -> Violation.t option
(** Output cell [node] collected a packet at [time].  Records
    [Nonmonotone_output] if [time] precedes the previous arrival. *)

val on_quiescence :
  t -> time:int -> held:(int -> int -> bool) -> Violation.t list
(** End-of-run conservation checks, called only on a quiescent,
    untripped run.  [held node port] is the engine's view of operand
    occupancy.  Records [Ack_conservation] for every producer whose
    outstanding acknowledges differ from its tokens still resident in
    consumer ports, and [Token_conservation] wherever the engine's
    occupancy disagrees with the shadow occupancy. *)
