open Dfg

type mismatch = {
  m_stream : string;
  m_index : int;
  m_clean : Value.t option;
  m_faulted : Value.t option;
}

type outcome = {
  equal : bool;
  mismatches : mismatch list;
  clean_end : int;
  faulted_end : int;
  faulted_stall : Fault.Stall_report.t option;
  faulted_violations : Fault.Violation.t list;
  faulted_recoveries : int;
  faulted_snapshot : Machine.Machine_engine.snapshot option;
  clean_digest : int;
  faulted_digest : int;
  diagnosis : string option;
}

let mismatch_cap = 16

let value_str = function
  | Some v -> Value.to_string v
  | None -> "<missing>"

let mismatch_to_string m =
  Printf.sprintf "%s[%d]: clean %s, faulted %s" m.m_stream m.m_index
    (value_str m.m_clean) (value_str m.m_faulted)

let compare_outputs ~clean ~faulted =
  let out = ref [] in
  let count = ref 0 in
  let push m =
    if !count < mismatch_cap then out := m :: !out;
    incr count
  in
  List.iter
    (fun (name, cvs) ->
      let fvs = Option.value ~default:[] (List.assoc_opt name faulted) in
      let rec go i cs fs =
        match (cs, fs) with
        | [], [] -> ()
        | c :: cs, f :: fs ->
          if not (Value.equal c f) then
            push
              { m_stream = name; m_index = i; m_clean = Some c;
                m_faulted = Some f };
          go (i + 1) cs fs
        | c :: cs, [] ->
          push
            { m_stream = name; m_index = i; m_clean = Some c;
              m_faulted = None };
          go (i + 1) cs []
        | [], f :: fs ->
          push
            { m_stream = name; m_index = i; m_clean = None;
              m_faulted = Some f };
          go (i + 1) [] fs
      in
      go 0 cvs fvs)
    clean;
  List.rev !out

(* The unprotected-corruption post-mortem: a value mismatch with
   corruption injected and integrity checking off is exactly the silent
   failure mode the integrity layer exists for.  Name the first
   diverging packet, its output cell and arrival time, and say so —
   a bare stream diff reads like a simulator bug. *)
(* a low-bit flip in a Real prints identically under %g; the diagnosis
   must show the divergence, so reals get the bit-exact %h form *)
let value_bits = function
  | Some (Value.Real r) -> Printf.sprintf "%h" r
  | Some v -> Value.to_string v
  | None -> "<missing>"

let diagnose ~plan ~integrity ~graph ~faulted_outputs mismatches =
  match (mismatches, plan) with
  | m :: _, Some p when Fault.Fault_plan.has_corruption p && not integrity ->
    let spec = Fault.Fault_plan.spec p in
    let cell =
      Option.bind graph (fun g ->
          Option.map
            (Printf.sprintf "output cell #%d")
            (List.assoc_opt m.m_stream (Graph.outputs g)))
      |> Option.value ~default:"output cell unknown"
    in
    let arrival =
      match List.assoc_opt m.m_stream faulted_outputs with
      | Some packets -> (
        match List.nth_opt packets m.m_index with
        | Some (t, _) -> Printf.sprintf "arrived t=%d" t
        | None -> "packet missing from the faulted stream")
      | None -> "stream missing from the faulted run"
    in
    Some
      (Printf.sprintf
         "value mismatch under corruption faults (corrupt=%g, corrupt-ctl=%g) \
          with integrity checking disabled — silent data corruption is the \
          likely cause, not a simulator defect.  First divergence: %s[%d] \
          (clean %s, faulted %s), %s, %s.  Re-run with integrity checking \
          (and a recovery policy) to detect and heal it."
         spec.Fault.Fault_plan.corrupt_prob
         spec.Fault.Fault_plan.corrupt_ctl_prob m.m_stream m.m_index
         (value_bits m.m_clean) (value_bits m.m_faulted) cell arrival)
  | _ -> None

let outcome ?(faulted_recoveries = 0) ?faulted_snapshot ?plan
    ?(integrity = false) ?graph ~clean_outputs ~faulted_outputs ~clean_end
    ~faulted_end ~faulted_stall ~faulted_violations () =
  let strip outs = List.map (fun (name, vs) -> (name, List.map snd vs)) outs in
  let mismatches =
    compare_outputs ~clean:(strip clean_outputs)
      ~faulted:(strip faulted_outputs)
  in
  {
    equal = mismatches = [];
    mismatches;
    clean_end;
    faulted_end;
    faulted_stall;
    faulted_violations;
    faulted_recoveries;
    faulted_snapshot;
    clean_digest = Integrity.digest_outputs clean_outputs;
    faulted_digest = Integrity.digest_outputs faulted_outputs;
    diagnosis = diagnose ~plan ~integrity ~graph ~faulted_outputs mismatches;
  }

(* The clean run drops the faulted run's perturbation-and-diagnosis
   machinery but keeps the time budget: it is the reference execution,
   not a checked one. *)
let clean_config (cfg : Run_config.t) =
  { Run_config.default with Run_config.max_time = cfg.Run_config.max_time }

let base_config ?cfg ?max_time ?watchdog ~default_max_time () =
  let cfg = Option.value cfg ~default:Run_config.default in
  let cfg =
    match max_time with
    | Some t -> Run_config.with_max_time t cfg
    | None ->
      if cfg.Run_config.max_time = Run_config.default.Run_config.max_time then
        Run_config.with_max_time default_max_time cfg
      else cfg
  in
  match watchdog with
  | Some w -> Run_config.with_watchdog w cfg
  | None -> cfg

let sim ?cfg ?max_time ?watchdog ?(sanitize = true) ~plan g ~inputs =
  let cfg =
    base_config ?cfg ?max_time ?watchdog
      ~default_max_time:Run_config.default.Run_config.max_time ()
  in
  let clean = Sim.Engine.run_cfg (clean_config cfg) g ~inputs in
  let sanitizer =
    if sanitize then Fault.Sanitizer.create g else Fault.Sanitizer.null
  in
  let faulted =
    Sim.Engine.run_cfg
      Run_config.(cfg |> with_fault plan |> with_sanitizer sanitizer)
      g ~inputs
  in
  outcome ~plan ~graph:g ~clean_outputs:clean.Sim.Engine.outputs
    ~faulted_outputs:faulted.Sim.Engine.outputs
    ~clean_end:clean.Sim.Engine.end_time
    ~faulted_end:faulted.Sim.Engine.end_time
    ~faulted_stall:faulted.Sim.Engine.stuck
    ~faulted_violations:faulted.Sim.Engine.violations ()

let machine ?cfg ?max_time ?watchdog ?(sanitize = true)
    ?(arch = Machine.Arch.default) ?recovery ?(integrity = false) ~plan g
    ~inputs =
  let module ME = Machine.Machine_engine in
  let cfg =
    base_config ?cfg ?max_time ?watchdog
      ~default_max_time:ME.default_max_time ()
  in
  let clean =
    ME.run_cfg (clean_config cfg) ~arch g ~inputs
  in
  let sanitizer =
    if sanitize then Fault.Sanitizer.create g else Fault.Sanitizer.null
  in
  let faulted_cfg =
    Run_config.(
      cfg |> with_fault plan |> with_sanitizer sanitizer
      |> with_recovery_opt recovery |> with_integrity integrity)
  in
  let m = ME.create_cfg faulted_cfg ~arch g ~inputs in
  ME.advance m ~until:max_int;
  let faulted = ME.result m in
  outcome ~faulted_recoveries:faulted.ME.recoveries
    ~faulted_snapshot:(ME.snapshot m) ~plan ~integrity ~graph:g
    ~clean_outputs:clean.ME.outputs ~faulted_outputs:faulted.ME.outputs
    ~clean_end:clean.ME.end_time ~faulted_end:faulted.ME.end_time
    ~faulted_stall:faulted.ME.stall ~faulted_violations:faulted.ME.violations
    ()
