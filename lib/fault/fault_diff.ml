open Dfg

type mismatch = {
  m_stream : string;
  m_index : int;
  m_clean : Value.t option;
  m_faulted : Value.t option;
}

type outcome = {
  equal : bool;
  mismatches : mismatch list;
  clean_end : int;
  faulted_end : int;
  faulted_stall : Fault.Stall_report.t option;
  faulted_violations : Fault.Violation.t list;
  faulted_recoveries : int;
  faulted_snapshot : Machine.Machine_engine.snapshot option;
}

let mismatch_cap = 16

let value_str = function
  | Some v -> Value.to_string v
  | None -> "<missing>"

let mismatch_to_string m =
  Printf.sprintf "%s[%d]: clean %s, faulted %s" m.m_stream m.m_index
    (value_str m.m_clean) (value_str m.m_faulted)

let compare_outputs ~clean ~faulted =
  let out = ref [] in
  let count = ref 0 in
  let push m =
    if !count < mismatch_cap then out := m :: !out;
    incr count
  in
  List.iter
    (fun (name, cvs) ->
      let fvs = Option.value ~default:[] (List.assoc_opt name faulted) in
      let rec go i cs fs =
        match (cs, fs) with
        | [], [] -> ()
        | c :: cs, f :: fs ->
          if not (Value.equal c f) then
            push
              { m_stream = name; m_index = i; m_clean = Some c;
                m_faulted = Some f };
          go (i + 1) cs fs
        | c :: cs, [] ->
          push
            { m_stream = name; m_index = i; m_clean = Some c;
              m_faulted = None };
          go (i + 1) cs []
        | [], f :: fs ->
          push
            { m_stream = name; m_index = i; m_clean = None;
              m_faulted = Some f };
          go (i + 1) [] fs
      in
      go 0 cvs fvs)
    clean;
  List.rev !out

let outcome ?(faulted_recoveries = 0) ?faulted_snapshot ~clean_outputs
    ~faulted_outputs ~clean_end ~faulted_end ~faulted_stall
    ~faulted_violations () =
  let strip outs = List.map (fun (name, vs) -> (name, List.map snd vs)) outs in
  let mismatches =
    compare_outputs ~clean:(strip clean_outputs)
      ~faulted:(strip faulted_outputs)
  in
  {
    equal = mismatches = [];
    mismatches;
    clean_end;
    faulted_end;
    faulted_stall;
    faulted_violations;
    faulted_recoveries;
    faulted_snapshot;
  }

let sim ?max_time ?watchdog ?(sanitize = true) ~plan g ~inputs =
  let clean = Sim.Engine.run ?max_time g ~inputs in
  let sanitizer =
    if sanitize then Fault.Sanitizer.create g else Fault.Sanitizer.null
  in
  let faulted =
    Sim.Engine.run ?max_time ?watchdog ~fault:plan ~sanitizer g ~inputs
  in
  outcome ~clean_outputs:clean.Sim.Engine.outputs
    ~faulted_outputs:faulted.Sim.Engine.outputs
    ~clean_end:clean.Sim.Engine.end_time
    ~faulted_end:faulted.Sim.Engine.end_time
    ~faulted_stall:faulted.Sim.Engine.stuck
    ~faulted_violations:faulted.Sim.Engine.violations ()

let machine ?max_time ?watchdog ?(sanitize = true)
    ?(arch = Machine.Arch.default) ?recovery ~plan g ~inputs =
  let module ME = Machine.Machine_engine in
  let clean = ME.run ?max_time ~arch g ~inputs in
  let sanitizer =
    if sanitize then Fault.Sanitizer.create g else Fault.Sanitizer.null
  in
  let m =
    ME.create ?max_time ?watchdog ~fault:plan ~sanitizer ?recovery ~arch g
      ~inputs
  in
  ME.advance m ~until:max_int;
  let faulted = ME.result m in
  outcome ~faulted_recoveries:faulted.ME.recoveries
    ~faulted_snapshot:(ME.snapshot m) ~clean_outputs:clean.ME.outputs
    ~faulted_outputs:faulted.ME.outputs ~clean_end:clean.ME.end_time
    ~faulted_end:faulted.ME.end_time ~faulted_stall:faulted.ME.stall
    ~faulted_violations:faulted.ME.violations ()
