(** Quorum journal replication: a cluster member's records survive the
    loss of its disk.

    Each journal record a member appends for an idempotency-keyed job
    is streamed to the R−1 peers that rendezvous-rank highest for the
    member's {e own} address ([--replicas R] copies total, counting the
    local append).  Placement keyed by origin keeps one member's
    replicas on a stable peer set and lets each peer hold them in a
    single per-origin segment file — a plain {!Journal} with the same
    framing, compaction and torn-tail replay rules as the primary.

    Replication is synchronous and quorum-{e counted}, never
    quorum-{e blocking}: each peer costs one bounded RPC (no retries, a
    short deadline), and an append that lands on fewer than R copies
    ticks [degraded] instead of failing admission.  Degraded mode
    weakens durability only — the engine is deterministic and clients
    retry under idempotency keys, so any record that missed its quorum
    is re-derivable bit-identically by re-running the request.

    Recovery inverts the flow: a member that starts with a missing or
    damaged journal asks {e every} peer for the entries held under its
    origin ({!recover_from_peers}, the [recover] verb), folds the union
    with whatever survived locally ({!Journal.fold} collapses
    duplicates), and rewrites its journal from the result. *)

type t

val create :
  self:string ->
  replicas:int ->
  ?deadline:float ->
  ?journal_path:string ->
  ?fsync:bool ->
  string list ->
  t
(** A replication context for the member listening at [self], which
    must appear in the member list.  [replicas] is R, total copies
    including the local append; [deadline] (default 1 s) bounds each
    peer RPC; [journal_path] roots the replica segment directory at
    [<journal_path>.replicas/] (no path: this member can replicate out
    but holds no segments); [fsync] applies the member's sync policy to
    its segment appends.
    @raise Invalid_argument when [replicas < 1] or [self] is not a
    member. *)

val self : t -> string
val replicas : t -> int
val members : t -> string list

val set_members : t -> string list -> string list * string list
(** Install a new membership view (the SIGHUP reload); returns
    [(joined, left)].  Health tallies of departed peers are dropped. *)

(** {1 Placement} *)

val score : key:string -> string -> int
(** The rendezvous hash of (key, member address) — the same bytes
    {!Cluster}'s job routing hashes, so client-side routing and
    server-side placement can never disagree. *)

val rendezvous_order : key:string -> string list -> string list
(** Members sorted by descending {!score} for [key] (ties by address):
    element 0 is the key's home, the rest the failover/replica order. *)

val targets : t -> string list
(** The R−1 peers (fewer, in a small cluster) this member replicates
    to right now: the top of {!rendezvous_order} keyed by [self] over
    the current members, excluding [self]. *)

(** {1 Replicating out} *)

val replicate : t -> Journal.entry -> int
(** Stream one record to every target; returns the number of peer
    acks.  Counts [degraded] when [acks + 1 < replicas].  Bounded:
    a dead peer costs one refused connect, a slow one [deadline]
    seconds. *)

val push_to : t -> target:string -> Journal.entry list -> bool
(** Replicate a batch at one named peer (the under-replication healer
    after a membership change); [true] iff every entry was stored. *)

(** {1 Holding peers' records} *)

val store : t -> origin:string -> Journal.entry -> (unit, string) result
(** Append one record to [origin]'s segment (the [replicate] verb's
    receiving side), creating the segment directory and file lazily. *)

val fetch_origin : t -> origin:string -> Journal.entry list
(** Everything held for [origin], folded to its minimal entry form
    (the [recover] verb's serving side).  Closes the live segment
    writer first so the replay sees every stored byte. *)

val compact_segments : t -> retain:int -> unit
(** Compact every held segment with the primary journal's retention
    rules — replicas shed superseded history on the same schedule as
    the journal they mirror. *)

(** {1 Recovering} *)

val recover_from_peers : t -> Journal.entry list * int
(** Ask every current peer for this member's entries; returns the
    concatenation (fold it — overlapping copies collapse) and how many
    peers responded.  Patient, unlike {!replicate}: peers are expected
    to be up when a member rejoins, so refused connects retry. *)

(** {1 Introspection} *)

val stats_fields : t -> (string * Obs.Json.t) list
(** Replication counters for the [stats] verb: sent/acked/degraded and
    held-segment count. *)

val members_fields : t -> (string * Obs.Json.t) list
(** The [members] verb's payload: self, R, and per-member address,
    health ([self]/[up]/[suspect]/[down]/[unknown]) and whether it is
    a current replication target. *)

val close : t -> unit
(** Close all held segment writers. *)
