(** The dfserve engine: a persistent compile-and-simulate service.

    One event-loop thread owns a Unix-domain listening socket, a
    compiled-program {!Lru} cache and the per-client request queues; an
    {!Exec.Pool} of worker domains runs the simulations.  The loop
    multiplexes with [Unix.select] over the listening socket, every
    client socket and a self-pipe that workers write one byte to when a
    job finishes, so completions are delivered promptly without
    polling.

    {b Fair queueing}: admitted jobs wait in per-client FIFO queues and
    are dispatched round-robin across clients, at most [workers] in
    flight, so one chatty client cannot starve the others and the
    pool's internal FIFO never reorders across clients.  Admission is
    bounded: when [max_pending] jobs are already waiting, new simulate
    requests are rejected with a structured [overloaded] error instead
    of queueing without bound.

    {b Bit-identity}: the server compiles through the cache and then
    runs the request exactly as {!Exec.Job.run} would run the
    equivalent [Graph_program] job — graph-engine jobs literally call
    [Exec.Job.run]; machine jobs run the same configuration through the
    resumable {!Machine.Machine_engine} in bounded [slice]-length
    steps, which the engine guarantees is bit-identical to a one-shot
    run.  Slicing is what makes long machine runs preemptible: a cancel
    or shutdown takes effect at the next slice boundary and the
    response carries a restorable {!Recover.Checkpoint} document. *)

type config = {
  socket_path : string;
  workers : int;  (** simulation worker domains *)
  max_pending : int;  (** admission bound on jobs waiting to dispatch *)
  cache_capacity : int;  (** compiled-program cache entries *)
  slice : int;
      (** machine-engine preemption granularity, simulation-time units *)
  log : out_channel option;  (** one line per lifecycle event *)
}

val default_config : socket_path:string -> config
(** [workers = Exec.Pool.default_jobs ()], [max_pending = 64],
    [cache_capacity = 32], [slice = 5000], no log. *)

type t

val create : config -> t
(** Bind and listen (replacing any stale socket file) and spawn the
    worker pool.  @raise Unix.Unix_error when the path is unusable. *)

val serve : t -> unit
(** Run the event loop until a [shutdown] request arrives, then drain:
    queued jobs are answered [shutting_down], running machine jobs are
    preempted at their next slice, and once every in-flight job has
    been answered the socket is closed and removed and the pool joined. *)

val run : config -> unit
(** [serve (create config)]. *)

val config_of_run :
  Protocol.run -> (Run_config.t * Machine.Arch.t, string) result
(** The exact engine configuration the server builds for a simulate
    request (fault plan, recovery policy, integrity, watchdog,
    max-time; the sanitizer is {e not} included — it is created fresh
    per run, as {!Exec.Job} does).  Exposed so clients and tests can
    construct the standalone {!Exec.Job} a served response must be
    bit-identical to.  Machine requests default [max_time] to
    {!Machine.Machine_engine.default_max_time}, matching
    {!Fault_diff.machine}. *)

val subject_of_program :
  Protocol.program ->
  waves:int ->
  (Dfg.Graph.t * (string * Dfg.Value.t list) list * string, string) result
(** Compile (uncached) and feed a request's program: the graph, the
    full packet streams, and the job name.  Kernel programs reproduce
    {!Runspec.compile_subject}'s deterministic input draw; source
    programs synthesize inputs with {!Runspec.synth_wave}.  This is the
    reference a served run is compared against. *)
