(** The dfserve engine: a persistent compile-and-simulate service.

    One event-loop thread owns the listening sockets (a Unix-domain
    socket, plus an optional TCP listener sharing the same accept
    loop), a compiled-program {!Lru} cache and the per-client request
    queues; an {!Exec.Pool} of worker domains runs the simulations.
    The loop multiplexes with [Unix.select] over the listeners, every
    client socket (nonblocking, with buffered writes) and a self-pipe
    that workers write one byte to when a job finishes, so completions
    are delivered promptly without polling.

    {b Fair queueing}: admitted jobs wait in per-client FIFO queues and
    are dispatched round-robin across clients, at most [workers] in
    flight, so one chatty client cannot starve the others and the
    pool's internal FIFO never reorders across clients.  Admission is
    bounded: when [max_pending] jobs are already waiting, new simulate
    requests are rejected with a structured [overloaded] error instead
    of queueing without bound.

    {b Hostile transport}: a request line over [max_line] bytes —
    complete or still accumulating — draws a structured [malformed]
    error and a close, so a slowloris or a garbage firehose cannot grow
    [rbuf] without bound; unparseable-but-bounded lines draw
    [malformed] and leave the connection up.  Connections idle past
    [idle_timeout] with no work in flight are closed with a best-effort
    [deadline] error; peers that stop reading their responses for
    [write_timeout] are closed.  No hostile connection can crash the
    loop or stall other clients.

    {b Durability}: with a [journal_path], every admitted simulate
    request carrying an idempotency key is recorded in a write-ahead
    {!Journal} before it runs, machine jobs append their slice-boundary
    checkpoints as they advance, and each final response is recorded
    before it is sent.  On restart the journal seeds the idempotency
    cache (retried completed requests answer bit-identically from the
    record) and incomplete admissions are re-run — machine jobs
    resuming from their last recorded checkpoint.

    {b Bit-identity}: the server compiles through the cache and then
    runs the request exactly as {!Exec.Job.run} would run the
    equivalent [Graph_program] job — graph-engine jobs literally call
    [Exec.Job.run]; machine jobs run the same configuration through the
    resumable {!Machine.Machine_engine} in bounded [slice]-length
    steps, which the engine guarantees is bit-identical to a one-shot
    run.  Slicing is what makes long machine runs preemptible: a cancel
    or shutdown takes effect at the next slice boundary and the
    response carries a restorable {!Recover.Checkpoint} document. *)

type config = {
  socket_path : string;
  tcp : (string * int) option;
      (** also listen on this TCP host/port (port 0 = ephemeral;
          {!tcp_port} reports the bound port) *)
  workers : int;  (** simulation worker domains *)
  max_pending : int;  (** admission bound on jobs waiting to dispatch *)
  cache_capacity : int;  (** compiled-program cache entries *)
  slice : int;
      (** machine-engine preemption granularity, simulation-time units *)
  max_line : int;  (** request-line byte cap; over it = malformed + close *)
  idle_timeout : float option;
      (** close connections idle this long with nothing in flight *)
  write_timeout : float;
      (** close connections whose pending responses make no progress
          this long *)
  drain_timeout : float;
      (** shutdown drains admitted jobs for at most this long before
          dumping the queue and preempting *)
  journal_path : string option;  (** write-ahead job journal *)
  journal_retain : int option;
      (** compact the journal on startup, keeping only this many of the
          newest completed responses (plus every pending admission);
          [None] keeps the full history *)
  replicas : int;
      (** R: total journal copies per record, counting the local append
          — each record streams to the R−1 rendezvous-ranked peers (see
          {!Replica}); only meaningful with [cluster] *)
  cluster : string option;
      (** membership spec ({!Runspec.members_of_string}: [a,b,c] or
          [@FILE]); the [@FILE] form is re-read on {!request_reload}
          (the SIGHUP path).  Requires [self_addr] and [journal_path]. *)
  self_addr : string option;
      (** this member's own address as it appears in the member list *)
  fsync : bool option;
      (** sync Admit/Done appends to the platter, not just the OS
          ([None] = on iff clustered): an acknowledged record then
          survives power loss, not just SIGKILL *)
  diskfault : Diskfault.spec option;
      (** seeded fault injection on every journal append *)
  log : out_channel option;  (** one line per lifecycle event *)
}

val default_config : socket_path:string -> config
(** [workers = Exec.Pool.default_jobs ()], [max_pending = 64],
    [cache_capacity = 32], [slice = 5000], no TCP, [max_line] = 1 MiB,
    [idle_timeout] = 60 s, [write_timeout] = 10 s, [drain_timeout] =
    30 s, no journal, unbounded journal retention, [replicas = 2] but
    no cluster, auto fsync, no disk faults, no log. *)

type t

val create : config -> t
(** Bind and listen (replacing any stale socket file), open and replay
    the journal if configured, and spawn the worker pool.  A cluster
    member whose journal is missing or damaged first rebuilds it from
    its peers' replicas ({!Replica.recover_from_peers}): the dedup
    window and every pending admission survive the loss of the disk,
    machine jobs resuming from their replicated checkpoints.
    @raise Unix.Unix_error when a path or port is unusable.
    @raise Invalid_argument on an inconsistent cluster config (no
    [self_addr], no journal, self not in the member list). *)

val tcp_port : t -> int option
(** The bound TCP port, when a [tcp] listener was configured — the way
    to learn an ephemeral (port 0) binding. *)

val serve : t -> unit
(** Run the event loop until a [shutdown] request arrives, then drain:
    admission stops (new work is answered [shutting_down]) while
    admitted jobs run to completion; after [drain_timeout] the queue is
    dumped and running machine jobs are preempted at their next slice.
    Once every in-flight job has been answered the sockets are closed,
    the Unix socket file removed, the journal closed and the pool
    joined. *)

val run : config -> unit
(** [serve (create config)]. *)

val request_reload : t -> unit
(** Ask the event loop to re-read the [@FILE] membership list at its
    next iteration (async-signal-safe: a flag plus a self-pipe wakeup —
    [bin/dfserve] calls this from its SIGHUP handler).  Joins and
    leaves re-home the rendezvous targets, and the live idempotency
    table is re-pushed at the new target set so entries the change
    left under-replicated regain their quorum. *)

val config_of_run :
  Protocol.run -> (Run_config.t * Machine.Arch.t, string) result
(** The exact engine configuration the server builds for a simulate
    request (fault plan, recovery policy, integrity, watchdog,
    max-time; the sanitizer is {e not} included — it is created fresh
    per run, as {!Exec.Job} does).  Exposed so clients and tests can
    construct the standalone {!Exec.Job} a served response must be
    bit-identical to.  Machine requests default [max_time] to
    {!Machine.Machine_engine.default_max_time}, matching
    {!Fault_diff.machine}. *)

val subject_of_program :
  Protocol.program ->
  waves:int ->
  (Dfg.Graph.t * (string * Dfg.Value.t list) list * string, string) result
(** Compile (uncached) and feed a request's program: the graph, the
    full packet streams, and the job name.  Kernel programs reproduce
    {!Runspec.compile_subject}'s deterministic input draw; source
    programs synthesize inputs with {!Runspec.synth_wave}.  This is the
    reference a served run is compared against. *)

val program_key : Protocol.program -> int
(** The compiled-program cache key of a request's program — an FNV-1a
    checksum over the canonical source text plus scalar bindings.
    {!Cluster} rendezvous-hashes on it so same-program requests route
    to the member whose cache already holds the entry.
    @raise Not_found for a kernel name the library does not know. *)
