module J = Obs.Json
module P = Protocol
module FP = Fault.Fault_plan
module K = Kernels

type report = {
  checked : int;
  failures : string list;
  cache_hits : int;
  cache_misses : int;
  churned : int;
  retried : int;
  shed : int;
  deduped : int;
  elapsed_s : float;
}

(* One deterministic scenario: a request plus nothing else — the
   expected result is recomputed standalone from the same request. *)
let scenario ~seed ~client ~index =
  let kernels = List.map (fun k -> k.K.name) K.all in
  let st = Random.State.make [| seed; client; index |] in
  let pick xs = List.nth xs (Random.State.int st (List.length xs)) in
  (* a small kernel pool per client keeps the cache hot on purpose *)
  let name = List.nth kernels ((client + Random.State.int st 3) mod List.length kernels) in
  let program = P.Kernel { name; size = 8 } in
  let base = P.default_run program in
  let base = { base with P.waves = 2; sanitize = true } in
  let fault_seed = 100 + (client * 37) + index in
  match pick [ `Clean_sim; `Delay_sim; `Clean_machine; `Delay_machine; `Heal ] with
  | `Clean_sim -> base
  | `Delay_sim ->
    { base with
      P.fault = Some (FP.to_string { FP.none with FP.delay_prob = 0.2; seed = fault_seed }) }
  | `Clean_machine -> { base with P.engine = `Machine }
  | `Delay_machine ->
    { base with
      P.engine = `Machine;
      fault =
        Some
          (FP.to_string
             { FP.none with
               FP.delay_prob = 0.25;
               stall_prob = 0.05;
               seed = fault_seed });
      watchdog = P.Auto }
  | `Heal ->
    { base with
      P.engine = `Machine;
      fault =
        Some
          (FP.to_string
             { FP.none with
               FP.drop_prob = 0.02;
               corrupt_prob = 0.02;
               seed = fault_seed });
      recovery = Some (Recover.to_string Recover.default);
      integrity = true;
      watchdog = P.Auto }

(* The standalone reference: the exact Exec.Job the server claims to be
   bit-identical to. *)
let standalone (r : P.run) =
  match (Server.config_of_run r, Server.subject_of_program r.P.program ~waves:r.P.waves) with
  | Error e, _ | _, Error e -> Error e
  | Ok (cfg, arch), Ok (graph, inputs, name) ->
    let engine =
      match r.P.engine with
      | `Sim -> Exec.Job.Sim
      | `Machine -> Exec.Job.Machine arch
    in
    Ok
      (Exec.Job.run
         (Exec.Job.make ~name ~engine ~config:cfg ~sanitize:r.P.sanitize
            (Exec.Job.Graph_program graph) ~inputs))

(* Fields that must agree bit for bit between the served response and
   the standalone outcome.  cache_hit/key are server-side and excluded;
   metrics derive from the engine result, so they are compared too. *)
let compare_fields = [ "outputs"; "digest"; "end_time"; "quiescent"; "stall"; "violations"; "metrics" ]

let check_response ~label resp (expected : Exec.Outcome.t) =
  if not (P.response_ok resp) then
    [ Printf.sprintf "%s: server error %s" label (J.to_string resp) ]
  else
    let want = J.Obj (P.outcome_fields ~cache_hit:false ~key:0 expected) in
    List.concat_map
      (fun f ->
        let got = J.to_string (J.member f resp) in
        let exp = J.to_string (J.member f want) in
        if got = exp then []
        else
          [ Printf.sprintf "%s: %s differs\n  served:     %s\n  standalone: %s"
              label f got exp ])
      compare_fields

let client_session ~socket ~seed ~client ~jobs =
  let conn = Client.connect socket in
  Fun.protect
    ~finally:(fun () -> Client.close conn)
    (fun () ->
      (* pipeline everything, then await in order: responses may come
         back out of order and the stash must reassemble them *)
      let runs = List.init jobs (fun index -> scenario ~seed ~client ~index) in
      let ids = List.map (fun r -> Client.send conn (P.Simulate r)) runs in
      List.concat
        (List.map2
           (fun r id ->
             let label = Printf.sprintf "client %d job %d" client id in
             let resp = Client.await conn id in
             match standalone r with
             | Error e -> [ Printf.sprintf "%s: standalone failed: %s" label e ]
             | Ok expected -> check_response ~label resp expected)
           runs ids))

(* The churn phase: [churn] sequential short-lived connections, each
   one request against a tiny cache-hot scenario.  Every seventh goes
   through the hostile-wire stack — netfault + resilient_rpc + an
   idempotency key — and then re-sends the same key on a clean
   connection, which must answer from the record without re-running. *)
let churn_phase ~socket ~seed ~churn =
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  let retried = ref 0 in
  let kernels = List.map (fun k -> k.K.name) K.all in
  let expected = Hashtbl.create 8 in
  let scenario_of i =
    let name = List.nth kernels (i mod min 3 (List.length kernels)) in
    let base = P.default_run (P.Kernel { name; size = 4 }) in
    { base with P.waves = 1 }
  in
  let expect r =
    let key = J.to_string (P.request_to_json ~id:0 (P.Simulate r)) in
    match Hashtbl.find_opt expected key with
    | Some o -> o
    | None ->
      let o = standalone r in
      Hashtbl.add expected key o;
      o
  in
  for i = 0 to churn - 1 do
    let r = scenario_of i in
    let label = Printf.sprintf "churn %d" i in
    let check resp =
      match expect r with
      | Error e ->
        failures :=
          Printf.sprintf "%s: standalone failed: %s" label e :: !failures
      | Ok o -> failures := check_response ~label resp o @ !failures
    in
    if i mod 7 = 3 then begin
      let r = { r with P.idem = Some (Printf.sprintf "churn-%d-%d" seed i) } in
      let nf =
        { (Netfault.hostile ~seed:(seed + i)) with Netfault.stall_s = 0.01 }
      in
      let retry =
        { Client.attempts = 12;
          base_delay = 0.01;
          max_delay = 0.1;
          retry_seed = seed + i }
      in
      match
        Client.resilient_rpc ~netfault:nf ~deadline:10.0 ~retry ~addr:socket
          (P.Simulate r)
      with
      | resp, attempts ->
        retried := !retried + attempts - 1;
        check resp;
        (* at-least-once retry of a finished request: answered from the
           record, bit-identically *)
        let dup = Client.connect socket in
        Fun.protect
          ~finally:(fun () -> Client.close dup)
          (fun () -> check (Client.rpc dup (P.Simulate r)))
      | exception e ->
        failures :=
          Printf.sprintf "%s: %s" label (Printexc.to_string e) :: !failures
    end
    else
      match
        let conn = Client.connect socket in
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () -> Client.rpc conn (P.Simulate r))
      with
      | resp -> check resp
      | exception e ->
        failures :=
          Printf.sprintf "%s: %s" label (Printexc.to_string e) :: !failures
  done;
  (List.rev !failures, !retried, Unix.gettimeofday () -. t0)

let run ?(clients = 4) ?(jobs_per_client = 6) ?(workers = 3) ?(seed = 1)
    ?(churn = 0) ?log () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfserve-selftest-%d.sock" (Unix.getpid ()))
  in
  (* the soak runs over a journal on a lying disk: seeded torn writes,
     ENOSPC, bit rot and slow syncs on every append.  Bit-identity of
     the served responses must hold anyway — append failures degrade
     durability, never answers. *)
  let journal =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfserve-selftest-%d.wal" (Unix.getpid ()))
  in
  (try Sys.remove journal with Sys_error _ -> ());
  let config =
    { (Server.default_config ~socket_path:socket) with
      Server.workers;
      max_pending = clients * jobs_per_client + 8;
      journal_path = Some journal;
      diskfault = Some (Diskfault.hostile ~seed);
      log }
  in
  let server = Server.create config in
  let server_domain = Domain.spawn (fun () -> Server.serve server) in
  let finish () =
    (try
       let conn = Client.connect socket in
       ignore (Client.rpc conn P.Shutdown);
       Client.close conn
     with _ -> ());
    Domain.join server_domain;
    try Sys.remove journal with Sys_error _ -> ()
  in
  Fun.protect ~finally:finish (fun () ->
      let sessions =
        List.init clients (fun client ->
            Domain.spawn (fun () ->
                try client_session ~socket ~seed ~client ~jobs:jobs_per_client
                with e ->
                  [ Printf.sprintf "client %d died: %s" client
                      (Printexc.to_string e) ]))
      in
      let failures = List.concat_map Domain.join sessions in
      let churn_failures, retried, elapsed_s =
        if churn > 0 then churn_phase ~socket ~seed ~churn
        else ([], 0, 0.0)
      in
      let conn = Client.connect socket in
      let stats = Client.rpc conn P.Stats in
      Client.close conn;
      let stat f = Option.value ~default:0 (J.get_int (J.member f stats)) in
      { checked =
          (clients * jobs_per_client)
          + churn + ((churn + 3) / 7) (* faulted churn jobs check twice *);
        failures = failures @ churn_failures;
        cache_hits = stat "cache_hits";
        cache_misses = stat "cache_misses";
        churned = churn;
        retried;
        shed = stat "rejections";
        deduped = stat "deduped";
        elapsed_s })
