module J = Obs.Json
module Prng = Fault.Prng

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  if String.length s > 4 && String.sub s 0 4 = "tcp:" then
    match Runspec.hostport_of_string (String.sub s 4 (String.length s - 4)) with
    | Ok (host, port) -> Tcp (host, port)
    | Error e -> invalid_arg ("Client.addr_of_string: " ^ e)
  else Unix_path s

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

exception Timeout
exception Injected of string

type t = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  mutable stash : (int * J.t) list;
  mutable next_id : int;
  conn : int;  (* connection ordinal: netfault keying *)
  mutable ops : int;  (* operation ordinal within the connection *)
  netfault : Netfault.spec option;
  deadline : float option;  (* seconds an await may block *)
}

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host))
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))
    in
    Unix.ADDR_INET (ip, port)

let connect ?(retries = 50) ?(delay = 0.1) ?deadline ?netfault ?(conn = 0)
    addr =
  (match netfault with Some s -> Netfault.validate s | None -> ());
  let addr = addr_of_string addr in
  let domain =
    match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let rec go attempt =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr_of addr) with
    | () -> fd
    | exception
        Unix.Unix_error
          ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.ECONNRESET), _, _)
      when attempt < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf delay;
      go (attempt + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  { fd = go 0;
    rbuf = Buffer.create 4096;
    stash = [];
    next_id = 1;
    conn;
    ops = 0;
    netfault;
    deadline }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* EINTR-safe; EPIPE and friends surface as Unix_error for the retry
   layer (mains ignore SIGPIPE so a dead peer is an error, not a
   process kill). *)
let write_all fd bytes off len =
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go off

let send t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  let op = t.ops in
  t.ops <- op + 1;
  let line = J.to_string (Protocol.request_to_json ~id req) ^ "\n" in
  (match t.netfault with
  | None -> write_all t.fd (Bytes.of_string line) 0 (String.length line)
  | Some spec -> (
    match Netfault.action spec ~conn:t.conn ~op with
    | Netfault.Pass ->
      write_all t.fd (Bytes.of_string line) 0 (String.length line)
    | Netfault.Drop ->
      close t;
      raise (Injected "connection dropped before write")
    | Netfault.Truncate f ->
      let n = max 1 (int_of_float (f *. float_of_int (String.length line))) in
      let n = min n (String.length line - 1) in
      write_all t.fd (Bytes.of_string line) 0 n;
      close t;
      raise (Injected (Printf.sprintf "truncated after %d/%d bytes" n
                         (String.length line)))
    | Netfault.Garbage g ->
      let poisoned = g ^ line in
      write_all t.fd (Bytes.of_string poisoned) 0 (String.length poisoned)
    | Netfault.Stall (f, pause) ->
      let n = max 1 (int_of_float (f *. float_of_int (String.length line))) in
      let n = min n (String.length line - 1) in
      let bytes = Bytes.of_string line in
      write_all t.fd bytes 0 n;
      Unix.sleepf pause;
      write_all t.fd bytes n (String.length line)));
  id

(* Read one complete line, buffering the overshoot; [limit] is the
   absolute wall-clock instant the whole await must finish by. *)
let read_line ?limit t =
  let wait_readable () =
    match limit with
    | None -> ()
    | Some limit ->
      let rec sel () =
        let remaining = limit -. Unix.gettimeofday () in
        if remaining <= 0.0 then raise Timeout;
        match Unix.select [ t.fd ] [] [] remaining with
        | [], _, _ -> raise Timeout
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> sel ()
      in
      sel ()
  in
  let rec line_of start =
    let data = Buffer.contents t.rbuf in
    match String.index_from_opt data start '\n' with
    | Some nl ->
      let line = String.sub data 0 nl in
      Buffer.clear t.rbuf;
      Buffer.add_substring t.rbuf data (nl + 1) (String.length data - nl - 1);
      line
    | None ->
      wait_readable ();
      let chunk = Bytes.create 4096 in
      let n =
        let rec rd () =
          match Unix.read t.fd chunk 0 4096 with
          | n -> n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
        in
        rd ()
      in
      if n = 0 then raise End_of_file;
      let resume = String.length data in
      Buffer.add_subbytes t.rbuf chunk 0 n;
      line_of resume
  in
  line_of 0

let limit_of t =
  Option.map (fun d -> Unix.gettimeofday () +. d) t.deadline

let recv t = J.of_string (read_line ?limit:(limit_of t) t)

let take_stashed t id =
  match List.assoc_opt id t.stash with
  | Some r ->
    t.stash <- List.remove_assoc id t.stash;
    Some r
  | None -> None

let await t id =
  match take_stashed t id with
  | Some r -> r
  | None ->
    let limit = limit_of t in
    let rec pump () =
      let r = J.of_string (read_line ?limit t) in
      match Protocol.response_id r with
      | Some rid when rid = id -> r
      | Some rid when rid >= 0 ->
        t.stash <- t.stash @ [ (rid, r) ];
        pump ()
      | _ -> (
        (* an unaddressed [malformed] means a request of ours was
           mangled on the wire — fail fast so the retry layer reissues
           instead of waiting out the deadline *)
        match Protocol.response_error r with
        | Some (Some Protocol.Malformed, m) ->
          raise (Injected ("server rejected frame: " ^ m))
        | _ ->
          t.stash <- t.stash @ [ (-1, r) ];
          pump ())
    in
    pump ()

let rpc t req = await t (send t req)

(* One connect, one request, one response — no backoff.  The replica
   layer calls this from the event loop, where blocking on a slow or
   dead peer must be bounded: a refused connect fails immediately and
   [deadline] caps the await. *)
let oneshot ?(retries = 0) ?deadline addr req =
  match
    let c = connect ~retries ~delay:0.05 ?deadline addr in
    Fun.protect ~finally:(fun () -> close c) (fun () -> rpc c req)
  with
  | resp -> Ok resp
  | exception Timeout -> Error "deadline expired"
  | exception End_of_file -> Error "connection closed"
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

(* ---------------- retry with backoff ---------------- *)

type retry = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  retry_seed : int;
}

let default_retry =
  { attempts = 10; base_delay = 0.05; max_delay = 1.0; retry_seed = 0 }

let backoff_delay retry ~attempt =
  let exp = min (float_of_int (1 lsl min attempt 16) *. retry.base_delay)
              retry.max_delay in
  (* full jitter in [0.5, 1.5): seeded, so a soak replays its pauses *)
  exp *. (0.5 +. Prng.float_of_hash (Prng.mix retry.retry_seed [ attempt ]))

let retryable_error resp =
  match Protocol.response_error resp with
  | Some (Some (Protocol.Overloaded | Protocol.Shutting_down
               | Protocol.Deadline), _) -> true
  | _ -> false

let resilient_rpc ?netfault ?(deadline = 30.0) ?(retry = default_retry) ~addr
    req =
  let rec go attempt last_error =
    if attempt >= retry.attempts then
      failwith
        (Printf.sprintf "resilient_rpc: %d attempts exhausted (%s)"
           retry.attempts last_error)
    else begin
      if attempt > 0 then Unix.sleepf (backoff_delay retry ~attempt);
      match
        let c =
          connect ~retries:3 ~delay:0.05 ~deadline ?netfault ~conn:attempt
            addr
        in
        Fun.protect ~finally:(fun () -> close c) (fun () -> rpc c req)
      with
      | resp ->
        if retryable_error resp then
          go (attempt + 1)
            (Option.value ~default:"retryable server error"
               (Option.map snd (Protocol.response_error resp)))
        else (resp, attempt + 1)
      | exception Timeout -> go (attempt + 1) "request deadline expired"
      | exception End_of_file -> go (attempt + 1) "connection closed"
      | exception Injected why -> go (attempt + 1) ("injected: " ^ why)
      | exception Unix.Unix_error (e, fn, _) ->
        go (attempt + 1) (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    end
  in
  go 0 "no attempt made"
