module J = Obs.Json

type t = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  mutable stash : (int * J.t) list;
  mutable next_id : int;
}

let connect ?(retries = 50) ?(delay = 0.1) path =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempt < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf delay;
      go (attempt + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  { fd = go 0; rbuf = Buffer.create 4096; stash = []; next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  let line = J.to_string (Protocol.request_to_json ~id req) ^ "\n" in
  let bytes = Bytes.of_string line in
  let len = Bytes.length bytes in
  let rec write_all off =
    if off < len then write_all (off + Unix.write t.fd bytes off (len - off))
  in
  write_all 0;
  id

(* Read one complete line, buffering the overshoot. *)
let read_line t =
  let rec line_of start =
    let data = Buffer.contents t.rbuf in
    match String.index_from_opt data start '\n' with
    | Some nl ->
      let line = String.sub data 0 nl in
      Buffer.clear t.rbuf;
      Buffer.add_substring t.rbuf data (nl + 1) (String.length data - nl - 1);
      line
    | None ->
      let chunk = Bytes.create 4096 in
      let n = Unix.read t.fd chunk 0 4096 in
      if n = 0 then raise End_of_file;
      let resume = String.length data in
      Buffer.add_subbytes t.rbuf chunk 0 n;
      line_of resume
  in
  line_of 0

let recv t = J.of_string (read_line t)

let take_stashed t id =
  match List.assoc_opt id t.stash with
  | Some r ->
    t.stash <- List.remove_assoc id t.stash;
    Some r
  | None -> None

let await t id =
  match take_stashed t id with
  | Some r -> r
  | None ->
    let rec pump () =
      let r = recv t in
      match Protocol.response_id r with
      | Some rid when rid = id -> r
      | Some rid ->
        t.stash <- t.stash @ [ (rid, r) ];
        pump ()
      | None ->
        t.stash <- t.stash @ [ (-1, r) ];
        pump ()
    in
    pump ()

let rpc t req = await t (send t req)
