module Prng = Fault.Prng

type spec = {
  nf_seed : int;
  drop_prob : float;
  trunc_prob : float;
  garbage_prob : float;
  stall_prob : float;
  stall_s : float;
}

let none =
  { nf_seed = 0;
    drop_prob = 0.0;
    trunc_prob = 0.0;
    garbage_prob = 0.0;
    stall_prob = 0.0;
    stall_s = 0.0 }

let hostile ~seed =
  { nf_seed = seed;
    drop_prob = 0.15;
    trunc_prob = 0.15;
    garbage_prob = 0.15;
    stall_prob = 0.1;
    stall_s = 0.05 }

let validate s =
  let check name p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Netfault: %s=%g outside [0,1]" name p)
  in
  check "drop" s.drop_prob;
  check "trunc" s.trunc_prob;
  check "garbage" s.garbage_prob;
  check "stall" s.stall_prob;
  if s.stall_s < 0.0 then invalid_arg "Netfault: negative stall duration"

type action =
  | Pass
  | Drop
  | Truncate of float  (** fraction of the line that escapes *)
  | Garbage of string  (** newline-free prefix bytes *)
  | Stall of float * float  (** split point fraction, pause seconds *)

(* Every decision is a pure function of (seed, connection, op): the
   same keyed-hash discipline Fault_plan uses, so a soak replays the
   same wire faults whatever the interleaving. *)
let action spec ~conn ~op =
  let h slot = Prng.mix spec.nf_seed [ conn; op; slot ] in
  let roll slot = Prng.float_of_hash (h slot) in
  if roll 0 < spec.drop_prob then Drop
  else if roll 1 < spec.trunc_prob then
    Truncate (0.1 +. (0.8 *. Prng.float_of_hash (h 2)))
  else if roll 3 < spec.garbage_prob then
    Garbage
      (String.init
         (1 + Prng.int_of_hash (h 4) 24)
         (fun i ->
           (* printable, newline-free junk: never a frame boundary *)
           Char.chr (33 + Prng.int_of_hash (h (10 + i)) 94)))
  else if roll 5 < spec.stall_prob then
    Stall (0.1 +. (0.8 *. Prng.float_of_hash (h 6)), spec.stall_s)
  else Pass
