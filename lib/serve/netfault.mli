(** Seeded wire-fault injection for the dfserve transport.

    A hostile network, as a deterministic function: when a client (or
    the selftest) arms a [spec], each outgoing request line consults
    {!action} — keyed by (seed, connection number, operation number),
    the same stateless-hash discipline {!Fault.Fault_plan} uses — and
    is either sent intact, dropped with the connection, truncated
    mid-frame, prefixed with newline-free garbage bytes, or stalled
    partway through the write.  The retry layer above
    ({!Client.resilient_rpc}) must heal every one of these into an
    exactly-once result; the server must survive all of them with
    structured errors or clean deadline closes. *)

type spec = {
  nf_seed : int;
  drop_prob : float;  (** close the connection instead of writing *)
  trunc_prob : float;  (** write a prefix of the line, then close *)
  garbage_prob : float;  (** junk bytes prepended to the line *)
  stall_prob : float;  (** pause mid-write (trips idle deadlines) *)
  stall_s : float;  (** pause length, seconds *)
}

val none : spec
val hostile : seed:int -> spec
(** A mix with every fault armed at moderate probability. *)

val validate : spec -> unit
(** @raise Invalid_argument on probabilities outside [0,1]. *)

type action =
  | Pass
  | Drop
  | Truncate of float  (** fraction of the line that escapes *)
  | Garbage of string
  | Stall of float * float  (** split fraction, pause seconds *)

val action : spec -> conn:int -> op:int -> action
(** Pure: the same (seed, conn, op) triple always yields the same
    action. *)
