(** Write-ahead job journal: dfserve's durability layer.

    Each admitted simulate request is recorded {e before} it runs
    ([Admit], carrying the client's idempotency key and the full
    request document), machine jobs record their latest slice-boundary
    checkpoint as they advance ([Progress]), and every final response
    is recorded when it is produced ([Done], before it is sent).  On
    restart the server {!replay}s the file: [Done] entries seed the
    idempotency-key response cache, so a client retrying a request the
    old server already answered gets the recorded response back
    bit-identically; [Admit] entries without a [Done] are re-run —
    machine jobs resuming from their last [Progress] checkpoint where
    one exists — and their completions are journaled as usual.  The
    combination turns at-least-once client retries into exactly-once
    results across server crashes.

    On disk every record is independently framed with the same
    magic+CRC+length discipline {!Recover.Checkpoint} uses for
    snapshot files ([dfjent <crc> <len>] + payload), so an append torn
    by SIGKILL corrupts only the tail: {!replay} returns the longest
    intact prefix of records and ignores everything after the first
    torn, truncated or bit-rotted frame. *)

type entry =
  | Admit of { idem : string; request : Obs.Json.t }
      (** the simulate request as submitted (a [run_fields] object) *)
  | Progress of { idem : string; checkpoint : Obs.Json.t }
      (** latest resumable {!Recover.Checkpoint} document *)
  | Done of { idem : string; response : Obs.Json.t; digest : int option }
      (** the final response (id normalized to 0); [digest] for quick
          audits without decoding the response *)

val frame : entry -> string
(** The exact bytes {!append} writes for one record. *)

val entries_of_string : string -> entry list
(** Longest intact record prefix of a journal image. *)

val replay : string -> entry list
(** [entries_of_string] over a file; a missing file is an empty
    journal. *)

type pending = {
  p_idem : string;
  p_request : Obs.Json.t;
  p_checkpoint : Obs.Json.t option;
}

type recovered = {
  completed : (string * Obs.Json.t) list;
  pending : pending list;
}

val fold : entry list -> recovered
(** Collapse a replayed entry list into the response cache and the
    re-run worklist, both in admission order.  A duplicate [Admit] for
    an idem key is ignored; a [Progress] for an unknown key is dropped
    (a checkpoint without its request is useless); a [Done] for an
    unknown key still seeds the response cache — that is how a
    {!compact}ed journal (which stores completed work as bare [Done]
    records) survives the {e next} restart's replay. *)

val compact : path:string -> retain:int -> recovered
(** Rewrite the journal as its folded state: the newest [retain]
    completed responses plus every pending admission (with its latest
    checkpoint), dropping older [Done] records and all superseded
    history — so a long-lived server's restart replay is bounded by its
    dedup retention window instead of its lifetime.  Atomic
    (write-temporary + rename) and framed like any other journal, so
    the compacted file keeps the torn-tail replay property.  Returns
    the retained state, ready for {!fold}-style consumption.  A missing
    file compacts to an empty journal.
    @raise Invalid_argument when [retain] is negative. *)

(** {1 Appending} *)

type t

val open_append : string -> t
(** Open (creating if needed) for appending.  Thread-safe: the server
    appends from its event loop and from worker domains. *)

val append : t -> entry -> unit
(** One framed record, one [write], flushed to the OS before
    returning — a SIGKILL can tear at most the record in flight. *)

val appended : t -> int
(** Records appended through this handle (not counting replayed
    history). *)

val close : t -> unit
