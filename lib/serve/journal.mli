(** Write-ahead job journal: dfserve's durability layer.

    Each admitted simulate request is recorded {e before} it runs
    ([Admit], carrying the client's idempotency key and the full
    request document), machine jobs record their latest slice-boundary
    checkpoint as they advance ([Progress]), and every final response
    is recorded when it is produced ([Done], before it is sent).  On
    restart the server {!replay}s the file: [Done] entries seed the
    idempotency-key response cache, so a client retrying a request the
    old server already answered gets the recorded response back
    bit-identically; [Admit] entries without a [Done] are re-run —
    machine jobs resuming from their last [Progress] checkpoint where
    one exists — and their completions are journaled as usual.  The
    combination turns at-least-once client retries into exactly-once
    results across server crashes.

    On disk every record is independently framed with the same
    magic+CRC+length discipline {!Recover.Checkpoint} uses for
    snapshot files ([dfjent <crc> <len>] + payload), so an append torn
    by SIGKILL corrupts only the tail: {!replay} returns the longest
    intact prefix of records and ignores everything after the first
    torn, truncated or bit-rotted frame.  {!replay_verified} also says
    whether such a refused tail exists — the trigger for rebuilding
    the journal from replication peers (see {!Replica}). *)

type entry =
  | Admit of { idem : string; request : Obs.Json.t }
      (** the simulate request as submitted (a [run_fields] object) *)
  | Progress of { idem : string; checkpoint : Obs.Json.t }
      (** latest resumable {!Recover.Checkpoint} document *)
  | Done of { idem : string; response : Obs.Json.t; digest : int option }
      (** the final response (id normalized to 0); [digest] for quick
          audits without decoding the response *)

val entry_to_json : entry -> Obs.Json.t
(** The record's payload document — what the [replicate] verb carries
    on the wire. *)

val entry_of_json : Obs.Json.t -> (entry, string) result

val frame : entry -> string
(** The exact bytes {!append} writes for one record. *)

val entries_of_string : string -> entry list
(** Longest intact record prefix of a journal image. *)

val replay : string -> entry list
(** [entries_of_string] over a file; a missing file is an empty
    journal. *)

type damage =
  | Intact  (** every byte of the file is part of an intact record *)
  | Damaged of { valid : int; size : int }
      (** replay accepted the first [valid] of [size] bytes and
          refused the rest (torn append, truncation or bit rot) *)

val replay_verified : string -> entry list * damage
(** {!replay}, plus whether the file held bytes the replay refused.  A
    missing file is [([], Intact)] — callers distinguishing "no journal
    yet" from "journal lost" should [Sys.file_exists] first. *)

type pending = {
  p_idem : string;
  p_request : Obs.Json.t;
  p_checkpoint : Obs.Json.t option;
}

type recovered = {
  completed : (string * Obs.Json.t) list;
  pending : pending list;
}

val fold : entry list -> recovered
(** Collapse a replayed entry list into the response cache and the
    re-run worklist, both in admission order.  A duplicate [Admit] for
    an idem key is ignored; a [Progress] for an unknown key is dropped
    (a checkpoint without its request is useless); a [Done] for an
    unknown key still seeds the response cache — that is how a
    {!compact}ed journal (which stores completed work as bare [Done]
    records) survives the {e next} restart's replay.  The same
    tolerance makes recovery merges safe: concatenating a local replay
    with entries fetched from peers and folding yields the union, with
    duplicates collapsing harmlessly. *)

val entries_of_recovered : recovered -> entry list
(** The folded state as a minimal entry list — bare [Done] records for
    the dedup window, [Admit] (+ latest [Progress]) per pending job.
    [fold (entries_of_recovered r)] is [r].  This is what {!compact}
    writes and what disk-loss recovery rebuilds a journal from. *)

val write_atomic : path:string -> entry list -> unit
(** Replace the journal at [path] with exactly [entries], durably:
    write-temporary, fsync, rename, fsync the directory.  A crash
    mid-rewrite leaves either the old file or the new one. *)

val compact : path:string -> retain:int -> recovered
(** Rewrite the journal as its folded state: the newest [retain]
    completed responses plus every pending admission (with its latest
    checkpoint), dropping older [Done] records and all superseded
    history — so a long-lived server's restart replay is bounded by its
    dedup retention window instead of its lifetime.  Durably atomic via
    {!write_atomic} and framed like any other journal, so the compacted
    file keeps the torn-tail replay property (and sheds any refused
    tail, giving subsequent appends a clean frame boundary).  Returns
    the retained state, ready for {!fold}-style consumption.  A missing
    file compacts to an empty journal.
    @raise Invalid_argument when [retain] is negative. *)

(** {1 Appending} *)

type t

exception Disk_fault of string
(** An injected torn write: a prefix of the frame reached the disk
    before the simulated crash.  See {!Diskfault}. *)

val open_append : ?fsync:bool -> ?diskfault:Diskfault.spec -> string -> t
(** Open (creating if needed) for appending.  Thread-safe: the server
    appends from its event loop and from worker domains.  With
    [~fsync:true] (default false) every [Admit]/[Done] append is
    [Unix.fsync]ed before returning, so an acknowledged record
    survives power loss and not just SIGKILL — [Progress] records are
    advisory (losing one costs recomputation, not correctness) and
    never pay for a sync.  A [diskfault] spec arms seeded fault
    injection on every append. *)

val append : t -> entry -> unit
(** One framed record, one [write], flushed to the OS (and synced, per
    {!open_append}) before returning — a SIGKILL can tear at most the
    record in flight.
    @raise Disk_fault on an injected torn write (partial frame on disk).
    @raise Unix.Unix_error [(ENOSPC, _, _)] on an injected full disk
    (also after a partial write).  Injected bit rot is silent here and
    surfaces as a refused frame at the next replay. *)

val appended : t -> int
(** Records appended through this handle (not counting replayed
    history). *)

val close : t -> unit
