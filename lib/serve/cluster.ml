module J = Obs.Json
module P = Protocol
module Prng = Fault.Prng

(* A federation of dfserve processes is a static member list plus three
   pure-ish mechanisms layered on the existing client:

   - rendezvous (highest-random-weight) hashing on the program's cache
     key routes same-program requests to the member whose compiled-
     program cache already holds the entry, and — the property plain
     mod-N hashing lacks — removing a member never reorders the
     survivors, so failover lands every orphaned key on one stable
     next-best member instead of reshuffling the whole ring;

   - a per-member up/suspect/down health state machine fed by stats
     probes and by submit outcomes;

   - failover submission: walk the rendezvous order, resilient_rpc per
     member, move on when a member is unreachable.  Requests carrying
     an idempotency key stay exactly-once across the walk because each
     member deduplicates and recomputation is deterministic.  *)

type health = Up | Suspect | Down

let health_to_string = function
  | Up -> "up"
  | Suspect -> "suspect"
  | Down -> "down"

type member = { addr : string; mutable health : health; mutable fails : int }

type t = {
  members : member array;
  deadline : float;
  retry : Client.retry;
  mutable submits : int;
  mutable failovers : int;
}

let members_of_spec = Runspec.members_of_string

let create ?(deadline = 30.0) ?(retry = Client.default_retry) addrs =
  if addrs = [] then invalid_arg "Cluster.create: no members";
  { members =
      Array.of_list
        (List.map (fun addr -> { addr; health = Up; fails = 0 }) addrs);
    deadline;
    retry;
    submits = 0;
    failovers = 0 }

let health t = Array.to_list (Array.map (fun m -> (m.addr, m.health)) t.members)
let failovers t = t.failovers
let submits t = t.submits

(* two consecutive failures demote a member all the way; any success
   restores it — a member that flaps pays with routing priority only
   while it is actually failing *)
let mark_up m =
  m.health <- Up;
  m.fails <- 0

let mark_failed m =
  m.fails <- m.fails + 1;
  m.health <- (if m.fails >= 2 then Down else Suspect)

(* ---------------- routing ---------------- *)

(* delegate to the replica layer's string-keyed hash (the bytes hashed
   are identical), so client-side routing and server-side replica
   placement can never drift apart *)
let score ~key addr = Replica.score ~key:(string_of_int key) addr

let rendezvous_order ~key addrs =
  Replica.rendezvous_order ~key:(string_of_int key) addrs

let routing_key program =
  match Server.program_key program with
  | key -> key
  | exception Not_found -> 0 (* unknown kernel: any member will reject it *)

(* candidates for one submission: rendezvous order, with members known
   to be down demoted to last-resort retries rather than dropped — a
   wrong "down" verdict must never make a reachable answer unreachable *)
let candidates t ~key =
  let by_addr addr =
    (* member arrays are tiny (a handful of replicas); linear is fine *)
    let rec go i = if t.members.(i).addr = addr then t.members.(i) else go (i + 1) in
    go 0
  in
  let ordered =
    List.map by_addr
      (rendezvous_order ~key
         (Array.to_list (Array.map (fun m -> m.addr) t.members)))
  in
  let up, down = List.partition (fun m -> m.health <> Down) ordered in
  up @ down

(* ---------------- health probes ---------------- *)

let probe ?(deadline = 2.0) t =
  Array.to_list
    (Array.map
       (fun m ->
         let outcome =
           match Client.connect ~retries:0 ~deadline m.addr with
           | exception e -> Error (Printexc.to_string e)
           | c -> (
             match
               Fun.protect
                 ~finally:(fun () -> Client.close c)
                 (fun () -> Client.rpc c P.Stats)
             with
             | resp when P.response_ok resp -> Ok resp
             | resp -> Error (J.to_string resp)
             | exception e -> Error (Printexc.to_string e))
         in
         (match outcome with Ok _ -> mark_up m | Error _ -> mark_failed m);
         (m.addr, outcome))
       t.members)

(* ---------------- failover submission ---------------- *)

(* each member gets its own jitter stream, so two members' retry
   schedules never lock step *)
let member_retry t m =
  { t.retry with
    Client.retry_seed =
      Prng.int_of_hash
        (Prng.mix t.retry.Client.retry_seed [ Hashtbl.hash m.addr ])
        1_000_000_000 }

let submit t ~key req =
  t.submits <- t.submits + 1;
  let rec go tried = function
    | [] ->
      failwith
        (Printf.sprintf "Cluster.submit: all %d members failed (%s)"
           (Array.length t.members)
           (String.concat "; " (List.rev tried)))
    | m :: rest -> (
      match
        Client.resilient_rpc ~deadline:t.deadline ~retry:(member_retry t m)
          ~addr:m.addr req
      with
      | resp, _ ->
        mark_up m;
        (resp, m.addr)
      | exception Failure e ->
        mark_failed m;
        if rest <> [] then t.failovers <- t.failovers + 1;
        go ((m.addr ^ ": " ^ e) :: tried) rest)
  in
  go [] (candidates t ~key)

(* ---------------- live migration ---------------- *)

(* Drive one job from [source] to [target].  The source's migrate verb
   tells us what there is to move; every state converges to an answer:

     migrated     resume the shipped checkpoint at the target
     queued       the job never ran at the source; run it at the target
     done         the source already holds the recorded answer
     running      a graph-engine job; un-preemptible, ride it out
     not_found    nothing admitted under the key; fresh run at target
     (source dead) the journal twin: resubmit under the same idem key

   [run] must carry the idem key the job was admitted under — it is
   both the migrate handle and the exactly-once guarantee for every
   fallback resubmission. *)
let migrate ?(deadline = 30.0) ?(retry = Client.default_retry) ~source ~target
    (run : P.run) =
  (match run.P.idem with
  | Some _ -> ()
  | None -> invalid_arg "Cluster.migrate: run carries no idem key");
  let idem = Option.get run.P.idem in
  let rpc addr req = fst (Client.resilient_rpc ~deadline ~retry ~addr req) in
  let simulate addr r = rpc addr (P.Simulate r) in
  (* prefer the request document the source hands back (it may carry
     journal state we do not have), falling back to our own copy *)
  let returned_run resp =
    match P.request_of_json (J.member "request" resp) with
    | Ok (_, P.Simulate r) -> r
    | Ok _ | Error _ -> run
  in
  match rpc source (P.Migrate idem) with
  | exception Failure _ ->
    (* the source is unreachable; its journal still owns the admission,
       so the target's run and any source-side replay are deterministic
       twins — same key, same bytes *)
    (simulate target run, "source_dead")
  | resp when not (P.response_ok resp) -> (simulate target run, "refused")
  | resp -> (
    match Option.value ~default:"" (J.get_string (J.member "state" resp)) with
    | "migrated" ->
      let r = returned_run resp in
      ( simulate target { r with P.restore = Some (J.member "checkpoint" resp) },
        "migrated" )
    | "queued" -> (simulate target (returned_run resp), "requeued")
    | "done" -> (J.member "response" resp, "done")
    | "running" ->
      (* not preemptible at the source: attach to the in-flight run *)
      (simulate source run, "ran_at_source")
    | _ -> (simulate target run, "fresh"))
