(** Seeded disk-fault injection: the storage twin of {!Netfault}.

    A {!spec} arms four failure modes on journal appends — torn writes
    (a prefix of the frame reaches the disk before the "crash"), ENOSPC
    (a partial write and then the device is full), bit rot (one bit of
    the frame flips at rest) and slow sync (the fsync hangs).  Every
    decision is a pure function of (seed, append ordinal) via the same
    keyed-hash discipline {!Fault.Fault_plan} and {!Netfault} use, so a
    soak replays the identical disk betrayals whatever the thread
    interleaving — chaos transcripts stay byte-identical at any worker
    count.

    {!Journal.open_append} threads a spec through every append; the
    torn and ENOSPC actions raise ({!Journal.Disk_fault} /
    [Unix_error (ENOSPC, _, _)]) after their partial write, bit rot is
    silent until replay's CRC check refuses the frame, and slow sync
    just stalls.  Replication exists exactly for what these inject: a
    record the local disk betrayed survives on the quorum peers. *)

type spec = {
  df_seed : int;
  torn_prob : float;  (** append writes a prefix, then the "crash" *)
  enospc_prob : float;  (** partial write, then [ENOSPC] *)
  rot_prob : float;  (** one bit of the frame flips at rest *)
  slow_prob : float;  (** the sync hangs *)
  slow_s : float;  (** for how long, seconds *)
}

val none : spec

val hostile : seed:int -> spec
(** Every mode armed at a few percent, syncs briefly stalled — the
    selftest's lying disk. *)

val validate : spec -> unit
(** @raise Invalid_argument on a probability outside [0,1] or a
    negative sync delay. *)

type action =
  | Pass
  | Torn of float  (** fraction of the frame that reaches the disk *)
  | Enospc of float  (** fraction written before the device fills *)
  | Rot of int  (** pseudo-random bit index (reduce modulo frame bits) *)
  | Slow_sync of float  (** seconds the sync hangs *)

val action : spec -> op:int -> action
(** The fate of append ordinal [op]: a pure keyed-hash decision. *)

val to_string : spec -> string
(** [seed=N torn=P enospc=P rot=P slow=P slow_s=S], zero fields
    omitted; reals in [%h] so {!of_string} round-trips exactly. *)

val of_string : string -> (spec, string) result
(** Parse a [--diskfault] argument: space- or comma-separated
    [key=value] pairs over the {!to_string} keys; unarmed fields
    default to zero.  Validates before returning. *)
