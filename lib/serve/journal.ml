module J = Obs.Json

(* A journal is a sequence of independently framed records:

     dfjent <crc> <len>\n
     { ... }\n

   — the same magic+CRC+length discipline Recover.Checkpoint uses for
   snapshot files, applied per record so an append torn by SIGKILL
   corrupts only the tail.  Replay stops at the first frame that fails
   its header, length or checksum: everything before a torn append is
   trusted, everything after it is not (an append-only log gives no
   resync point that is safe against a record boundary forged by
   rotted bytes). *)

let magic = "dfjent"

exception Disk_fault of string

type entry =
  | Admit of { idem : string; request : J.t }
  | Progress of { idem : string; checkpoint : J.t }
  | Done of { idem : string; response : J.t; digest : int option }

let entry_to_json = function
  | Admit { idem; request } ->
    J.Obj [ ("kind", J.String "admit"); ("idem", J.String idem);
            ("request", request) ]
  | Progress { idem; checkpoint } ->
    J.Obj [ ("kind", J.String "progress"); ("idem", J.String idem);
            ("checkpoint", checkpoint) ]
  | Done { idem; response; digest } ->
    J.Obj
      (("kind", J.String "done") :: ("idem", J.String idem)
      :: ("response", response)
      ::
      (match digest with
      | Some d -> [ ("digest", J.Int d) ]
      | None -> []))

let entry_of_json j =
  match (J.get_string (J.member "kind" j), J.get_string (J.member "idem" j))
  with
  | Some "admit", Some idem -> Ok (Admit { idem; request = J.member "request" j })
  | Some "progress", Some idem ->
    Ok (Progress { idem; checkpoint = J.member "checkpoint" j })
  | Some "done", Some idem ->
    Ok
      (Done
         { idem;
           response = J.member "response" j;
           digest = J.get_int (J.member "digest" j) })
  | _, None -> Error "journal entry without idem"
  | Some k, _ -> Error (Printf.sprintf "unknown journal entry kind %S" k)
  | None, _ -> Error "journal entry without kind"

let frame entry =
  let payload = J.to_string (entry_to_json entry) ^ "\n" in
  Printf.sprintf "%s %d %d\n%s" magic
    (Integrity.checksum_string payload)
    (String.length payload) payload

(* ---------------- replay ---------------- *)

type damage = Intact | Damaged of { valid : int; size : int }

(* Longest intact prefix of records; anything torn, truncated or
   bit-rotted ends the replay.  Also reports how far the intact prefix
   reaches, so a caller can tell a clean journal from one whose tail
   was betrayed — the trigger for peer recovery. *)
let scan text =
  let len = String.length text in
  let rec go pos acc =
    let stop () = (List.rev acc, pos) in
    if pos >= len then stop ()
    else
      match String.index_from_opt text pos '\n' with
      | None -> stop () (* torn header *)
      | Some nl -> (
        let header = String.sub text pos (nl - pos) in
        match String.split_on_char ' ' header with
        | [ m; crc_s; plen_s ] when m = magic -> (
          match (int_of_string_opt crc_s, int_of_string_opt plen_s) with
          | Some crc, Some plen ->
            let start = nl + 1 in
            if plen < 0 || start + plen > len then stop () (* torn payload *)
            else
              let payload = String.sub text start plen in
              if Integrity.checksum_string payload <> crc then stop ()
              else (
                match J.of_string payload with
                | exception J.Parse_error _ -> stop ()
                | doc -> (
                  match entry_of_json doc with
                  | Ok e -> go (start + plen) (e :: acc)
                  | Error _ -> stop ()))
          | _ -> stop ())
        | _ -> stop ())
  in
  go 0 []

let entries_of_string text = fst (scan text)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | text -> Some text

let replay path =
  match read_file path with None -> [] | Some text -> entries_of_string text

let replay_verified path =
  match read_file path with
  | None -> ([], Intact) (* a missing file is an empty journal *)
  | Some text ->
    let entries, valid = scan text in
    if valid = String.length text then (entries, Intact)
    else (entries, Damaged { valid; size = String.length text })

(* ---------------- folding a replay into job state ---------------- *)

type pending = {
  p_idem : string;
  p_request : J.t;
  p_checkpoint : J.t option;  (** latest progress checkpoint, if any *)
}

type recovered = {
  completed : (string * J.t) list;  (** idem -> recorded response, oldest first *)
  pending : pending list;  (** admitted, never completed, admission order *)
}

let fold entries =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun e ->
      match e with
      | Admit { idem; request } ->
        if not (Hashtbl.mem tbl idem) then begin
          Hashtbl.add tbl idem (`Pending (request, None));
          order := idem :: !order
        end
      | Progress { idem; checkpoint } -> (
        match Hashtbl.find_opt tbl idem with
        | Some (`Pending (req, _)) ->
          Hashtbl.replace tbl idem (`Pending (req, Some checkpoint))
        | _ -> ())
      | Done { idem; response; _ } -> (
        match Hashtbl.find_opt tbl idem with
        | Some (`Pending _) -> Hashtbl.replace tbl idem (`Done response)
        | Some (`Done _) -> ()
        | None ->
          (* no surviving Admit — the admission was compacted away (a
             compacted journal stores completed work as bare [Done]
             records) or torn off a previous generation; the response
             is still the authoritative answer for this key *)
          Hashtbl.add tbl idem (`Done response);
          order := idem :: !order))
    entries;
  let completed, pending =
    List.fold_left
      (fun (cs, ps) idem ->
        match Hashtbl.find_opt tbl idem with
        | Some (`Done response) -> ((idem, response) :: cs, ps)
        | Some (`Pending (request, checkpoint)) ->
          (cs, { p_idem = idem; p_request = request; p_checkpoint = checkpoint } :: ps)
        | None -> (cs, ps))
      ([], []) !order
  in
  { completed; pending }

(* the folded state as a minimal entry list: bare Done records for the
   dedup window, Admit (+ latest Progress) for each pending job — what
   compaction writes and what peer recovery rebuilds a lost journal
   from *)
let entries_of_recovered rcv =
  List.map
    (fun (idem, response) ->
      Done
        { idem;
          response;
          digest = J.get_int (J.member "digest" response) })
    rcv.completed
  @ List.concat_map
      (fun p ->
        Admit { idem = p.p_idem; request = p.p_request }
        ::
        (match p.p_checkpoint with
        | Some checkpoint -> [ Progress { idem = p.p_idem; checkpoint } ]
        | None -> []))
      rcv.pending

(* ---------------- durable rewrites ---------------- *)

let fsync_dir path =
  (* best-effort: some filesystems refuse fsync on a directory fd *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())

(* Write-temporary + fsync + rename + fsync-the-directory: a crash (or
   power cut) mid-rewrite leaves either the old file or the new one,
   never a hybrid and never a rename pointing at unsynced bytes. *)
let write_atomic ~path entries =
  let tmp = path ^ ".compact" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter (fun e -> output_string oc (frame e)) entries;
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
  Sys.rename tmp path;
  fsync_dir path

(* ---------------- compaction ---------------- *)

(* Rewrite the journal as the folded state instead of the full history:
   the newest [retain] completed responses (the dedup retention window)
   plus every pending admission with its latest checkpoint.  Via
   write_atomic, so a crash mid-compaction leaves either the old
   journal or the new one — and the new file uses the same per-record
   framing, so the torn-tail replay guarantees carry over unchanged.
   Compaction also truncates any betrayed tail the replay refused,
   giving the next generation's appends a clean frame boundary. *)
let compact ~path ~retain =
  if retain < 0 then invalid_arg "Journal.compact: negative retention";
  let rcv = fold (replay path) in
  let completed =
    let n = List.length rcv.completed in
    if n <= retain then rcv.completed
    else
      (* completed is oldest-first: drop from the front *)
      List.filteri (fun i _ -> i >= n - retain) rcv.completed
  in
  let rcv = { rcv with completed } in
  write_atomic ~path (entries_of_recovered rcv);
  rcv

(* ---------------- the live writer ---------------- *)

type t = {
  oc : out_channel;
  path : string;
  fsync : bool;
  diskfault : Diskfault.spec option;
  mutex : Mutex.t;  (** appends come from the event loop and from workers *)
  mutable appended : int;
}

let open_append ?(fsync = false) ?diskfault path =
  { oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path;
    path;
    fsync;
    diskfault;
    mutex = Mutex.create ();
    appended = 0 }

(* Progress records are per-slice and advisory (losing one only costs
   recomputation); only the records that carry the exactly-once
   contract pay for a disk sync. *)
let synced_entry = function Admit _ | Done _ -> true | Progress _ -> false

let sync t = try Unix.fsync (Unix.descr_of_out_channel t.oc) with Unix.Unix_error _ -> ()

let rot_frame data bit =
  let b = Bytes.of_string data in
  let i = bit / 8 mod Bytes.length b in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

let append t entry =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      (* one write per record, flushed to the OS: a SIGKILL after this
         returns can tear at most the record being appended *)
      let data = frame entry in
      let op = t.appended in
      t.appended <- op + 1;
      let finish data =
        output_string t.oc data;
        flush t.oc;
        if t.fsync && synced_entry entry then sync t
      in
      let cut frac =
        let len = String.length data in
        String.sub data 0 (max 1 (min (len - 1) (int_of_float (frac *. float_of_int len))))
      in
      match
        match t.diskfault with
        | None -> Diskfault.Pass
        | Some spec -> Diskfault.action spec ~op
      with
      | Diskfault.Pass -> finish data
      | Diskfault.Rot bit ->
        (* rot-at-rest, modeled at write time: the frame lands whole
           but lying, and replay's CRC refuses it *)
        finish (rot_frame data (bit mod (8 * String.length data)))
      | Diskfault.Slow_sync s ->
        output_string t.oc data;
        flush t.oc;
        Unix.sleepf s;
        if t.fsync && synced_entry entry then sync t
      | Diskfault.Torn frac ->
        output_string t.oc (cut frac);
        flush t.oc;
        raise (Disk_fault (Printf.sprintf "torn write at record %d" op))
      | Diskfault.Enospc frac ->
        output_string t.oc (cut frac);
        flush t.oc;
        raise (Unix.Unix_error (Unix.ENOSPC, "write", t.path)))

let appended t = t.appended

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> close_out_noerr t.oc)
