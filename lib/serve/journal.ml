module J = Obs.Json

(* A journal is a sequence of independently framed records:

     dfjent <crc> <len>\n
     { ... }\n

   — the same magic+CRC+length discipline Recover.Checkpoint uses for
   snapshot files, applied per record so an append torn by SIGKILL
   corrupts only the tail.  Replay stops at the first frame that fails
   its header, length or checksum: everything before a torn append is
   trusted, everything after it is not (an append-only log gives no
   resync point that is safe against a record boundary forged by
   rotted bytes). *)

let magic = "dfjent"

type entry =
  | Admit of { idem : string; request : J.t }
  | Progress of { idem : string; checkpoint : J.t }
  | Done of { idem : string; response : J.t; digest : int option }

let entry_to_json = function
  | Admit { idem; request } ->
    J.Obj [ ("kind", J.String "admit"); ("idem", J.String idem);
            ("request", request) ]
  | Progress { idem; checkpoint } ->
    J.Obj [ ("kind", J.String "progress"); ("idem", J.String idem);
            ("checkpoint", checkpoint) ]
  | Done { idem; response; digest } ->
    J.Obj
      (("kind", J.String "done") :: ("idem", J.String idem)
      :: ("response", response)
      ::
      (match digest with
      | Some d -> [ ("digest", J.Int d) ]
      | None -> []))

let entry_of_json j =
  match (J.get_string (J.member "kind" j), J.get_string (J.member "idem" j))
  with
  | Some "admit", Some idem -> Ok (Admit { idem; request = J.member "request" j })
  | Some "progress", Some idem ->
    Ok (Progress { idem; checkpoint = J.member "checkpoint" j })
  | Some "done", Some idem ->
    Ok
      (Done
         { idem;
           response = J.member "response" j;
           digest = J.get_int (J.member "digest" j) })
  | _, None -> Error "journal entry without idem"
  | Some k, _ -> Error (Printf.sprintf "unknown journal entry kind %S" k)
  | None, _ -> Error "journal entry without kind"

let frame entry =
  let payload = J.to_string (entry_to_json entry) ^ "\n" in
  Printf.sprintf "%s %d %d\n%s" magic
    (Integrity.checksum_string payload)
    (String.length payload) payload

(* ---------------- replay ---------------- *)

(* Longest intact prefix of records; anything torn, truncated or
   bit-rotted ends the replay. *)
let entries_of_string text =
  let len = String.length text in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else
      match String.index_from_opt text pos '\n' with
      | None -> List.rev acc (* torn header *)
      | Some nl -> (
        let header = String.sub text pos (nl - pos) in
        match String.split_on_char ' ' header with
        | [ m; crc_s; plen_s ] when m = magic -> (
          match (int_of_string_opt crc_s, int_of_string_opt plen_s) with
          | Some crc, Some plen ->
            let start = nl + 1 in
            if start + plen > len then List.rev acc (* torn payload *)
            else
              let payload = String.sub text start plen in
              if Integrity.checksum_string payload <> crc then List.rev acc
              else (
                match J.of_string payload with
                | exception J.Parse_error _ -> List.rev acc
                | doc -> (
                  match entry_of_json doc with
                  | Ok e -> go (start + plen) (e :: acc)
                  | Error _ -> List.rev acc))
          | _ -> List.rev acc)
        | _ -> List.rev acc)
  in
  go 0 []

let replay path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> []
  | text -> entries_of_string text

(* ---------------- folding a replay into job state ---------------- *)

type pending = {
  p_idem : string;
  p_request : J.t;
  p_checkpoint : J.t option;  (** latest progress checkpoint, if any *)
}

type recovered = {
  completed : (string * J.t) list;  (** idem -> recorded response, oldest first *)
  pending : pending list;  (** admitted, never completed, admission order *)
}

let fold entries =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun e ->
      match e with
      | Admit { idem; request } ->
        if not (Hashtbl.mem tbl idem) then begin
          Hashtbl.add tbl idem (`Pending (request, None));
          order := idem :: !order
        end
      | Progress { idem; checkpoint } -> (
        match Hashtbl.find_opt tbl idem with
        | Some (`Pending (req, _)) ->
          Hashtbl.replace tbl idem (`Pending (req, Some checkpoint))
        | _ -> ())
      | Done { idem; response; _ } -> (
        match Hashtbl.find_opt tbl idem with
        | Some (`Pending _) -> Hashtbl.replace tbl idem (`Done response)
        | Some (`Done _) -> ()
        | None ->
          (* no surviving Admit — the admission was compacted away (a
             compacted journal stores completed work as bare [Done]
             records) or torn off a previous generation; the response
             is still the authoritative answer for this key *)
          Hashtbl.add tbl idem (`Done response);
          order := idem :: !order))
    entries;
  let completed, pending =
    List.fold_left
      (fun (cs, ps) idem ->
        match Hashtbl.find_opt tbl idem with
        | Some (`Done response) -> ((idem, response) :: cs, ps)
        | Some (`Pending (request, checkpoint)) ->
          (cs, { p_idem = idem; p_request = request; p_checkpoint = checkpoint } :: ps)
        | None -> (cs, ps))
      ([], []) !order
  in
  { completed; pending }

(* ---------------- compaction ---------------- *)

(* Rewrite the journal as the folded state instead of the full history:
   the newest [retain] completed responses (the dedup retention window)
   plus every pending admission with its latest checkpoint.  Written to
   a temporary file and renamed into place, so a crash mid-compaction
   leaves either the old journal or the new one, never a hybrid — and
   the new file uses the same per-record framing, so the torn-tail
   replay guarantees carry over unchanged. *)
let compact ~path ~retain =
  if retain < 0 then invalid_arg "Journal.compact: negative retention";
  let rcv = fold (replay path) in
  let completed =
    let n = List.length rcv.completed in
    if n <= retain then rcv.completed
    else
      (* completed is oldest-first: drop from the front *)
      List.filteri (fun i _ -> i >= n - retain) rcv.completed
  in
  let rcv = { rcv with completed } in
  let entries =
    List.map
      (fun (idem, response) ->
        Done
          { idem;
            response;
            digest = J.get_int (J.member "digest" response) })
      rcv.completed
    @ List.concat_map
        (fun p ->
          Admit { idem = p.p_idem; request = p.p_request }
          ::
          (match p.p_checkpoint with
          | Some checkpoint -> [ Progress { idem = p.p_idem; checkpoint } ]
          | None -> []))
        rcv.pending
  in
  let tmp = path ^ ".compact" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter (fun e -> output_string oc (frame e)) entries;
      flush oc);
  Sys.rename tmp path;
  rcv

(* ---------------- the live writer ---------------- *)

type t = {
  oc : out_channel;
  mutex : Mutex.t;  (** appends come from the event loop and from workers *)
  mutable appended : int;
}

let open_append path =
  { oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path;
    mutex = Mutex.create ();
    appended = 0 }

let append t entry =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      (* one write per record, flushed to the OS: a SIGKILL after this
         returns can tear at most the record being appended *)
      output_string t.oc (frame entry);
      flush t.oc;
      t.appended <- t.appended + 1)

let appended t = t.appended

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> close_out_noerr t.oc)
