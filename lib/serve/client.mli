(** Client side of the dfserve protocol.

    A thin blocking connection: requests go out as NDJSON lines,
    responses come back the same way.  Because the server answers
    out of order (responses stream as jobs finish), the client stashes
    responses it reads while waiting for a specific id, so pipelining
    — send many, then await each — works naturally.

    The transport is either a Unix-domain socket path or TCP
    ([tcp:HOST:PORT]).  A connection may carry a [deadline] (every
    await must produce a line within that many seconds or raise
    {!Timeout}) and a {!Netfault.spec} (each outgoing request line may
    be deterministically dropped, truncated, garbage-prefixed or
    stalled — the hostile-network test harness).  {!resilient_rpc}
    layers seeded exponential-backoff retry with reconnect over all of
    that; paired with a server-side idempotency key it turns
    at-least-once retries into exactly-once results. *)

type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> addr
(** [tcp:HOST:PORT] (via {!Runspec.hostport_of_string}) or a Unix
    socket path.  @raise Invalid_argument on a malformed [tcp:] form. *)

val addr_to_string : addr -> string

exception Timeout
(** The connection's [deadline] elapsed while awaiting a response. *)

exception Injected of string
(** The armed {!Netfault} consumed the request (drop or truncation);
    the connection has been closed.  Retry layers treat this exactly
    like a network failure. *)

type t

val connect :
  ?retries:int ->
  ?delay:float ->
  ?deadline:float ->
  ?netfault:Netfault.spec ->
  ?conn:int ->
  string ->
  t
(** Connect to [tcp:HOST:PORT] or a Unix socket path.  Retries
    [retries] times (default 50) every [delay] seconds (default 0.1)
    while the endpoint is absent or refusing — covers the race of a
    server still starting up (or being restarted mid-soak).
    [deadline] bounds every subsequent {!await}; [netfault] arms wire
    faults on outgoing requests, keyed by ([conn], op ordinal).
    @raise Unix.Unix_error when the retries are exhausted. *)

val close : t -> unit

val send : t -> Protocol.request -> int
(** Fire one request; returns the connection-scoped id assigned to it.
    EINTR-safe; a dead peer raises [Unix_error (EPIPE, _, _)] rather
    than killing the process (mains ignore SIGPIPE).
    @raise Injected when the armed netfault drops or truncates it. *)

val recv : t -> Obs.Json.t
(** Read the next response line, whatever its id.
    @raise Timeout when the connection deadline elapses first. *)

val await : t -> int -> Obs.Json.t
(** Block until the response for [id] arrives, stashing any other
    responses read along the way (including unsolicited ones, like a
    cancelled job's own response).
    @raise End_of_file if the server closes the connection first.
    @raise Timeout when the connection deadline elapses first. *)

val rpc : t -> Protocol.request -> Obs.Json.t
(** [send] then [await]. *)

val take_stashed : t -> int -> Obs.Json.t option
(** Remove a previously-stashed response by id (non-blocking). *)

val oneshot :
  ?retries:int ->
  ?deadline:float ->
  string ->
  Protocol.request ->
  (Obs.Json.t, string) result
(** Connect (default [retries = 0]: a refused endpoint fails
    immediately), issue one request, await its response, close.  Every
    transport failure — refused connect, deadline, peer close — comes
    back as [Error reason] instead of an exception, so event-loop
    callers (replication, probes) can treat a dead peer as data. *)

(** {1 Retry} *)

type retry = {
  attempts : int;
  base_delay : float;  (** first backoff, seconds *)
  max_delay : float;  (** backoff cap before jitter *)
  retry_seed : int;  (** jitter is a pure function of (seed, attempt) *)
}

val default_retry : retry
(** 10 attempts, 50 ms base, 1 s cap, seed 0. *)

val backoff_delay : retry -> attempt:int -> float
(** [min (base·2{^attempt}) cap], scaled by seeded jitter in
    [[0.5, 1.5)]. *)

val resilient_rpc :
  ?netfault:Netfault.spec ->
  ?deadline:float ->
  ?retry:retry ->
  addr:string ->
  Protocol.request ->
  Obs.Json.t * int
(** One request, delivered or bust: a fresh connection per attempt
    (netfault keyed by attempt number, so a fault that ate attempt [k]
    rolls new dice on [k+1]), [deadline] seconds per attempt (default
    30), reconnect-and-reissue on timeout, connection loss, injected
    wire faults and retryable server errors ([overloaded],
    [shutting_down], [deadline]), sleeping {!backoff_delay} between
    attempts.  Returns the response and the number of attempts used.
    Pair with {!Protocol.run}'s [idem] key to make the retries
    exactly-once.  @raise Failure when all attempts are exhausted. *)
