(** Client side of the dfserve protocol.

    A thin blocking connection: requests go out as NDJSON lines,
    responses come back the same way.  Because the server answers
    out of order (responses stream as jobs finish), the client stashes
    responses it reads while waiting for a specific id, so pipelining
    — send many, then await each — works naturally. *)

type t

val connect : ?retries:int -> ?delay:float -> string -> t
(** Connect to a server socket path.  Retries [retries] times (default
    50) every [delay] seconds (default 0.1) while the socket is absent
    or refusing — covers the race of a server still starting up.
    @raise Unix.Unix_error when the retries are exhausted. *)

val close : t -> unit

val send : t -> Protocol.request -> int
(** Fire one request; returns the connection-scoped id assigned to it. *)

val await : t -> int -> Obs.Json.t
(** Block until the response for [id] arrives, stashing any other
    responses read along the way (including unsolicited ones, like a
    cancelled job's own response).
    @raise End_of_file if the server closes the connection first. *)

val rpc : t -> Protocol.request -> Obs.Json.t
(** [send] then [await]. *)

val take_stashed : t -> int -> Obs.Json.t option
(** Remove a previously-stashed response by id (non-blocking). *)
