module J = Obs.Json

(* Quorum journal replication for a dfserve cluster member.

   Every journal record the member appends for an idempotency-keyed job
   is also streamed — synchronously, one RPC per peer — to the R−1
   peers that rendezvous-rank highest for this member's own address, so
   the record survives the member's disk.  The placement is keyed by
   the ORIGIN address, not the job key: one member's replicas live on a
   stable peer set, which keeps segments per-origin (one file per
   origin on each peer) and makes recovery a single "give me everything
   you hold for me" sweep over the membership.

   Replication is best-effort per append and quorum-counted, never
   blocking: a peer that is down or slow costs one bounded RPC
   (retries:0, short deadline) and a [degraded] tick.  That is safe —
   not just expedient — because the engine is deterministic and clients
   retry with idempotency keys: a record that missed its quorum is
   re-derivable by re-running the request, so degraded mode weakens
   durability, not correctness. *)

type peer_state = Unknown | Up | Suspect | Down

let peer_state_to_string = function
  | Unknown -> "unknown"
  | Up -> "up"
  | Suspect -> "suspect"
  | Down -> "down"

type peer = { mutable oks : int; mutable fails : int; mutable streak : int }

type t = {
  self : string;
  replicas : int;  (* R: total copies wanted, including the local one *)
  deadline : float;
  fsync : bool;
  segments_dir : string option;
  mutex : Mutex.t;
  mutable members : string list;
  peers : (string, peer) Hashtbl.t;
  segments : (string, Journal.t) Hashtbl.t;  (* origin -> live writer *)
  mutable sent : int;
  mutable acked : int;
  mutable degraded : int;  (* appends acknowledged below quorum *)
}

let create ~self ~replicas ?(deadline = 1.0) ?journal_path ?(fsync = false)
    members =
  if replicas < 1 then invalid_arg "Replica.create: replicas must be >= 1";
  if not (List.mem self members) then
    invalid_arg
      (Printf.sprintf "Replica.create: self %S not in member list" self);
  { self;
    replicas;
    deadline;
    fsync;
    segments_dir = Option.map (fun p -> p ^ ".replicas") journal_path;
    mutex = Mutex.create ();
    members;
    peers = Hashtbl.create 8;
    segments = Hashtbl.create 8;
    sent = 0;
    acked = 0;
    degraded = 0 }

let self t = t.self
let replicas t = t.replicas

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let members t = locked t (fun () -> t.members)

let set_members t members =
  locked t (fun () ->
      let old = t.members in
      t.members <- members;
      let joined = List.filter (fun m -> not (List.mem m old)) members in
      let left = List.filter (fun m -> not (List.mem m members)) old in
      List.iter (Hashtbl.remove t.peers) left;
      (joined, left))

(* ---------------- rendezvous placement ---------------- *)

(* Highest-random-weight: each (key, addr) pair hashes independently,
   so a membership change only re-homes the keys whose top-ranked
   addresses actually changed.  Cluster's int-keyed score delegates
   here — the bytes hashed are identical ("%d|%s"), so client-side
   routing and server-side placement can never disagree. *)
let score ~key addr = Integrity.checksum_string (key ^ "|" ^ addr)

let rendezvous_order ~key addrs =
  List.map fst
    (List.stable_sort
       (fun (a, sa) (b, sb) ->
         match compare sb sa with 0 -> compare a b | c -> c)
       (List.map (fun a -> (a, score ~key a)) addrs))

let targets t =
  let members = members t in
  let others = List.filter (fun m -> m <> t.self) members in
  let ranked = rendezvous_order ~key:t.self others in
  List.filteri (fun i _ -> i < t.replicas - 1) ranked

(* ---------------- peer health ---------------- *)

let peer_of t addr =
  match Hashtbl.find_opt t.peers addr with
  | Some p -> p
  | None ->
    let p = { oks = 0; fails = 0; streak = 0 } in
    Hashtbl.add t.peers addr p;
    p

let note t addr ok =
  locked t (fun () ->
      let p = peer_of t addr in
      if ok then begin
        p.oks <- p.oks + 1;
        p.streak <- 0
      end
      else begin
        p.fails <- p.fails + 1;
        p.streak <- p.streak + 1
      end)

let peer_state t addr =
  locked t (fun () ->
      match Hashtbl.find_opt t.peers addr with
      | None -> Unknown
      | Some p ->
        if p.streak >= 2 then Down
        else if p.streak = 1 then Suspect
        else if p.oks > 0 then Up
        else Unknown)

(* ---------------- the replicate path ---------------- *)

let replicate_ok resp =
  Protocol.response_ok resp
  && Option.value ~default:false (J.get_bool (J.member "stored" resp))

let send_entry t ~target entry =
  let req =
    Protocol.Replicate { origin = t.self; entry = Journal.entry_to_json entry }
  in
  match Client.oneshot ~retries:0 ~deadline:t.deadline target req with
  | Ok resp when replicate_ok resp -> true
  | Ok _ | Error _ -> false

let replicate t entry =
  let acks =
    List.fold_left
      (fun acks target ->
        let ok = send_entry t ~target entry in
        note t target ok;
        if ok then acks + 1 else acks)
      0 (targets t)
  in
  locked t (fun () ->
      t.sent <- t.sent + 1;
      t.acked <- t.acked + acks;
      (* quorum = R copies counting the local append *)
      if acks + 1 < t.replicas then t.degraded <- t.degraded + 1);
  acks

(* Push one origin's folded entries at a named peer — the reload path
   uses this to heal under-replication after a membership change. *)
let push_to t ~target entries =
  List.for_all
    (fun e ->
      let ok = send_entry t ~target e in
      note t target ok;
      ok)
    entries

(* ---------------- the storage side (peers keep our records) -------- *)

let segment_path ~origin dir =
  Filename.concat dir
    (Printf.sprintf "%08x.wal" (Integrity.checksum_string origin land 0xffffffff))

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let segment t ~origin dir =
  match Hashtbl.find_opt t.segments origin with
  | Some w -> w
  | None ->
    ensure_dir dir;
    (* replica segments inherit the member's fsync policy but never its
       diskfault arming: injected faults model the member's OWN disk,
       and arming them here would fault the copies that exist to
       survive it *)
    let w = Journal.open_append ~fsync:t.fsync (segment_path ~origin dir) in
    Hashtbl.add t.segments origin w;
    w

let store t ~origin entry =
  match t.segments_dir with
  | None -> Error "member keeps no journal, cannot hold replicas"
  | Some dir -> (
    match
      locked t (fun () -> Journal.append (segment t ~origin dir) entry)
    with
    | () -> Ok ()
    | exception Journal.Disk_fault m -> Error m
    | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    | exception Sys_error m -> Error m)

let fetch_origin t ~origin =
  match t.segments_dir with
  | None -> []
  | Some dir ->
    locked t (fun () ->
        (* flush the live writer so the replay sees every stored record *)
        match Hashtbl.find_opt t.segments origin with
        | Some w ->
          Journal.close w;
          Hashtbl.remove t.segments origin
        | None -> ());
    Journal.entries_of_recovered
      (Journal.fold (Journal.replay (segment_path ~origin dir)))

let compact_segments t ~retain =
  match t.segments_dir with
  | None -> ()
  | Some dir ->
    locked t (fun () ->
        Hashtbl.iter (fun _ w -> Journal.close w) t.segments;
        Hashtbl.reset t.segments);
    if Sys.file_exists dir then
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".wal" then
            ignore (Journal.compact ~path:(Filename.concat dir name) ~retain))
        (Sys.readdir dir)

(* ---------------- disk-loss recovery ---------------- *)

(* Ask every peer for whatever it holds for us.  Peers may overlap
   (membership changed, re-replication pushed copies around): the
   caller folds the concatenation, and Journal.fold's dedup rules make
   duplicates harmless. *)
let recover_from_peers t =
  let peers = List.filter (fun m -> m <> t.self) (members t) in
  List.fold_left
    (fun (entries, responded) peer ->
      match
        Client.oneshot ~retries:10 ~deadline:t.deadline peer
          (Protocol.Recover { origin = t.self })
      with
      | Ok resp when Protocol.response_ok resp -> (
        note t peer true;
        match J.member "entries" resp with
        | J.List docs ->
          let fetched =
            List.filter_map
              (fun d -> Result.to_option (Journal.entry_of_json d))
              docs
          in
          (entries @ fetched, responded + 1)
        | _ -> (entries, responded + 1))
      | Ok _ | Error _ ->
        note t peer false;
        (entries, responded))
    ([], 0) peers

(* ---------------- introspection ---------------- *)

let stats_fields t =
  locked t (fun () ->
      [ ("replicas", J.Int t.replicas);
        ("replica_sent", J.Int t.sent);
        ("replica_acked", J.Int t.acked);
        ("replica_degraded", J.Int t.degraded);
        ("replica_segments", J.Int (Hashtbl.length t.segments)) ])

let members_fields t =
  let ms = members t in
  let tgts = targets t in
  [ ("self", J.String t.self);
    ("replicas", J.Int t.replicas);
    ( "members",
      J.List
        (List.map
           (fun addr ->
             J.Obj
               [ ("addr", J.String addr);
                 ( "state",
                   J.String
                     (if addr = t.self then "self"
                      else peer_state_to_string (peer_state t addr)) );
                 ("target", J.Bool (List.mem addr tgts)) ])
           ms) ) ]

let close t =
  locked t (fun () ->
      Hashtbl.iter (fun _ w -> Journal.close w) t.segments;
      Hashtbl.reset t.segments)
