open Dfg
module J = Obs.Json

(* ---------------- values ---------------- *)

let value_to_json = function
  | Value.Int i -> J.Obj [ ("i", J.Int i) ]
  | Value.Bool b -> J.Obj [ ("b", J.Bool b) ]
  | Value.Real r -> J.Obj [ ("r", J.String (Printf.sprintf "%h" r)) ]

let value_of_json j =
  match j with
  | J.Obj [ ("i", J.Int i) ] -> Ok (Value.Int i)
  | J.Obj [ ("b", J.Bool b) ] -> Ok (Value.Bool b)
  | J.Obj [ ("r", J.String s) ] -> (
    match float_of_string_opt s with
    | Some r -> Ok (Value.Real r)
    | None -> Error (Printf.sprintf "bad real literal %S" s))
  | _ -> Error (Printf.sprintf "bad value %s" (J.to_string j))

let rec result_map f = function
  | [] -> Ok []
  | x :: rest -> (
    match f x with
    | Error _ as e -> e
    | Ok y -> ( match result_map f rest with Ok ys -> Ok (y :: ys) | e -> e))

let outputs_to_json outputs =
  J.List
    (List.map
       (fun (name, packets) ->
         J.Obj
           [ ("name", J.String name);
             ( "packets",
               J.List
                 (List.map
                    (fun (t, v) -> J.List [ J.Int t; value_to_json v ])
                    packets) ) ])
       outputs)

let outputs_of_json j =
  match j with
  | J.List streams ->
    result_map
      (fun s ->
        match (J.get_string (J.member "name" s), J.member "packets" s) with
        | Some name, J.List packets -> (
          match
            result_map
              (function
                | J.List [ J.Int t; v ] -> (
                  match value_of_json v with
                  | Ok v -> Ok (t, v)
                  | Error _ as e -> e)
                | p -> Error (Printf.sprintf "bad packet %s" (J.to_string p)))
              packets
          with
          | Ok packets -> Ok (name, packets)
          | Error _ as e -> e)
        | _ -> Error (Printf.sprintf "bad stream %s" (J.to_string s)))
      streams
  | _ -> Error "outputs: expected a list"

(* ---------------- requests ---------------- *)

type program =
  | Kernel of { name : string; size : int }
  | Source of {
      source : string;
      scalars : (string * Value.t) list;
      input_seed : int;
    }

type watchdog_spec = Off | Auto | At of int

type run = {
  program : program;
  waves : int;
  engine : [ `Sim | `Machine ];
  n_pe : int option;
  stored : bool;
  fault : string option;
  fault_seed : int option;
  recovery : string option;
  integrity : bool;
  watchdog : watchdog_spec;
  max_time : int option;
  sanitize : bool;
  idem : string option;
  restore : J.t option;
}

let default_run program =
  { program;
    waves = 1;
    engine = `Sim;
    n_pe = None;
    stored = false;
    fault = None;
    fault_seed = None;
    recovery = None;
    integrity = false;
    watchdog = Off;
    max_time = None;
    sanitize = false;
    idem = None;
    restore = None }

type sweep = {
  sw_kernels : string list option;
  sw_pes : int list;
  sw_waves : int list;
  sw_size : int;
}

type request =
  | Compile of program
  | Simulate of run
  | Sweep of sweep
  | Cancel of int
  | Migrate of string
  | Replicate of { origin : string; entry : J.t }
  | Recover of { origin : string }
  | Members
  | Stats
  | Shutdown

let program_fields = function
  | Kernel { name; size } -> [ ("kernel", J.String name); ("size", J.Int size) ]
  | Source { source; scalars; input_seed } ->
    [ ("source", J.String source);
      ("scalars", J.Obj (List.map (fun (n, v) -> (n, value_to_json v)) scalars));
      ("input_seed", J.Int input_seed) ]

let run_fields r =
  program_fields r.program
  @ [ ("waves", J.Int r.waves);
      ("engine", J.String (match r.engine with `Sim -> "sim" | `Machine -> "machine")) ]
  @ (match r.n_pe with Some n -> [ ("pe", J.Int n) ] | None -> [])
  @ (if r.stored then [ ("stored", J.Bool true) ] else [])
  @ (match r.fault with Some s -> [ ("fault", J.String s) ] | None -> [])
  @ (match r.fault_seed with Some n -> [ ("fault_seed", J.Int n) ] | None -> [])
  @ (match r.recovery with Some s -> [ ("recovery", J.String s) ] | None -> [])
  @ (if r.integrity then [ ("integrity", J.Bool true) ] else [])
  @ (match r.watchdog with
    | Off -> []
    | Auto -> [ ("watchdog", J.String "auto") ]
    | At n -> [ ("watchdog", J.Int n) ])
  @ (match r.max_time with Some n -> [ ("max_time", J.Int n) ] | None -> [])
  @ (if r.sanitize then [ ("sanitize", J.Bool true) ] else [])
  @ (match r.idem with Some k -> [ ("idem", J.String k) ] | None -> [])
  @ match r.restore with Some ck -> [ ("restore", ck) ] | None -> []

let sweep_fields s =
  (match s.sw_kernels with
  | None -> []
  | Some ks -> [ ("kernels", J.List (List.map (fun k -> J.String k) ks)) ])
  @ [ ("pes", J.List (List.map (fun n -> J.Int n) s.sw_pes));
      ("waves", J.List (List.map (fun n -> J.Int n) s.sw_waves));
      ("size", J.Int s.sw_size) ]

let request_to_json ~id req =
  let verb, fields =
    match req with
    | Compile p -> ("compile", program_fields p)
    | Simulate r -> ("simulate", run_fields r)
    | Sweep s -> ("sweep", sweep_fields s)
    | Cancel target -> ("cancel", [ ("target", J.Int target) ])
    | Migrate idem -> ("migrate", [ ("idem", J.String idem) ])
    | Replicate { origin; entry } ->
      ("replicate", [ ("origin", J.String origin); ("entry", entry) ])
    | Recover { origin } -> ("recover", [ ("origin", J.String origin) ])
    | Members -> ("members", [])
    | Stats -> ("stats", [])
    | Shutdown -> ("shutdown", [])
  in
  J.Obj (("id", J.Int id) :: ("verb", J.String verb) :: fields)

let program_of_json j =
  match (J.get_string (J.member "kernel" j), J.get_string (J.member "source" j)) with
  | Some _, Some _ -> Error "both kernel and source given"
  | Some name, None ->
    let size = Option.value ~default:12 (J.get_int (J.member "size" j)) in
    if size < 1 then Error "size must be positive"
    else Ok (Kernel { name; size })
  | None, Some source -> (
    let input_seed =
      Option.value ~default:1 (J.get_int (J.member "input_seed" j))
    in
    match J.member "scalars" j with
    | J.Null -> Ok (Source { source; scalars = []; input_seed })
    | J.Obj kvs -> (
      match
        result_map
          (fun (n, v) ->
            match value_of_json v with Ok v -> Ok (n, v) | Error _ as e -> e)
          kvs
      with
      | Ok scalars -> Ok (Source { source; scalars; input_seed })
      | Error e -> Error ("scalars: " ^ e))
    | _ -> Error "scalars must be an object")
  | None, None -> Error "request names neither kernel nor source"

let run_of_json j =
  match program_of_json j with
  | Error _ as e -> e
  | Ok program -> (
    let waves = Option.value ~default:1 (J.get_int (J.member "waves" j)) in
    let engine_s =
      Option.value ~default:"sim" (J.get_string (J.member "engine" j))
    in
    let engine_ok =
      match engine_s with
      | "sim" -> Ok `Sim
      | "machine" -> Ok `Machine
      | s -> Error (Printf.sprintf "unknown engine %S" s)
    in
    let watchdog_ok =
      match J.member "watchdog" j with
      | J.Null -> Ok Off
      | J.String "auto" -> Ok Auto
      | J.Int n when n > 0 -> Ok (At n)
      | w -> Error (Printf.sprintf "bad watchdog %s" (J.to_string w))
    in
    match (engine_ok, watchdog_ok) with
    | Error e, _ | _, Error e -> Error e
    | Ok engine, Ok watchdog ->
      if waves < 1 then Error "waves must be positive"
      else
        Ok
          { program;
            waves;
            engine;
            n_pe = J.get_int (J.member "pe" j);
            stored =
              Option.value ~default:false (J.get_bool (J.member "stored" j));
            fault = J.get_string (J.member "fault" j);
            fault_seed = J.get_int (J.member "fault_seed" j);
            recovery = J.get_string (J.member "recovery" j);
            integrity =
              Option.value ~default:false (J.get_bool (J.member "integrity" j));
            watchdog;
            max_time = J.get_int (J.member "max_time" j);
            sanitize =
              Option.value ~default:false (J.get_bool (J.member "sanitize" j));
            idem = J.get_string (J.member "idem" j);
            restore =
              (match J.member "restore" j with J.Null -> None | ck -> Some ck);
          })

let sweep_of_json j =
  let ints name =
    match J.member name j with
    | J.Null -> Ok None
    | J.List xs -> (
      match result_map (fun x -> match J.get_int x with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "%s: expected integers" name)) xs
      with
      | Ok ns -> Ok (Some ns)
      | Error _ as e -> e)
    | _ -> Error (Printf.sprintf "%s: expected a list" name)
  in
  let kernels =
    match J.member "kernels" j with
    | J.Null -> Ok None
    | J.List xs -> (
      match result_map (fun x -> match J.get_string x with
        | Some s -> Ok s
        | None -> Error "kernels: expected strings") xs
      with
      | Ok ks -> Ok (Some ks)
      | Error _ as e -> e)
    | _ -> Error "kernels: expected a list"
  in
  match (kernels, ints "pes", ints "waves") with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
  | Ok kernels, Ok pes, Ok waves ->
    let pes = Option.value ~default:[ 1; 2; 4; 8; 16 ] pes in
    let waves = Option.value ~default:[ 4 ] waves in
    let size = Option.value ~default:32 (J.get_int (J.member "size" j)) in
    if List.exists (fun p -> p < 1) pes then Error "pes must be positive"
    else if List.exists (fun w -> w < 1) waves then
      Error "waves must be positive"
    else if size < 1 then Error "size must be positive"
    else Ok { sw_kernels = kernels; sw_pes = pes; sw_waves = waves;
              sw_size = size }

let request_of_json j =
  match (J.get_int (J.member "id" j), J.get_string (J.member "verb" j)) with
  | None, _ -> Error "missing id"
  | _, None -> Error "missing verb"
  | Some id, Some verb -> (
    let wrap = function Ok r -> Ok (id, r) | Error e -> Error e in
    match verb with
    | "compile" -> wrap (Result.map (fun p -> Compile p) (program_of_json j))
    | "simulate" -> wrap (Result.map (fun r -> Simulate r) (run_of_json j))
    | "sweep" -> wrap (Result.map (fun s -> Sweep s) (sweep_of_json j))
    | "cancel" -> (
      match J.get_int (J.member "target" j) with
      | Some t -> Ok (id, Cancel t)
      | None -> Error "cancel: missing target")
    | "migrate" -> (
      match J.get_string (J.member "idem" j) with
      | Some k -> Ok (id, Migrate k)
      | None -> Error "migrate: missing idem")
    | "replicate" -> (
      match (J.get_string (J.member "origin" j), J.member "entry" j) with
      | Some origin, (J.Obj _ as entry) -> Ok (id, Replicate { origin; entry })
      | None, _ -> Error "replicate: missing origin"
      | _, _ -> Error "replicate: missing entry")
    | "recover" -> (
      match J.get_string (J.member "origin" j) with
      | Some origin -> Ok (id, Recover { origin })
      | None -> Error "recover: missing origin")
    | "members" -> Ok (id, Members)
    | "stats" -> Ok (id, Stats)
    | "shutdown" -> Ok (id, Shutdown)
    | v -> Error (Printf.sprintf "unknown verb %S" v))

(* ---------------- responses ---------------- *)

type error_kind =
  | Bad_request
  | Malformed
  | Compile_error
  | Unknown_verb
  | Overloaded
  | Cancelled
  | Run_error
  | Shutting_down
  | Deadline
  | Replica_error

let error_kind_to_string = function
  | Bad_request -> "bad_request"
  | Malformed -> "malformed"
  | Compile_error -> "compile_error"
  | Unknown_verb -> "unknown_verb"
  | Overloaded -> "overloaded"
  | Cancelled -> "cancelled"
  | Run_error -> "run_error"
  | Shutting_down -> "shutting_down"
  | Deadline -> "deadline"
  | Replica_error -> "replica_error"

let error_kind_of_string = function
  | "bad_request" -> Some Bad_request
  | "malformed" -> Some Malformed
  | "compile_error" -> Some Compile_error
  | "unknown_verb" -> Some Unknown_verb
  | "overloaded" -> Some Overloaded
  | "cancelled" -> Some Cancelled
  | "run_error" -> Some Run_error
  | "shutting_down" -> Some Shutting_down
  | "deadline" -> Some Deadline
  | "replica_error" -> Some Replica_error
  | _ -> None

let ok ~id ~verb fields =
  J.Obj
    (("id", J.Int id) :: ("ok", J.Bool true) :: ("verb", J.String verb)
   :: fields)

let error ?(extra = []) ~id kind message =
  J.Obj
    (("id", J.Int id) :: ("ok", J.Bool false)
    :: ("error", J.String (error_kind_to_string kind))
    :: ("message", J.String message)
    :: extra)

let response_id j = J.get_int (J.member "id" j)

(* Re-address a recorded response to a new request id: journal replays
   and idempotent dedup answer a retried request with the response
   recorded for the original one, under the retry's own id. *)
let with_id id = function
  | J.Obj fields ->
    J.Obj (("id", J.Int id) :: List.filter (fun (k, _) -> k <> "id") fields)
  | j -> j

let response_ok j =
  Option.value ~default:false (J.get_bool (J.member "ok" j))

let response_error j =
  if response_ok j then None
  else
    match J.get_string (J.member "error" j) with
    | None -> None
    | Some kind ->
      Some
        ( error_kind_of_string kind,
          Option.value ~default:"" (J.get_string (J.member "message" j)) )

let outcome_fields ~cache_hit ~key (o : Exec.Outcome.t) =
  [ ("cache_hit", J.Bool cache_hit);
    ("key", J.Int key);
    ("outputs", outputs_to_json o.Exec.Outcome.outputs);
    ("end_time", J.Int o.Exec.Outcome.end_time);
    ("quiescent", J.Bool o.Exec.Outcome.quiescent);
    ( "stall",
      match o.Exec.Outcome.stall with
      | None -> J.Null
      | Some sr -> J.String (Fault.Stall_report.to_string sr) );
    ( "violations",
      J.List
        (List.map
           (fun v -> J.String (Fault.Violation.to_string v))
           o.Exec.Outcome.violations) );
    ("digest", J.Int (Exec.Outcome.digest o));
    ("metrics", Obs.Metrics_registry.to_json (Exec.Outcome.metrics o)) ]
