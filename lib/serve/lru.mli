(** Small bounded map with least-recently-used eviction.

    The compiled-program cache: dfserve keys compiled graphs by an
    {!Integrity.checksum_string} of their canonical source and evicts
    the entry that has gone longest without a lookup once [capacity] is
    reached.  Hit/miss/eviction counters feed the [stats] verb, and the
    per-response [cache_hit] flag lets a client verify the N-requests ⇒
    N−1-hits contract.

    Not thread-safe: dfserve owns its cache from the event-loop thread
    only. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency.  Counts one hit or
    miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or overwrite, refreshing recency).  When full, the
    least-recently-used entry is evicted first. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Recency- and counter-neutral membership test. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
