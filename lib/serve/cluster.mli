(** Federated dfserve: replicated members, failover routing and live
    job migration.

    A cluster is a {e static} member list (no gossip, no elections) of
    independent dfserve processes, each with its own compiled-program
    cache and job journal.  The client side holds all the smarts:

    - {b Routing}: requests are placed by rendezvous
      (highest-random-weight) hashing on the program's compiled-program
      cache key ({!Server.program_key}), so repeated submissions of the
      same source land on the member whose cache already holds the
      compiled entry.  Rendezvous hashing's minimal-disruption property
      means a member's death re-homes only that member's keys — the
      survivors' relative order never changes.

    - {b Health}: each member carries an up/suspect/down verdict fed by
      {!probe} (a [stats] round-trip) and by {!submit} outcomes.  One
      failure makes a member suspect, two consecutive failures down;
      any success restores it.  Down members are demoted to
      last-resort position in the routing order, never dropped — a
      stale verdict must not make a reachable answer unreachable.

    - {b Failover}: {!submit} walks the routing order, trying each
      member with {!Client.resilient_rpc}; when a member is dead the
      request moves to the next replica.  Requests carrying an
      idempotency key stay exactly-once across the walk: each member's
      journal deduplicates, and recomputation is deterministic, so
      whichever member answers, the bytes are the same.

    - {b Migration}: {!migrate} drives a running machine job from one
      member to another through the server's [migrate] verb, which
      preempts the job at its next slice boundary and ships the
      {!Recover.Checkpoint} plus the original request over the wire.
      The target resumes the slice stream; because resumption is
      bit-identical to an uninterrupted run, a migrated job's outputs
      equal its unmigrated twin's. *)

type health = Up | Suspect | Down

val health_to_string : health -> string

type t

val members_of_spec : string -> (string list, string) result
(** Parse a [--cluster] argument: either a comma-separated address
    list or [@FILE] naming a file with one address per line ([#]
    comments and blank lines ignored).  Alias of
    {!Runspec.members_of_string}. *)

val create : ?deadline:float -> ?retry:Client.retry -> string list -> t
(** A cluster handle over the given member addresses (Unix-socket
    paths or [host:port]).  [deadline] (default 30 s) and [retry]
    (default {!Client.default_retry}) govern each {!submit} attempt;
    every member derives its own deterministic jitter stream from
    [retry.retry_seed].
    @raise Invalid_argument on an empty member list. *)

val health : t -> (string * health) list
(** Current verdict per member, in member-list order. *)

val failovers : t -> int
(** Submissions that had to move past at least one failed member. *)

val submits : t -> int

val routing_key : Protocol.program -> int
(** {!Server.program_key}, with unknown kernels mapped to a fixed key
    (any member will reject them identically). *)

val score : key:int -> string -> int
(** The rendezvous weight of one member for one routing key. *)

val rendezvous_order : key:int -> string list -> string list
(** Member addresses sorted by descending {!score} (ties broken by
    address), ignoring health.  Deterministic; removing an address
    never reorders the survivors. *)

val probe : ?deadline:float -> t -> (string * (Obs.Json.t, string) Result.t) list
(** One [stats] round-trip per member ([deadline] default 2 s, no
    connection retries), returning each member's stats document or
    failure text and updating its health verdict. *)

val submit : t -> key:int -> Protocol.request -> Obs.Json.t * string
(** Send the request to the first answering member in routing order
    (down members last), returning the response and the address that
    served it.  Members that fail are marked and skipped.
    @raise Failure when every member fails, with all the reasons. *)

val migrate :
  ?deadline:float ->
  ?retry:Client.retry ->
  source:string ->
  target:string ->
  Protocol.run ->
  Obs.Json.t * string
(** Move the job admitted under [run]'s idempotency key from [source]
    to [target], returning the final response plus how it was obtained:
    ["migrated"] (checkpoint shipped and resumed at [target]),
    ["requeued"] (never started at [source]; run at [target]),
    ["done"] (the source already held the answer), ["ran_at_source"]
    (a graph-engine job — not preemptible, attached to the in-flight
    run), ["source_dead"] / ["refused"] / ["fresh"] (fallback
    resubmission at [target] under the same key).  Every path converges
    to the same bytes the unmigrated run would have produced.
    @raise Invalid_argument when [run] carries no idem key.
    @raise Failure when the chosen fallback member cannot be reached. *)
