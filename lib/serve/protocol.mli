open Dfg

(** Wire format of the dfserve protocol.

    Transport is newline-delimited JSON over a Unix-domain stream
    socket: each request is one {!Obs.Json} object on one line, each
    response likewise.  Requests carry a connection-scoped [id]; the
    server answers every request exactly once, but {e not necessarily
    in order} — responses stream back as jobs finish, and a client that
    pipelines must match responses to requests by [id].

    Reals are carried as ["%h"] hex-float strings (the
    {!Recover.Checkpoint} convention), never as JSON numbers, so a
    served value is bit-identical to the standalone run's value —
    including NaN, infinities and -0.0.  [docs/SERVICE.md] is the prose
    spec. *)

(** {1 Requests} *)

type program =
  | Kernel of { name : string; size : int }
      (** a built-in kernel subject; input waves are drawn exactly as
          {!Runspec.compile_subject} draws them, so a served run is
          bit-comparable to any standalone run of the same triple *)
  | Source of {
      source : string;  (** Val source text *)
      scalars : (string * Value.t) list;
      input_seed : int;
          (** seed for {!Runspec.synth_wave} input synthesis — the same
              convention [dfsim] uses, so served and local runs agree *)
    }

type watchdog_spec =
  | Off
  | Auto  (** {!Runspec.watchdog_for} over the request's fault spec *)
  | At of int

type run = {
  program : program;
  waves : int;
  engine : [ `Sim | `Machine ];
  n_pe : int option;  (** machine engine: PE count (default arch) *)
  stored : bool;  (** machine engine: [Stored] array policy *)
  fault : string option;  (** {!Fault.Fault_plan.of_string} spec *)
  fault_seed : int option;  (** overrides the spec's seed field *)
  recovery : string option;  (** {!Recover.of_string} policy spec *)
  integrity : bool;
  watchdog : watchdog_spec;
  max_time : int option;
  sanitize : bool;  (** fresh sanitizer per run, as {!Exec.Job} *)
  idem : string option;
      (** idempotency key: the server journals the request under it and
          answers a retried request carrying the same key with the
          recorded response (or by attaching the retry to the run still
          in flight) instead of running it again — at-least-once
          clients get exactly-once results, across server restarts *)
  restore : Obs.Json.t option;
      (** a {!Recover.Checkpoint} document for this program: the
          machine engine restores it and resumes the slice stream
          instead of starting from scratch.  This is how a migrated job
          arrives at its new server — {!Cluster.migrate} ships the
          source server's preemption checkpoint here — and the engine
          guarantees the resumed run finishes bit-identically to an
          uninterrupted one.  Machine engine only. *)
}

val default_run : program -> run
(** One wave, sim engine, no faults, no watchdog, no sanitizer, no
    idempotency key. *)

type sweep = {
  sw_kernels : string list option;  (** [None] = the whole library *)
  sw_pes : int list;
  sw_waves : int list;
  sw_size : int;
}
(** A declarative kernel × PE-count × waves grid, served off the
    persistent pool; the response's [grid] document matches
    [bin/sweep.exe]'s output byte for byte. *)

type request =
  | Compile of program  (** compile (through the cache) but do not run *)
  | Simulate of run
  | Sweep of sweep
  | Cancel of int  (** a request [id] on the same connection *)
  | Migrate of string
      (** checkpoint the in-flight job admitted under this idempotency
          key and hand its request + checkpoint back to the caller, who
          resubmits them (as a [Simulate] with [restore]) to another
          server.  The reply is [{"state":...}]: ["migrated"] carries
          ["checkpoint"] and ["request"]; ["queued"] carries ["request"]
          (the job never ran here); ["done"] carries ["response"] (the
          recorded answer); ["running"] means a graph-engine job that
          cannot be preempted; ["not_found"] means no such key. *)
  | Replicate of { origin : string; entry : Obs.Json.t }
      (** append one {!Journal.entry} document on behalf of the member
          at [origin] (its listen address): the receiver stores it in a
          per-origin replica segment and acknowledges once the bytes
          are down.  This is the quorum-replication verb — see
          {!Replica}. *)
  | Recover of { origin : string }
      (** return every replica entry this member holds for [origin]
          (folded to its minimal form), as [{"entries":[...]}] — how a
          member that lost its disk rebuilds its journal from peers. *)
  | Members
      (** report the live membership view: self address, replication
          factor, and per-peer health. *)
  | Stats
  | Shutdown

val request_to_json : id:int -> request -> Obs.Json.t

val request_of_json : Obs.Json.t -> (int * request, string) result
(** [Error] is a human-readable reason; the server wraps it in a
    [bad_request] response. *)

(** {1 Responses} *)

type error_kind =
  | Bad_request  (** well-formed JSON with bad field values *)
  | Malformed
      (** not a protocol frame at all: unparseable bytes, or a request
          line over the server's [max_line] cap (the connection is
          closed after an over-cap rejection) *)
  | Compile_error  (** Val source rejected by the compiler *)
  | Unknown_verb
  | Overloaded  (** admission control: pending queue full *)
  | Cancelled
      (** the job was cancelled; a preempted machine run attaches its
          restorable checkpoint under ["checkpoint"] *)
  | Run_error  (** the engine raised; message carries the exception *)
  | Shutting_down
  | Deadline
      (** the connection sat idle past the server's read/idle deadline;
          sent best-effort just before the close *)
  | Replica_error
      (** a replication verb the server cannot honor: it is not a
          replicated cluster member, or the carried entry document is
          malformed *)

val error_kind_to_string : error_kind -> string
val error_kind_of_string : string -> error_kind option

val ok : id:int -> verb:string -> (string * Obs.Json.t) list -> Obs.Json.t
(** [{"id":id,"ok":true,"verb":verb,...fields}]. *)

val error :
  ?extra:(string * Obs.Json.t) list ->
  id:int ->
  error_kind ->
  string ->
  Obs.Json.t
(** [{"id":id,"ok":false,"error":kind,"message":msg,...extra}]. *)

val response_id : Obs.Json.t -> int option

val with_id : int -> Obs.Json.t -> Obs.Json.t
(** Re-address a recorded response to a new request id (dedup and
    journal replay). *)

val response_ok : Obs.Json.t -> bool
val response_error : Obs.Json.t -> (error_kind option * string) option
(** [Some (kind, message)] when the response is an error. *)

(** {1 Values and output streams on the wire} *)

val value_to_json : Value.t -> Obs.Json.t
(** [{"i":n}], [{"b":b}] or [{"r":"<%h literal>"}]. *)

val value_of_json : Obs.Json.t -> (Value.t, string) result

val outputs_to_json : (string * (int * Value.t) list) list -> Obs.Json.t
(** [[{"name":s,"packets":[[t,value],...]},...]] — arrival order
    preserved. *)

val outputs_of_json :
  Obs.Json.t -> ((string * (int * Value.t) list) list, string) result

val outcome_fields :
  cache_hit:bool -> key:int -> Exec.Outcome.t -> (string * Obs.Json.t) list
(** The simulate-response payload: outputs, end time, quiescence, stall
    text, violations, the {!Integrity.digest_outputs} digest, the cache
    key and hit flag, and the run's metrics-registry snapshot. *)
