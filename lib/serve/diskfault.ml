module Prng = Fault.Prng

(* Seeded disk-fault injection for the journal: the storage twin of
   Netfault.  Every decision is a pure function of (seed, append
   ordinal), so a soak replays the same disk betrayals whatever the
   interleaving — the discipline that makes chaos transcripts
   byte-identical at any worker count. *)

type spec = {
  df_seed : int;
  torn_prob : float;  (** append writes a prefix, then the "crash" *)
  enospc_prob : float;  (** partial write, then ENOSPC *)
  rot_prob : float;  (** one bit of the frame flips at rest *)
  slow_prob : float;  (** the sync hangs *)
  slow_s : float;  (** for how long *)
}

let none =
  { df_seed = 0;
    torn_prob = 0.0;
    enospc_prob = 0.0;
    rot_prob = 0.0;
    slow_prob = 0.0;
    slow_s = 0.0 }

let hostile ~seed =
  { df_seed = seed;
    torn_prob = 0.03;
    enospc_prob = 0.03;
    rot_prob = 0.03;
    slow_prob = 0.05;
    slow_s = 0.002 }

let validate s =
  let check name p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Diskfault: %s=%g outside [0,1]" name p)
  in
  check "torn" s.torn_prob;
  check "enospc" s.enospc_prob;
  check "rot" s.rot_prob;
  check "slow" s.slow_prob;
  if s.slow_s < 0.0 then invalid_arg "Diskfault: negative sync delay"

type action =
  | Pass
  | Torn of float
  | Enospc of float
  | Rot of int
  | Slow_sync of float

let action spec ~op =
  let h slot = Prng.mix spec.df_seed [ op; slot ] in
  let roll slot = Prng.float_of_hash (h slot) in
  if roll 0 < spec.torn_prob then
    Torn (0.1 +. (0.8 *. Prng.float_of_hash (h 1)))
  else if roll 2 < spec.enospc_prob then
    Enospc (0.1 +. (0.8 *. Prng.float_of_hash (h 3)))
  else if roll 4 < spec.rot_prob then Rot (Prng.int_of_hash (h 5) 1_000_000)
  else if roll 6 < spec.slow_prob then Slow_sync spec.slow_s
  else Pass

(* ---------------- the CLI face ---------------- *)

(* %h round-trips doubles exactly, the same convention Fault_plan and
   the wire protocol use for reals *)
let to_string s =
  String.concat " "
    (Printf.sprintf "seed=%d" s.df_seed
    :: List.filter_map
         (fun (k, v) ->
           if v = 0.0 then None else Some (Printf.sprintf "%s=%h" k v))
         [ ("torn", s.torn_prob); ("enospc", s.enospc_prob);
           ("rot", s.rot_prob); ("slow", s.slow_prob);
           ("slow_s", s.slow_s) ])

let of_string text =
  let fields =
    List.filter
      (fun s -> s <> "")
      (String.split_on_char ' '
         (String.map (function ',' -> ' ' | c -> c) text))
  in
  let rec go acc = function
    | [] -> Ok acc
    | field :: rest -> (
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "%S: expected key=value" field)
      | Some i -> (
        let key = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        let float_field set =
          match float_of_string_opt v with
          | Some f -> go (set acc f) rest
          | None -> Error (Printf.sprintf "%s: %S is not a number" key v)
        in
        match key with
        | "seed" -> (
          match int_of_string_opt v with
          | Some n -> go { acc with df_seed = n } rest
          | None -> Error (Printf.sprintf "seed: %S is not an integer" v))
        | "torn" -> float_field (fun s f -> { s with torn_prob = f })
        | "enospc" -> float_field (fun s f -> { s with enospc_prob = f })
        | "rot" -> float_field (fun s f -> { s with rot_prob = f })
        | "slow" -> float_field (fun s f -> { s with slow_prob = f })
        | "slow_s" -> float_field (fun s f -> { s with slow_s = f })
        | k -> Error (Printf.sprintf "unknown diskfault key %S" k)))
  in
  match go none fields with
  | Error _ as e -> e
  | Ok s -> ( match validate s with () -> Ok s | exception Invalid_argument m -> Error m)
