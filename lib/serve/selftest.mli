(** Chaos-style soak of a live server: zero cross-request interference.

    Starts a real server on a private socket, fans [clients] concurrent
    client domains over it — each replaying a deterministic mix of
    clean, delay-faulted and recovery-healed jobs on both engines —
    and requires every served response to be {e bit-identical} to the
    same job run standalone through {!Exec.Job.run} in this process:
    same output packets (compared as wire JSON), same digest, end time,
    quiescence, stall text and violations.  A cache-hot workload by
    construction, so the compiled-program cache and fair queueing are
    exercised under real contention.

    With [churn > 0] a second phase hammers the server with that many
    {e sequential short-lived} connections (connect, one request,
    close).  Every seventh goes through the full hostile-wire stack —
    {!Netfault} faults on the request line, {!Client.resilient_rpc}
    retry with seeded backoff, an idempotency key — and then re-sends
    the same key on a clean connection, which must answer from the
    server's record bit-identically instead of re-running.

    This is what [dfserve --selftest] runs. *)

type report = {
  checked : int;  (** simulate responses verified *)
  failures : string list;  (** one line per mismatch, empty on success *)
  cache_hits : int;
  cache_misses : int;
  churned : int;  (** short-lived connections in the churn phase *)
  retried : int;  (** extra attempts the hostile-wire clients needed *)
  shed : int;  (** overloaded rejections the server reported *)
  deduped : int;  (** idempotent retries answered from the record *)
  elapsed_s : float;  (** churn-phase wall clock *)
}

val run :
  ?clients:int ->
  ?jobs_per_client:int ->
  ?workers:int ->
  ?seed:int ->
  ?churn:int ->
  ?log:out_channel ->
  unit ->
  report
(** Defaults: 4 clients × 6 jobs, 3 workers, seed 1, no churn. *)
