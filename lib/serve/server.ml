open Dfg
module J = Obs.Json
module P = Protocol
module FP = Fault.Fault_plan
module PC = Compiler.Program_compile
module ME = Machine.Machine_engine
module K = Kernels

type config = {
  socket_path : string;
  workers : int;
  max_pending : int;
  cache_capacity : int;
  slice : int;
  log : out_channel option;
}

let default_config ~socket_path =
  { socket_path;
    workers = Exec.Pool.default_jobs ();
    max_pending = 64;
    cache_capacity = 32;
    slice = 5000;
    log = None }

(* ---------------- request resolution ---------------- *)

let value_text = function
  | Value.Int i -> string_of_int i
  | Value.Bool b -> if b then "true" else "false"
  | Value.Real r -> Printf.sprintf "%h" r

(* The cache key: an FNV-1a checksum of the canonical source text plus
   scalar bindings.  A kernel request and a source request carrying the
   same generated text share an entry. *)
let cache_key source scalars =
  Integrity.checksum_string
    (source ^ "\x00"
    ^ String.concat ";"
        (List.map (fun (n, v) -> n ^ "=" ^ value_text v) scalars))

let source_of_program = function
  | P.Kernel { name; size } ->
    let k = K.find name in
    (k.K.source size, k.K.scalar_inputs)
  | P.Source { source; scalars; _ } -> (source, scalars)

let inputs_of_program program ~waves (compiled : PC.compiled) =
  match program with
  | P.Kernel { name; size } ->
    (* the deterministic draw every builder of this triple uses *)
    let k = K.find name in
    let st = Random.State.make [| Hashtbl.hash k.K.name |] in
    Runspec.feeds compiled ~waves (k.K.inputs size st)
  | P.Source { input_seed; _ } ->
    Runspec.feeds compiled ~waves
      (List.map
         (fun (name, shape) ->
           ( name,
             Runspec.synth_wave ~seed:input_seed
               ~elt:shape.Val_lang.Classify.sh_elt
               ~size:(PC.wave_size shape) name ))
         compiled.PC.cp_inputs)

let program_name = function
  | P.Kernel { name; size } -> Printf.sprintf "%s[%d]" name size
  | P.Source _ -> "source"

let subject_of_program program ~waves =
  match source_of_program program with
  | exception Not_found -> (
    match program with
    | P.Kernel { name; _ } ->
      Error
        (Printf.sprintf "unknown kernel %s (have: %s)" name
           (String.concat ", " (List.map (fun k -> k.K.name) K.all)))
    | P.Source _ -> Error "unreachable")
  | source, scalars -> (
    match Compiler.Driver.compile_source ~scalar_inputs:scalars source with
    | _, compiled ->
      Ok
        ( compiled.PC.cp_graph,
          inputs_of_program program ~waves compiled,
          program_name program )
    | exception e -> Error (Printexc.to_string e))

let config_of_run (r : P.run) =
  let fault =
    match r.fault with
    | None -> Ok None
    | Some s -> (
      match Runspec.fault_spec_of_string s with
      | Error e -> Error e
      | Ok spec -> (
        let spec =
          match r.fault_seed with
          | Some seed -> { spec with FP.seed }
          | None -> spec
        in
        match FP.make spec with
        | plan -> Ok (Some (spec, plan))
        | exception Invalid_argument m -> Error m))
  in
  let recovery =
    match r.recovery with
    | None -> Ok None
    | Some s -> Result.map Option.some (Runspec.recovery_of_string s)
  in
  match (fault, recovery) with
  | Error e, _ -> Error ("fault: " ^ e)
  | _, Error e -> Error ("recovery: " ^ e)
  | Ok fault, Ok recovery -> (
    let watchdog =
      match r.P.watchdog with
      | P.Off -> Ok None
      | P.At n -> Ok (Some n)
      | P.Auto -> (
        match
          (fault, Runspec.fault_spec_of_string "")
        with
        | Some (spec, _), _ | None, Ok spec ->
          Ok (Some (Runspec.watchdog_for spec recovery))
        | None, Error _ -> Error "watchdog=auto needs a fault spec")
    in
    match watchdog with
    | Error e -> Error e
    | Ok watchdog ->
      let max_time =
        match (r.P.max_time, r.P.engine) with
        | Some t, _ -> t
        | None, `Machine -> ME.default_max_time
        | None, `Sim -> Run_config.default.Run_config.max_time
      in
      let cfg =
        Run_config.(
          default |> with_max_time max_time
          |> with_fault_opt (Option.map snd fault)
          |> with_recovery_opt recovery
          |> with_integrity r.P.integrity
          |> with_watchdog_opt watchdog)
      in
      let arch =
        { Machine.Arch.default with
          Machine.Arch.n_pe =
            Option.value r.P.n_pe ~default:Machine.Arch.default.Machine.Arch.n_pe;
          array_policy =
            (if r.P.stored then Machine.Arch.Stored else Machine.Arch.Streamed);
        }
      in
      Ok (cfg, arch))

(* ---------------- jobs ---------------- *)

type job_result =
  | R_outcome of Exec.Job.outcome
  | R_preempted of J.t  (* restorable checkpoint document *)
  | R_error of P.error_kind * string

type client = {
  fd : Unix.file_descr;
  cid : int;
  rbuf : Buffer.t;  (* partial request line *)
  queue : job Queue.t;  (* admitted, not yet dispatched *)
  mutable running : job list;  (* dispatched, not yet completed *)
  mutable in_flight : int;
  mutable closed : bool;
}

and job = {
  jc : client;
  jid : int;
  jengine : [ `Sim | `Machine ];
  jhit : bool;
  jkey : int;
  jcancel : bool Atomic.t;
  mutable janswered : bool;  (* response already sent (queued cancel) *)
  jwork : cancel:bool Atomic.t -> job_result;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  pool : Exec.Pool.t;
  cache : (int, PC.compiled) Lru.t;
  clients : (int, client) Hashtbl.t;
  mutable rr : int list;  (* round-robin rotation of client ids *)
  mutable next_cid : int;
  completions : (job * job_result) Queue.t;
  cmutex : Mutex.t;
  mutable queued : int;
  mutable in_flight : int;
  mutable stopping : bool;
  mutable n_requests : int;
  mutable n_completed : int;
  mutable n_rejected : int;
  mutable n_cancelled : int;
  mutable n_preempted : int;
  mutable n_errors : int;
}

let logf t fmt =
  Printf.ksprintf
    (fun s ->
      match t.cfg.log with
      | None -> ()
      | Some oc ->
        output_string oc ("dfserve: " ^ s ^ "\n");
        flush oc)
    fmt

let create cfg =
  if cfg.workers < 1 then invalid_arg "Server.create: workers < 1";
  if cfg.max_pending < 1 then invalid_arg "Server.create: max_pending < 1";
  if cfg.slice < 1 then invalid_arg "Server.create: slice < 1";
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 16;
  let pipe_r, pipe_w = Unix.pipe () in
  { cfg;
    listen_fd;
    pipe_r;
    pipe_w;
    pool = Exec.Pool.create ~workers:cfg.workers ();
    cache = Lru.create ~capacity:cfg.cache_capacity;
    clients = Hashtbl.create 16;
    rr = [];
    next_cid = 1;
    completions = Queue.create ();
    cmutex = Mutex.create ();
    queued = 0;
    in_flight = 0;
    stopping = false;
    n_requests = 0;
    n_completed = 0;
    n_rejected = 0;
    n_cancelled = 0;
    n_preempted = 0;
    n_errors = 0 }

(* ---------------- response plumbing ---------------- *)

let close_client t c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.clients c.cid;
    t.rr <- List.filter (fun cid -> cid <> c.cid) t.rr;
    (* queued jobs can never be answered; running ones are preempted so
       their workers free up, and their completions are dropped *)
    Queue.iter
      (fun j -> if not j.janswered then begin
          j.janswered <- true;
          t.queued <- t.queued - 1
        end)
      c.queue;
    Queue.clear c.queue;
    List.iter (fun j -> Atomic.set j.jcancel true) c.running;
    logf t "client %d disconnected" c.cid
  end

let send_json t c json =
  if not c.closed then begin
    let line = J.to_string json ^ "\n" in
    let bytes = Bytes.of_string line in
    let len = Bytes.length bytes in
    let rec write_all off =
      if off < len then
        let n = Unix.write c.fd bytes off (len - off) in
        write_all (off + n)
    in
    try write_all 0
    with Unix.Unix_error _ | Sys_error _ -> close_client t c
  end

(* ---------------- admission and dispatch ---------------- *)

let compile_cached t program =
  let source, scalars = source_of_program program in
  let key = cache_key source scalars in
  match Lru.find t.cache key with
  | Some compiled -> (key, compiled, true)
  | None ->
    let _, compiled =
      Compiler.Driver.compile_source ~scalar_inputs:scalars source
    in
    Lru.add t.cache key compiled;
    (key, compiled, false)

let outcome_of_machine_result name (r : ME.result) =
  { Exec.Job.job_name = name;
    outputs = r.ME.outputs;
    end_time = r.ME.end_time;
    quiescent = r.ME.quiescent;
    stall = r.ME.stall;
    violations = r.ME.violations;
    sim_result = None;
    machine_result = Some r }

(* The worker-side body of one simulate job.  Graph-engine jobs go
   through Exec.Job.run itself — the served path IS the standalone
   path.  Machine jobs replicate Job.run's machine branch through the
   resumable engine so a cancel can preempt at a slice boundary. *)
let make_work ~engine ~arch ~run_cfg ~sanitize ~slice ~graph ~inputs ~name =
  fun ~cancel ->
  try
    match engine with
    | `Sim ->
      R_outcome
        (Exec.Job.run
           (Exec.Job.make ~name ~engine:Exec.Job.Sim ~config:run_cfg ~sanitize
              (Exec.Job.Graph_program graph) ~inputs))
    | `Machine ->
      let cfg =
        if sanitize then
          Run_config.with_sanitizer (Fault.Sanitizer.create graph) run_cfg
        else run_cfg
      in
      let m = ME.create_cfg cfg ~arch graph ~inputs in
      let rec go until =
        if Atomic.get cancel then
          R_preempted (Recover.Checkpoint.to_json ~graph (ME.snapshot m))
        else begin
          ME.advance m ~until;
          if ME.finished m then
            R_outcome (outcome_of_machine_result name (ME.result m))
          else go (until + slice)
        end
      in
      go slice
  with e -> R_error (P.Run_error, Printexc.to_string e)

let notify t job result =
  Mutex.lock t.cmutex;
  Queue.add (job, result) t.completions;
  Mutex.unlock t.cmutex;
  (* a full pipe just means wakeups are already pending *)
  try ignore (Unix.write t.pipe_w (Bytes.of_string "!") 0 1)
  with Unix.Unix_error _ -> ()

let submit t job =
  t.in_flight <- t.in_flight + 1;
  job.jc.in_flight <- job.jc.in_flight + 1;
  job.jc.running <- job :: job.jc.running;
  ignore
    (Exec.Pool.submit t.pool (fun () ->
         let result = job.jwork ~cancel:job.jcancel in
         notify t job result))

(* Round-robin: rotate the client ring until a live, nonempty queue
   yields an unanswered job. *)
let next_job t =
  let n = List.length t.rr in
  let rec hunt k =
    if k = 0 then None
    else
      match t.rr with
      | [] -> None
      | cid :: rest -> (
        t.rr <- rest @ [ cid ];
        match Hashtbl.find_opt t.clients cid with
        | None -> hunt (k - 1)
        | Some c ->
          let rec pop () =
            match Queue.take_opt c.queue with
            | None -> hunt (k - 1)
            | Some j when j.janswered -> pop () (* cancelled carcass *)
            | Some j -> Some j
          in
          pop ())
  in
  hunt n

let rec dispatch t =
  if t.in_flight < t.cfg.workers && t.queued > 0 then
    match next_job t with
    | None -> ()
    | Some job ->
      t.queued <- t.queued - 1;
      submit t job;
      dispatch t

(* ---------------- verbs ---------------- *)

let stats_fields t =
  [ ("requests", J.Int t.n_requests);
    ("completed", J.Int t.n_completed);
    ("rejections", J.Int t.n_rejected);
    ("cancelled", J.Int t.n_cancelled);
    ("preempted", J.Int t.n_preempted);
    ("run_errors", J.Int t.n_errors);
    ("cache_hits", J.Int (Lru.hits t.cache));
    ("cache_misses", J.Int (Lru.misses t.cache));
    ("cache_entries", J.Int (Lru.length t.cache));
    ("cache_evictions", J.Int (Lru.evictions t.cache));
    ("cache_capacity", J.Int (Lru.capacity t.cache));
    ("queue_depth", J.Int t.queued);
    ("in_flight", J.Int t.in_flight);
    ("workers", J.Int t.cfg.workers);
    ("clients", J.Int (Hashtbl.length t.clients)) ]

let handle_compile t c id program =
  match compile_cached t program with
  | key, compiled, hit ->
    send_json t c
      (P.ok ~id ~verb:"compile"
         [ ("key", J.Int key);
           ("cache_hit", J.Bool hit);
           ("cells", J.Int (Graph.node_count compiled.PC.cp_graph));
           ( "inputs",
             J.List
               (List.map (fun (n, _) -> J.String n) compiled.PC.cp_inputs) );
           ( "outputs",
             J.List
               (List.map (fun (n, _) -> J.String n) compiled.PC.cp_outputs) )
         ])
  | exception Not_found ->
    send_json t c
      (P.error ~id P.Compile_error
         (match program with
         | P.Kernel { name; _ } -> Printf.sprintf "unknown kernel %S" name
         | P.Source _ -> "compile failed"))
  | exception e ->
    send_json t c (P.error ~id P.Compile_error (Printexc.to_string e))

let handle_simulate t c id (r : P.run) =
  if t.queued >= t.cfg.max_pending then begin
    t.n_rejected <- t.n_rejected + 1;
    send_json t c
      (P.error ~id P.Overloaded
         (Printf.sprintf "%d jobs pending (max %d)" t.queued
            t.cfg.max_pending))
  end
  else
    match config_of_run r with
    | Error e -> send_json t c (P.error ~id P.Bad_request e)
    | Ok (run_cfg, arch) -> (
      match compile_cached t r.P.program with
      | exception Not_found ->
        send_json t c
          (P.error ~id P.Compile_error
             (match r.P.program with
             | P.Kernel { name; _ } -> Printf.sprintf "unknown kernel %S" name
             | P.Source _ -> "compile failed"))
      | exception e ->
        send_json t c (P.error ~id P.Compile_error (Printexc.to_string e))
      | key, compiled, hit ->
        let graph = compiled.PC.cp_graph in
        let inputs = inputs_of_program r.P.program ~waves:r.P.waves compiled in
        let name = program_name r.P.program in
        let cancel = Atomic.make false in
        let job =
          { jc = c;
            jid = id;
            jengine = r.P.engine;
            jhit = hit;
            jkey = key;
            jcancel = cancel;
            janswered = false;
            jwork =
              make_work ~engine:r.P.engine ~arch ~run_cfg
                ~sanitize:r.P.sanitize ~slice:t.cfg.slice ~graph ~inputs ~name
          }
        in
        Queue.add job c.queue;
        t.queued <- t.queued + 1;
        dispatch t)

let handle_cancel t c id target =
  let state =
    (* still queued on this connection? *)
    let queued = ref None in
    Queue.iter
      (fun j -> if j.jid = target && not j.janswered then queued := Some j)
      c.queue;
    match !queued with
    | Some j ->
      j.janswered <- true;
      Atomic.set j.jcancel true;
      t.queued <- t.queued - 1;
      t.n_cancelled <- t.n_cancelled + 1;
      send_json t c
        (P.error ~id:j.jid P.Cancelled "cancelled while queued");
      "cancelled"
    | None -> (
      match List.find_opt (fun j -> j.jid = target) c.running with
      | Some j ->
        Atomic.set j.jcancel true;
        (match j.jengine with
        | `Machine -> "preempting"  (* checkpoint arrives with its response *)
        | `Sim -> "running")  (* graph engine runs are not preemptible *)
      | None -> "not_found")
  in
  send_json t c (P.ok ~id ~verb:"cancel" [ ("state", J.String state) ])

(* ---------------- shutdown ---------------- *)

let initiate_shutdown t =
  if not t.stopping then begin
    t.stopping <- true;
    logf t "shutdown: draining %d queued, %d in flight" t.queued t.in_flight;
    Hashtbl.iter
      (fun _ c ->
        Queue.iter
          (fun j ->
            if not j.janswered then begin
              j.janswered <- true;
              t.queued <- t.queued - 1;
              send_json t c
                (P.error ~id:j.jid P.Shutting_down "server shutting down")
            end)
          c.queue;
        Queue.clear c.queue)
      t.clients;
    (* preempt running machine jobs at their next slice *)
    Hashtbl.iter
      (fun _ c -> List.iter (fun j -> Atomic.set j.jcancel true) c.running)
      t.clients
  end

(* ---------------- completions ---------------- *)

let deliver t (job, result) =
  t.in_flight <- t.in_flight - 1;
  let c = job.jc in
  c.in_flight <- c.in_flight - 1;
  c.running <- List.filter (fun j -> j != job) c.running;
  if not (c.closed || job.janswered) then begin
    job.janswered <- true;
    match result with
    | R_outcome o ->
      t.n_completed <- t.n_completed + 1;
      send_json t c
        (P.ok ~id:job.jid ~verb:"simulate"
           (P.outcome_fields ~cache_hit:job.jhit ~key:job.jkey o))
    | R_preempted checkpoint ->
      t.n_preempted <- t.n_preempted + 1;
      send_json t c
        (P.error ~id:job.jid P.Cancelled "preempted at slice boundary"
           ~extra:[ ("checkpoint", checkpoint) ])
    | R_error (kind, msg) ->
      t.n_errors <- t.n_errors + 1;
      send_json t c (P.error ~id:job.jid kind msg)
  end

let drain_completions t =
  (* clear the wakeup byte(s) first so no notification is lost *)
  let buf = Bytes.create 64 in
  (try ignore (Unix.read t.pipe_r buf 0 64) with Unix.Unix_error _ -> ());
  let batch = Queue.create () in
  Mutex.lock t.cmutex;
  Queue.transfer t.completions batch;
  Mutex.unlock t.cmutex;
  Queue.iter (deliver t) batch;
  dispatch t

(* ---------------- the event loop ---------------- *)

let handle_line t c line =
  let line = String.trim line in
  if line <> "" then begin
    t.n_requests <- t.n_requests + 1;
    match J.of_string line with
    | exception J.Parse_error msg ->
      send_json t c (P.error ~id:(-1) P.Bad_request msg)
    | doc -> (
      match P.request_of_json doc with
      | Error msg ->
        let id = Option.value ~default:(-1) (P.response_id doc) in
        send_json t c (P.error ~id P.Bad_request msg)
      | Ok (id, req) -> (
        match req with
        | P.Stats -> send_json t c (P.ok ~id ~verb:"stats" (stats_fields t))
        | P.Shutdown ->
          send_json t c (P.ok ~id ~verb:"shutdown" []);
          initiate_shutdown t
        | P.Cancel target -> handle_cancel t c id target
        | _ when t.stopping ->
          send_json t c
            (P.error ~id P.Shutting_down "server shutting down")
        | P.Compile program -> handle_compile t c id program
        | P.Simulate r -> handle_simulate t c id r))
  end

let handle_readable t c =
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 4096 with
  | 0 -> close_client t c
  | exception Unix.Unix_error _ -> close_client t c
  | n ->
    Buffer.add_subbytes c.rbuf buf 0 n;
    (* consume complete lines, keep the partial tail *)
    let data = Buffer.contents c.rbuf in
    Buffer.clear c.rbuf;
    let rec consume start =
      match String.index_from_opt data start '\n' with
      | None ->
        Buffer.add_substring c.rbuf data start (String.length data - start)
      | Some nl ->
        handle_line t c (String.sub data start (nl - start));
        if not c.closed then consume (nl + 1)
    in
    consume 0

let accept_client t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    let c =
      { fd;
        cid;
        rbuf = Buffer.create 256;
        queue = Queue.create ();
        running = [];
        in_flight = 0;
        closed = false }
    in
    Hashtbl.add t.clients cid c;
    t.rr <- t.rr @ [ cid ];
    logf t "client %d connected" cid

let serve t =
  logf t "listening on %s (%d workers, max_pending %d, cache %d, slice %d)"
    t.cfg.socket_path t.cfg.workers t.cfg.max_pending
    (Lru.capacity t.cache) t.cfg.slice;
  let finished () = t.stopping && t.in_flight = 0 && t.queued = 0 in
  while not (finished ()) do
    let client_fds =
      Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.clients []
    in
    let watch =
      t.pipe_r :: (if t.stopping then [] else [ t.listen_fd ]) @ client_fds
    in
    match Unix.select watch [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = t.pipe_r then drain_completions t
          else if fd = t.listen_fd && not t.stopping then accept_client t
          else
            (* the client set may have changed within this batch *)
            Hashtbl.iter
              (fun _ c -> if c.fd = fd && not c.closed then handle_readable t c)
              t.clients)
        readable
  done;
  logf t "drained; closing";
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.clients;
  Hashtbl.reset t.clients;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  Exec.Pool.shutdown t.pool;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  logf t "stopped after %d requests (%d completed, %d rejected)"
    t.n_requests t.n_completed t.n_rejected

let run cfg = serve (create cfg)
