open Dfg
module J = Obs.Json
module P = Protocol
module FP = Fault.Fault_plan
module PC = Compiler.Program_compile
module ME = Machine.Machine_engine
module K = Kernels

type config = {
  socket_path : string;
  tcp : (string * int) option;
  workers : int;
  max_pending : int;
  cache_capacity : int;
  slice : int;
  max_line : int;
  idle_timeout : float option;
  write_timeout : float;
  drain_timeout : float;
  journal_path : string option;
  journal_retain : int option;
  replicas : int;
  cluster : string option;
  self_addr : string option;
  fsync : bool option;
  diskfault : Diskfault.spec option;
  log : out_channel option;
}

let default_config ~socket_path =
  { socket_path;
    tcp = None;
    workers = Exec.Pool.default_jobs ();
    max_pending = 64;
    cache_capacity = 32;
    slice = 5000;
    max_line = 1 lsl 20;
    idle_timeout = Some 60.0;
    write_timeout = 10.0;
    drain_timeout = 30.0;
    journal_path = None;
    journal_retain = None;
    replicas = 2;
    cluster = None;
    self_addr = None;
    fsync = None;
    diskfault = None;
    log = None }

(* ---------------- request resolution ---------------- *)

let value_text = function
  | Value.Int i -> string_of_int i
  | Value.Bool b -> if b then "true" else "false"
  | Value.Real r -> Printf.sprintf "%h" r

(* The cache key: an FNV-1a checksum of the canonical source text plus
   scalar bindings.  A kernel request and a source request carrying the
   same generated text share an entry. *)
let cache_key source scalars =
  Integrity.checksum_string
    (source ^ "\x00"
    ^ String.concat ";"
        (List.map (fun (n, v) -> n ^ "=" ^ value_text v) scalars))

let source_of_program = function
  | P.Kernel { name; size } ->
    let k = K.find name in
    (k.K.source size, k.K.scalar_inputs)
  | P.Source { source; scalars; _ } -> (source, scalars)

(* The cache key doubles as the cluster routing key: rendezvous-hashing
   on it sends same-program requests to the member whose compiled-
   program cache already holds the entry. *)
let program_key program =
  let source, scalars = source_of_program program in
  cache_key source scalars

let inputs_of_program program ~waves (compiled : PC.compiled) =
  match program with
  | P.Kernel { name; size } ->
    (* the deterministic draw every builder of this triple uses *)
    let k = K.find name in
    let st = Random.State.make [| Hashtbl.hash k.K.name |] in
    Runspec.feeds compiled ~waves (k.K.inputs size st)
  | P.Source { input_seed; _ } ->
    Runspec.feeds compiled ~waves
      (List.map
         (fun (name, shape) ->
           ( name,
             Runspec.synth_wave ~seed:input_seed
               ~elt:shape.Val_lang.Classify.sh_elt
               ~size:(PC.wave_size shape) name ))
         compiled.PC.cp_inputs)

let program_name = function
  | P.Kernel { name; size } -> Printf.sprintf "%s[%d]" name size
  | P.Source _ -> "source"

let subject_of_program program ~waves =
  match source_of_program program with
  | exception Not_found -> (
    match program with
    | P.Kernel { name; _ } ->
      Error
        (Printf.sprintf "unknown kernel %s (have: %s)" name
           (String.concat ", " (List.map (fun k -> k.K.name) K.all)))
    | P.Source _ -> Error "unreachable")
  | source, scalars -> (
    match Compiler.Driver.compile_source ~scalar_inputs:scalars source with
    | _, compiled ->
      Ok
        ( compiled.PC.cp_graph,
          inputs_of_program program ~waves compiled,
          program_name program )
    | exception e -> Error (Printexc.to_string e))

let config_of_run (r : P.run) =
  let fault =
    match r.fault with
    | None -> Ok None
    | Some s -> (
      match Runspec.fault_spec_of_string s with
      | Error e -> Error e
      | Ok spec -> (
        let spec =
          match r.fault_seed with
          | Some seed -> { spec with FP.seed }
          | None -> spec
        in
        match FP.make spec with
        | plan -> Ok (Some (spec, plan))
        | exception Invalid_argument m -> Error m))
  in
  let recovery =
    match r.recovery with
    | None -> Ok None
    | Some s -> Result.map Option.some (Runspec.recovery_of_string s)
  in
  match (fault, recovery) with
  | Error e, _ -> Error ("fault: " ^ e)
  | _, Error e -> Error ("recovery: " ^ e)
  | Ok fault, Ok recovery -> (
    let watchdog =
      match r.P.watchdog with
      | P.Off -> Ok None
      | P.At n -> Ok (Some n)
      | P.Auto -> (
        match
          (fault, Runspec.fault_spec_of_string "")
        with
        | Some (spec, _), _ | None, Ok spec ->
          Ok (Some (Runspec.watchdog_for spec recovery))
        | None, Error _ -> Error "watchdog=auto needs a fault spec")
    in
    match watchdog with
    | Error e -> Error e
    | Ok watchdog ->
      let max_time =
        match (r.P.max_time, r.P.engine) with
        | Some t, _ -> t
        | None, `Machine -> ME.default_max_time
        | None, `Sim -> Run_config.default.Run_config.max_time
      in
      let cfg =
        Run_config.(
          default |> with_max_time max_time
          |> with_fault_opt (Option.map snd fault)
          |> with_recovery_opt recovery
          |> with_integrity r.P.integrity
          |> with_watchdog_opt watchdog)
      in
      let arch =
        { Machine.Arch.default with
          Machine.Arch.n_pe =
            Option.value r.P.n_pe ~default:Machine.Arch.default.Machine.Arch.n_pe;
          array_policy =
            (if r.P.stored then Machine.Arch.Stored else Machine.Arch.Streamed);
        }
      in
      Ok (cfg, arch))

(* ---------------- jobs ---------------- *)

type job_result =
  | R_ok of (string * J.t) list  (* response payload fields *)
  | R_preempted of J.t  (* restorable checkpoint document *)
  | R_error of P.error_kind * string

type client = {
  fd : Unix.file_descr;
  cid : int;
  rbuf : Buffer.t;  (* partial request line *)
  wbuf : Buffer.t;  (* response bytes the socket has not accepted yet *)
  mutable wstart : float;  (* when wbuf last went nonempty / progressed *)
  mutable last_read : float;
  queue : job Queue.t;  (* admitted, not yet dispatched *)
  mutable running : job list;  (* dispatched, not yet completed *)
  mutable in_flight : int;
  mutable waiting : int;  (* dedup waiters registered on other jobs *)
  mutable closed : bool;
}

and job = {
  mutable jc : client option;  (* owning connection, while it lives *)
  jid : int;
  jengine : [ `Sim | `Machine ];
  jidem : string option;
  jverb : string;  (* "simulate" | "sweep" *)
  jcancel : bool Atomic.t;
  mutable janswered : bool;  (* response already sent (queued cancel) *)
  mutable jwaiters : (int * int) list;  (* (cid, request id) of retries *)
  mutable jrequest : J.t option;  (* the admitted request document *)
  mutable jmigrate : (int * int) option;
      (* (cid, request id) of a migrate call awaiting this job's
         checkpoint; set together with jcancel to preempt it *)
  jwork : cancel:bool Atomic.t -> job_result;
}

and idem_state = I_pending of job | I_done of J.t

type t = {
  cfg : config;
  listen_fds : Unix.file_descr list;
  tcp_fd : Unix.file_descr option;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  pool : Exec.Pool.t;
  cache : (int, PC.compiled) Lru.t;
  journal : Journal.t option;
  replica : Replica.t option;
  cluster_file : string option;  (* the @FILE form: re-read on SIGHUP *)
  reload : bool Atomic.t;
  idem : (string, idem_state) Hashtbl.t;
  rqueue : job Queue.t;  (* journal replays and orphaned admissions *)
  clients : (int, client) Hashtbl.t;
  mutable rr : int list;  (* round-robin rotation of client ids *)
  mutable next_cid : int;
  completions : (job * job_result) Queue.t;
  cmutex : Mutex.t;
  mutable queued : int;
  mutable in_flight : int;
  mutable inflight_jobs : job list;
  mutable stopping : bool;
  mutable drain_deadline : float option;
  mutable forced : bool;  (* drain budget spent; queue already dumped *)
  mutable n_requests : int;
  mutable n_completed : int;
  mutable n_rejected : int;
  mutable n_cancelled : int;
  mutable n_preempted : int;
  mutable n_errors : int;
  mutable n_malformed : int;
  mutable n_deadline : int;
  mutable n_deduped : int;
  mutable n_replayed : int;
  mutable n_migrated : int;
  n_jerrors : int Atomic.t;  (* atomic: appends also fail in workers *)
  mutable n_recovered : int;
  mutable n_rereplicated : int;
}

let logf_cfg cfg fmt =
  Printf.ksprintf
    (fun s ->
      match cfg.log with
      | None -> ()
      | Some oc ->
        output_string oc ("dfserve: " ^ s ^ "\n");
        flush oc)
    fmt

let logf t fmt = logf_cfg t.cfg fmt

let inet_of host =
  match Unix.inet_addr_of_string host with
  | ip -> ip
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host))
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found ->
      raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))

(* ---------------- response plumbing ---------------- *)

let close_client t c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.clients c.cid;
    t.rr <- List.filter (fun cid -> cid <> c.cid) t.rr;
    (* Queued jobs with an idempotency key were journaled as admitted —
       keep that promise: orphan them onto the replay queue so they
       complete (and their Done is recorded) even though nobody is left
       to tell.  Keyless queued jobs can never be answered; drop them. *)
    Queue.iter
      (fun j ->
        if not j.janswered then
          match j.jidem with
          | Some _ ->
            j.jc <- None;
            Queue.add j t.rqueue
          | None ->
            j.janswered <- true;
            t.queued <- t.queued - 1)
      c.queue;
    Queue.clear c.queue;
    (* running keyless jobs are preempted so their workers free up;
       keyed or watched ones run to completion for the journal/waiters *)
    List.iter
      (fun j ->
        j.jc <- None;
        if j.jidem = None && j.jwaiters = [] then Atomic.set j.jcancel true)
      c.running;
    c.running <- [];
    logf t "client %d disconnected" c.cid
  end

(* Nonblocking buffered writes: send_json appends to the client's wbuf
   and pushes as much as the socket will take; the event loop watches
   writable fds to push the rest, and the write deadline reaps peers
   that stop reading. *)
let flush_client t c =
  if (not c.closed) && Buffer.length c.wbuf > 0 then begin
    let data = Buffer.contents c.wbuf in
    let len = String.length data in
    let rec push off =
      if off >= len then off
      else
        match Unix.write_substring c.fd data off (len - off) with
        | 0 -> off
        | n ->
          c.wstart <- Unix.gettimeofday ();
          push (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> off
        | exception (Unix.Unix_error _ | Sys_error _) ->
          close_client t c;
          len
    in
    let off = push 0 in
    if not c.closed then begin
      Buffer.clear c.wbuf;
      if off < len then Buffer.add_substring c.wbuf data off (len - off)
    end
  end

let send_json t c json =
  if not c.closed then begin
    if Buffer.length c.wbuf = 0 then c.wstart <- Unix.gettimeofday ();
    Buffer.add_string c.wbuf (J.to_string json);
    Buffer.add_char c.wbuf '\n';
    flush_client t c
  end

let answer_waiters t job make =
  List.iter
    (fun (cid, rid) ->
      match Hashtbl.find_opt t.clients cid with
      | Some w when not w.closed ->
        w.waiting <- w.waiting - 1;
        send_json t w (make rid)
      | _ -> ())
    (List.rev job.jwaiters);
  job.jwaiters <- []

(* ---------------- admission and dispatch ---------------- *)

let compile_cached t program =
  let source, scalars = source_of_program program in
  let key = cache_key source scalars in
  match Lru.find t.cache key with
  | Some compiled -> (key, compiled, true)
  | None ->
    let _, compiled =
      Compiler.Driver.compile_source ~scalar_inputs:scalars source
    in
    Lru.add t.cache key compiled;
    (key, compiled, false)

(* The worker-side body of one simulate job.  Graph-engine jobs go
   through Exec.Job.run itself — the served path IS the standalone
   path.  Machine jobs replicate Job.run's machine branch through the
   resumable engine so a cancel can preempt at a slice boundary;
   [progress] journals each slice's checkpoint, [restore] resumes a
   journal-replayed job from its last recorded checkpoint. *)
let make_work ~engine ~arch ~run_cfg ~sanitize ~slice ~graph ~inputs ~name
    ~hit ~key ~progress ~restore =
 fun ~cancel ->
  try
    match engine with
    | `Sim ->
      R_ok
        (P.outcome_fields ~cache_hit:hit ~key
           (Exec.Job.run
              (Exec.Job.make ~name ~engine:Exec.Job.Sim ~config:run_cfg
                 ~sanitize (Exec.Job.Graph_program graph) ~inputs)))
    | `Machine ->
      let cfg =
        if sanitize then
          Run_config.with_sanitizer (Fault.Sanitizer.create graph) run_cfg
        else run_cfg
      in
      let m = ME.create_cfg cfg ~arch graph ~inputs in
      let start =
        match restore with
        | None -> slice
        | Some sn ->
          ME.restore m sn;
          sn.ME.sn_time + slice
      in
      let ckpt () = Recover.Checkpoint.to_json ~graph (ME.snapshot m) in
      let rec go until =
        if Atomic.get cancel then R_preempted (ckpt ())
        else begin
          ME.advance m ~until;
          if ME.finished m then
            R_ok
              (P.outcome_fields ~cache_hit:hit ~key
                 (Exec.Outcome.of_machine ~name (ME.result m)))
          else begin
            (match progress with Some f -> f (ckpt ()) | None -> ());
            go (until + slice)
          end
        end
      in
      go start
  with e -> R_error (P.Run_error, Printexc.to_string e)

(* The sweep verb: one pool job runs the whole grid sequentially, so
   the served document is the exact byte sequence bin/sweep.exe would
   write for the same grid (to_json carries no timings). *)
let make_sweep_work ~cells =
 fun ~cancel ->
  try
    let rec go i acc = function
      | [] -> R_ok [ ("grid", Exec.Sweep.to_json (List.rev acc)) ]
      | cell :: rest ->
        if Atomic.get cancel then
          R_error (P.Cancelled, "cancelled mid-sweep")
        else
          let r =
            match Exec.Sweep.run_cell cell with
            | row -> Ok row
            | exception e ->
              Error
                { Exec.Pool.index = i;
                  message = Printexc.to_string e;
                  backtrace = Printexc.get_backtrace () }
          in
          go (i + 1) (r :: acc) rest
    in
    go 0 [] cells
  with e -> R_error (P.Run_error, Printexc.to_string e)

let notify t job result =
  Mutex.lock t.cmutex;
  Queue.add (job, result) t.completions;
  Mutex.unlock t.cmutex;
  (* a full pipe just means wakeups are already pending *)
  try ignore (Unix.write t.pipe_w (Bytes.of_string "!") 0 1)
  with Unix.Unix_error _ -> ()

let submit t job =
  t.in_flight <- t.in_flight + 1;
  t.inflight_jobs <- job :: t.inflight_jobs;
  (match job.jc with
  | Some c ->
    c.in_flight <- c.in_flight + 1;
    c.running <- job :: c.running
  | None -> ());
  ignore
    (Exec.Pool.submit t.pool (fun () ->
         let result = job.jwork ~cancel:job.jcancel in
         notify t job result))

(* Replayed/orphaned jobs first, then round-robin: rotate the client
   ring until a live, nonempty queue yields an unanswered job. *)
let next_job t =
  let rec hunt k =
    if k = 0 then None
    else
      match t.rr with
      | [] -> None
      | cid :: rest -> (
        t.rr <- rest @ [ cid ];
        match Hashtbl.find_opt t.clients cid with
        | None -> hunt (k - 1)
        | Some c ->
          let rec pop () =
            match Queue.take_opt c.queue with
            | None -> hunt (k - 1)
            | Some j when j.janswered -> pop () (* cancelled carcass *)
            | Some j -> Some j
          in
          pop ())
  in
  let rec replay () =
    match Queue.take_opt t.rqueue with
    | Some j when j.janswered -> replay ()
    | Some j -> Some j
    | None -> hunt (List.length t.rr)
  in
  replay ()

let rec dispatch t =
  if t.in_flight < t.cfg.workers && t.queued > 0 then
    match next_job t with
    | None -> ()
    | Some job ->
      t.queued <- t.queued - 1;
      submit t job;
      dispatch t

(* ---------------- verbs ---------------- *)

let stats_fields t =
  [ ("requests", J.Int t.n_requests);
    ("completed", J.Int t.n_completed);
    ("rejections", J.Int t.n_rejected);
    ("cancelled", J.Int t.n_cancelled);
    ("preempted", J.Int t.n_preempted);
    ("run_errors", J.Int t.n_errors);
    ("malformed", J.Int t.n_malformed);
    ("deadline_closes", J.Int t.n_deadline);
    ("deduped", J.Int t.n_deduped);
    ("replayed", J.Int t.n_replayed);
    ("migrations", J.Int t.n_migrated);
    ("cache_hits", J.Int (Lru.hits t.cache));
    ("cache_misses", J.Int (Lru.misses t.cache));
    ("cache_entries", J.Int (Lru.length t.cache));
    ("cache_evictions", J.Int (Lru.evictions t.cache));
    ("cache_capacity", J.Int (Lru.capacity t.cache));
    ("queue_depth", J.Int t.queued);
    ("in_flight", J.Int t.in_flight);
    ("workers", J.Int t.cfg.workers);
    ("clients", J.Int (Hashtbl.length t.clients));
    ("journal_errors", J.Int (Atomic.get t.n_jerrors));
    ("recovered_entries", J.Int t.n_recovered);
    ("rereplicated", J.Int t.n_rereplicated) ]
  @ match t.replica with Some rep -> Replica.stats_fields rep | None -> []

let handle_compile t c id program =
  match compile_cached t program with
  | key, compiled, hit ->
    send_json t c
      (P.ok ~id ~verb:"compile"
         [ ("key", J.Int key);
           ("cache_hit", J.Bool hit);
           ("cells", J.Int (Graph.node_count compiled.PC.cp_graph));
           ( "inputs",
             J.List
               (List.map (fun (n, _) -> J.String n) compiled.PC.cp_inputs) );
           ( "outputs",
             J.List
               (List.map (fun (n, _) -> J.String n) compiled.PC.cp_outputs) )
         ])
  | exception Not_found ->
    send_json t c
      (P.error ~id P.Compile_error
         (match program with
         | P.Kernel { name; _ } -> Printf.sprintf "unknown kernel %S" name
         | P.Source _ -> "compile failed"))
  | exception e ->
    send_json t c (P.error ~id P.Compile_error (Printexc.to_string e))

let overloaded t =
  Printf.sprintf "%d jobs pending (max %d)" t.queued t.cfg.max_pending

(* A journal the disk betrayed must not take admission down with it:
   the append failure is counted and logged, and the record still goes
   out to the replication quorum — local durability degrades, cluster
   durability holds (and either way the engine's determinism means an
   idempotent retry recomputes the identical answer). *)
let journal_append t entry =
  match t.journal with
  | None -> ()
  | Some jr -> (
    match Journal.append jr entry with
    | () -> ()
    | exception Journal.Disk_fault m ->
      Atomic.incr t.n_jerrors;
      logf t "journal: %s" m
    | exception Unix.Unix_error (e, fn, _) ->
      Atomic.incr t.n_jerrors;
      logf t "journal: %s: %s" fn (Unix.error_message e)
    | exception Sys_error m ->
      Atomic.incr t.n_jerrors;
      logf t "journal: %s" m)

let journal_and_replicate t entry =
  journal_append t entry;
  match t.replica with
  | None -> ()
  | Some rep -> ignore (Replica.replicate rep entry)

let handle_simulate t c id (r : P.run) =
  match r.P.idem with
  | Some key when Hashtbl.mem t.idem key -> (
    (* a retry of a request this server (or a predecessor, via the
       journal) already admitted: answer from the record, or ride the
       run still in flight — never run it twice *)
    t.n_deduped <- t.n_deduped + 1;
    match Hashtbl.find t.idem key with
    | I_done resp -> send_json t c (P.with_id id resp)
    | I_pending job ->
      job.jwaiters <- (c.cid, id) :: job.jwaiters;
      c.waiting <- c.waiting + 1)
  | _ ->
    if t.stopping then
      send_json t c (P.error ~id P.Shutting_down "server shutting down")
    else if t.queued >= t.cfg.max_pending then begin
      t.n_rejected <- t.n_rejected + 1;
      send_json t c (P.error ~id P.Overloaded (overloaded t))
    end
    else (
      match config_of_run r with
      | Error e -> send_json t c (P.error ~id P.Bad_request e)
      | Ok (run_cfg, arch) -> (
        match compile_cached t r.P.program with
        | exception Not_found ->
          send_json t c
            (P.error ~id P.Compile_error
               (match r.P.program with
               | P.Kernel { name; _ } ->
                 Printf.sprintf "unknown kernel %S" name
               | P.Source _ -> "compile failed"))
        | exception e ->
          send_json t c (P.error ~id P.Compile_error (Printexc.to_string e))
        | key, compiled, hit -> (
          let graph = compiled.PC.cp_graph in
          let restore_ok =
            (* a migrated-in job: restore the shipped checkpoint and
               resume the slice stream instead of starting over *)
            match r.P.restore with
            | None -> Ok None
            | Some _ when r.P.engine <> `Machine ->
              Error "restore: machine engine only"
            | Some ck -> (
              match Recover.Checkpoint.of_json ~graph ck with
              | Ok sn -> Ok (Some sn)
              | Error e -> Error ("restore: " ^ e))
          in
          match restore_ok with
          | Error e -> send_json t c (P.error ~id P.Bad_request e)
          | Ok restore ->
            let inputs =
              inputs_of_program r.P.program ~waves:r.P.waves compiled
            in
            let name = program_name r.P.program in
            let progress =
              match (r.P.idem, t.journal) with
              | Some idem, Some _ ->
                Some
                  (fun ck ->
                    journal_and_replicate t
                      (Journal.Progress { idem; checkpoint = ck }))
              | _ -> None
            in
            let request = P.request_to_json ~id:0 (P.Simulate r) in
            let job =
              { jc = Some c;
                jid = id;
                jengine = r.P.engine;
                jidem = r.P.idem;
                jverb = "simulate";
                jcancel = Atomic.make false;
                janswered = false;
                jwaiters = [];
                jrequest = Some request;
                jmigrate = None;
                jwork =
                  make_work ~engine:r.P.engine ~arch ~run_cfg
                    ~sanitize:r.P.sanitize ~slice:t.cfg.slice ~graph ~inputs
                    ~name ~hit ~key ~progress ~restore }
            in
            (* WAL discipline: the admission is durable — locally and,
               in a replicated cluster, on the quorum peers — before
               the job is queued *)
            (match r.P.idem with
            | Some idem ->
              journal_and_replicate t (Journal.Admit { idem; request })
            | None -> ());
            (match r.P.idem with
            | Some k -> Hashtbl.replace t.idem k (I_pending job)
            | None -> ());
            Queue.add job c.queue;
            t.queued <- t.queued + 1;
            dispatch t)))

let handle_sweep t c id (s : P.sweep) =
  if t.stopping then
    send_json t c (P.error ~id P.Shutting_down "server shutting down")
  else if t.queued >= t.cfg.max_pending then begin
    t.n_rejected <- t.n_rejected + 1;
    send_json t c (P.error ~id P.Overloaded (overloaded t))
  end
  else
    let kernels =
      match s.P.sw_kernels with
      | None -> Ok K.all
      | Some names ->
        let rec resolve acc = function
          | [] -> Ok (List.rev acc)
          | n :: rest -> (
            match K.find n with
            | k -> resolve (k :: acc) rest
            | exception Not_found ->
              Error
                (Printf.sprintf "unknown kernel %S (have: %s)" n
                   (String.concat ", "
                      (List.map (fun k -> k.K.name) K.all))))
        in
        resolve [] names
    in
    match kernels with
    | Error e -> send_json t c (P.error ~id P.Bad_request e)
    | Ok kernels ->
      let cells =
        Exec.Sweep.grid ~kernels ~pes:s.P.sw_pes ~waves:s.P.sw_waves
          ~size:s.P.sw_size
      in
      let job =
        { jc = Some c;
          jid = id;
          jengine = `Sim;
          jidem = None;
          jverb = "sweep";
          jcancel = Atomic.make false;
          janswered = false;
          jwaiters = [];
          jrequest = None;
          jmigrate = None;
          jwork = make_sweep_work ~cells }
      in
      Queue.add job c.queue;
      t.queued <- t.queued + 1;
      dispatch t

let handle_cancel t c id target =
  let state =
    (* still queued on this connection? *)
    let queued = ref None in
    Queue.iter
      (fun j -> if j.jid = target && not j.janswered then queued := Some j)
      c.queue;
    match !queued with
    | Some j ->
      j.janswered <- true;
      Atomic.set j.jcancel true;
      t.queued <- t.queued - 1;
      t.n_cancelled <- t.n_cancelled + 1;
      send_json t c (P.error ~id:j.jid P.Cancelled "cancelled while queued");
      answer_waiters t j (fun rid ->
          P.error ~id:rid P.Cancelled "cancelled while queued");
      (match j.jidem with
      | Some k -> Hashtbl.remove t.idem k
      | None -> ());
      "cancelled"
    | None -> (
      match List.find_opt (fun j -> j.jid = target) c.running with
      | Some j ->
        Atomic.set j.jcancel true;
        (match j.jengine with
        | `Machine -> "preempting"  (* checkpoint arrives with its response *)
        | `Sim -> "running")  (* graph engine runs are not preemptible *)
      | None -> "not_found")
  in
  send_json t c (P.ok ~id ~verb:"cancel" [ ("state", J.String state) ])

(* Live migration: checkpoint the job admitted under [idem] and hand
   its request + checkpoint to the caller, who resubmits them (as a
   simulate with [restore]) to another server.  The journal admission
   stays pending here — if this server crashes anyway, its restart
   re-runs the job, and deterministic recomputation means both paths
   produce the same bytes, so exactly-once semantics degrade to
   at-least-once execution with identical answers, never to two
   different answers. *)
let handle_migrate t c id idem =
  let reply state extra =
    send_json t c (P.ok ~id ~verb:"migrate" (("state", J.String state) :: extra))
  in
  match Hashtbl.find_opt t.idem idem with
  | None -> reply "not_found" []
  | Some (I_done resp) -> reply "done" [ ("response", resp) ]
  | Some (I_pending job) ->
    if List.memq job t.inflight_jobs then (
      match job.jengine with
      | `Sim ->
        (* graph jobs are not sliced; they run to completion here *)
        reply "running" []
      | `Machine ->
        (* preempt at the next slice boundary; the reply is deferred to
           deliver, which ships the checkpoint when it arrives *)
        job.jmigrate <- Some (c.cid, id);
        c.waiting <- c.waiting + 1;
        Atomic.set job.jcancel true)
    else begin
      (* still queued: it never ran here, so just hand the request back
         and forget the key *)
      job.janswered <- true;
      Atomic.set job.jcancel true;
      t.queued <- t.queued - 1;
      t.n_cancelled <- t.n_cancelled + 1;
      (match job.jc with
      | Some owner when not owner.closed ->
        send_json t owner
          (P.error ~id:job.jid P.Cancelled "migrated while queued")
      | _ -> ());
      answer_waiters t job (fun rid ->
          P.error ~id:rid P.Cancelled "migrated while queued");
      Hashtbl.remove t.idem idem;
      reply "queued"
        (match job.jrequest with
        | Some req -> [ ("request", req) ]
        | None -> [])
    end

(* ---------------- shutdown ---------------- *)

(* Load shedding, not load dropping: shutdown stops admitting but
   drains what was admitted; only after [drain_timeout] does it dump
   the queue and preempt the stragglers. *)
let initiate_shutdown t =
  if not t.stopping then begin
    t.stopping <- true;
    t.drain_deadline <- Some (Unix.gettimeofday () +. t.cfg.drain_timeout);
    logf t "shutdown: draining %d queued, %d in flight (%.0fs budget)"
      t.queued t.in_flight t.cfg.drain_timeout
  end

let force_drain t =
  if not t.forced then begin
    t.forced <- true;
    logf t "drain budget spent: dumping %d queued, preempting %d in flight"
      t.queued t.in_flight;
    Hashtbl.iter
      (fun _ c ->
        Queue.iter
          (fun j ->
            if not j.janswered then begin
              j.janswered <- true;
              t.queued <- t.queued - 1;
              send_json t c
                (P.error ~id:j.jid P.Shutting_down "server shutting down");
              answer_waiters t j (fun rid ->
                  P.error ~id:rid P.Shutting_down "server shutting down")
            end)
          c.queue;
        Queue.clear c.queue)
      t.clients;
    (* dumped journaled admissions stay pending on disk: the next
       server generation replays them *)
    Queue.iter
      (fun j ->
        if not j.janswered then begin
          j.janswered <- true;
          t.queued <- t.queued - 1
        end)
      t.rqueue;
    Queue.clear t.rqueue;
    List.iter (fun j -> Atomic.set j.jcancel true) t.inflight_jobs
  end

(* ---------------- completions ---------------- *)

let deliver t (job, result) =
  t.in_flight <- t.in_flight - 1;
  t.inflight_jobs <- List.filter (fun j -> j != job) t.inflight_jobs;
  (match job.jc with
  | Some c ->
    c.in_flight <- c.in_flight - 1;
    c.running <- List.filter (fun j -> j != job) c.running
  | None -> ());
  let response =
    match result with
    | R_ok fields ->
      t.n_completed <- t.n_completed + 1;
      P.ok ~id:0 ~verb:job.jverb fields
    | R_preempted checkpoint ->
      t.n_preempted <- t.n_preempted + 1;
      P.error ~id:0 P.Cancelled "preempted at slice boundary"
        ~extra:[ ("checkpoint", checkpoint) ]
    | R_error (kind, msg) ->
      t.n_errors <- t.n_errors + 1;
      P.error ~id:0 kind msg
  in
  (* exactly-once: the outcome is durable and replayable before any
     byte of it leaves the process *)
  (match job.jidem with
  | Some idem -> (
    match result with
    | R_ok fields ->
      let digest =
        match List.assoc_opt "digest" fields with
        | Some (J.Int d) -> Some d
        | _ -> None
      in
      journal_and_replicate t (Journal.Done { idem; response; digest });
      Hashtbl.replace t.idem idem (I_done response)
    | R_error _ ->
      journal_and_replicate t (Journal.Done { idem; response; digest = None });
      Hashtbl.replace t.idem idem (I_done response)
    | R_preempted _ ->
      (* not a final answer: leave the admission pending so a retry —
         or the next server generation — runs it again *)
      Hashtbl.remove t.idem idem)
  | None -> ());
  (* a migrate call was waiting on this job: a preemption checkpoint
     means the job is leaving (ship checkpoint + request); any final
     result means it won the race, so the answer itself travels *)
  (match job.jmigrate with
  | Some (cid, rid) -> (
    job.jmigrate <- None;
    match Hashtbl.find_opt t.clients cid with
    | Some mc when not mc.closed ->
      mc.waiting <- mc.waiting - 1;
      let reply =
        match result with
        | R_preempted checkpoint ->
          t.n_migrated <- t.n_migrated + 1;
          P.ok ~id:rid ~verb:"migrate"
            (("state", J.String "migrated")
             :: ("checkpoint", checkpoint)
             ::
             (match job.jrequest with
             | Some req -> [ ("request", req) ]
             | None -> []))
        | R_ok _ | R_error _ ->
          P.ok ~id:rid ~verb:"migrate"
            [ ("state", J.String "done"); ("response", response) ]
      in
      send_json t mc reply
    | _ -> ())
  | None -> ());
  (match job.jc with
  | Some c when not (c.closed || job.janswered) ->
    job.janswered <- true;
    send_json t c (P.with_id job.jid response)
  | _ -> ());
  answer_waiters t job (fun rid -> P.with_id rid response)

(* ---------------- replication verbs ---------------- *)

let not_replicated t c id =
  send_json t c (P.error ~id P.Replica_error "not a replicated cluster member")

let handle_replicate t c id ~origin entry =
  match t.replica with
  | None -> not_replicated t c id
  | Some rep -> (
    match Journal.entry_of_json entry with
    | Error e -> send_json t c (P.error ~id P.Replica_error ("bad entry: " ^ e))
    | Ok e -> (
      match Replica.store rep ~origin e with
      | Ok () ->
        send_json t c (P.ok ~id ~verb:"replicate" [ ("stored", J.Bool true) ])
      | Error m -> send_json t c (P.error ~id P.Replica_error m)))

let handle_recover t c id ~origin =
  match t.replica with
  | None -> not_replicated t c id
  | Some rep ->
    let entries = Replica.fetch_origin rep ~origin in
    logf t "recover: serving %d entries for %s" (List.length entries) origin;
    send_json t c
      (P.ok ~id ~verb:"recover"
         [ ("origin", J.String origin);
           ("entries", J.List (List.map Journal.entry_to_json entries)) ])

let handle_members t c id =
  match t.replica with
  | None -> not_replicated t c id
  | Some rep ->
    send_json t c (P.ok ~id ~verb:"members" (Replica.members_fields rep))

let drain_completions t =
  (* clear the wakeup byte(s) first so no notification is lost *)
  let buf = Bytes.create 64 in
  (try ignore (Unix.read t.pipe_r buf 0 64) with Unix.Unix_error _ -> ());
  let batch = Queue.create () in
  Mutex.lock t.cmutex;
  Queue.transfer t.completions batch;
  Mutex.unlock t.cmutex;
  Queue.iter (deliver t) batch;
  dispatch t

(* ---------------- journal replay ---------------- *)

let replay_recovered t (rcv : Journal.recovered) =
  List.iter
    (fun (idem, resp) -> Hashtbl.replace t.idem idem (I_done resp))
    rcv.Journal.completed;
  List.iter
    (fun (p : Journal.pending) ->
      let skip msg =
        logf t "journal: dropping pending %S: %s" p.Journal.p_idem msg
      in
      match P.request_of_json p.Journal.p_request with
      | Error e -> skip e
      | exception e -> skip (Printexc.to_string e)
      | Ok (_, P.Simulate r) -> (
        match config_of_run r with
        | Error e -> skip e
        | Ok (run_cfg, arch) -> (
          match compile_cached t r.P.program with
          | exception e -> skip (Printexc.to_string e)
          | key, compiled, hit ->
            let graph = compiled.PC.cp_graph in
            let inputs =
              inputs_of_program r.P.program ~waves:r.P.waves compiled
            in
            let name = program_name r.P.program in
            let checkpoint_doc =
              match (r.P.engine, p.Journal.p_checkpoint) with
              | `Machine, Some ck -> Some ck
              | `Machine, None -> r.P.restore
              | `Sim, _ -> None
            in
            let restore =
              match checkpoint_doc with
              | Some ck -> (
                match Recover.Checkpoint.of_json ~graph ck with
                | Ok sn -> Some sn
                | Error e ->
                  logf t "journal: %S checkpoint rejected (%s); rerunning"
                    p.Journal.p_idem e;
                  None)
              | None -> None
            in
            (* if this pending job is migrated away before it runs, the
               request we hand over should carry the furthest
               checkpoint we hold, so the target resumes instead of
               recomputing *)
            let request =
              match (restore, checkpoint_doc, p.Journal.p_request) with
              | Some _, Some ck, J.Obj fields ->
                J.Obj
                  (("restore", ck)
                  :: List.filter (fun (k, _) -> k <> "restore") fields)
              | _ -> p.Journal.p_request
            in
            let progress =
              match t.journal with
              | Some _ ->
                Some
                  (fun ck ->
                    journal_and_replicate t
                      (Journal.Progress
                         { idem = p.Journal.p_idem; checkpoint = ck }))
              | None -> None
            in
            let job =
              { jc = None;
                jid = 0;
                jengine = r.P.engine;
                jidem = Some p.Journal.p_idem;
                jverb = "simulate";
                jcancel = Atomic.make false;
                janswered = false;
                jwaiters = [];
                jrequest = Some request;
                jmigrate = None;
                jwork =
                  make_work ~engine:r.P.engine ~arch ~run_cfg
                    ~sanitize:r.P.sanitize ~slice:t.cfg.slice ~graph ~inputs
                    ~name ~hit ~key ~progress ~restore }
            in
            Hashtbl.replace t.idem p.Journal.p_idem (I_pending job);
            Queue.add job t.rqueue;
            t.queued <- t.queued + 1;
            t.n_replayed <- t.n_replayed + 1))
      | Ok _ -> skip "not a simulate request")
    rcv.Journal.pending

(* ---------------- creation ---------------- *)

let create cfg =
  if cfg.workers < 1 then invalid_arg "Server.create: workers < 1";
  if cfg.max_pending < 1 then invalid_arg "Server.create: max_pending < 1";
  if cfg.slice < 1 then invalid_arg "Server.create: slice < 1";
  if cfg.max_line < 2 then invalid_arg "Server.create: max_line < 2";
  if cfg.write_timeout <= 0.0 then
    invalid_arg "Server.create: write_timeout <= 0";
  if cfg.drain_timeout <= 0.0 then
    invalid_arg "Server.create: drain_timeout <= 0";
  (match cfg.idle_timeout with
  | Some i when i <= 0.0 -> invalid_arg "Server.create: idle_timeout <= 0"
  | _ -> ());
  if cfg.replicas < 1 then invalid_arg "Server.create: replicas < 1";
  (* cluster membership: a member must know its own listen address
     (rendezvous placement keys on it) and must keep a journal (it
     holds peers' replica segments next to its own WAL) *)
  let cluster_members, cluster_file =
    match cfg.cluster with
    | None -> (None, None)
    | Some spec -> (
      let file =
        if String.length spec > 1 && spec.[0] = '@' then
          Some (String.sub spec 1 (String.length spec - 1))
        else None
      in
      match Runspec.members_of_string spec with
      | Ok ms -> (Some ms, file)
      | Error e -> invalid_arg ("Server.create: cluster: " ^ e))
  in
  (match cluster_members with
  | Some _ when cfg.self_addr = None ->
    invalid_arg "Server.create: a cluster member needs its self address"
  | Some _ when cfg.journal_path = None ->
    invalid_arg "Server.create: a cluster member needs a journal"
  | _ -> ());
  (* replicated members default to synced appends: an acknowledged
     record should survive power loss, not just SIGKILL *)
  let fsync =
    match cfg.fsync with Some b -> b | None -> cluster_members <> None
  in
  let unix_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.bind unix_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen unix_fd 64;
  let tcp_fd =
    match cfg.tcp with
    | None -> None
    | Some (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (inet_of host, port));
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         (try Unix.close unix_fd with Unix.Unix_error _ -> ());
         raise e);
      Some fd
  in
  (match cfg.journal_retain with
  | Some r when r < 0 -> invalid_arg "Server.create: journal_retain < 0"
  | _ -> ());
  let replica =
    match (cluster_members, cfg.self_addr) with
    | Some members, Some self ->
      Some
        (Replica.create ~self ~replicas:cfg.replicas
           ?journal_path:cfg.journal_path ~fsync members)
    | _ -> None
  in
  let journal, recovered, fetched_entries =
    match cfg.journal_path with
    | None -> (None, { Journal.completed = []; pending = [] }, 0)
    | Some path ->
      let existed = Sys.file_exists path in
      let local, damage = Journal.replay_verified path in
      (* a missing or damaged journal on a cluster member is the
         disk-loss case: rebuild from whatever the peers hold for us
         before opening for append.  (A fresh first boot looks the
         same — the peers just hold nothing yet.) *)
      let fetched =
        match replica with
        | Some rep when (not existed) || damage <> Journal.Intact ->
          let entries, responders = Replica.recover_from_peers rep in
          (match damage with
          | Journal.Damaged { valid; size } ->
            logf_cfg cfg
              "journal: damaged (%d/%d bytes intact); %d entries from %d peers"
              valid size (List.length entries) responders
          | Journal.Intact ->
            logf_cfg cfg "journal: absent; %d entries from %d peers"
              (List.length entries) responders);
          entries
        | _ -> []
      in
      (* rewrite when recovery fetched anything or the tail was
         damaged: the fold collapses local/replica duplicates, and the
         atomic rewrite sheds the refused tail so the coming appends
         land on a clean frame boundary *)
      if fetched <> [] || damage <> Journal.Intact then
        Journal.write_atomic ~path
          (Journal.entries_of_recovered (Journal.fold (local @ fetched)));
      (* with a retention window, restart is also when the log is
         rewritten: old done records fall out, pending admissions and
         the newest responses survive *)
      let recovered =
        match cfg.journal_retain with
        | Some retain ->
          (match replica with
          | Some rep -> Replica.compact_segments rep ~retain
          | None -> ());
          Journal.compact ~path ~retain
        | None -> Journal.fold (Journal.replay path)
      in
      ( Some (Journal.open_append ~fsync ?diskfault:cfg.diskfault path),
        recovered,
        List.length fetched )
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let t =
    { cfg;
      listen_fds = (unix_fd :: Option.to_list tcp_fd);
      tcp_fd;
      pipe_r;
      pipe_w;
      pool = Exec.Pool.create ~workers:cfg.workers ();
      cache = Lru.create ~capacity:cfg.cache_capacity;
      journal;
      replica;
      cluster_file;
      reload = Atomic.make false;
      idem = Hashtbl.create 64;
      rqueue = Queue.create ();
      clients = Hashtbl.create 16;
      rr = [];
      next_cid = 1;
      completions = Queue.create ();
      cmutex = Mutex.create ();
      queued = 0;
      in_flight = 0;
      inflight_jobs = [];
      stopping = false;
      drain_deadline = None;
      forced = false;
      n_requests = 0;
      n_completed = 0;
      n_rejected = 0;
      n_cancelled = 0;
      n_preempted = 0;
      n_errors = 0;
      n_malformed = 0;
      n_deadline = 0;
      n_deduped = 0;
      n_replayed = 0;
      n_migrated = 0;
      n_jerrors = Atomic.make 0;
      n_recovered = fetched_entries;
      n_rereplicated = 0 }
  in
  (match (recovered.Journal.completed, recovered.Journal.pending) with
  | [], [] -> ()
  | c, p ->
    logf t "journal: %d completed, %d pending to replay" (List.length c)
      (List.length p));
  replay_recovered t recovered;
  t

let tcp_port t =
  match t.tcp_fd with
  | None -> None
  | Some fd -> (
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> Some port
    | _ -> None)

(* ---------------- the event loop ---------------- *)

let reject_malformed t c msg =
  t.n_malformed <- t.n_malformed + 1;
  logf t "client %d: malformed: %s" c.cid msg;
  send_json t c (P.error ~id:(-1) P.Malformed msg);
  close_client t c

let handle_line t c line =
  let line = String.trim line in
  if line <> "" then begin
    t.n_requests <- t.n_requests + 1;
    match J.of_string line with
    | exception J.Parse_error msg ->
      (* garbage on an otherwise healthy connection: structured error,
         connection stays up (a framing-level overflow closes instead) *)
      t.n_malformed <- t.n_malformed + 1;
      send_json t c (P.error ~id:(-1) P.Malformed msg)
    | doc -> (
      match P.request_of_json doc with
      | Error msg ->
        let id = Option.value ~default:(-1) (P.response_id doc) in
        let kind =
          (* a verb outside the protocol table is its own kind, so
             scripts can tell "wrong server/version" from "bad field" *)
          if String.length msg >= 12 && String.sub msg 0 12 = "unknown verb"
          then P.Unknown_verb
          else P.Bad_request
        in
        send_json t c (P.error ~id kind msg)
      | Ok (id, req) -> (
        match req with
        | P.Stats -> send_json t c (P.ok ~id ~verb:"stats" (stats_fields t))
        | P.Shutdown ->
          send_json t c (P.ok ~id ~verb:"shutdown" []);
          initiate_shutdown t
        | P.Cancel target -> handle_cancel t c id target
        | P.Migrate idem -> handle_migrate t c id idem
        (* replication traffic is control-plane: accepted even while
           stopping, so a draining peer keeps honoring the quorum *)
        | P.Replicate { origin; entry } -> handle_replicate t c id ~origin entry
        | P.Recover { origin } -> handle_recover t c id ~origin
        | P.Members -> handle_members t c id
        | P.Simulate r -> handle_simulate t c id r
        | P.Sweep s -> handle_sweep t c id s
        | P.Compile program ->
          if t.stopping then
            send_json t c
              (P.error ~id P.Shutting_down "server shutting down")
          else handle_compile t c id program))
  end

let handle_readable t c =
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 4096 with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_client t c
  | 0 -> close_client t c
  | n ->
    c.last_read <- Unix.gettimeofday ();
    Buffer.add_subbytes c.rbuf buf 0 n;
    (* consume complete lines, keep the partial tail *)
    let data = Buffer.contents c.rbuf in
    Buffer.clear c.rbuf;
    let over = Printf.sprintf "request line exceeds %d bytes" t.cfg.max_line in
    let rec consume start =
      match String.index_from_opt data start '\n' with
      | None ->
        let rem = String.length data - start in
        if rem > t.cfg.max_line then reject_malformed t c over
        else Buffer.add_substring c.rbuf data start rem
      | Some nl ->
        if nl - start > t.cfg.max_line then reject_malformed t c over
        else begin
          handle_line t c (String.sub data start (nl - start));
          if not c.closed then consume (nl + 1)
        end
    in
    consume 0

let accept_client t lfd =
  match Unix.accept lfd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
    Unix.set_nonblock fd;
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    let now = Unix.gettimeofday () in
    let c =
      { fd;
        cid;
        rbuf = Buffer.create 256;
        wbuf = Buffer.create 256;
        wstart = now;
        last_read = now;
        queue = Queue.create ();
        running = [];
        in_flight = 0;
        waiting = 0;
        closed = false }
    in
    Hashtbl.add t.clients cid c;
    t.rr <- t.rr @ [ cid ];
    logf t "client %d connected" cid

let client_busy (c : client) =
  c.in_flight > 0 || Queue.length c.queue > 0 || c.waiting > 0

(* Reap connections that blew a deadline: idle peers holding no work
   (slowloris protection) and peers that stopped reading their
   responses.  Other clients never notice. *)
let sweep_deadlines t now =
  let idle_victims = ref [] in
  let write_victims = ref [] in
  Hashtbl.iter
    (fun _ c ->
      if not c.closed then
        if
          Buffer.length c.wbuf > 0
          && now -. c.wstart > t.cfg.write_timeout
        then write_victims := c :: !write_victims
        else
          match t.cfg.idle_timeout with
          | Some idle
            when (not (client_busy c))
                 && Buffer.length c.wbuf = 0
                 && now -. c.last_read > idle ->
            idle_victims := c :: !idle_victims
          | _ -> ())
    t.clients;
  List.iter
    (fun c ->
      t.n_deadline <- t.n_deadline + 1;
      logf t "client %d: write stalled > %.1fs; closing" c.cid
        t.cfg.write_timeout;
      close_client t c)
    !write_victims;
  List.iter
    (fun c ->
      t.n_deadline <- t.n_deadline + 1;
      send_json t c (P.error ~id:(-1) P.Deadline "idle past deadline");
      close_client t c)
    !idle_victims

let select_timeout t now =
  let nearest = ref infinity in
  let note x = if x < !nearest then nearest := x in
  (match t.cfg.idle_timeout with
  | Some idle ->
    Hashtbl.iter
      (fun _ c ->
        if (not c.closed) && (not (client_busy c)) && Buffer.length c.wbuf = 0
        then note (c.last_read +. idle -. now))
      t.clients
  | None -> ());
  Hashtbl.iter
    (fun _ c ->
      if (not c.closed) && Buffer.length c.wbuf > 0 then
        note (c.wstart +. t.cfg.write_timeout -. now))
    t.clients;
  (match t.drain_deadline with
  | Some d when not t.forced -> note (d -. now)
  | _ -> ());
  if !nearest = infinity then -1.0 else Float.max 0.02 !nearest

(* ---------------- membership reload (SIGHUP) ---------------- *)

let request_reload t =
  Atomic.set t.reload true;
  (* wake the select; the loop drains the byte like any completion *)
  try ignore (Unix.write t.pipe_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

(* After a membership change the rendezvous targets may have moved:
   push the whole live idempotency table (recorded responses + pending
   admissions) at the new target set.  Entries the old targets already
   hold get duplicated on the wire and collapse in the fold — cheap
   insurance against under-replication, not a consistency hazard. *)
let re_replicate t rep =
  let entries =
    Hashtbl.fold
      (fun idem st acc ->
        match st with
        | I_done response ->
          Journal.Done
            { idem; response; digest = J.get_int (J.member "digest" response) }
          :: acc
        | I_pending job -> (
          match job.jrequest with
          | Some request -> Journal.Admit { idem; request } :: acc
          | None -> acc))
      t.idem []
  in
  if entries <> [] then begin
    List.iter
      (fun target ->
        if not (Replica.push_to rep ~target entries) then
          logf t "reload: re-replication to %s incomplete" target)
      (Replica.targets rep);
    t.n_rereplicated <- t.n_rereplicated + List.length entries
  end

let do_reload t =
  match (t.replica, t.cluster_file) with
  | Some rep, Some file -> (
    match Runspec.members_of_string ("@" ^ file) with
    | Error e -> logf t "reload: %s; keeping old membership" e
    | Ok members ->
      if not (List.mem (Replica.self rep) members) then
        logf t "reload: self %s missing from %s; keeping old membership"
          (Replica.self rep) file
      else begin
        let joined, left = Replica.set_members rep members in
        if joined = [] && left = [] then logf t "reload: membership unchanged"
        else begin
          logf t "reload: %d members (joined: %s; left: %s)"
            (List.length members)
            (String.concat "," joined) (String.concat "," left);
          re_replicate t rep
        end
      end)
  | Some _, None -> logf t "reload: static member list (not @FILE); ignored"
  | _ -> logf t "reload: not a replicated cluster member; ignored"

let serve t =
  logf t
    "listening on %s%s (%d workers, max_pending %d, cache %d, slice %d%s)"
    t.cfg.socket_path
    (match tcp_port t with
    | Some p -> Printf.sprintf " and tcp port %d" p
    | None -> "")
    t.cfg.workers t.cfg.max_pending (Lru.capacity t.cache) t.cfg.slice
    (match t.cfg.journal_path with
    | Some p -> ", journal " ^ p
    | None -> "");
  if not (Queue.is_empty t.rqueue) then dispatch t;
  let finished () = t.stopping && t.in_flight = 0 && t.queued = 0 in
  while not (finished ()) do
    if Atomic.exchange t.reload false then do_reload t;
    let now = Unix.gettimeofday () in
    sweep_deadlines t now;
    (match t.drain_deadline with
    | Some d when (not t.forced) && now >= d -> force_drain t
    | _ -> ());
    if not (finished ()) then begin
      let rs = ref [ t.pipe_r ] in
      if not t.stopping then rs := t.listen_fds @ !rs;
      let ws = ref [] in
      Hashtbl.iter
        (fun _ c ->
          if not c.closed then begin
            rs := c.fd :: !rs;
            if Buffer.length c.wbuf > 0 then ws := c.fd :: !ws
          end)
        t.clients;
      match Unix.select !rs !ws [] (select_timeout t now) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
        List.iter
          (fun fd ->
            Hashtbl.iter
              (fun _ c -> if c.fd = fd && not c.closed then flush_client t c)
              t.clients)
          writable;
        List.iter
          (fun fd ->
            if fd = t.pipe_r then drain_completions t
            else if List.mem fd t.listen_fds then begin
              if not t.stopping then accept_client t fd
            end
            else
              (* the client set may have changed within this batch *)
              Hashtbl.iter
                (fun _ c ->
                  if c.fd = fd && not c.closed then handle_readable t c)
                t.clients)
          readable
    end
  done;
  logf t "drained; closing";
  Hashtbl.iter
    (fun _ c ->
      flush_client t c;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.clients;
  Hashtbl.reset t.clients;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listen_fds;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  Exec.Pool.shutdown t.pool;
  (match t.journal with Some jr -> Journal.close jr | None -> ());
  (match t.replica with Some rep -> Replica.close rep | None -> ());
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  logf t "stopped after %d requests (%d completed, %d rejected)"
    t.n_requests t.n_completed t.n_rejected

let run cfg = serve (create cfg)
