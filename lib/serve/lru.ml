(* Recency is an age stamp per entry; eviction scans for the minimum.
   Eviction is O(capacity), which for a compiled-program cache measured
   in dozens is simpler and no slower in practice than threading a
   doubly-linked list through a hashtable. *)

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, 'v * int ref) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Lru.create: capacity = %d" capacity);
  { capacity;
    tbl = Hashtbl.create (2 * capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some (v, age) ->
    age := tick t;
    t.hits <- t.hits + 1;
    Some v
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k (_, age) ->
      match !victim with
      | Some (_, a) when a <= !age -> ()
      | _ -> victim := Some (k, !age))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let add t k v =
  (match Hashtbl.find_opt t.tbl k with
  | Some _ -> Hashtbl.remove t.tbl k
  | None -> if Hashtbl.length t.tbl >= t.capacity then evict_lru t);
  Hashtbl.replace t.tbl k (v, ref (tick t))

let mem t k = Hashtbl.mem t.tbl k
let length t = Hashtbl.length t.tbl
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
