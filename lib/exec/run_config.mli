(** One record naming every knob a simulation run accepts.

    Both engines ({!Sim.Engine} and {!Machine.Machine_engine}) grew the
    same 7–9 optional parameters — [max_time], [tracer], [fault],
    [sanitizer], [watchdog], plus engine-specific extras — and every
    caller (dfsim, faultcheck, bench, fault_diff, tests) re-plumbed them
    by hand.  [Run_config.t] replaces that plumbing: build one value with
    {!default} and the [with_*] builders, hand it to any engine's
    [run_cfg], and pass it around as data (jobs in [Exec.Job] carry one).

    Fields that only one engine honours are documented as such and
    silently ignored by the other, exactly as the old optional arguments
    were simply not offered there. *)

type recovery = {
  checkpoint_every : int;
      (** instruction-times between periodic checkpoints; [0] disables
          periodic checkpoints (the program-load snapshot remains) *)
  retransmit_after : int;  (** timeout before the first resend *)
  retransmit_backoff : int;  (** timeout multiplier per attempt (>= 1) *)
  max_retransmits : int;  (** resend budget per packet *)
}
(** Checkpoint/retransmission policy for the machine engine (defined
    here so configuration is pure data with no dependency on the engine;
    [Machine.Machine_engine.recovery] is an alias of this type). *)

val default_recovery : recovery
(** Checkpoint every 250 instruction-times, first resend after 48,
    backoff 2x, 8 attempts. *)

type t = {
  max_time : int;  (** simulation-time budget (default 10_000_000) *)
  tracer : Obs.Tracer.t;
      (** event sink; default {!Obs.Tracer.null} records nothing.
          Tracers are stateful: give each concurrent run its own. *)
  fault : Fault.Fault_plan.t option;  (** deterministic perturbations *)
  sanitizer : Fault.Sanitizer.t;
      (** shadow-state invariant checker; default {!Fault.Sanitizer.null}.
          Stateful like the tracer: one per concurrent run. *)
  watchdog : int option;
      (** no-progress window before the run is stopped with a stall
          report; [None] disables the watchdog *)
  record_firings : bool;
      (** graph engine only: keep per-node firing timestamps *)
  trace_window : (int * int) option;
      (** graph engine only: restrict tracing to a time window *)
  recovery : recovery option;
      (** machine engine only: checkpoint/retransmission policy *)
  integrity : bool;
      (** machine engine only: verify per-packet {!Integrity} checksums
          on delivery; a detected-corrupt packet is discarded (and, with
          [recovery], healed by retransmission).  Default [false]. *)
  compiled : bool;
      (** specialize the graph's firing rules into per-cell closures
          once at program load instead of interpreting opcodes per
          firing.  Results are bit-identical to the interpreted mode —
          both drive the same consume/send helpers — this only trades
          load-time work for steady-state speed.  Default [false]. *)
}

val default : t
(** No faults, no sanitizer, no watchdog, null tracer,
    [max_time = 10_000_000]. *)

(** Builders, meant for pipelining:
    [Run_config.(default |> with_watchdog 500 |> with_fault plan)]. *)

val with_max_time : int -> t -> t
val with_tracer : Obs.Tracer.t -> t -> t
val with_fault : Fault.Fault_plan.t -> t -> t
val with_fault_opt : Fault.Fault_plan.t option -> t -> t
val with_sanitizer : Fault.Sanitizer.t -> t -> t
val with_watchdog : int -> t -> t
val with_watchdog_opt : int option -> t -> t
val with_record_firings : bool -> t -> t
val with_trace_window : int * int -> t -> t
val with_recovery : recovery -> t -> t
val with_recovery_opt : recovery option -> t -> t
val with_integrity : bool -> t -> t
val with_compiled : bool -> t -> t
