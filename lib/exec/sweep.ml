module K = Kernels
module ME = Machine.Machine_engine
module PC = Compiler.Program_compile
module J = Obs.Json

type cell = { kernel : K.kernel; n_pe : int; waves : int; size : int }

type row = {
  r_kernel : string;
  r_pe : int;
  r_waves : int;
  r_size : int;
  r_cells : int;
  r_end_time : int;
  r_outputs : int;
  r_interval : float;
  r_predicted : float;
  r_throughput : float;
  r_dispatches : int;
  r_fu_ops : int;
  r_am_ops : int;
  r_am_fraction : float;
  r_ok : bool;
}

let grid ~kernels ~pes ~waves ~size =
  List.concat_map
    (fun kernel ->
      List.concat_map
        (fun n_pe -> List.map (fun w -> { kernel; n_pe; waves = w; size }) waves)
        pes)
    kernels

let run_cell { kernel = k; n_pe; waves; size } =
  (* kernel inputs are seeded from the kernel name, as faultcheck does,
     so every cell of one kernel's sweep sees the same data *)
  let st = Random.State.make [| Hashtbl.hash k.K.name |] in
  let job =
    Job.make ~name:(Printf.sprintf "%s/pe%d/w%d" k.K.name n_pe waves)
      ~engine:
        (Job.Machine { Machine.Arch.default with Machine.Arch.n_pe })
      (Job.Source_program
         {
           source = k.K.source size;
           scalar_inputs = k.K.scalar_inputs;
           options = None;
           waves;
         })
      ~inputs:(k.K.inputs size st)
  in
  let o = Job.run job in
  let c = o.Outcome.counters in
  let times = Job.output_times o k.K.output in
  let outputs = List.length times in
  let interval = Sim.Metrics.initiation_interval times in
  let cells =
    match job.Job.program with
    | Job.Graph_program g -> Dfg.Graph.node_count g
    | Job.Source_program _ ->
      (* recompile is cheap relative to the run; keeps run_cell a pure
         function of the cell *)
      let _, compiled =
        Compiler.Driver.compile_source ~scalar_inputs:k.K.scalar_inputs
          (k.K.source size)
      in
      Dfg.Graph.node_count compiled.PC.cp_graph
  in
  let stall_unexpected =
    match o.Outcome.stall with
    | None -> false
    | Some sr ->
      sr.Fault.Stall_report.sr_reason <> Fault.Stall_report.Deadlock
  in
  {
    r_kernel = k.K.name;
    r_pe = n_pe;
    r_waves = waves;
    r_size = size;
    r_cells = cells;
    r_end_time = o.Outcome.end_time;
    r_outputs = outputs;
    r_interval = interval;
    r_predicted = k.K.predicted_interval size;
    r_throughput =
      float_of_int outputs /. float_of_int (max 1 o.Outcome.end_time);
    r_dispatches = c.Outcome.firings;
    r_fu_ops = c.Outcome.fu_ops;
    r_am_ops = c.Outcome.am_ops;
    r_am_fraction = Outcome.am_fraction c;
    r_ok =
      o.Outcome.quiescent && (not stall_unexpected)
      && o.Outcome.violations = [];
  }

let run_grid ?jobs cells = Pool.map_result ?jobs run_cell cells

let row_json r =
  J.Obj
    [
      ("kernel", J.String r.r_kernel);
      ("pes", J.Int r.r_pe);
      ("waves", J.Int r.r_waves);
      ("size", J.Int r.r_size);
      ("cells", J.Int r.r_cells);
      ("end_time", J.Int r.r_end_time);
      ("outputs", J.Int r.r_outputs);
      ("interval", J.Float r.r_interval);
      ("predicted_interval", J.Float r.r_predicted);
      ("throughput", J.Float r.r_throughput);
      ("dispatches", J.Int r.r_dispatches);
      ("fu_ops", J.Int r.r_fu_ops);
      ("am_ops", J.Int r.r_am_ops);
      ("am_fraction", J.Float r.r_am_fraction);
      ("ok", J.Bool r.r_ok);
    ]

let to_json rows =
  let ok_rows =
    List.filter (function Ok r -> r.r_ok | Error _ -> false) rows
  in
  J.Obj
    [
      ("schema", J.String "dataflow_pipelining.sweep/1");
      ("total", J.Int (List.length rows));
      ("ok", J.Int (List.length ok_rows));
      ( "rows",
        J.List
          (List.map
             (function
               | Ok r -> row_json r
               | Error (e : Pool.error) ->
                 J.Obj
                   [
                     ("index", J.Int e.Pool.index);
                     ("error", J.String e.Pool.message);
                   ])
             rows) );
    ]
