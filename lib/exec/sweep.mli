(** Declarative parameter sweeps over the kernel suite.

    A sweep is a grid — kernel × PE count × wave count at a fixed size —
    run on the machine model, one JSON row per cell: the perf-trajectory
    artifact for the paper's scaling claims (PE count vs. throughput,
    waves vs. steady-state interval).  Cells are independent jobs, so
    {!run_grid} fans them over {!Pool}; rows come back in grid order
    regardless of worker count, and the JSON document contains nothing
    run-dependent (no timestamps, no durations), so its bytes are
    worker-count-independent. *)

type cell = {
  kernel : Kernels.kernel;
  n_pe : int;
  waves : int;
  size : int;
}

type row = {
  r_kernel : string;
  r_pe : int;
  r_waves : int;
  r_size : int;
  r_cells : int;  (** compiled graph size *)
  r_end_time : int;
  r_outputs : int;  (** packets on the kernel's output stream *)
  r_interval : float;  (** steady-state initiation interval *)
  r_predicted : float;  (** the theory's predicted interval *)
  r_throughput : float;  (** output packets per instruction time *)
  r_dispatches : int;
  r_fu_ops : int;
  r_am_ops : int;
  r_am_fraction : float;
  r_ok : bool;  (** run quiescent with no unexpected stall *)
}

val grid :
  kernels:Kernels.kernel list ->
  pes:int list ->
  waves:int list ->
  size:int ->
  cell list
(** Cartesian product in deterministic order (kernel-major, then PE,
    then waves). *)

val run_cell : cell -> row
(** Compile the kernel, run it on the machine model with [n_pe]
    processing elements, measure. *)

val run_grid : ?jobs:int -> cell list -> (row, Pool.error) result list
(** Domain-parallel {!run_cell} over the grid, rows in grid order. *)

val to_json : (row, Pool.error) result list -> Obs.Json.t
(** Schema [dataflow_pipelining.sweep/1]: [{"schema": ..., "rows":
    [...]}]; failed cells become rows with an ["error"] field.  Contains
    no timings, so equal grids give equal bytes at any worker count. *)
