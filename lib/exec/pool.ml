type error = { index : int; message : string; backtrace : string }

exception Job_failed of error

let error_to_string e =
  Printf.sprintf "job %d failed: %s%s" e.index e.message
    (if e.backtrace = "" then "" else "\n" ^ e.backtrace)

let default_jobs () =
  match Sys.getenv_opt "EXEC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg (Printf.sprintf "EXEC_JOBS=%s: expected a positive integer" s))
  | None -> Domain.recommended_domain_count ()

let map_result ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map_result: jobs < 1";
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let out = Array.make n None in
  let run_one i =
    out.(i) <-
      Some
        (match f arr.(i) with
        | v -> Ok v
        | exception e ->
          let backtrace = Printexc.get_backtrace () in
          Error { index = i; message = Printexc.to_string e; backtrace })
  in
  let workers = min jobs n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      run_one i
    done
  else begin
    let next = Atomic.make 0 in
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_one i;
        drain ()
      end
    in
    (* spawn [workers - 1] helpers; the calling domain drains too.  A
       runtime that refuses to spawn (domain limit) just leaves us with
       fewer helpers — the map still completes. *)
    let helpers = ref [] in
    (try
       for _ = 2 to workers do
         helpers := Domain.spawn drain :: !helpers
       done
     with _ -> ());
    drain ();
    List.iter Domain.join !helpers
  end;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> assert false (* every index was drained *))
       out)

let map ?jobs f xs =
  let results = map_result ?jobs f xs in
  (* explicit recursion: the first error by submission order must win,
     and List.map's application order is unspecified *)
  let rec go = function
    | [] -> []
    | Ok v :: rest -> v :: go rest
    | Error e :: _ -> raise (Job_failed e)
  in
  go results

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* ---------------- persistent pool ---------------- *)

type failure = { message : string; backtrace : string }
type 'a outcome = Done of 'a | Failed of failure | Cancelled

(* A queue entry is the existential view of a ticket: [start] flips the
   ticket to Running (called under the pool lock), [work] runs the thunk
   and settles the ticket (called with the lock released).  [live] is
   cleared by [cancel] so workers skip dead entries cheaply instead of
   splicing the queue. *)
type entry = {
  mutable live : bool;
  start : unit -> unit;  (* flip the ticket to Running; call under lock *)
  abort : unit -> unit;  (* settle the ticket Cancelled; call under lock *)
  work : unit -> unit;  (* run and settle; call with the lock released *)
}

type t = {
  lock : Mutex.t;
  changed : Condition.t;  (* new work, a settled ticket, or shutdown *)
  pending : entry Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  worker_count : int;
}

type 'a state = Queued | Running | Settled of 'a outcome

type 'a ticket = {
  pool : t;
  mutable state : 'a state;
  mutable entry : entry option;  (* Some while Queued *)
}

let worker_loop pool =
  let rec next () =
    Mutex.lock pool.lock;
    let rec take () =
      match Queue.take_opt pool.pending with
      | Some e when e.live ->
        e.start ();
        Mutex.unlock pool.lock;
        e.work ();
        next ()
      | Some _ -> take () (* cancelled while queued: skip *)
      | None ->
        if pool.stopping then Mutex.unlock pool.lock
        else begin
          Condition.wait pool.changed pool.lock;
          take ()
        end
    in
    take ()
  in
  next ()

let create ?workers () =
  let requested =
    match workers with
    | Some w when w >= 1 -> w
    | Some w -> invalid_arg (Printf.sprintf "Pool.create: workers = %d" w)
    | None -> default_jobs ()
  in
  let pool =
    { lock = Mutex.create ();
      changed = Condition.create ();
      pending = Queue.create ();
      stopping = false;
      domains = [];
      worker_count = requested }
  in
  (* a runtime that refuses to spawn just leaves fewer workers; with
     zero, [submit] degrades to running the thunk synchronously *)
  (try
     for _ = 1 to requested do
       pool.domains <- Domain.spawn (fun () -> worker_loop pool) :: pool.domains
     done
   with _ -> ());
  pool

let workers pool = max 1 (List.length pool.domains)

let settle ticket outcome =
  Mutex.lock ticket.pool.lock;
  ticket.state <- Settled outcome;
  ticket.entry <- None;
  Condition.broadcast ticket.pool.changed;
  Mutex.unlock ticket.pool.lock

let run_thunk f =
  match f () with
  | v -> Done v
  | exception e ->
    let backtrace = Printexc.get_backtrace () in
    Failed { message = Printexc.to_string e; backtrace }

let submit pool f =
  let ticket = { pool; state = Queued; entry = None } in
  Mutex.lock pool.lock;
  let stopping = pool.stopping in
  let no_workers = pool.domains = [] in
  Mutex.unlock pool.lock;
  if stopping then begin
    ticket.state <- Settled Cancelled;
    ticket
  end
  else if no_workers then begin
    (* no worker domains could be spawned: synchronous fallback keeps
       the API total *)
    ticket.state <- Running;
    ticket.state <- Settled (run_thunk f);
    ticket
  end
  else begin
    let entry =
      { live = true;
        start = (fun () -> ticket.state <- Running);
        abort =
          (fun () ->
            ticket.state <- Settled Cancelled;
            ticket.entry <- None);
        work = (fun () -> settle ticket (run_thunk f)) }
    in
    ticket.entry <- Some entry;
    Mutex.lock pool.lock;
    if pool.stopping then begin
      ticket.state <- Settled Cancelled;
      ticket.entry <- None;
      Mutex.unlock pool.lock
    end
    else begin
      Queue.add entry pool.pending;
      Condition.broadcast pool.changed;
      Mutex.unlock pool.lock
    end;
    ticket
  end

let cancel ticket =
  Mutex.lock ticket.pool.lock;
  let removed =
    match (ticket.state, ticket.entry) with
    | Queued, Some e ->
      e.live <- false;
      ticket.state <- Settled Cancelled;
      ticket.entry <- None;
      Condition.broadcast ticket.pool.changed;
      true
    | _ -> false
  in
  Mutex.unlock ticket.pool.lock;
  removed

let poll ticket =
  Mutex.lock ticket.pool.lock;
  let r = match ticket.state with Settled o -> Some o | _ -> None in
  Mutex.unlock ticket.pool.lock;
  r

let await ticket =
  Mutex.lock ticket.pool.lock;
  let rec wait () =
    match ticket.state with
    | Settled o ->
      Mutex.unlock ticket.pool.lock;
      o
    | _ ->
      Condition.wait ticket.pool.changed ticket.pool.lock;
      wait ()
  in
  wait ()

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  (* queued-but-unstarted entries never run; settle them Cancelled so
     their [await] callers don't hang.  Running jobs finish normally —
     domains cannot be killed — and the joins below wait for them. *)
  Queue.iter
    (fun e ->
      if e.live then begin
        e.live <- false;
        e.abort ()
      end)
    pool.pending;
  Queue.clear pool.pending;
  Condition.broadcast pool.changed;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.domains;
  pool.domains <- []
