type error = { index : int; message : string; backtrace : string }

exception Job_failed of error

let error_to_string e =
  Printf.sprintf "job %d failed: %s%s" e.index e.message
    (if e.backtrace = "" then "" else "\n" ^ e.backtrace)

let default_jobs () =
  match Sys.getenv_opt "EXEC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg (Printf.sprintf "EXEC_JOBS=%s: expected a positive integer" s))
  | None -> Domain.recommended_domain_count ()

let map_result ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map_result: jobs < 1";
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let out = Array.make n None in
  let run_one i =
    out.(i) <-
      Some
        (match f arr.(i) with
        | v -> Ok v
        | exception e ->
          let backtrace = Printexc.get_backtrace () in
          Error { index = i; message = Printexc.to_string e; backtrace })
  in
  let workers = min jobs n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      run_one i
    done
  else begin
    let next = Atomic.make 0 in
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_one i;
        drain ()
      end
    in
    (* spawn [workers - 1] helpers; the calling domain drains too.  A
       runtime that refuses to spawn (domain limit) just leaves us with
       fewer helpers — the map still completes. *)
    let helpers = ref [] in
    (try
       for _ = 2 to workers do
         helpers := Domain.spawn drain :: !helpers
       done
     with _ -> ());
    drain ();
    List.iter Domain.join !helpers
  end;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> assert false (* every index was drained *))
       out)

let map ?jobs f xs =
  let results = map_result ?jobs f xs in
  (* explicit recursion: the first error by submission order must win,
     and List.map's application order is unspecified *)
  let rec go = function
    | [] -> []
    | Ok v :: rest -> v :: go rest
    | Error e :: _ -> raise (Job_failed e)
  in
  go results

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)
