(** Flat-arena lowering of an instruction graph.

    [build] lowers a validated {!Dfg.Graph.t} once into int-indexed
    arrays — cells, input ports, output slots and destination lists all
    numbered globally and stored contiguously — which is the layout both
    engines' hot loops index into.  The arena is purely static: dynamic
    run state (operand presence, pending acknowledges, FIFO contents)
    lives in the engines, as parallel arrays of the same dimensions.

    Numbering: cell [c]'s local input port [k] is global port
    [port_base.(c) + k]; its output slot [s] is global slot
    [slot_base.(c) + s]; slot [s]'s destinations are
    [dest_port.(dest_base.(s))] through
    [dest_port.(dest_base.(s+1) - 1)], each a global port.

    See [docs/ENGINE.md] for the full layout and the compiled-mode
    contract built on top of it. *)

open Dfg

val kind_arc : int
val kind_init : int
val kind_const : int

type t = {
  graph : Graph.t;  (** the graph this arena was lowered from *)
  n : int;  (** cell count *)
  ops : Opcode.t array;
  labels : string array;
  n_ports : int;
  port_base : int array;  (** length [n+1]; prefix sums of arity *)
  port_cell : int array;  (** owning cell per global port *)
  port_sub : int array;  (** local port index per global port *)
  port_kind : int array;  (** {!kind_arc} / {!kind_init} / {!kind_const} *)
  port_value : Value.t array;
      (** init/const payload per port; {!dummy_value} for plain arcs *)
  port_producer : int array;  (** producing cell per arc port, or -1 *)
  n_slots : int;
  slot_base : int array;  (** length [n+1]; prefix sums of out_slots *)
  dest_base : int array;  (** length [n_slots+1] *)
  dest_port : int array;  (** global destination port per dest entry *)
  fanout : int array;  (** destination count per global slot *)
  inputs : (string * int) list;
  outputs : (string * int) list;
}

val dummy_value : Value.t
(** Placeholder for value slots that hold no real payload; never
    observable through the engine APIs. *)

val arity : t -> int -> int
val out_slots : t -> int -> int

val build : Graph.t -> t
(** @raise Invalid_argument on an invalid graph (same checks as
    {!Dfg.Graph.validate}). *)
