(* The flat-arena lowering pass: one pass over a validated graph
   producing int-indexed arrays that both engines' hot loops run on.
   Everything here is static — built once per program, never mutated —
   so a single arena can back any number of concurrent runs. *)

open Dfg

(* Input-port kinds, as dense ints so the hot path branches on an
   unboxed compare instead of a constructor match. *)
let kind_arc = 0
let kind_init = 1
let kind_const = 2

type t = {
  graph : Graph.t;
  n : int;  (* cells *)
  ops : Opcode.t array;
  labels : string array;
  (* ---- input ports, numbered globally: cell [c]'s local port [k] is
     global port [port_base.(c) + k] ---- *)
  n_ports : int;
  port_base : int array;  (* length n+1 *)
  port_cell : int array;  (* owning cell per global port *)
  port_sub : int array;  (* local port index per global port *)
  port_kind : int array;  (* kind_arc / kind_init / kind_const *)
  port_value : Value.t array;  (* init/const payload; dummy for arcs *)
  port_producer : int array;  (* producing cell per arc port, -1 *)
  (* ---- output slots and destinations, numbered globally: cell [c]'s
     slot [s] is global slot [slot_base.(c) + s]; its destinations are
     dest_port.(dest_base.(slot) .. dest_base.(slot+1) - 1) ---- *)
  n_slots : int;
  slot_base : int array;  (* length n+1 *)
  dest_base : int array;  (* length n_slots+1 *)
  dest_port : int array;  (* global destination port per dest entry *)
  fanout : int array;  (* destination count per global slot *)
  inputs : (string * int) list;
  outputs : (string * int) list;
}

(* Placeholder stored where no real payload exists (plain-arc
   [port_value] entries and engine value arrays before first write). *)
let dummy_value = Value.Int 0

let arity a cell = a.port_base.(cell + 1) - a.port_base.(cell)
let out_slots a cell = a.slot_base.(cell + 1) - a.slot_base.(cell)

let build g =
  (match Graph.validate g with
  | Ok () -> ()
  | Error es ->
    invalid_arg ("Arena.build: invalid graph:\n" ^ String.concat "\n" es));
  let n = Graph.node_count g in
  let producers = Graph.producers g in
  let ops = Array.init n (fun id -> (Graph.node g id).Graph.op) in
  let labels = Array.init n (fun id -> (Graph.node g id).Graph.label) in
  let port_base = Array.make (n + 1) 0 in
  let slot_base = Array.make (n + 1) 0 in
  for id = 0 to n - 1 do
    port_base.(id + 1) <- port_base.(id) + Opcode.arity ops.(id);
    slot_base.(id + 1) <- slot_base.(id) + Opcode.out_slots ops.(id)
  done;
  let n_ports = port_base.(n) in
  let n_slots = slot_base.(n) in
  let port_cell = Array.make n_ports 0 in
  let port_sub = Array.make n_ports 0 in
  let port_kind = Array.make n_ports kind_arc in
  let port_value = Array.make n_ports dummy_value in
  let port_producer = Array.make n_ports (-1) in
  let fanout = Array.make (max n_slots 1) 0 in
  let dest_base = Array.make (n_slots + 1) 0 in
  for id = 0 to n - 1 do
    let node = Graph.node g id in
    Array.iteri
      (fun k binding ->
        let p = port_base.(id) + k in
        port_cell.(p) <- id;
        port_sub.(p) <- k;
        (match producers.(id).(k) with
        | [| (src, _) |] -> port_producer.(p) <- src
        | _ -> ());
        match binding with
        | Graph.In_arc -> ()
        | Graph.In_arc_init v ->
          port_kind.(p) <- kind_init;
          port_value.(p) <- v
        | Graph.In_const v ->
          port_kind.(p) <- kind_const;
          port_value.(p) <- v)
      node.Graph.inputs;
    Array.iteri
      (fun s dests ->
        fanout.(slot_base.(id) + s) <- List.length dests)
      node.Graph.dests
  done;
  for s = 0 to n_slots - 1 do
    dest_base.(s + 1) <- dest_base.(s) + fanout.(s)
  done;
  let dest_port = Array.make (max dest_base.(n_slots) 1) 0 in
  for id = 0 to n - 1 do
    let node = Graph.node g id in
    Array.iteri
      (fun s dests ->
        let base = dest_base.(slot_base.(id) + s) in
        List.iteri
          (fun i { Graph.ep_node; ep_port } ->
            dest_port.(base + i) <- port_base.(ep_node) + ep_port)
          dests)
      node.Graph.dests
  done;
  {
    graph = g;
    n;
    ops;
    labels;
    n_ports;
    port_base;
    port_cell;
    port_sub;
    port_kind;
    port_value;
    port_producer;
    n_slots;
    slot_base;
    dest_base;
    dest_port;
    fanout;
    inputs = Graph.inputs g;
    outputs = Graph.outputs g;
  }
