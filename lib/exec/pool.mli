(** Domain-parallel work pool with deterministic result collection.

    The paper's claims are statements about {e sweeps} — interval vs.
    waves, balancing vs. buffer budget, PE count vs. throughput — and
    every experiment in such a sweep is independent.  [Pool] fans a list
    of work items over OCaml 5 domains and returns the results {e in
    submission order}, so the merged output of a parallel run is
    byte-identical to a sequential one (tested in [test_exec.ml]).

    Sizing: [~jobs] if given, else the [EXEC_JOBS] environment variable,
    else {!Domain.recommended_domain_count}.  [jobs <= 1] is the
    sequential fallback — no domains are spawned at all, which is also
    the escape hatch on runtimes where spawning fails (a failed spawn
    degrades to fewer workers rather than failing the map).

    Work items must not share mutable state (give each run its own
    tracer/sanitizer; the compiler and engines keep no global state). *)

type error = {
  index : int;  (** submission index of the failed item *)
  message : string;  (** [Printexc.to_string] of the exception *)
  backtrace : string;
}
(** One item's failure, isolated: other items still complete. *)

val error_to_string : error -> string

val default_jobs : unit -> int
(** [EXEC_JOBS] if set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)

val map_result : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** Apply [f] to every item, fanning across [jobs] workers (the calling
    domain participates).  Results are in submission order; an item that
    raises yields [Error] without disturbing the others. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** As {!map_result} but re-raises the {e first} failure (by submission
    order, deterministically) after all items have finished. *)

exception Job_failed of error
(** What {!map} raises; carries the submission index and the original
    exception rendered to a string (exceptions cannot safely cross
    domain boundaries in general). *)

val timed : (unit -> 'a) -> 'a * float
(** Run a thunk and return its wall-clock seconds alongside the result
    — every parallel runner prints this so speedups are measured, not
    assumed. *)

(** {2 Persistent pool}

    [map_result] spins domains up and down per batch, which is fine for
    sweeps but wrong for a long-lived service: dfserve keeps one pool
    for its whole lifetime and feeds it jobs as requests arrive.  Jobs
    are handed out in submission order; a job can be cancelled while it
    is still queued (a running domain cannot be interrupted — preemption
    of long simulations happens above this layer, at checkpoint slice
    boundaries). *)

type t
(** A set of worker domains consuming a shared job queue. *)

type failure = { message : string; backtrace : string }

type 'a outcome =
  | Done of 'a
  | Failed of failure  (** the thunk raised; rendered like {!error} *)
  | Cancelled  (** cancelled while queued, or pool shut down first *)

type 'a ticket
(** Handle for one submitted job. *)

val create : ?workers:int -> unit -> t
(** Spawn [workers] domains (default {!default_jobs}).  A runtime that
    refuses to spawn leaves fewer workers; with zero, {!submit} runs
    thunks synchronously.  @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int
(** Actual worker count (at least 1, counting the synchronous
    fallback). *)

val submit : t -> (unit -> 'a) -> 'a ticket
(** Enqueue a thunk.  Thunks must not share mutable state, as with
    {!map_result}.  After {!shutdown} the ticket settles [Cancelled]
    without running. *)

val cancel : 'a ticket -> bool
(** [true] iff the job was still queued and has been removed — it will
    never run.  [false] once running or settled: a domain mid-job
    cannot be interrupted from outside. *)

val poll : 'a ticket -> 'a outcome option
(** Non-blocking: [Some] once settled. *)

val await : 'a ticket -> 'a outcome
(** Block until the job settles. *)

val shutdown : t -> unit
(** Cancel everything still queued, let running jobs finish, and join
    all worker domains.  Idempotent. *)
