(** Domain-parallel work pool with deterministic result collection.

    The paper's claims are statements about {e sweeps} — interval vs.
    waves, balancing vs. buffer budget, PE count vs. throughput — and
    every experiment in such a sweep is independent.  [Pool] fans a list
    of work items over OCaml 5 domains and returns the results {e in
    submission order}, so the merged output of a parallel run is
    byte-identical to a sequential one (tested in [test_exec.ml]).

    Sizing: [~jobs] if given, else the [EXEC_JOBS] environment variable,
    else {!Domain.recommended_domain_count}.  [jobs <= 1] is the
    sequential fallback — no domains are spawned at all, which is also
    the escape hatch on runtimes where spawning fails (a failed spawn
    degrades to fewer workers rather than failing the map).

    Work items must not share mutable state (give each run its own
    tracer/sanitizer; the compiler and engines keep no global state). *)

type error = {
  index : int;  (** submission index of the failed item *)
  message : string;  (** [Printexc.to_string] of the exception *)
  backtrace : string;
}
(** One item's failure, isolated: other items still complete. *)

val error_to_string : error -> string

val default_jobs : unit -> int
(** [EXEC_JOBS] if set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)

val map_result : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** Apply [f] to every item, fanning across [jobs] workers (the calling
    domain participates).  Results are in submission order; an item that
    raises yields [Error] without disturbing the others. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** As {!map_result} but re-raises the {e first} failure (by submission
    order, deterministically) after all items have finished. *)

exception Job_failed of error
(** What {!map} raises; carries the submission index and the original
    exception rendered to a string (exceptions cannot safely cross
    domain boundaries in general). *)

val timed : (unit -> 'a) -> 'a * float
(** Run a thunk and return its wall-clock seconds alongside the result
    — every parallel runner prints this so speedups are measured, not
    assumed. *)
