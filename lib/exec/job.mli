(** A simulation run as data.

    A [Job.t] names everything one run needs — the program (Val source
    to compile, or an already-built graph), the engine and architecture,
    the input waves, and a {!Run_config.t} for faults, recovery and the
    rest — so experiment sweeps can be built as lists and handed to
    {!Pool} (or {!run_all}) without capturing 9-argument closures.

    Stateful observers: tracers and sanitizers must not be shared
    between concurrently-running jobs, so a job carries [sanitize :
    bool] and builds a {e fresh} sanitizer inside the worker; any tracer
    placed in [config] is the caller's responsibility to keep
    per-job. *)

open Dfg

type engine =
  | Sim  (** the graph-level simulator, {!Sim.Engine} *)
  | Machine of Machine.Arch.t  (** the machine model on this arch *)

type program =
  | Graph_program of Graph.t
      (** run this graph as-is; [inputs] must cover its Input cells *)
  | Source_program of {
      source : string;  (** Val source text, compiled in the worker *)
      scalar_inputs : (string * Value.t) list;
      options : Compiler.Program_compile.options option;
      waves : int;  (** input waves are replicated this many times *)
    }

type t = {
  name : string;  (** label for reports and error messages *)
  engine : engine;
  program : program;
  inputs : (string * Value.t list) list;
      (** one wave per array input for [Source_program] (replicated
          [waves] times); full packet streams for [Graph_program] *)
  config : Run_config.t;
  sanitize : bool;  (** build a fresh sanitizer for this run *)
}

val make :
  ?name:string ->
  ?engine:engine ->
  ?config:Run_config.t ->
  ?sanitize:bool ->
  program ->
  inputs:(string * Value.t list) list ->
  t
(** Defaults: [engine = Sim], [config = Run_config.default],
    [sanitize = false], [name = "job"]. *)

val run : t -> Outcome.t
(** Execute one job in the calling domain (compile if needed, run,
    collect into the engine-independent {!Outcome.t}).
    @raise Invalid_argument etc. as the underlying engines and compiler
    do. *)

val run_all : ?jobs:int -> t list -> (Outcome.t, Pool.error) result list
(** {!Pool.map_result} over {!run}: domain-parallel, results in
    submission order, failures isolated per job. *)

val output_values : Outcome.t -> string -> Value.t list
val output_times : Outcome.t -> string -> int list
(** {!Outcome.output_values} / {!Outcome.output_times}. *)
