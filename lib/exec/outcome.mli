(** The engine-independent run outcome.

    Both engines report the same shape of result — outputs, an end
    time, quiescence, an optional stall report, sanitizer violations —
    plus per-engine counters.  [Outcome.t] carries that common surface
    once, so dfserve, the sweep grid, benchmarks and fault checking
    consume one type instead of matching on the engine; the full
    engine result stays reachable through {!detail} for callers that
    need engine-specific depth (trace records, PE dispatch vectors,
    snapshots).

    The metrics registries that used to live in [Runspec] are built
    here from the same outcome ({!metrics}), so a served response and a
    standalone run render identical metrics by construction. *)

open Dfg

type counters = {
  firings : int;
      (** instruction firings: graph-engine fire count, machine-engine
          dispatches *)
  cells : int;  (** cells in the program graph (0 for machine runs —
                    read the graph, or {!detail}, when needed) *)
  fu_ops : int;  (** function-unit operations (machine engine only) *)
  am_ops : int;  (** array-memory operations (machine engine only) *)
  result_packets : int;  (** routing-network result packets *)
  ack_packets : int;  (** acknowledge packets *)
  retransmits : int;  (** recovery-protocol resends *)
  checkpoints : int;  (** periodic checkpoints taken *)
  recoveries : int;  (** crash recoveries performed *)
}
(** Counters the graph engine does not track are 0 for [Sim] runs. *)

type detail =
  | Sim_detail of Sim.Engine.result
  | Machine_detail of Machine.Machine_engine.result
      (** The untruncated engine result, for engine-specific needs. *)

type t = {
  name : string;  (** the job label, used in error messages *)
  outputs : (string * (int * Value.t) list) list;
  end_time : int;
  quiescent : bool;
  stall : Fault.Stall_report.t option;
  violations : Fault.Violation.t list;
  counters : counters;
  detail : detail;
}

val of_sim : name:string -> Sim.Engine.result -> t
val of_machine : name:string -> Machine.Machine_engine.result -> t

val am_fraction : counters -> float
(** [am_ops / (firings + am_ops)] — [nan] when nothing fired, 0 for
    graph-engine runs (no array memories in that model). *)

val digest : t -> int
(** {!Integrity.digest_outputs} of the outputs: the order-sensitive
    checksum dfserve and the determinism checks compare. *)

val stream : t -> string -> (int * Value.t) list
(** Arrivals of one output stream.
    @raise Invalid_argument naming the unknown stream and the streams
    the run actually produced. *)

val output_values : t -> string -> Value.t list
val output_times : t -> string -> int list

val metrics : t -> Obs.Metrics_registry.t
(** The run rendered into the shared metrics vocabulary
    ([sim.*] or [machine.*] keys depending on the engine). *)

val metrics_of_sim : Sim.Engine.result -> Obs.Metrics_registry.t
val metrics_of_machine :
  Machine.Machine_engine.result -> Obs.Metrics_registry.t
(** The registry builders behind {!metrics}, exposed for callers that
    hold a bare engine result ([Runspec] re-exports these). *)
