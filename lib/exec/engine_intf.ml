(** The common contract of the two simulators.

    An [ENGINE] takes one {!Run_config.t} — not a spread of optional
    arguments — plus the graph and its input packet streams, and
    produces its engine-specific result.  {!Sim.Engine} implements it
    directly ([Sim.Engine.engine]); {!Machine.Machine_engine.engine}
    closes over an {!Machine.Arch.t} to produce one.  Code that only
    needs outputs (the differential harnesses, the job runner) can be
    written once against this signature. *)

module type ENGINE = sig
  type result

  val run :
    Run_config.t ->
    Dfg.Graph.t ->
    inputs:(string * Dfg.Value.t list) list ->
    result

  val output_values : result -> string -> Dfg.Value.t list
  (** Values of an output stream in arrival order. *)

  val output_times : result -> string -> int list
  (** Arrival times of an output stream. *)
end
