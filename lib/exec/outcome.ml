open Dfg
module ME = Machine.Machine_engine

type counters = {
  firings : int;
  cells : int;
  fu_ops : int;
  am_ops : int;
  result_packets : int;
  ack_packets : int;
  retransmits : int;
  checkpoints : int;
  recoveries : int;
}

type detail =
  | Sim_detail of Sim.Engine.result
  | Machine_detail of ME.result

type t = {
  name : string;
  outputs : (string * (int * Value.t) list) list;
  end_time : int;
  quiescent : bool;
  stall : Fault.Stall_report.t option;
  violations : Fault.Violation.t list;
  counters : counters;
  detail : detail;
}

let of_sim ~name (r : Sim.Engine.result) =
  {
    name;
    outputs = r.Sim.Engine.outputs;
    end_time = r.Sim.Engine.end_time;
    quiescent = r.Sim.Engine.quiescent;
    stall = r.Sim.Engine.stuck;
    violations = r.Sim.Engine.violations;
    counters =
      {
        firings = Array.fold_left ( + ) 0 r.Sim.Engine.fire_counts;
        cells = Array.length r.Sim.Engine.fire_counts;
        fu_ops = 0;
        am_ops = 0;
        result_packets = 0;
        ack_packets = 0;
        retransmits = 0;
        checkpoints = 0;
        recoveries = 0;
      };
    detail = Sim_detail r;
  }

let of_machine ~name (r : ME.result) =
  let s = r.ME.stats in
  {
    name;
    outputs = r.ME.outputs;
    end_time = r.ME.end_time;
    quiescent = r.ME.quiescent;
    stall = r.ME.stall;
    violations = r.ME.violations;
    counters =
      {
        firings = s.ME.dispatches;
        cells = 0;
        fu_ops = s.ME.fu_ops;
        am_ops = s.ME.am_ops;
        result_packets = s.ME.result_packets;
        ack_packets = s.ME.ack_packets;
        retransmits = s.ME.retransmits;
        checkpoints = r.ME.checkpoints;
        recoveries = r.ME.recoveries;
      };
    detail = Machine_detail r;
  }

let am_fraction c =
  Df_util.Conventions.ratio
    (float_of_int c.am_ops)
    (float_of_int (c.firings + c.am_ops))

let digest o = Integrity.digest_outputs o.outputs

let stream o name =
  Df_util.Conventions.lookup_stream
    ~who:(Printf.sprintf "Job %s" o.name)
    o.outputs name

let output_values o name = List.map snd (stream o name)
let output_times o name = List.map fst (stream o name)

(* ---------------- metrics registries ----------------

   These render an engine result into the shared metrics vocabulary the
   CLIs and dfserve expose.  They live here (not in Runspec) so every
   outcome consumer gets identical metrics without matching on the
   engine; Runspec re-exports them for the CLIs. *)

let metrics_of_sim (result : Sim.Engine.result) =
  let m = Obs.Metrics_registry.create () in
  let open Obs.Metrics_registry in
  incr m "sim.firings"
    ~by:(Array.fold_left ( + ) 0 result.Sim.Engine.fire_counts);
  incr m "sim.cells" ~by:(Array.length result.Sim.Engine.fire_counts);
  incr m "sim.stuck_cells"
    ~by:
      (match result.Sim.Engine.stuck with
      | None -> 0
      | Some sr -> List.length sr.Fault.Stall_report.sr_blocked);
  incr m "sim.violations" ~by:(List.length result.Sim.Engine.violations);
  set m "sim.end_time" (float_of_int result.Sim.Engine.end_time);
  set m "sim.quiescent" (if result.Sim.Engine.quiescent then 1.0 else 0.0);
  Array.iteri
    (fun id _ ->
      observe m "sim.cell_utilization" (Sim.Metrics.utilization result id))
    result.Sim.Engine.fire_counts;
  List.iter
    (fun (name, arrivals) ->
      incr m
        (Printf.sprintf "sim.output.%s.packets" name)
        ~by:(List.length arrivals);
      set m
        (Printf.sprintf "sim.output.%s.interval" name)
        (Sim.Metrics.output_interval result name))
    result.Sim.Engine.outputs;
  m

let metrics_of_machine (r : ME.result) =
  let m = Obs.Metrics_registry.create () in
  let open Obs.Metrics_registry in
  let s = r.ME.stats in
  incr m "machine.dispatches" ~by:s.ME.dispatches;
  incr m "machine.fu_ops" ~by:s.ME.fu_ops;
  incr m "machine.am_ops" ~by:s.ME.am_ops;
  incr m "machine.result_packets" ~by:s.ME.result_packets;
  incr m "machine.ack_packets" ~by:s.ME.ack_packets;
  incr m "machine.retransmits" ~by:s.ME.retransmits;
  incr m "machine.checkpoints" ~by:r.ME.checkpoints;
  incr m "machine.recoveries" ~by:r.ME.recoveries;
  set m "machine.end_time" (float_of_int r.ME.end_time);
  set m "machine.quiescent" (if r.ME.quiescent then 1.0 else 0.0);
  incr m "machine.stalled_cells"
    ~by:
      (match r.ME.stall with
      | None -> 0
      | Some sr -> List.length sr.Fault.Stall_report.sr_blocked);
  incr m "machine.violations" ~by:(List.length r.ME.violations);
  set m "machine.am_fraction" (ME.am_fraction s);
  Array.iteri
    (fun i d ->
      incr m (Printf.sprintf "machine.pe.%02d.dispatches" i) ~by:d;
      observe m "machine.pe_occupancy" (float_of_int d))
    s.ME.pe_dispatches;
  List.iter
    (fun (name, arrivals) ->
      incr m
        (Printf.sprintf "machine.output.%s.packets" name)
        ~by:(List.length arrivals))
    r.ME.outputs;
  m

let metrics o =
  match o.detail with
  | Sim_detail r -> metrics_of_sim r
  | Machine_detail r -> metrics_of_machine r
