open Dfg
module PC = Compiler.Program_compile
module ME = Machine.Machine_engine

type engine = Sim | Machine of Machine.Arch.t

type program =
  | Graph_program of Graph.t
  | Source_program of {
      source : string;
      scalar_inputs : (string * Value.t) list;
      options : PC.options option;
      waves : int;
    }

type t = {
  name : string;
  engine : engine;
  program : program;
  inputs : (string * Value.t list) list;
  config : Run_config.t;
  sanitize : bool;
}

let make ?(name = "job") ?(engine = Sim) ?(config = Run_config.default)
    ?(sanitize = false) program ~inputs =
  { name; engine; program; inputs; config; sanitize }

type outcome = {
  job_name : string;
  outputs : (string * (int * Value.t) list) list;
  end_time : int;
  quiescent : bool;
  stall : Fault.Stall_report.t option;
  violations : Fault.Violation.t list;
  sim_result : Sim.Engine.result option;
  machine_result : ME.result option;
}

let replicate waves xs = List.concat_map (fun _ -> xs) (List.init waves Fun.id)

(* Resolve the program to a graph plus full packet streams. *)
let materialize job =
  match job.program with
  | Graph_program g -> (g, job.inputs)
  | Source_program { source; scalar_inputs; options; waves } ->
    let _, compiled = Compiler.Driver.compile_source ?options ~scalar_inputs source in
    let feeds =
      List.map
        (fun (name, shape) ->
          match List.assoc_opt name job.inputs with
          | None ->
            invalid_arg
              (Printf.sprintf "Job.run %s: missing input wave for %s"
                 job.name name)
          | Some wave ->
            let expected = PC.wave_size shape in
            if List.length wave <> expected then
              invalid_arg
                (Printf.sprintf
                   "Job.run %s: input %s wave has %d packets, expected %d"
                   job.name name (List.length wave) expected);
            (name, replicate waves wave))
        compiled.PC.cp_inputs
    in
    (compiled.PC.cp_graph, feeds)

let run job =
  let g, inputs = materialize job in
  let cfg =
    if job.sanitize then
      Run_config.with_sanitizer (Fault.Sanitizer.create g) job.config
    else job.config
  in
  match job.engine with
  | Sim ->
    let r = Sim.Engine.run_cfg cfg g ~inputs in
    {
      job_name = job.name;
      outputs = r.Sim.Engine.outputs;
      end_time = r.Sim.Engine.end_time;
      quiescent = r.Sim.Engine.quiescent;
      stall = r.Sim.Engine.stuck;
      violations = r.Sim.Engine.violations;
      sim_result = Some r;
      machine_result = None;
    }
  | Machine arch ->
    let r = ME.run_cfg cfg ~arch g ~inputs in
    {
      job_name = job.name;
      outputs = r.ME.outputs;
      end_time = r.ME.end_time;
      quiescent = r.ME.quiescent;
      stall = r.ME.stall;
      violations = r.ME.violations;
      sim_result = None;
      machine_result = Some r;
    }

let run_all ?jobs ts = Pool.map_result ?jobs run ts

let stream outcome name =
  match List.assoc_opt name outcome.outputs with
  | Some vs -> vs
  | None ->
    invalid_arg
      (Printf.sprintf "Job %s: no output stream %s (run produced: %s)"
         outcome.job_name name
         (match outcome.outputs with
         | [] -> "none"
         | outs -> String.concat ", " (List.map fst outs)))

let output_values outcome name = List.map snd (stream outcome name)

let output_times outcome name = List.map fst (stream outcome name)
