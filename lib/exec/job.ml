open Dfg
module PC = Compiler.Program_compile
module ME = Machine.Machine_engine

type engine = Sim | Machine of Machine.Arch.t

type program =
  | Graph_program of Graph.t
  | Source_program of {
      source : string;
      scalar_inputs : (string * Value.t) list;
      options : PC.options option;
      waves : int;
    }

type t = {
  name : string;
  engine : engine;
  program : program;
  inputs : (string * Value.t list) list;
  config : Run_config.t;
  sanitize : bool;
}

let make ?(name = "job") ?(engine = Sim) ?(config = Run_config.default)
    ?(sanitize = false) program ~inputs =
  { name; engine; program; inputs; config; sanitize }

let replicate waves xs = List.concat_map (fun _ -> xs) (List.init waves Fun.id)

(* Resolve the program to a graph plus full packet streams. *)
let materialize job =
  match job.program with
  | Graph_program g -> (g, job.inputs)
  | Source_program { source; scalar_inputs; options; waves } ->
    let _, compiled = Compiler.Driver.compile_source ?options ~scalar_inputs source in
    let feeds =
      List.map
        (fun (name, shape) ->
          match List.assoc_opt name job.inputs with
          | None ->
            invalid_arg
              (Printf.sprintf "Job.run %s: missing input wave for %s"
                 job.name name)
          | Some wave ->
            let expected = PC.wave_size shape in
            if List.length wave <> expected then
              invalid_arg
                (Printf.sprintf
                   "Job.run %s: input %s wave has %d packets, expected %d"
                   job.name name (List.length wave) expected);
            (name, replicate waves wave))
        compiled.PC.cp_inputs
    in
    (compiled.PC.cp_graph, feeds)

let run job =
  let g, inputs = materialize job in
  let cfg =
    if job.sanitize then
      Run_config.with_sanitizer (Fault.Sanitizer.create g) job.config
    else job.config
  in
  match job.engine with
  | Sim -> Outcome.of_sim ~name:job.name (Sim.Engine.run_cfg cfg g ~inputs)
  | Machine arch ->
    Outcome.of_machine ~name:job.name (ME.run_cfg cfg ~arch g ~inputs)

let run_all ?jobs ts = Pool.map_result ?jobs run ts

let output_values = Outcome.output_values
let output_times = Outcome.output_times
