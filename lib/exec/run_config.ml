type recovery = {
  checkpoint_every : int;
  retransmit_after : int;
  retransmit_backoff : int;
  max_retransmits : int;
}

let default_recovery =
  {
    checkpoint_every = 250;
    retransmit_after = 48;
    retransmit_backoff = 2;
    max_retransmits = 8;
  }

type t = {
  max_time : int;
  tracer : Obs.Tracer.t;
  fault : Fault.Fault_plan.t option;
  sanitizer : Fault.Sanitizer.t;
  watchdog : int option;
  record_firings : bool;
  trace_window : (int * int) option;
  recovery : recovery option;
  integrity : bool;
  compiled : bool;
}

let default =
  {
    max_time = 10_000_000;
    tracer = Obs.Tracer.null;
    fault = None;
    sanitizer = Fault.Sanitizer.null;
    watchdog = None;
    record_firings = false;
    trace_window = None;
    recovery = None;
    integrity = false;
    compiled = false;
  }

let with_max_time max_time t = { t with max_time }
let with_tracer tracer t = { t with tracer }
let with_fault plan t = { t with fault = Some plan }
let with_fault_opt fault t = { t with fault }
let with_sanitizer sanitizer t = { t with sanitizer }
let with_watchdog w t = { t with watchdog = Some w }
let with_watchdog_opt watchdog t = { t with watchdog }
let with_record_firings record_firings t = { t with record_firings }
let with_trace_window w t = { t with trace_window = Some w }
let with_recovery r t = { t with recovery = Some r }
let with_recovery_opt recovery t = { t with recovery }
let with_integrity integrity t = { t with integrity }
let with_compiled compiled t = { t with compiled }
