(** End-to-end packet and artifact integrity.

    The machine simulator's routing network can corrupt payloads in
    flight ({!Fault.Fault_plan.spec}[.corrupt_prob]); a flipped bit
    satisfies every token/ack invariant the sanitizer checks while
    producing wrong answers.  This library provides the checksums that
    make such corruption *detectable*:

    - per-packet value checksums, attached by the producer when a result
      packet is sent and verified by the consumer on delivery
      ({!checksum_value} / {!verify_value});
    - a whole-run output digest over every output stream's values —
      arrival times excluded, so a clean run and a delay-faulted run of
      the same graph have equal digests ({!digest_outputs});
    - string checksums used by {!Recover.Checkpoint} to reject
      truncated or bit-rotted snapshot files ({!checksum_string}).

    All checksums are FNV-1a (64-bit) folded to non-negative OCaml ints.
    This is error *detection*, not cryptography: a random single-bit or
    burst error is caught with probability [1 - 2^-62], which is the
    routing-network failure model; it offers no resistance to an
    adversary. *)

val checksum_value : Dfg.Value.t -> int
(** Checksum of one payload.  Type-tagged: [Int 1], [Real 1.0] and
    [Bool true] all differ.  Reals are hashed by IEEE-754 bit pattern,
    so [-0.0] and [0.0] differ and every NaN payload pattern is
    distinguished. *)

val verify_value : Dfg.Value.t -> int -> bool
(** [verify_value v crc] is [checksum_value v = crc]. *)

val checksum_string : string -> int
(** Checksum of a byte string (length-prefixed FNV-1a). *)

val digest_outputs : (string * (int * Dfg.Value.t) list) list -> int
(** Digest of a run's output streams, as returned by the engines'
    [output_values]-shaped data: a list of [(stream name, (arrival
    time, value) list)].  Stream names and value order matter; arrival
    times are ignored (see above). *)

val digest_values : Dfg.Value.t list -> int
(** Digest of a bare value sequence. *)
