(* FNV-1a, 64-bit.  Dependency-free and deterministic across
   architectures; the multiply wraps mod 2^64 exactly as the reference
   algorithm specifies.  Checksums are exposed as non-negative OCaml
   ints (top bit shifted off, 62 significant bits) so they serialize
   through Obs.Json without boxing concerns. *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let int64_le h x =
  let rec go h i =
    if i = 8 then h
    else go (byte h (Int64.to_int (Int64.shift_right_logical x (8 * i)))) (i + 1)
  in
  go h 0

let finish h = Int64.to_int (Int64.shift_right_logical h 2)

(* Type tags keep [Int 1], [Real 1.0] and [Bool true] from colliding. *)
let add_value h v =
  match (v : Dfg.Value.t) with
  | Int i -> int64_le (byte h 1) (Int64.of_int i)
  | Real r -> int64_le (byte h 2) (Int64.bits_of_float r)
  | Bool b -> byte (byte h 3) (if b then 1 else 0)

let add_string h s =
  let h = ref (int64_le h (Int64.of_int (String.length s))) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let checksum_value v = finish (add_value fnv_offset v)
let verify_value v crc = checksum_value v = crc
let checksum_string s = finish (add_string fnv_offset s)

let digest_outputs outs =
  (* Arrival times are deliberately excluded: delay faults shift them,
     and the digest must certify *values*, the paper's
     latency-insensitivity invariant. *)
  let h =
    List.fold_left
      (fun h (name, packets) ->
        let h = add_string h name in
        List.fold_left (fun h (_time, v) -> add_value h v) h packets)
      fnv_offset outs
  in
  finish h

let digest_values vs = finish (List.fold_left add_value fnv_offset vs)
