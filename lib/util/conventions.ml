let ratio num den = if den = 0. then Float.nan else num /. den

let lookup_stream ~who outputs name =
  match List.assoc_opt name outputs with
  | Some vs -> vs
  | None ->
    invalid_arg
      (Printf.sprintf "%s: no output stream %s (run produced: %s)" who name
         (match outputs with
         | [] -> "none"
         | outs -> String.concat ", " (List.map fst outs)))

let lookup_feed ~who inputs name =
  match List.assoc_opt name inputs with
  | Some vs -> vs
  | None -> (
    match inputs with
    | [] ->
      invalid_arg (Printf.sprintf "%s: no packets for input %s" who name)
    | ins ->
      invalid_arg
        (Printf.sprintf "%s: no packets for input %s (supplied: %s)" who name
           (String.concat ", " (List.map fst ins))))
