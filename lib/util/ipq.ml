type t = {
  mutable prio : int array;
  mutable payload : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { prio = Array.make capacity 0; payload = Array.make capacity 0; len = 0 }

let is_empty q = q.len = 0
let length q = q.len

let grow q =
  let cap = Array.length q.prio in
  let prio = Array.make (2 * cap) 0 in
  let payload = Array.make (2 * cap) 0 in
  Array.blit q.prio 0 prio 0 q.len;
  Array.blit q.payload 0 payload 0 q.len;
  q.prio <- prio;
  q.payload <- payload

let push q prio payload =
  if q.len = Array.length q.prio then grow q;
  let i = ref q.len in
  q.len <- q.len + 1;
  (* sift up *)
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if q.prio.(parent) > prio then begin
      q.prio.(!i) <- q.prio.(parent);
      q.payload.(!i) <- q.payload.(parent);
      i := parent
    end
    else continue_ := false
  done;
  q.prio.(!i) <- prio;
  q.payload.(!i) <- payload

let peek_priority q = if q.len = 0 then -1 else q.prio.(0)

let sift_down q =
  let len = q.len in
  let prio = q.prio and payload = q.payload in
  let p = prio.(len) and x = payload.(len) in
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 in
    if l >= len then continue_ := false
    else begin
      let c = if l + 1 < len && prio.(l + 1) < prio.(l) then l + 1 else l in
      if prio.(c) < p then begin
        prio.(!i) <- prio.(c);
        payload.(!i) <- payload.(c);
        i := c
      end
      else continue_ := false
    end
  done;
  prio.(!i) <- p;
  payload.(!i) <- x

let pop_payload q =
  if q.len = 0 then invalid_arg "Ipq.pop_payload: empty"
  else begin
    let x = q.payload.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then sift_down q;
    x
  end

let clear q = q.len <- 0
