(** The repo-wide numeric and lookup-error conventions, in one place.

    Both engines, the job runner and the metric layers previously
    hand-rolled these; the rules are:

    - {b undefined ratios are [nan], never a spurious 0}: a metric over
      an empty run ([Machine_engine.am_fraction] with no dispatches,
      [Sim.Metrics.initiation_interval] with fewer than two arrivals)
      reports [Float.nan] so downstream consumers can distinguish "no
      data" from "measured zero";
    - {b stream lookups fail naming both sides}: asking a result for an
      output stream (or an engine for an input feed) that does not exist
      raises [Invalid_argument] naming the stream asked for {e and} the
      streams actually present — a bare [Not_found] names neither. *)

val ratio : float -> float -> float
(** [ratio num den] is [num /. den], or [Float.nan] when [den = 0.]. *)

val lookup_stream : who:string -> (string * 'a) list -> string -> 'a
(** [lookup_stream ~who outputs name] returns the named stream or raises
    [Invalid_argument] — "[who]: no output stream [name] (run produced:
    ...)". *)

val lookup_feed : who:string -> (string * 'a) list -> string -> 'a
(** As {!lookup_stream} for input feeds — "[who]: no packets for input
    [name] (supplied: ...)". *)
