(** Imperative binary-heap priority queue keyed by integer priority.

    Used as the event queue of the dataflow simulators: priorities are
    simulation timestamps, lower fires first.  Entries with equal priority
    are popped in unspecified order; simulator semantics never depend on
    intra-timestamp order because all arrivals at a time [t] are drained
    before any firing decision at [t]. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty queue. *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> int -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return a minimum-priority entry, or [None] if empty. *)

val peek_priority : 'a t -> int option
(** Priority of the minimum entry without removing it. *)

val peek : 'a t -> (int * 'a) option
(** The minimum entry without removing it. *)

val drop_min : 'a t -> unit
(** Remove the minimum entry (no-op on an empty queue). *)

val clear : 'a t -> unit

(** {2 Snapshot support}

    The pop order of equal-priority entries depends on the internal heap
    layout, so a simulator snapshot that must resume bit-identically has
    to capture the layout verbatim. *)

val to_array : 'a t -> (int * 'a) array
(** The heap array in index order (a valid binary heap). *)

val of_array : (int * 'a) array -> 'a t
(** Rebuild a queue with exactly the given heap layout.  The input must
    be a valid min-heap in array form — i.e. come from {!to_array}. *)
