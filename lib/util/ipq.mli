(** Allocation-free binary-heap priority queue over [int] payloads.

    The flat-arena engines encode events as integers (see
    [Sim.Engine]); this queue keeps them in two parallel [int] arrays so
    steady-state push/pop allocates nothing (the arrays double on
    overflow, amortized).  Priorities are simulation timestamps, lower
    pops first; equal-priority pop order is unspecified, which the
    simulators tolerate because all arrivals at a time are drained
    before any firing decision at that time. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val length : t -> int

val push : t -> int -> int -> unit
(** [push q prio x] inserts payload [x] with priority [prio]. *)

val peek_priority : t -> int
(** Minimum priority, or [-1] when empty (timestamps are
    non-negative). *)

val pop_payload : t -> int
(** Remove and return a minimum-priority payload.
    @raise Invalid_argument when empty. *)

val clear : t -> unit
