type 'a entry = { prio : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap.(0 .. size-1)] is a min-heap ordered by [prio]. *)
  mutable size : int;
}

let initial_capacity = 64

let create () = { heap = [||]; size = 0 }

let is_empty q = q.size = 0

let length q = q.size

let ensure_capacity q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let dummy = q.heap.(0) in
    let new_cap = if cap = 0 then initial_capacity else 2 * cap in
    let heap = Array.make new_cap dummy in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.heap.(i).prio < q.heap.(parent).prio then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.heap.(l).prio < q.heap.(!smallest).prio then smallest := l;
  if r < q.size && q.heap.(r).prio < q.heap.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q prio payload =
  let e = { prio; payload } in
  if Array.length q.heap = 0 then q.heap <- Array.make initial_capacity e;
  ensure_capacity q;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.prio, top.payload)
  end

let peek_priority q = if q.size = 0 then None else Some q.heap.(0).prio

let peek q =
  if q.size = 0 then None else Some (q.heap.(0).prio, q.heap.(0).payload)

let drop_min q =
  if q.size > 0 then begin
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end
  end

let clear q = q.size <- 0

(* The heap array in index order.  Entries with equal priority pop in an
   order determined by the heap layout, so a snapshot that must resume
   bit-identically has to preserve the layout verbatim — [of_array] on an
   array produced by [to_array] rebuilds the exact same heap. *)
let to_array q = Array.init q.size (fun i -> (q.heap.(i).prio, q.heap.(i).payload))

let of_array entries =
  let size = Array.length entries in
  if size = 0 then create ()
  else
    {
      heap =
        Array.init (max size initial_capacity) (fun i ->
            let prio, payload = entries.(min i (size - 1)) in
            { prio; payload });
      size;
    }
