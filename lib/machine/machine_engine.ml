open Dfg
module FP = Fault.Fault_plan
module San = Fault.Sanitizer
module SR = Fault.Stall_report

type stats = {
  dispatches : int;
  fu_ops : int;
  am_ops : int;
  result_packets : int;
  ack_packets : int;
  retransmits : int;
  corruptions : int;
  corrupt_detected : int;
  corrupt_healed : int;
  pe_dispatches : int array;
}

type result = {
  outputs : (string * (int * Value.t) list) list;
  stats : stats;
  end_time : int;
  quiescent : bool;
  stall : SR.t option;
  violations : Fault.Violation.t list;
  checkpoints : int;
  recoveries : int;
}

(* Recovery protocol state: one entry per result packet sent but not yet
   acknowledged.  The static dataflow discipline guarantees at most one
   packet is ever outstanding per (consumer, port) channel, so the
   channel sequence number both orders packets and identifies them. *)
type out_entry = {
  o_dst : int;
  o_port : int;
  o_seq : int;
  o_value : Value.t;
  mutable o_attempts : int;
}

type event =
  | Deliver of {
      src : int;
      dst : int;
      port : int;
      seq : int;
      value : Value.t;  (* payload as delivered (possibly corrupted) *)
      crc : int;  (* producer-side checksum of the payload as sent *)
    }
  | Ack of { dst : int; from_node : int; from_port : int; seq : int }
  | Retransmit of { src : int; dst : int; port : int; seq : int }

type recovery = Run_config.recovery = {
  checkpoint_every : int;
  retransmit_after : int;
  retransmit_backoff : int;
  max_retransmits : int;
}

let default_recovery = Run_config.default_recovery

let check_recovery r =
  if r.checkpoint_every < 0 then
    invalid_arg "Machine_engine: checkpoint-every < 0";
  if r.retransmit_after <= 0 then
    invalid_arg "Machine_engine: retransmit-after <= 0";
  if r.retransmit_backoff < 1 then
    invalid_arg "Machine_engine: retransmit-backoff < 1";
  if r.max_retransmits < 0 then
    invalid_arg "Machine_engine: max-retransmits < 0";
  r

(* Resend delay for the given 0-based attempt: exponential backoff
   capped at 16 base timeouts so a lossy channel cannot push the next
   probe arbitrarily far out. *)
let retry_delay r attempt =
  let cap = r.retransmit_after * 16 in
  let rec go d k = if k <= 0 || d >= cap then min d cap else go (d * r.retransmit_backoff) (k - 1) in
  go r.retransmit_after attempt

type cell = {
  node : Graph.node;
  operands : Value.t option array;
  mutable pending_acks : int;
  mutable queue : Value.t list;
  mutable queue_len : int;
  mutable cursor : int;
  stream : Value.t array;
  mutable collected : (int * Value.t) list;
  producer : int array;
  mutable pe : int;
  boundary : bool;  (* produces a completed array value (feeds an Output) *)
  (* recovery-only protocol state (inert without a recovery policy) *)
  recv_seq : int array;  (* per port: packets accepted so far *)
  cons_seq : int array;  (* per port: packets consumed and acknowledged *)
  mutable outstanding : out_entry list;
  sent : (int * int, int) Hashtbl.t;  (* (dst, port) -> packets sent *)
  (* (port, seq) of packets discarded as corrupt and not yet replaced by
     a clean copy — consulted when a retransmission finally lands so the
     heal is visible in the trace and counters *)
  mutable corrupt_pend : (int * int) list;
}

(* A pipelined server pool: each member accepts one operation per cycle;
   a request entering at [t] starts at the earliest slot of the least
   loaded member. *)
type pool = { mutable next_free : int array }

let pool_create n = { next_free = Array.make (max n 1) 0 }

let pool_start pool t =
  let best = ref 0 in
  Array.iteri
    (fun i f -> if f < pool.next_free.(!best) then best := i)
    pool.next_free;
  let start = max t pool.next_free.(!best) in
  pool.next_free.(!best) <- start + 1;
  start

(* Per-PE dispatch servers. *)
let pe_start pes pe t =
  let start = max t pes.(pe) in
  pes.(pe) <- start + 1;
  start

let uses_fu (op : Opcode.t) =
  match op with
  | Opcode.Arith _ | Opcode.Compare _ | Opcode.Logic _ | Opcode.Neg
  | Opcode.Not | Opcode.Math _ ->
    true
  | _ -> false

type cell_snapshot = {
  cs_operands : Value.t option array;
  cs_pending_acks : int;
  cs_queue : Value.t list;
  cs_cursor : int;
  cs_collected : (int * Value.t) list;
  cs_pe : int;
  cs_recv_seq : int array;
  cs_cons_seq : int array;
  cs_outstanding : out_entry list;
  cs_sent : ((int * int) * int) list;  (* sorted by key *)
  cs_corrupt_pend : (int * int) list;
}

type snapshot = {
  sn_time : int;
  sn_last_progress : int;
  sn_cells : cell_snapshot array;
  sn_events : (int * event) array;  (* exact heap layout, see Pqueue *)
  sn_pes : int array;
  sn_fus : int array;
  sn_ams : int array;
  sn_pe_dead : bool array;
  sn_stats : stats;
  sn_sanitizer : San.snapshot option;
}

type t = {
  graph : Graph.t;
  arch : Arch.t;
  max_time : int;
  tracer : Obs.Tracer.t;
  fault : FP.t option;
  sanitizer : San.t;
  watchdog : int option;
  recovery : recovery option;
  integrity : bool;
  compiled : bool;
  cells : cell array;
  arena : Arena.t;
  (* per-cell flat lookups precomputed from the arena: the dispatch path
     branches on a bool instead of re-matching the opcode every firing *)
  cell_uses_fu : bool array;
  (* compiled mode: per-cell firing closures, built lazily on the first
     [advance] (the closures capture [t] itself); [||] when interpreted *)
  mutable fire_fn : (unit -> bool) array;
  mutable events : event Df_util.Pqueue.t;
  pes : int array;
  fus : pool;
  ams : pool;
  pe_dead : bool array;
  mutable crash_done : bool;
  mutable dispatches : int;
  mutable fu_ops : int;
  mutable am_ops : int;
  mutable result_packets : int;
  mutable ack_packets : int;
  mutable retransmits : int;
  mutable corruptions : int;
  mutable corrupt_detected : int;
  mutable corrupt_healed : int;
  pe_dispatches : int array;
  mutable now : int;
  mutable last_progress : int;
  (* Deliver/Ack events still queued.  When this hits zero the only
     queued events are retransmission timers, which lets the engine ask
     whether they can ever change state again (see [advance]). *)
  mutable live_events : int;
  dirty : int Queue.t;
  in_dirty : bool array;
  mutable next_checkpoint : int;
  mutable last_snapshot : snapshot option;
  mutable checkpoints : int;
  mutable recoveries : int;
  mutable quiescent : bool;
  mutable watchdog_tripped : bool;
  mutable finished : bool;
}

let stats_of m : stats =
  {
    dispatches = m.dispatches;
    fu_ops = m.fu_ops;
    am_ops = m.am_ops;
    result_packets = m.result_packets;
    ack_packets = m.ack_packets;
    retransmits = m.retransmits;
    corruptions = m.corruptions;
    corrupt_detected = m.corrupt_detected;
    corrupt_healed = m.corrupt_healed;
    pe_dispatches = Array.copy m.pe_dispatches;
  }

(* ------------------------------------------------------------------ *)
(* snapshot / restore                                                 *)
(* ------------------------------------------------------------------ *)

let copy_entry e =
  {
    o_dst = e.o_dst;
    o_port = e.o_port;
    o_seq = e.o_seq;
    o_value = e.o_value;
    o_attempts = e.o_attempts;
  }

let snapshot_cell c =
  {
    cs_operands = Array.copy c.operands;
    cs_pending_acks = c.pending_acks;
    cs_queue = c.queue;
    cs_cursor = c.cursor;
    cs_collected = c.collected;
    cs_pe = c.pe;
    cs_recv_seq = Array.copy c.recv_seq;
    cs_cons_seq = Array.copy c.cons_seq;
    cs_outstanding = List.map copy_entry c.outstanding;
    cs_sent =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.sent []
      |> List.sort compare;
    cs_corrupt_pend = c.corrupt_pend;
  }

let snapshot m =
  {
    sn_time = m.now;
    sn_last_progress = m.last_progress;
    sn_cells = Array.map snapshot_cell m.cells;
    sn_events = Df_util.Pqueue.to_array m.events;
    sn_pes = Array.copy m.pes;
    sn_fus = Array.copy m.fus.next_free;
    sn_ams = Array.copy m.ams.next_free;
    sn_pe_dead = Array.copy m.pe_dead;
    sn_stats = stats_of m;
    sn_sanitizer = San.snapshot m.sanitizer;
  }

let mark_all m =
  Queue.clear m.dirty;
  Array.fill m.in_dirty 0 (Array.length m.in_dirty) false;
  for id = 0 to Array.length m.cells - 1 do
    m.in_dirty.(id) <- true;
    Queue.add id m.dirty
  done

let restore m snap =
  if Array.length snap.sn_cells <> Array.length m.cells then
    invalid_arg "Machine_engine.restore: snapshot is for a different graph";
  if
    Array.length snap.sn_pes <> Array.length m.pes
    || Array.length snap.sn_fus <> Array.length m.fus.next_free
    || Array.length snap.sn_ams <> Array.length m.ams.next_free
  then invalid_arg "Machine_engine.restore: snapshot is for a different arch";
  m.now <- snap.sn_time;
  m.last_progress <- snap.sn_last_progress;
  Array.iteri
    (fun id cs ->
      let c = m.cells.(id) in
      Array.blit cs.cs_operands 0 c.operands 0 (Array.length c.operands);
      c.pending_acks <- cs.cs_pending_acks;
      c.queue <- cs.cs_queue;
      c.queue_len <- List.length cs.cs_queue;
      c.cursor <- cs.cs_cursor;
      c.collected <- cs.cs_collected;
      c.pe <- cs.cs_pe;
      Array.blit cs.cs_recv_seq 0 c.recv_seq 0 (Array.length c.recv_seq);
      Array.blit cs.cs_cons_seq 0 c.cons_seq 0 (Array.length c.cons_seq);
      c.outstanding <- List.map copy_entry cs.cs_outstanding;
      Hashtbl.reset c.sent;
      List.iter (fun (k, v) -> Hashtbl.replace c.sent k v) cs.cs_sent;
      c.corrupt_pend <- cs.cs_corrupt_pend)
    snap.sn_cells;
  m.events <- Df_util.Pqueue.of_array snap.sn_events;
  m.live_events <-
    Array.fold_left
      (fun acc (_, ev) ->
        match ev with Retransmit _ -> acc | Deliver _ | Ack _ -> acc + 1)
      0 snap.sn_events;
  Array.blit snap.sn_pes 0 m.pes 0 (Array.length m.pes);
  m.fus.next_free <- Array.copy snap.sn_fus;
  m.ams.next_free <- Array.copy snap.sn_ams;
  Array.blit snap.sn_pe_dead 0 m.pe_dead 0 (Array.length m.pe_dead);
  m.dispatches <- snap.sn_stats.dispatches;
  m.fu_ops <- snap.sn_stats.fu_ops;
  m.am_ops <- snap.sn_stats.am_ops;
  m.result_packets <- snap.sn_stats.result_packets;
  m.ack_packets <- snap.sn_stats.ack_packets;
  m.retransmits <- snap.sn_stats.retransmits;
  m.corruptions <- snap.sn_stats.corruptions;
  m.corrupt_detected <- snap.sn_stats.corrupt_detected;
  m.corrupt_healed <- snap.sn_stats.corrupt_healed;
  Array.blit snap.sn_stats.pe_dispatches 0 m.pe_dispatches 0
    (Array.length m.pe_dispatches);
  San.restore m.sanitizer snap.sn_sanitizer;
  m.quiescent <- false;
  m.watchdog_tripped <- false;
  m.finished <- false;
  (match m.recovery with
  | Some r when r.checkpoint_every > 0 ->
    m.next_checkpoint <- m.now + r.checkpoint_every
  | _ -> ());
  mark_all m

(* ------------------------------------------------------------------ *)
(* construction                                                       *)
(* ------------------------------------------------------------------ *)

(* The machine model's default time budget is larger than the graph
   engine's: resource latencies stretch the same workload. *)
let default_max_time = 30_000_000

let default_config = Run_config.(default |> with_max_time default_max_time)

let create_cfg (cfg : Run_config.t) ~(arch : Arch.t) g ~inputs =
  let max_time = cfg.Run_config.max_time in
  let tracer = cfg.Run_config.tracer in
  let fault = cfg.Run_config.fault in
  let sanitizer = cfg.Run_config.sanitizer in
  let watchdog = cfg.Run_config.watchdog in
  let recovery = cfg.Run_config.recovery in
  let integrity = cfg.Run_config.integrity in
  (match Graph.validate g with
  | Ok () -> ()
  | Error es ->
    invalid_arg ("Machine_engine.run: invalid graph:\n" ^ String.concat "\n" es));
  (match watchdog with
  | Some k when k <= 0 -> invalid_arg "Machine_engine.run: watchdog window <= 0"
  | _ -> ());
  let recovery = Option.map check_recovery recovery in
  let arena = Arena.build g in
  let n = Graph.node_count g in
  let producers = Graph.producers g in
  (* block boundaries: producers feeding an Output cell *)
  let boundary = Array.make n false in
  Graph.iter_nodes g (fun node ->
      match node.Graph.op with
      | Opcode.Output _ -> (
        match producers.(node.Graph.id).(0) with
        | [| (src, _) |] -> boundary.(src) <- true
        | _ -> ())
      | _ -> ());
  let cells =
    Array.init n (fun id ->
        let node = Graph.node g id in
        let arity = Array.length node.Graph.inputs in
        let operands = Array.make arity None in
        let producer = Array.make arity (-1) in
        Array.iteri
          (fun port binding ->
            (match producers.(id).(port) with
            | [| (src, _) |] -> producer.(port) <- src
            | _ -> ());
            match binding with
            | Graph.In_arc_init v -> operands.(port) <- Some v
            | Graph.In_arc | Graph.In_const _ -> ())
          node.Graph.inputs;
        let stream =
          match node.Graph.op with
          | Opcode.Input name ->
            Array.of_list
              (Df_util.Conventions.lookup_feed ~who:"Machine_engine.run"
                 inputs name)
          | _ -> [||]
        in
        {
          node;
          operands;
          pending_acks = 0;
          queue = [];
          queue_len = 0;
          cursor = 0;
          stream;
          collected = [];
          producer;
          pe = id mod max 1 arch.Arch.n_pe;
          boundary = boundary.(id);
          recv_seq = Array.make arity 0;
          cons_seq = Array.make arity 0;
          outstanding = [];
          sent = Hashtbl.create 4;
          corrupt_pend = [];
        })
  in
  Array.iter
    (fun cell ->
      Array.iteri
        (fun port binding ->
          match binding with
          | Graph.In_arc_init _ ->
            let src = cell.producer.(port) in
            if src >= 0 then
              cells.(src).pending_acks <- cells.(src).pending_acks + 1
          | Graph.In_arc | Graph.In_const _ -> ())
        cell.node.Graph.inputs)
    cells;
  let events : event Df_util.Pqueue.t = Df_util.Pqueue.create () in
  let m =
    {
      graph = g;
      arch;
      max_time;
      tracer;
      fault;
      sanitizer;
      watchdog;
      recovery;
      integrity;
      compiled = cfg.Run_config.compiled;
      cells;
      arena;
      cell_uses_fu =
        Array.init n (fun id -> uses_fu (Graph.node g id).Graph.op);
      fire_fn = [||];
      events;
      pes = Array.make (max 1 arch.Arch.n_pe) 0;
      fus = pool_create arch.Arch.n_fu;
      ams = pool_create arch.Arch.n_am;
      pe_dead = Array.make (max 1 arch.Arch.n_pe) false;
      crash_done = false;
      dispatches = 0;
      fu_ops = 0;
      am_ops = 0;
      result_packets = 0;
      ack_packets = 0;
      retransmits = 0;
      corruptions = 0;
      corrupt_detected = 0;
      corrupt_healed = 0;
      pe_dispatches = Array.make (max 1 arch.Arch.n_pe) 0;
      now = 0;
      last_progress = 0;
      live_events = 0;
      dirty = Queue.create ();
      in_dirty = Array.make n false;
      next_checkpoint = max_int;
      last_snapshot = None;
      checkpoints = 0;
      recoveries = 0;
      quiescent = false;
      watchdog_tripped = false;
      finished = false;
    }
  in
  (match recovery with
  | None -> ()
  | Some r ->
    (* Program-load tokens are logically packets the producer already
       sent: give each a protocol entry and a retransmission timer so a
       lost acknowledge for an initial token is recoverable too. *)
    Array.iter
      (fun cell ->
        Array.iteri
          (fun port binding ->
            match binding with
            | Graph.In_arc_init v ->
              let src = cell.producer.(port) in
              cell.recv_seq.(port) <- 1;
              if src >= 0 then begin
                let p = cells.(src) in
                p.outstanding <-
                  {
                    o_dst = cell.node.Graph.id;
                    o_port = port;
                    o_seq = 0;
                    o_value = v;
                    o_attempts = 0;
                  }
                  :: p.outstanding;
                Hashtbl.replace p.sent (cell.node.Graph.id, port) 1;
                Df_util.Pqueue.push events r.retransmit_after
                  (Retransmit
                     { src; dst = cell.node.Graph.id; port; seq = 0 })
              end
            | Graph.In_arc | Graph.In_const _ -> ())
          cell.node.Graph.inputs)
      cells;
    if r.checkpoint_every > 0 then m.next_checkpoint <- r.checkpoint_every;
    (* the implicit t=0 checkpoint: a crash before the first periodic
       checkpoint rolls back to program load *)
    m.last_snapshot <- Some (snapshot m));
  mark_all m;
  m

(* ------------------------------------------------------------------ *)
(* the event loop                                                     *)
(* ------------------------------------------------------------------ *)

let emit_fault m kind ~src ~dst ~extra =
  if Obs.Tracer.enabled m.tracer then
    Obs.Tracer.emit m.tracer
      (Obs.Event.Fault_injected
         { time = m.now; track = m.cells.(dst).pe; kind; src; dst; extra })

let emit_violation m (v : Fault.Violation.t) =
  if Obs.Tracer.enabled m.tracer then
    Obs.Tracer.emit m.tracer
      (Obs.Event.Violation
         { time = v.Fault.Violation.v_time;
           track = m.cells.(v.Fault.Violation.v_node).pe;
           node = v.Fault.Violation.v_node;
           label = v.Fault.Violation.v_label;
           kind = Fault.Violation.kind_name v.Fault.Violation.v_kind;
           detail = v.Fault.Violation.v_detail })

let mark m id =
  if not m.in_dirty.(id) then begin
    m.in_dirty.(id) <- true;
    Queue.add id m.dirty
  end

let schedule m t ev =
  (match ev with
  | Retransmit _ -> ()
  | Deliver _ | Ack _ -> m.live_events <- m.live_events + 1);
  Df_util.Pqueue.push m.events t ev

(* Deliver one result packet copy to [ep], subject to network faults.
   [seq] identifies the packet on its channel when recovery is on.  The
   checksum travels with the packet as computed by the producer; a
   corruption fault flips a payload bit *after* that, so the mismatch is
   observable at the consumer iff integrity checking is on. *)
let deliver_packet m ~src ~dst ~port ~seq ~value ~base =
  let crc = Integrity.checksum_value value in
  let deliver_at =
    match m.fault with
    | None -> base
    | Some f ->
      let extra = FP.result_delay f ~time:base ~src ~dst ~port in
      if extra > 0 then emit_fault m "delay" ~src ~dst ~extra;
      base + extra
  in
  let dropped =
    match m.fault with
    | None -> false
    | Some f -> FP.drop_result f ~time:base ~src ~dst ~port
  in
  if dropped then
    (* the packet is lost in the routing network: without recovery its
       consumer starves; with recovery the retransmission timer resends *)
    emit_fault m "drop" ~src ~dst ~extra:0
  else begin
    let value =
      match m.fault with
      | None -> value
      | Some f -> (
        match FP.corrupt_result f ~time:base ~src ~dst ~port value with
        | None -> value
        | Some corrupted ->
          m.corruptions <- m.corruptions + 1;
          if Obs.Tracer.enabled m.tracer then
            Obs.Tracer.emit m.tracer
              (Obs.Event.Corrupt_injected
                 { time = base; track = m.cells.(dst).pe; src; dst; port;
                   was = Value.to_string value;
                   became = Value.to_string corrupted });
          corrupted)
    in
    schedule m deliver_at (Deliver { src; dst; port; seq; value; crc });
    if Obs.Tracer.enabled m.tracer then
      Obs.Tracer.emit m.tracer
        (Obs.Event.Deliver
           { time = deliver_at; track = m.cells.(dst).pe; src; dst; port;
             value = Value.to_string value })
  end;
  deliver_at

(* Fire a cell: PE dispatch, optional FU execution, then packet
   delivery through RN or AM depending on the policy and whether the
   producer is a block boundary. *)
let send m cell slot value ~ready_at =
  let src = cell.node.Graph.id in
  let a = m.arena in
  let s = a.Arena.slot_base.(src) + slot in
  let db = a.Arena.dest_base.(s) and de = a.Arena.dest_base.(s + 1) in
  for d = db to de - 1 do
    let gp = a.Arena.dest_port.(d) in
    let ep_node = a.Arena.port_cell.(gp) in
    let ep_port = a.Arena.port_sub.(gp) in
    m.result_packets <- m.result_packets + 1;
    let am_latency () =
      m.arch.Arch.am_latency
      + (match m.fault with
        | None -> 0
        | Some f -> FP.am_extra f ~node:src ~time:ready_at)
    in
    let base =
      match m.arch.Arch.array_policy with
      | Arch.Stored when cell.boundary -> (
        match a.Arena.ops.(ep_node) with
        | Opcode.Output _ ->
          (* final results are stored once *)
          m.am_ops <- m.am_ops + 1;
          pool_start m.ams ready_at + am_latency ()
        | _ ->
          (* write by the producer, read by the consumer *)
          m.am_ops <- m.am_ops + 2;
          let write_done = pool_start m.ams ready_at + am_latency () in
          pool_start m.ams write_done + am_latency ())
      | _ -> ready_at + m.arch.Arch.rn_latency
    in
    let seq =
      match m.recovery with
      | None -> 0
      | Some r ->
        let key = (ep_node, ep_port) in
        let seq = Option.value ~default:0 (Hashtbl.find_opt cell.sent key) in
        Hashtbl.replace cell.sent key (seq + 1);
        cell.outstanding <-
          {
            o_dst = ep_node;
            o_port = ep_port;
            o_seq = seq;
            o_value = value;
            o_attempts = 0;
          }
          :: cell.outstanding;
        schedule m
          (ready_at + r.retransmit_after)
          (Retransmit { src; dst = ep_node; port = ep_port; seq });
        seq
    in
    let deliver_at =
      deliver_packet m ~src ~dst:ep_node ~port:ep_port ~seq ~value ~base
    in
    (* a misbehaving routing network may deliver the same result
       packet twice — without recovery, the breach the sanitizer
       exists to catch; with recovery, deduplicated by sequence *)
    match m.fault with
    | Some f
      when FP.duplicate f ~time:ready_at ~src ~dst:ep_node ~port:ep_port ->
      m.result_packets <- m.result_packets + 1;
      emit_fault m "dup" ~src ~dst:ep_node ~extra:0;
      schedule m (deliver_at + 1)
        (Deliver
           { src; dst = ep_node; port = ep_port; seq; value;
             crc = Integrity.checksum_value value })
    | _ -> ()
  done;
  San.on_send m.sanitizer ~time:ready_at ~node:src ~count:(de - db);
  cell.pending_acks <- cell.pending_acks + (de - db)

(* Send (or resend) an acknowledge for the packet [seq] consumed on
   [from.port], subject to ack faults. *)
let send_ack m ~from_node ~from_port ~seq ~dst ~acked_at =
  m.ack_packets <- m.ack_packets + 1;
  let dropped =
    match m.fault with
    | None -> false
    | Some f -> FP.drop_ack f ~time:acked_at ~src:from_node ~dst
  in
  if dropped then
    (* the acknowledge is lost in the network: without recovery its
       producer starves; with recovery the producer's retransmission
       provokes a fresh acknowledge *)
    emit_fault m "drop-ack" ~src:from_node ~dst ~extra:0
  else begin
    let extra =
      match m.fault with
      | None -> 0
      | Some f -> FP.ack_delay f ~time:acked_at ~src:from_node ~dst
    in
    if extra > 0 then emit_fault m "ack-delay" ~src:from_node ~dst ~extra;
    let at = acked_at + m.arch.Arch.rn_latency + extra in
    schedule m at (Ack { dst; from_node; from_port; seq });
    if Obs.Tracer.enabled m.tracer then
      Obs.Tracer.emit m.tracer
        (Obs.Event.Ack
           { time = at; track = m.cells.(dst).pe; src = from_node; dst })
  end

let consume m cell port ~acked_at =
  match cell.node.Graph.inputs.(port) with
  | Graph.In_const _ -> ()
  | Graph.In_arc | Graph.In_arc_init _ ->
    (match
       San.on_consume m.sanitizer ~time:m.now ~node:cell.node.Graph.id ~port
     with
    | Some v -> emit_violation m v
    | None -> ());
    cell.operands.(port) <- None;
    let src = cell.producer.(port) in
    if src >= 0 then begin
      let seq = cell.cons_seq.(port) in
      cell.cons_seq.(port) <- seq + 1;
      send_ack m ~from_node:cell.node.Graph.id ~from_port:port ~seq ~dst:src
        ~acked_at
    end

let ready cell port =
  match cell.node.Graph.inputs.(port) with
  | Graph.In_const v -> Some v
  | Graph.In_arc | Graph.In_arc_init _ -> cell.operands.(port)

let dispatch m cell =
  m.dispatches <- m.dispatches + 1;
  m.pe_dispatches.(cell.pe) <- m.pe_dispatches.(cell.pe) + 1;
  let stall =
    match m.fault with
    | None -> 0
    | Some f -> FP.pe_stall f ~pe:cell.pe ~time:m.now
  in
  if stall > 0 then
    emit_fault m "pe-stall" ~src:cell.node.Graph.id ~dst:cell.node.Graph.id
      ~extra:stall;
  let start = pe_start m.pes cell.pe (m.now + stall) in
  let done_at =
    if m.cell_uses_fu.(cell.node.Graph.id) then begin
      m.fu_ops <- m.fu_ops + 1;
      let fu_latency =
        m.arch.Arch.fu_latency
        + (match m.fault with
          | None -> 0
          | Some f -> FP.fu_extra f ~node:cell.node.Graph.id ~time:start)
      in
      pool_start m.fus (start + 1) + fu_latency
    end
    else start + 1
  in
  if Obs.Tracer.enabled m.tracer then
    Obs.Tracer.emit m.tracer
      (Obs.Event.Fire
         { time = start; dur = max 1 (done_at - start); track = cell.pe;
           node = cell.node.Graph.id; label = cell.node.Graph.label;
           op = Opcode.name cell.node.Graph.op });
  done_at

(* ---- firing rules, one helper per opcode family; the interpreted
   dispatcher and the compiled closures both drive these, so the two
   modes are bit-identical by construction ---- *)

let all_ready cell =
  let arity = Array.length cell.node.Graph.inputs in
  let rec go p = p >= arity || (ready cell p <> None && go (p + 1)) in
  go 0

let opnd cell port = Option.get (ready cell port)

let finish_compute m cell value =
  let done_at = dispatch m cell in
  Array.iteri
    (fun port _ -> consume m cell port ~acked_at:done_at)
    cell.node.Graph.inputs;
  send m cell 0 value ~ready_at:done_at;
  true

let fire_gate m cell ~tgate =
  if cell.pending_acks = 0 && all_ready cell then begin
    let ctl = Value.to_bool (opnd cell 0) in
    let data = opnd cell 1 in
    let pass = if tgate then ctl else not ctl in
    let done_at = dispatch m cell in
    consume m cell 0 ~acked_at:done_at;
    consume m cell 1 ~acked_at:done_at;
    if pass then send m cell 0 data ~ready_at:done_at;
    true
  end
  else false

let fire_switch m cell =
  if cell.pending_acks = 0 && all_ready cell then begin
    let ctl = Value.to_bool (opnd cell 0) in
    let data = opnd cell 1 in
    let done_at = dispatch m cell in
    consume m cell 0 ~acked_at:done_at;
    consume m cell 1 ~acked_at:done_at;
    send m cell (if ctl then 0 else 1) data ~ready_at:done_at;
    true
  end
  else false

let fire_merge m cell =
  if cell.pending_acks = 0 then begin
    match ready cell 0 with
    | None -> false
    | Some ctl -> (
      let sel = if Value.to_bool ctl then 1 else 2 in
      match ready cell sel with
      | None -> false
      | Some data ->
        let done_at = dispatch m cell in
        consume m cell 0 ~acked_at:done_at;
        consume m cell sel ~acked_at:done_at;
        send m cell 0 data ~ready_at:done_at;
        true)
  end
  else false

let fire_merge_switch m cell =
  if cell.pending_acks = 0 then begin
    match (ready cell 0, ready cell 3) with
    | Some ctl, Some d -> (
      let sel = if Value.to_bool ctl then 1 else 2 in
      match ready cell sel with
      | None -> false
      | Some data ->
        let done_at = dispatch m cell in
        consume m cell 0 ~acked_at:done_at;
        consume m cell sel ~acked_at:done_at;
        consume m cell 3 ~acked_at:done_at;
        send m cell 0 data ~ready_at:done_at;
        if Value.to_bool d then send m cell 1 data ~ready_at:done_at;
        true)
    | _ -> false
  end
  else false

let fire_fifo m cell k =
  let progressed = ref false in
  if cell.pending_acks = 0 && cell.queue_len > 0 then begin
    match cell.queue with
    | v :: rest ->
      cell.queue <- rest;
      cell.queue_len <- cell.queue_len - 1;
      let done_at = dispatch m cell in
      send m cell 0 v ~ready_at:done_at;
      progressed := true
    | [] -> assert false
  end;
  (match cell.operands.(0) with
  | Some v when cell.queue_len < k ->
    cell.queue <- cell.queue @ [ v ];
    cell.queue_len <- cell.queue_len + 1;
    consume m cell 0 ~acked_at:m.now;
    progressed := true
  | _ -> ());
  !progressed

let fire_bool_source m cell seq =
  if cell.pending_acks = 0 then begin
    match Ctlseq.nth seq cell.cursor with
    | None -> false
    | Some b ->
      cell.cursor <- cell.cursor + 1;
      let done_at = dispatch m cell in
      send m cell 0 (Value.Bool b) ~ready_at:done_at;
      true
  end
  else false

let fire_iota m cell ~lo ~hi ~rep =
  if cell.pending_acks = 0 then begin
    let span = hi - lo + 1 in
    let v = lo + (cell.cursor / rep mod span) in
    cell.cursor <- cell.cursor + 1;
    let done_at = dispatch m cell in
    send m cell 0 (Value.Int v) ~ready_at:done_at;
    true
  end
  else false

let fire_input m cell =
  if cell.pending_acks = 0 && cell.cursor < Array.length cell.stream
  then begin
    let v = cell.stream.(cell.cursor) in
    cell.cursor <- cell.cursor + 1;
    let done_at = dispatch m cell in
    send m cell 0 v ~ready_at:done_at;
    true
  end
  else false

let fire_output m cell =
  match cell.operands.(0) with
  | Some v ->
    cell.collected <- (m.now, v) :: cell.collected;
    (match
       San.on_output m.sanitizer ~time:m.now ~node:cell.node.Graph.id
     with
    | Some viol -> emit_violation m viol
    | None -> ());
    let done_at = dispatch m cell in
    consume m cell 0 ~acked_at:done_at;
    true
  | None -> false

let fire_sink m cell =
  match cell.operands.(0) with
  | Some _ ->
    let done_at = dispatch m cell in
    consume m cell 0 ~acked_at:done_at;
    true
  | None -> false

let try_fire m cell =
  let open Opcode in
  if m.pe_dead.(cell.pe) then false
  else
    let node = cell.node in
    match node.Graph.op with
    | Id | Arith _ | Compare _ | Logic _ | Neg | Not | Math _ ->
      if cell.pending_acks = 0 && all_ready cell then
        let value =
          match node.Graph.op with
          | Id -> opnd cell 0
          | Arith op -> Opcode.apply_arith op (opnd cell 0) (opnd cell 1)
          | Compare op -> Opcode.apply_cmp op (opnd cell 0) (opnd cell 1)
          | Logic op -> Opcode.apply_logic op (opnd cell 0) (opnd cell 1)
          | Math mf -> Opcode.apply_math mf (opnd cell 0)
          | Neg -> (
            match opnd cell 0 with
            | Value.Int i -> Value.Int (-i)
            | Value.Real f -> Value.Real (-.f)
            | Value.Bool _ -> invalid_arg "NEG of boolean")
          | Not -> Value.Bool (not (Value.to_bool (opnd cell 0)))
          | _ -> assert false
        in
        finish_compute m cell value
      else false
    | Tgate -> fire_gate m cell ~tgate:true
    | Fgate -> fire_gate m cell ~tgate:false
    | Switch -> fire_switch m cell
    | Merge -> fire_merge m cell
    | Merge_switch -> fire_merge_switch m cell
    | Fifo k -> fire_fifo m cell k
    | Bool_source seq -> fire_bool_source m cell seq
    | Iota { lo; hi; rep } -> fire_iota m cell ~lo ~hi ~rep
    | Input _ -> fire_input m cell
    | Output _ -> fire_output m cell
    | Sink -> fire_sink m cell

(* Compiled mode: the opcode dispatch above runs once per cell at
   program load; each closure re-checks only its own cell's readiness
   and drives the same helpers.  [cell.pe] is read at call time, so
   crash re-hosting and rollback keep working under compiled mode. *)
let compile_cell m id : unit -> bool =
  let open Opcode in
  let cell = m.cells.(id) in
  let compute value_fn () =
    if m.pe_dead.(cell.pe) then false
    else if cell.pending_acks = 0 && all_ready cell then
      finish_compute m cell (value_fn ())
    else false
  in
  let guarded fire () = if m.pe_dead.(cell.pe) then false else fire m cell in
  match cell.node.Graph.op with
  | Id -> compute (fun () -> opnd cell 0)
  | Arith op ->
    let f = Opcode.apply_arith op in
    compute (fun () -> f (opnd cell 0) (opnd cell 1))
  | Compare op ->
    let f = Opcode.apply_cmp op in
    compute (fun () -> f (opnd cell 0) (opnd cell 1))
  | Logic op ->
    let f = Opcode.apply_logic op in
    compute (fun () -> f (opnd cell 0) (opnd cell 1))
  | Math mf ->
    let f = Opcode.apply_math mf in
    compute (fun () -> f (opnd cell 0))
  | Neg ->
    compute (fun () ->
        match opnd cell 0 with
        | Value.Int i -> Value.Int (-i)
        | Value.Real f -> Value.Real (-.f)
        | Value.Bool _ -> invalid_arg "NEG of boolean")
  | Not -> compute (fun () -> Value.Bool (not (Value.to_bool (opnd cell 0))))
  | Tgate -> guarded (fun m cell -> fire_gate m cell ~tgate:true)
  | Fgate -> guarded (fun m cell -> fire_gate m cell ~tgate:false)
  | Switch -> guarded fire_switch
  | Merge -> guarded fire_merge
  | Merge_switch -> guarded fire_merge_switch
  | Fifo k -> guarded (fun m cell -> fire_fifo m cell k)
  | Bool_source seq -> guarded (fun m cell -> fire_bool_source m cell seq)
  | Iota { lo; hi; rep } ->
    guarded (fun m cell -> fire_iota m cell ~lo ~hi ~rep)
  | Input _ -> guarded fire_input
  | Output _ -> guarded fire_output
  | Sink -> guarded fire_sink

(* Fire one cell through whichever dispatcher this run uses.  The
   closure table is built lazily on first use: the closures capture the
   machine itself, which does not exist yet inside [create_cfg]. *)
let step m id =
  if m.compiled then begin
    if Array.length m.fire_fn = 0 then
      m.fire_fn <- Array.init (Array.length m.cells) (compile_cell m);
    m.fire_fn.(id) ()
  end
  else try_fire m m.cells.(id)

let find_outstanding cell ~dst ~port ~seq =
  List.find_opt
    (fun e -> e.o_dst = dst && e.o_port = port && e.o_seq = seq)
    cell.outstanding

let remove_outstanding cell ~dst ~port ~seq =
  cell.outstanding <-
    List.filter
      (fun e -> not (e.o_dst = dst && e.o_port = port && e.o_seq = seq))
      cell.outstanding

let apply_event m = function
  | Deliver { src; dst; port; seq; value; crc } -> (
    let cell = m.cells.(dst) in
    if m.integrity && not (Integrity.verify_value value crc) then begin
      (* checksum mismatch: the payload was corrupted in flight.  Discard
         the packet — from here on it behaves exactly like a drop, so
         without recovery the consumer starves (and the wedge surfaces
         through watchdog/conservation), while with recovery the
         producer's retransmission timer resends a clean copy. *)
      m.corrupt_detected <- m.corrupt_detected + 1;
      if
        m.recovery <> None && seq >= cell.recv_seq.(port)
        && not (List.mem (port, seq) cell.corrupt_pend)
      then cell.corrupt_pend <- (port, seq) :: cell.corrupt_pend;
      if Obs.Tracer.enabled m.tracer then
        Obs.Tracer.emit m.tracer
          (Obs.Event.Corrupt_detected
             { time = m.now; track = cell.pe; src; dst; port; seq })
    end
    else
      match m.recovery with
      | Some _ when seq < cell.recv_seq.(port) ->
        (* stale duplicate (retransmission of a packet already accepted,
           or a network dup).  If the original was already consumed, its
           acknowledge may have been the casualty — acknowledge again; if
           it is still resident, stay silent: the pending acknowledge
           will go out at consume time. *)
        if seq < cell.cons_seq.(port) then
          send_ack m ~from_node:dst ~from_port:port ~seq ~dst:src
            ~acked_at:m.now
      | _ ->
        (match San.on_deliver m.sanitizer ~time:m.now ~src ~dst ~port with
        | Some v -> emit_violation m v (* drop: engine state is untrustworthy *)
        | None -> (
          if m.recovery <> None then begin
            cell.recv_seq.(port) <- seq + 1;
            if List.mem (port, seq) cell.corrupt_pend then begin
              cell.corrupt_pend <-
                List.filter (fun ps -> ps <> (port, seq)) cell.corrupt_pend;
              m.corrupt_healed <- m.corrupt_healed + 1;
              if Obs.Tracer.enabled m.tracer then
                Obs.Tracer.emit m.tracer
                  (Obs.Event.Corrupt_healed
                     { time = m.now; track = cell.pe; src; dst; port; seq })
            end
          end;
          match cell.operands.(port) with
          | Some _ ->
            if not (San.enabled m.sanitizer) then
              invalid_arg
                (Printf.sprintf "machine: arc capacity violated at %s#%d.%d"
                   cell.node.Graph.label dst port)
          | None -> cell.operands.(port) <- Some value));
        mark m dst)
  | Ack { dst; from_node; from_port; seq } -> (
    let cell = m.cells.(dst) in
    match m.recovery with
    | None ->
      (match San.on_ack m.sanitizer ~time:m.now ~dst with
      | Some v -> emit_violation m v
      | None -> cell.pending_acks <- cell.pending_acks - 1);
      mark m dst
    | Some _ -> (
      (* acknowledges are idempotent under recovery: only the first one
         for a given packet frees the producer *)
      match find_outstanding cell ~dst:from_node ~port:from_port ~seq with
      | None -> ()
      | Some _ ->
        remove_outstanding cell ~dst:from_node ~port:from_port ~seq;
        (match San.on_ack m.sanitizer ~time:m.now ~dst with
        | Some v -> emit_violation m v
        | None -> cell.pending_acks <- cell.pending_acks - 1);
        mark m dst))
  | Retransmit { src; dst; port; seq } -> (
    match m.recovery with
    | None -> ()
    | Some r -> (
      let cell = m.cells.(src) in
      match find_outstanding cell ~dst ~port ~seq with
      | None -> ()  (* acknowledged in the meantime *)
      | Some e ->
        let consumer = m.cells.(dst) in
        if
          consumer.recv_seq.(port) > seq && consumer.cons_seq.(port) <= seq
        then
          (* The packet is resident, unconsumed, at the consumer: a
             resend could only be deduplicated, and the acknowledge is
             not due until the consumer fires.  Hold the timer without
             charging an attempt — the retry budget is for packets and
             acknowledges actually missing, not for a consumer that is
             slow to drain its store.  (Hardware would learn this from
             a receipt status piggybacked on the routing network; the
             simulator reads the consumer's store directly.) *)
          schedule m
            (m.now + retry_delay r e.o_attempts)
            (Retransmit { src; dst; port; seq })
        else if e.o_attempts < r.max_retransmits then begin
          e.o_attempts <- e.o_attempts + 1;
          m.retransmits <- m.retransmits + 1;
          m.result_packets <- m.result_packets + 1;
          if Obs.Tracer.enabled m.tracer then
            Obs.Tracer.emit m.tracer
              (Obs.Event.Retransmit
                 { time = m.now; track = cell.pe; src; dst; port;
                   attempt = e.o_attempts });
          ignore
            (deliver_packet m ~src ~dst ~port ~seq ~value:e.o_value
               ~base:(m.now + m.arch.Arch.rn_latency));
          schedule m
            (m.now + retry_delay r e.o_attempts)
            (Retransmit { src; dst; port; seq });
          (* an active resend is protocol liveness, not silence: the
             no-progress watchdog must not fire while the backoff chain
             is still probing.  A truly wedged channel still terminates:
             once retries are exhausted nothing reschedules and the
             queue drains to a quiescent (and visibly wrong) stop. *)
          m.last_progress <- m.now
        end
        (* else: retries exhausted — the channel is declared lost and the
           wedge surfaces as a stall / conservation violation *)))

(* Drop timer events whose packet has been acknowledged: they carry no
   work, and letting them advance the clock would make a clean drain
   look like a watchdog stall. *)
(* True when every unacknowledged packet in the system is already
   resident, unconsumed, at its consumer.  Resending any of them can
   only produce duplicates that the sequence check silently drops, and
   their acknowledges only come due if the consumer fires — so if the
   dirty queue is drained and no Deliver/Ack is in flight, no future
   event can change machine state: the remaining retransmission timers
   are noise and the machine is quiescent.  (This is what lets runs
   with free-running generator cells terminate: the generator's final
   token parks on an arc forever, and without this test its timer would
   keep the event queue alive until the watchdog misfired.) *)
let only_futile_outstanding m =
  Array.for_all
    (fun cell ->
      List.for_all
        (fun e ->
          let c = m.cells.(e.o_dst) in
          c.recv_seq.(e.o_port) > e.o_seq && c.cons_seq.(e.o_port) <= e.o_seq)
        cell.outstanding)
    m.cells

let rec skip_stale_retransmits m =
  match Df_util.Pqueue.peek m.events with
  | Some (_, Retransmit { src; dst; port; seq })
    when find_outstanding m.cells.(src) ~dst ~port ~seq = None ->
    Df_util.Pqueue.drop_min m.events;
    skip_stale_retransmits m
  | _ -> ()

let take_checkpoint m =
  m.last_snapshot <- Some (snapshot m);
  m.checkpoints <- m.checkpoints + 1;
  if Obs.Tracer.enabled m.tracer then
    Obs.Tracer.emit m.tracer
      (Obs.Event.Checkpoint
         { time = m.now; track = 0; seq = m.checkpoints;
           in_flight = Df_util.Pqueue.length m.events })

let do_crash m pe crash_at =
  m.crash_done <- true;
  if pe < Array.length m.pe_dead then begin
    if Obs.Tracer.enabled m.tracer then
      Obs.Tracer.emit m.tracer
        (Obs.Event.Fault_injected
           { time = crash_at; track = pe; kind = "pe-crash"; src = pe;
             dst = pe; extra = 0 });
    match m.recovery with
    | None ->
      (* fail-stop with no recovery: the PE's cells are gone for good;
         the run wedges and the stall report names the dead PE *)
      m.pe_dead.(pe) <- true
    | Some _ ->
      (* quiesce-and-rollback: surviving PEs discard the post-checkpoint
         timeline (cheap in a simulator, a barrier on hardware), the
         dead PE's cells are re-hosted, and the machine replays.  The
         acknowledge discipline makes the replay safe: output values are
         a function of the checkpoint state alone. *)
      let snap =
        match m.last_snapshot with
        | Some s -> s
        | None -> assert false (* taken at create when recovery is on *)
      in
      restore m snap;
      m.pe_dead.(pe) <- true;
      let alive p = not m.pe_dead.(p) in
      let remapped = ref 0 in
      Array.iter
        (fun c ->
          if m.pe_dead.(c.pe) then begin
            c.pe <- Arch.place m.arch ~alive c.node.Graph.id;
            incr remapped
          end)
        m.cells;
      m.recoveries <- m.recoveries + 1;
      if Obs.Tracer.enabled m.tracer then
        Obs.Tracer.emit m.tracer
          (Obs.Event.Recovery
             { time = crash_at; track = pe; pe; restored_to = snap.sn_time;
               remapped = !remapped })
  end

let advance m ~until =
  let continue_ = ref (not m.finished) in
  while !continue_ do
    let fired_any = ref false in
    let rec drain () =
      match Queue.take_opt m.dirty with
      | None -> ()
      | Some id ->
        m.in_dirty.(id) <- false;
        if step m id then begin
          fired_any := true;
          mark m id
        end;
        drain ()
    in
    drain ();
    if !fired_any then m.last_progress <- m.now;
    if San.tripped m.sanitizer then begin
      m.finished <- true;
      continue_ := false
    end
    else begin
      skip_stale_retransmits m;
      let crash_pending =
        if m.crash_done then None
        else Option.bind m.fault FP.crash
      in
      match Df_util.Pqueue.peek_priority m.events with
      | None -> (
        (* quiescent — unless the crash is still due, in which case it
           strikes a silent machine *)
        match crash_pending with
        | Some (pe, at) when at <= m.max_time -> do_crash m pe (max at m.now)
        | _ ->
          m.quiescent <- true;
          m.finished <- true;
          continue_ := false)
      | Some _ when m.live_events = 0 && only_futile_outstanding m -> (
        (* only futile retransmission timers left: quiescent *)
        match crash_pending with
        | Some (pe, at) when at <= m.max_time -> do_crash m pe (max at m.now)
        | _ ->
          m.quiescent <- true;
          m.finished <- true;
          continue_ := false)
      | Some t -> (
        match crash_pending with
        | Some (pe, at) when at <= t -> do_crash m pe at
        | _ ->
          if t > m.max_time then begin
            m.finished <- true;
            continue_ := false
          end
          else if
            match m.watchdog with
            | Some k -> t - m.last_progress > k
            | None -> false
          then begin
            m.watchdog_tripped <- true;
            m.finished <- true;
            continue_ := false
          end
          else if t > until then continue_ := false
          else begin
            if t >= m.next_checkpoint then begin
              take_checkpoint m;
              m.next_checkpoint <-
                t
                + (match m.recovery with
                  | Some r -> max 1 r.checkpoint_every
                  | None -> max_int)
            end;
            m.now <- t;
            let rec apply_all () =
              match Df_util.Pqueue.peek_priority m.events with
              | Some t' when t' = t -> (
                match Df_util.Pqueue.pop m.events with
                | Some (_, ev) ->
                  (match ev with
                  | Retransmit _ -> ()
                  | Deliver _ | Ack _ ->
                    m.live_events <- m.live_events - 1);
                  apply_event m ev;
                  apply_all ()
                | None -> ())
              | _ -> ()
            in
            apply_all ()
          end)
    end
  done

let finished m = m.finished

let build_stall m reason =
  let blocked = ref [] in
  let edges = ref [] in
  Array.iter
    (fun cell ->
      let id = cell.node.Graph.id in
      let held = ref [] and missing = ref [] in
      Array.iteri
        (fun port binding ->
          match binding with
          | Graph.In_const _ -> ()
          | Graph.In_arc | Graph.In_arc_init _ -> (
            match cell.operands.(port) with
            | Some v -> held := (port, Value.to_string v) :: !held
            | None ->
              missing := port :: !missing;
              let src = cell.producer.(port) in
              if src >= 0 then edges := (id, src) :: !edges))
        cell.node.Graph.inputs;
      let held = List.rev !held and missing = List.rev !missing in
      if cell.pending_acks > 0 then
        Array.iter
          (List.iter (fun { Graph.ep_node; ep_port } ->
               if
                 m.cells.(ep_node).operands.(ep_port) <> None
                 && m.cells.(ep_node).producer.(ep_port) = id
               then edges := (id, ep_node) :: !edges))
          cell.node.Graph.dests;
      let pending_inputs =
        match cell.node.Graph.op with
        | Opcode.Input _ -> Array.length cell.stream - cell.cursor
        | _ -> 0
      in
      if
        held <> [] || cell.queue_len > 0 || pending_inputs > 0
        || cell.pending_acks > 0
      then begin
        let b =
          {
            SR.b_node = id;
            b_label = cell.node.Graph.label;
            b_op = Opcode.name cell.node.Graph.op;
            b_missing = missing;
            b_held = held;
            b_pending_acks = cell.pending_acks;
            b_queue_len = cell.queue_len;
            b_pending_inputs = pending_inputs;
          }
        in
        if Obs.Tracer.enabled m.tracer then
          Obs.Tracer.emit m.tracer
            (Obs.Event.Stall
               { time = m.now; track = cell.pe; node = id;
                 label = cell.node.Graph.label;
                 reason = SR.blocked_line b });
        blocked := b :: !blocked
      end)
    m.cells;
  let dead_pes =
    let out = ref [] in
    Array.iteri (fun pe dead -> if dead then out := pe :: !out) m.pe_dead;
    List.rev !out
  in
  match List.rev !blocked with
  | [] -> None
  | blocked ->
    Some (SR.make ~dead_pes ~time:m.now ~reason ~blocked ~edges:!edges ())

let result m =
  let outputs =
    List.map
      (fun (name, id) -> (name, List.rev m.cells.(id).collected))
      (Graph.outputs m.graph)
  in
  if
    m.finished && m.quiescent
    && San.enabled m.sanitizer
    && not (San.tripped m.sanitizer)
  then
    List.iter (emit_violation m)
      (San.on_quiescence m.sanitizer ~time:m.now
         ~held:(fun node port -> m.cells.(node).operands.(port) <> None));
  let stall =
    if not m.finished then None
    else if San.tripped m.sanitizer then None
    else if m.watchdog_tripped then build_stall m SR.No_progress
    else if m.quiescent then build_stall m SR.Deadlock
    else build_stall m SR.Max_time_exhausted
  in
  {
    outputs;
    stats = stats_of m;
    end_time = m.now;
    quiescent = m.quiescent;
    stall;
    violations = San.violations m.sanitizer;
    checkpoints = m.checkpoints;
    recoveries = m.recoveries;
  }

let run_cfg cfg ~(arch : Arch.t) g ~inputs =
  let m = create_cfg cfg ~arch g ~inputs in
  advance m ~until:max_int;
  result m

let am_fraction (stats : stats) =
  (* same class of bug as the PR 1 initiation_interval fix: an empty run
     has no defined AM fraction — report nan, not a spurious 0
     (Df_util.Conventions states the repo-wide rule) *)
  Df_util.Conventions.ratio
    (float_of_int stats.am_ops)
    (float_of_int (stats.dispatches + stats.am_ops))

let stream result name =
  Df_util.Conventions.lookup_stream ~who:"Machine_engine" result.outputs name

let output_values result name = List.map snd (stream result name)

let output_times result name = List.map fst (stream result name)

let engine arch : (module Engine_intf.ENGINE with type result = result) =
  (module struct
    type nonrec result = result

    let run cfg g ~inputs = run_cfg cfg ~arch g ~inputs
    let output_values = output_values
    let output_times = output_times
  end)
