open Dfg
module FP = Fault.Fault_plan
module San = Fault.Sanitizer
module SR = Fault.Stall_report

type stats = {
  dispatches : int;
  fu_ops : int;
  am_ops : int;
  result_packets : int;
  ack_packets : int;
  pe_dispatches : int array;
}

type result = {
  outputs : (string * (int * Value.t) list) list;
  stats : stats;
  end_time : int;
  quiescent : bool;
  stall : SR.t option;
  violations : Fault.Violation.t list;
}

type event =
  | Deliver of { src : int; dst : int; port : int; value : Value.t }
  | Ack of { dst : int }

type cell = {
  node : Graph.node;
  operands : Value.t option array;
  mutable pending_acks : int;
  mutable queue : Value.t list;
  mutable queue_len : int;
  mutable cursor : int;
  stream : Value.t array;
  mutable collected : (int * Value.t) list;
  producer : int array;
  pe : int;
  boundary : bool;  (* produces a completed array value (feeds an Output) *)
}

(* A pipelined server pool: each member accepts one operation per cycle;
   a request entering at [t] starts at the earliest slot of the least
   loaded member. *)
type pool = { mutable next_free : int array }

let pool_create n = { next_free = Array.make (max n 1) 0 }

let pool_start pool t =
  let best = ref 0 in
  Array.iteri
    (fun i f -> if f < pool.next_free.(!best) then best := i)
    pool.next_free;
  let start = max t pool.next_free.(!best) in
  pool.next_free.(!best) <- start + 1;
  start

(* Per-PE dispatch servers. *)
let pe_start pes pe t =
  let start = max t pes.(pe) in
  pes.(pe) <- start + 1;
  start

let uses_fu (op : Opcode.t) =
  match op with
  | Opcode.Arith _ | Opcode.Compare _ | Opcode.Logic _ | Opcode.Neg
  | Opcode.Not | Opcode.Math _ ->
    true
  | _ -> false

let run ?(max_time = 30_000_000) ?(tracer = Obs.Tracer.null) ?fault
    ?(sanitizer = San.null) ?watchdog ~(arch : Arch.t) g ~inputs =
  (match Graph.validate g with
  | Ok () -> ()
  | Error es ->
    invalid_arg ("Machine_engine.run: invalid graph:\n" ^ String.concat "\n" es));
  (match watchdog with
  | Some k when k <= 0 -> invalid_arg "Machine_engine.run: watchdog window <= 0"
  | _ -> ());
  let n = Graph.node_count g in
  let producers = Graph.producers g in
  (* block boundaries: producers feeding an Output cell *)
  let boundary = Array.make n false in
  Graph.iter_nodes g (fun node ->
      match node.Graph.op with
      | Opcode.Output _ -> (
        match producers.(node.Graph.id).(0) with
        | [| (src, _) |] -> boundary.(src) <- true
        | _ -> ())
      | _ -> ());
  let cells =
    Array.init n (fun id ->
        let node = Graph.node g id in
        let arity = Array.length node.Graph.inputs in
        let operands = Array.make arity None in
        let producer = Array.make arity (-1) in
        Array.iteri
          (fun port binding ->
            (match producers.(id).(port) with
            | [| (src, _) |] -> producer.(port) <- src
            | _ -> ());
            match binding with
            | Graph.In_arc_init v -> operands.(port) <- Some v
            | Graph.In_arc | Graph.In_const _ -> ())
          node.Graph.inputs;
        let stream =
          match node.Graph.op with
          | Opcode.Input name -> (
            match List.assoc_opt name inputs with
            | Some vs -> Array.of_list vs
            | None ->
              invalid_arg
                (Printf.sprintf "Machine_engine.run: no packets for input %s"
                   name))
          | _ -> [||]
        in
        {
          node;
          operands;
          pending_acks = 0;
          queue = [];
          queue_len = 0;
          cursor = 0;
          stream;
          collected = [];
          producer;
          pe = id mod max 1 arch.Arch.n_pe;
          boundary = boundary.(id);
        })
  in
  Array.iter
    (fun cell ->
      Array.iteri
        (fun port binding ->
          match binding with
          | Graph.In_arc_init _ ->
            let src = cell.producer.(port) in
            if src >= 0 then
              cells.(src).pending_acks <- cells.(src).pending_acks + 1
          | Graph.In_arc | Graph.In_const _ -> ())
        cell.node.Graph.inputs)
    cells;
  let events : event Df_util.Pqueue.t = Df_util.Pqueue.create () in
  let pes = Array.make (max 1 arch.Arch.n_pe) 0 in
  let fus = pool_create arch.Arch.n_fu in
  let ams = pool_create arch.Arch.n_am in
  let dispatches = ref 0 and fu_ops = ref 0 and am_ops = ref 0 in
  let result_packets = ref 0 and ack_packets = ref 0 in
  let pe_dispatches = Array.make (max 1 arch.Arch.n_pe) 0 in
  let now = ref 0 in
  let schedule t ev = Df_util.Pqueue.push events t ev in
  let emit_fault kind ~src ~dst ~extra =
    if Obs.Tracer.enabled tracer then
      Obs.Tracer.emit tracer
        (Obs.Event.Fault_injected
           { time = !now; track = cells.(dst).pe; kind; src; dst; extra })
  in
  let emit_violation (v : Fault.Violation.t) =
    if Obs.Tracer.enabled tracer then
      Obs.Tracer.emit tracer
        (Obs.Event.Violation
           { time = v.Fault.Violation.v_time;
             track = cells.(v.Fault.Violation.v_node).pe;
             node = v.Fault.Violation.v_node;
             label = v.Fault.Violation.v_label;
             kind = Fault.Violation.kind_name v.Fault.Violation.v_kind;
             detail = v.Fault.Violation.v_detail })
  in
  (* Fire a cell: PE dispatch, optional FU execution, then packet
     delivery through RN or AM depending on the policy and whether the
     producer is a block boundary. *)
  let send cell slot value ~ready_at =
    let src = cell.node.Graph.id in
    let dests = cell.node.Graph.dests.(slot) in
    List.iter
      (fun { Graph.ep_node; ep_port } ->
        incr result_packets;
        let am_latency () =
          arch.Arch.am_latency
          + (match fault with
            | None -> 0
            | Some f -> FP.am_extra f ~node:src ~time:ready_at)
        in
        let deliver_at =
          match arch.Arch.array_policy with
          | Arch.Stored when cell.boundary -> (
            match (Graph.node g ep_node).Graph.op with
            | Opcode.Output _ ->
              (* final results are stored once *)
              am_ops := !am_ops + 1;
              pool_start ams ready_at + am_latency ()
            | _ ->
              (* write by the producer, read by the consumer *)
              am_ops := !am_ops + 2;
              let write_done = pool_start ams ready_at + am_latency () in
              pool_start ams write_done + am_latency ())
          | _ -> ready_at + arch.Arch.rn_latency
        in
        let deliver_at =
          match fault with
          | None -> deliver_at
          | Some f ->
            let extra =
              FP.result_delay f ~time:ready_at ~src ~dst:ep_node ~port:ep_port
            in
            if extra > 0 then emit_fault "delay" ~src ~dst:ep_node ~extra;
            deliver_at + extra
        in
        schedule deliver_at
          (Deliver { src; dst = ep_node; port = ep_port; value });
        (* a misbehaving routing network may deliver the same result
           packet twice — the breach the sanitizer exists to catch *)
        (match fault with
        | Some f
          when FP.duplicate f ~time:ready_at ~src ~dst:ep_node ~port:ep_port ->
          incr result_packets;
          emit_fault "dup" ~src ~dst:ep_node ~extra:0;
          schedule (deliver_at + 1)
            (Deliver { src; dst = ep_node; port = ep_port; value })
        | _ -> ());
        if Obs.Tracer.enabled tracer then
          Obs.Tracer.emit tracer
            (Obs.Event.Deliver
               { time = deliver_at; track = cells.(ep_node).pe;
                 src; dst = ep_node; port = ep_port;
                 value = Value.to_string value }))
      dests;
    San.on_send sanitizer ~time:ready_at ~node:src ~count:(List.length dests);
    cell.pending_acks <- cell.pending_acks + List.length dests
  in
  let consume cell port ~acked_at =
    (match cell.node.Graph.inputs.(port) with
    | Graph.In_const _ -> ()
    | Graph.In_arc | Graph.In_arc_init _ ->
      (match
         San.on_consume sanitizer ~time:!now ~node:cell.node.Graph.id ~port
       with
      | Some v -> emit_violation v
      | None -> ());
      cell.operands.(port) <- None;
      let src = cell.producer.(port) in
      if src >= 0 then begin
        incr ack_packets;
        let dropped =
          match fault with
          | None -> false
          | Some f -> FP.drop_ack f ~time:acked_at ~src:cell.node.Graph.id ~dst:src
        in
        if dropped then
          (* the acknowledge is lost in the network: its producer starves
             and the conservation check flags it at quiescence *)
          emit_fault "drop-ack" ~src:cell.node.Graph.id ~dst:src ~extra:0
        else begin
          let extra =
            match fault with
            | None -> 0
            | Some f -> FP.ack_delay f ~time:acked_at ~src:cell.node.Graph.id ~dst:src
          in
          if extra > 0 then
            emit_fault "ack-delay" ~src:cell.node.Graph.id ~dst:src ~extra;
          schedule (acked_at + arch.Arch.rn_latency + extra) (Ack { dst = src });
          if Obs.Tracer.enabled tracer then
            Obs.Tracer.emit tracer
              (Obs.Event.Ack
                 { time = acked_at + arch.Arch.rn_latency + extra;
                   track = cells.(src).pe; src = cell.node.Graph.id; dst = src })
        end
      end);
    ()
  in
  let ready cell port =
    match cell.node.Graph.inputs.(port) with
    | Graph.In_const v -> Some v
    | Graph.In_arc | Graph.In_arc_init _ -> cell.operands.(port)
  in
  let dispatch cell =
    incr dispatches;
    pe_dispatches.(cell.pe) <- pe_dispatches.(cell.pe) + 1;
    let stall =
      match fault with
      | None -> 0
      | Some f -> FP.pe_stall f ~pe:cell.pe ~time:!now
    in
    if stall > 0 then
      emit_fault "pe-stall" ~src:cell.node.Graph.id ~dst:cell.node.Graph.id
        ~extra:stall;
    let start = pe_start pes cell.pe (!now + stall) in
    let done_at =
      if uses_fu cell.node.Graph.op then begin
        incr fu_ops;
        let fu_latency =
          arch.Arch.fu_latency
          + (match fault with
            | None -> 0
            | Some f -> FP.fu_extra f ~node:cell.node.Graph.id ~time:start)
        in
        pool_start fus (start + 1) + fu_latency
      end
      else start + 1
    in
    if Obs.Tracer.enabled tracer then
      Obs.Tracer.emit tracer
        (Obs.Event.Fire
           { time = start; dur = max 1 (done_at - start); track = cell.pe;
             node = cell.node.Graph.id; label = cell.node.Graph.label;
             op = Opcode.name cell.node.Graph.op });
    done_at
  in
  let try_fire cell =
    let open Opcode in
    let node = cell.node in
    let all_ready () =
      let arity = Array.length node.Graph.inputs in
      let rec go p = p >= arity || (ready cell p <> None && go (p + 1)) in
      go 0
    in
    match node.Graph.op with
    | Id | Arith _ | Compare _ | Logic _ | Neg | Not | Math _ ->
      if cell.pending_acks = 0 && all_ready () then begin
        let v port = Option.get (ready cell port) in
        let value =
          match node.Graph.op with
          | Id -> v 0
          | Arith op -> Opcode.apply_arith op (v 0) (v 1)
          | Compare op -> Opcode.apply_cmp op (v 0) (v 1)
          | Logic op -> Opcode.apply_logic op (v 0) (v 1)
          | Math m -> Opcode.apply_math m (v 0)
          | Neg -> (
            match v 0 with
            | Value.Int i -> Value.Int (-i)
            | Value.Real f -> Value.Real (-.f)
            | Value.Bool _ -> invalid_arg "NEG of boolean")
          | Not -> Value.Bool (not (Value.to_bool (v 0)))
          | _ -> assert false
        in
        let done_at = dispatch cell in
        Array.iteri
          (fun port _ -> consume cell port ~acked_at:done_at)
          node.Graph.inputs;
        send cell 0 value ~ready_at:done_at;
        true
      end
      else false
    | Tgate | Fgate ->
      if cell.pending_acks = 0 && all_ready () then begin
        let ctl = Value.to_bool (Option.get (ready cell 0)) in
        let data = Option.get (ready cell 1) in
        let pass = if node.Graph.op = Tgate then ctl else not ctl in
        let done_at = dispatch cell in
        consume cell 0 ~acked_at:done_at;
        consume cell 1 ~acked_at:done_at;
        if pass then send cell 0 data ~ready_at:done_at;
        true
      end
      else false
    | Switch ->
      if cell.pending_acks = 0 && all_ready () then begin
        let ctl = Value.to_bool (Option.get (ready cell 0)) in
        let data = Option.get (ready cell 1) in
        let done_at = dispatch cell in
        consume cell 0 ~acked_at:done_at;
        consume cell 1 ~acked_at:done_at;
        send cell (if ctl then 0 else 1) data ~ready_at:done_at;
        true
      end
      else false
    | Merge ->
      if cell.pending_acks = 0 then begin
        match ready cell 0 with
        | None -> false
        | Some ctl -> (
          let sel = if Value.to_bool ctl then 1 else 2 in
          match ready cell sel with
          | None -> false
          | Some data ->
            let done_at = dispatch cell in
            consume cell 0 ~acked_at:done_at;
            consume cell sel ~acked_at:done_at;
            send cell 0 data ~ready_at:done_at;
            true)
      end
      else false
    | Merge_switch ->
      if cell.pending_acks = 0 then begin
        match (ready cell 0, ready cell 3) with
        | Some ctl, Some d -> (
          let sel = if Value.to_bool ctl then 1 else 2 in
          match ready cell sel with
          | None -> false
          | Some data ->
            let done_at = dispatch cell in
            consume cell 0 ~acked_at:done_at;
            consume cell sel ~acked_at:done_at;
            consume cell 3 ~acked_at:done_at;
            send cell 0 data ~ready_at:done_at;
            if Value.to_bool d then send cell 1 data ~ready_at:done_at;
            true)
        | _ -> false
      end
      else false
    | Fifo k ->
      let progressed = ref false in
      if cell.pending_acks = 0 && cell.queue_len > 0 then begin
        match cell.queue with
        | v :: rest ->
          cell.queue <- rest;
          cell.queue_len <- cell.queue_len - 1;
          let done_at = dispatch cell in
          send cell 0 v ~ready_at:done_at;
          progressed := true
        | [] -> assert false
      end;
      (match cell.operands.(0) with
      | Some v when cell.queue_len < k ->
        cell.queue <- cell.queue @ [ v ];
        cell.queue_len <- cell.queue_len + 1;
        consume cell 0 ~acked_at:!now;
        progressed := true
      | _ -> ());
      !progressed
    | Bool_source seq ->
      if cell.pending_acks = 0 then begin
        match Ctlseq.nth seq cell.cursor with
        | None -> false
        | Some b ->
          cell.cursor <- cell.cursor + 1;
          let done_at = dispatch cell in
          send cell 0 (Value.Bool b) ~ready_at:done_at;
          true
      end
      else false
    | Iota { lo; hi; rep } ->
      if cell.pending_acks = 0 then begin
        let span = hi - lo + 1 in
        let v = lo + (cell.cursor / rep mod span) in
        cell.cursor <- cell.cursor + 1;
        let done_at = dispatch cell in
        send cell 0 (Value.Int v) ~ready_at:done_at;
        true
      end
      else false
    | Input _ ->
      if cell.pending_acks = 0 && cell.cursor < Array.length cell.stream
      then begin
        let v = cell.stream.(cell.cursor) in
        cell.cursor <- cell.cursor + 1;
        let done_at = dispatch cell in
        send cell 0 v ~ready_at:done_at;
        true
      end
      else false
    | Output _ -> (
      match cell.operands.(0) with
      | Some v ->
        cell.collected <- (!now, v) :: cell.collected;
        (match
           San.on_output sanitizer ~time:!now ~node:cell.node.Graph.id
         with
        | Some viol -> emit_violation viol
        | None -> ());
        let done_at = dispatch cell in
        consume cell 0 ~acked_at:done_at;
        true
      | None -> false)
    | Sink -> (
      match cell.operands.(0) with
      | Some _ ->
        let done_at = dispatch cell in
        consume cell 0 ~acked_at:done_at;
        true
      | None -> false)
  in
  let dirty = Queue.create () in
  let in_dirty = Array.make n false in
  let mark id =
    if not in_dirty.(id) then begin
      in_dirty.(id) <- true;
      Queue.add id dirty
    end
  in
  for id = 0 to n - 1 do
    mark id
  done;
  let apply_event = function
    | Deliver { src; dst; port; value } ->
      let cell = cells.(dst) in
      (match San.on_deliver sanitizer ~time:!now ~src ~dst ~port with
      | Some v -> emit_violation v (* drop: engine state is untrustworthy *)
      | None -> (
        match cell.operands.(port) with
        | Some _ ->
          if not (San.enabled sanitizer) then
            invalid_arg
              (Printf.sprintf "machine: arc capacity violated at %s#%d.%d"
                 cell.node.Graph.label dst port)
        | None -> cell.operands.(port) <- Some value));
      mark dst
    | Ack { dst } ->
      let cell = cells.(dst) in
      (match San.on_ack sanitizer ~time:!now ~dst with
      | Some v -> emit_violation v
      | None -> cell.pending_acks <- cell.pending_acks - 1);
      mark dst
  in
  let quiescent = ref false in
  let watchdog_tripped = ref false in
  let last_progress = ref 0 in
  let continue = ref true in
  while !continue do
    let fired_any = ref false in
    let rec drain () =
      match Queue.take_opt dirty with
      | None -> ()
      | Some id ->
        in_dirty.(id) <- false;
        if try_fire cells.(id) then begin
          fired_any := true;
          mark id
        end;
        drain ()
    in
    drain ();
    if !fired_any then last_progress := !now;
    if San.tripped sanitizer then continue := false
    else
      match Df_util.Pqueue.peek_priority events with
      | None ->
        quiescent := true;
        continue := false
      | Some t when t > max_time -> continue := false
      | Some t
        when (match watchdog with
             | Some k -> t - !last_progress > k
             | None -> false) ->
        watchdog_tripped := true;
        continue := false
      | Some t ->
        now := t;
        let rec apply_all () =
          match Df_util.Pqueue.peek_priority events with
          | Some t' when t' = t -> (
            match Df_util.Pqueue.pop events with
            | Some (_, ev) ->
              apply_event ev;
              apply_all ()
            | None -> ())
          | _ -> ()
        in
        apply_all ()
  done;
  let outputs =
    List.map
      (fun (name, id) -> (name, List.rev cells.(id).collected))
      (Graph.outputs g)
  in
  if !quiescent && San.enabled sanitizer && not (San.tripped sanitizer) then
    List.iter emit_violation
      (San.on_quiescence sanitizer ~time:!now
         ~held:(fun node port -> cells.(node).operands.(port) <> None));
  let build_stall reason =
    let blocked = ref [] in
    let edges = ref [] in
    Array.iter
      (fun cell ->
        let id = cell.node.Graph.id in
        let held = ref [] and missing = ref [] in
        Array.iteri
          (fun port binding ->
            match binding with
            | Graph.In_const _ -> ()
            | Graph.In_arc | Graph.In_arc_init _ -> (
              match cell.operands.(port) with
              | Some v -> held := (port, Value.to_string v) :: !held
              | None ->
                missing := port :: !missing;
                let src = cell.producer.(port) in
                if src >= 0 then edges := (id, src) :: !edges))
          cell.node.Graph.inputs;
        let held = List.rev !held and missing = List.rev !missing in
        if cell.pending_acks > 0 then
          Array.iter
            (List.iter (fun { Graph.ep_node; ep_port } ->
                 if
                   cells.(ep_node).operands.(ep_port) <> None
                   && cells.(ep_node).producer.(ep_port) = id
                 then edges := (id, ep_node) :: !edges))
            cell.node.Graph.dests;
        let pending_inputs =
          match cell.node.Graph.op with
          | Opcode.Input _ -> Array.length cell.stream - cell.cursor
          | _ -> 0
        in
        if
          held <> [] || cell.queue_len > 0 || pending_inputs > 0
          || cell.pending_acks > 0
        then begin
          let b =
            {
              SR.b_node = id;
              b_label = cell.node.Graph.label;
              b_op = Opcode.name cell.node.Graph.op;
              b_missing = missing;
              b_held = held;
              b_pending_acks = cell.pending_acks;
              b_queue_len = cell.queue_len;
              b_pending_inputs = pending_inputs;
            }
          in
          if Obs.Tracer.enabled tracer then
            Obs.Tracer.emit tracer
              (Obs.Event.Stall
                 { time = !now; track = cell.pe; node = id;
                   label = cell.node.Graph.label;
                   reason = SR.blocked_line b });
          blocked := b :: !blocked
        end)
      cells;
    match List.rev !blocked with
    | [] -> None
    | blocked -> Some (SR.make ~time:!now ~reason ~blocked ~edges:!edges)
  in
  let stall =
    if San.tripped sanitizer then None
    else if !watchdog_tripped then build_stall SR.No_progress
    else if !quiescent then build_stall SR.Deadlock
    else build_stall SR.Max_time_exhausted
  in
  {
    outputs;
    stats =
      {
        dispatches = !dispatches;
        fu_ops = !fu_ops;
        am_ops = !am_ops;
        result_packets = !result_packets;
        ack_packets = !ack_packets;
        pe_dispatches;
      };
    end_time = !now;
    quiescent = !quiescent;
    stall;
    violations = San.violations sanitizer;
  }

let am_fraction stats =
  (* same class of bug as the PR 1 initiation_interval fix: an empty run
     has no defined AM fraction — report nan, not a spurious 0 *)
  if stats.dispatches + stats.am_ops = 0 then Float.nan
  else
    float_of_int stats.am_ops
    /. float_of_int (stats.dispatches + stats.am_ops)

let output_values result name = List.map snd (List.assoc name result.outputs)

let output_times result name = List.map fst (List.assoc name result.outputs)
