type array_policy = Streamed | Stored

type t = {
  n_pe : int;
  n_fu : int;
  n_am : int;
  fu_latency : int;
  am_latency : int;
  rn_latency : int;
  array_policy : array_policy;
}

let default =
  {
    n_pe = 8;
    n_fu = 4;
    n_am = 2;
    fu_latency = 4;
    am_latency = 6;
    rn_latency = 2;
    array_policy = Streamed;
  }

(* Default cell placement, shared by initial load and crash recovery:
   cell [id] goes to PE [id mod n_pe], or — when that PE is dead — the
   next live PE in cyclic order, so re-hosted cells spread across the
   survivors the same way the initial allocation spread them across the
   full machine. *)
let place t ~alive id =
  let n = max 1 t.n_pe in
  let start = id mod n in
  let rec go k =
    if k >= n then invalid_arg "Arch.place: no live processing element"
    else
      let pe = (start + k) mod n in
      if alive pe then pe else go (k + 1)
  in
  go 0

let describe t =
  Printf.sprintf "%d PE, %d FU(lat %d), %d AM(lat %d), RN lat %d, arrays %s"
    t.n_pe t.n_fu t.fu_latency t.n_am t.am_latency t.rn_latency
    (match t.array_policy with Streamed -> "streamed" | Stored -> "stored")
