(** Machine organization parameters (the paper's Figure 1: processing
    elements, function units, array memories, routing networks). *)

type array_policy =
  | Streamed
      (** the paper's proposal: arrays flow as result-packet sequences
          from producer block to consumer block through the routing
          network; array memories hold nothing transient *)
  | Stored
      (** conventional baseline: every array element a block produces is
          written to an array memory and read back by each consumer *)

type t = {
  n_pe : int;          (** processing elements (instruction-cell hosts) *)
  n_fu : int;          (** shared function units *)
  n_am : int;          (** array memory units *)
  fu_latency : int;    (** pipelined FU latency (initiation 1/cycle) *)
  am_latency : int;    (** array-memory access latency *)
  rn_latency : int;    (** routing-network transit latency *)
  array_policy : array_policy;
}

val default : t
(** 8 PEs, 4 FUs, 2 AMs, latencies 4/6/2, [Streamed]. *)

val place : t -> alive:(int -> bool) -> int -> int
(** Cell placement shared by initial load and crash recovery: cell [id]
    goes to PE [id mod n_pe], or the next live PE in cyclic order when
    that one is dead.
    @raise Invalid_argument when no PE is alive. *)

val describe : t -> string
