open Dfg

(** Machine-level simulator of the Figure 1 architecture.

    The same instruction graphs and firing rules as {!Sim.Engine}, with
    machine resources made explicit:

    - every cell lives on a processing element ([node id mod n_pe]); an
      enabled cell consumes one dispatch slot of its PE per firing (PEs
      dispatch one instruction per cycle);
    - arithmetic, comparison and boolean instructions execute on the
      shared function-unit pool (pipelined: each FU accepts one operation
      per cycle and delivers after [fu_latency]); all other instructions
      complete locally in one cycle;
    - result and acknowledge packets transit the routing network with
      [rn_latency];
    - under the [Stored] array policy, packets leaving a {e block
      boundary} (a cell that feeds an [Output], i.e. a producer of a
      completed array value) are written to an array memory and read back
      by the consumer: one write plus one read on the AM pool (each AM
      serves one operation per cycle with [am_latency]); under [Streamed]
      — the paper's proposal — they travel the routing network like any
      other result packet.

    The traffic statistics reproduce the Section 2 claim that with
    streamed arrays "one eighth or less of the operation packets would be
    sent to the array memories". *)

type stats = {
  dispatches : int;        (** instruction firings (operation packets) *)
  fu_ops : int;            (** operations executed by function units *)
  am_ops : int;            (** array-memory operations (reads + writes) *)
  result_packets : int;    (** result packets through the routing network *)
  ack_packets : int;       (** acknowledge packets *)
  pe_dispatches : int array;  (** firings dispatched per processing element *)
}

type result = {
  outputs : (string * (int * Value.t) list) list;
  stats : stats;
  end_time : int;
  quiescent : bool;
  stall : Fault.Stall_report.t option;
  (** Structured stall diagnostics when the run ended with work undone:
      tokens resident at quiescence, the progress watchdog tripping, or
      [max_time] exhaustion (previously silent).  [None] on a clean
      drain. *)
  violations : Fault.Violation.t list;
  (** Protocol breaches recorded by the [sanitizer]; empty without one. *)
}

val run :
  ?max_time:int ->
  ?tracer:Obs.Tracer.t ->
  ?fault:Fault.Fault_plan.t ->
  ?sanitizer:Fault.Sanitizer.t ->
  ?watchdog:int ->
  arch:Arch.t ->
  Graph.t ->
  inputs:(string * Value.t list) list ->
  result
(** Simulate on the machine model.  [tracer] (default
    {!Obs.Tracer.null}) receives a {!Obs.Event.Fire} per dispatch —
    tracked per PE, with the duration covering dispatch through FU
    completion so PE occupancy is directly visible in a trace viewer —
    and deliver/ack events for the routing-network and array-memory
    traffic.  Tracing never changes results or timing.

    [fault] perturbs the run deterministically (same seed, same run).
    This engine honours the full plan: extra routing-network latency on
    selected result and acknowledge packets, duplicated packet delivery,
    dropped acknowledges, per-PE dispatch stalls, and FU/AM slowdown.
    Delay-only plans cannot change output values (the Kahn-network
    argument — {!Fault_diff} asserts it); [dup]/[drop-ack] break the
    acknowledge discipline on purpose, for the [sanitizer] to catch.

    [sanitizer] (default {!Fault.Sanitizer.null}) shadow-checks
    one-token-per-arc and acknowledge conservation at every event;
    breaches become {!result.violations} and a fatal breach halts the
    run.  Without a sanitizer, an arc-capacity breach raises
    [Invalid_argument] as before.

    [watchdog] stops the run and files a [No_progress] stall report if
    no cell fires for that many consecutive time units while packets are
    still in flight (set it above any injected delay).
    @raise Invalid_argument on invalid graphs or missing inputs *)

val am_fraction : stats -> float
(** Fraction of operation packets that involve the array memories:
    [am_ops / (dispatches + am_ops)] — [nan] when the run dispatched
    nothing (no packets, no defined fraction). *)

val output_values : result -> string -> Value.t list
val output_times : result -> string -> int list
