open Dfg

(** Machine-level simulator of the Figure 1 architecture.

    The same instruction graphs and firing rules as {!Sim.Engine}, with
    machine resources made explicit:

    - every cell lives on a processing element ([node id mod n_pe]); an
      enabled cell consumes one dispatch slot of its PE per firing (PEs
      dispatch one instruction per cycle);
    - arithmetic, comparison and boolean instructions execute on the
      shared function-unit pool (pipelined: each FU accepts one operation
      per cycle and delivers after [fu_latency]); all other instructions
      complete locally in one cycle;
    - result and acknowledge packets transit the routing network with
      [rn_latency];
    - under the [Stored] array policy, packets leaving a {e block
      boundary} (a cell that feeds an [Output], i.e. a producer of a
      completed array value) are written to an array memory and read back
      by the consumer: one write plus one read on the AM pool (each AM
      serves one operation per cycle with [am_latency]); under [Streamed]
      — the paper's proposal — they travel the routing network like any
      other result packet.

    The traffic statistics reproduce the Section 2 claim that with
    streamed arrays "one eighth or less of the operation packets would be
    sent to the array memories".

    The engine is a resumable state machine: {!create_cfg} builds it,
    {!advance} runs it (to completion or a pause point), {!snapshot} /
    {!restore} capture and reinstate its complete state, and {!result}
    reads the outcome.  {!run_cfg} is the one-shot composition of these.

    Static per-cell lookups (destination endpoints, function-unit use)
    are precomputed through the {!Arena} lowering pass; with
    [Run_config.compiled] the firing rules are additionally specialized
    into per-cell closures at load time, bit-identical to the
    interpreted dispatcher (both drive the same helpers — snapshots,
    checkpoints and crash re-hosting are unaffected). *)

type stats = {
  dispatches : int;        (** instruction firings (operation packets) *)
  fu_ops : int;            (** operations executed by function units *)
  am_ops : int;            (** array-memory operations (reads + writes) *)
  result_packets : int;    (** result packets through the routing network,
                               including retransmitted copies *)
  ack_packets : int;       (** acknowledge packets *)
  retransmits : int;       (** result packets resent by the recovery
                               protocol (0 without a recovery policy) *)
  corruptions : int;       (** payload bit-flips injected in flight *)
  corrupt_detected : int;  (** corrupt packets caught by checksum and
                               discarded (0 unless integrity is on) *)
  corrupt_healed : int;    (** discarded packets later replaced by a clean
                               retransmitted copy (needs recovery) *)
  pe_dispatches : int array;  (** firings dispatched per processing element *)
}

type result = {
  outputs : (string * (int * Value.t) list) list;
  stats : stats;
  end_time : int;
  quiescent : bool;
  stall : Fault.Stall_report.t option;
  (** Structured stall diagnostics when the run ended with work undone:
      tokens resident at quiescence, the progress watchdog tripping, or
      [max_time] exhaustion (previously silent).  [None] on a clean
      drain. *)
  violations : Fault.Violation.t list;
  (** Protocol breaches recorded by the [sanitizer]; empty without one. *)
  checkpoints : int;
  (** Periodic checkpoints taken (0 without a recovery policy; the
      implicit program-load snapshot is not counted). *)
  recoveries : int;
  (** Crash recoveries performed (rollback + re-host + replay). *)
}

(** {1 Recovery}

    The static dataflow discipline makes checkpoint/restart unusually
    clean: every arc holds at most one token, every in-flight packet is
    either a result awaiting an acknowledge or the acknowledge itself,
    and the machine state is a finite set of cell registers plus the
    event queue.  A snapshot of those is a {e consistent global
    checkpoint} by construction — there is no uncheckpointed channel
    state to chase (the Chandy–Lamport problem does not arise because
    the simulator quiesces the current instant before snapshotting).

    The recovery policy adds two mechanisms:

    - {e retransmission}: a producer holds every unacknowledged result
      packet and resends it with exponential backoff, so lost packets
      and lost acknowledges ([drop], [drop-ack] faults) are survivable.
      Packets carry per-channel sequence numbers; consumers deduplicate
      and re-acknowledge, giving at-least-once delivery with
      exactly-once effect.
    - {e checkpoint/rollback}: on a [Pe_crash] fault the machine rolls
      back to the last checkpoint, marks the PE dead, re-hosts its cells
      onto survivors ({!Arch.place}), and replays.  Replay is
      deterministic: fault decisions are pure functions of (seed, time,
      endpoints), so the recovered run re-derives the same perturbations
      and the outputs equal a crash-free run. *)

type recovery = Run_config.recovery = {
  checkpoint_every : int;
      (** instruction-times between periodic checkpoints; [0] disables
          periodic checkpoints (the program-load snapshot remains) *)
  retransmit_after : int;  (** timeout before the first resend *)
  retransmit_backoff : int;  (** timeout multiplier per attempt (>= 1) *)
  max_retransmits : int;  (** resend budget per packet *)
}
(** The policy record is defined in {!Run_config} (configuration is pure
    data); this alias keeps existing code compiling unchanged. *)

val default_recovery : recovery
(** Checkpoint every 250 instruction-times, first resend after 48,
    backoff 2x (capped at 16 base timeouts), 8 attempts. *)

type t
(** A machine in progress. *)

type cell_snapshot = {
  cs_operands : Value.t option array;
  cs_pending_acks : int;
  cs_queue : Value.t list;
  cs_cursor : int;
  cs_collected : (int * Value.t) list;
  cs_pe : int;
  cs_recv_seq : int array;
  cs_cons_seq : int array;
  cs_outstanding : out_entry list;
  cs_sent : ((int * int) * int) list;
  cs_corrupt_pend : (int * int) list;
}

and out_entry = {
  o_dst : int;
  o_port : int;
  o_seq : int;
  o_value : Value.t;
  mutable o_attempts : int;
}

type event =
  | Deliver of {
      src : int;
      dst : int;
      port : int;
      seq : int;
      value : Value.t;  (** payload as delivered (possibly corrupted) *)
      crc : int;  (** {!Integrity.checksum_value} of the payload as sent *)
    }
  | Ack of { dst : int; from_node : int; from_port : int; seq : int }
  | Retransmit of { src : int; dst : int; port : int; seq : int }

type snapshot = {
  sn_time : int;
  sn_last_progress : int;
  sn_cells : cell_snapshot array;
  sn_events : (int * event) array;
      (** exact heap layout ({!Df_util.Pqueue.to_array}) — equal-time pop
          order affects resource-pool allocation, so bit-identical resume
          must preserve it *)
  sn_pes : int array;
  sn_fus : int array;
  sn_ams : int array;
  sn_pe_dead : bool array;
  sn_stats : stats;
  sn_sanitizer : Fault.Sanitizer.snapshot option;
}
(** Complete, self-contained machine state: plain data, no closures.
    [Recover.Checkpoint] serializes it. *)

val default_max_time : int
(** 30_000_000 — the machine model's default time budget (larger than
    the graph engine's: resource latencies stretch the same workload). *)

val default_config : Run_config.t
(** {!Run_config.default} with [max_time = default_max_time] — the
    starting point for machine-engine configurations. *)

val create_cfg :
  Run_config.t ->
  arch:Arch.t ->
  Graph.t ->
  inputs:(string * Value.t list) list ->
  t
(** Build a machine ready to run; nothing fires until {!advance}.
    [Run_config.record_firings] and [trace_window] are
    graph-engine-only and ignored here.  See {!run_cfg} for the
    semantics of the remaining fields.
    @raise Invalid_argument on invalid graphs, missing inputs, or a
    malformed [recovery] policy. *)

val advance : t -> until:int -> unit
(** Run the event loop, stopping when the machine {!finished} (clean
    drain, [max_time], watchdog, fatal sanitizer breach) or when the
    next event lies beyond time [until] (a pause: call [advance] again
    to continue).  [advance m ~until:max_int] runs to completion. *)

val finished : t -> bool

val snapshot : t -> snapshot
(** Deep-copy the complete machine state.  Meaningful at any pause
    point; the copy is unaffected by further running. *)

val restore : t -> snapshot -> unit
(** Reinstate a snapshot taken from a machine with the same graph and
    arch; the machine then resumes bit-identically to the run the
    snapshot was taken from (same outputs, timestamps, and stats).
    @raise Invalid_argument on a shape mismatch. *)

val result : t -> result
(** Read the outcome.  On a {!finished} machine this includes the stall
    diagnosis and quiescence-time sanitizer checks; on a paused machine
    it is a progress report ([stall = None], [quiescent = false]). *)

val run_cfg :
  Run_config.t ->
  arch:Arch.t ->
  Graph.t ->
  inputs:(string * Value.t list) list ->
  result
(** One-shot {!create_cfg} + {!advance} to completion + {!result}.
    Start from {!default_config} (or {!Run_config.default} when the
    graph engine's smaller time budget is wanted).

    Simulate on the machine model.  [tracer] (default
    {!Obs.Tracer.null}) receives a {!Obs.Event.Fire} per dispatch —
    tracked per PE, with the duration covering dispatch through FU
    completion so PE occupancy is directly visible in a trace viewer —
    and deliver/ack events for the routing-network and array-memory
    traffic.  Tracing never changes results or timing.

    [fault] perturbs the run deterministically (same seed, same run).
    This engine honours the full plan: extra routing-network latency on
    selected result and acknowledge packets, duplicated packet delivery,
    dropped result packets, dropped acknowledges, per-PE dispatch
    stalls, FU/AM slowdown, and a fail-stop PE crash.  Delay-only plans
    cannot change output values (the Kahn-network argument —
    {!Fault_diff} asserts it); [dup]/[drop]/[drop-ack]/[crash] break the
    machine on purpose — for the [sanitizer] to catch, or for the
    [recovery] policy to survive.

    [sanitizer] (default {!Fault.Sanitizer.null}) shadow-checks
    one-token-per-arc and acknowledge conservation at every event;
    breaches become {!result.violations} and a fatal breach halts the
    run.  Without a sanitizer, an arc-capacity breach raises
    [Invalid_argument] as before.  Under recovery the sanitizer sees
    only logically-new packets (duplicates are filtered first), so a
    successfully recovered run reports zero violations.

    [watchdog] stops the run and files a [No_progress] stall report if
    no cell fires for that many consecutive time units while packets are
    still in flight (set it above any injected delay — and above the
    full retransmission window when recovery is on).

    [recovery] (default off) enables the checkpoint/retransmission
    protocol above.  Without it the engine behaves exactly as before
    this protocol existed: a crash permanently kills the PE and the run
    wedges into a stall report naming it.

    [integrity] (default off) verifies the {!Integrity} checksum every
    result packet carries from its producer.  A mismatch (a [corrupt] /
    [corrupt-ctl] fault struck in flight) discards the packet — which
    then behaves exactly like a dropped packet: fatal-by-starvation
    without [recovery], healed by retransmission with it.  With
    integrity off, corrupted payloads are accepted silently and surface
    only as wrong output values ({!Fault_diff} diagnoses this case).

    [compiled] specializes the firing rules into per-cell closures once
    at program load; results, stats and timings are bit-identical to
    the interpreted dispatcher.
    @raise Invalid_argument on invalid graphs or missing inputs *)

val am_fraction : stats -> float
(** Fraction of operation packets that involve the array memories:
    [am_ops / (dispatches + am_ops)] — [nan] when the run dispatched
    nothing (no packets, no defined fraction). *)

val output_values : result -> string -> Value.t list
(** Values of an output stream in arrival order.
    @raise Invalid_argument naming the unknown stream and the streams
    the run actually produced. *)

val output_times : result -> string -> int list
(** Arrival times of an output stream; errors as {!output_values}. *)

val engine : Arch.t -> (module Engine_intf.ENGINE with type result = result)
(** The machine simulator as an {!Engine_intf.ENGINE}, closed over an
    architecture. *)
