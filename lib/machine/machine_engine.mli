open Dfg

(** Machine-level simulator of the Figure 1 architecture.

    The same instruction graphs and firing rules as {!Sim.Engine}, with
    machine resources made explicit:

    - every cell lives on a processing element ([node id mod n_pe]); an
      enabled cell consumes one dispatch slot of its PE per firing (PEs
      dispatch one instruction per cycle);
    - arithmetic, comparison and boolean instructions execute on the
      shared function-unit pool (pipelined: each FU accepts one operation
      per cycle and delivers after [fu_latency]); all other instructions
      complete locally in one cycle;
    - result and acknowledge packets transit the routing network with
      [rn_latency];
    - under the [Stored] array policy, packets leaving a {e block
      boundary} (a cell that feeds an [Output], i.e. a producer of a
      completed array value) are written to an array memory and read back
      by the consumer: one write plus one read on the AM pool (each AM
      serves one operation per cycle with [am_latency]); under [Streamed]
      — the paper's proposal — they travel the routing network like any
      other result packet.

    The traffic statistics reproduce the Section 2 claim that with
    streamed arrays "one eighth or less of the operation packets would be
    sent to the array memories". *)

type stats = {
  dispatches : int;        (** instruction firings (operation packets) *)
  fu_ops : int;            (** operations executed by function units *)
  am_ops : int;            (** array-memory operations (reads + writes) *)
  result_packets : int;    (** result packets through the routing network *)
  ack_packets : int;       (** acknowledge packets *)
  pe_dispatches : int array;  (** firings dispatched per processing element *)
}

type result = {
  outputs : (string * (int * Value.t) list) list;
  stats : stats;
  end_time : int;
  quiescent : bool;
}

val run :
  ?max_time:int ->
  ?tracer:Obs.Tracer.t ->
  arch:Arch.t ->
  Graph.t ->
  inputs:(string * Value.t list) list ->
  result
(** Simulate on the machine model.  [tracer] (default
    {!Obs.Tracer.null}) receives a {!Obs.Event.Fire} per dispatch —
    tracked per PE, with the duration covering dispatch through FU
    completion so PE occupancy is directly visible in a trace viewer —
    and deliver/ack events for the routing-network and array-memory
    traffic.  Tracing never changes results or timing.
    @raise Invalid_argument on invalid graphs or missing inputs *)

val am_fraction : stats -> float
(** Fraction of operation packets that involve the array memories:
    [am_ops / (dispatches + am_ops)]. *)

val output_values : result -> string -> Value.t list
val output_times : result -> string -> int list
