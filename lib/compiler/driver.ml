open Dfg
module A = Val_lang.Ast
module C = Val_lang.Classify
module Eval = Val_lang.Eval

exception Mismatch of string

let compile_source ?options ?scalar_inputs source =
  let prog = Val_lang.Parser.parse_program source in
  let pp = C.classify_program prog in
  (prog, Program_compile.compile ?options ?scalar_inputs pp)

let replicate waves xs = List.concat_map (fun _ -> xs) (List.init waves Fun.id)

let run_cfg ?(waves = 1) cfg (cp : Program_compile.compiled) ~inputs =
  let feeds =
    List.map
      (fun (name, shape) ->
        match List.assoc_opt name inputs with
        | None ->
          invalid_arg
            (Printf.sprintf "Driver.run: missing input wave for %s" name)
        | Some wave ->
          let expected = Program_compile.wave_size shape in
          if List.length wave <> expected then
            invalid_arg
              (Printf.sprintf
                 "Driver.run: input %s wave has %d packets, expected %d" name
                 (List.length wave) expected);
          (name, replicate waves wave))
      cp.Program_compile.cp_inputs
  in
  Sim.Engine.run_cfg cfg cp.Program_compile.cp_graph ~inputs:feeds

(* Thin compatibility wrapper over {!run_cfg} — new code should build a
   [Run_config.t] instead of spreading optional arguments. *)
let run ?waves ?max_time ?record_firings ?trace_window ?tracer ?fault
    ?sanitizer ?watchdog (cp : Program_compile.compiled) ~inputs =
  let cfg =
    { Run_config.default with
      Run_config.max_time =
        Option.value max_time ~default:Run_config.default.Run_config.max_time;
      record_firings = Option.value record_firings ~default:false;
      trace_window;
      tracer = Option.value tracer ~default:Obs.Tracer.null;
      fault;
      sanitizer = Option.value sanitizer ~default:Fault.Sanitizer.null;
      watchdog;
    }
  in
  run_cfg ?waves cfg cp ~inputs

let wave_of_floats xs = List.map (fun f -> Value.Real f) xs

let output_wave (cp : Program_compile.compiled) result name =
  (* Waves are identical (the same input wave is replayed), so the first
     complete wave is the result; trailing packets beyond a whole number
     of waves are the legitimate prefix of the next wave (cyclic control
     sequences keep the pipe primed). *)
  let shape = List.assoc name cp.Program_compile.cp_outputs in
  let n = Program_compile.wave_size shape in
  let values = Sim.Engine.output_values result name in
  let total = List.length values in
  if total < n then
    raise
      (Mismatch
         (Printf.sprintf "output %s produced %d packets, expected at least %d"
            name total n));
  List.filteri (fun i _ -> i < n) values

(* Interpreter values flattened to packet streams. *)
let stream_of_value = function
  | Eval.VArray { elts; _ } ->
    Array.to_list elts
    |> List.map (function
         | Eval.VInt i -> Value.Int i
         | Eval.VReal f -> Value.Real f
         | Eval.VBool b -> Value.Bool b
         | Eval.VArray _ | Eval.VGrid _ ->
           invalid_arg "nested array value")
  | Eval.VGrid { rows; _ } ->
    Array.to_list rows
    |> List.concat_map (fun row ->
           Array.to_list row
           |> List.map (function
                | Eval.VInt i -> Value.Int i
                | Eval.VReal f -> Value.Real f
                | Eval.VBool b -> Value.Bool b
                | _ -> invalid_arg "nested array value"))
  | Eval.VInt i -> [ Value.Int i ]
  | Eval.VReal f -> [ Value.Real f ]
  | Eval.VBool b -> [ Value.Bool b ]

let eval_value_of_packet = function
  | Value.Int i -> Eval.VInt i
  | Value.Real f -> Eval.VReal f
  | Value.Bool b -> Eval.VBool b

(* Reconstruct interpreter-shaped inputs from packet waves using the
   program's declared ranges. *)
let eval_inputs prog ~inputs =
  let params =
    List.fold_left
      (fun acc (name, ce) ->
        (name, Val_lang.Typecheck.eval_const acc ce) :: acc)
      [] prog.A.prog_params
  in
  let const = Val_lang.Typecheck.eval_const params in
  List.filter_map
    (fun inp ->
      match (inp.A.in_type, List.assoc_opt inp.A.in_name inputs) with
      | A.Scalar _, Some [ v ] ->
        Some (inp.A.in_name, eval_value_of_packet v)
      | A.Scalar _, _ -> None
      | A.Array _, Some wave -> (
        let vals = Array.of_list (List.map eval_value_of_packet wave) in
        match inp.A.in_ranges with
        | [ (lo, _) ] ->
          Some (inp.A.in_name, Eval.VArray { lo = const lo; elts = vals })
        | [ (l1, h1); (l2, h2) ] ->
          let l1 = const l1 and h1 = const h1 in
          let l2 = const l2 and h2 = const h2 in
          let width = h2 - l2 + 1 in
          ignore h1;
          let rows =
            Array.init
              (Array.length vals / width)
              (fun r -> Array.sub vals (r * width) width)
          in
          Some (inp.A.in_name, Eval.VGrid { lo_i = l1; lo_j = l2; rows })
        | _ -> invalid_arg "inputs beyond two dimensions")
      | A.Array _, None -> None)
    prog.A.prog_inputs

let oracle_outputs prog ~inputs =
  let results = Eval.eval_program ~inputs:(eval_inputs prog ~inputs) prog in
  List.map (fun (name, v) -> (name, stream_of_value v)) results

let check_against_oracle ?(eps = 1e-9) prog (cp : Program_compile.compiled)
    result ~inputs =
  let expected = oracle_outputs prog ~inputs in
  List.iter
    (fun (name, _) ->
      let want = List.assoc name expected in
      let got = output_wave cp result name in
      if List.length want <> List.length got then
        raise
          (Mismatch
             (Printf.sprintf "output %s: %d packets, oracle has %d" name
                (List.length got) (List.length want)));
      List.iteri
        (fun k (w : Value.t) ->
          let g = List.nth got k in
          if not (Value.equal ~eps w g) then
            raise
              (Mismatch
                 (Printf.sprintf "output %s element %d: compiled %s, oracle %s"
                    name k (Value.to_string g) (Value.to_string w))))
        want)
    cp.Program_compile.cp_outputs
