open Dfg
module A = Val_lang.Ast
module C = Val_lang.Classify

(** End-to-end driver: parse → classify → compile → simulate, with the Val
    interpreter as the semantic oracle. *)

exception Mismatch of string
(** Compiled output disagreed with the interpreter. *)

val compile_source :
  ?options:Program_compile.options ->
  ?scalar_inputs:(string * Value.t) list ->
  string ->
  A.program * Program_compile.compiled
(** Parse, type-check, classify and compile a Val source text.
    @raise Val_lang.Parser.Parse_error
    @raise Val_lang.Classify.Not_in_class
    @raise Expr_compile.Unsupported *)

val run_cfg :
  ?waves:int ->
  Run_config.t ->
  Program_compile.compiled ->
  inputs:(string * Value.t list) list ->
  Sim.Engine.result
(** Simulate the compiled program.  [inputs] gives one wave of packets per
    array input (its declared wave size); the wave is replayed [waves]
    times (default 1).  The configuration record is forwarded to
    {!Sim.Engine.run_cfg}.
    @raise Invalid_argument on missing inputs or wrong wave sizes *)

val run :
  ?waves:int ->
  ?max_time:int ->
  ?record_firings:bool ->
  ?trace_window:int * int ->
  ?tracer:Obs.Tracer.t ->
  ?fault:Fault.Fault_plan.t ->
  ?sanitizer:Fault.Sanitizer.t ->
  ?watchdog:int ->
  Program_compile.compiled ->
  inputs:(string * Value.t list) list ->
  Sim.Engine.result
(** Deprecated spelling of {!run_cfg}: the optional arguments are packed
    into a {!Run_config.t} and forwarded. *)

val wave_of_floats : float list -> Value.t list

val output_wave :
  Program_compile.compiled -> Sim.Engine.result -> string -> Value.t list
(** One complete wave of an output stream (waves are identical since the
    input wave is replayed verbatim). *)

val oracle_outputs :
  A.program ->
  inputs:(string * Value.t list) list ->
  (string * Value.t list) list
(** Interpreter results flattened to streams (row-major for 2-D). *)

val check_against_oracle :
  ?eps:float ->
  A.program ->
  Program_compile.compiled ->
  Sim.Engine.result ->
  inputs:(string * Value.t list) list ->
  unit
(** Compare every exposed output's final wave against the interpreter.
    @raise Mismatch with a description of the first disagreement *)
