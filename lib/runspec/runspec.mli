open Dfg

(** Shared run-specification layer for the CLIs and the service.

    Every front end that names a run — [dfsim], [faultcheck], [chaos],
    and the [dfserve] request decoder — needs the same small toolbox:
    parse a fault plan or recovery policy from its string spec, pick
    kernels by name, compile a kernel into a runnable subject, size a
    watchdog above every injected latency source, synthesize
    deterministic input waves, and turn engine results into metrics
    registries.  Before this module each binary carried its own copy;
    the service made a fourth copy untenable. *)

(** {1 Spec parsing} *)

val fault_plan_of_string : string -> (Fault.Fault_plan.t, string) result
(** {!Fault.Fault_plan.of_string} followed by [make]: both parse errors
    and out-of-range probabilities come back as [Error]. *)

val fault_spec_of_string : string -> (Fault.Fault_plan.spec, string) result
(** The raw spec, when the caller still needs to override fields
    (e.g. the per-run seed) before [make]. *)

val recovery_of_string : string -> (Recover.policy, string) result
(** {!Recover.of_string}; [""] is the default policy. *)

(** {1 Kernel subjects} *)

val replicate : int -> 'a list -> 'a list
(** [replicate waves xs]: the wave repeated, as one flat packet list. *)

val feeds :
  Compiler.Program_compile.compiled ->
  waves:int ->
  (string * Value.t list) list ->
  (string * Value.t list) list
(** Full packet streams for a compiled program's array inputs: one wave
    per input from the association list, replicated [waves] times.
    @raise Failure when an input is missing from the list. *)

type subject = {
  kernel : Kernels.kernel;
  size : int;
  waves : int;
  compiled : Compiler.Program_compile.compiled;
  graph : Graph.t;  (** [compiled.cp_graph] *)
  inputs : (string * Value.t list) list;  (** full packet streams *)
}
(** A kernel compiled and fed: everything a differential or a service
    request needs to run it.  Construction is deterministic — the input
    waves are drawn from a PRNG seeded by the kernel's name, so every
    builder of the same (kernel, size, waves) triple gets bit-identical
    streams. *)

val compile_subject : Kernels.kernel -> size:int -> waves:int -> subject

val kernels_matching : string option -> (Kernels.kernel list, string) result
(** All kernels, or the one named; [Error] lists the known names. *)

(** {1 Run hygiene} *)

val stall_unexpected : Fault.Stall_report.t option -> bool
(** A [Deadlock] report at quiescence is the normal end state of a
    primed feedback loop; anything else (watchdog, max_time) is a
    finding. *)

val watchdog_for :
  ?base:int ->
  Fault.Fault_plan.spec ->
  Machine.Machine_engine.recovery option ->
  int
(** A watchdog threshold sitting above every injected latency source:
    routing delays, PE stall windows, FU/AM slowdowns, and the full
    retransmission backoff window when a recovery policy is attached.
    [base] defaults to 100. *)

val synth_wave :
  seed:int -> elt:Val_lang.Ast.scalar_type -> size:int -> string -> Value.t list
(** One deterministic input wave: a PRNG keyed by [(seed, name)], so the
    same request synthesizes the same packets on any builder ([dfsim]
    and [dfclient] agree byte for byte). *)

(** {1 Result rendering} *)

val sim_registry : Sim.Engine.result -> Obs.Metrics_registry.t
(** {!Exec.Outcome.metrics_of_sim}: run metrics of a graph-level result
    (firings, stuck cells, violations, end time, per-output packet
    counts and intervals, cell-utilization histogram). *)

val machine_registry : Machine.Machine_engine.result -> Obs.Metrics_registry.t
(** {!Exec.Outcome.metrics_of_machine}: run metrics of a machine-level
    result (dispatches, FU/AM ops, packet and retransmit counters,
    per-PE dispatches, AM fraction, per-output packet counts). *)

val write_values : path:string -> (string * (int * Value.t) list) list -> unit
(** Dump output streams as diffable text: one [name\ttime\tvalue] line
    per packet, reals in bit-exact [%h] form.  [dfsim --values-out] and
    [dfclient simulate --values-out] write this same format, so CI can
    [diff] a served run against a standalone one. *)

(** {1 Transport endpoints} *)

val hostport_of_string : string -> (string * int, string) result
(** Parse a ["HOST:PORT"] TCP endpoint (an empty host means
    [127.0.0.1]; port 0 asks the kernel for an ephemeral port).  Shared
    by [dfserve --tcp], [dfclient --tcp] and the chaos harness. *)

val members_of_string : string -> (string list, string) result
(** Parse a cluster member list: a comma-separated address list
    (["a.sock,tcp:host:port"]) or ["@FILE"] naming a file with one
    address per line (blank lines and [#] comments ignored).  Order is
    preserved; an empty list or a duplicated address is an [Error].
    Shared by [dfclient --cluster] and the chaos cluster soak. *)
