open Dfg
module FP = Fault.Fault_plan
module PC = Compiler.Program_compile
module ME = Machine.Machine_engine
module K = Kernels

(* ---------------- spec parsing ---------------- *)

let fault_spec_of_string = FP.of_string

let fault_plan_of_string s =
  match FP.of_string s with
  | Error _ as e -> e
  | Ok spec -> (
    match FP.make spec with
    | plan -> Ok plan
    | exception Invalid_argument msg -> Error msg)

let recovery_of_string = Recover.of_string

(* ---------------- kernel subjects ---------------- *)

let replicate waves xs = List.concat_map (fun _ -> xs) (List.init waves Fun.id)

let feeds (compiled : PC.compiled) ~waves kernel_inputs =
  List.map
    (fun (name, _shape) ->
      match List.assoc_opt name kernel_inputs with
      | Some wave -> (name, replicate waves wave)
      | None -> failwith (Printf.sprintf "kernel input %s missing" name))
    compiled.PC.cp_inputs

type subject = {
  kernel : K.kernel;
  size : int;
  waves : int;
  compiled : PC.compiled;
  graph : Graph.t;
  inputs : (string * Value.t list) list;
}

let compile_subject (k : K.kernel) ~size ~waves =
  let st = Random.State.make [| Hashtbl.hash k.K.name |] in
  let _, compiled =
    Compiler.Driver.compile_source ~scalar_inputs:k.K.scalar_inputs
      (k.K.source size)
  in
  let inputs = feeds compiled ~waves (k.K.inputs size st) in
  { kernel = k; size; waves; compiled; graph = compiled.PC.cp_graph; inputs }

let kernels_matching = function
  | None -> Ok K.all
  | Some name -> (
    match List.filter (fun (k : K.kernel) -> k.K.name = name) K.all with
    | [] ->
      Error
        (Printf.sprintf "unknown kernel %s (have: %s)" name
           (String.concat ", "
              (List.map (fun (k : K.kernel) -> k.K.name) K.all)))
    | ks -> Ok ks)

(* ---------------- run hygiene ---------------- *)

let stall_unexpected = function
  | None -> false
  | Some sr -> sr.Fault.Stall_report.sr_reason <> Fault.Stall_report.Deadlock

(* the watchdog must sit above every injected latency source — routing
   delays, PE stall windows, FU/AM slowdowns — and above the full
   retransmission window when the recovery protocol is on *)
let watchdog_for ?(base = 100) (spec : FP.spec) recovery =
  base
  + (4 * spec.FP.delay_max)
  + (if spec.FP.stall_prob > 0.0 then 4 * spec.FP.stall_max else 0)
  + (16 * (spec.FP.fu_slow + spec.FP.am_slow))
  + (match recovery with
    | Some (r : ME.recovery) -> 17 * r.ME.retransmit_after
    | None -> 0)

let synth_wave ~seed ~elt ~size name =
  let st = Random.State.make [| seed; Hashtbl.hash name |] in
  List.init size (fun _ ->
      match elt with
      | Val_lang.Ast.Tint -> Value.Int (Random.State.int st 100)
      | Val_lang.Ast.Treal -> Value.Real (Random.State.float st 2.0 -. 1.0)
      | Val_lang.Ast.Tbool -> Value.Bool (Random.State.bool st))

(* ---------------- result rendering ---------------- *)

let sim_registry = Exec.Outcome.metrics_of_sim
let machine_registry = Exec.Outcome.metrics_of_machine

let value_text = function
  | Value.Int i -> string_of_int i
  | Value.Bool b -> if b then "true" else "false"
  | Value.Real r -> Printf.sprintf "%h" r

let write_values ~path outputs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun (name, arrivals) ->
          List.iter
            (fun (t, v) ->
              Printf.fprintf oc "%s\t%d\t%s\n" name t (value_text v))
            arrivals)
        outputs)

let hostport_of_string s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port_s with
    | Some port when port >= 0 && port <= 65535 ->
      Ok ((if host = "" then "127.0.0.1" else host), port)
    | Some port -> Error (Printf.sprintf "port %d outside 0..65535" port)
    | None -> Error (Printf.sprintf "%S: port is not a number" port_s))

(* Cluster member lists: "a.sock,b.sock,tcp:h:p" inline, or "@FILE"
   with one address per line (blank lines and #-comments ignored).
   Addresses are kept verbatim — Serve.Client.addr_of_string decides
   Unix-path vs TCP later — but duplicates are rejected here, because
   a duplicated member would get double weight in rendezvous hashing
   and double probes. *)
let members_of_string spec =
  let clean lines =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then None else Some line)
      lines
  in
  let parsed =
    if String.length spec > 0 && spec.[0] = '@' then (
      let path = String.sub spec 1 (String.length spec - 1) in
      match open_in path with
      | exception Sys_error e -> Error e
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | line -> go (line :: acc)
              | exception End_of_file -> List.rev acc
            in
            Ok (clean (go []))))
    else Ok (clean (String.split_on_char ',' spec))
  in
  match parsed with
  | Error _ as e -> e
  | Ok [] -> Error "empty cluster member list"
  | Ok members ->
    if List.length (List.sort_uniq compare members) <> List.length members
    then Error "duplicate cluster member"
    else Ok members
