open Dfg

(** Recovery policies and checkpoint/restart orchestration for the
    machine engine.

    The mechanisms live in {!Machine.Machine_engine} (they need the
    engine's internals); this module owns the user-facing surface: the
    policy mini-language the CLIs accept, and save/resume built on
    {!Checkpoint}. *)

module Checkpoint = Checkpoint
(** Versioned serialization of machine snapshots. *)

type policy = Machine.Machine_engine.recovery = {
  checkpoint_every : int;
  retransmit_after : int;
  retransmit_backoff : int;
  max_retransmits : int;
}

val default : policy
(** {!Machine.Machine_engine.default_recovery}. *)

val of_string : string -> (policy, string) result
(** Parse a policy spec: comma-separated [key=int] pairs over
    [every] (checkpoint interval; 0 disables periodic checkpoints),
    [timeout] (first-resend timeout), [backoff] (timeout multiplier),
    [retries] (resend budget).  Omitted keys keep their {!default}
    values; [""] is the default policy. *)

val to_string : policy -> string
(** Canonical spec; [of_string (to_string p) = Ok p]. *)

val describe : policy -> string
(** One-line human-readable rendering. *)

val resume :
  Run_config.t ->
  arch:Machine.Arch.t ->
  Graph.t ->
  inputs:(string * Value.t list) list ->
  Machine.Machine_engine.snapshot ->
  Machine.Machine_engine.result
(** Rebuild a machine (same graph, inputs and configuration as the run
    the snapshot came from), restore the snapshot into it, and run to
    completion.  With identical configuration the result is
    bit-identical to the run that saved the snapshot.  Start the config
    from {!Machine.Machine_engine.default_config}. *)
