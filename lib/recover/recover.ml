module Checkpoint = Checkpoint
module ME = Machine.Machine_engine

type policy = ME.recovery = {
  checkpoint_every : int;
  retransmit_after : int;
  retransmit_backoff : int;
  max_retransmits : int;
}

let default = ME.default_recovery

let of_string s =
  let parse_pair acc pair =
    match acc with
    | Error _ -> acc
    | Ok p -> (
      match String.index_opt pair '=' with
      | None -> Error (Printf.sprintf "bad policy item %S (want key=int)" pair)
      | Some i -> (
        let key = String.sub pair 0 i in
        let raw = String.sub pair (i + 1) (String.length pair - i - 1) in
        match int_of_string_opt raw with
        | None -> Error (Printf.sprintf "%s: bad integer %S" key raw)
        | Some v -> (
          match key with
          | "every" -> Ok { p with checkpoint_every = v }
          | "timeout" -> Ok { p with retransmit_after = v }
          | "backoff" -> Ok { p with retransmit_backoff = v }
          | "retries" -> Ok { p with max_retransmits = v }
          | _ -> Error (Printf.sprintf "unknown policy key %S" key))))
  in
  let items =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  match List.fold_left parse_pair (Ok default) items with
  | Error _ as e -> e
  | Ok p ->
    if p.checkpoint_every < 0 then Error "every must be >= 0"
    else if p.retransmit_after <= 0 then Error "timeout must be > 0"
    else if p.retransmit_backoff < 1 then Error "backoff must be >= 1"
    else if p.max_retransmits < 0 then Error "retries must be >= 0"
    else Ok p

let to_string p =
  Printf.sprintf "every=%d,timeout=%d,backoff=%d,retries=%d" p.checkpoint_every
    p.retransmit_after p.retransmit_backoff p.max_retransmits

let describe p =
  Printf.sprintf
    "checkpoint every %s; resend unacknowledged packets after %d (backoff \
     %dx, %d retries)"
    (if p.checkpoint_every = 0 then "(never)"
     else string_of_int p.checkpoint_every)
    p.retransmit_after p.retransmit_backoff p.max_retransmits

let resume cfg ~arch g ~inputs snapshot =
  let m = ME.create_cfg cfg ~arch g ~inputs in
  ME.restore m snapshot;
  ME.advance m ~until:max_int;
  ME.result m
