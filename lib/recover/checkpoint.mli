open Dfg

(** Versioned on-disk format for {!Machine.Machine_engine.snapshot}.

    A checkpoint file is a one-line integrity header followed by a JSON
    document (written with the dependency-free {!Obs.Json}, so loading
    needs nothing external).  Three properties matter more than
    compactness:

    - {e bit-exactness}: [Real] values are encoded as hexadecimal
      float literals ([%h]), not decimal — a snapshot saved, loaded and
      resumed must produce outputs bit-identical to the uncheckpointed
      run, and decimal round-tripping cannot promise that;
    - {e self-description}: the file carries a format [version] and a
      fingerprint of the instruction graph it was taken from, so loading
      a checkpoint against the wrong program (or a stale format) fails
      loudly instead of resuming garbage;
    - {e rot-detection}: the header records the payload length and an
      {!Integrity.checksum_string} of it, so a truncated or bit-rotted
      snapshot is rejected with a structured {!load_error} before any
      byte reaches the JSON parser. *)

val version : int
(** Current format version (2: per-packet checksums in events, the
    corrupt-pending set in cells, corruption counters in stats, and the
    file integrity header). *)

val graph_fingerprint : Graph.t -> int
(** Structural digest of a graph (node ids, opcodes, labels, arities,
    destination lists).  Two graphs with the same fingerprint are the
    same program for checkpoint purposes. *)

val to_json : graph:Graph.t -> Machine.Machine_engine.snapshot -> Obs.Json.t

val of_json :
  graph:Graph.t ->
  Obs.Json.t ->
  (Machine.Machine_engine.snapshot, string) result
(** Rejects version mismatches, fingerprint mismatches and malformed
    documents with a descriptive error. *)

val save : path:string -> graph:Graph.t -> Machine.Machine_engine.snapshot -> unit

type load_error =
  | Io of string  (** file unreadable ([Sys_error] text) *)
  | Not_a_checkpoint of string
      (** integrity header missing or garbled — wrong file, or a
          checkpoint from before the header existed *)
  | Truncated of { expected : int; actual : int }
      (** payload shorter than the header promises (interrupted write,
          partial copy) *)
  | Corrupted of { expected_crc : int; actual_crc : int }
      (** payload bytes fail the content checksum (bit rot) *)
  | Malformed of string
      (** checksum passed but the document does not decode: JSON error,
          version mismatch, or graph-fingerprint mismatch *)

val load_error_to_string : load_error -> string

val load :
  path:string ->
  graph:Graph.t ->
  (Machine.Machine_engine.snapshot, load_error) result
(** Verifies the header's length and checksum before parsing; see
    {!load_error} for the rejection taxonomy. *)

val equal :
  Machine.Machine_engine.snapshot -> Machine.Machine_engine.snapshot -> bool
(** Structural equality (NaN-tolerant: uses [compare], so a snapshot
    containing NaN still equals its round-tripped self). *)
