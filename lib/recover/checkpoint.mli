open Dfg

(** Versioned on-disk format for {!Machine.Machine_engine.snapshot}.

    A checkpoint file is a single JSON document (written with the
    dependency-free {!Obs.Json}, so loading needs nothing external).
    Two properties matter more than compactness:

    - {e bit-exactness}: [Real] values are encoded as hexadecimal
      float literals ([%h]), not decimal — a snapshot saved, loaded and
      resumed must produce outputs bit-identical to the uncheckpointed
      run, and decimal round-tripping cannot promise that;
    - {e self-description}: the file carries a format [version] and a
      fingerprint of the instruction graph it was taken from, so loading
      a checkpoint against the wrong program (or a stale format) fails
      loudly instead of resuming garbage. *)

val version : int
(** Current format version (1). *)

val graph_fingerprint : Graph.t -> int
(** Structural digest of a graph (node ids, opcodes, labels, arities,
    destination lists).  Two graphs with the same fingerprint are the
    same program for checkpoint purposes. *)

val to_json : graph:Graph.t -> Machine.Machine_engine.snapshot -> Obs.Json.t

val of_json :
  graph:Graph.t ->
  Obs.Json.t ->
  (Machine.Machine_engine.snapshot, string) result
(** Rejects version mismatches, fingerprint mismatches and malformed
    documents with a descriptive error. *)

val save : path:string -> graph:Graph.t -> Machine.Machine_engine.snapshot -> unit

val load :
  path:string ->
  graph:Graph.t ->
  (Machine.Machine_engine.snapshot, string) result

val equal :
  Machine.Machine_engine.snapshot -> Machine.Machine_engine.snapshot -> bool
(** Structural equality (NaN-tolerant: uses [compare], so a snapshot
    containing NaN still equals its round-tripped self). *)
