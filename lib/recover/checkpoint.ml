open Dfg
module J = Obs.Json
module ME = Machine.Machine_engine
module San = Fault.Sanitizer
module V = Fault.Violation

(* 2: Deliver events carry the producer checksum, cells carry the
   corrupt-pending set, stats gained the corruption counters, and the
   file grew the [magic] integrity header below. *)
let version = 2

(* Hashtbl.hash alone is unusable as a whole-graph digest (it only
   inspects a bounded prefix of the structure); hash each node's small
   descriptor and fold the results. *)
let graph_fingerprint g =
  let h = ref (Hashtbl.hash (Graph.node_count g)) in
  let mix x = h := (!h * 1000003) lxor Hashtbl.hash x in
  Graph.iter_nodes g (fun node ->
      mix
        ( node.Graph.id,
          Opcode.name node.Graph.op,
          node.Graph.label,
          Array.length node.Graph.inputs );
      Array.iter
        (List.iter (fun { Graph.ep_node; ep_port } -> mix (ep_node, ep_port)))
        node.Graph.dests);
  !h land max_int

(* ------------------------------------------------------------------ *)
(* encoding                                                           *)
(* ------------------------------------------------------------------ *)

let json_of_value = function
  | Value.Int i -> J.Obj [ ("i", J.Int i) ]
  | Value.Bool b -> J.Obj [ ("b", J.Bool b) ]
  | Value.Real f ->
    (* %h: hexadecimal float literal — exact, unlike any decimal form *)
    J.Obj [ ("r", J.String (Printf.sprintf "%h" f)) ]

let json_of_value_opt = function None -> J.Null | Some v -> json_of_value v

let json_of_int_array a = J.List (Array.to_list (Array.map (fun i -> J.Int i) a))

let json_of_entry (e : ME.out_entry) =
  J.Obj
    [ ("dst", J.Int e.ME.o_dst); ("port", J.Int e.ME.o_port);
      ("seq", J.Int e.ME.o_seq); ("v", json_of_value e.ME.o_value);
      ("att", J.Int e.ME.o_attempts) ]

let json_of_cell (c : ME.cell_snapshot) =
  J.Obj
    [ ("ops",
       J.List (Array.to_list (Array.map json_of_value_opt c.ME.cs_operands)));
      ("acks", J.Int c.ME.cs_pending_acks);
      ("q", J.List (List.map json_of_value c.ME.cs_queue));
      ("cur", J.Int c.ME.cs_cursor);
      ("col",
       J.List
         (List.map
            (fun (t, v) -> J.List [ J.Int t; json_of_value v ])
            c.ME.cs_collected));
      ("pe", J.Int c.ME.cs_pe);
      ("recv", json_of_int_array c.ME.cs_recv_seq);
      ("cons", json_of_int_array c.ME.cs_cons_seq);
      ("out", J.List (List.map json_of_entry c.ME.cs_outstanding));
      ("sent",
       J.List
         (List.map
            (fun ((dst, port), n) -> J.List [ J.Int dst; J.Int port; J.Int n ])
            c.ME.cs_sent));
      ("cpend",
       J.List
         (List.map
            (fun (port, seq) -> J.List [ J.Int port; J.Int seq ])
            c.ME.cs_corrupt_pend)) ]

let json_of_event (prio, ev) =
  let body =
    match ev with
    | ME.Deliver { src; dst; port; seq; value; crc } ->
      [ ("t", J.String "d"); ("src", J.Int src); ("dst", J.Int dst);
        ("port", J.Int port); ("seq", J.Int seq); ("v", json_of_value value);
        ("crc", J.Int crc) ]
    | ME.Ack { dst; from_node; from_port; seq } ->
      [ ("t", J.String "a"); ("dst", J.Int dst); ("fn", J.Int from_node);
        ("fp", J.Int from_port); ("seq", J.Int seq) ]
    | ME.Retransmit { src; dst; port; seq } ->
      [ ("t", J.String "r"); ("src", J.Int src); ("dst", J.Int dst);
        ("port", J.Int port); ("seq", J.Int seq) ]
  in
  J.Obj (("at", J.Int prio) :: body)

let json_of_stats (s : ME.stats) =
  J.Obj
    [ ("dispatches", J.Int s.ME.dispatches); ("fu_ops", J.Int s.ME.fu_ops);
      ("am_ops", J.Int s.ME.am_ops);
      ("result_packets", J.Int s.ME.result_packets);
      ("ack_packets", J.Int s.ME.ack_packets);
      ("retransmits", J.Int s.ME.retransmits);
      ("corruptions", J.Int s.ME.corruptions);
      ("corrupt_detected", J.Int s.ME.corrupt_detected);
      ("corrupt_healed", J.Int s.ME.corrupt_healed);
      ("pe_dispatches", json_of_int_array s.ME.pe_dispatches) ]

let json_of_violation (v : V.t) =
  J.Obj
    [ ("kind", J.String (V.kind_name v.V.v_kind)); ("node", J.Int v.V.v_node);
      ("label", J.String v.V.v_label);
      ("port", (match v.V.v_port with None -> J.Null | Some p -> J.Int p));
      ("time", J.Int v.V.v_time); ("detail", J.String v.V.v_detail) ]

let json_of_sanitizer = function
  | None -> J.Null
  | Some (s : San.snapshot) ->
    J.Obj
      [ ("occ",
         J.List
           (Array.to_list
              (Array.map
                 (fun row ->
                   J.List (Array.to_list (Array.map (fun b -> J.Bool b) row)))
                 s.San.sn_occupied)));
        ("owed", json_of_int_array s.San.sn_owed);
        ("last", json_of_int_array s.San.sn_last_out);
        ("viol", J.List (List.map json_of_violation s.San.sn_violations));
        ("count", J.Int s.San.sn_count);
        ("tripped", J.Bool s.San.sn_tripped) ]

let to_json ~graph (sn : ME.snapshot) =
  J.Obj
    [ ("version", J.Int version);
      ("fingerprint", J.Int (graph_fingerprint graph));
      ("time", J.Int sn.ME.sn_time);
      ("last_progress", J.Int sn.ME.sn_last_progress);
      ("cells", J.List (Array.to_list (Array.map json_of_cell sn.ME.sn_cells)));
      ("events",
       J.List (Array.to_list (Array.map json_of_event sn.ME.sn_events)));
      ("pes", json_of_int_array sn.ME.sn_pes);
      ("fus", json_of_int_array sn.ME.sn_fus);
      ("ams", json_of_int_array sn.ME.sn_ams);
      ("pe_dead",
       J.List
         (Array.to_list (Array.map (fun b -> J.Bool b) sn.ME.sn_pe_dead)));
      ("stats", json_of_stats sn.ME.sn_stats);
      ("sanitizer", json_of_sanitizer sn.ME.sn_sanitizer) ]

(* ------------------------------------------------------------------ *)
(* decoding                                                           *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let get_int name j =
  match J.get_int j with Some i -> i | None -> fail "%s: expected int" name

let get_bool name j =
  match J.get_bool j with Some b -> b | None -> fail "%s: expected bool" name

let get_string name j =
  match J.get_string j with
  | Some s -> s
  | None -> fail "%s: expected string" name

let field name j = J.member name j

let int_field name j = get_int name (field name j)

let int_array name j =
  field name j |> J.get_list |> List.map (get_int name) |> Array.of_list

let value_of_json name j =
  match (J.get_int (J.member "i" j), J.get_bool (J.member "b" j),
         J.get_string (J.member "r" j))
  with
  | Some i, _, _ -> Value.Int i
  | _, Some b, _ -> Value.Bool b
  | _, _, Some s -> (
    match float_of_string_opt s with
    | Some f -> Value.Real f
    | None -> fail "%s: bad hex float %S" name s)
  | _ -> fail "%s: expected a value object" name

let value_opt_of_json name = function
  | J.Null -> None
  | j -> Some (value_of_json name j)

let entry_of_json j : ME.out_entry =
  {
    ME.o_dst = int_field "dst" j;
    o_port = int_field "port" j;
    o_seq = int_field "seq" j;
    o_value = value_of_json "v" (field "v" j);
    o_attempts = int_field "att" j;
  }

let cell_of_json j : ME.cell_snapshot =
  {
    ME.cs_operands =
      field "ops" j |> J.get_list
      |> List.map (value_opt_of_json "ops")
      |> Array.of_list;
    cs_pending_acks = int_field "acks" j;
    cs_queue = field "q" j |> J.get_list |> List.map (value_of_json "q");
    cs_cursor = int_field "cur" j;
    cs_collected =
      field "col" j |> J.get_list
      |> List.map (fun p ->
             match J.get_list p with
             | [ t; v ] -> (get_int "col.time" t, value_of_json "col.value" v)
             | _ -> fail "col: expected [time, value] pair");
    cs_pe = int_field "pe" j;
    cs_recv_seq = int_array "recv" j;
    cs_cons_seq = int_array "cons" j;
    cs_outstanding = field "out" j |> J.get_list |> List.map entry_of_json;
    cs_sent =
      field "sent" j |> J.get_list
      |> List.map (fun p ->
             match J.get_list p with
             | [ d; p'; n ] ->
               ((get_int "sent.dst" d, get_int "sent.port" p'),
                get_int "sent.count" n)
             | _ -> fail "sent: expected [dst, port, count] triple");
    cs_corrupt_pend =
      field "cpend" j |> J.get_list
      |> List.map (fun p ->
             match J.get_list p with
             | [ port; seq ] ->
               (get_int "cpend.port" port, get_int "cpend.seq" seq)
             | _ -> fail "cpend: expected [port, seq] pair");
  }

let event_of_json j =
  let prio = int_field "at" j in
  let ev =
    match get_string "t" (field "t" j) with
    | "d" ->
      ME.Deliver
        { src = int_field "src" j; dst = int_field "dst" j;
          port = int_field "port" j; seq = int_field "seq" j;
          value = value_of_json "v" (field "v" j);
          crc = int_field "crc" j }
    | "a" ->
      ME.Ack
        { dst = int_field "dst" j; from_node = int_field "fn" j;
          from_port = int_field "fp" j; seq = int_field "seq" j }
    | "r" ->
      ME.Retransmit
        { src = int_field "src" j; dst = int_field "dst" j;
          port = int_field "port" j; seq = int_field "seq" j }
    | s -> fail "events: unknown event tag %S" s
  in
  (prio, ev)

let stats_of_json j : ME.stats =
  {
    ME.dispatches = int_field "dispatches" j;
    fu_ops = int_field "fu_ops" j;
    am_ops = int_field "am_ops" j;
    result_packets = int_field "result_packets" j;
    ack_packets = int_field "ack_packets" j;
    retransmits = int_field "retransmits" j;
    corruptions = int_field "corruptions" j;
    corrupt_detected = int_field "corrupt_detected" j;
    corrupt_healed = int_field "corrupt_healed" j;
    pe_dispatches = int_array "pe_dispatches" j;
  }

let violation_of_json j : V.t =
  let kind_s = get_string "kind" (field "kind" j) in
  let kind =
    match V.kind_of_name kind_s with
    | Some k -> k
    | None -> fail "viol: unknown violation kind %S" kind_s
  in
  {
    V.v_kind = kind;
    v_node = int_field "node" j;
    v_label = get_string "label" (field "label" j);
    v_port =
      (match field "port" j with J.Null -> None | p -> Some (get_int "port" p));
    v_time = int_field "time" j;
    v_detail = get_string "detail" (field "detail" j);
  }

let sanitizer_of_json = function
  | J.Null -> None
  | j ->
    Some
      {
        San.sn_occupied =
          field "occ" j |> J.get_list
          |> List.map (fun row ->
                 J.get_list row |> List.map (get_bool "occ") |> Array.of_list)
          |> Array.of_list;
        sn_owed = int_array "owed" j;
        sn_last_out = int_array "last" j;
        sn_violations =
          field "viol" j |> J.get_list |> List.map violation_of_json;
        sn_count = int_field "count" j;
        sn_tripped = get_bool "tripped" (field "tripped" j);
      }

let of_json ~graph j =
  try
    let v = int_field "version" j in
    if v <> version then
      fail "checkpoint format version %d, this build reads %d" v version;
    let fp = int_field "fingerprint" j in
    let here = graph_fingerprint graph in
    if fp <> here then
      fail
        "checkpoint was taken from a different program (fingerprint %d, \
         graph has %d)"
        fp here;
    Ok
      {
        ME.sn_time = int_field "time" j;
        sn_last_progress = int_field "last_progress" j;
        sn_cells =
          field "cells" j |> J.get_list |> List.map cell_of_json
          |> Array.of_list;
        sn_events =
          field "events" j |> J.get_list |> List.map event_of_json
          |> Array.of_list;
        sn_pes = int_array "pes" j;
        sn_fus = int_array "fus" j;
        sn_ams = int_array "ams" j;
        sn_pe_dead =
          field "pe_dead" j |> J.get_list
          |> List.map (get_bool "pe_dead")
          |> Array.of_list;
        sn_stats = stats_of_json (field "stats" j);
        sn_sanitizer = sanitizer_of_json (field "sanitizer" j);
      }
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* file framing                                                       *)
(* ------------------------------------------------------------------ *)

(* A checkpoint file is a one-line header followed by the JSON payload:

     dfsnap2 <crc> <payload-length>\n
     { ... }\n

   The header lets [load] reject truncated and bit-rotted files by
   length and checksum *before* handing bytes to the JSON parser, so
   storage rot surfaces as a structured error, never a parse
   exception deep inside a resume. *)
let magic = "dfsnap2"

type load_error =
  | Io of string
  | Not_a_checkpoint of string
  | Truncated of { expected : int; actual : int }
  | Corrupted of { expected_crc : int; actual_crc : int }
  | Malformed of string

let load_error_to_string = function
  | Io e -> e
  | Not_a_checkpoint detail -> "not a checkpoint file: " ^ detail
  | Truncated { expected; actual } ->
    Printf.sprintf "truncated checkpoint: header promises %d payload bytes, \
                    file has %d" expected actual
  | Corrupted { expected_crc; actual_crc } ->
    Printf.sprintf "corrupted checkpoint: content checksum %d, header says %d"
      actual_crc expected_crc
  | Malformed e -> e

let save ~path ~graph sn =
  let payload = J.to_string (to_json ~graph sn) ^ "\n" in
  let crc = Integrity.checksum_string payload in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s %d %d\n" magic crc (String.length payload);
      output_string oc payload)

let load ~path ~graph =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error (Io e)
  | text -> (
    let header, payload =
      match String.index_opt text '\n' with
      | None -> (text, "")
      | Some i ->
        ( String.sub text 0 i,
          String.sub text (i + 1) (String.length text - i - 1) )
    in
    let parsed_header =
      match String.split_on_char ' ' header with
      | [ m; crc_s; len_s ] when m = magic -> (
        match (int_of_string_opt crc_s, int_of_string_opt len_s) with
        | Some crc, Some len -> Ok (crc, len)
        | _ ->
          Error
            (Not_a_checkpoint
               (Printf.sprintf "%s: malformed %S header" path magic)))
      | _ ->
        Error
          (Not_a_checkpoint
             (Printf.sprintf
                "%s: missing %S header (a pre-corruption-era checkpoint, or \
                 not a checkpoint at all)"
                path magic))
    in
    match parsed_header with
    | Error _ as e -> e
    | Ok (crc, len) ->
      if String.length payload < len then
        Error (Truncated { expected = len; actual = String.length payload })
      else
        (* trailing junk beyond the declared length is ignored; rot
           inside the declared prefix fails the checksum below *)
        let payload = String.sub payload 0 len in
        let actual_crc = Integrity.checksum_string payload in
        if actual_crc <> crc then
          Error (Corrupted { expected_crc = crc; actual_crc })
        else (
          match J.of_string payload with
          | exception J.Parse_error e -> Error (Malformed (path ^ ": " ^ e))
          | j -> (
            match of_json ~graph j with
            | Ok sn -> Ok sn
            | Error e -> Error (Malformed e))))

let equal (a : ME.snapshot) (b : ME.snapshot) = compare a b = 0
