test/test_companion_distance.ml: Alcotest Compiler Dfg Float Graph List Printf Random Sim
