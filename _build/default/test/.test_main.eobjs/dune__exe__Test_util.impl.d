test/test_util.ml: Alcotest Df_util Dfg Engine Float Graph List Metrics Opcode Report Sim String Timeline Value
