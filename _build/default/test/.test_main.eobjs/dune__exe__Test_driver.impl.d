test/test_driver.ml: Alcotest Compiler Dfg List String Value
