test/test_kernels.ml: Alcotest Analysis Array Balance Compiler Dfg Float Graph Hashtbl Kernels List Opcode Printf Random Sim Value
