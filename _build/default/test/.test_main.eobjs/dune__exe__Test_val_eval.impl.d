test/test_val_eval.ml: Alcotest Array Eval Format List Parser Test_val_parser Typecheck Val_lang
