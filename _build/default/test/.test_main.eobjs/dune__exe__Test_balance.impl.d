test/test_balance.ml: Alcotest Analysis Array Balance Dfg Engine Graph List Mcf Metrics Opcode Printf Random Sim Value
