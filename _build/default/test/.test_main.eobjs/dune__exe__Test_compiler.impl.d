test/test_compiler.ml: Alcotest Array Compiler Dfg Float Graph List Opcode Printf Random Sim Val_lang Value
