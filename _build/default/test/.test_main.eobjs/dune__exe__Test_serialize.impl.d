test/test_serialize.ml: Alcotest Array Compiler Dfg Float Graph Int64 List Opcode Printf Random Sim Test_machine Text Value
