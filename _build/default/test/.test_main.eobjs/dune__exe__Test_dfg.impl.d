test/test_dfg.ml: Alcotest Analysis Array Ctlseq Dfg Dot Engine Graph List Macro Metrics Opcode Printf Sim String Value
