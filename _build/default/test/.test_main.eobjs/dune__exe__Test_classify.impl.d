test/test_classify.ml: Alcotest Printf String Val_lang
