test/test_val_parser.ml: Alcotest Ast List Parser Pretty Val_lang
