test/test_properties.ml: Balance Buffer Bytes Char Compiler Ctlseq Df_util Dfg Float Fun Graph Hashtbl List Printexc Printf QCheck QCheck_alcotest Random Sim Test_balance Val_lang Value
