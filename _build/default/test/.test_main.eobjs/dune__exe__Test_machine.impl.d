test/test_machine.ml: Alcotest Compiler Dfg Fun List Machine Printf Random Sim String Value
