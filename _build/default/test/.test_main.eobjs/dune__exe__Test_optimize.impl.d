test/test_optimize.ml: Alcotest Compiler Dfg Graph List Optimize Printf Random Sim Value
