test/test_sim.ml: Alcotest Array Ctlseq Dfg Engine Graph List Metrics Opcode Printf Sim Value
