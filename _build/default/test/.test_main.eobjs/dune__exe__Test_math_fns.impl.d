test/test_math_fns.ml: Alcotest Compiler Dfg Float Graph List Opcode Printf Random Sim Text Val_lang Value
