(* Parser tests: the paper's Examples 1 and 2 parse verbatim (modulo ASCII
   syntax), operator precedence, and error reporting. *)

open Val_lang

let example1_source =
  {|
A : array[real] :=
  forall i in [0, m+1]          % range specification
    P : real :=                 % definition part
      if (i = 0) | (i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i] * (P * P)              % accumulation
  endall
|}

let example2_source =
  {|
X : array[real] :=
  for
    i : integer := 1;           % loop initialization
    T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]  % definition part
    in
      if i < m then             % loop body
        iter
          T := T[i: P];
          i := i + 1
        enditer
      else T
      endif
    endlet
  endfor
|}

let program_source =
  {|
param m = 8;
input C : array[real] [0, m+1];
input B : array[real] [0, m+1];
|}
  ^ example1_source ^ ";" ^ example2_source ^ ";"

let check_parses name src =
  Alcotest.test_case name `Quick (fun () ->
      match Parser.parse_block src with
      | (_ : Ast.block) -> ()
      | exception Parser.Parse_error (msg, line, col) ->
        Alcotest.failf "parse error at %d:%d: %s" line col msg)

let test_example1_shape () =
  let blk = Parser.parse_block example1_source in
  Alcotest.(check string) "name" "A" blk.Ast.blk_name;
  match blk.Ast.blk_rhs with
  | Ast.Forall fa ->
    Alcotest.(check int) "one range" 1 (List.length fa.Ast.fa_ranges);
    Alcotest.(check int) "one def" 1 (List.length fa.Ast.fa_defs);
    let r = List.hd fa.Ast.fa_ranges in
    Alcotest.(check string) "index var" "i" r.Ast.rng_var
  | Ast.Foriter _ -> Alcotest.fail "expected forall"

let test_example2_shape () =
  let blk = Parser.parse_block example2_source in
  Alcotest.(check string) "name" "X" blk.Ast.blk_name;
  match blk.Ast.blk_rhs with
  | Ast.Foriter fi ->
    Alcotest.(check int) "two loop names" 2 (List.length fi.Ast.fi_inits);
    (match fi.Ast.fi_body with
    | Ast.Iter_let (defs, Ast.Iter_if (_, Ast.Iter_continue us, _)) ->
      Alcotest.(check int) "one def" 1 (List.length defs);
      Alcotest.(check int) "two updates" 2 (List.length us)
    | _ -> Alcotest.fail "unexpected body structure")
  | Ast.Forall _ -> Alcotest.fail "expected for-iter"

let test_program () =
  let prog = Parser.parse_program program_source in
  Alcotest.(check int) "params" 1 (List.length prog.Ast.prog_params);
  Alcotest.(check int) "inputs" 2 (List.length prog.Ast.prog_inputs);
  Alcotest.(check int) "blocks" 2 (List.length prog.Ast.prog_blocks)

let test_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  (match e with
  | Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "mul should bind tighter than add");
  let e = Parser.parse_expr "a < b + 1 & c" in
  (match e with
  | Ast.Binop (Ast.And, Ast.Binop (Ast.Lt, _, _), Ast.Var "c") -> ()
  | _ -> Alcotest.fail "comparison should bind tighter than &");
  let e = Parser.parse_expr "x | y & z" in
  match e with
  | Ast.Binop (Ast.Or, Ast.Var "x", Ast.Binop (Ast.And, _, _)) -> ()
  | _ -> Alcotest.fail "& should bind tighter than |"

let test_unary () =
  match Parser.parse_expr "-(A[i] + B[i])" with
  | Ast.Unop (Ast.Neg, Ast.Binop (Ast.Add, Ast.Select _, Ast.Select _)) -> ()
  | _ -> Alcotest.fail "unexpected parse of unary negation"

let test_indices () =
  (match Parser.parse_expr "C[i-1]" with
  | Ast.Select ("C", [ Ast.Ix_var ("i", -1) ]) -> ()
  | _ -> Alcotest.fail "C[i-1]");
  (match Parser.parse_expr "C[i+2]" with
  | Ast.Select ("C", [ Ast.Ix_var ("i", 2) ]) -> ()
  | _ -> Alcotest.fail "C[i+2]");
  (match Parser.parse_expr "G[i, j-1]" with
  | Ast.Select ("G", [ Ast.Ix_var ("i", 0); Ast.Ix_var ("j", -1) ]) -> ()
  | _ -> Alcotest.fail "G[i, j-1]");
  match Parser.parse_expr "X[0]" with
  | Ast.Select ("X", [ Ast.Ix_const (Ast.C_int 0) ]) -> ()
  | _ -> Alcotest.fail "X[0]"

let test_real_literals () =
  (match Parser.parse_expr "0.25" with
  | Ast.Real_lit f -> Alcotest.(check (float 0.)) "0.25" 0.25 f
  | _ -> Alcotest.fail "0.25");
  (match Parser.parse_expr "2." with
  | Ast.Real_lit f -> Alcotest.(check (float 0.)) "2." 2.0 f
  | _ -> Alcotest.fail "2.");
  match Parser.parse_expr "1.5e3" with
  | Ast.Real_lit f -> Alcotest.(check (float 0.)) "1.5e3" 1500.0 f
  | _ -> Alcotest.fail "1.5e3"

let test_if_expr () =
  match Parser.parse_expr "if C[i] then -(A[i]+B[i]) else 5.*(A[i]*B[i]+2.) endif" with
  | Ast.If (Ast.Select ("C", _), Ast.Unop (Ast.Neg, _), Ast.Binop (Ast.Mul, _, _))
    -> ()
  | _ -> Alcotest.fail "figure 5 conditional"

let test_elseif () =
  match Parser.parse_expr "if a then 1 elseif b then 2 else 3 endif" with
  | Ast.If (Ast.Var "a", Ast.Int_lit 1, Ast.If (Ast.Var "b", Ast.Int_lit 2, Ast.Int_lit 3))
    -> ()
  | _ -> Alcotest.fail "elseif should nest"

let test_let_expr () =
  match Parser.parse_expr "let y : real := a * b in (y + 2.) * (y - 3.) endlet" with
  | Ast.Let ([ { Ast.def_name = "y"; _ } ], Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "figure 2 let"

let test_min_max () =
  match Parser.parse_expr "min(a, max(b, 1.))" with
  | Ast.Binop (Ast.Min, Ast.Var "a", Ast.Binop (Ast.Max, _, _)) -> ()
  | _ -> Alcotest.fail "min/max"

let test_comment_handling () =
  match Parser.parse_expr "1 + % comment to end of line\n 2" with
  | Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Int_lit 2) -> ()
  | _ -> Alcotest.fail "comments should be skipped"

let test_errors () =
  let expect_error src =
    match Parser.parse_expr src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Parser.Parse_error _ -> ()
  in
  expect_error "1 +";
  expect_error "(a";
  expect_error "if a then b endif";
  expect_error "let x := 1 in x";
  expect_error "A[i*2]";
  expect_error "@"

let test_error_position () =
  match Parser.parse_expr "a +\n+ b" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Parse_error (_, line, _) ->
    Alcotest.(check int) "line of error" 2 line

let test_program_pretty_roundtrip () =
  let prog = Parser.parse_program program_source in
  let printed = Pretty.program_to_string prog in
  match Parser.parse_program printed with
  | prog' ->
    Alcotest.(check int) "same block count"
      (List.length prog.Ast.prog_blocks)
      (List.length prog'.Ast.prog_blocks);
    Alcotest.(check bool) "identical AST" true (prog = prog')
  | exception Parser.Parse_error (msg, line, col) ->
    Alcotest.failf "pretty output does not reparse (%d:%d %s):\n%s" line col
      msg printed

let test_keywords_not_identifiers () =
  List.iter
    (fun kw ->
      match Parser.parse_expr (kw ^ " + 1") with
      | _ -> Alcotest.failf "keyword %s accepted as identifier" kw
      | exception Parser.Parse_error _ -> ())
    [ "forall"; "endall"; "iter"; "construct"; "endif" ]

let test_input_decl_forms () =
  let prog =
    Parser.parse_program
      {|
input s : real;
input b : boolean;
input A : array[integer] [1, 8];
input G : array[real] [0, 3] [0, 5];
Z : array[real] := forall i in [1, 8] construct A[i] * 1. endall;
|}
  in
  Alcotest.(check int) "four inputs" 4 (List.length prog.Ast.prog_inputs);
  let g = List.nth prog.Ast.prog_inputs 3 in
  Alcotest.(check int) "grid has two ranges" 2 (List.length g.Ast.in_ranges)

let suite =
  [
    check_parses "example 1 parses" example1_source;
    check_parses "example 2 parses" example2_source;
    Alcotest.test_case "example 1 shape" `Quick test_example1_shape;
    Alcotest.test_case "example 2 shape" `Quick test_example2_shape;
    Alcotest.test_case "full program" `Quick test_program;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "unary minus" `Quick test_unary;
    Alcotest.test_case "subscript forms" `Quick test_indices;
    Alcotest.test_case "real literals" `Quick test_real_literals;
    Alcotest.test_case "if expression" `Quick test_if_expr;
    Alcotest.test_case "elseif chains" `Quick test_elseif;
    Alcotest.test_case "let expression" `Quick test_let_expr;
    Alcotest.test_case "min and max" `Quick test_min_max;
    Alcotest.test_case "comments" `Quick test_comment_handling;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "error positions" `Quick test_error_position;
    Alcotest.test_case "program pretty round trip" `Quick
      test_program_pretty_roundtrip;
    Alcotest.test_case "keywords are not identifiers" `Quick
      test_keywords_not_identifiers;
    Alcotest.test_case "input declaration forms" `Quick
      test_input_decl_forms;
  ]
