(* Generalized companion distance: the log2-level G tree (paper Section 7)
   at distances 2/4/8, all oracle-correct and at the maximal rate. *)

open Dfg
module D = Compiler.Driver
module PC = Compiler.Program_compile
module FC = Compiler.Foriter_compile

let example2 m =
  Printf.sprintf
    {|
param m = %d;
input A : array[real] [0, m];
input B : array[real] [0, m];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
    m

let compile ~distance m =
  let options =
    { PC.default_options with
      PC.scheme = FC.Companion;
      companion_distance = distance;
    }
  in
  D.compile_source ~options (example2 m)

let run_distance ~distance ~m ~waves =
  let st = Random.State.make [| distance; m |] in
  let wave () =
    D.wave_of_floats
      (List.init (m + 1) (fun _ -> Random.State.float st 0.9 -. 0.45))
  in
  let inputs = [ ("A", wave ()); ("B", wave ()) ] in
  let prog, cp = compile ~distance m in
  let result = D.run ~waves cp ~inputs in
  D.check_against_oracle prog cp result ~inputs;
  (cp, result)

let test_values_all_distances () =
  List.iter
    (fun distance ->
      let _cp, _result = run_distance ~distance ~m:13 ~waves:3 in
      ())
    [ 2; 4; 8 ]

let test_rate_all_distances () =
  let m = 127 in
  List.iter
    (fun distance ->
      let _, result = run_distance ~distance ~m ~waves:8 in
      let interval = Sim.Metrics.output_interval result "X" in
      (* the ring merge adds [distance] seed firings per wave of m-1
         computed elements: predicted interval 2(m-1+d)/m *)
      let predicted =
        2.0 *. float_of_int (m - 1 + distance) /. float_of_int m
      in
      Alcotest.(check bool)
        (Printf.sprintf "distance %d interval %.3f ~ predicted %.3f"
           distance interval predicted)
        true
        (Float.abs (interval -. predicted) <= 0.05))
    [ 2; 4; 8 ]

let test_tree_growth () =
  (* one G level per doubling: the companion pipeline grows with
     log2(distance) *)
  let cells d =
    let _, cp = compile ~distance:d 64 in
    Graph.node_count cp.PC.cp_graph
  in
  let c2 = cells 2 and c4 = cells 4 and c8 = cells 8 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone growth (%d < %d < %d)" c2 c4 c8)
    true
    (c2 < c4 && c4 < c8);
  (* each level adds a bounded number of cells (G + two delays), plus the
     ring grows linearly in distance *)
  Alcotest.(check bool) "log-like growth" true (c8 - c4 < 3 * (c4 - c2))

let test_distance_exceeding_length () =
  (* distance larger than the wave: every element composes back to the
     seed; still correct *)
  let _cp, _result = run_distance ~distance:8 ~m:5 ~waves:3 in
  ()

let test_bad_distance_rejected () =
  match compile ~distance:3 10 with
  | _ -> Alcotest.fail "distance 3 should be rejected"
  | exception Compiler.Expr_compile.Unsupported _ -> ()

let suite =
  [
    Alcotest.test_case "values at distances 2/4/8" `Quick
      test_values_all_distances;
    Alcotest.test_case "maximal rate at distances 2/4/8" `Quick
      test_rate_all_distances;
    Alcotest.test_case "G-tree growth" `Quick test_tree_growth;
    Alcotest.test_case "distance exceeding wave length" `Quick
      test_distance_exceeding_length;
    Alcotest.test_case "non-power-of-two rejected" `Quick
      test_bad_distance_rejected;
  ]
