(* Driver-level contract tests: input validation, mismatch detection,
   scalar-input plumbing, exposure options. *)

open Dfg
module D = Compiler.Driver
module PC = Compiler.Program_compile

let source =
  {|
param n = 7;
input B : array[real] [0, n];
A : array[real] := forall i in [0, n] construct 2. * B[i] endall;
|}

let wave () = D.wave_of_floats (List.init 8 (fun i -> float_of_int i))

let test_missing_input_rejected () =
  let _, cp = D.compile_source source in
  match D.run cp ~inputs:[] with
  | _ -> Alcotest.fail "expected missing-input error"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the input" true
      (String.length msg > 0)

let test_wrong_wave_size_rejected () =
  let _, cp = D.compile_source source in
  match D.run cp ~inputs:[ ("B", D.wave_of_floats [ 1.; 2. ]) ] with
  | _ -> Alcotest.fail "expected wave-size error"
  | exception Invalid_argument _ -> ()

let test_missing_scalar_input_rejected () =
  let src =
    {|
param n = 3;
input q : real;
input B : array[real] [0, n];
A : array[real] := forall i in [0, n] construct q * B[i] endall;
|}
  in
  (match D.compile_source src with
  | _ -> Alcotest.fail "expected missing scalar binding error"
  | exception Invalid_argument _ -> ());
  (* and with the binding, it compiles and runs *)
  let prog, cp =
    D.compile_source ~scalar_inputs:[ ("q", Value.Real 3.0) ] src
  in
  let inputs = [ ("B", D.wave_of_floats [ 1.; 2.; 3.; 4. ]); ("q", [ Value.Real 3.0 ]) ] in
  let result = D.run cp ~inputs in
  D.check_against_oracle prog cp result ~inputs;
  Alcotest.(check (list (float 1e-12))) "scaled" [ 3.; 6.; 9.; 12. ]
    (List.map Value.to_real (D.output_wave cp result "A"))

let test_mismatch_detected () =
  (* run with one input, compare the oracle against another: the checker
     must notice *)
  let prog, cp = D.compile_source source in
  let result = D.run cp ~inputs:[ ("B", wave ()) ] in
  let other = [ ("B", D.wave_of_floats (List.init 8 (fun i -> float_of_int (i + 1)))) ] in
  match D.check_against_oracle prog cp result ~inputs:other with
  | () -> Alcotest.fail "expected Mismatch"
  | exception D.Mismatch _ -> ()

let test_expose_last () =
  let src =
    {|
param n = 7;
input B : array[real] [0, n];
A : array[real] := forall i in [0, n] construct 2. * B[i] endall;
C : array[real] := forall i in [0, n] construct A[i] + 1. endall;
|}
  in
  let options = { PC.default_options with PC.expose = `Last } in
  let prog, cp = D.compile_source ~options src in
  Alcotest.(check int) "only the final block exposed" 1
    (List.length cp.PC.cp_outputs);
  let inputs = [ ("B", wave ()) ] in
  let result = D.run cp ~inputs in
  D.check_against_oracle prog cp result ~inputs

let test_unused_input_tolerated () =
  (* a declared input no block consumes is still fed and discarded *)
  let src =
    {|
param n = 7;
input B : array[real] [0, n];
input Z : array[real] [0, n];
A : array[real] := forall i in [0, n] construct B[i] endall;
|}
  in
  let prog, cp = D.compile_source src in
  let inputs = [ ("B", wave ()); ("Z", wave ()) ] in
  let result = D.run ~waves:2 cp ~inputs in
  D.check_against_oracle prog cp result ~inputs

let suite =
  [
    Alcotest.test_case "missing input rejected" `Quick
      test_missing_input_rejected;
    Alcotest.test_case "wrong wave size rejected" `Quick
      test_wrong_wave_size_rejected;
    Alcotest.test_case "scalar inputs required and plumbed" `Quick
      test_missing_scalar_input_rejected;
    Alcotest.test_case "oracle mismatch detected" `Quick
      test_mismatch_detected;
    Alcotest.test_case "expose only the last block" `Quick test_expose_last;
    Alcotest.test_case "unused input tolerated" `Quick
      test_unused_input_tolerated;
  ]
